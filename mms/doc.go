// Package mms is the public facade of the IEC 61850 MMS implementation:
// object references, typed values and the client used to talk to virtual
// IEDs (legitimately, or from an attacker via repro/attack).
//
// It re-exports the internal implementation (repro/internal/mms) so
// experiment code never needs an internal import; the protocol details
// (TPKT framing, BER PDUs, the server side) live on the internal package.
package mms
