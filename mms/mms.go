package mms

import (
	imms "repro/internal/mms"

	"repro/netem"
)

type (
	// Value is one typed MMS value.
	Value = imms.Value
	// ValueKind discriminates Value.
	ValueKind = imms.ValueKind
	// ObjectReference addresses an object in an IED's model ("LD0/XCBR1.Pos").
	ObjectReference = imms.ObjectReference
	// Client is an MMS client association.
	Client = imms.Client
	// DialOptions tunes a client association.
	DialOptions = imms.DialOptions
)

// NewBool builds a boolean value.
func NewBool(v bool) Value { return imms.NewBool(v) }

// NewInt builds an integer value.
func NewInt(v int64) Value { return imms.NewInt(v) }

// NewFloat builds a double-precision float value.
func NewFloat(v float64) Value { return imms.NewFloat(v) }

// NewString builds a visible-string value.
func NewString(v string) Value { return imms.NewString(v) }

// Dial opens an MMS association to ip:port (port 0 uses the standard 102).
func Dial(h *netem.Host, ip netem.IPv4, port uint16, opts DialOptions) (*Client, error) {
	return imms.Dial(h, ip, port, opts)
}
