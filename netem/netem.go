package netem

import inetem "repro/internal/netem"

type (
	// Network is the emulated fabric: devices joined by links.
	Network = inetem.Network
	// Host is an emulated end node with an IP/MAC and a TCP/UDP-lite stack.
	Host = inetem.Host
	// Switch is a learning L2 switch.
	Switch = inetem.Switch
	// Link is a full-duplex cable with impairment knobs (SetUp, SetLossRate,
	// SetLatency, SetTamper).
	Link = inetem.Link
	// Frame is one L2 frame on the fabric.
	Frame = inetem.Frame
	// IPv4 is a 4-byte address.
	IPv4 = inetem.IPv4
	// MAC is a 6-byte hardware address.
	MAC = inetem.MAC
	// ARPPacket is a parsed ARP request/reply.
	ARPPacket = inetem.ARPPacket
	// IPPacket is a parsed IPv4 packet.
	IPPacket = inetem.IPPacket
	// DataPlaneStats are the fabric's transmit/drop/pool counters.
	DataPlaneStats = inetem.DataPlaneStats
	// TapFunc observes frames traversing a link (borrowed per call).
	TapFunc = inetem.TapFunc
)

// ParseIPv4 parses a dotted-quad address.
func ParseIPv4(s string) (IPv4, error) { return inetem.ParseIPv4(s) }

// MustIPv4 parses a dotted-quad address or panics (static topology tables).
func MustIPv4(s string) IPv4 { return inetem.MustIPv4(s) }

// ParseMAC parses a colon-separated hardware address.
func ParseMAC(s string) (MAC, error) { return inetem.ParseMAC(s) }

// MustMAC parses a colon-separated hardware address or panics.
func MustMAC(s string) MAC { return inetem.MustMAC(s) }
