// Package netem is the public facade of the emulated network fabric: the
// addressing types, hosts, switches, links (with their impairment knobs) and
// the data-plane counters that the scenario layer and the examples consume.
//
// It re-exports the internal implementation (repro/internal/netem) so
// out-of-tree experiment code never needs an internal import. The full
// fabric — per-device worker goroutines, pooled frame payloads, the
// deterministic loss generator — is documented on the internal package.
package netem
