package sgml_test

import (
	"context"
	"strings"
	"testing"
	"time"

	sgml "repro"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/store"
)

// chaosStoreOpener opens the durable JSONL store under dir with the plan's
// append faults hooked in — the internal/core shape of sgml.WithStore, which
// the chaos tests need because the public opener has no injection seam.
func chaosStoreOpener(dir string, plan *faultinject.Plan) sgml.CampaignOption {
	return core.WithCampaignStore(func(c *core.Campaign) (core.CampaignStore, error) {
		s, err := store.OpenJSONL(dir, c)
		if err != nil {
			return nil, err
		}
		s.SetAppendHook(plan.AppendHook())
		return s, nil
	})
}

// TestCampaignChaosDifferential is the headline fault-tolerance guarantee: a
// sweep executed under an aggressive fault plan — a mid-run panic, a run
// wedged past its deadline, a failed store append — with retries enabled
// produces a fingerprint map and a Merkle root byte-identical to the same
// sweep run with no faults at all, across both provisioning paths. Faults are
// noise the engine absorbs; results remain a pure function of
// (model, scenario, seed).
func TestCampaignChaosDifferential(t *testing.T) {
	ms, err := sgml.EPICModelSet()
	if err != nil {
		t.Fatal(err)
	}
	paths := map[string][]sgml.CampaignOption{
		"forked":          nil,
		"per-run-compile": {sgml.WithPerRunCompile()},
	}
	for name, extra := range paths {
		t.Run(name, func(t *testing.T) {
			// Clean baseline, sealed into its own store.
			baseDir := t.TempDir()
			opts := append([]sgml.CampaignOption{sgml.WithWorkers(2), sgml.WithStore(baseDir)}, extra...)
			base, err := sgml.RunCampaign(context.Background(), storeSweep(ms), opts...)
			if err != nil {
				t.Fatal(err)
			}
			if !base.OK() || base.MerkleRoot == "" {
				t.Fatalf("baseline not clean/sealed:\n%s", base)
			}
			baseFPs := fingerprintMap(t, base)

			// Chaotic run: panic in parallel:3:1 step 2, parallel:5:1 wedged
			// at step 1 until its deadline kills it, and the sweep's second
			// store append fails once. All first-attempt faults; WithRetries
			// must recover every one of them.
			plan := faultinject.NewPlan(1).
				PanicRun("parallel", 3, 1, 2).
				DelayRun("parallel", 5, 1, 1).
				FailStoreAppends(2)
			chaosDir := t.TempDir()
			opts = append([]sgml.CampaignOption{
				sgml.WithWorkers(2),
				sgml.WithRetries(2),
				sgml.WithRunTimeout(3 * time.Second),
				core.WithRunProbe(plan.Probe()),
				chaosStoreOpener(chaosDir, plan),
			}, extra...)
			chaotic, err := sgml.RunCampaign(context.Background(), storeSweep(ms), opts...)
			if err != nil {
				t.Fatal(err)
			}

			// The chaos actually happened.
			if plan.PanicsFired() == 0 || plan.DelaysFired() == 0 || plan.StoreFailsFired() == 0 {
				t.Fatalf("fault plan incomplete: panics=%d delays=%d storeFails=%d",
					plan.PanicsFired(), plan.DelaysFired(), plan.StoreFailsFired())
			}

			// ...and was fully absorbed.
			if chaotic.Failures != 0 {
				t.Fatalf("chaotic sweep kept %d failures:\n%s", chaotic.Failures, chaotic)
			}
			if chaotic.StoreDegraded {
				t.Fatalf("chaotic sweep degraded its store: %s", chaotic.StoreErr)
			}
			if chaotic.Retried < 2 {
				t.Fatalf("Retried = %d, want the panicked and wedged cells retried", chaotic.Retried)
			}

			// Retry history records what each recovered cell survived.
			classified := map[sgml.RunFailure]bool{}
			for i := range chaotic.Runs {
				for _, h := range chaotic.Runs[i].Retries {
					classified[h.Failure] = true
				}
			}
			if !classified[sgml.FailPanic] || !classified[sgml.FailTimeout] {
				t.Errorf("retry histories missing classifications: %v", classified)
			}

			// The differential: byte-identical fingerprints and Merkle root.
			chaosFPs := fingerprintMap(t, chaotic)
			if len(chaosFPs) != len(baseFPs) {
				t.Fatalf("chaotic sweep has %d fingerprints, baseline %d", len(chaosFPs), len(baseFPs))
			}
			for k, fp := range baseFPs {
				if chaosFPs[k] != fp {
					t.Errorf("run %s: chaotic fingerprint %s != baseline %s", k, chaosFPs[k], fp)
				}
			}
			if chaotic.MerkleRoot != base.MerkleRoot {
				t.Fatalf("chaotic Merkle root %s != baseline %s", chaotic.MerkleRoot, base.MerkleRoot)
			}
			vs, err := sgml.VerifyStore(chaosDir)
			if err != nil {
				t.Fatalf("chaotic store verify: %v", err)
			}
			if vs[0].Root != base.MerkleRoot {
				t.Fatalf("chaotic store root %s != baseline %s", vs[0].Root, base.MerkleRoot)
			}
		})
	}
}

// TestCampaignChaosPanicWithoutRetries pins the bare isolation guarantee: an
// injected panic with retries disabled becomes a classified failed run with
// its stack on the record — the process survives, the sweep completes, and
// the attached store stays unsealed for a later resume.
func TestCampaignChaosPanicWithoutRetries(t *testing.T) {
	ms, err := sgml.EPICModelSet()
	if err != nil {
		t.Fatal(err)
	}
	plan := faultinject.NewPlan(1).PanicRun("parallel", 2, 1, 1)
	dir := t.TempDir()
	rep, err := sgml.RunCampaign(context.Background(), storeSweep(ms),
		sgml.WithWorkers(2),
		core.WithRunProbe(plan.Probe()),
		chaosStoreOpener(dir, plan))
	if err != nil {
		t.Fatal(err)
	}
	if plan.PanicsFired() != 1 {
		t.Fatalf("panic fired %d times, want 1", plan.PanicsFired())
	}
	if rep.Failures != 1 {
		t.Fatalf("Failures = %d, want exactly the panicked run\n%s", rep.Failures, rep)
	}
	var bad *sgml.CampaignRun
	for i := range rep.Runs {
		if rep.Runs[i].Err != "" {
			bad = &rep.Runs[i]
		}
	}
	if bad == nil || bad.Variant != "parallel" || bad.Seed != 2 {
		t.Fatalf("wrong failed run: %+v", bad)
	}
	if bad.Failure != sgml.FailPanic || !strings.Contains(bad.Err, "panic") {
		t.Errorf("failure = %q err = %q", bad.Failure, bad.Err)
	}
	if bad.PanicStack == "" {
		t.Error("failed run carries no panic stack")
	}
	if rep.MerkleRoot != "" {
		t.Error("failing sweep sealed a Merkle root")
	}
	if _, err := sgml.VerifyStore(dir); err == nil {
		t.Error("verify accepted the unsealed store of a failing sweep")
	}
	// The report renders the classification for operators.
	if !strings.Contains(rep.String(), "ERROR(panic)") {
		t.Errorf("report text lacks the failure class:\n%s", rep)
	}
}
