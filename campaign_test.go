package sgml_test

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	sgml "repro"

	"repro/mms"
	"repro/netem"
)

// sweepCampaign is the determinism workload: the same drill under the
// shipped configuration and under the reference engine + reference data
// plane, with a repeated-seed variant probing replay stability.
func sweepCampaign(ms *sgml.ModelSet) *sgml.Campaign {
	drill := &sgml.Scenario{
		Name:  "sweep-drill",
		Steps: 8,
		Attackers: []sgml.AttackerSpec{
			{Name: "redbox", Switch: "sw-TransLAN", IP: netem.MustIPv4("10.0.1.13")},
		},
		Events: []sgml.Event{
			{Name: "blue", Trigger: sgml.At(0), Action: sgml.DeployIDS{
				AuthorizedWriters: []string{"SCADA", "CPLC"}, PortScanThreshold: 5}},
			{Name: "recon", Trigger: sgml.At(2), Action: sgml.PortScan{
				Attacker: "redbox", Target: "TIED1"}},
			{Name: "fci", Trigger: sgml.OnAlert(sgml.AlertPortScan).Plus(1), Action: sgml.FalseCommand{
				Attacker: "redbox", Target: "TIED1",
				Ref: "LD0/XCBR1.Pos.Oper", Value: mms.NewBool(false)}},
		},
	}
	reference := false
	return &sgml.Campaign{
		Name:  "determinism-sweep",
		Model: ms,
		Variants: []sgml.CampaignVariant{
			{Name: "parallel", Scenario: drill, Seeds: []int64{1, 2}, Repeat: 2},
			{Name: "reference", Scenario: drill, Seeds: []int64{1}, Sequential: true,
				FramePooling: &reference},
		},
	}
}

// TestCampaignDeterminism pins the campaign layer's contract: the sweep's
// run fingerprints are a pure function of each run's (model, scenario, seed)
// — identical regardless of worker count, run ordering, step engine or data
// plane, with repeated seeds collapsing to one fingerprint (and the runs all
// sharing one parsed ModelSet, -race clean).
func TestCampaignDeterminism(t *testing.T) {
	ms, err := sgml.EPICModelSet()
	if err != nil {
		t.Fatal(err)
	}

	key := func(r *sgml.CampaignRun) [3]interface{} { return [3]interface{}{r.Variant, r.Seed, r.Attempt} }
	var want map[[3]interface{}]string
	for _, workers := range []int{1, 4} {
		rep, err := sgml.RunCampaign(context.Background(), sweepCampaign(ms), sgml.WithCampaignWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("workers=%d: failures=%d determinism mismatches=%d\n%s",
				workers, rep.Failures, len(rep.Determinism), rep)
		}
		if rep.TotalRuns != 5 {
			t.Fatalf("workers=%d: runs = %d, want 5", workers, rep.TotalRuns)
		}
		got := make(map[[3]interface{}]string, len(rep.Runs))
		for i := range rep.Runs {
			run := &rep.Runs[i]
			got[key(run)] = run.Fingerprint
			if run.Report == nil {
				t.Fatalf("workers=%d: run %v has no report", workers, key(run))
			}
			if run.Recall != 1 {
				t.Errorf("workers=%d: run %v recall = %v, want 1", workers, key(run), run.Recall)
			}
		}
		// Same seed, different engine/data plane: same outcome. The repeated
		// seed-1 attempts of "parallel" and the sequential reference run must
		// all share one fingerprint.
		p1 := got[[3]interface{}{"parallel", int64(1), 1}]
		if got[[3]interface{}{"reference", int64(1), 1}] != p1 {
			t.Errorf("workers=%d: reference engine fingerprint diverged from parallel", workers)
		}
		if got[[3]interface{}{"parallel", int64(1), 2}] != p1 {
			t.Errorf("workers=%d: repeated seed fingerprint diverged", workers)
		}
		if got[[3]interface{}{"parallel", int64(2), 1}] == p1 {
			t.Errorf("workers=%d: different seed produced identical fingerprint", workers)
		}
		if want == nil {
			want = got
			continue
		}
		for k, fp := range want {
			if got[k] != fp {
				t.Errorf("run %v: fingerprint %s under workers=4, want %s (workers=1)", k, got[k], fp)
			}
		}
	}
}

// TestCampaignXMLForm drives the fifth supplementary schema end to end:
// parse, seed-range expansion, toggle resolution, and the JSON report shape.
func TestCampaignXMLForm(t *testing.T) {
	ms, err := sgml.EPICModelSet()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	scenarioXML := []byte(`<Scenario name="mini" steps="4" seed="1">
  <Event name="trip" atStep="1" kind="openBreaker" element="CBMicro"/>
</Scenario>`)
	if err := os.WriteFile(filepath.Join(dir, "mini.scenario.xml"), scenarioXML, 0o644); err != nil {
		t.Fatal(err)
	}
	campaignXML := []byte(`<Campaign name="xml-sweep" workers="2">
  <Variant name="a" scenario="mini.scenario.xml" seeds="1-3,9"/>
  <Variant name="b" scenario="mini.scenario.xml" seeds="2" repeat="2"
           sequential="true" framePooling="off"/>
</Campaign>`)
	c, err := sgml.ParseCampaign(campaignXML, dir, ms)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "xml-sweep" || c.Workers != 2 || len(c.Variants) != 2 {
		t.Fatalf("campaign = %+v", c)
	}
	a, b := c.Variants[0], c.Variants[1]
	if len(a.Seeds) != 4 || a.Seeds[0] != 1 || a.Seeds[2] != 3 || a.Seeds[3] != 9 {
		t.Errorf("seed range expansion = %v", a.Seeds)
	}
	if a.FramePooling != nil || a.Sequential {
		t.Errorf("variant a toggles = %+v", a)
	}
	if b.FramePooling == nil || *b.FramePooling || !b.Sequential || b.Repeat != 2 {
		t.Errorf("variant b toggles = %+v", b)
	}
	if a.Scenario != b.Scenario {
		t.Error("shared scenario file loaded twice")
	}

	rep, err := sgml.RunCampaign(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.TotalRuns != 6 {
		t.Fatalf("runs = %d, OK = %t\n%s", rep.TotalRuns, rep.OK(), rep)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Campaign string `json:"campaign"`
		Runs     []struct {
			Variant     string `json:"variant"`
			Seed        int64  `json:"seed"`
			Fingerprint string `json:"fingerprint"`
		} `json:"runs"`
		Variants []struct {
			Variant           string `json:"variant"`
			DeterminismGroups int    `json:"determinismGroups"`
		} `json:"variants"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Campaign != "xml-sweep" || len(decoded.Runs) != 6 || len(decoded.Variants) != 2 {
		t.Errorf("JSON report: campaign=%q runs=%d variants=%d",
			decoded.Campaign, len(decoded.Runs), len(decoded.Variants))
	}
	if decoded.Runs[0].Fingerprint == "" {
		t.Error("JSON run record missing fingerprint hash")
	}

	// Malformed campaigns fail structurally, before anything runs.
	for _, bad := range []string{
		`<Campaign name="x"/>`,
		`<Campaign name="x"><Variant name="v"/></Campaign>`,
		`<Campaign name="x"><Variant name="v" scenario="s.xml" seeds="5-1"/></Campaign>`,
		`<Campaign name="x"><Variant name="v" scenario="s.xml" framePooling="maybe"/></Campaign>`,
		`<Campaign name="x"><Variant name="v" scenario="s.xml"/><Variant name="v" scenario="s.xml"/></Campaign>`,
	} {
		if _, err := sgml.ParseCampaign([]byte(bad), dir, ms); err == nil {
			t.Errorf("malformed campaign accepted: %s", bad)
		}
	}
}

// TestCampaignXMLFaultAttributes covers the fault-tolerance additions to the
// fifth schema: the maxSteps step budget threads from XML to the engine (a
// budget-aborted run is a deterministic FailScenario, never retried), a
// negative budget is rejected structurally, and load errors name the variant
// that referenced the missing file.
func TestCampaignXMLFaultAttributes(t *testing.T) {
	ms, err := sgml.EPICModelSet()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	scenarioXML := []byte(`<Scenario name="mini" steps="6" seed="1">
  <Event name="trip" atStep="1" kind="openBreaker" element="CBMicro"/>
</Scenario>`)
	if err := os.WriteFile(filepath.Join(dir, "mini.scenario.xml"), scenarioXML, 0o644); err != nil {
		t.Fatal(err)
	}

	campaignXML := []byte(`<Campaign name="budget-sweep">
  <Variant name="full"   scenario="mini.scenario.xml" seeds="1"/>
  <Variant name="capped" scenario="mini.scenario.xml" seeds="1" maxSteps="2"/>
</Campaign>`)
	c, err := sgml.ParseCampaign(campaignXML, dir, ms)
	if err != nil {
		t.Fatal(err)
	}
	if c.Variants[0].MaxSteps != 0 || c.Variants[1].MaxSteps != 2 {
		t.Fatalf("maxSteps threading = %d, %d", c.Variants[0].MaxSteps, c.Variants[1].MaxSteps)
	}
	rep, err := sgml.RunCampaign(context.Background(), c, sgml.WithRetries(3))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 1 {
		t.Fatalf("Failures = %d, want exactly the capped variant\n%s", rep.Failures, rep)
	}
	for i := range rep.Runs {
		run := &rep.Runs[i]
		switch run.Variant {
		case "capped":
			if run.Failure != sgml.FailScenario || len(run.Retries) != 0 {
				t.Errorf("capped run = failure %q, %d retries; want deterministic unretried FailScenario",
					run.Failure, len(run.Retries))
			}
		case "full":
			if run.Err != "" {
				t.Errorf("uncapped run failed: %s", run.Err)
			}
		}
	}

	// Negative budgets are structural errors.
	bad := []byte(`<Campaign name="x"><Variant name="v" scenario="mini.scenario.xml" maxSteps="-1"/></Campaign>`)
	if _, err := sgml.ParseCampaign(bad, dir, ms); err == nil {
		t.Error("negative maxSteps accepted")
	}

	// A dangling scenario reference is attributed to its variant.
	dangling := []byte(`<Campaign name="x">
  <Variant name="ok"     scenario="mini.scenario.xml" seeds="1"/>
  <Variant name="broken" scenario="nope.scenario.xml" seeds="1"/>
</Campaign>`)
	_, err = sgml.ParseCampaign(dangling, dir, ms)
	if err == nil || !strings.Contains(err.Error(), `variant broken`) || !strings.Contains(err.Error(), "nope.scenario.xml") {
		t.Errorf("dangling scenario error = %v, want the variant named", err)
	}

	// Same for a dangling model directory reference.
	danglingModel := []byte(`<Campaign name="x">
  <Variant name="m" scenario="mini.scenario.xml" seeds="1" model="no-such-dir"/>
</Campaign>`)
	_, err = sgml.ParseCampaign(danglingModel, dir, ms)
	if err == nil || !strings.Contains(err.Error(), `variant m`) {
		t.Errorf("dangling model error = %v, want the variant named", err)
	}
}
