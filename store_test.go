package sgml_test

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	sgml "repro"

	"repro/mms"
	"repro/netem"
)

// storeSweep is the differential workload: the same drill under the shipped
// configuration (8 seeds) and under the reference engine + reference data
// plane, so the store contract is exercised across both step engines and
// both data planes in one sweep.
func storeSweep(ms *sgml.ModelSet) *sgml.Campaign {
	drill := &sgml.Scenario{
		Name:  "store-drill",
		Steps: 8,
		Attackers: []sgml.AttackerSpec{
			{Name: "redbox", Switch: "sw-TransLAN", IP: netem.MustIPv4("10.0.1.13")},
		},
		Events: []sgml.Event{
			{Name: "blue", Trigger: sgml.At(0), Action: sgml.DeployIDS{
				AuthorizedWriters: []string{"SCADA", "CPLC"}, PortScanThreshold: 5}},
			{Name: "recon", Trigger: sgml.At(2), Action: sgml.PortScan{
				Attacker: "redbox", Target: "TIED1"}},
			{Name: "fci", Trigger: sgml.OnAlert(sgml.AlertPortScan).Plus(1), Action: sgml.FalseCommand{
				Attacker: "redbox", Target: "TIED1",
				Ref: "LD0/XCBR1.Pos.Oper", Value: mms.NewBool(false)}},
		},
	}
	reference := false
	return &sgml.Campaign{
		Name:  "store-sweep",
		Model: ms,
		Variants: []sgml.CampaignVariant{
			{Name: "parallel", Scenario: drill,
				Seeds: []int64{1, 2, 3, 4, 5, 6, 7, 8}},
			{Name: "reference", Scenario: drill, Seeds: []int64{1, 2}, Sequential: true,
				FramePooling: &reference},
		},
	}
}

// interruptSink cancels the campaign context after `after` delivered runs —
// the in-process stand-in for killing the sweep mid-flight.
type interruptSink struct {
	cancel context.CancelFunc
	after  int32
	n      int32
}

func (s *interruptSink) Put(run sgml.CampaignRun) error {
	if atomic.AddInt32(&s.n, 1) == s.after {
		s.cancel()
	}
	return nil
}

func fingerprintMap(t *testing.T, rep *sgml.CampaignReport) map[string]string {
	t.Helper()
	out := make(map[string]string, len(rep.Runs))
	for i := range rep.Runs {
		run := &rep.Runs[i]
		if run.Fingerprint == "" {
			t.Fatalf("run %s:%d:%d has no fingerprint", run.Variant, run.Seed, run.Attempt)
		}
		out[runKey(run)] = run.Fingerprint
	}
	return out
}

func runKey(run *sgml.CampaignRun) string {
	return fmt.Sprintf("%s:%d:%d", run.Variant, run.Seed, run.Attempt)
}

// TestCampaignStoreResumeDifferential pins the load-bearing store contract:
// an interrupted sweep resumed from its store yields a fingerprint map and a
// Merkle root byte-identical to the same sweep run uninterrupted — across
// both provisioning paths (compile-once-fork and per-run-compile) and both
// step engines (the sweep carries a sequential reference variant).
func TestCampaignStoreResumeDifferential(t *testing.T) {
	ms, err := sgml.EPICModelSet()
	if err != nil {
		t.Fatal(err)
	}
	paths := map[string][]sgml.CampaignOption{
		"forked":          nil,
		"per-run-compile": {sgml.WithPerRunCompile()},
	}
	for name, extra := range paths {
		t.Run(name, func(t *testing.T) {
			// Baseline: the sweep run uninterrupted into its own store.
			baseDir := t.TempDir()
			opts := append([]sgml.CampaignOption{sgml.WithWorkers(2), sgml.WithStore(baseDir)}, extra...)
			base, err := sgml.RunCampaign(context.Background(), storeSweep(ms), opts...)
			if err != nil {
				t.Fatal(err)
			}
			if !base.OK() || base.MerkleRoot == "" {
				t.Fatalf("baseline not clean/sealed: OK=%t root=%q\n%s", base.OK(), base.MerkleRoot, base)
			}
			baseFPs := fingerprintMap(t, base)
			if vs, err := sgml.VerifyStore(baseDir); err != nil || vs[0].Root != base.MerkleRoot {
				t.Fatalf("baseline store verify: %v (%+v)", err, vs)
			}

			// Interrupted: same sweep into a fresh store, killed after three
			// completed runs. (The kill races the dispatcher by design; if
			// every cell slipped through anyway the resume below is simply
			// trivial and the differential still holds.)
			resDir := t.TempDir()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			sink := &interruptSink{cancel: cancel, after: 3}
			opts = append([]sgml.CampaignOption{
				sgml.WithWorkers(2), sgml.WithStore(resDir), sgml.WithRunSink(sink)}, extra...)
			interrupted, err := sgml.RunCampaign(ctx, storeSweep(ms), opts...)
			if err != nil {
				t.Fatal(err)
			}
			if interrupted.Failures > 0 {
				// Cancelled cells exist, so the sweep never sealed: the store
				// must refuse verification until resumed to completion.
				if interrupted.MerkleRoot != "" {
					t.Fatal("interrupted sweep sealed a Merkle root")
				}
				if _, err := sgml.VerifyStore(resDir); err == nil {
					t.Fatal("verify accepted an unsealed, interrupted store")
				}
			} else {
				t.Log("cancel raced to completion; resume below is trivial restoration")
			}

			// Resume: only the missing cells execute; restored cells are
			// marked. The final report must be indistinguishable from the
			// baseline in every deterministic respect.
			opts = append([]sgml.CampaignOption{
				sgml.WithWorkers(2), sgml.WithStore(resDir), sgml.WithResume()}, extra...)
			resumed, err := sgml.RunCampaign(context.Background(), storeSweep(ms), opts...)
			if err != nil {
				t.Fatal(err)
			}
			if !resumed.OK() {
				t.Fatalf("resumed sweep not clean:\n%s", resumed)
			}
			if resumed.Resumed == 0 {
				t.Fatal("resume restored no cells")
			}
			marked := 0
			for i := range resumed.Runs {
				if resumed.Runs[i].Resumed {
					marked++
					if resumed.Runs[i].Report == nil {
						t.Fatalf("resumed run %d has no rehydrated report", i)
					}
				}
			}
			if marked != resumed.Resumed {
				t.Fatalf("Resumed count %d != marked runs %d", resumed.Resumed, marked)
			}
			if resumed.TotalRuns != base.TotalRuns {
				t.Fatalf("resumed TotalRuns = %d, want %d", resumed.TotalRuns, base.TotalRuns)
			}
			resFPs := fingerprintMap(t, resumed)
			for k, fp := range baseFPs {
				if resFPs[k] != fp {
					t.Errorf("run %s: resumed fingerprint %s != baseline %s", k, resFPs[k], fp)
				}
			}
			if resumed.MerkleRoot != base.MerkleRoot {
				t.Fatalf("resumed Merkle root %s != baseline %s", resumed.MerkleRoot, base.MerkleRoot)
			}
			// Both stores now verify to the same root, and every cell's
			// inclusion proof checks out.
			vs, err := sgml.VerifyStore(resDir)
			if err != nil {
				t.Fatalf("resumed store verify: %v", err)
			}
			if vs[0].Root != base.MerkleRoot {
				t.Fatalf("resumed store root %s != baseline %s", vs[0].Root, base.MerkleRoot)
			}
			for i := range resumed.Runs {
				run := &resumed.Runs[i]
				if _, err := sgml.VerifyStoreRun(resDir, run.Variant, run.Seed, run.Attempt); err != nil {
					t.Errorf("inclusion proof %s:%d:%d: %v", run.Variant, run.Seed, run.Attempt, err)
				}
			}
		})
	}
}
