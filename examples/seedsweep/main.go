// Seed-sweep campaign: the population form of a scenario experiment.
//
// A single sgml.Run answers "what happens in this drill with seed 7?"; real
// IDS evaluation needs distributions — how do precision, recall and alert
// latency behave across many seeds, and do the parallel engine and the
// pooled data plane change any outcome? This example declares a Campaign
// with two variants of the same red/blue drill:
//
//   - "parallel": the shipped configuration (sharded step engine, pooled
//     data plane), swept over four seeds,
//   - "reference": the single-threaded engine with the copy-per-publish data
//     plane, two seeds × two attempts each, which doubles as a determinism
//     probe (repeated seeds must reproduce identical fingerprints).
//
// RunCampaign executes all eight runs concurrently on a bounded worker pool
// and aggregates the per-variant distributions plus the determinism verdict.
// The model is compiled once into a root range; every run forks that root
// (CyberRange.Fork) into a private, isolated range instead of recompiling —
// the immutable artifacts (parsed SCL, power model, device configs, prewarmed
// solver) are shared read-only, everything mutable is per-fork. A preview run
// goes through the same machinery explicitly via Compile + RunCompiled.
//
// The second half of the example makes the sweep durable: the same campaign
// runs again with sgml.WithStore, is interrupted mid-flight (a RunSink
// cancels the context after two completed runs — the in-process stand-in for
// kill -9), and is then resumed with sgml.WithResume. The resumed report
// restores the already-persisted cells without re-executing them, seals the
// sweep under a Merkle root, and sgml.VerifyStore re-derives that root from
// the bytes on disk.
//
// The same sweep in declarative form lives next to this file
// (sweep.campaign.xml + drill.scenario.xml) and runs headlessly with:
//
//	go run ./cmd/sclgen -out models/epic
//	go run ./cmd/rangectl campaign run models/epic examples/seedsweep/sweep.campaign.xml \
//	  -store results/
//	go run ./cmd/rangectl campaign verify results/
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sync/atomic"

	sgml "repro"

	"repro/mms"
	"repro/netem"
)

// interruptSink cancels the campaign after `after` completed runs have been
// delivered — simulating a sweep killed mid-flight.
type interruptSink struct {
	cancel context.CancelFunc
	after  int32
	n      int32
}

func (s *interruptSink) Put(sgml.CampaignRun) error {
	if atomic.AddInt32(&s.n, 1) == s.after {
		s.cancel()
	}
	return nil
}

func main() {
	ms, err := sgml.EPICModelSet()
	if err != nil {
		log.Fatal(err)
	}

	// The drill under study: deploy the IDS, run recon, chain a false
	// command injection off the port-scan alert.
	drill := &sgml.Scenario{
		Name:  "seedsweep-drill",
		Steps: 10,
		Attackers: []sgml.AttackerSpec{
			{Name: "redbox", Switch: "sw-TransLAN", IP: netem.MustIPv4("10.0.1.13")},
		},
		Events: []sgml.Event{
			{Name: "blue", Trigger: sgml.At(0), Action: sgml.DeployIDS{
				AuthorizedWriters: []string{"SCADA", "CPLC"}, PortScanThreshold: 5}},
			{Name: "recon", Trigger: sgml.At(2), Action: sgml.PortScan{
				Attacker: "redbox", Target: "TIED1"}},
			{Name: "fci", Trigger: sgml.OnAlert(sgml.AlertPortScan).Plus(1), Action: sgml.FalseCommand{
				Attacker: "redbox", Target: "TIED1",
				Ref: "LD0/XCBR1.Pos.Oper", Value: mms.NewBool(false)}},
		},
	}

	// Compile once; the campaign below reuses the same pipeline internally.
	// A single preview run via RunCompiled sanity-checks the drill (and warms
	// nothing the campaign wouldn't warm itself): the root stays pristine, the
	// run executes on a fork that is stopped when RunCompiled returns.
	cr, err := sgml.Compile(ms)
	if err != nil {
		log.Fatal(err)
	}
	defer cr.Stop()
	preview, err := sgml.RunCompiled(context.Background(), cr, drill)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("preview run: %d steps, precision=%.2f recall=%.2f\n\n",
		preview.Steps, preview.Precision, preview.Recall)

	reference := false
	campaign := &sgml.Campaign{
		Name:  "seedsweep",
		Model: ms,
		Variants: []sgml.CampaignVariant{
			{Name: "parallel", Scenario: drill, Seeds: []int64{1, 2, 3, 4}},
			{Name: "reference", Scenario: drill, Seeds: []int64{1, 2}, Repeat: 2,
				Sequential: true, FramePooling: &reference},
		},
	}

	rep, err := sgml.RunCampaign(context.Background(), campaign, sgml.WithWorkers(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)

	// Drill into the population: the per-run records carry the full
	// RunReports, so any outlier is one index away.
	for _, run := range rep.Runs {
		fmt.Printf("run %s seed=%d attempt=%d fp=%s precision=%.2f recall=%.2f\n",
			run.Variant, run.Seed, run.Attempt, run.Fingerprint, run.Precision, run.Recall)
	}

	if !rep.OK() {
		fmt.Println("\ncampaign had failures or determinism mismatches")
		os.Exit(1)
	}
	fmt.Println("\nall runs clean; repeated seeds reproduced identical fingerprints")

	// --- Durable sweep: store, interrupt, resume, verify -------------------
	//
	// Run the same campaign into an append-only store and kill it after two
	// completed runs. Every finished cell is already fsync'd, so nothing is
	// lost; the interrupted sweep simply is not sealed yet.
	storeDir, err := os.MkdirTemp("", "seedsweep-store-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(storeDir)

	ctx, cancelSweep := context.WithCancel(context.Background())
	defer cancelSweep()
	sink := &interruptSink{cancel: cancelSweep, after: 2}
	interrupted, err := sgml.RunCampaign(ctx, campaign,
		sgml.WithWorkers(2), sgml.WithStore(storeDir), sgml.WithRunSink(sink))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninterrupted sweep: %d/%d cells persisted before the kill\n",
		interrupted.TotalRuns-interrupted.Failures, interrupted.TotalRuns)

	// Resume from the store: persisted cells are restored (and marked
	// Resumed), only the missing ones execute, and the complete sweep is
	// sealed under a Merkle root over every run fingerprint.
	resumed, err := sgml.RunCampaign(context.Background(), campaign,
		sgml.WithWorkers(2), sgml.WithStore(storeDir), sgml.WithResume())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed sweep: %d cells restored from the store, %d executed\n",
		resumed.Resumed, resumed.TotalRuns-resumed.Resumed)
	fmt.Printf("merkle root: %s\n", resumed.MerkleRoot)
	if !resumed.OK() || resumed.MerkleRoot == "" {
		fmt.Println("resumed sweep not clean/sealed")
		os.Exit(1)
	}

	// Independent audit: re-derive the root from the bytes on disk. Any
	// flipped byte, dropped record or forged report fails this check.
	audits, err := sgml.VerifyStore(storeDir)
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range audits {
		if a.Root != resumed.MerkleRoot {
			fmt.Printf("store root %s != report root %s\n", a.Root, resumed.MerkleRoot)
			os.Exit(1)
		}
		fmt.Printf("store verified: %s (%d runs) root matches\n", a.Campaign, a.Runs)
	}
}
