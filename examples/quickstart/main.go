// Quickstart: generate the EPIC demonstration model, compile it into a cyber
// range, run a few simulation intervals and read the grid through the SCADA
// HMI — the full Fig 2 workflow in ~40 lines of API usage.
//
// This is the manual-driving workflow; for declarative, reproducible
// experiments (attack drills with IDS scoring, fault scenarios) see
// sgml.Run and the Scenario DSL, demonstrated in examples/redblue.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	sgml "repro"
)

func main() {
	// 1. Generate (or load) the SG-ML model. Operators would call
	//    sgml.LoadModelDir with their own SCL + supplementary XML files.
	ms, err := sgml.EPICModelSet()
	if err != nil {
		log.Fatal(err)
	}

	// 2. "Compile" the model into an operational cyber range.
	r, err := sgml.Compile(ms)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Stop()
	fmt.Printf("compiled EPIC range: %d virtual IEDs, %d PLCs\n\n", len(r.IEDs), len(r.PLCs))
	fmt.Println(r.PowerSummary())

	// 3. Start the devices (step-driven mode for deterministic output).
	if err := r.Start(context.Background(), false); err != nil {
		log.Fatal(err)
	}

	// 4. Advance the coupled simulation a few 100 ms intervals.
	now := time.Now()
	for i := 0; i < 5; i++ {
		now = now.Add(r.Interval())
		if err := r.StepAll(now); err != nil {
			log.Fatal(err)
		}
	}

	// 5. Observe the grid exactly as an operator would.
	fmt.Println(r.HMI.StatusPanel())

	// 6. Issue a control action: open the tie breaker via the PLC...
	if err := r.HMI.Control("DP_ManualTrip", 1); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		now = now.Add(r.Interval())
		if err := r.StepAll(now); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("after manual trip:")
	fmt.Println(r.HMI.StatusPanel())

	res := r.Sim.LastResult()
	fmt.Printf("grid state: %d island(s), %d de-energised bus(es)\n", res.Islands, res.DeadBuses)
}
