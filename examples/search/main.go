// Coverage-guided scenario search: hunt the scenario space around a benign
// seed for interesting outcomes — here, the EPIC IDS's Modbus blind spot.
//
// The seed scenario deploys the IDS and nudges one load; nothing in it is an
// attack. The searcher mutates it (event insertion/deletion, trigger jitter,
// target permutation drawn from the compiled model's inventory), runs every
// candidate on a fork of one compiled range, and scores the reports with
// interestingness oracles. The missed-detection oracle flags the blind spot:
// the sensor inspects MMS control writes (port 102), ARP, GOOSE and port
// scans — but a ModbusTamper reaches a PLC over port 502 unseen, so its
// injected ground truth can never be detected. Each find is delta-debugged to
// a minimal reproducing <Scenario> XML whose replay fingerprint is pinned.
//
// Everything is deterministic: a fixed (model, seed scenario, search seed,
// budget) reproduces the same finds, minimized repros and fingerprints
// regardless of worker count, step engine or provisioning path. The same
// search runs from the command line:
//
//	rangectl search models/epic examples/search/seed.scenario.xml -search-seed 3 -budget 16
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	sgml "repro"
)

func main() {
	ms, err := sgml.EPICModelSet()
	if err != nil {
		log.Fatal(err)
	}
	seed, err := sgml.LoadScenarioFile("examples/search/seed.scenario.xml")
	if err != nil {
		log.Fatal(err)
	}

	res, err := sgml.Search(context.Background(), ms, seed, sgml.SearchOptions{
		SearchSeed: 3,
		Budget:     16,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("searched %d candidates (%d novel behaviours, %d runs): %d find(s)\n",
		res.Candidates, res.Novel, res.Runs, len(res.Finds))
	for _, f := range res.Finds {
		fmt.Printf("\n== %s (found at candidate %d, minimized to %d event(s)) ==\n  %s\n",
			f.Oracle, f.FoundAt, f.Events, f.Detail)
	}

	// A find is a self-contained repro: its XML re-parses and replays to the
	// pinned fingerprint under the recorded step cap — under either engine.
	for _, f := range res.Finds {
		if f.Oracle != "missed-detection" {
			continue
		}
		fmt.Printf("\nminimized blind-spot repro:\n%s", f.XML)
		sc, err := sgml.ParseScenario(f.XML)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sgml.Run(context.Background(), ms, sc,
			sgml.WithMaxSteps(f.MaxSteps), sgml.WithSequential())
		if err != nil {
			log.Fatal(err)
		}
		if rep.Fingerprint() != f.Fingerprint {
			fmt.Println("replay diverged from the pinned fingerprint")
			os.Exit(1)
		}
		fmt.Println("\nreplay (sequential engine) reproduced the pinned fingerprint")
	}
}
