// Red-team vs blue-team training exercise, expressed as a Scenario.
//
// The paper positions the cyber range for "cybersecurity hands-on training
// and education" and red-team exercises (§I). This example declares the full
// engagement on the EPIC range as a reproducible scenario: the blue team
// deploys a passive IDS sensor, the red team works through reconnaissance,
// false command injection and an ARP-spoofing MITM — with the later phases
// chained off the IDS's own alerts — and the run returns a structured
// report whose alert timeline is matched against the injected ground truth.
// Re-running with the same seed replays the engagement identically.
package main

import (
	"context"
	"fmt"
	"log"

	sgml "repro"

	"repro/mms"
	"repro/netem"
)

func main() {
	ms, err := sgml.EPICModelSet()
	if err != nil {
		log.Fatal(err)
	}

	sc := &sgml.Scenario{
		Name: "redblue",
		Seed: 7,
		// Red team: a compromised box on the transmission LAN.
		Attackers: []sgml.AttackerSpec{
			{Name: "redbox", Switch: "sw-TransLAN", IP: netem.MustIPv4("10.0.1.13")},
		},
		Events: []sgml.Event{
			// Blue team: sensor up before anything else. Only SCADA and the
			// CPLC are authorized to issue MMS control writes.
			{Name: "blue-sensor", Trigger: sgml.At(0), Action: sgml.DeployIDS{
				Name:              "blue",
				AuthorizedWriters: []string{"SCADA", "CPLC"},
				PortScanThreshold: 5,
			}},
			// Phase 1: reconnaissance — port scan of the target IED.
			{Name: "recon", Trigger: sgml.At(3), Action: sgml.PortScan{
				Attacker: "redbox", Target: "TIED1",
			}},
			// Phase 2: once the scan trips the IDS, inject the breaker-open
			// command at the MMS service the scan discovered.
			{Name: "fci", Trigger: sgml.OnAlert(sgml.AlertPortScan).Plus(1), Action: sgml.FalseCommand{
				Attacker: "redbox", Target: "TIED1",
				Ref: "LD0/XCBR1.Pos.Oper", Value: mms.NewBool(false),
			}},
			// Phase 3: MITM between CPLC and TIED1 to hide the restoration
			// value (pure interception), withdrawn after three steps.
			{Name: "mitm", Trigger: sgml.OnAlert(sgml.AlertUnauthorizedWrite).Plus(1), Action: sgml.StartMITM{
				Attacker: "redbox", VictimA: "CPLC", VictimB: "TIED1",
				ScaleFloats: 1.0, ForSteps: 3,
			}},
		},
		Steps: 16,
	}

	rep, err := sgml.Run(context.Background(), ms, sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)

	// The structured report doubles as the exercise scorecard.
	fmt.Println("=== SCORECARD ===")
	for _, tr := range rep.Truth {
		if tr.Detected {
			fmt.Printf("detected  %-24s (%s, step %d)\n", tr.Expect, tr.Event, tr.DetectedStep)
		} else {
			fmt.Printf("MISSED    %-24s (%s)\n", tr.Expect, tr.Event)
		}
	}
	fmt.Printf("precision %.2f, recall %.2f\n", rep.Precision, rep.Recall)
	fmt.Printf("ground truth: grid impact = %d de-energised buses\n", rep.Grid.DeadBuses)
}
