// Red-team vs blue-team training exercise.
//
// The paper positions the cyber range for "cybersecurity hands-on training
// and education" and red-team exercises (§I). This example runs a full
// engagement on the EPIC range: a passive IDS sensor (blue team) watches the
// fabric while the attacker (red team) works through reconnaissance, false
// command injection and an ARP-spoofing MITM — then the alert timeline is
// compared against ground truth.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	sgml "repro"

	"repro/internal/attack"
	"repro/internal/ids"
	"repro/internal/mms"
	"repro/internal/netem"
)

func main() {
	ms, err := sgml.EPICModelSet()
	if err != nil {
		log.Fatal(err)
	}
	r, err := sgml.Compile(ms)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Stop()

	// Blue team: deploy the sensor before anything starts. Only SCADA and
	// the CPLC are authorized to issue MMS control writes.
	sensor := ids.New(ids.Options{
		AuthorizedWriters: []netem.IPv4{r.Built.AddrOf["SCADA"], r.Built.AddrOf["CPLC"]},
		PortScanThreshold: 5,
	})
	sensor.Attach(r.Net)

	// Red team: a compromised box on the transmission LAN.
	attacker, err := r.Built.AttachHost("redbox",
		netem.MustMAC("02:ba:d0:00:00:13"), netem.MustIPv4("10.0.1.13"), "sw-TransLAN")
	if err != nil {
		log.Fatal(err)
	}
	if err := r.Start(context.Background(), false); err != nil {
		log.Fatal(err)
	}
	now := time.Now()
	step := func(n int) {
		for i := 0; i < n; i++ {
			now = now.Add(r.Interval())
			if err := r.StepAll(now); err != nil {
				log.Fatal(err)
			}
		}
	}
	step(3)

	fmt.Println("=== RED TEAM ACTIONS ===")
	// Phase 1: recon — ARP sweep + port scan of a discovered host.
	alive := attack.ARPSweep(attacker, netem.IPv4{10, 0, 1, 0}, 1, 50, 30*time.Millisecond)
	fmt.Printf("[red] ARP sweep found %d hosts\n", len(alive))
	results := attack.ScanPorts(attacker, r.Built.AddrOf["TIED1"], []uint16{21, 22, 23, 80, 102, 443, 502, 2404})
	open := 0
	for _, res := range results {
		if res.Open {
			open++
			fmt.Printf("[red] TIED1 port %d open\n", res.Port)
		}
	}

	// Phase 2: false command injection against the discovered MMS service.
	fci := attack.NewFCI(attacker)
	if err := fci.InjectCommand(r.Built.AddrOf["TIED1"], 0, "LD0/XCBR1.Pos.Oper", mms.NewBool(false)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("[red] injected breaker-open at TIED1")
	step(2)

	// Phase 3: MITM between CPLC and TIED1 to hide the restoration value.
	m := attack.NewMITM(attacker, r.Built.AddrOf["CPLC"], r.Built.AddrOf["TIED1"])
	m.SetPayloadTamper(attack.ScaleMMSFloats(1.0)) // pure interception
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := m.Start(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("[red] MITM mounted between CPLC and TIED1")
	time.Sleep(60 * time.Millisecond)
	step(2)
	m.Stop()

	fmt.Println("\n=== BLUE TEAM: IDS ALERT TIMELINE ===")
	for _, a := range sensor.Alerts() {
		fmt.Printf("%s  %-24s src=%-18s %s\n", a.Time.Format("15:04:05.000"), a.Kind, a.Source, a.Detail)
	}
	fmt.Printf("\nsensor inspected %d frames\n", sensor.Frames())

	// Scorecard: did the blue team see every phase?
	fmt.Println("\n=== SCORECARD ===")
	check := func(kind ids.AlertKind, phase string) {
		if len(sensor.AlertsOf(kind)) > 0 {
			fmt.Printf("detected  %-22s (%s)\n", string(kind), phase)
		} else {
			fmt.Printf("MISSED    %-22s (%s)\n", string(kind), phase)
		}
	}
	check(ids.AlertPortScan, "phase 1: recon")
	check(ids.AlertUnauthorizedWrite, "phase 2: false command injection")
	check(ids.AlertARPSpoof, "phase 3: MITM")
	fmt.Printf("\nground truth: grid impact = %d de-energised buses\n", r.Sim.LastResult().DeadBuses)
}
