// Man-in-the-middle case study (Fig 6 of the paper).
//
// "Typically MITM attack is mounted by using ARP spoofing. This confuses the
// mapping between a device's logical (IP) address and physical address.
// Using ARP spoofing, an attacker can mislead the traffic to itself for
// interception and manipulation. As a consequence, the attacker could
// possibly mislead the SCADA HMI or the PLC to confuse the plant control."
//
// The attacker poisons the ARP caches of the CPLC and TIED1, inserts itself
// on the path, and rewrites every MMS float measurement in flight — halving
// the voltage the PLC reports to SCADA while the real grid is healthy.
// This example drives the attack interactively through the public red-team
// facades (repro/attack, repro/netem); the scenario DSL expresses the same
// MITM declaratively (sgml.StartMITM — see examples/redblue).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	sgml "repro"

	"repro/attack"
	"repro/netem"
)

func main() {
	ms, err := sgml.EPICModelSet()
	if err != nil {
		log.Fatal(err)
	}
	r, err := sgml.Compile(ms)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Stop()

	// The attacker sits on the control LAN (between CPLC and the WAN path
	// to TIED1) — any switch on the victim path works for ARP spoofing.
	attacker, err := r.Built.AttachHost("attacker",
		netem.MustMAC("02:ba:d0:00:00:99"), netem.MustIPv4("10.0.1.99"), "sw-ControlLAN")
	if err != nil {
		log.Fatal(err)
	}
	if err := r.Start(context.Background(), false); err != nil {
		log.Fatal(err)
	}
	now := time.Now()
	step := func(n int) {
		for i := 0; i < n; i++ {
			now = now.Add(r.Interval())
			if err := r.StepAll(now); err != nil {
				log.Fatal(err)
			}
		}
	}
	step(3)

	vp, _ := r.HMI.Point("DP_MainVoltage")
	fmt.Printf("before MITM: SCADA reads MainVoltage = %.4f pu (true grid value)\n", vp.Value)

	// --- mount the MITM ----------------------------------------------------
	m := attack.NewMITM(attacker, r.Built.AddrOf["CPLC"], r.Built.AddrOf["TIED1"])
	m.SetPayloadTamper(attack.ScaleMMSFloats(0.5)) // Fig 6: falsify the measurement
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := m.Start(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nARP caches poisoned; attacker forwarding with measurement rewrite (x0.5)")
	time.Sleep(50 * time.Millisecond)
	step(3)

	vp, _ = r.HMI.Point("DP_MainVoltage")
	fmt.Printf("during MITM: SCADA reads MainVoltage = %.4f pu (falsified!)\n", vp.Value)
	fmt.Printf("             true grid value is %.4f pu\n",
		r.Sim.LastResult().Buses["EPIC/VL22/TransBay/MainBus"].VmPU)
	fwd, mod, drop := m.Stats()
	fmt.Printf("attacker stats: %d packets forwarded, %d modified, %d dropped\n", fwd, mod, drop)
	fmt.Println("\noperator view (under-voltage alarm from falsified data):")
	fmt.Println(r.HMI.StatusPanel())

	// The spoofing leaves a detectable footprint on the victims.
	cplc := r.Built.Hosts["CPLC"]
	fmt.Printf("IDS footprint: CPLC observed %d unsolicited ARP replies\n", len(cplc.UnsolicitedARPs()))

	// --- withdraw ----------------------------------------------------------
	m.Stop()
	time.Sleep(50 * time.Millisecond)
	step(3)
	vp, _ = r.HMI.Point("DP_MainVoltage")
	fmt.Printf("\nafter heal: SCADA reads MainVoltage = %.4f pu again\n", vp.Value)
}
