// False command injection case study (§IV-B).
//
// "Assuming that the attacker has compromised one of the nodes in the system
// and run malwares like CrashOverride to transmit fake IEC 61850 MMS
// commands. [...] Once the IED receives a circuit breaker open command, the
// corresponding CB is operated, and the power flow change is calculated by
// the power flow simulator."
//
// The attacker box is attached to the transmission-segment switch, runs MMS
// reconnaissance (GetNameList), then injects a standard-compliant breaker
// open command at TIED1 — and the lights go out downstream.
//
// This example drives the attack interactively through the public red-team
// facades (repro/attack, repro/mms, repro/netem); the scenario DSL expresses
// the same injection declaratively (see examples/redblue).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	sgml "repro"

	"repro/attack"
	"repro/mms"
	"repro/netem"
)

func main() {
	ms, err := sgml.EPICModelSet()
	if err != nil {
		log.Fatal(err)
	}
	r, err := sgml.Compile(ms)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Stop()

	// Attach the compromised node before the network starts.
	attackerHost, err := r.Built.AttachHost("attacker",
		netem.MustMAC("02:ba:d0:00:00:66"), netem.MustIPv4("10.0.1.66"), "sw-TransLAN")
	if err != nil {
		log.Fatal(err)
	}
	if err := r.Start(context.Background(), false); err != nil {
		log.Fatal(err)
	}
	now := time.Now()
	step := func(n int) {
		for i := 0; i < n; i++ {
			now = now.Add(r.Interval())
			if err := r.StepAll(now); err != nil {
				log.Fatal(err)
			}
		}
	}
	step(2)

	mainBus := "EPIC/VL22/TransBay/MainBus"
	before := r.Sim.LastResult()
	fmt.Printf("before attack: MainBus %.4f pu, energized=%v\n",
		before.Buses[mainBus].VmPU, before.Buses[mainBus].Energized)

	// --- reconnaissance ---------------------------------------------------
	fci := attack.NewFCI(attackerHost)
	victim := r.Built.AddrOf["TIED1"]
	names, err := fci.Enumerate(victim, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nenumerated %d objects on TIED1 (10.0.1.21):\n", len(names))
	for _, n := range names {
		fmt.Println("  ", n)
	}

	// --- injection ---------------------------------------------------------
	fmt.Println("\ninjecting breaker-open command (MMS write to XCBR1.Pos.Oper)...")
	if err := fci.InjectCommand(victim, 0, "LD0/XCBR1.Pos.Oper", mms.NewBool(false)); err != nil {
		log.Fatal(err)
	}
	step(2) // the simulator picks the command up on its next interval

	after := r.Sim.LastResult()
	fmt.Printf("\nafter attack: MainBus %.4f pu, energized=%v, dead buses=%d\n",
		after.Buses[mainBus].VmPU, after.Buses[mainBus].Energized, after.DeadBuses)
	fmt.Println("\nSCADA operator view (note the alarms):")
	fmt.Println(r.HMI.StatusPanel())
	for _, e := range r.HMI.Events() {
		fmt.Printf("scada event: %-14s %-18s %s\n", e.Kind, e.Point, e.Detail)
	}
}
