// Multi-substation scalability demonstration (§IV-A).
//
// "Based on our experiments, a commodity desktop PC with Intel Core i9
// Processor and 16GB RAM can host a 5-substation model including 104 virtual
// IEDs with 100ms power flow simulation interval."
//
// This example compiles the 5-substation / 105-IED scale model (5 gateways +
// 100 feeder IEDs), runs it in real time for a few seconds and reports
// whether every component held the 100 ms budget.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	sgml "repro"
)

func main() {
	const subs, feeders = 5, 20
	ms, totalIEDs, err := sgml.ScaleModelSet(subs, feeders)
	if err != nil {
		log.Fatal(err)
	}
	compileStart := time.Now()
	r, err := sgml.Compile(ms)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Stop()
	compileTime := time.Since(compileStart)
	fmt.Printf("compiled %d-substation model: %d virtual IEDs in %v\n", subs, totalIEDs, compileTime)
	fmt.Printf("power model: %d buses, %d lines (%d inter-substation ties)\n",
		len(r.Grid.Buses), len(r.Grid.Lines), subs-1)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startAt := time.Now()
	if err := r.Start(ctx, true); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range started in %v; running 3 s of real time at %v interval...\n",
		time.Since(startAt), r.Interval())
	time.Sleep(3 * time.Second)
	r.Stop()

	steps, meanSolve := r.Sim.Stats()
	fmt.Printf("\nsimulation: %d steps, mean solve %v (budget %v)\n", steps, meanSolve, r.Interval())
	if meanSolve < r.Interval() {
		fmt.Println("==> the 100 ms power-flow interval HOLDS for 5 substations /", totalIEDs, "IEDs")
	} else {
		fmt.Println("==> budget exceeded")
	}
	var totalIEDSteps uint64
	for _, dev := range r.IEDs {
		totalIEDSteps += dev.Steps()
	}
	fmt.Printf("virtual IEDs: %d protection evaluations across %d devices\n", totalIEDSteps, len(r.IEDs))
	res := r.Sim.LastResult()
	fmt.Printf("grid: converged=%v, %d island(s), %d dead bus(es)\n",
		res.Converged, res.Islands, res.DeadBuses)
}
