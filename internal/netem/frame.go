package netem

import (
	"encoding/binary"
	"fmt"
)

// EtherType values used on the range.
const (
	EtherTypeIPv4  uint16 = 0x0800
	EtherTypeARP   uint16 = 0x0806
	EtherTypeGOOSE uint16 = 0x88B8
	EtherTypeSV    uint16 = 0x88BA
)

// IP protocol numbers.
const (
	IPProtoTCP byte = 6
	IPProtoUDP byte = 17
)

// Frame is an Ethernet-II frame. Payload is the raw encoded upper-layer
// bytes, so frames can be captured, replayed and tampered with byte-level
// fidelity.
type Frame struct {
	Dst       MAC
	Src       MAC
	EtherType uint16
	Payload   []byte

	// pb is non-nil when Payload is backed by the fabric's payload pool; the
	// terminal deliverer releases it (see PayloadBuf for the ownership rules).
	pb *PayloadBuf
}

// Clone deep-copies the frame so taps and tamper hooks can mutate safely.
// The clone is always an ordinary heap frame, detached from the pool.
func (f Frame) Clone() Frame {
	c := f
	c.Payload = append([]byte(nil), f.Payload...)
	c.pb = nil
	return c
}

// Pooled reports whether the frame's payload is owned by the fabric pool.
func (f Frame) Pooled() bool { return f.pb != nil }

// release returns a pooled payload to its pool; a no-op for plain frames.
// Must be called exactly once, by the frame's terminal owner.
func (f Frame) release() {
	if f.pb != nil {
		f.pb.pool.put(f.pb)
	}
}

// cloneOwned duplicates a pooled frame into another pooled buffer (used by
// switch flooding: one copy per extra egress port). Plain frames are shared
// unchanged, preserving the reference path's copy-free flooding.
func (f Frame) cloneOwned() Frame {
	if f.pb == nil {
		return f
	}
	c := f
	c.pb = f.pb.pool.get()
	c.pb.B = append(c.pb.B, f.Payload...)
	c.Payload = c.pb.B
	return c
}

func (f Frame) String() string {
	return fmt.Sprintf("%s -> %s type=0x%04x len=%d", f.Src, f.Dst, f.EtherType, len(f.Payload))
}

// ARP operation codes.
const (
	ARPRequest uint16 = 1
	ARPReply   uint16 = 2
)

// ARPPacket is an ARP request or reply for IPv4-over-Ethernet.
type ARPPacket struct {
	Op        uint16
	SenderMAC MAC
	SenderIP  IPv4
	TargetMAC MAC
	TargetIP  IPv4
}

// Marshal encodes the packet in standard ARP wire format.
func (p ARPPacket) Marshal() []byte {
	b := make([]byte, 28)
	binary.BigEndian.PutUint16(b[0:], 1)      // HTYPE ethernet
	binary.BigEndian.PutUint16(b[2:], 0x0800) // PTYPE IPv4
	b[4], b[5] = 6, 4                         // HLEN, PLEN
	binary.BigEndian.PutUint16(b[6:], p.Op)
	copy(b[8:], p.SenderMAC[:])
	copy(b[14:], p.SenderIP[:])
	copy(b[18:], p.TargetMAC[:])
	copy(b[24:], p.TargetIP[:])
	return b
}

// UnmarshalARP decodes an ARP packet.
func UnmarshalARP(b []byte) (ARPPacket, error) {
	var p ARPPacket
	if len(b) < 28 {
		return p, fmt.Errorf("netem: short ARP packet (%d bytes)", len(b))
	}
	p.Op = binary.BigEndian.Uint16(b[6:])
	copy(p.SenderMAC[:], b[8:14])
	copy(p.SenderIP[:], b[14:18])
	copy(p.TargetMAC[:], b[18:24])
	copy(p.TargetIP[:], b[24:28])
	return p, nil
}

// IPPacket is a simplified IPv4 packet (no options, no fragmentation — the
// emulated LAN has no path-MTU constraints).
type IPPacket struct {
	Src      IPv4
	Dst      IPv4
	Protocol byte
	TTL      byte
	Payload  []byte
}

// Marshal encodes a 20-byte header plus payload. The checksum field is
// computed so captures look authentic.
func (p IPPacket) Marshal() []byte {
	totalLen := 20 + len(p.Payload)
	b := make([]byte, totalLen)
	b[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(b[2:], uint16(totalLen))
	ttl := p.TTL
	if ttl == 0 {
		ttl = 64
	}
	b[8] = ttl
	b[9] = p.Protocol
	copy(b[12:], p.Src[:])
	copy(b[16:], p.Dst[:])
	binary.BigEndian.PutUint16(b[10:], ipChecksum(b[:20]))
	copy(b[20:], p.Payload)
	return b
}

// UnmarshalIP decodes a simplified IPv4 packet.
func UnmarshalIP(b []byte) (IPPacket, error) {
	var p IPPacket
	if len(b) < 20 {
		return p, fmt.Errorf("netem: short IP packet (%d bytes)", len(b))
	}
	if b[0]>>4 != 4 {
		return p, fmt.Errorf("netem: not IPv4 (version %d)", b[0]>>4)
	}
	ihl := int(b[0]&0x0F) * 4
	if ihl < 20 || len(b) < ihl {
		return p, fmt.Errorf("netem: bad IHL %d", ihl)
	}
	totalLen := int(binary.BigEndian.Uint16(b[2:]))
	if totalLen > len(b) || totalLen < ihl {
		return p, fmt.Errorf("netem: bad total length %d", totalLen)
	}
	p.TTL = b[8]
	p.Protocol = b[9]
	copy(p.Src[:], b[12:16])
	copy(p.Dst[:], b[16:20])
	p.Payload = b[ihl:totalLen]
	return p, nil
}

func ipChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		if i == 10 {
			continue // checksum field itself
		}
		sum += uint32(binary.BigEndian.Uint16(hdr[i:]))
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

// UDPDatagram is a UDP header plus payload.
type UDPDatagram struct {
	SrcPort uint16
	DstPort uint16
	Payload []byte
}

// Marshal encodes the datagram (checksum zero — permitted for IPv4).
func (d UDPDatagram) Marshal() []byte {
	b := make([]byte, 8+len(d.Payload))
	binary.BigEndian.PutUint16(b[0:], d.SrcPort)
	binary.BigEndian.PutUint16(b[2:], d.DstPort)
	binary.BigEndian.PutUint16(b[4:], uint16(8+len(d.Payload)))
	copy(b[8:], d.Payload)
	return b
}

// UnmarshalUDP decodes a UDP datagram.
func UnmarshalUDP(b []byte) (UDPDatagram, error) {
	var d UDPDatagram
	if len(b) < 8 {
		return d, fmt.Errorf("netem: short UDP datagram (%d bytes)", len(b))
	}
	d.SrcPort = binary.BigEndian.Uint16(b[0:])
	d.DstPort = binary.BigEndian.Uint16(b[2:])
	length := int(binary.BigEndian.Uint16(b[4:]))
	if length < 8 || length > len(b) {
		return d, fmt.Errorf("netem: bad UDP length %d", length)
	}
	d.Payload = b[8:length]
	return d, nil
}

// TCP segment flags.
const (
	tcpFIN byte = 1 << 0
	tcpSYN byte = 1 << 1
	tcpRST byte = 1 << 2
	tcpACK byte = 1 << 4
)

// tcpSegment is a simplified TCP segment (fixed 20-byte header).
type tcpSegment struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   byte
	Window  uint16
	Payload []byte
}

func (s tcpSegment) marshal() []byte {
	b := make([]byte, 20+len(s.Payload))
	binary.BigEndian.PutUint16(b[0:], s.SrcPort)
	binary.BigEndian.PutUint16(b[2:], s.DstPort)
	binary.BigEndian.PutUint32(b[4:], s.Seq)
	binary.BigEndian.PutUint32(b[8:], s.Ack)
	b[12] = 5 << 4 // data offset
	b[13] = s.Flags
	binary.BigEndian.PutUint16(b[14:], s.Window)
	copy(b[20:], s.Payload)
	return b
}

func unmarshalTCP(b []byte) (tcpSegment, error) {
	var s tcpSegment
	if len(b) < 20 {
		return s, fmt.Errorf("netem: short TCP segment (%d bytes)", len(b))
	}
	s.SrcPort = binary.BigEndian.Uint16(b[0:])
	s.DstPort = binary.BigEndian.Uint16(b[2:])
	s.Seq = binary.BigEndian.Uint32(b[4:])
	s.Ack = binary.BigEndian.Uint32(b[8:])
	off := int(b[12]>>4) * 4
	if off < 20 || off > len(b) {
		return s, fmt.Errorf("netem: bad TCP data offset %d", off)
	}
	s.Flags = b[13]
	s.Window = binary.BigEndian.Uint16(b[14:])
	s.Payload = b[off:]
	return s, nil
}
