package netem

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/testutil"
)

// payloadLog collects delivered payload copies under a lock (handlers run on
// host worker goroutines).
type payloadLog struct {
	mu sync.Mutex
	ps [][]byte
}

func (l *payloadLog) add(b []byte) {
	l.mu.Lock()
	l.ps = append(l.ps, append([]byte(nil), b...))
	l.mu.Unlock()
}

func (l *payloadLog) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ps)
}

func (l *payloadLog) snapshot() [][]byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([][]byte(nil), l.ps...)
}

// pooledLAN builds a pub + two subscriber hosts on one switch, with the
// subscribers copying every GOOSE-typed payload they receive (honouring the
// pooled-payload ownership rules).
func pooledLAN(t *testing.T, pooling bool) (n *Network, pub *Host, got1, got2 *payloadLog) {
	t.Helper()
	n = NewNetwork()
	n.SetFramePooling(pooling)
	if _, err := NewSwitch(n, "sw1", 4); err != nil {
		t.Fatal(err)
	}
	pub, err := NewHost(n, "pub", MustMAC("02:00:00:00:00:01"), MustIPv4("10.0.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	sub1, err := NewHost(n, "sub1", MustMAC("02:00:00:00:00:02"), MustIPv4("10.0.0.2"))
	if err != nil {
		t.Fatal(err)
	}
	sub2, err := NewHost(n, "sub2", MustMAC("02:00:00:00:00:03"), MustIPv4("10.0.0.3"))
	if err != nil {
		t.Fatal(err)
	}
	mustConnect(t, n, "pub", 0, "sw1", 0)
	mustConnect(t, n, "sub1", 0, "sw1", 1)
	mustConnect(t, n, "sub2", 0, "sw1", 2)
	group := GooseMAC(0x0001)
	got1, got2 = &payloadLog{}, &payloadLog{}
	for _, s := range []struct {
		h   *Host
		dst *payloadLog
	}{{sub1, got1}, {sub2, got2}} {
		s := s
		s.h.JoinMulticast(group)
		s.h.HandleEtherType(EtherTypeGOOSE, func(f Frame) { s.dst.add(f.Payload) })
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)
	return n, pub, got1, got2
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// sendBurst publishes count deterministic multicast payloads via the pooled
// send path.
func sendBurst(pub *Host, count int) {
	group := GooseMAC(0x0001)
	for i := 0; i < count; i++ {
		pb := pub.AllocPayload()
		pb.B = append(pb.B, byte(i), byte(i>>8), 0xCA, 0xFE)
		pb.B = append(pb.B, bytes.Repeat([]byte{byte(i)}, 32)...)
		pub.SendPooled(group, EtherTypeGOOSE, pb)
	}
}

func TestPooledMulticastDeliversAndRecycles(t *testing.T) {
	n, pub, got1, got2 := pooledLAN(t, true)
	const count = 64
	sendBurst(pub, count)
	waitFor(t, "deliveries", func() bool { return got1.len() == count && got2.len() == count })

	p1, p2 := got1.snapshot(), got2.snapshot()
	for i := 0; i < count; i++ {
		want := append([]byte{byte(i), byte(i >> 8), 0xCA, 0xFE}, bytes.Repeat([]byte{byte(i)}, 32)...)
		if !bytes.Equal(p1[i], want) || !bytes.Equal(p2[i], want) {
			t.Fatalf("payload %d corrupted", i)
		}
	}
	s := n.Stats()
	if s.PoolGets == 0 {
		t.Fatal("pool never used")
	}
	// Every borrowed buffer must come back: publisher gets + flood clones
	// all end in a terminal release (the 4-port switch floods one unlinked
	// port per frame, whose clone is released at the transmit dead-end).
	waitFor(t, "pool returns", func() bool {
		s := n.Stats()
		return s.PoolReturns == s.PoolGets
	})
	if s.Transmitted == 0 {
		t.Error("transmitted counter did not advance")
	}
	// Warm pool: after the first few sends, buffers are recycled.
	if s.PoolHits == 0 {
		t.Error("pool hit rate is zero across a 64-frame burst")
	}
}

func TestFramePoolingDifferential(t *testing.T) {
	// The pooled path and the reference copy-per-publish path must deliver
	// byte-identical payloads and produce identical capture output.
	type run struct {
		delivered [][]byte
		captured  []string
	}
	do := func(pooling bool) run {
		n, pub, got1, got2 := pooledLAN(t, pooling)
		cap := NewCapture(0)
		// Attach after Start is fine: taps are consulted per transmit.
		cap.Attach(n)
		const count = 32
		sendBurst(pub, count)
		waitFor(t, "deliveries", func() bool { return got1.len() == count && got2.len() == count })
		var r run
		r.delivered = append(r.delivered, got1.snapshot()...)
		r.delivered = append(r.delivered, got2.snapshot()...)
		for _, cf := range cap.Frames() {
			r.captured = append(r.captured,
				fmt.Sprintf("%s|%s|%04x|%x", cf.Link, cf.Dir, cf.Frame.EtherType, cf.Frame.Payload))
		}
		sort.Strings(r.captured)
		return r
	}
	ref := do(false)
	pooled := do(true)
	if len(ref.delivered) != len(pooled.delivered) {
		t.Fatalf("delivered %d vs %d", len(ref.delivered), len(pooled.delivered))
	}
	for i := range ref.delivered {
		if !bytes.Equal(ref.delivered[i], pooled.delivered[i]) {
			t.Fatalf("delivered payload %d differs between reference and pooled paths", i)
		}
	}
	if len(ref.captured) != len(pooled.captured) {
		t.Fatalf("captured %d vs %d frames", len(ref.captured), len(pooled.captured))
	}
	for i := range ref.captured {
		if ref.captured[i] != pooled.captured[i] {
			t.Fatalf("capture output differs:\nref:    %s\npooled: %s", ref.captured[i], pooled.captured[i])
		}
	}
}

func TestReferencePathDoesNotPool(t *testing.T) {
	n, pub, got1, _ := pooledLAN(t, false)
	sendBurst(pub, 8)
	waitFor(t, "deliveries", func() bool { return got1.len() == 8 })
	if s := n.Stats(); s.PoolGets != 0 || s.PoolReturns != 0 {
		t.Errorf("reference path touched the pool: %+v", s)
	}
}

func TestPooledFrameReleasedOnDrop(t *testing.T) {
	n, pub, _, _ := pooledLAN(t, true)
	for _, l := range n.Links() {
		l.SetUp(false)
	}
	sendBurst(pub, 4)
	waitFor(t, "drop releases", func() bool {
		s := n.Stats()
		return s.PoolReturns == s.PoolGets && s.PoolGets >= 4
	})
	if n.Dropped() < 4 {
		t.Errorf("dropped = %d", n.Dropped())
	}
}

func TestPooledUnicastDetachesForIPStack(t *testing.T) {
	// A pooled frame that reaches the host IP stack must be detached before
	// sockets retain payload views; the datagram must survive pool reuse.
	_, h1, h2 := lan(t)
	s2, err := h2.BindUDP(700)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h1.ResolveARP(h2.IP(), time.Second); err != nil {
		t.Fatal(err)
	}
	d := UDPDatagram{SrcPort: 600, DstPort: 700, Payload: []byte("retained")}
	p := IPPacket{Src: h1.IP(), Dst: h2.IP(), Protocol: IPProtoUDP, Payload: d.Marshal()}
	pb := h1.AllocPayload()
	pb.B = append(pb.B, p.Marshal()...)
	h1.SendPooled(h2.MAC(), EtherTypeIPv4, pb)

	var got UDPMessage
	select {
	case got = <-s2.Recv():
	case <-time.After(2 * time.Second):
		t.Fatal("datagram not delivered")
	}
	// Churn the pool so a still-aliased buffer would be overwritten.
	for i := 0; i < 16; i++ {
		pb := h1.AllocPayload()
		pb.B = append(pb.B, bytes.Repeat([]byte{0xEE}, 64)...)
		h1.SendPooled(h2.MAC(), EtherTypeGOOSE, pb)
	}
	time.Sleep(20 * time.Millisecond)
	if string(got.Data) != "retained" {
		t.Errorf("retained datagram corrupted: %q", got.Data)
	}
}

func TestUnicastFrameDeliveryAllocBudget(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation budgets are meaningless under -race")
	}
	n := NewNetwork()
	if _, err := NewSwitch(n, "sw1", 2); err != nil {
		t.Fatal(err)
	}
	h1, _ := NewHost(n, "h1", MustMAC("02:00:00:00:00:01"), MustIPv4("10.0.0.1"))
	h2, _ := NewHost(n, "h2", MustMAC("02:00:00:00:00:02"), MustIPv4("10.0.0.2"))
	mustConnect(t, n, "h1", 0, "sw1", 0)
	mustConnect(t, n, "h2", 0, "sw1", 1)
	h2.HandleEtherType(EtherTypeGOOSE, func(f Frame) {})
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)

	send := func() {
		pb := h1.AllocPayload()
		pb.B = append(pb.B, 0xCA, 0xFE, 0xBA, 0xBE)
		h1.SendPooled(h2.MAC(), EtherTypeGOOSE, pb)
	}
	// Teach the switch both MACs so the path is learned unicast, and warm
	// the pool.
	pb := h2.AllocPayload()
	pb.B = append(pb.B, 0x00)
	h2.SendPooled(h1.MAC(), EtherTypeGOOSE, pb)
	for i := 0; i < 32; i++ {
		send()
	}
	time.Sleep(20 * time.Millisecond)

	// Budget: the warm unicast publish->switch->deliver path should be
	// allocation-free; 1.0 of slack absorbs scheduler noise from the
	// concurrent device workers.
	if n := testing.AllocsPerRun(200, send); n > 1.0 {
		t.Errorf("warm unicast frame delivery allocates %.2f/op, budget 1.0", n)
	}
}
