package netem

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Conn is the stream interface exposed to the protocol stacks (MMS, Modbus).
// It is a deliberate subset of net.Conn: the range's protocol servers only
// need reads with deadlines, writes and close.
type Conn interface {
	Read(p []byte) (int, error)
	Write(p []byte) (int, error)
	Close() error
	LocalAddr() string
	RemoteAddr() string
	SetReadDeadline(t time.Time) error
}

const (
	tcpMSS          = 1200
	tcpWindowSegs   = 32
	tcpRTO          = 100 * time.Millisecond
	tcpMaxRetries   = 20
	tcpDialTimeout  = 3 * time.Second
	tcpAcceptBuffer = 64
)

type connKey struct {
	localPort  uint16
	remoteIP   IPv4
	remotePort uint16
}

type tcpState int

const (
	stateSynSent tcpState = iota + 1
	stateSynRcvd
	stateEstablished
	stateClosed
)

var isnCounter atomic.Uint32

// TCPConn is a reliable, in-order byte stream over the emulated fabric, with
// go-back-N retransmission so MITM drops and lossy links are survivable.
type TCPConn struct {
	host *Host
	key  connKey

	mu        sync.Mutex
	readCond  *sync.Cond
	writeCond *sync.Cond
	state     tcpState
	sndNxt    uint32
	sndUna    uint32
	rcvNxt    uint32
	inflight  []tcpSegment // unacked, in seq order
	retries   int
	rtTimer   *time.Timer
	recvBuf   []byte
	deadline  time.Time
	err       error
	eof       bool // peer FIN consumed
	finSent   bool
	estCh     chan struct{}
	estOnce   sync.Once
}

func newTCPConn(h *Host, key connKey, state tcpState) *TCPConn {
	c := &TCPConn{
		host:   h,
		key:    key,
		state:  state,
		sndNxt: isnCounter.Add(12345) + 1,
		estCh:  make(chan struct{}),
	}
	c.sndUna = c.sndNxt
	c.readCond = sync.NewCond(&c.mu)
	c.writeCond = sync.NewCond(&c.mu)
	return c
}

// LocalAddr returns "ip:port" of the local endpoint.
func (c *TCPConn) LocalAddr() string {
	return fmt.Sprintf("%s:%d", c.host.IP(), c.key.localPort)
}

// RemoteAddr returns "ip:port" of the peer.
func (c *TCPConn) RemoteAddr() string {
	return fmt.Sprintf("%s:%d", c.key.remoteIP, c.key.remotePort)
}

// SetReadDeadline bounds future Read calls.
func (c *TCPConn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.deadline = t
	c.mu.Unlock()
	c.readCond.Broadcast()
	// Wake any reader at the deadline so it can observe the timeout.
	if !t.IsZero() {
		d := time.Until(t)
		if d < 0 {
			d = 0
		}
		time.AfterFunc(d+time.Millisecond, c.readCond.Broadcast)
	}
	return nil
}

// timeoutError matches net.Error-style timeout checks.
type timeoutError struct{}

func (timeoutError) Error() string { return "netem: read deadline exceeded" }
func (timeoutError) Timeout() bool { return true }

// Read copies received bytes, blocking until data, EOF, error or deadline.
func (c *TCPConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if len(c.recvBuf) > 0 {
			n := copy(p, c.recvBuf)
			c.recvBuf = c.recvBuf[n:]
			return n, nil
		}
		if c.err != nil {
			return 0, c.err
		}
		if c.eof {
			return 0, io.EOF
		}
		if !c.deadline.IsZero() && time.Now().After(c.deadline) {
			return 0, timeoutError{}
		}
		c.readCond.Wait()
	}
}

// Write queues bytes for transmission, blocking when the window is full.
func (c *TCPConn) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		chunk := p
		if len(chunk) > tcpMSS {
			chunk = chunk[:tcpMSS]
		}
		c.mu.Lock()
		for c.err == nil && c.state == stateEstablished && len(c.inflight) >= tcpWindowSegs {
			c.writeCond.Wait()
		}
		if c.err != nil {
			err := c.err
			c.mu.Unlock()
			return total, err
		}
		if c.state != stateEstablished {
			c.mu.Unlock()
			return total, ErrConnClosed
		}
		seg := tcpSegment{
			SrcPort: c.key.localPort,
			DstPort: c.key.remotePort,
			Seq:     c.sndNxt,
			Ack:     c.rcvNxt,
			Flags:   tcpACK,
			Window:  0xFFFF,
			Payload: append([]byte(nil), chunk...),
		}
		c.sndNxt += uint32(len(chunk))
		c.inflight = append(c.inflight, seg)
		c.armTimerLocked()
		c.mu.Unlock()

		c.send(seg)
		total += len(chunk)
		p = p[len(chunk):]
	}
	return total, nil
}

// Close sends FIN and releases the connection.
func (c *TCPConn) Close() error {
	c.mu.Lock()
	if c.state == stateClosed {
		c.mu.Unlock()
		return nil
	}
	wasEst := c.state == stateEstablished
	c.state = stateClosed
	if c.err == nil {
		c.err = ErrConnClosed
	}
	fin := tcpSegment{
		SrcPort: c.key.localPort, DstPort: c.key.remotePort,
		Seq: c.sndNxt, Ack: c.rcvNxt, Flags: tcpFIN | tcpACK, Window: 0xFFFF,
	}
	c.finSent = true
	if c.rtTimer != nil {
		c.rtTimer.Stop()
	}
	c.mu.Unlock()
	c.readCond.Broadcast()
	c.writeCond.Broadcast()
	if wasEst {
		c.send(fin)
	}
	c.host.removeConn(c.key)
	return nil
}

func (c *TCPConn) send(seg tcpSegment) {
	_ = c.host.SendIP(c.key.remoteIP, IPProtoTCP, seg.marshal())
}

// armTimerLocked (re)schedules the retransmission timer.
func (c *TCPConn) armTimerLocked() {
	if c.rtTimer != nil {
		c.rtTimer.Stop()
	}
	c.rtTimer = time.AfterFunc(tcpRTO, c.retransmit)
}

func (c *TCPConn) retransmit() {
	c.mu.Lock()
	if c.state == stateClosed || len(c.inflight) == 0 {
		c.mu.Unlock()
		return
	}
	c.retries++
	if c.retries > tcpMaxRetries {
		c.failLocked(ErrConnTimeout)
		c.mu.Unlock()
		return
	}
	segs := append([]tcpSegment(nil), c.inflight...)
	c.armTimerLocked()
	c.mu.Unlock()
	for _, s := range segs {
		c.send(s)
	}
}

// failLocked marks the connection broken and wakes everyone.
func (c *TCPConn) failLocked(err error) {
	if c.err == nil {
		c.err = err
	}
	c.state = stateClosed
	if c.rtTimer != nil {
		c.rtTimer.Stop()
	}
	c.readCond.Broadcast()
	c.writeCond.Broadcast()
	go c.host.removeConn(c.key)
}

// handleSegment processes one inbound segment for this connection.
func (c *TCPConn) handleSegment(seg tcpSegment) {
	c.mu.Lock()

	if seg.Flags&tcpRST != 0 {
		c.failLocked(ErrConnReset)
		c.mu.Unlock()
		return
	}

	switch c.state {
	case stateSynSent:
		if seg.Flags&tcpSYN != 0 && seg.Flags&tcpACK != 0 && seg.Ack == c.sndNxt {
			c.rcvNxt = seg.Seq + 1
			c.sndUna = seg.Ack
			c.state = stateEstablished
			ack := tcpSegment{SrcPort: c.key.localPort, DstPort: c.key.remotePort,
				Seq: c.sndNxt, Ack: c.rcvNxt, Flags: tcpACK, Window: 0xFFFF}
			c.estOnce.Do(func() { close(c.estCh) })
			c.mu.Unlock()
			c.send(ack)
			return
		}
	case stateSynRcvd:
		if seg.Flags&tcpSYN != 0 && seg.Flags&tcpACK == 0 {
			// Retransmitted SYN: our SYN-ACK was lost; resend it.
			synAck := tcpSegment{SrcPort: c.key.localPort, DstPort: c.key.remotePort,
				Seq: c.sndNxt - 1, Ack: c.rcvNxt, Flags: tcpSYN | tcpACK, Window: 0xFFFF}
			c.mu.Unlock()
			c.send(synAck)
			return
		}
		if seg.Flags&tcpACK != 0 && seg.Ack == c.sndNxt {
			c.state = stateEstablished
			c.estOnce.Do(func() { close(c.estCh) })
		}
		// Fall through to data processing: the ACK may carry data.
		c.processDataLocked(seg)
		c.mu.Unlock()
		return
	case stateEstablished:
		c.processDataLocked(seg)
		c.mu.Unlock()
		return
	case stateClosed:
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
}

// processDataLocked handles ACK bookkeeping, payload delivery and FIN.
func (c *TCPConn) processDataLocked(seg tcpSegment) {
	// ACK advance.
	if seg.Flags&tcpACK != 0 && seqGE(seg.Ack, c.sndUna) {
		if seg.Ack != c.sndUna {
			c.retries = 0
		}
		c.sndUna = seg.Ack
		kept := c.inflight[:0]
		for _, s := range c.inflight {
			if seqGE(seg.Ack, s.Seq+uint32(len(s.Payload))) {
				continue // fully acked
			}
			kept = append(kept, s)
		}
		c.inflight = kept
		if len(c.inflight) == 0 && c.rtTimer != nil {
			c.rtTimer.Stop()
		} else if len(c.inflight) > 0 {
			c.armTimerLocked()
		}
		c.writeCond.Broadcast()
	}

	ackNeeded := false
	if len(seg.Payload) > 0 {
		switch {
		case seg.Seq == c.rcvNxt:
			c.recvBuf = append(c.recvBuf, seg.Payload...)
			c.rcvNxt += uint32(len(seg.Payload))
			c.readCond.Broadcast()
			ackNeeded = true
		case seqGE(c.rcvNxt, seg.Seq+uint32(len(seg.Payload))):
			ackNeeded = true // duplicate: re-ACK
		default:
			ackNeeded = true // out of order: dup-ACK, sender will retransmit
		}
	}
	if seg.Flags&tcpFIN != 0 && seg.Seq == c.rcvNxt {
		c.rcvNxt++
		c.eof = true
		c.readCond.Broadcast()
		ackNeeded = true
	}
	if ackNeeded {
		ack := tcpSegment{SrcPort: c.key.localPort, DstPort: c.key.remotePort,
			Seq: c.sndNxt, Ack: c.rcvNxt, Flags: tcpACK, Window: 0xFFFF}
		go c.send(ack)
	}
}

// seqGE reports a >= b in modular 32-bit sequence arithmetic.
func seqGE(a, b uint32) bool { return int32(a-b) >= 0 }

// Listener accepts inbound TCP-lite connections on a port.
type Listener struct {
	host   *Host
	port   uint16
	accept chan *TCPConn

	mu     sync.Mutex
	closed bool
}

// Accept blocks until a connection is established or the listener closes.
func (l *Listener) Accept() (*TCPConn, error) {
	c, ok := <-l.accept
	if !ok {
		return nil, ErrConnClosed
	}
	return c, nil
}

// Close stops accepting; established connections are unaffected.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	l.host.mu.Lock()
	delete(l.host.listeners, l.port)
	l.host.mu.Unlock()
	close(l.accept)
	return nil
}

// Port returns the bound port.
func (l *Listener) Port() uint16 { return l.port }

// ListenTCP binds a TCP-lite listener.
func (h *Host) ListenTCP(port uint16) (*Listener, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if port == 0 {
		port = h.ephemeralLocked()
	}
	if _, used := h.listeners[port]; used {
		return nil, fmt.Errorf("%w: tcp/%d", ErrPortBound, port)
	}
	l := &Listener{host: h, port: port, accept: make(chan *TCPConn, tcpAcceptBuffer)}
	h.listeners[port] = l
	return l, nil
}

// DialTCP opens a connection to ip:port, blocking until established.
func (h *Host) DialTCP(ip IPv4, port uint16) (*TCPConn, error) {
	h.mu.Lock()
	local := h.ephemeralLocked()
	key := connKey{localPort: local, remoteIP: ip, remotePort: port}
	c := newTCPConn(h, key, stateSynSent)
	h.tcpConns[key] = c
	h.mu.Unlock()

	syn := tcpSegment{SrcPort: local, DstPort: port, Seq: c.sndNxt - 1, Flags: tcpSYN, Window: 0xFFFF}
	deadline := time.Now().Add(tcpDialTimeout)
	for attempt := 0; ; attempt++ {
		c.send(syn)
		select {
		case <-c.estCh:
			return c, nil
		case <-time.After(150 * time.Millisecond):
		}
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err != nil && err != ErrConnClosed {
			h.removeConn(key)
			return nil, err
		}
		if time.Now().After(deadline) {
			h.removeConn(key)
			return nil, ErrConnTimeout
		}
	}
}

func (h *Host) removeConn(key connKey) {
	h.mu.Lock()
	delete(h.tcpConns, key)
	h.mu.Unlock()
}

// handleTCP demultiplexes an inbound segment to a connection or listener.
func (h *Host) handleTCP(src IPv4, seg tcpSegment) {
	key := connKey{localPort: seg.DstPort, remoteIP: src, remotePort: seg.SrcPort}
	h.mu.Lock()
	conn := h.tcpConns[key]
	listener := h.listeners[seg.DstPort]
	h.mu.Unlock()

	if conn != nil {
		conn.handleSegment(seg)
		return
	}
	if listener != nil && seg.Flags&tcpSYN != 0 && seg.Flags&tcpACK == 0 {
		// New connection: SYN-ACK and register.
		c := newTCPConn(h, key, stateSynRcvd)
		c.rcvNxt = seg.Seq + 1
		h.mu.Lock()
		if existing := h.tcpConns[key]; existing != nil {
			h.mu.Unlock()
			return // retransmitted SYN
		}
		h.tcpConns[key] = c
		h.mu.Unlock()
		synAck := tcpSegment{SrcPort: seg.DstPort, DstPort: seg.SrcPort,
			Seq: c.sndNxt - 1, Ack: c.rcvNxt, Flags: tcpSYN | tcpACK, Window: 0xFFFF}
		c.send(synAck)
		// Deliver to Accept once established.
		go func() {
			select {
			case <-c.estCh:
				listener.mu.Lock()
				closed := listener.closed
				listener.mu.Unlock()
				if closed {
					_ = c.Close()
					return
				}
				select {
				case listener.accept <- c:
				default:
					_ = c.Close() // accept backlog full
				}
			case <-time.After(tcpDialTimeout):
				_ = c.Close()
			}
		}()
		return
	}
	if seg.Flags&tcpRST == 0 {
		// Closed port: RST.
		rst := tcpSegment{SrcPort: seg.DstPort, DstPort: seg.SrcPort,
			Seq: seg.Ack, Ack: seg.Seq + 1, Flags: tcpRST | tcpACK}
		pkt := rst.marshal()
		_ = h.SendIP(src, IPProtoTCP, pkt)
	}
}
