package netem

import "sync"

// Switch is a MAC-learning Ethernet switch. Unicast frames to a learned
// address go out the learned port; unknown unicast, broadcast and multicast
// frames flood all ports except the ingress. This matches the L2 behaviour
// the MITM case study relies on: after ARP poisoning, the switch dutifully
// delivers redirected traffic to the attacker's port.
type Switch struct {
	name  string
	ports int
	net   *Network

	mu    sync.Mutex
	table map[MAC]int // learned MAC -> port
}

// NewSwitch creates a switch with the given port count and registers it.
func NewSwitch(n *Network, name string, ports int) (*Switch, error) {
	s := &Switch{name: name, ports: ports, net: n, table: make(map[MAC]int)}
	if err := n.AddDevice(s); err != nil {
		return nil, err
	}
	return s, nil
}

// Name implements Device.
func (s *Switch) Name() string { return s.name }

// NumPorts returns the port count.
func (s *Switch) NumPorts() int { return s.ports }

// HandleFrame implements Device.
func (s *Switch) HandleFrame(inPort int, f Frame) {
	s.mu.Lock()
	// Learn the source address (unless it is a group address).
	if !f.Src.IsMulticast() {
		s.table[f.Src] = inPort
	}
	outPort, known := s.table[f.Dst]
	s.mu.Unlock()

	if known && !f.Dst.IsMulticast() && !f.Dst.IsBroadcast() {
		if outPort != inPort {
			// Unicast forwards pass the frame along without copying.
			s.net.Transmit(s.name, outPort, f)
		} else {
			f.release() // would egress the ingress port: frame dies here
		}
		return
	}
	// Flood. A pooled frame goes out the last egress port as-is and is cloned
	// once per extra port (plain frames share one payload, as before).
	last := -1
	for p := s.ports - 1; p >= 0; p-- {
		if p != inPort {
			last = p
			break
		}
	}
	if last < 0 {
		f.release()
		return
	}
	for p := 0; p < s.ports; p++ {
		if p == inPort {
			continue
		}
		if p == last {
			s.net.Transmit(s.name, p, f)
		} else {
			s.net.Transmit(s.name, p, f.cloneOwned())
		}
	}
}

// MACTable returns a copy of the learned forwarding table.
func (s *Switch) MACTable() map[MAC]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[MAC]int, len(s.table))
	for k, v := range s.table {
		out[k] = v
	}
	return out
}

// FlushMACTable clears learned addresses (e.g. topology change).
func (s *Switch) FlushMACTable() {
	s.mu.Lock()
	s.table = make(map[MAC]int)
	s.mu.Unlock()
}
