package netem

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// CapturedFrame is one frame observed by a Capture.
type CapturedFrame struct {
	Time  time.Time
	Link  string
	Dir   string
	Frame Frame
}

// Capture is an in-memory packet capture (the range's tcpdump). Attach it to
// a Network with Attach; it records every frame crossing every link, bounded
// by a ring of maxFrames.
type Capture struct {
	mu     sync.Mutex
	frames []CapturedFrame
	max    int
	total  uint64
}

// NewCapture returns a capture retaining up to maxFrames frames.
func NewCapture(maxFrames int) *Capture {
	if maxFrames <= 0 {
		maxFrames = 65536
	}
	return &Capture{max: maxFrames}
}

// Attach registers the capture as a tap on the network. The capture retains
// frames, so it clones each one (taps only borrow frames; see TapFunc).
func (c *Capture) Attach(n *Network) {
	n.Tap(func(link *Link, dir string, f Frame) {
		cf := CapturedFrame{Time: time.Now(), Link: link.String(), Dir: dir, Frame: f.Clone()}
		c.mu.Lock()
		c.total++
		if len(c.frames) >= c.max {
			copy(c.frames, c.frames[1:])
			c.frames = c.frames[:len(c.frames)-1]
		}
		c.frames = append(c.frames, cf)
		c.mu.Unlock()
	})
}

// Frames returns a snapshot of retained frames.
func (c *Capture) Frames() []CapturedFrame {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]CapturedFrame(nil), c.frames...)
}

// Total reports every frame seen, including those evicted from the ring.
func (c *Capture) Total() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Filter returns retained frames matching the predicate.
func (c *Capture) Filter(keep func(CapturedFrame) bool) []CapturedFrame {
	var out []CapturedFrame
	for _, f := range c.Frames() {
		if keep(f) {
			out = append(out, f)
		}
	}
	return out
}

// CountEtherType counts retained frames with the given EtherType.
func (c *Capture) CountEtherType(et uint16) int {
	return len(c.Filter(func(cf CapturedFrame) bool { return cf.Frame.EtherType == et }))
}

// Dump renders a tcpdump-style text listing of up to n most recent frames.
func (c *Capture) Dump(n int) string {
	frames := c.Frames()
	if n > 0 && len(frames) > n {
		frames = frames[len(frames)-n:]
	}
	var sb strings.Builder
	for _, cf := range frames {
		fmt.Fprintf(&sb, "%s %-28s %s\n", cf.Time.Format("15:04:05.000000"), cf.Dir, describeFrame(cf.Frame))
	}
	return sb.String()
}

func describeFrame(f Frame) string {
	switch f.EtherType {
	case EtherTypeARP:
		p, err := UnmarshalARP(f.Payload)
		if err != nil {
			return "ARP <malformed>"
		}
		if p.Op == ARPRequest {
			return fmt.Sprintf("ARP who-has %s tell %s", p.TargetIP, p.SenderIP)
		}
		return fmt.Sprintf("ARP reply %s is-at %s", p.SenderIP, p.SenderMAC)
	case EtherTypeIPv4:
		p, err := UnmarshalIP(f.Payload)
		if err != nil {
			return "IP <malformed>"
		}
		switch p.Protocol {
		case IPProtoUDP:
			if d, err := UnmarshalUDP(p.Payload); err == nil {
				return fmt.Sprintf("UDP %s:%d > %s:%d len=%d", p.Src, d.SrcPort, p.Dst, d.DstPort, len(d.Payload))
			}
		case IPProtoTCP:
			if s, err := unmarshalTCP(p.Payload); err == nil {
				return fmt.Sprintf("TCP %s:%d > %s:%d %s seq=%d ack=%d len=%d",
					p.Src, s.SrcPort, p.Dst, s.DstPort, tcpFlagString(s.Flags), s.Seq, s.Ack, len(s.Payload))
			}
		}
		return fmt.Sprintf("IP %s > %s proto=%d", p.Src, p.Dst, p.Protocol)
	case EtherTypeGOOSE:
		return fmt.Sprintf("GOOSE %s > %s len=%d", f.Src, f.Dst, len(f.Payload))
	case EtherTypeSV:
		return fmt.Sprintf("SV %s > %s len=%d", f.Src, f.Dst, len(f.Payload))
	default:
		return f.String()
	}
}

func tcpFlagString(fl byte) string {
	var parts []string
	if fl&tcpSYN != 0 {
		parts = append(parts, "SYN")
	}
	if fl&tcpFIN != 0 {
		parts = append(parts, "FIN")
	}
	if fl&tcpRST != 0 {
		parts = append(parts, "RST")
	}
	if fl&tcpACK != 0 {
		parts = append(parts, "ACK")
	}
	if len(parts) == 0 {
		return "."
	}
	return strings.Join(parts, "|")
}
