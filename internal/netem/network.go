package netem

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Device is anything attachable to the network fabric: switches and hosts.
// HandleFrame is invoked from the device's single worker goroutine, so device
// implementations need no internal locking against concurrent frame delivery.
type Device interface {
	Name() string
	HandleFrame(inPort int, f Frame)
}

// TapFunc observes frames traversing a link. dir is "a->b" or "b->a".
// The frame is borrowed for the duration of the call: a tap that retains the
// frame (or its payload) beyond its return must Clone it. This keeps the
// warm path copy-free for inspection-style taps (the IDS); the packet
// capture clones internally because it retains.
type TapFunc func(link *Link, dir string, f Frame)

// TamperFunc may rewrite or drop a frame in flight on a link. Returning
// ok=false drops the frame. Used for failure injection; host-level MITM goes
// through ARP spoofing instead.
type TamperFunc func(f Frame) (Frame, bool)

type endpoint struct {
	dev  string
	port int
}

// Link is a full-duplex cable between two device ports.
type Link struct {
	A, B endpoint

	// Precomputed tap direction labels ("a->b" / "b->a"), so the warm
	// transmit path performs no string building.
	dirAB, dirBA string

	mu       sync.Mutex
	latency  time.Duration
	lossRate float64 // 0..1, applied per frame with a deterministic generator
	up       bool
	tamper   TamperFunc
}

// SetLossRate sets the per-frame drop probability (0..1).
func (l *Link) SetLossRate(r float64) {
	l.mu.Lock()
	l.lossRate = r
	l.mu.Unlock()
}

// SetLatency changes the link's one-way propagation delay (scenario
// impairment injection; safe while the fabric is running).
func (l *Link) SetLatency(d time.Duration) {
	l.mu.Lock()
	l.latency = d
	l.mu.Unlock()
}

// Latency reports the link's one-way propagation delay.
func (l *Link) Latency() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.latency
}

// SetUp brings the link up or down (cable pull / restore).
func (l *Link) SetUp(up bool) {
	l.mu.Lock()
	l.up = up
	l.mu.Unlock()
}

// Up reports whether the link is carrying traffic.
func (l *Link) Up() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.up
}

// SetTamper installs a frame rewrite/drop hook (nil to remove).
func (l *Link) SetTamper(fn TamperFunc) {
	l.mu.Lock()
	l.tamper = fn
	l.mu.Unlock()
}

// Endpoints returns the two attachment points of the link.
func (l *Link) Endpoints() (devA string, portA int, devB string, portB int) {
	return l.A.dev, l.A.port, l.B.dev, l.B.port
}

func (l *Link) String() string {
	return fmt.Sprintf("%s[%d] <-> %s[%d]", l.A.dev, l.A.port, l.B.dev, l.B.port)
}

type inbound struct {
	port  int
	frame Frame
}

type devEntry struct {
	dev   Device
	inbox chan inbound
}

// inboxDepth is the per-device delivery queue length. The recycler depends on
// every inbox sharing this capacity, so a reclaimed channel is
// indistinguishable from a fresh one.
const inboxDepth = 4096

// InboxRecycler recycles drained device inbox channels across fabrics built
// from the same compiled artifacts. The per-device inbox (inboxDepth slots)
// dominates fabric construction cost at scale — ~200 KB of channel buffer per
// device that the runtime must zero — so a range fork that rebuilds its fabric
// from a recycler skips nearly all of that allocation. The recycler is
// deliberately NOT a global pool: the reference per-run-compile path keeps its
// plain make-per-device cost, and channels never migrate between unrelated
// models.
//
// Safety contract: a channel enters the free list only after the owning
// Network's Stop has removed every device entry under the network mutex and
// drained residual frames. Because deliverTo performs its (non-blocking) send
// while holding that same mutex whenever a recycler is attached, no sender can
// hold a reference to a reclaimed channel — late deliveries from latency
// timers or TCP retransmissions miss the map lookup and release their frame
// instead.
type InboxRecycler struct {
	mu   sync.Mutex
	free []chan inbound
}

// NewInboxRecycler returns an empty recycler, shareable by every fabric built
// from one compiled model's artifacts (concurrent forks included).
func NewInboxRecycler() *InboxRecycler { return &InboxRecycler{} }

// Len reports the number of idle channels held (tests, diagnostics).
func (rc *InboxRecycler) Len() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return len(rc.free)
}

func (rc *InboxRecycler) get() chan inbound {
	rc.mu.Lock()
	if n := len(rc.free); n > 0 {
		ch := rc.free[n-1]
		rc.free[n-1] = nil
		rc.free = rc.free[:n-1]
		rc.mu.Unlock()
		return ch
	}
	rc.mu.Unlock()
	return make(chan inbound, inboxDepth)
}

// put drains residual frames (releasing their payloads to the frame pool) and
// shelves the channel. Callers must guarantee exclusive ownership.
func (rc *InboxRecycler) put(ch chan inbound) {
	for {
		select {
		case m := <-ch:
			m.frame.release()
		default:
			rc.mu.Lock()
			rc.free = append(rc.free, ch)
			rc.mu.Unlock()
			return
		}
	}
}

// Errors reported by the fabric.
var (
	ErrDuplicateDevice = errors.New("netem: duplicate device name")
	ErrUnknownDevice   = errors.New("netem: unknown device")
	ErrPortInUse       = errors.New("netem: port already linked")
	ErrStarted         = errors.New("netem: network already started")
	ErrNotStarted      = errors.New("netem: network not started")
)

// Network is the emulated fabric: a registry of devices joined by links, with
// a worker goroutine per device delivering frames in arrival order.
type Network struct {
	mu      sync.Mutex
	devices map[string]*devEntry
	links   []*Link
	linkAt  map[endpoint]*Link
	taps    []TapFunc
	started bool
	done    chan struct{}
	wg      sync.WaitGroup
	rng     uint64 // deterministic loss generator

	transmitted atomic.Uint64 // frames accepted onto a cabled link (per hop)
	dropped     atomic.Uint64 // frames lost to loss-rate, tamper or full inboxes
	poolingOff  atomic.Bool   // reference path: plain allocations, no releases
	pool        payloadPool

	// recycler, when set, supplies device inbox channels and receives them
	// back at Stop (see InboxRecycler for the ownership rules).
	recycler *InboxRecycler
}

// NewNetwork returns an empty fabric.
func NewNetwork() *Network {
	return &Network{
		devices: make(map[string]*devEntry),
		linkAt:  make(map[endpoint]*Link),
		done:    make(chan struct{}),
		rng:     0x9E3779B97F4A7C15,
	}
}

// UseInboxRecycler attaches a recycler supplying this fabric's device inbox
// channels; Stop returns them, drained, for the next fabric built from the
// same artifacts. Must be called before any device is added. A recycled
// network gives up its device registry at Stop — Device and Topology return
// nothing afterwards — which is fine for the fork path, where a stopped range
// is never inspected again.
func (n *Network) UseInboxRecycler(rc *InboxRecycler) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.devices) > 0 {
		return fmt.Errorf("netem: recycler must be attached before devices are added")
	}
	n.recycler = rc
	return nil
}

// SetFramePooling toggles the pooled (zero-allocation) frame payload path.
// It is on by default; disabling it restores the reference copy-per-publish
// semantics — Host.AllocPayload returns fresh heap buffers and frames are
// never released to a pool — mirroring the StepAllSequential / dense-solver
// precedent of keeping the legacy path selectable. Delivered bytes, capture
// output and IDS verdicts are identical on both paths (see the differential
// tests in netem and ids).
func (n *Network) SetFramePooling(on bool) { n.poolingOff.Store(!on) }

// Stats returns the fabric's data-plane counters.
func (n *Network) Stats() DataPlaneStats {
	return DataPlaneStats{
		Transmitted: n.transmitted.Load(),
		Dropped:     n.dropped.Load(),
		PoolGets:    n.pool.gets.Load(),
		PoolHits:    n.pool.hits.Load(),
		PoolReturns: n.pool.returns.Load(),
	}
}

// AddDevice registers a device. Must be called before Start.
func (n *Network) AddDevice(d Device) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started {
		return ErrStarted
	}
	if _, dup := n.devices[d.Name()]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateDevice, d.Name())
	}
	var inbox chan inbound
	if n.recycler != nil {
		inbox = n.recycler.get()
	} else {
		inbox = make(chan inbound, inboxDepth)
	}
	n.devices[d.Name()] = &devEntry{dev: d, inbox: inbox}
	return nil
}

// Connect cables devA's portA to devB's portB.
func (n *Network) Connect(devA string, portA int, devB string, portB int, latency time.Duration) (*Link, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.devices[devA]; !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDevice, devA)
	}
	if _, ok := n.devices[devB]; !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDevice, devB)
	}
	a := endpoint{devA, portA}
	b := endpoint{devB, portB}
	if _, used := n.linkAt[a]; used {
		return nil, fmt.Errorf("%w: %s[%d]", ErrPortInUse, devA, portA)
	}
	if _, used := n.linkAt[b]; used {
		return nil, fmt.Errorf("%w: %s[%d]", ErrPortInUse, devB, portB)
	}
	l := &Link{
		A: a, B: b, latency: latency, up: true,
		dirAB: devA + "->" + devB, dirBA: devB + "->" + devA,
	}
	n.links = append(n.links, l)
	n.linkAt[a] = l
	n.linkAt[b] = l
	return l, nil
}

// Tap registers a global capture callback observing every link crossing.
// Taps may be added while the fabric is running (scenario-driven sensor
// deployment): the transmit path snapshots the tap list under the lock, so a
// concurrent append never races with delivery — the new tap simply starts
// observing from the next frame on.
func (n *Network) Tap(fn TapFunc) {
	n.mu.Lock()
	n.taps = append(n.taps, fn)
	n.mu.Unlock()
}

// SeedRand reseeds the deterministic per-frame loss generator, so the draw
// sequence replays for a fixed seed. Frames consume draws in arrival order
// at Transmit, which is goroutine-scheduling-dependent under concurrent
// traffic — reseeding makes loss statistically reproducible, not a
// frame-exact replay. A zero seed falls back to the default constant.
func (n *Network) SeedRand(seed uint64) {
	n.mu.Lock()
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	n.rng = seed
	n.mu.Unlock()
}

// LinkBetween returns the first link joining the two named devices (in either
// orientation), or nil. Scenario impairment events address links this way.
func (n *Network) LinkBetween(devA, devB string) *Link {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, l := range n.links {
		if (l.A.dev == devA && l.B.dev == devB) || (l.A.dev == devB && l.B.dev == devA) {
			return l
		}
	}
	return nil
}

// Start launches the per-device workers.
func (n *Network) Start() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started {
		return ErrStarted
	}
	n.started = true
	for _, e := range n.devices {
		e := e
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			for {
				select {
				case <-n.done:
					return
				case m := <-e.inbox:
					e.dev.HandleFrame(m.port, m.frame)
				}
			}
		}()
	}
	return nil
}

// Stop halts delivery and waits for workers to drain. With a recycler
// attached, the device inbox channels are then reclaimed: entries are removed
// under the mutex (so no deliverTo can be holding one — its send happens
// inside the same critical section on the recycled path), residual frames are
// released, and the drained channels go back to the recycler for the next
// fabric built from the same artifacts.
func (n *Network) Stop() {
	n.mu.Lock()
	if !n.started {
		n.mu.Unlock()
		// Never-started fabric: no workers, no in-flight senders — its
		// inboxes can go straight back to the recycler (no-op without one).
		n.reclaimInboxes()
		return
	}
	select {
	case <-n.done:
		n.mu.Unlock()
		return // already stopped
	default:
	}
	close(n.done)
	n.mu.Unlock()
	n.wg.Wait()
	n.reclaimInboxes()
}

// ReclaimInboxes returns every device inbox to the attached recycler without
// waiting for the network to have run: the fabric gives up its device
// registry and becomes unusable. A compile-once root range whose fabric will
// only ever be forked, never driven, calls this so its idle channels seed the
// recycler instead of sitting stranded until the root's own Stop. No-op
// without a recycler, and on a started network (Stop owns reclaim there).
func (n *Network) ReclaimInboxes() {
	n.mu.Lock()
	if n.recycler == nil || n.started {
		n.mu.Unlock()
		return
	}
	entries := n.devices
	n.devices = make(map[string]*devEntry)
	n.mu.Unlock()
	for _, e := range entries {
		n.recycler.put(e.inbox)
	}
}

func (n *Network) reclaimInboxes() {
	if n.recycler == nil {
		return
	}
	n.mu.Lock()
	entries := n.devices
	n.devices = make(map[string]*devEntry)
	n.mu.Unlock()
	for _, e := range entries {
		n.recycler.put(e.inbox)
	}
}

// Dropped reports frames lost to loss rate, tamper drops, down links and
// inbox overflow.
func (n *Network) Dropped() uint64 { return n.dropped.Load() }

// Transmit sends a frame out of (dev, port). Unlinked ports silently drop, as
// on real hardware with no cable. Called by devices; safe from any goroutine.
//
// Transmit borrows a pooled frame: every exit that does not hand the frame to
// the next device releases the payload back to the pool.
func (n *Network) Transmit(dev string, port int, f Frame) {
	from := endpoint{dev, port}
	n.mu.Lock()
	link := n.linkAt[from]
	taps := n.taps
	n.mu.Unlock()
	if link == nil {
		f.release()
		return
	}

	link.mu.Lock()
	up := link.up
	tamper := link.tamper
	loss := link.lossRate
	latency := link.latency
	link.mu.Unlock()
	if !up {
		n.countDrop(f)
		return
	}
	if loss > 0 && n.randFloat() < loss {
		n.countDrop(f)
		return
	}
	if tamper != nil {
		nf, ok := tamper(f.Clone())
		if !ok {
			n.countDrop(f)
			return
		}
		f.release() // the tampered clone continues as a plain frame
		f = nf
	}
	n.transmitted.Add(1)

	var to endpoint
	dir := ""
	if from == link.A {
		to, dir = link.B, link.dirAB
	} else {
		to, dir = link.A, link.dirBA
	}
	// Taps borrow the frame for the call (see TapFunc); no defensive copy.
	for _, tap := range taps {
		tap(link, dir, f)
	}

	if latency > 0 {
		time.AfterFunc(latency, func() { n.deliverTo(to, f) })
		return
	}
	n.deliverTo(to, f)
}

// deliverTo enqueues the frame on the destination device's inbox, releasing
// it on every path that loses it.
func (n *Network) deliverTo(to endpoint, f Frame) {
	n.mu.Lock()
	entry := n.devices[to.dev]
	if entry == nil {
		n.mu.Unlock()
		f.release()
		return
	}
	if n.recycler == nil {
		// Reference path: entries are stable for the network's lifetime, so
		// the send can happen outside the lock (the original hot path).
		n.mu.Unlock()
		select {
		case entry.inbox <- inbound{port: to.port, frame: f}:
		case <-n.done:
			f.release()
		default:
			n.countDrop(f) // inbox overflow: congestion drop
		}
		return
	}
	// Recycled path: the (non-blocking) send stays inside the critical
	// section, so once Stop's reclaim has removed the entry under this mutex
	// no sender can still hold the channel — the invariant that makes handing
	// the channel to a sibling fork safe. Late async senders (link-latency
	// timers, TCP retransmissions) miss the lookup above and release instead.
	select {
	case entry.inbox <- inbound{port: to.port, frame: f}:
		n.mu.Unlock()
	case <-n.done:
		n.mu.Unlock()
		f.release()
	default:
		n.mu.Unlock()
		n.countDrop(f) // inbox overflow: congestion drop
	}
}

func (n *Network) countDrop(f Frame) {
	f.release()
	n.dropped.Add(1)
}

// randFloat is a cheap deterministic xorshift in [0,1).
func (n *Network) randFloat() float64 {
	n.mu.Lock()
	x := n.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	n.rng = x
	n.mu.Unlock()
	return float64(x>>11) / float64(1<<53)
}

// Topology renders the fabric as a deterministic text diagram; the Fig 4
// reproduction prints this for the generated EPIC network.
func (n *Network) Topology() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	names := make([]string, 0, len(n.devices))
	for name := range n.devices {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	fmt.Fprintf(&sb, "devices: %d, links: %d\n", len(n.devices), len(n.links))
	for _, name := range names {
		d := n.devices[name].dev
		switch h := d.(type) {
		case *Host:
			fmt.Fprintf(&sb, "  host   %-16s ip=%s mac=%s\n", name, h.IP(), h.MAC())
		case *Switch:
			fmt.Fprintf(&sb, "  switch %-16s ports=%d\n", name, h.NumPorts())
		default:
			fmt.Fprintf(&sb, "  device %-16s\n", name)
		}
	}
	links := append([]*Link(nil), n.links...)
	sort.Slice(links, func(i, j int) bool { return links[i].String() < links[j].String() })
	for _, l := range links {
		fmt.Fprintf(&sb, "  link   %s", l)
		if d := l.Latency(); d > 0 {
			fmt.Fprintf(&sb, " latency=%v", d)
		}
		if !l.Up() {
			sb.WriteString(" DOWN")
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Device returns a registered device by name, or nil.
func (n *Network) Device(name string) Device {
	n.mu.Lock()
	defer n.mu.Unlock()
	if e, ok := n.devices[name]; ok {
		return e.dev
	}
	return nil
}

// Links returns all links (for scenario scripting, e.g. cable pulls).
func (n *Network) Links() []*Link {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]*Link(nil), n.links...)
}
