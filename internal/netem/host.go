package netem

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// UDPMessage is one received datagram.
type UDPMessage struct {
	From     IPv4
	FromPort uint16
	Data     []byte
}

// UDPSocket is a bound UDP port on a host.
type UDPSocket struct {
	host *Host
	port uint16
	recv chan UDPMessage

	mu     sync.Mutex
	closed bool
}

// Recv returns the receive channel; it is closed when the socket closes.
func (s *UDPSocket) Recv() <-chan UDPMessage { return s.recv }

// SendTo transmits a datagram to ip:port.
func (s *UDPSocket) SendTo(ip IPv4, port uint16, data []byte) error {
	d := UDPDatagram{SrcPort: s.port, DstPort: port, Payload: data}
	return s.host.SendIP(ip, IPProtoUDP, d.Marshal())
}

// Close releases the port.
func (s *UDPSocket) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.host.mu.Lock()
	delete(s.host.udpSocks, s.port)
	s.host.mu.Unlock()
	close(s.recv)
}

func (s *UDPSocket) deliver(m UDPMessage) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	select {
	case s.recv <- m:
	default: // slow consumer: datagram loss, as UDP permits
	}
}

type arpEntry struct {
	mac MAC
}

type pendingSend struct {
	pkt IPPacket
}

// Host errors.
var (
	ErrPortBound   = errors.New("netem: port already bound")
	ErrHostClosed  = errors.New("netem: host closed")
	ErrNoRoute     = errors.New("netem: no route")
	ErrARPTimeout  = errors.New("netem: ARP resolution timeout")
	ErrConnRefused = errors.New("netem: connection refused")
	ErrConnTimeout = errors.New("netem: connection timeout")
	ErrConnReset   = errors.New("netem: connection reset")
	ErrConnClosed  = errors.New("netem: connection closed")
)

// Host is an end node: one NIC (port 0), an ARP/IPv4/UDP/TCP-lite stack,
// multicast group membership for GOOSE/SV, promiscuous capture and raw frame
// injection. All the range's virtual devices (IEDs, PLC, SCADA, attacker
// boxes) are Hosts.
type Host struct {
	name string
	net  *Network

	mu          sync.Mutex
	mac         MAC
	ip          IPv4
	arpCache    map[IPv4]arpEntry
	arpPending  map[IPv4][]pendingSend
	udpSocks    map[uint16]*UDPSocket
	tcpConns    map[connKey]*TCPConn
	listeners   map[uint16]*Listener
	multicast   map[MAC]bool
	etherHooks  map[uint16]func(Frame)
	promiscuous func(Frame)
	forwarding  bool
	fwdTamper   func(IPPacket) (IPPacket, bool)
	nextPort    uint16
	arpSpoofLog []ARPPacket // unsolicited replies observed (for IDS-style tests)
}

// NewHost creates a host and registers it with the fabric.
func NewHost(n *Network, name string, mac MAC, ip IPv4) (*Host, error) {
	h := &Host{
		name:       name,
		net:        n,
		mac:        mac,
		ip:         ip,
		arpCache:   make(map[IPv4]arpEntry),
		arpPending: make(map[IPv4][]pendingSend),
		udpSocks:   make(map[uint16]*UDPSocket),
		tcpConns:   make(map[connKey]*TCPConn),
		listeners:  make(map[uint16]*Listener),
		multicast:  make(map[MAC]bool),
		etherHooks: make(map[uint16]func(Frame)),
		nextPort:   49152,
	}
	if err := n.AddDevice(h); err != nil {
		return nil, err
	}
	return h, nil
}

// Name implements Device.
func (h *Host) Name() string { return h.name }

// MAC returns the interface hardware address.
func (h *Host) MAC() MAC {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.mac
}

// IP returns the interface address.
func (h *Host) IP() IPv4 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ip
}

// SetPromiscuous installs a sniffer receiving every frame arriving at the
// NIC, before normal processing. Pass nil to disable. Like taps, the sniffer
// borrows the frame for the duration of the call: Clone anything retained.
func (h *Host) SetPromiscuous(fn func(Frame)) {
	h.mu.Lock()
	h.promiscuous = fn
	h.mu.Unlock()
}

// SetForwarding enables IP forwarding: packets arriving for other IPs are
// re-sent to their true destination, optionally rewritten by tamper. This is
// the attacker-side half of the MITM case study (Fig 6).
func (h *Host) SetForwarding(on bool, tamper func(IPPacket) (IPPacket, bool)) {
	h.mu.Lock()
	h.forwarding = on
	h.fwdTamper = tamper
	h.mu.Unlock()
}

// HandleEtherType installs a raw handler for an EtherType (GOOSE, SV).
func (h *Host) HandleEtherType(et uint16, fn func(Frame)) {
	h.mu.Lock()
	h.etherHooks[et] = fn
	h.mu.Unlock()
}

// JoinMulticast subscribes the NIC to a group address.
func (h *Host) JoinMulticast(mac MAC) {
	h.mu.Lock()
	h.multicast[mac] = true
	h.mu.Unlock()
}

// SendFrame injects a raw Ethernet frame (attacker primitive; also a plain,
// non-pooled send for protocol stacks).
func (h *Host) SendFrame(f Frame) {
	h.net.Transmit(h.name, 0, f)
}

// AllocPayload returns a payload buffer for a frame that will be handed to
// SendPooled. On the pooled path the buffer (and its wrapper) comes from the
// fabric's payload pool; when frame pooling is disabled on the network the
// buffer is a plain heap allocation and SendPooled degrades to SendFrame
// (the reference copy-per-publish path). See PayloadBuf for ownership rules.
func (h *Host) AllocPayload() *PayloadBuf {
	if h.net.poolingOff.Load() {
		return &PayloadBuf{B: make([]byte, 0, minPayloadCap)}
	}
	return h.net.pool.get()
}

// SendPooled transmits a frame whose payload is pb.B, transferring ownership
// of pb to the fabric: the terminal deliverer (or drop point) releases it.
// The caller must not touch pb after this call.
func (h *Host) SendPooled(dst MAC, etherType uint16, pb *PayloadBuf) {
	f := Frame{Dst: dst, Src: h.MAC(), EtherType: etherType, Payload: pb.B}
	if pb.pool != nil {
		f.pb = pb
	}
	h.net.Transmit(h.name, 0, f)
}

// ARPCache returns a copy of the current cache (tests, IDS assertions).
func (h *Host) ARPCache() map[IPv4]MAC {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[IPv4]MAC, len(h.arpCache))
	for ip, e := range h.arpCache {
		out[ip] = e.mac
	}
	return out
}

// UnsolicitedARPs returns ARP replies observed without a matching request —
// the footprint an ARP-spoofing detector would alarm on.
func (h *Host) UnsolicitedARPs() []ARPPacket {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]ARPPacket(nil), h.arpSpoofLog...)
}

// HandleFrame implements Device; runs on the host's worker goroutine. The
// host is a frame's terminal deliverer: a pooled payload is released back to
// the fabric pool when handling returns, so EtherType hooks and the sniffer
// must not retain the payload beyond their call (clone to keep).
func (h *Host) HandleFrame(_ int, f Frame) {
	h.deliverFrame(f)
	f.release()
}

func (h *Host) deliverFrame(f Frame) {
	h.mu.Lock()
	sniffer := h.promiscuous
	myMAC := h.mac
	isGroup := f.Dst.IsBroadcast() || (f.Dst.IsMulticast() && h.multicast[f.Dst])
	hook := h.etherHooks[f.EtherType]
	h.mu.Unlock()

	if sniffer != nil {
		sniffer(f) // borrowed for the call, like taps; Clone to retain
	}
	forMe := f.Dst == myMAC || isGroup
	if !forMe && f.Dst.IsMulticast() {
		return // not subscribed
	}

	switch f.EtherType {
	case EtherTypeARP:
		if forMe || f.Dst.IsBroadcast() {
			h.handleARP(f)
		}
	case EtherTypeIPv4:
		if f.Dst == myMAC || f.Dst.IsBroadcast() {
			// The IP stack hands payload views to sockets that may retain
			// them past this call (UDP receive channels), so a pooled
			// payload is detached first.
			if f.Pooled() {
				f = f.Clone()
			}
			h.handleIP(f)
		}
	default:
		if hook != nil && forMe {
			hook(f)
		}
	}
}

func (h *Host) handleARP(f Frame) {
	pkt, err := UnmarshalARP(f.Payload)
	if err != nil {
		return
	}
	h.mu.Lock()
	_, hadPending := h.arpPending[pkt.SenderIP]
	// Learn/overwrite the sender mapping. Accepting unsolicited replies is
	// the classic ARP weakness the MITM case study exploits.
	h.arpCache[pkt.SenderIP] = arpEntry{mac: pkt.SenderMAC}
	if pkt.Op == ARPReply && !hadPending {
		h.arpSpoofLog = append(h.arpSpoofLog, pkt)
	}
	queued := h.arpPending[pkt.SenderIP]
	delete(h.arpPending, pkt.SenderIP)
	myIP, myMAC := h.ip, h.mac
	h.mu.Unlock()

	// Flush sends blocked on this resolution.
	for _, ps := range queued {
		h.sendPacketTo(pkt.SenderMAC, ps.pkt)
	}
	if pkt.Op == ARPRequest && pkt.TargetIP == myIP {
		reply := ARPPacket{
			Op:        ARPReply,
			SenderMAC: myMAC, SenderIP: myIP,
			TargetMAC: pkt.SenderMAC, TargetIP: pkt.SenderIP,
		}
		h.SendFrame(Frame{Dst: pkt.SenderMAC, Src: myMAC, EtherType: EtherTypeARP, Payload: reply.Marshal()})
	}
}

func (h *Host) handleIP(f Frame) {
	pkt, err := UnmarshalIP(f.Payload)
	if err != nil {
		return
	}
	h.mu.Lock()
	myIP := h.ip
	fwd, tamper := h.forwarding, h.fwdTamper
	h.mu.Unlock()

	if pkt.Dst != myIP && pkt.Dst != BroadcastIP {
		// Mis-delivered (e.g. our MAC was poisoned into someone's cache).
		if fwd {
			if tamper != nil {
				np, ok := tamper(pkt)
				if !ok {
					return
				}
				pkt = np
			}
			if pkt.TTL <= 1 {
				return
			}
			pkt.TTL--
			// Forward verbatim — source address and payload preserved — to
			// the true destination MAC (re-resolved via our own ARP cache).
			h.routeIP(pkt)
		}
		return
	}

	switch pkt.Protocol {
	case IPProtoUDP:
		d, err := UnmarshalUDP(pkt.Payload)
		if err != nil {
			return
		}
		h.mu.Lock()
		sock := h.udpSocks[d.DstPort]
		h.mu.Unlock()
		if sock != nil {
			sock.deliver(UDPMessage{From: pkt.Src, FromPort: d.SrcPort, Data: d.Payload})
		}
	case IPProtoTCP:
		seg, err := unmarshalTCP(pkt.Payload)
		if err != nil {
			return
		}
		h.handleTCP(pkt.Src, seg)
	}
}

// SendIP routes an IP payload to dst, resolving the MAC via ARP as needed.
func (h *Host) SendIP(dst IPv4, proto byte, payload []byte) error {
	h.mu.Lock()
	src := h.ip
	h.mu.Unlock()
	h.routeIP(IPPacket{Src: src, Dst: dst, Protocol: proto, Payload: payload})
	return nil
}

// routeIP delivers a fully-formed packet (source preserved — also the
// forwarding path of a MITM node), resolving the destination MAC via ARP.
func (h *Host) routeIP(pkt IPPacket) {
	if pkt.Dst == BroadcastIP {
		h.mu.Lock()
		myMAC := h.mac
		h.mu.Unlock()
		h.SendFrame(Frame{Dst: BroadcastMAC, Src: myMAC, EtherType: EtherTypeIPv4, Payload: pkt.Marshal()})
		return
	}
	h.mu.Lock()
	entry, ok := h.arpCache[pkt.Dst]
	if ok {
		h.mu.Unlock()
		h.sendPacketTo(entry.mac, pkt)
		return
	}
	// Queue behind an ARP request. A request is (re)sent on every queued
	// attempt so a lost request (down link, lossy cable) is retried by the
	// caller's next send rather than stalling the queue.
	h.arpPending[pkt.Dst] = append(h.arpPending[pkt.Dst], pendingSend{pkt: pkt})
	first := len(h.arpPending[pkt.Dst]) == 1
	myIP, myMAC := h.ip, h.mac
	dst := pkt.Dst
	h.mu.Unlock()
	req := ARPPacket{Op: ARPRequest, SenderMAC: myMAC, SenderIP: myIP, TargetIP: dst}
	h.SendFrame(Frame{Dst: BroadcastMAC, Src: myMAC, EtherType: EtherTypeARP, Payload: req.Marshal()})
	if first {
		// Expire the pending queue if no reply ever arrives.
		time.AfterFunc(500*time.Millisecond, func() {
			h.mu.Lock()
			delete(h.arpPending, dst)
			h.mu.Unlock()
		})
	}
}

func (h *Host) sendPacketTo(dstMAC MAC, pkt IPPacket) {
	h.mu.Lock()
	myMAC := h.mac
	h.mu.Unlock()
	h.SendFrame(Frame{Dst: dstMAC, Src: myMAC, EtherType: EtherTypeIPv4, Payload: pkt.Marshal()})
}

// BindUDP binds a UDP port; port 0 picks an ephemeral port.
func (h *Host) BindUDP(port uint16) (*UDPSocket, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if port == 0 {
		port = h.ephemeralLocked()
	}
	if _, used := h.udpSocks[port]; used {
		return nil, fmt.Errorf("%w: udp/%d", ErrPortBound, port)
	}
	s := &UDPSocket{host: h, port: port, recv: make(chan UDPMessage, 256)}
	h.udpSocks[port] = s
	return s, nil
}

func (h *Host) ephemeralLocked() uint16 {
	for {
		h.nextPort++
		if h.nextPort < 49152 {
			h.nextPort = 49152
		}
		p := h.nextPort
		_, udpUsed := h.udpSocks[p]
		_, lnUsed := h.listeners[p]
		if !udpUsed && !lnUsed {
			return p
		}
	}
}

// ResolveARP performs (or reuses) an ARP resolution synchronously, for
// callers that need the MAC itself (e.g. recon tooling).
func (h *Host) ResolveARP(ip IPv4, timeout time.Duration) (MAC, error) {
	deadline := time.Now().Add(timeout)
	for {
		h.mu.Lock()
		e, ok := h.arpCache[ip]
		h.mu.Unlock()
		if ok {
			return e.mac, nil
		}
		if time.Now().After(deadline) {
			return MAC{}, fmt.Errorf("%w: %s", ErrARPTimeout, ip)
		}
		h.mu.Lock()
		myIP, myMAC := h.ip, h.mac
		h.mu.Unlock()
		req := ARPPacket{Op: ARPRequest, SenderMAC: myMAC, SenderIP: myIP, TargetIP: ip}
		h.SendFrame(Frame{Dst: BroadcastMAC, Src: myMAC, EtherType: EtherTypeARP, Payload: req.Marshal()})
		time.Sleep(2 * time.Millisecond)
	}
}
