// Package netem is the cyber-side network emulator of the cyber range.
//
// The paper uses Mininet to emulate each substation LAN: nodes with IP and
// MAC addresses from the SCD file, connected through switches, with the
// inter-substation WAN abstracted as a single switch (§III-B). This package
// provides the equivalent substrate in-process: Ethernet frames, learning
// switches, links with impairment knobs (up/down, seeded per-frame loss,
// propagation latency, byte-level tamper hooks), hosts with an ARP + IPv4 +
// UDP stack and a reliable TCP-like stream transport, promiscuous capture,
// and raw frame injection. ARP is a real protocol here — the MITM case study
// (§IV-B, Fig 6) works by actual cache poisoning, exactly as on the Mininet
// range.
//
// Delivery is asynchronous: every device runs a worker goroutine and frames
// traverse bounded queues, so the fabric exhibits real concurrency effects
// (reordering across links, drops on full queues) while the loss generator
// stays seeded and replayable (Network.SeedRand).
//
// # Frame pooling (the zero-allocation data plane)
//
// With pooling on (the default; Network.SetFramePooling toggles the legacy
// copy-per-publish reference path), frame payloads are recycled through a
// per-network sync.Pool and the warm publish→switch→deliver path allocates
// nothing. That makes buffer ownership part of the API contract — the full
// rules live on PayloadBuf, in short:
//
//   - senders marshal into Host.AllocPayload buffers and transfer ownership
//     with Host.SendPooled, never touching the buffer afterwards;
//   - the fabric borrows per hop: switches forward unicast frames without
//     copying and clone once per extra egress port when flooding; the
//     terminal deliverer (consuming host or drop point) releases the buffer;
//   - observers — taps (TapFunc), the promiscuous sniffer, EtherType hooks —
//     borrow a frame only for the duration of the call and must Clone (or
//     copy out) anything they retain; tamper hooks always receive a
//     detached Clone.
//
// DataPlaneStats (Network.Stats) counts frames transmitted/dropped per hop
// and the payload pool's hit rate.
package netem
