package netem

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestParseMAC(t *testing.T) {
	tests := []struct {
		in    string
		want  MAC
		valid bool
	}{
		{"aa:bb:cc:dd:ee:ff", MAC{0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF}, true},
		{"00-0c-cd-01-00-01", MAC{0x00, 0x0C, 0xCD, 0x01, 0x00, 0x01}, true},
		{"aa:bb:cc:dd:ee", MAC{}, false},
		{"zz:bb:cc:dd:ee:ff", MAC{}, false},
		{"", MAC{}, false},
	}
	for _, tt := range tests {
		got, err := ParseMAC(tt.in)
		if (err == nil) != tt.valid {
			t.Errorf("ParseMAC(%q) err = %v", tt.in, err)
			continue
		}
		if tt.valid && got != tt.want {
			t.Errorf("ParseMAC(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
	m := MustMAC("01:0c:cd:01:00:05")
	if !m.IsMulticast() {
		t.Error("GOOSE MAC not multicast")
	}
	if got := m.String(); got != "01:0c:cd:01:00:05" {
		t.Errorf("String() = %q", got)
	}
	if !BroadcastMAC.IsBroadcast() || !BroadcastMAC.IsMulticast() {
		t.Error("broadcast flags wrong")
	}
}

func TestParseIPv4(t *testing.T) {
	ip, err := ParseIPv4("192.168.1.10")
	if err != nil || ip != (IPv4{192, 168, 1, 10}) {
		t.Errorf("ParseIPv4 = %v, %v", ip, err)
	}
	if ip.String() != "192.168.1.10" {
		t.Errorf("String() = %q", ip.String())
	}
	for _, bad := range []string{"1.2.3", "256.1.1.1", "a.b.c.d", ""} {
		if _, err := ParseIPv4(bad); err == nil {
			t.Errorf("ParseIPv4(%q) succeeded", bad)
		}
	}
}

func TestGooseSVMAC(t *testing.T) {
	g := GooseMAC(0x1234)
	if g[4] != 0x12 || g[5] != 0x34 || g[3] != 0x01 {
		t.Errorf("GooseMAC = %v", g)
	}
	s := SVMAC(0x4001)
	if s[3] != 0x04 || s[4] != 0x40 || s[5] != 0x01 {
		t.Errorf("SVMAC = %v", s)
	}
}

func TestARPMarshalRoundTrip(t *testing.T) {
	p := ARPPacket{
		Op:        ARPReply,
		SenderMAC: MustMAC("02:00:00:00:00:01"), SenderIP: MustIPv4("10.0.0.1"),
		TargetMAC: MustMAC("02:00:00:00:00:02"), TargetIP: MustIPv4("10.0.0.2"),
	}
	got, err := UnmarshalARP(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Errorf("round trip = %+v, want %+v", got, p)
	}
	if _, err := UnmarshalARP([]byte{1, 2, 3}); err == nil {
		t.Error("short ARP accepted")
	}
}

func TestIPMarshalRoundTrip(t *testing.T) {
	f := func(payload []byte) bool {
		p := IPPacket{Src: MustIPv4("10.0.0.1"), Dst: MustIPv4("10.0.0.2"), Protocol: IPProtoUDP, Payload: payload}
		got, err := UnmarshalIP(p.Marshal())
		if err != nil {
			return false
		}
		return got.Src == p.Src && got.Dst == p.Dst && got.Protocol == p.Protocol &&
			bytes.Equal(got.Payload, payload) && got.TTL == 64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIPUnmarshalErrors(t *testing.T) {
	if _, err := UnmarshalIP(make([]byte, 10)); err == nil {
		t.Error("short IP accepted")
	}
	bad := IPPacket{Src: IPv4{1}, Dst: IPv4{2}, Protocol: 6}.Marshal()
	bad[0] = 0x65 // version 6
	if _, err := UnmarshalIP(bad); err == nil {
		t.Error("IPv6 version accepted")
	}
}

func TestUDPMarshalRoundTrip(t *testing.T) {
	d := UDPDatagram{SrcPort: 1000, DstPort: 102, Payload: []byte("hello")}
	got, err := UnmarshalUDP(d.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != 1000 || got.DstPort != 102 || string(got.Payload) != "hello" {
		t.Errorf("round trip = %+v", got)
	}
}

func TestTCPSegmentRoundTrip(t *testing.T) {
	s := tcpSegment{SrcPort: 5, DstPort: 6, Seq: 100, Ack: 200, Flags: tcpSYN | tcpACK, Window: 1024, Payload: []byte("xy")}
	got, err := unmarshalTCP(s.marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 100 || got.Ack != 200 || got.Flags != tcpSYN|tcpACK || string(got.Payload) != "xy" {
		t.Errorf("round trip = %+v", got)
	}
}

// lan builds a 2-host + switch fabric and starts it.
func lan(t *testing.T) (*Network, *Host, *Host) {
	t.Helper()
	n := NewNetwork()
	sw, err := NewSwitch(n, "sw1", 8)
	if err != nil {
		t.Fatal(err)
	}
	_ = sw
	h1, err := NewHost(n, "h1", MustMAC("02:00:00:00:00:01"), MustIPv4("10.0.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := NewHost(n, "h2", MustMAC("02:00:00:00:00:02"), MustIPv4("10.0.0.2"))
	if err != nil {
		t.Fatal(err)
	}
	mustConnect(t, n, "h1", 0, "sw1", 0)
	mustConnect(t, n, "h2", 0, "sw1", 1)
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)
	return n, h1, h2
}

func mustConnect(t *testing.T, n *Network, a string, pa int, b string, pb int) *Link {
	t.Helper()
	l, err := n.Connect(a, pa, b, pb, 0)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestUDPEndToEnd(t *testing.T) {
	_, h1, h2 := lan(t)
	s2, err := h2.BindUDP(102)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := h1.BindUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.SendTo(h2.IP(), 102, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-s2.Recv():
		if string(m.Data) != "ping" || m.From != h1.IP() {
			t.Errorf("got %+v", m)
		}
		// Reply to verify the reverse path and learned MAC table.
		if err := s2.SendTo(m.From, m.FromPort, []byte("pong")); err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no datagram received")
	}
	select {
	case m := <-s1.Recv():
		if string(m.Data) != "pong" {
			t.Errorf("reply = %q", m.Data)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no reply received")
	}
}

func TestARPResolutionPopulatesCaches(t *testing.T) {
	_, h1, h2 := lan(t)
	mac, err := h1.ResolveARP(h2.IP(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if mac != h2.MAC() {
		t.Errorf("resolved %v, want %v", mac, h2.MAC())
	}
	if got := h1.ARPCache()[h2.IP()]; got != h2.MAC() {
		t.Errorf("cache entry %v", got)
	}
}

func TestARPTimeout(t *testing.T) {
	_, h1, _ := lan(t)
	if _, err := h1.ResolveARP(MustIPv4("10.0.0.99"), 30*time.Millisecond); err == nil {
		t.Error("resolution of absent host succeeded")
	}
}

func TestSwitchLearnsAndStopsFlooding(t *testing.T) {
	n := NewNetwork()
	sw, _ := NewSwitch(n, "sw1", 4)
	h1, _ := NewHost(n, "h1", MustMAC("02:00:00:00:00:01"), MustIPv4("10.0.0.1"))
	h2, _ := NewHost(n, "h2", MustMAC("02:00:00:00:00:02"), MustIPv4("10.0.0.2"))
	h3, _ := NewHost(n, "h3", MustMAC("02:00:00:00:00:03"), MustIPv4("10.0.0.3"))
	mustConnect(t, n, "h1", 0, "sw1", 0)
	mustConnect(t, n, "h2", 0, "sw1", 1)
	mustConnect(t, n, "h3", 0, "sw1", 2)
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)

	var h3saw int
	h3.SetPromiscuous(func(f Frame) {
		if f.EtherType == EtherTypeIPv4 {
			h3saw++
		}
	})
	s2, _ := h2.BindUDP(500)
	s1, _ := h1.BindUDP(0)
	// First send floods (unknown dst MAC triggers ARP broadcast, then the
	// learned unicast goes straight to h2).
	_ = s1.SendTo(h2.IP(), 500, []byte("a"))
	<-s2.Recv()
	// Now the table knows both hosts: a second exchange must not reach h3.
	h3saw = 0
	_ = s1.SendTo(h2.IP(), 500, []byte("b"))
	select {
	case <-s2.Recv():
	case <-time.After(2 * time.Second):
		t.Fatal("second datagram lost")
	}
	if h3saw != 0 {
		t.Errorf("h3 saw %d unicast IP frames after learning", h3saw)
	}
	tbl := sw.MACTable()
	if tbl[h1.MAC()] != 0 || tbl[h2.MAC()] != 1 {
		t.Errorf("MAC table = %v", tbl)
	}
	sw.FlushMACTable()
	if len(sw.MACTable()) != 0 {
		t.Error("flush did not clear table")
	}
}

func TestMulticastDelivery(t *testing.T) {
	n := NewNetwork()
	NewSwitch(n, "sw1", 4)
	pub, _ := NewHost(n, "pub", MustMAC("02:00:00:00:00:01"), MustIPv4("10.0.0.1"))
	sub, _ := NewHost(n, "sub", MustMAC("02:00:00:00:00:02"), MustIPv4("10.0.0.2"))
	non, _ := NewHost(n, "non", MustMAC("02:00:00:00:00:03"), MustIPv4("10.0.0.3"))
	mustConnect(t, n, "pub", 0, "sw1", 0)
	mustConnect(t, n, "sub", 0, "sw1", 1)
	mustConnect(t, n, "non", 0, "sw1", 2)
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)

	group := GooseMAC(0x0001)
	got := make(chan Frame, 1)
	sub.JoinMulticast(group)
	sub.HandleEtherType(EtherTypeGOOSE, func(f Frame) { got <- f })
	nonGot := make(chan Frame, 1)
	non.HandleEtherType(EtherTypeGOOSE, func(f Frame) { nonGot <- f })

	pub.SendFrame(Frame{Dst: group, Src: pub.MAC(), EtherType: EtherTypeGOOSE, Payload: []byte("goose")})
	select {
	case f := <-got:
		if string(f.Payload) != "goose" {
			t.Errorf("payload = %q", f.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("subscriber missed multicast")
	}
	select {
	case <-nonGot:
		t.Error("non-member received multicast")
	case <-time.After(30 * time.Millisecond):
	}
}

func TestTCPEndToEnd(t *testing.T) {
	_, h1, h2 := lan(t)
	ln, err := h2.ListenTCP(102)
	if err != nil {
		t.Fatal(err)
	}
	serverDone := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			serverDone <- err
			return
		}
		buf := make([]byte, 64)
		nr, err := c.Read(buf)
		if err != nil {
			serverDone <- err
			return
		}
		_, err = c.Write(bytes.ToUpper(buf[:nr]))
		serverDone <- err
	}()
	conn, err := h1.DialTCP(h2.IP(), 102)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("hello mms")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 64)
	nr, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(buf[:nr]); got != "HELLO MMS" {
		t.Errorf("reply = %q", got)
	}
	if err := <-serverDone; err != nil {
		t.Errorf("server: %v", err)
	}
	if conn.LocalAddr() == "" || !strings.Contains(conn.RemoteAddr(), "10.0.0.2:102") {
		t.Errorf("addrs: %q -> %q", conn.LocalAddr(), conn.RemoteAddr())
	}
}

func TestTCPLargeTransfer(t *testing.T) {
	_, h1, h2 := lan(t)
	ln, _ := h2.ListenTCP(9000)
	const size = 256 * 1024
	recvDone := make(chan []byte, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			recvDone <- nil
			return
		}
		var all []byte
		buf := make([]byte, 8192)
		for len(all) < size {
			c.SetReadDeadline(time.Now().Add(5 * time.Second))
			nr, err := c.Read(buf)
			if err != nil {
				break
			}
			all = append(all, buf[:nr]...)
		}
		recvDone <- all
	}()
	conn, err := h1.DialTCP(h2.IP(), 9000)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i * 31)
	}
	if _, err := conn.Write(data); err != nil {
		t.Fatal(err)
	}
	got := <-recvDone
	if !bytes.Equal(got, data) {
		t.Fatalf("transfer corrupt: got %d bytes, want %d", len(got), len(data))
	}
	conn.Close()
}

func TestTCPSurvivesLossyLink(t *testing.T) {
	n := NewNetwork()
	NewSwitch(n, "sw1", 4)
	h1, _ := NewHost(n, "h1", MustMAC("02:00:00:00:00:01"), MustIPv4("10.0.0.1"))
	h2, _ := NewHost(n, "h2", MustMAC("02:00:00:00:00:02"), MustIPv4("10.0.0.2"))
	l1 := mustConnect(t, n, "h1", 0, "sw1", 0)
	mustConnect(t, n, "h2", 0, "sw1", 1)
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)

	ln, _ := h2.ListenTCP(102)
	got := make(chan []byte, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			got <- nil
			return
		}
		var all []byte
		buf := make([]byte, 4096)
		for len(all) < 20000 {
			c.SetReadDeadline(time.Now().Add(10 * time.Second))
			nr, err := c.Read(buf)
			if err != nil {
				break
			}
			all = append(all, buf[:nr]...)
		}
		got <- all
	}()
	conn, err := h1.DialTCP(h2.IP(), 102) // handshake over clean link
	if err != nil {
		t.Fatal(err)
	}
	l1.SetLossRate(0.10) // now 10% loss both ways
	data := make([]byte, 20000)
	for i := range data {
		data[i] = byte(i)
	}
	if _, err := conn.Write(data); err != nil {
		t.Fatal(err)
	}
	all := <-got
	if !bytes.Equal(all, data) {
		t.Fatalf("lossy transfer corrupt: %d bytes of %d", len(all), len(data))
	}
	if n.Dropped() == 0 {
		t.Error("loss rate produced no drops")
	}
}

func TestTCPConnRefused(t *testing.T) {
	_, h1, h2 := lan(t)
	if _, err := h1.DialTCP(h2.IP(), 4444); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestTCPReadDeadline(t *testing.T) {
	_, h1, h2 := lan(t)
	ln, _ := h2.ListenTCP(102)
	go func() {
		c, _ := ln.Accept()
		_ = c // never writes
	}()
	conn, err := h1.DialTCP(h2.IP(), 102)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	start := time.Now()
	_, err = conn.Read(make([]byte, 8))
	if err == nil {
		t.Fatal("read succeeded with no data")
	}
	type timeouter interface{ Timeout() bool }
	if te, ok := err.(timeouter); !ok || !te.Timeout() {
		t.Errorf("err = %v, want timeout", err)
	}
	if time.Since(start) > time.Second {
		t.Error("deadline ignored")
	}
}

func TestTCPCloseDeliversEOF(t *testing.T) {
	_, h1, h2 := lan(t)
	ln, _ := h2.ListenTCP(102)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		c.Write([]byte("bye"))
		c.Close()
	}()
	conn, err := h1.DialTCP(h2.IP(), 102)
	if err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	nr, err := conn.Read(buf)
	if err != nil || string(buf[:nr]) != "bye" {
		t.Fatalf("read = %q, %v", buf[:nr], err)
	}
	_, err = conn.Read(buf)
	if err == nil {
		t.Error("no EOF after peer close")
	}
}

func TestLinkDownBlocksTraffic(t *testing.T) {
	n := NewNetwork()
	NewSwitch(n, "sw1", 4)
	h1, _ := NewHost(n, "h1", MustMAC("02:00:00:00:00:01"), MustIPv4("10.0.0.1"))
	h2, _ := NewHost(n, "h2", MustMAC("02:00:00:00:00:02"), MustIPv4("10.0.0.2"))
	l := mustConnect(t, n, "h1", 0, "sw1", 0)
	mustConnect(t, n, "h2", 0, "sw1", 1)
	n.Start()
	t.Cleanup(n.Stop)

	s2, _ := h2.BindUDP(700)
	s1, _ := h1.BindUDP(0)
	l.SetUp(false)
	_ = s1.SendTo(h2.IP(), 700, []byte("x"))
	select {
	case <-s2.Recv():
		t.Error("datagram crossed a down link")
	case <-time.After(50 * time.Millisecond):
	}
	l.SetUp(true)
	_ = s1.SendTo(h2.IP(), 700, []byte("y"))
	select {
	case <-s2.Recv():
	case <-time.After(2 * time.Second):
		t.Error("datagram lost after link restore")
	}
}

func TestLinkTamperRewritesFrames(t *testing.T) {
	n := NewNetwork()
	NewSwitch(n, "sw1", 4)
	h1, _ := NewHost(n, "h1", MustMAC("02:00:00:00:00:01"), MustIPv4("10.0.0.1"))
	h2, _ := NewHost(n, "h2", MustMAC("02:00:00:00:00:02"), MustIPv4("10.0.0.2"))
	mustConnect(t, n, "h1", 0, "sw1", 0)
	l2 := mustConnect(t, n, "h2", 0, "sw1", 1)
	n.Start()
	t.Cleanup(n.Stop)

	l2.SetTamper(func(f Frame) (Frame, bool) {
		if f.EtherType == EtherTypeGOOSE {
			f.Payload = []byte("corrupted")
		}
		return f, true
	})
	group := GooseMAC(1)
	h2.JoinMulticast(group)
	got := make(chan Frame, 1)
	h2.HandleEtherType(EtherTypeGOOSE, func(f Frame) { got <- f })
	h1.SendFrame(Frame{Dst: group, Src: h1.MAC(), EtherType: EtherTypeGOOSE, Payload: []byte("original")})
	select {
	case f := <-got:
		if string(f.Payload) != "corrupted" {
			t.Errorf("payload = %q", f.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("tampered frame not delivered")
	}
}

func TestCaptureRecordsTraffic(t *testing.T) {
	n := NewNetwork()
	NewSwitch(n, "sw1", 4)
	h1, _ := NewHost(n, "h1", MustMAC("02:00:00:00:00:01"), MustIPv4("10.0.0.1"))
	h2, _ := NewHost(n, "h2", MustMAC("02:00:00:00:00:02"), MustIPv4("10.0.0.2"))
	mustConnect(t, n, "h1", 0, "sw1", 0)
	mustConnect(t, n, "h2", 0, "sw1", 1)
	cap := NewCapture(100)
	cap.Attach(n)
	n.Start()
	t.Cleanup(n.Stop)

	s2, _ := h2.BindUDP(102)
	s1, _ := h1.BindUDP(0)
	_ = s1.SendTo(h2.IP(), 102, []byte("data"))
	select {
	case <-s2.Recv():
	case <-time.After(2 * time.Second):
		t.Fatal("lost")
	}
	if cap.Total() == 0 {
		t.Fatal("capture saw nothing")
	}
	arps := cap.Filter(func(cf CapturedFrame) bool { return cf.Frame.EtherType == EtherTypeARP })
	if len(arps) == 0 {
		t.Error("no ARP frames captured")
	}
	dump := cap.Dump(0)
	if !strings.Contains(dump, "ARP who-has") || !strings.Contains(dump, "UDP") {
		t.Errorf("dump:\n%s", dump)
	}
}

func TestCaptureRingEviction(t *testing.T) {
	c := NewCapture(3)
	n := NewNetwork()
	NewSwitch(n, "sw", 2)
	h, _ := NewHost(n, "h", MustMAC("02:00:00:00:00:01"), MustIPv4("10.0.0.1"))
	mustConnect(t, n, "h", 0, "sw", 0)
	c.Attach(n)
	n.Start()
	t.Cleanup(n.Stop)
	for i := 0; i < 10; i++ {
		h.SendFrame(Frame{Dst: BroadcastMAC, Src: h.MAC(), EtherType: 0x9999, Payload: []byte{byte(i)}})
	}
	time.Sleep(20 * time.Millisecond)
	if got := len(c.Frames()); got > 3 {
		t.Errorf("ring holds %d frames, max 3", got)
	}
	if c.Total() != 10 {
		t.Errorf("total = %d, want 10", c.Total())
	}
}

func TestNetworkErrors(t *testing.T) {
	n := NewNetwork()
	if _, err := NewSwitch(n, "sw", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSwitch(n, "sw", 2); err == nil {
		t.Error("duplicate device accepted")
	}
	if _, err := n.Connect("sw", 0, "missing", 0, 0); err == nil {
		t.Error("connect to missing device accepted")
	}
	if _, err := NewHost(n, "h", MAC{2}, IPv4{10}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Connect("h", 0, "sw", 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Connect("h", 0, "sw", 1, 0); err == nil {
		t.Error("double-connected port accepted")
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err == nil {
		t.Error("double start accepted")
	}
	if err := n.AddDevice(&Switch{name: "late"}); err == nil {
		t.Error("AddDevice after start accepted")
	}
	n.Stop()
	n.Stop() // idempotent
}

func TestTopologyRendering(t *testing.T) {
	n := NewNetwork()
	NewSwitch(n, "sw1", 4)
	NewHost(n, "ied1", MustMAC("02:00:00:00:00:01"), MustIPv4("10.0.0.1"))
	mustConnect(t, n, "ied1", 0, "sw1", 0)
	top := n.Topology()
	for _, want := range []string{"devices: 2", "links: 1", "host   ied1", "switch sw1", "10.0.0.1"} {
		if !strings.Contains(top, want) {
			t.Errorf("topology missing %q:\n%s", want, top)
		}
	}
}

func TestPortBindingErrors(t *testing.T) {
	n := NewNetwork()
	h, _ := NewHost(n, "h", MAC{2}, IPv4{10})
	if _, err := h.BindUDP(102); err != nil {
		t.Fatal(err)
	}
	if _, err := h.BindUDP(102); err == nil {
		t.Error("double UDP bind accepted")
	}
	if _, err := h.ListenTCP(102); err != nil {
		t.Fatal(err)
	}
	if _, err := h.ListenTCP(102); err == nil {
		t.Error("double TCP listen accepted")
	}
}

func TestUDPSocketClose(t *testing.T) {
	n := NewNetwork()
	h, _ := NewHost(n, "h", MAC{2}, IPv4{10})
	s, _ := h.BindUDP(102)
	s.Close()
	s.Close() // idempotent
	if _, err := h.BindUDP(102); err != nil {
		t.Errorf("port not released: %v", err)
	}
	if _, ok := <-s.Recv(); ok {
		t.Error("recv channel not closed")
	}
}
