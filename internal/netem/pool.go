package netem

import (
	"sync"
	"sync/atomic"
)

// minPayloadCap is the smallest capacity a pooled payload buffer is created
// with; GOOSE and SV PDUs at the range's dataset sizes fit comfortably.
const minPayloadCap = 2048

// PayloadBuf is a pooled, reusable frame payload buffer.
//
// Ownership rules of the zero-allocation data plane:
//
//   - A sender obtains a buffer with Host.AllocPayload, marshals into B
//     (reassigning B if it grows) and hands it to Host.SendPooled. From that
//     point the fabric owns the buffer; the sender must not touch it again.
//   - Transmit borrows the buffer for the hop: taps and tamper hooks observe
//     the frame before it is enqueued, switches forward it without copying
//     (flooding clones once per extra port), and the terminal deliverer —
//     the host whose HandleFrame consumes the frame, or the drop point —
//     releases it back to the pool.
//   - Consumers reached through a delivered frame (EtherType hooks, the
//     promiscuous sniffer contract below) must copy anything they retain.
//
// The wrapper itself is recycled through the pool, so a warm send allocates
// nothing.
type PayloadBuf struct {
	B    []byte
	pool *payloadPool // nil when frame pooling is disabled (reference path)
}

// payloadPool is a per-network sync.Pool of payload buffers with hit/return
// accounting (the pool hit rate is part of the data-plane counters).
type payloadPool struct {
	pool    sync.Pool
	gets    atomic.Uint64
	hits    atomic.Uint64
	returns atomic.Uint64
}

func (p *payloadPool) get() *PayloadBuf {
	p.gets.Add(1)
	if v := p.pool.Get(); v != nil {
		p.hits.Add(1)
		pb := v.(*PayloadBuf)
		pb.B = pb.B[:0]
		return pb
	}
	return &PayloadBuf{B: make([]byte, 0, minPayloadCap), pool: p}
}

func (p *payloadPool) put(pb *PayloadBuf) {
	p.returns.Add(1)
	p.pool.Put(pb)
}

// DataPlaneStats are the fabric's data-plane counters.
type DataPlaneStats struct {
	// Transmitted counts frames accepted onto a cabled link (per hop).
	Transmitted uint64
	// Dropped counts frames lost to loss rate, tamper drops, down links and
	// inbox overflow.
	Dropped uint64
	// PoolGets/PoolHits/PoolReturns describe the payload pool: a get that is
	// not a hit allocated a fresh buffer. Hit rate = PoolHits / PoolGets.
	PoolGets    uint64
	PoolHits    uint64
	PoolReturns uint64
}

// PoolHitRate returns the fraction of payload allocations served from the
// pool, or 0 before any pooled traffic.
func (s DataPlaneStats) PoolHitRate() float64 {
	if s.PoolGets == 0 {
		return 0
	}
	return float64(s.PoolHits) / float64(s.PoolGets)
}
