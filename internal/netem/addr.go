package netem

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// Well-known addresses.
var (
	BroadcastMAC = MAC{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}
	// GooseMACBase is the IEC 61850 multicast range 01-0C-CD-01-xx-xx.
	GooseMACBase = MAC{0x01, 0x0C, 0xCD, 0x01, 0x00, 0x00}
	// SVMACBase is the sampled-values multicast range 01-0C-CD-04-xx-xx.
	SVMACBase = MAC{0x01, 0x0C, 0xCD, 0x04, 0x00, 0x00}
)

// IsMulticast reports whether the address has the group bit set.
func (m MAC) IsMulticast() bool { return m[0]&0x01 != 0 }

// IsBroadcast reports whether the address is all-ones.
func (m MAC) IsBroadcast() bool { return m == BroadcastMAC }

// String formats as aa:bb:cc:dd:ee:ff.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// ParseMAC parses aa:bb:cc:dd:ee:ff or aa-bb-cc-dd-ee-ff.
func ParseMAC(s string) (MAC, error) {
	var m MAC
	parts := strings.FieldsFunc(s, func(r rune) bool { return r == ':' || r == '-' })
	if len(parts) != 6 {
		return m, fmt.Errorf("netem: bad MAC %q", s)
	}
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 16, 8)
		if err != nil {
			return m, fmt.Errorf("netem: bad MAC %q: %w", s, err)
		}
		m[i] = byte(v)
	}
	return m, nil
}

// GooseMAC returns the GOOSE multicast address for an APPID.
func GooseMAC(appID uint16) MAC {
	m := GooseMACBase
	m[4] = byte(appID >> 8)
	m[5] = byte(appID)
	return m
}

// SVMAC returns the sampled-values multicast address for an APPID.
func SVMAC(appID uint16) MAC {
	m := SVMACBase
	m[4] = byte(appID >> 8)
	m[5] = byte(appID)
	return m
}

// IPv4 is a 32-bit internet address.
type IPv4 [4]byte

// BroadcastIP is the limited broadcast address.
var BroadcastIP = IPv4{255, 255, 255, 255}

// String formats in dotted-quad notation.
func (ip IPv4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

// IsZero reports whether the address is 0.0.0.0.
func (ip IPv4) IsZero() bool { return ip == IPv4{} }

// ErrBadAddress is returned for malformed address strings.
var ErrBadAddress = errors.New("netem: bad address")

// ParseIPv4 parses dotted-quad notation.
func ParseIPv4(s string) (IPv4, error) {
	var ip IPv4
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return ip, fmt.Errorf("%w: %q", ErrBadAddress, s)
	}
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return ip, fmt.Errorf("%w: %q: %v", ErrBadAddress, s, err)
		}
		ip[i] = byte(v)
	}
	return ip, nil
}

// MustIPv4 parses s or panics; for tests and static topology tables.
func MustIPv4(s string) IPv4 {
	ip, err := ParseIPv4(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// MustMAC parses s or panics; for tests and static topology tables.
func MustMAC(s string) MAC {
	m, err := ParseMAC(s)
	if err != nil {
		panic(err)
	}
	return m
}
