// Package goose implements GOOSE (Generic Object Oriented Substation Event,
// IEC 61850-8-1) publish/subscribe messaging, plus the routable R-GOOSE
// variant, substituting libiec61850's GOOSE layer (§III-B).
//
// GOOSE carries device status (breaker positions, protection trips) between
// IEDs as multicast Ethernet frames with EtherType 0x88B8. Publishers
// retransmit each state with an increasing interval and bump stNum on state
// changes / sqNum on retransmissions, exactly the semantics interlocking
// (CILO, Table II) depends on. R-GOOSE wraps the same PDU in UDP for
// inter-substation delivery through the WAN (SED gateways).
package goose

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/ber"
	"repro/internal/mms"
	"repro/internal/netem"
)

// RGoosePort is the UDP port used for routable GOOSE.
const RGoosePort = 102

// Message is a decoded GOOSE PDU.
type Message struct {
	GocbRef   string
	DatSet    string
	GoID      string
	Timestamp time.Time
	StNum     uint32
	SqNum     uint32
	TTLMillis uint32
	ConfRev   uint32
	Values    []mms.Value
	SrcMAC    netem.MAC
}

// Errors returned by the codec.
var ErrBadPDU = errors.New("goose: malformed PDU")

// goosePDU field tags (context-specific, after IEC 61850-8-1).
const (
	tagGocbRef  = 0x80
	tagTTL      = 0x81
	tagDatSet   = 0x82
	tagGoID     = 0x83
	tagT        = 0x84
	tagStNum    = 0x85
	tagSqNum    = 0x86
	tagSim      = 0x87
	tagConfRev  = 0x88
	tagNdsCom   = 0x89
	tagNumEnt   = 0x8A
	tagAllData  = 0xAB
	tagGoosePDU = 0x61 // APPLICATION 1 constructed
)

// Marshal encodes the message as APPID header + goosePDU, the payload of an
// 0x88B8 Ethernet frame.
func Marshal(appID uint16, m Message) []byte {
	var pdu ber.Encoder
	pdu.AppendConstructed(tagGoosePDU, func(e *ber.Encoder) {
		e.AppendString(tagGocbRef, m.GocbRef)
		e.AppendUint(tagTTL, uint64(m.TTLMillis))
		e.AppendString(tagDatSet, m.DatSet)
		e.AppendString(tagGoID, m.GoID)
		e.AppendUTCTime(tagT, m.Timestamp.Unix(), int64(m.Timestamp.Nanosecond()))
		e.AppendUint(tagStNum, uint64(m.StNum))
		e.AppendUint(tagSqNum, uint64(m.SqNum))
		e.AppendBool(tagSim, false)
		e.AppendUint(tagConfRev, uint64(m.ConfRev))
		e.AppendBool(tagNdsCom, false)
		e.AppendUint(tagNumEnt, uint64(len(m.Values)))
		e.AppendConstructed(tagAllData, func(data *ber.Encoder) {
			for _, v := range m.Values {
				mms.EncodeData(data, v)
			}
		})
	})
	// IEC 61850-8-1 session header: APPID, length, 2 reserved words.
	out := make([]byte, 8, 8+pdu.Len())
	binary.BigEndian.PutUint16(out[0:], appID)
	binary.BigEndian.PutUint16(out[2:], uint16(8+pdu.Len()))
	return append(out, pdu.Bytes()...)
}

// Unmarshal decodes an 0x88B8 payload. It returns the APPID and message.
func Unmarshal(payload []byte) (uint16, Message, error) {
	var m Message
	if len(payload) < 8 {
		return 0, m, fmt.Errorf("%w: short header", ErrBadPDU)
	}
	appID := binary.BigEndian.Uint16(payload[0:])
	length := int(binary.BigEndian.Uint16(payload[2:]))
	if length < 8 || length > len(payload) {
		return 0, m, fmt.Errorf("%w: bad length %d", ErrBadPDU, length)
	}
	t, _, err := ber.Decode(payload[8:length])
	if err != nil {
		return 0, m, fmt.Errorf("%w: %v", ErrBadPDU, err)
	}
	if t.Tag != tagGoosePDU {
		return 0, m, fmt.Errorf("%w: tag 0x%02x", ErrBadPDU, t.Tag)
	}
	for _, c := range t.Children {
		switch c.Tag {
		case tagGocbRef:
			m.GocbRef = c.String()
		case tagTTL:
			v, _ := c.Uint()
			m.TTLMillis = uint32(v)
		case tagDatSet:
			m.DatSet = c.String()
		case tagGoID:
			m.GoID = c.String()
		case tagT:
			sec, nanos, err := c.UTCTime()
			if err == nil {
				m.Timestamp = time.Unix(sec, nanos).UTC()
			}
		case tagStNum:
			v, _ := c.Uint()
			m.StNum = uint32(v)
		case tagSqNum:
			v, _ := c.Uint()
			m.SqNum = uint32(v)
		case tagConfRev:
			v, _ := c.Uint()
			m.ConfRev = uint32(v)
		case tagAllData:
			for _, d := range c.Children {
				v, err := mms.DecodeData(d)
				if err != nil {
					return 0, m, fmt.Errorf("%w: data: %v", ErrBadPDU, err)
				}
				m.Values = append(m.Values, v)
			}
		}
	}
	if m.GocbRef == "" {
		return 0, m, fmt.Errorf("%w: missing gocbRef", ErrBadPDU)
	}
	return appID, m, nil
}

// RetransmissionSchedule returns the delay before the n-th retransmission
// (n starting at 1): fast initial bursts backing off to the heartbeat, the
// standard GOOSE profile. The ablation bench compares this against a fixed
// interval.
func RetransmissionSchedule(n int, heartbeat time.Duration) time.Duration {
	d := 2 * time.Millisecond
	for i := 1; i < n; i++ {
		d *= 2
		if d >= heartbeat {
			return heartbeat
		}
	}
	if d >= heartbeat {
		return heartbeat
	}
	return d
}

// PublisherConfig configures a GOOSE publisher.
type PublisherConfig struct {
	GocbRef   string
	DatSet    string
	GoID      string
	AppID     uint16
	ConfRev   uint32
	Heartbeat time.Duration // max retransmission interval; default 1 s
	// FixedInterval, when > 0, disables exponential backoff and retransmits
	// at this fixed period (ablation mode).
	FixedInterval time.Duration
}

// Publisher periodically multicasts the current dataset state.
type Publisher struct {
	cfg  PublisherConfig
	host *netem.Host
	mac  netem.MAC

	mu      sync.Mutex
	values  []mms.Value
	stNum   uint32
	sqNum   uint32
	retrans int
	timer   *time.Timer
	stopped bool
	sent    uint64
	now     func() time.Time
}

// NewPublisher creates a publisher bound to a host NIC.
func NewPublisher(h *netem.Host, cfg PublisherConfig) *Publisher {
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = time.Second
	}
	return &Publisher{cfg: cfg, host: h, mac: netem.GooseMAC(cfg.AppID), now: time.Now}
}

// Publish announces a new dataset state: stNum increments, sqNum resets, and
// the retransmission burst restarts.
func (p *Publisher) Publish(values ...mms.Value) {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	p.values = append([]mms.Value(nil), values...)
	p.stNum++
	p.sqNum = 0
	p.retrans = 0
	p.sendLocked()
	p.scheduleLocked()
	p.mu.Unlock()
}

// Stop halts retransmission.
func (p *Publisher) Stop() {
	p.mu.Lock()
	p.stopped = true
	if p.timer != nil {
		p.timer.Stop()
	}
	p.mu.Unlock()
}

// Sent reports frames transmitted (including retransmissions).
func (p *Publisher) Sent() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sent
}

// StNum returns the current state number.
func (p *Publisher) StNum() uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stNum
}

func (p *Publisher) sendLocked() {
	ttl := 2 * p.nextDelayLocked()
	msg := Message{
		GocbRef:   p.cfg.GocbRef,
		DatSet:    p.cfg.DatSet,
		GoID:      p.cfg.GoID,
		Timestamp: p.now(),
		StNum:     p.stNum,
		SqNum:     p.sqNum,
		TTLMillis: uint32(ttl / time.Millisecond),
		ConfRev:   p.cfg.ConfRev,
		Values:    p.values,
	}
	payload := Marshal(p.cfg.AppID, msg)
	p.host.SendFrame(netem.Frame{
		Dst: p.mac, Src: p.host.MAC(), EtherType: netem.EtherTypeGOOSE, Payload: payload,
	})
	p.sent++
	p.sqNum++
}

func (p *Publisher) nextDelayLocked() time.Duration {
	if p.cfg.FixedInterval > 0 {
		return p.cfg.FixedInterval
	}
	return RetransmissionSchedule(p.retrans+1, p.cfg.Heartbeat)
}

func (p *Publisher) scheduleLocked() {
	if p.timer != nil {
		p.timer.Stop()
	}
	delay := p.nextDelayLocked()
	p.retrans++
	p.timer = time.AfterFunc(delay, func() {
		p.mu.Lock()
		defer p.mu.Unlock()
		if p.stopped || p.stNum == 0 {
			return
		}
		p.sendLocked()
		p.scheduleLocked()
	})
}

// Update is a decoded message delivered to a subscriber, annotated with
// whether it announces a new state (stNum changed) or is a retransmission.
type Update struct {
	Message  Message
	AppID    uint16
	NewState bool
}

// Subscriber receives GOOSE messages for one APPID group.
type Subscriber struct {
	mu       sync.Mutex
	lastSt   map[string]uint32 // gocbRef -> last stNum
	received uint64
	ch       chan Update
}

// Subscribe joins the multicast group for appID on the host and returns the
// subscriber. The returned channel yields every received message; NewState
// distinguishes fresh states from retransmissions.
func Subscribe(h *netem.Host, appID uint16) *Subscriber {
	s := &Subscriber{lastSt: make(map[string]uint32), ch: make(chan Update, 256)}
	mac := netem.GooseMAC(appID)
	h.JoinMulticast(mac)
	h.HandleEtherType(netem.EtherTypeGOOSE, func(f netem.Frame) {
		gotID, msg, err := Unmarshal(f.Payload)
		if err != nil || gotID != appID {
			return
		}
		msg.SrcMAC = f.Src
		s.deliver(gotID, msg)
	})
	return s
}

func (s *Subscriber) deliver(appID uint16, msg Message) {
	s.mu.Lock()
	last, seen := s.lastSt[msg.GocbRef]
	isNew := !seen || msg.StNum != last
	s.lastSt[msg.GocbRef] = msg.StNum
	s.received++
	s.mu.Unlock()
	select {
	case s.ch <- Update{Message: msg, AppID: appID, NewState: isNew}:
	default: // slow subscriber: GOOSE is fire-and-forget
	}
}

// Updates returns the delivery channel.
func (s *Subscriber) Updates() <-chan Update { return s.ch }

// Received reports total messages seen (including retransmissions).
func (s *Subscriber) Received() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.received
}
