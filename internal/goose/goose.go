// Package goose implements GOOSE (Generic Object Oriented Substation Event,
// IEC 61850-8-1) publish/subscribe messaging, plus the routable R-GOOSE
// variant, substituting libiec61850's GOOSE layer (§III-B).
//
// GOOSE carries device status (breaker positions, protection trips) between
// IEDs as multicast Ethernet frames with EtherType 0x88B8. Publishers
// retransmit each state with an increasing interval and bump stNum on state
// changes / sqNum on retransmissions, exactly the semantics interlocking
// (CILO, Table II) depends on. R-GOOSE wraps the same PDU in UDP for
// inter-substation delivery through the WAN (SED gateways).
package goose

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/ber"
	"repro/internal/mms"
	"repro/internal/netem"
)

// RGoosePort is the UDP port used for routable GOOSE.
const RGoosePort = 102

// Message is a decoded GOOSE PDU.
type Message struct {
	GocbRef   string
	DatSet    string
	GoID      string
	Timestamp time.Time
	StNum     uint32
	SqNum     uint32
	TTLMillis uint32
	ConfRev   uint32
	Values    []mms.Value
	SrcMAC    netem.MAC
}

// Errors returned by the codec.
var ErrBadPDU = errors.New("goose: malformed PDU")

// goosePDU field tags (context-specific, after IEC 61850-8-1).
const (
	tagGocbRef  = 0x80
	tagTTL      = 0x81
	tagDatSet   = 0x82
	tagGoID     = 0x83
	tagT        = 0x84
	tagStNum    = 0x85
	tagSqNum    = 0x86
	tagSim      = 0x87
	tagConfRev  = 0x88
	tagNdsCom   = 0x89
	tagNumEnt   = 0x8A
	tagAllData  = 0xAB
	tagGoosePDU = 0x61 // APPLICATION 1 constructed
)

// Marshal encodes the message as APPID header + goosePDU, the payload of an
// 0x88B8 Ethernet frame.
func Marshal(appID uint16, m Message) []byte {
	return MarshalAppend(nil, appID, m)
}

// MarshalAppend appends the encoded message to dst and returns the extended
// buffer — the warm-path form of Marshal: with a reused dst it allocates
// nothing. The output bytes are identical to Marshal's.
func MarshalAppend(dst []byte, appID uint16, m Message) []byte {
	start := len(dst)
	// IEC 61850-8-1 session header: APPID, length, 2 reserved words.
	var e ber.Encoder
	e.UseBuf(append(dst, 0, 0, 0, 0, 0, 0, 0, 0))
	e.AppendConstructed(tagGoosePDU, func(e *ber.Encoder) {
		e.AppendString(tagGocbRef, m.GocbRef)
		e.AppendUint(tagTTL, uint64(m.TTLMillis))
		e.AppendString(tagDatSet, m.DatSet)
		e.AppendString(tagGoID, m.GoID)
		e.AppendUTCTime(tagT, m.Timestamp.Unix(), int64(m.Timestamp.Nanosecond()))
		e.AppendUint(tagStNum, uint64(m.StNum))
		e.AppendUint(tagSqNum, uint64(m.SqNum))
		e.AppendBool(tagSim, false)
		e.AppendUint(tagConfRev, uint64(m.ConfRev))
		e.AppendBool(tagNdsCom, false)
		e.AppendUint(tagNumEnt, uint64(len(m.Values)))
		e.AppendConstructed(tagAllData, func(data *ber.Encoder) {
			for _, v := range m.Values {
				mms.EncodeData(data, v)
			}
		})
	})
	out := e.Bytes()
	binary.BigEndian.PutUint16(out[start:], appID)
	binary.BigEndian.PutUint16(out[start+2:], uint16(len(out)-start))
	return out
}

// Decoder decodes GOOSE payloads reusing an internal TLV arena across calls
// (see ber.Decoder), so a long-lived subscriber or sensor decodes without
// re-allocating the TLV tree per packet. The control-block identity strings
// (gocbRef, datSet, goID) are interned — their cardinality is bounded by the
// model, so a steady-state stream re-uses one string per control block
// instead of allocating per packet. Not safe for concurrent use.
type Decoder struct {
	ber      ber.Decoder
	interned map[string]string
}

// NewDecoder returns a decoder with identity-string interning enabled — the
// right choice for long-lived consumers (subscribers, sensors). A zero-value
// Decoder still reuses its TLV arena but copies identity strings per call,
// which is cheaper for one-shot decodes.
func NewDecoder() *Decoder {
	return &Decoder{interned: make(map[string]string)}
}

// maxInterned bounds the identity-string cache; past it (which no sane model
// reaches) new strings are allocated per packet instead of cached.
const maxInterned = 4096

// intern returns a stable string for b, allocating only the first time a
// given control-block identity is seen (when interning is enabled).
func (d *Decoder) intern(b []byte) string {
	if d.interned == nil {
		return string(b)
	}
	if s, ok := d.interned[string(b)]; ok { // string() in a map index: no alloc
		return s
	}
	s := string(b)
	if len(d.interned) < maxInterned {
		d.interned[s] = s
	}
	return s
}

// Unmarshal decodes an 0x88B8 payload. It returns the APPID and message.
func Unmarshal(payload []byte) (uint16, Message, error) {
	var d Decoder
	return d.Unmarshal(payload)
}

// Unmarshal decodes an 0x88B8 payload like the package-level Unmarshal,
// reusing the decoder's arena. The returned Message owns all its data (no
// field aliases the payload), so the wire buffer may be reused immediately.
func (d *Decoder) Unmarshal(payload []byte) (uint16, Message, error) {
	var m Message
	appID, t, err := d.decodePDU(payload)
	if err != nil {
		return 0, m, err
	}
	for _, c := range t.Children {
		switch c.Tag {
		case tagGocbRef:
			m.GocbRef = d.intern(c.Value)
		case tagTTL:
			v, _ := c.Uint()
			m.TTLMillis = uint32(v)
		case tagDatSet:
			m.DatSet = d.intern(c.Value)
		case tagGoID:
			m.GoID = d.intern(c.Value)
		case tagT:
			sec, nanos, err := c.UTCTime()
			if err == nil {
				m.Timestamp = time.Unix(sec, nanos).UTC()
			}
		case tagStNum:
			v, _ := c.Uint()
			m.StNum = uint32(v)
		case tagSqNum:
			v, _ := c.Uint()
			m.SqNum = uint32(v)
		case tagConfRev:
			v, _ := c.Uint()
			m.ConfRev = uint32(v)
		case tagAllData:
			if m.Values == nil && len(c.Children) > 0 {
				m.Values = make([]mms.Value, 0, len(c.Children))
			}
			for _, d := range c.Children {
				v, err := mms.DecodeData(d)
				if err != nil {
					return 0, m, fmt.Errorf("%w: data: %v", ErrBadPDU, err)
				}
				m.Values = append(m.Values, v)
			}
		}
	}
	if m.GocbRef == "" {
		return 0, m, fmt.Errorf("%w: missing gocbRef", ErrBadPDU)
	}
	return appID, m, nil
}

// Header is a shallow summary of a GOOSE PDU for inspection paths (the IDS):
// only the fields anomaly detection needs, decoded without building values.
// GocbRef aliases the payload and must not be retained.
type Header struct {
	GocbRef []byte
	StNum   uint32
	SqNum   uint32
}

// DecodeHeader extracts the APPID and Header from an 0x88B8 payload without
// decoding the dataset values — the allocation-free inspection fast path.
func (d *Decoder) DecodeHeader(payload []byte) (uint16, Header, error) {
	var h Header
	appID, t, err := d.decodePDU(payload)
	if err != nil {
		return 0, h, err
	}
	for _, c := range t.Children {
		switch c.Tag {
		case tagGocbRef:
			h.GocbRef = c.Value
		case tagStNum:
			v, _ := c.Uint()
			h.StNum = uint32(v)
		case tagSqNum:
			v, _ := c.Uint()
			h.SqNum = uint32(v)
		}
	}
	if len(h.GocbRef) == 0 {
		return 0, h, fmt.Errorf("%w: missing gocbRef", ErrBadPDU)
	}
	return appID, h, nil
}

// decodePDU validates the session header and decodes the goosePDU element.
func (d *Decoder) decodePDU(payload []byte) (uint16, ber.TLV, error) {
	if len(payload) < 8 {
		return 0, ber.TLV{}, fmt.Errorf("%w: short header", ErrBadPDU)
	}
	appID := binary.BigEndian.Uint16(payload[0:])
	length := int(binary.BigEndian.Uint16(payload[2:]))
	if length < 8 || length > len(payload) {
		return 0, ber.TLV{}, fmt.Errorf("%w: bad length %d", ErrBadPDU, length)
	}
	t, _, err := d.ber.Decode(payload[8:length])
	if err != nil {
		return 0, ber.TLV{}, fmt.Errorf("%w: %v", ErrBadPDU, err)
	}
	if t.Tag != tagGoosePDU {
		return 0, ber.TLV{}, fmt.Errorf("%w: tag 0x%02x", ErrBadPDU, t.Tag)
	}
	return appID, t, nil
}

// RetransmissionSchedule returns the delay before the n-th retransmission
// (n starting at 1): fast initial bursts backing off to the heartbeat, the
// standard GOOSE profile. The ablation bench compares this against a fixed
// interval.
func RetransmissionSchedule(n int, heartbeat time.Duration) time.Duration {
	d := 2 * time.Millisecond
	for i := 1; i < n; i++ {
		d *= 2
		if d >= heartbeat {
			return heartbeat
		}
	}
	if d >= heartbeat {
		return heartbeat
	}
	return d
}

// PublisherConfig configures a GOOSE publisher.
type PublisherConfig struct {
	GocbRef   string
	DatSet    string
	GoID      string
	AppID     uint16
	ConfRev   uint32
	Heartbeat time.Duration // max retransmission interval; default 1 s
	// FixedInterval, when > 0, disables exponential backoff and retransmits
	// at this fixed period (ablation mode).
	FixedInterval time.Duration
}

// Publisher periodically multicasts the current dataset state.
type Publisher struct {
	cfg  PublisherConfig
	host *netem.Host
	mac  netem.MAC

	mu      sync.Mutex
	values  []mms.Value
	stNum   uint32
	sqNum   uint32
	retrans int
	timer   *time.Timer
	stopped bool
	sent    uint64
	now     func() time.Time
}

// NewPublisher creates a publisher bound to a host NIC.
func NewPublisher(h *netem.Host, cfg PublisherConfig) *Publisher {
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = time.Second
	}
	return &Publisher{cfg: cfg, host: h, mac: netem.GooseMAC(cfg.AppID), now: time.Now}
}

// Publish announces a new dataset state: stNum increments, sqNum resets, and
// the retransmission burst restarts. The values are copied into a reused
// per-publisher buffer, so a steady-state publish allocates nothing.
func (p *Publisher) Publish(values ...mms.Value) {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	p.values = append(p.values[:0], values...)
	p.stNum++
	p.sqNum = 0
	p.retrans = 0
	p.sendLocked()
	p.scheduleLocked()
	p.mu.Unlock()
}

// Stop halts retransmission.
func (p *Publisher) Stop() {
	p.mu.Lock()
	p.stopped = true
	if p.timer != nil {
		p.timer.Stop()
	}
	p.mu.Unlock()
}

// Sent reports frames transmitted (including retransmissions).
func (p *Publisher) Sent() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sent
}

// StNum returns the current state number.
func (p *Publisher) StNum() uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stNum
}

func (p *Publisher) sendLocked() {
	ttl := 2 * p.nextDelayLocked()
	msg := Message{
		GocbRef:   p.cfg.GocbRef,
		DatSet:    p.cfg.DatSet,
		GoID:      p.cfg.GoID,
		Timestamp: p.now(),
		StNum:     p.stNum,
		SqNum:     p.sqNum,
		TTLMillis: uint32(ttl / time.Millisecond),
		ConfRev:   p.cfg.ConfRev,
		Values:    p.values,
	}
	// Marshal into a fabric-pooled buffer and hand ownership to the fabric;
	// the terminal deliverer releases it (zero-allocation warm path).
	pb := p.host.AllocPayload()
	pb.B = MarshalAppend(pb.B, p.cfg.AppID, msg)
	p.host.SendPooled(p.mac, netem.EtherTypeGOOSE, pb)
	p.sent++
	p.sqNum++
}

func (p *Publisher) nextDelayLocked() time.Duration {
	if p.cfg.FixedInterval > 0 {
		return p.cfg.FixedInterval
	}
	return RetransmissionSchedule(p.retrans+1, p.cfg.Heartbeat)
}

func (p *Publisher) scheduleLocked() {
	delay := p.nextDelayLocked()
	p.retrans++
	if p.timer == nil {
		p.timer = time.AfterFunc(delay, p.retransmit)
		return
	}
	// Reuse the timer across (re)publishes instead of allocating one per
	// state change.
	p.timer.Stop()
	p.timer.Reset(delay)
}

func (p *Publisher) retransmit() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopped || p.stNum == 0 {
		return
	}
	p.sendLocked()
	p.scheduleLocked()
}

// Update is a decoded message delivered to a subscriber, annotated with
// whether it announces a new state (stNum changed) or is a retransmission.
type Update struct {
	Message  Message
	AppID    uint16
	NewState bool
}

// Subscriber receives GOOSE messages for one APPID group.
type Subscriber struct {
	mu       sync.Mutex
	lastSt   map[string]uint32 // gocbRef -> last stNum
	received uint64
	dropped  uint64
	ch       chan Update
}

// Subscribe joins the multicast group for appID on the host and returns the
// subscriber. The returned channel yields every received message; NewState
// distinguishes fresh states from retransmissions.
func Subscribe(h *netem.Host, appID uint16) *Subscriber {
	s := &Subscriber{lastSt: make(map[string]uint32), ch: make(chan Update, 256)}
	mac := netem.GooseMAC(appID)
	h.JoinMulticast(mac)
	// The handler runs on the host's single worker goroutine, so the arena
	// decoder needs no locking. The decoded Message copies everything it
	// keeps, honouring the fabric's pooled-payload ownership rules.
	dec := NewDecoder()
	h.HandleEtherType(netem.EtherTypeGOOSE, func(f netem.Frame) {
		gotID, msg, err := dec.Unmarshal(f.Payload)
		if err != nil || gotID != appID {
			return
		}
		msg.SrcMAC = f.Src
		s.deliver(gotID, msg)
	})
	return s
}

func (s *Subscriber) deliver(appID uint16, msg Message) {
	s.mu.Lock()
	last, seen := s.lastSt[msg.GocbRef]
	isNew := !seen || msg.StNum != last
	s.lastSt[msg.GocbRef] = msg.StNum
	s.received++
	s.mu.Unlock()
	select {
	case s.ch <- Update{Message: msg, AppID: appID, NewState: isNew}:
	default: // slow subscriber: GOOSE is fire-and-forget
		s.mu.Lock()
		s.dropped++
		s.mu.Unlock()
	}
}

// Updates returns the delivery channel.
func (s *Subscriber) Updates() <-chan Update { return s.ch }

// Received reports total messages seen (including retransmissions).
func (s *Subscriber) Received() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.received
}

// Dropped reports updates lost because the subscriber's channel was full —
// the per-subscriber accounting sv.Subscriber.Stats has always had and the
// GOOSE side silently lacked.
func (s *Subscriber) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}
