package goose

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/mms"
	"repro/internal/netem"
	"repro/internal/testutil"
)

// payloadRecorder copies delivered payloads under a lock (frame handlers run
// on the host worker goroutine and must not retain pooled payloads).
type payloadRecorder struct {
	mu sync.Mutex
	ps [][]byte
}

func (r *payloadRecorder) record(f netem.Frame) {
	r.mu.Lock()
	r.ps = append(r.ps, append([]byte(nil), f.Payload...))
	r.mu.Unlock()
}

func (r *payloadRecorder) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ps)
}

func (r *payloadRecorder) snapshot() [][]byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([][]byte(nil), r.ps...)
}

func sampleMessage(values int) Message {
	m := Message{
		GocbRef: "GIED1LD0/LLN0$GO$gcb1", DatSet: "GIED1LD0/LLN0$ds", GoID: "gcb1",
		Timestamp: time.Unix(1_700_000_000, 123456789).UTC(),
		StNum:     42, SqNum: 3, TTLMillis: 2000, ConfRev: 7,
	}
	for i := 0; i < values; i++ {
		switch i % 3 {
		case 0:
			m.Values = append(m.Values, mms.NewBool(i%2 == 0))
		case 1:
			m.Values = append(m.Values, mms.NewFloat(float64(i)*1.5))
		default:
			m.Values = append(m.Values, mms.NewString(fmt.Sprintf("val-%d", i)))
		}
	}
	return m
}

func TestMarshalAppendMatchesMarshal(t *testing.T) {
	// Sizes chosen to cross the BER length-form boundaries inside the PDU.
	for _, values := range []int{0, 1, 3, 20, 60} {
		m := sampleMessage(values)
		want := Marshal(0x3001, m)
		got := MarshalAppend(nil, 0x3001, m)
		if !bytes.Equal(want, got) {
			t.Fatalf("values=%d: MarshalAppend differs from Marshal", values)
		}
		// Appending after a prefix preserves the prefix and the encoding.
		withPrefix := MarshalAppend([]byte{0xAA, 0xBB}, 0x3001, m)
		if !bytes.Equal(withPrefix[:2], []byte{0xAA, 0xBB}) || !bytes.Equal(withPrefix[2:], want) {
			t.Fatalf("values=%d: prefixed MarshalAppend corrupts output", values)
		}
	}
}

func TestDecoderMatchesUnmarshal(t *testing.T) {
	var dec Decoder
	for _, values := range []int{0, 1, 3, 20, 60} {
		m := sampleMessage(values)
		payload := Marshal(0x3001, m)
		wantID, wantMsg, wantErr := Unmarshal(payload)
		gotID, gotMsg, gotErr := dec.Unmarshal(payload)
		if (wantErr == nil) != (gotErr == nil) || wantID != gotID {
			t.Fatalf("values=%d: header mismatch", values)
		}
		if !reflect.DeepEqual(wantMsg, gotMsg) {
			t.Fatalf("values=%d: arena decode differs from Unmarshal", values)
		}
	}
}

func TestDecodeHeaderMatchesUnmarshal(t *testing.T) {
	var dec Decoder
	m := sampleMessage(4)
	payload := Marshal(0x3001, m)
	appID, hdr, err := dec.DecodeHeader(payload)
	if err != nil {
		t.Fatal(err)
	}
	if appID != 0x3001 || string(hdr.GocbRef) != m.GocbRef || hdr.StNum != m.StNum || hdr.SqNum != m.SqNum {
		t.Errorf("header = %d %q st=%d sq=%d", appID, hdr.GocbRef, hdr.StNum, hdr.SqNum)
	}
	// Malformed inputs error like the full decode.
	for _, b := range [][]byte{nil, {1, 2, 3}, payload[:9]} {
		if _, _, err := dec.DecodeHeader(b); err == nil {
			t.Errorf("DecodeHeader(%x) accepted malformed input", b)
		}
	}
}

func TestSubscriberDroppedCounter(t *testing.T) {
	s := &Subscriber{lastSt: make(map[string]uint32), ch: make(chan Update, 2)}
	for i := 0; i < 5; i++ {
		s.deliver(1, Message{GocbRef: "g", StNum: uint32(i + 1)})
	}
	if got := s.Received(); got != 5 {
		t.Errorf("received = %d", got)
	}
	if got := s.Dropped(); got != 3 {
		t.Errorf("dropped = %d, want 3 (channel capacity 2)", got)
	}
	// Draining frees capacity; subsequent deliveries are not dropped.
	<-s.Updates()
	s.deliver(1, Message{GocbRef: "g", StNum: 6})
	if got := s.Dropped(); got != 3 {
		t.Errorf("dropped moved to %d after drain", got)
	}
}

func TestWarmMarshalUnmarshalAllocBudget(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation budgets are meaningless under -race")
	}
	m := sampleMessage(3)
	dec := NewDecoder()
	var buf []byte
	op := func() {
		buf = MarshalAppend(buf[:0], 0x3001, m)
		if _, _, err := dec.Unmarshal(buf); err != nil {
			t.Fatal(err)
		}
	}
	op() // warm buffer, arena and interned identities
	// Budget: marshal is allocation-free; with interned identity strings the
	// decoded Message owns only its values slice and the one string dataset
	// member (~2 allocs). Slack of 2 guards against GC noise without masking
	// a regression back to tree-per-packet decoding (~20+).
	if n := testing.AllocsPerRun(200, op); n > 4 {
		t.Errorf("warm marshal+unmarshal allocates %.1f/op, budget 4", n)
	}
	headerOnly := func() {
		if _, _, err := dec.DecodeHeader(buf); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(200, headerOnly); n > 0 {
		t.Errorf("header-only decode allocates %.1f/op, want 0", n)
	}
}

func TestPooledPublishDeliversIdenticalBytes(t *testing.T) {
	// Differential: the pooled publish path delivers the same wire bytes to
	// subscribers as the reference path for the same message sequence.
	run := func(pooling bool) [][]byte {
		n := netem.NewNetwork()
		n.SetFramePooling(pooling)
		if _, err := netem.NewSwitch(n, "sw", 4); err != nil {
			t.Fatal(err)
		}
		pubHost, err := netem.NewHost(n, "pub", netem.MAC{2, 0, 0, 0, 0, 1}, netem.IPv4{10, 0, 0, 1})
		if err != nil {
			t.Fatal(err)
		}
		subHost, err := netem.NewHost(n, "sub", netem.MAC{2, 0, 0, 0, 0, 2}, netem.IPv4{10, 0, 0, 2})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.Connect("pub", 0, "sw", 0, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := n.Connect("sub", 0, "sw", 1, 0); err != nil {
			t.Fatal(err)
		}
		var log payloadRecorder
		subHost.JoinMulticast(netem.GooseMAC(0x0001))
		subHost.HandleEtherType(netem.EtherTypeGOOSE, log.record)
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
		defer n.Stop()
		pub := NewPublisher(pubHost, PublisherConfig{
			GocbRef: "g1", DatSet: "ds", GoID: "go", AppID: 0x0001, ConfRev: 1,
			FixedInterval: time.Hour, // no retransmissions during the test
		})
		pub.now = func() time.Time { return time.Unix(1_700_000_000, 0) }
		defer pub.Stop()
		for i := 0; i < 10; i++ {
			pub.Publish(mms.NewBool(i%2 == 0), mms.NewFloat(float64(i)))
		}
		deadline := time.Now().Add(2 * time.Second)
		for log.len() < 10 {
			if time.Now().After(deadline) {
				t.Fatal("missing deliveries")
			}
			time.Sleep(time.Millisecond)
		}
		return log.snapshot()
	}
	ref := run(false)
	pooled := run(true)
	if len(ref) != len(pooled) {
		t.Fatalf("delivered %d vs %d", len(ref), len(pooled))
	}
	for i := range ref {
		if !bytes.Equal(ref[i], pooled[i]) {
			t.Fatalf("frame %d differs between reference and pooled publish paths", i)
		}
	}
}
