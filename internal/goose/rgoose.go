package goose

import (
	"sync"
	"time"

	"repro/internal/mms"
	"repro/internal/netem"
)

// R-GOOSE: the same GOOSE PDU carried in UDP for routable, inter-substation
// delivery (IEC TR 61850-90-5). The paper's gateways use it for
// inter-substation protection (PDIF/CILO, §III-B). The emulated WAN has no
// IP multicast, so the publisher unicasts to its configured peer gateways —
// DESIGN.md records this substitution.

// RPublisher sends R-GOOSE datagrams to a set of peer gateways.
type RPublisher struct {
	cfg   PublisherConfig
	sock  *netem.UDPSocket
	peers []netem.IPv4

	mu      sync.Mutex
	stNum   uint32
	sqNum   uint32
	values  []mms.Value
	scratch []byte // reused marshal buffer; SendTo copies, so reuse is safe
	timer   *time.Timer
	stopped bool
	sent    uint64
}

// NewRPublisher binds an ephemeral UDP socket on the host.
func NewRPublisher(h *netem.Host, cfg PublisherConfig, peers []netem.IPv4) (*RPublisher, error) {
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = time.Second
	}
	sock, err := h.BindUDP(0)
	if err != nil {
		return nil, err
	}
	return &RPublisher{cfg: cfg, sock: sock, peers: append([]netem.IPv4(nil), peers...)}, nil
}

// Publish announces a new state to all peers, with heartbeat retransmission.
func (p *RPublisher) Publish(values ...mms.Value) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopped {
		return
	}
	p.values = append(p.values[:0], values...)
	p.stNum++
	p.sqNum = 0
	p.sendLocked()
	p.scheduleLocked()
}

// Stop halts retransmission and closes the socket.
func (p *RPublisher) Stop() {
	p.mu.Lock()
	p.stopped = true
	if p.timer != nil {
		p.timer.Stop()
	}
	p.mu.Unlock()
	p.sock.Close()
}

// Sent reports datagrams transmitted across all peers.
func (p *RPublisher) Sent() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sent
}

func (p *RPublisher) sendLocked() {
	msg := Message{
		GocbRef:   p.cfg.GocbRef,
		DatSet:    p.cfg.DatSet,
		GoID:      p.cfg.GoID,
		Timestamp: time.Now(),
		StNum:     p.stNum,
		SqNum:     p.sqNum,
		TTLMillis: uint32(2 * p.cfg.Heartbeat / time.Millisecond),
		ConfRev:   p.cfg.ConfRev,
		Values:    p.values,
	}
	p.scratch = MarshalAppend(p.scratch[:0], p.cfg.AppID, msg)
	for _, peer := range p.peers {
		if err := p.sock.SendTo(peer, RGoosePort, p.scratch); err == nil {
			p.sent++
		}
	}
	p.sqNum++
}

func (p *RPublisher) scheduleLocked() {
	if p.timer == nil {
		p.timer = time.AfterFunc(p.cfg.Heartbeat, p.retransmit)
		return
	}
	p.timer.Stop()
	p.timer.Reset(p.cfg.Heartbeat)
}

func (p *RPublisher) retransmit() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopped || p.stNum == 0 {
		return
	}
	p.sendLocked()
	p.scheduleLocked()
}

// RSubscriber receives R-GOOSE datagrams on the R-GOOSE UDP port.
type RSubscriber struct {
	sub  *Subscriber
	sock *netem.UDPSocket
	done chan struct{}
}

// SubscribeR binds the R-GOOSE port on the host and starts decoding.
func SubscribeR(h *netem.Host, appID uint16) (*RSubscriber, error) {
	sock, err := h.BindUDP(RGoosePort)
	if err != nil {
		return nil, err
	}
	rs := &RSubscriber{
		sub:  &Subscriber{lastSt: make(map[string]uint32), ch: make(chan Update, 256)},
		sock: sock,
		done: make(chan struct{}),
	}
	go func() {
		defer close(rs.done)
		dec := NewDecoder() // arena + interning reused on this goroutine
		for m := range sock.Recv() {
			gotID, msg, err := dec.Unmarshal(m.Data)
			if err != nil || gotID != appID {
				continue
			}
			rs.sub.deliver(gotID, msg)
		}
	}()
	return rs, nil
}

// Updates returns the delivery channel.
func (rs *RSubscriber) Updates() <-chan Update { return rs.sub.Updates() }

// Received reports total datagrams decoded.
func (rs *RSubscriber) Received() uint64 { return rs.sub.Received() }

// Dropped reports updates lost to a full delivery channel.
func (rs *RSubscriber) Dropped() uint64 { return rs.sub.Dropped() }

// Close releases the socket and waits for the decoder to finish.
func (rs *RSubscriber) Close() {
	rs.sock.Close()
	<-rs.done
}
