package goose

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/mms"
	"repro/internal/netem"
)

func testLAN(t *testing.T, hosts int) (*netem.Network, []*netem.Host) {
	t.Helper()
	n := netem.NewNetwork()
	if _, err := netem.NewSwitch(n, "sw", hosts+1); err != nil {
		t.Fatal(err)
	}
	out := make([]*netem.Host, hosts)
	for i := 0; i < hosts; i++ {
		mac := netem.MAC{0x02, 0, 0, 0, 0, byte(i + 1)}
		ip := netem.IPv4{10, 0, 0, byte(i + 1)}
		h, err := netem.NewHost(n, string(rune('a'+i))+"-host", mac, ip)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.Connect(h.Name(), 0, "sw", i, 0); err != nil {
			t.Fatal(err)
		}
		out[i] = h
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)
	return n, out
}

func TestMarshalRoundTrip(t *testing.T) {
	msg := Message{
		GocbRef:   "GIED1LD0/LLN0$GO$gcb1",
		DatSet:    "GIED1LD0/LLN0$Status",
		GoID:      "gcb1",
		Timestamp: time.Unix(1_700_000_000, 250_000_000).UTC(),
		StNum:     7,
		SqNum:     3,
		TTLMillis: 2000,
		ConfRev:   1,
		Values:    []mms.Value{mms.NewBool(true), mms.NewInt(-5), mms.NewFloat(0.42)},
	}
	payload := Marshal(0x0001, msg)
	appID, got, err := Unmarshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	if appID != 1 {
		t.Errorf("appID = %d", appID)
	}
	if got.GocbRef != msg.GocbRef || got.StNum != 7 || got.SqNum != 3 || got.ConfRev != 1 || got.TTLMillis != 2000 {
		t.Errorf("got %+v", got)
	}
	if len(got.Values) != 3 || !got.Values[0].Bool || got.Values[1].Int != -5 || got.Values[2].Float != 0.42 {
		t.Errorf("values = %v", got.Values)
	}
	if d := got.Timestamp.Sub(msg.Timestamp); d < -time.Microsecond || d > time.Microsecond {
		t.Errorf("timestamp drift %v", d)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x00, 0x01},
		{0x00, 0x01, 0x00, 0x04, 0, 0, 0, 0}, // length < 8 content
		append([]byte{0x00, 0x01, 0x00, 0x0C, 0, 0, 0, 0}, 0x30, 0x02, 0x01, 0x01), // wrong tag
		append([]byte{0x00, 0x01, 0x00, 0x0A, 0, 0, 0, 0}, 0x61, 0x00),             // no gocbRef
	}
	for i, c := range cases {
		if _, _, err := Unmarshal(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestUnmarshalNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, _, _ = Unmarshal(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestRetransmissionSchedule(t *testing.T) {
	hb := time.Second
	prev := time.Duration(0)
	for n := 1; n <= 12; n++ {
		d := RetransmissionSchedule(n, hb)
		if d < prev {
			t.Errorf("schedule not monotonic at %d: %v < %v", n, d, prev)
		}
		if d > hb {
			t.Errorf("schedule exceeds heartbeat at %d: %v", n, d)
		}
		prev = d
	}
	if RetransmissionSchedule(1, hb) != 2*time.Millisecond {
		t.Error("first retransmission should be 2 ms")
	}
	if RetransmissionSchedule(100, hb) != hb {
		t.Error("schedule should cap at heartbeat")
	}
}

func TestPublishSubscribe(t *testing.T) {
	_, hosts := testLAN(t, 3)
	pub := NewPublisher(hosts[0], PublisherConfig{
		GocbRef: "IED1LD0/LLN0$GO$gcb1", DatSet: "ds", GoID: "gcb1", AppID: 0x0001, ConfRev: 1,
	})
	defer pub.Stop()
	sub1 := Subscribe(hosts[1], 0x0001)
	sub2 := Subscribe(hosts[2], 0x0001)

	pub.Publish(mms.NewBool(true))
	for _, sub := range []*Subscriber{sub1, sub2} {
		select {
		case u := <-sub.Updates():
			if !u.NewState {
				t.Error("first message not marked new state")
			}
			if u.Message.StNum != 1 || u.Message.SqNum != 0 {
				t.Errorf("st/sq = %d/%d", u.Message.StNum, u.Message.SqNum)
			}
			if len(u.Message.Values) != 1 || !u.Message.Values[0].Bool {
				t.Errorf("values = %v", u.Message.Values)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("subscriber missed publication")
		}
	}
}

func TestRetransmissionsArriveWithSameStNum(t *testing.T) {
	_, hosts := testLAN(t, 2)
	pub := NewPublisher(hosts[0], PublisherConfig{
		GocbRef: "ref", AppID: 2, Heartbeat: 50 * time.Millisecond,
	})
	defer pub.Stop()
	sub := Subscribe(hosts[1], 2)
	pub.Publish(mms.NewBool(false))

	deadline := time.After(2 * time.Second)
	var newStates, retrans int
	for retrans < 2 {
		select {
		case u := <-sub.Updates():
			if u.NewState {
				newStates++
			} else {
				retrans++
				if u.Message.StNum != 1 {
					t.Errorf("retransmission stNum = %d", u.Message.StNum)
				}
				if u.Message.SqNum == 0 {
					t.Error("retransmission with sqNum 0")
				}
			}
		case <-deadline:
			t.Fatalf("timed out: %d new, %d retrans", newStates, retrans)
		}
	}
	if newStates != 1 {
		t.Errorf("new states = %d, want 1", newStates)
	}
	if pub.Sent() < 3 {
		t.Errorf("sent = %d", pub.Sent())
	}
}

func TestStateChangeBumpsStNum(t *testing.T) {
	_, hosts := testLAN(t, 2)
	pub := NewPublisher(hosts[0], PublisherConfig{GocbRef: "ref", AppID: 3, Heartbeat: time.Hour})
	defer pub.Stop()
	sub := Subscribe(hosts[1], 3)
	pub.Publish(mms.NewBool(false))
	pub.Publish(mms.NewBool(true))

	var stNums []uint32
	deadline := time.After(2 * time.Second)
	for len(stNums) < 2 {
		select {
		case u := <-sub.Updates():
			if u.NewState {
				stNums = append(stNums, u.Message.StNum)
			}
		case <-deadline:
			t.Fatalf("got stNums %v", stNums)
		}
	}
	if stNums[0] != 1 || stNums[1] != 2 {
		t.Errorf("stNums = %v", stNums)
	}
	if pub.StNum() != 2 {
		t.Errorf("publisher StNum = %d", pub.StNum())
	}
}

func TestSubscriberIgnoresOtherAppIDs(t *testing.T) {
	_, hosts := testLAN(t, 2)
	pub := NewPublisher(hosts[0], PublisherConfig{GocbRef: "ref", AppID: 5, Heartbeat: time.Hour})
	defer pub.Stop()
	sub := Subscribe(hosts[1], 6) // different group
	pub.Publish(mms.NewBool(true))
	select {
	case u := <-sub.Updates():
		t.Fatalf("unexpected delivery %+v", u)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestFixedIntervalMode(t *testing.T) {
	_, hosts := testLAN(t, 2)
	pub := NewPublisher(hosts[0], PublisherConfig{
		GocbRef: "ref", AppID: 7, FixedInterval: 10 * time.Millisecond,
	})
	defer pub.Stop()
	sub := Subscribe(hosts[1], 7)
	pub.Publish(mms.NewInt(1))
	time.Sleep(100 * time.Millisecond)
	if got := sub.Received(); got < 5 {
		t.Errorf("fixed-interval retransmissions = %d, want >= 5", got)
	}
}

func TestPublisherStopHaltsRetransmission(t *testing.T) {
	_, hosts := testLAN(t, 2)
	pub := NewPublisher(hosts[0], PublisherConfig{GocbRef: "ref", AppID: 8, Heartbeat: 10 * time.Millisecond})
	sub := Subscribe(hosts[1], 8)
	pub.Publish(mms.NewInt(1))
	pub.Stop()
	time.Sleep(30 * time.Millisecond)
	before := sub.Received()
	time.Sleep(50 * time.Millisecond)
	if after := sub.Received(); after != before {
		t.Errorf("messages still flowing after Stop: %d -> %d", before, after)
	}
	pub.Publish(mms.NewInt(2)) // no-op after stop
	time.Sleep(20 * time.Millisecond)
	if after := sub.Received(); after != before {
		t.Error("Publish after Stop transmitted")
	}
}

func TestRGooseAcrossRouting(t *testing.T) {
	_, hosts := testLAN(t, 3)
	sub1, err := SubscribeR(hosts[1], 9)
	if err != nil {
		t.Fatal(err)
	}
	defer sub1.Close()
	sub2, err := SubscribeR(hosts[2], 9)
	if err != nil {
		t.Fatal(err)
	}
	defer sub2.Close()

	pub, err := NewRPublisher(hosts[0], PublisherConfig{
		GocbRef: "GW1LD0/LLN0$GO$rgcb", AppID: 9, Heartbeat: time.Hour,
	}, []netem.IPv4{hosts[1].IP(), hosts[2].IP()})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Stop()

	pub.Publish(mms.NewBool(true), mms.NewString("CB-OPEN"))
	for i, sub := range []*RSubscriber{sub1, sub2} {
		select {
		case u := <-sub.Updates():
			if u.Message.GocbRef != "GW1LD0/LLN0$GO$rgcb" || len(u.Message.Values) != 2 {
				t.Errorf("sub %d got %+v", i, u.Message)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("R-GOOSE not delivered to sub %d", i)
		}
	}
	if pub.Sent() != 2 {
		t.Errorf("sent = %d, want 2", pub.Sent())
	}
}
