// Package powergrid defines the bus/branch network model used by the power
// system simulation side of the cyber range.
//
// The paper generates a Pandapower model from IEC 61850 SSD files (§III-B).
// This package is the Go equivalent of that model: buses, lines, two-winding
// transformers, generators, static loads, shunts, external-grid (slack)
// connections and switchable circuit breakers. The element and result naming
// deliberately mirrors Pandapower (vm_pu, va_degree, p_mw, q_mvar, i_ka,
// loading_percent) so EXPERIMENTS.md reads like the paper's artefacts.
package powergrid

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Errors returned during model validation.
var (
	ErrUnknownBus   = errors.New("powergrid: unknown bus")
	ErrDuplicate    = errors.New("powergrid: duplicate element name")
	ErrNoSlack      = errors.New("powergrid: no external grid (slack) connection")
	ErrBadParameter = errors.New("powergrid: invalid element parameter")
)

// Bus is a node of the electrical network.
type Bus struct {
	Name string
	VnKV float64 // nominal voltage, kV
	Zone string  // substation / segment label (used in Fig 5 rendering)
}

// Line is an AC transmission or distribution line between two buses.
type Line struct {
	Name     string
	FromBus  string
	ToBus    string
	LengthKM float64
	// Per-km positive sequence parameters.
	ROhmPerKM float64
	XOhmPerKM float64
	CNFPerKM  float64 // shunt capacitance, nF/km
	MaxIKA    float64 // thermal limit used for loading_percent
	InService bool
}

// Transformer is a two-winding transformer between an HV and an LV bus.
type Transformer struct {
	Name       string
	HVBus      string
	LVBus      string
	SnMVA      float64 // rated apparent power
	VnHVKV     float64 // rated HV voltage
	VnLVKV     float64 // rated LV voltage
	VKPercent  float64 // short-circuit voltage, %
	VKRPercent float64 // real part of short-circuit voltage, %
	TapPos     int     // current tap position
	TapStepPC  float64 // voltage change per tap step, %
	InService  bool
}

// Generator is a PV-bus machine with voltage setpoint control.
type Generator struct {
	Name      string
	Bus       string
	PMW       float64 // active power injection
	VmPU      float64 // voltage setpoint
	MinQMVAr  float64
	MaxQMVAr  float64
	InService bool
}

// StaticGenerator is a PQ injection (PV panels, batteries discharging, etc.).
type StaticGenerator struct {
	Name      string
	Bus       string
	PMW       float64
	QMVAr     float64
	InService bool
}

// Load is a PQ consumption at a bus.
type Load struct {
	Name    string
	Bus     string
	PMW     float64
	QMVAr   float64
	Scaling float64 // multiplier applied by load profiles; 1.0 = nominal
	// ScalingSet records that Scaling was explicitly assigned. It is what
	// lets an explicit scaling of 0 (Pandapower semantics: scaling=0 ⇒ no
	// load) be told apart from a zero-value Load literal that never set the
	// field, which keeps the legacy default of 1.0. SetScaling maintains it.
	ScalingSet bool
	InService  bool
}

// SetScaling assigns the load-profile multiplier, marking it explicit so a
// zero survives as "no load" instead of falling back to the 1.0 default.
func (l *Load) SetScaling(s float64) {
	l.Scaling = s
	l.ScalingSet = true
}

// EffectiveScaling returns the multiplier the solver applies: Scaling when it
// was explicitly set or is non-zero, else the 1.0 default for untouched
// zero-value literals.
func (l *Load) EffectiveScaling() float64 {
	if l.ScalingSet || l.Scaling != 0 {
		return l.Scaling
	}
	return 1
}

// Shunt is a fixed shunt admittance (capacitor bank / reactor).
type Shunt struct {
	Name      string
	Bus       string
	PMW       float64 // at v = 1 pu
	QMVAr     float64 // at v = 1 pu; negative = capacitive injection
	InService bool
}

// ExternalGrid is the slack connection to the upstream network.
type ExternalGrid struct {
	Name  string
	Bus   string
	VmPU  float64
	VaDeg float64
}

// SwitchTarget identifies what a switch disconnects.
type SwitchTarget int

// Switch target kinds.
const (
	SwitchLine   SwitchTarget = iota + 1 // disconnects a line end
	SwitchTrafo                          // disconnects a transformer end
	SwitchBusBus                         // bus coupler between two buses
)

// Switch is a circuit breaker or disconnector. For SwitchLine/SwitchTrafo the
// switch sits between Bus and the named element; for SwitchBusBus, Element
// names the second bus.
type Switch struct {
	Name    string
	Bus     string
	Element string
	Kind    SwitchTarget
	Closed  bool
}

// Network is the complete electrical model of one (possibly multi-substation)
// power system.
type Network struct {
	Name      string
	BaseMVA   float64 // system base for per-unit conversion; default 100
	Buses     []Bus
	Lines     []Line
	Trafos    []Transformer
	Gens      []Generator
	SGens     []StaticGenerator
	Loads     []Load
	Shunts    []Shunt
	Externals []ExternalGrid
	Switches  []Switch
}

// New returns an empty network with the conventional 100 MVA base.
func New(name string) *Network {
	return &Network{Name: name, BaseMVA: 100}
}

// AddBus appends a bus and returns its name for chaining convenience.
func (n *Network) AddBus(name string, vnKV float64, zone string) string {
	n.Buses = append(n.Buses, Bus{Name: name, VnKV: vnKV, Zone: zone})
	return name
}

// BusIndex returns the position of the named bus, or -1.
func (n *Network) BusIndex(name string) int {
	for i := range n.Buses {
		if n.Buses[i].Name == name {
			return i
		}
	}
	return -1
}

// FindSwitch returns a pointer to the named switch, or nil.
func (n *Network) FindSwitch(name string) *Switch {
	for i := range n.Switches {
		if n.Switches[i].Name == name {
			return &n.Switches[i]
		}
	}
	return nil
}

// FindLoad returns a pointer to the named load, or nil.
func (n *Network) FindLoad(name string) *Load {
	for i := range n.Loads {
		if n.Loads[i].Name == name {
			return &n.Loads[i]
		}
	}
	return nil
}

// FindGen returns a pointer to the named generator, or nil.
func (n *Network) FindGen(name string) *Generator {
	for i := range n.Gens {
		if n.Gens[i].Name == name {
			return &n.Gens[i]
		}
	}
	return nil
}

// FindSGen returns a pointer to the named static generator, or nil.
func (n *Network) FindSGen(name string) *StaticGenerator {
	for i := range n.SGens {
		if n.SGens[i].Name == name {
			return &n.SGens[i]
		}
	}
	return nil
}

// FindLine returns a pointer to the named line, or nil.
func (n *Network) FindLine(name string) *Line {
	for i := range n.Lines {
		if n.Lines[i].Name == name {
			return &n.Lines[i]
		}
	}
	return nil
}

// ValidateSetpoints checks the per-solve electrical inputs that can legally
// change between solves of an unchanged topology: the system base and the
// generator / external-grid voltage targets. It is the part of Validate a
// topology-caching solver must re-run on every solve (these values sit
// outside its structural cache key).
func (n *Network) ValidateSetpoints() error {
	if n.BaseMVA <= 0 {
		return fmt.Errorf("%w: base MVA %v", ErrBadParameter, n.BaseMVA)
	}
	for i := range n.Gens {
		if g := &n.Gens[i]; g.VmPU <= 0 {
			return fmt.Errorf("%w: gen %q vm %v", ErrBadParameter, g.Name, g.VmPU)
		}
	}
	for i := range n.Externals {
		if e := &n.Externals[i]; e.VmPU <= 0 {
			return fmt.Errorf("%w: ext_grid %q vm %v", ErrBadParameter, e.Name, e.VmPU)
		}
	}
	return nil
}

// Validate checks referential integrity and parameter sanity.
func (n *Network) Validate() error {
	if err := n.ValidateSetpoints(); err != nil {
		return err
	}
	seen := make(map[string]string, len(n.Buses))
	busOK := make(map[string]bool, len(n.Buses))
	for _, b := range n.Buses {
		if busOK[b.Name] {
			return fmt.Errorf("%w: bus %q", ErrDuplicate, b.Name)
		}
		busOK[b.Name] = true
		if b.VnKV <= 0 {
			return fmt.Errorf("%w: bus %q vn %v kV", ErrBadParameter, b.Name, b.VnKV)
		}
	}
	check := func(kind, elem, bus string) error {
		key := kind + "/" + elem
		if prev, dup := seen[key]; dup {
			return fmt.Errorf("%w: %s %q (first at %s)", ErrDuplicate, kind, elem, prev)
		}
		seen[key] = elem
		if bus != "" && !busOK[bus] {
			return fmt.Errorf("%w: %s %q references bus %q", ErrUnknownBus, kind, elem, bus)
		}
		return nil
	}
	for _, l := range n.Lines {
		if err := check("line", l.Name, l.FromBus); err != nil {
			return err
		}
		if !busOK[l.ToBus] {
			return fmt.Errorf("%w: line %q references bus %q", ErrUnknownBus, l.Name, l.ToBus)
		}
		if l.LengthKM <= 0 || l.XOhmPerKM <= 0 {
			return fmt.Errorf("%w: line %q length/X", ErrBadParameter, l.Name)
		}
	}
	for _, tr := range n.Trafos {
		if err := check("trafo", tr.Name, tr.HVBus); err != nil {
			return err
		}
		if !busOK[tr.LVBus] {
			return fmt.Errorf("%w: trafo %q references bus %q", ErrUnknownBus, tr.Name, tr.LVBus)
		}
		if tr.SnMVA <= 0 || tr.VKPercent <= 0 {
			return fmt.Errorf("%w: trafo %q sn/vk", ErrBadParameter, tr.Name)
		}
	}
	for _, g := range n.Gens {
		if err := check("gen", g.Name, g.Bus); err != nil {
			return err
		}
	}
	for _, g := range n.SGens {
		if err := check("sgen", g.Name, g.Bus); err != nil {
			return err
		}
	}
	for _, l := range n.Loads {
		if err := check("load", l.Name, l.Bus); err != nil {
			return err
		}
	}
	for _, s := range n.Shunts {
		if err := check("shunt", s.Name, s.Bus); err != nil {
			return err
		}
	}
	for _, e := range n.Externals {
		if err := check("ext_grid", e.Name, e.Bus); err != nil {
			return err
		}
	}
	for _, sw := range n.Switches {
		if err := check("switch", sw.Name, sw.Bus); err != nil {
			return err
		}
		switch sw.Kind {
		case SwitchLine:
			if n.FindLine(sw.Element) == nil {
				return fmt.Errorf("%w: switch %q references line %q", ErrUnknownBus, sw.Name, sw.Element)
			}
		case SwitchBusBus:
			if !busOK[sw.Element] {
				return fmt.Errorf("%w: switch %q references bus %q", ErrUnknownBus, sw.Name, sw.Element)
			}
		case SwitchTrafo:
			found := false
			for _, tr := range n.Trafos {
				if tr.Name == sw.Element {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("%w: switch %q references trafo %q", ErrUnknownBus, sw.Name, sw.Element)
			}
		default:
			return fmt.Errorf("%w: switch %q kind %d", ErrBadParameter, sw.Name, sw.Kind)
		}
	}
	if len(n.Externals) == 0 && len(n.Gens) == 0 {
		return ErrNoSlack
	}
	return nil
}

// LineConnected reports whether the line is energised considering its own
// in-service flag and any open switches attached to either end.
func (n *Network) LineConnected(name string) bool {
	l := n.FindLine(name)
	if l == nil || !l.InService {
		return false
	}
	for _, sw := range n.Switches {
		if sw.Kind == SwitchLine && sw.Element == name && !sw.Closed {
			return false
		}
	}
	return true
}

// TrafoConnected reports whether the transformer is energised.
func (n *Network) TrafoConnected(name string) bool {
	var tr *Transformer
	for i := range n.Trafos {
		if n.Trafos[i].Name == name {
			tr = &n.Trafos[i]
			break
		}
	}
	if tr == nil || !tr.InService {
		return false
	}
	for _, sw := range n.Switches {
		if sw.Kind == SwitchTrafo && sw.Element == name && !sw.Closed {
			return false
		}
	}
	return true
}

// Summary renders a Pandapower-style one-line description of the model; the
// Fig 5 reproduction prints this for the EPIC network.
func (n *Network) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "network %q (base %.0f MVA)\n", n.Name, n.BaseMVA)
	fmt.Fprintf(&sb, "  buses: %d, lines: %d, trafos: %d, gens: %d, sgens: %d, loads: %d, shunts: %d, ext_grids: %d, switches: %d\n",
		len(n.Buses), len(n.Lines), len(n.Trafos), len(n.Gens), len(n.SGens), len(n.Loads), len(n.Shunts), len(n.Externals), len(n.Switches))
	zones := map[string][]string{}
	for _, b := range n.Buses {
		zones[b.Zone] = append(zones[b.Zone], fmt.Sprintf("%s(%.1fkV)", b.Name, b.VnKV))
	}
	names := make([]string, 0, len(zones))
	for z := range zones {
		names = append(names, z)
	}
	sort.Strings(names)
	for _, z := range names {
		fmt.Fprintf(&sb, "  zone %-14s %s\n", z+":", strings.Join(zones[z], " "))
	}
	for _, l := range n.Lines {
		state := "in-service"
		if !n.LineConnected(l.Name) {
			state = "OPEN"
		}
		fmt.Fprintf(&sb, "  line  %-12s %s -- %s (%.2f km, %s)\n", l.Name, l.FromBus, l.ToBus, l.LengthKM, state)
	}
	for _, tr := range n.Trafos {
		fmt.Fprintf(&sb, "  trafo %-12s %s -> %s (%.1f MVA, %.1f/%.1f kV)\n", tr.Name, tr.HVBus, tr.LVBus, tr.SnMVA, tr.VnHVKV, tr.VnLVKV)
	}
	return sb.String()
}

// Clone returns a deep copy, so scenario runs can mutate freely.
func (n *Network) Clone() *Network {
	c := *n
	c.Buses = append([]Bus(nil), n.Buses...)
	c.Lines = append([]Line(nil), n.Lines...)
	c.Trafos = append([]Transformer(nil), n.Trafos...)
	c.Gens = append([]Generator(nil), n.Gens...)
	c.SGens = append([]StaticGenerator(nil), n.SGens...)
	c.Loads = append([]Load(nil), n.Loads...)
	c.Shunts = append([]Shunt(nil), n.Shunts...)
	c.Externals = append([]ExternalGrid(nil), n.Externals...)
	c.Switches = append([]Switch(nil), n.Switches...)
	return &c
}
