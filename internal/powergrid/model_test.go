package powergrid

import (
	"errors"
	"strings"
	"testing"
)

func valid() *Network {
	n := New("t")
	n.AddBus("A", 110, "s1")
	n.AddBus("B", 110, "s1")
	n.AddBus("C", 20, "s1")
	n.Externals = append(n.Externals, ExternalGrid{Name: "g", Bus: "A", VmPU: 1})
	n.Lines = append(n.Lines, Line{Name: "L1", FromBus: "A", ToBus: "B", LengthKM: 1, ROhmPerKM: 0.1, XOhmPerKM: 0.3, InService: true})
	n.Trafos = append(n.Trafos, Transformer{Name: "T1", HVBus: "B", LVBus: "C", SnMVA: 25, VnHVKV: 110, VnLVKV: 20, VKPercent: 10, VKRPercent: 0.4, InService: true})
	n.Loads = append(n.Loads, Load{Name: "ld", Bus: "C", PMW: 5, Scaling: 1, InService: true})
	n.Gens = append(n.Gens, Generator{Name: "gen", Bus: "B", PMW: 2, VmPU: 1, InService: true})
	n.SGens = append(n.SGens, StaticGenerator{Name: "pv", Bus: "C", PMW: 1, InService: true})
	n.Shunts = append(n.Shunts, Shunt{Name: "sh", Bus: "B", QMVAr: -2, InService: true})
	n.Switches = append(n.Switches,
		Switch{Name: "cb1", Bus: "A", Element: "L1", Kind: SwitchLine, Closed: true},
		Switch{Name: "cbT", Bus: "B", Element: "T1", Kind: SwitchTrafo, Closed: true},
		Switch{Name: "cpl", Bus: "A", Element: "B", Kind: SwitchBusBus, Closed: false},
	)
	return n
}

func TestValidateOK(t *testing.T) {
	if err := valid().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Network)
		wantErr error
	}{
		{"dup bus", func(n *Network) { n.AddBus("A", 110, "s1") }, ErrDuplicate},
		{"bad bus voltage", func(n *Network) { n.Buses[0].VnKV = -5 }, ErrBadParameter},
		{"line unknown from", func(n *Network) { n.Lines[0].FromBus = "zz" }, ErrUnknownBus},
		{"line unknown to", func(n *Network) { n.Lines[0].ToBus = "zz" }, ErrUnknownBus},
		{"line zero X", func(n *Network) { n.Lines[0].XOhmPerKM = 0 }, ErrBadParameter},
		{"trafo unknown LV", func(n *Network) { n.Trafos[0].LVBus = "zz" }, ErrUnknownBus},
		{"trafo zero vk", func(n *Network) { n.Trafos[0].VKPercent = 0 }, ErrBadParameter},
		{"gen zero vm", func(n *Network) { n.Gens[0].VmPU = 0 }, ErrBadParameter},
		{"gen unknown bus", func(n *Network) { n.Gens[0].Bus = "zz" }, ErrUnknownBus},
		{"ext zero vm", func(n *Network) { n.Externals[0].VmPU = 0 }, ErrBadParameter},
		{"switch to missing line", func(n *Network) { n.Switches[0].Element = "zz" }, ErrUnknownBus},
		{"switch to missing trafo", func(n *Network) { n.Switches[1].Element = "zz" }, ErrUnknownBus},
		{"switch to missing bus", func(n *Network) { n.Switches[2].Element = "zz" }, ErrUnknownBus},
		{"switch bad kind", func(n *Network) { n.Switches[0].Kind = 0 }, ErrBadParameter},
		{"dup switch", func(n *Network) { n.Switches = append(n.Switches, n.Switches[0]) }, ErrDuplicate},
		{"bad base", func(n *Network) { n.BaseMVA = 0 }, ErrBadParameter},
		{"no source", func(n *Network) { n.Externals = nil; n.Gens = nil }, ErrNoSlack},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			n := valid()
			tt.mutate(n)
			err := n.Validate()
			if !errors.Is(err, tt.wantErr) {
				t.Errorf("Validate() = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestConnectivityHelpers(t *testing.T) {
	n := valid()
	if !n.LineConnected("L1") {
		t.Error("L1 should be connected")
	}
	n.FindSwitch("cb1").Closed = false
	if n.LineConnected("L1") {
		t.Error("L1 connected with open switch")
	}
	n.FindSwitch("cb1").Closed = true
	n.Lines[0].InService = false
	if n.LineConnected("L1") {
		t.Error("L1 connected while out of service")
	}
	if !n.TrafoConnected("T1") {
		t.Error("T1 should be connected")
	}
	n.FindSwitch("cbT").Closed = false
	if n.TrafoConnected("T1") {
		t.Error("T1 connected with open switch")
	}
	if n.LineConnected("missing") || n.TrafoConnected("missing") {
		t.Error("missing elements report connected")
	}
}

func TestFinders(t *testing.T) {
	n := valid()
	if n.FindLoad("ld") == nil || n.FindGen("gen") == nil || n.FindSGen("pv") == nil ||
		n.FindLine("L1") == nil || n.FindSwitch("cb1") == nil {
		t.Error("finder returned nil for existing element")
	}
	if n.FindLoad("x") != nil || n.FindGen("x") != nil || n.FindSGen("x") != nil ||
		n.FindLine("x") != nil || n.FindSwitch("x") != nil {
		t.Error("finder returned non-nil for missing element")
	}
	if n.BusIndex("B") != 1 || n.BusIndex("zz") != -1 {
		t.Error("BusIndex wrong")
	}
}

func TestCloneIsDeep(t *testing.T) {
	n := valid()
	c := n.Clone()
	c.Loads[0].PMW = 999
	c.FindSwitch("cb1").Closed = false
	c.AddBus("X", 10, "zz")
	if n.Loads[0].PMW == 999 {
		t.Error("clone shares loads")
	}
	if !n.FindSwitch("cb1").Closed {
		t.Error("clone shares switches")
	}
	if n.BusIndex("X") != -1 {
		t.Error("clone shares buses")
	}
}

func TestSummaryContents(t *testing.T) {
	s := valid().Summary()
	for _, want := range []string{"buses: 3", "lines: 1", "trafos: 1", "zone s1", "L1", "T1", "110.0/20.0 kV"} {
		if !strings.Contains(s, want) {
			t.Errorf("Summary missing %q in:\n%s", want, s)
		}
	}
	// Open line shows as OPEN.
	n := valid()
	n.FindSwitch("cb1").Closed = false
	if !strings.Contains(n.Summary(), "OPEN") {
		t.Error("Summary does not mark open line")
	}
}
