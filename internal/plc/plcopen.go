// Package plc implements the virtual PLC of the cyber range — the
// OpenPLC61850 substitute (§III-B).
//
// "OpenPLC61850 supports Modbus communication protocol (for interacting with
// SCADA) and IEC 61850 MMS protocol towards IEDs. OpenPLC61850 requires a set
// of ICD files corresponding to the IEDs that it interacts with, as well as
// an IEC 61131-3 PLCopen XML file that contains control logic."
//
// The runtime executes a classic scan cycle: read inputs (MMS reads from
// IEDs + Modbus command intake from SCADA), execute the Structured Text
// program (internal/st), write outputs (MMS control writes + Modbus register
// exposure). Control logic is loaded from IEC 61131-3 PLCopen XML.
package plc

import (
	"encoding/xml"
	"errors"
	"fmt"
	"strings"
)

// ErrPLCopen is returned for malformed PLCopen XML documents.
var ErrPLCopen = errors.New("plc: invalid PLCopen XML")

// PLCopen XML (IEC 61131-3 TC6) subset: project → types → pous → pou with an
// ST body. Variables may be declared in the <interface> section or directly
// in VAR blocks inside the ST source; both are supported.

// Project is the root element.
type Project struct {
	XMLName    xml.Name   `xml:"project"`
	FileHeader FileHeader `xml:"fileHeader"`
	Types      Types      `xml:"types"`
}

// FileHeader identifies the creating tool.
type FileHeader struct {
	CompanyName string `xml:"companyName,attr"`
	ProductName string `xml:"productName,attr"`
}

// Types wraps the POU list.
type Types struct {
	Pous []Pou `xml:"pous>pou"`
}

// Pou is one program organisation unit.
type Pou struct {
	Name      string        `xml:"name,attr"`
	PouType   string        `xml:"pouType,attr"`
	Interface *PouInterface `xml:"interface"`
	Body      PouBody       `xml:"body"`
}

// PouInterface declares variables outside the ST text.
type PouInterface struct {
	LocalVars  []VarList `xml:"localVars"`
	InputVars  []VarList `xml:"inputVars"`
	OutputVars []VarList `xml:"outputVars"`
}

// VarList is one variable group.
type VarList struct {
	Variables []Variable `xml:"variable"`
}

// Variable is one declared variable with its type element.
type Variable struct {
	Name         string  `xml:"name,attr"`
	Type         VarType `xml:"type"`
	InitialValue *struct {
		SimpleValue struct {
			Value string `xml:"value,attr"`
		} `xml:"simpleValue"`
	} `xml:"initialValue"`
}

// VarType holds the type as a child element name (<BOOL/>, <INT/>, ...).
type VarType struct {
	Inner string `xml:",innerxml"`
}

// Name extracts the element name of the type.
func (t VarType) Name() string {
	s := strings.TrimSpace(t.Inner)
	s = strings.TrimPrefix(s, "<")
	for i, r := range s {
		if r == '/' || r == '>' || r == ' ' {
			return strings.ToUpper(s[:i])
		}
	}
	return strings.ToUpper(s)
}

// PouBody carries the ST source.
type PouBody struct {
	ST *STBody `xml:"ST"`
}

// STBody holds the source text, directly or wrapped in an xhtml element.
type STBody struct {
	XHTML *struct {
		Text string `xml:",chardata"`
	} `xml:"xhtml"`
	Text string `xml:",chardata"`
}

// Source returns the ST text.
func (b *STBody) Source() string {
	if b.XHTML != nil && strings.TrimSpace(b.XHTML.Text) != "" {
		return b.XHTML.Text
	}
	return b.Text
}

// ParsePLCopen extracts the ST source of the first program POU. Interface
// variables are converted into VAR blocks prepended to the source so the ST
// compiler sees a complete program.
func ParsePLCopen(data []byte) (name, source string, err error) {
	var proj Project
	if err := xml.Unmarshal(data, &proj); err != nil {
		return "", "", fmt.Errorf("%w: %v", ErrPLCopen, err)
	}
	if proj.XMLName.Local != "project" {
		return "", "", fmt.Errorf("%w: root element %q", ErrPLCopen, proj.XMLName.Local)
	}
	for _, pou := range proj.Types.Pous {
		if pou.PouType != "" && pou.PouType != "program" {
			continue
		}
		if pou.Body.ST == nil {
			return "", "", fmt.Errorf("%w: POU %q has no ST body", ErrPLCopen, pou.Name)
		}
		src := pou.Body.ST.Source()
		var sb strings.Builder
		if pou.Interface != nil {
			writeVarBlock(&sb, "VAR_INPUT", pou.Interface.InputVars)
			writeVarBlock(&sb, "VAR_OUTPUT", pou.Interface.OutputVars)
			writeVarBlock(&sb, "VAR", pou.Interface.LocalVars)
		}
		sb.WriteString(src)
		return pou.Name, sb.String(), nil
	}
	return "", "", fmt.Errorf("%w: no program POU", ErrPLCopen)
}

func writeVarBlock(sb *strings.Builder, keyword string, lists []VarList) {
	total := 0
	for _, l := range lists {
		total += len(l.Variables)
	}
	if total == 0 {
		return
	}
	sb.WriteString(keyword)
	sb.WriteString("\n")
	for _, l := range lists {
		for _, v := range l.Variables {
			sb.WriteString("  ")
			sb.WriteString(v.Name)
			sb.WriteString(" : ")
			sb.WriteString(v.Type.Name())
			if v.InitialValue != nil && v.InitialValue.SimpleValue.Value != "" {
				sb.WriteString(" := ")
				sb.WriteString(v.InitialValue.SimpleValue.Value)
			}
			sb.WriteString(";\n")
		}
	}
	sb.WriteString("END_VAR\n")
}

// BuildPLCopen wraps ST source into a PLCopen XML document (used by the EPIC
// model generator to emit the artefacts a real OpenPLC deployment consumes).
func BuildPLCopen(pouName, source string) ([]byte, error) {
	proj := struct {
		XMLName    xml.Name `xml:"project"`
		XMLNS      string   `xml:"xmlns,attr"`
		FileHeader struct {
			CompanyName string `xml:"companyName,attr"`
			ProductName string `xml:"productName,attr"`
		} `xml:"fileHeader"`
		Pou struct {
			Name    string `xml:"name,attr"`
			PouType string `xml:"pouType,attr"`
			Body    struct {
				ST struct {
					Text string `xml:",cdata"`
				} `xml:"ST"`
			} `xml:"body"`
		} `xml:"types>pous>pou"`
	}{}
	proj.XMLNS = "http://www.plcopen.org/xml/tc6_0201"
	proj.FileHeader.CompanyName = "SG-ML"
	proj.FileHeader.ProductName = "sgml-processor"
	proj.Pou.Name = pouName
	proj.Pou.PouType = "program"
	proj.Pou.Body.ST.Text = source
	body, err := xml.MarshalIndent(proj, "", "  ")
	if err != nil {
		return nil, err
	}
	return append([]byte(xml.Header), body...), nil
}
