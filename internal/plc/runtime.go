package plc

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/mms"
	"repro/internal/modbus"
	"repro/internal/netem"
	"repro/internal/st"
)

// Runtime errors.
var (
	ErrNotStarted = errors.New("plc: runtime not started")
	ErrUnknownVar = errors.New("plc: binding references unknown ST variable")
	ErrUnknownIED = errors.New("plc: binding references unconnected IED")
	ErrAlreadyRun = errors.New("plc: runtime already started")
)

// MMSBinding couples an ST variable to an IED object over MMS.
type MMSBinding struct {
	Var   string // ST variable name (case-insensitive)
	IED   string // connection name registered via ConnectIED
	Ref   mms.ObjectReference
	Scale float64 // applied on read (value*Scale); inverse on write; 0 = 1
}

// ModbusKind selects which Modbus table a variable is exposed in.
type ModbusKind int

// Modbus exposure kinds.
const (
	ExposeInputReg ModbusKind = iota + 1 // analog measurement -> input register
	ExposeDiscrete                       // status bit -> discrete input
	ExposeHolding                        // analog setpoint <-> holding register
)

// ModbusBinding exposes an ST variable to SCADA.
type ModbusBinding struct {
	Var   string
	Kind  ModbusKind
	Addr  uint16
	Scale float64 // register = value * Scale (0 = 1)
}

// CommandBinding maps a SCADA coil write onto an ST variable.
type CommandBinding struct {
	Coil uint16
	Var  string
}

// Config assembles a PLC runtime.
type Config struct {
	Name     string
	ScanTime time.Duration // default 100 ms
	// Modbus table sizes; defaults 64/64/128/128.
	Coils, Discrete, Holding, Input int
	ModbusPort                      uint16

	Inputs   []MMSBinding     // IED measurement -> ST input var (each scan)
	Outputs  []MMSBinding     // ST output var -> IED control write (on change)
	Expose   []ModbusBinding  // ST var -> Modbus table (each scan)
	Commands []CommandBinding // SCADA coil -> ST var
}

// PLC is a running virtual PLC.
type PLC struct {
	cfg  Config
	host *netem.Host
	prog *st.Program
	env  *st.Env
	mb   *modbus.Server

	mu        sync.Mutex
	mbServed  bool
	ieds      map[string]*iedConn
	lastWrite map[string]st.Value // per output binding key, to write on change
	pending   []pendingCmd
	started   bool
	scans     uint64
	scanNS    int64
	readErrs  uint64
	writeErrs uint64
	cancel    context.CancelFunc
	done      chan struct{}
}

type pendingCmd struct {
	variable string
	value    st.Value
}

// iedConn is a southbound association with reconnection state. OpenPLC
// re-establishes lost IED associations; so do we, with a backoff so a dead
// IED cannot stall every scan on dial timeouts.
type iedConn struct {
	addr     netem.IPv4
	port     uint16
	cli      *mms.Client
	fails    int
	lastDial time.Time
}

// reconnectBackoff bounds southbound redial attempts.
const reconnectBackoff = 2 * time.Second

// connFailThreshold is the number of consecutive I/O errors before the
// association is torn down and redialled.
const connFailThreshold = 2

// New parses the ST source and builds the runtime on a host.
func New(host *netem.Host, cfg Config, stSource string) (*PLC, error) {
	if cfg.ScanTime <= 0 {
		cfg.ScanTime = 100 * time.Millisecond
	}
	if cfg.Coils == 0 {
		cfg.Coils = 64
	}
	if cfg.Discrete == 0 {
		cfg.Discrete = 64
	}
	if cfg.Holding == 0 {
		cfg.Holding = 128
	}
	if cfg.Input == 0 {
		cfg.Input = 128
	}
	prog, err := st.Parse(stSource)
	if err != nil {
		return nil, fmt.Errorf("plc: control logic: %w", err)
	}
	env, err := st.NewEnv(prog)
	if err != nil {
		return nil, fmt.Errorf("plc: control logic: %w", err)
	}
	p := &PLC{
		cfg:       cfg,
		host:      host,
		prog:      prog,
		env:       env,
		mb:        modbus.NewServer(cfg.Coils, cfg.Discrete, cfg.Holding, cfg.Input),
		ieds:      make(map[string]*iedConn),
		lastWrite: make(map[string]st.Value),
	}
	// Validate bindings against declared variables.
	for _, b := range cfg.Inputs {
		if prog.FindVar(upper(b.Var)) == nil {
			return nil, fmt.Errorf("%w: input %q", ErrUnknownVar, b.Var)
		}
	}
	for _, b := range cfg.Outputs {
		if prog.FindVar(upper(b.Var)) == nil {
			return nil, fmt.Errorf("%w: output %q", ErrUnknownVar, b.Var)
		}
	}
	for _, b := range cfg.Expose {
		if prog.FindVar(upper(b.Var)) == nil {
			return nil, fmt.Errorf("%w: expose %q", ErrUnknownVar, b.Var)
		}
	}
	for _, b := range cfg.Commands {
		if prog.FindVar(upper(b.Var)) == nil {
			return nil, fmt.Errorf("%w: command %q", ErrUnknownVar, b.Var)
		}
	}
	// SCADA coil writes arrive asynchronously; queue them for the next scan.
	cmds := make(map[uint16]string, len(cfg.Commands))
	for _, b := range cfg.Commands {
		cmds[b.Coil] = upper(b.Var)
	}
	p.mb.OnCoilWrite(func(addr uint16, v bool) {
		name, ok := cmds[addr]
		if !ok {
			return
		}
		p.mu.Lock()
		p.pending = append(p.pending, pendingCmd{variable: name, value: st.BoolVal(v)})
		p.mu.Unlock()
	})
	return p, nil
}

func upper(s string) string {
	out := []rune(s)
	for i, r := range out {
		if r >= 'a' && r <= 'z' {
			out[i] = r - 'a' + 'A'
		}
	}
	return string(out)
}

// ConnectIED registers an MMS association to a southbound IED. If the
// association later breaks, the scan loop redials it with a backoff.
func (p *PLC) ConnectIED(name string, ip netem.IPv4, port uint16) error {
	cli, err := mms.Dial(p.host, ip, port, mms.DialOptions{Vendor: "openplc61850-sgml", Timeout: time.Second})
	if err != nil {
		return fmt.Errorf("plc: connect IED %q: %w", name, err)
	}
	p.mu.Lock()
	p.ieds[name] = &iedConn{addr: ip, port: port, cli: cli, lastDial: time.Now()}
	p.mu.Unlock()
	return nil
}

// noteIEDError records a failed exchange; past the threshold the association
// is closed so the next scan redials.
func (p *PLC) noteIEDError(name string) {
	p.mu.Lock()
	c := p.ieds[name]
	var toClose *mms.Client
	if c != nil {
		c.fails++
		if c.fails >= connFailThreshold && c.cli != nil {
			toClose = c.cli
			c.cli = nil
		}
	}
	p.mu.Unlock()
	if toClose != nil {
		_ = toClose.Close()
	}
}

func (p *PLC) noteIEDSuccess(name string) {
	p.mu.Lock()
	if c := p.ieds[name]; c != nil {
		c.fails = 0
	}
	p.mu.Unlock()
}

// Start serves Modbus northbound and begins the scan loop.
func (p *PLC) Start(ctx context.Context) error {
	p.mu.Lock()
	if p.started {
		p.mu.Unlock()
		return ErrAlreadyRun
	}
	p.started = true
	p.mu.Unlock()
	if err := p.ensureModbus(); err != nil {
		return err
	}
	runCtx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	p.mu.Lock()
	p.cancel = cancel
	p.done = done
	p.mu.Unlock()
	go func() {
		defer close(done)
		ticker := time.NewTicker(p.cfg.ScanTime)
		defer ticker.Stop()
		for {
			select {
			case <-runCtx.Done():
				return
			case <-ticker.C:
				_ = p.Scan(time.Now())
			}
		}
	}()
	return nil
}

// Stop halts the scan loop and tears down connections.
func (p *PLC) Stop() {
	p.mu.Lock()
	cancel, done := p.cancel, p.done
	p.cancel = nil
	clients := make([]*mms.Client, 0, len(p.ieds))
	for _, c := range p.ieds {
		if c.cli != nil {
			clients = append(clients, c.cli)
		}
	}
	p.mu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
	p.mb.Close()
	for _, c := range clients {
		_ = c.Close()
	}
}

// ServeModbusOnly starts the northbound server without the scan loop
// (step-driven tests and benches call Scan explicitly).
func (p *PLC) ServeModbusOnly() error { return p.ensureModbus() }

// ensureModbus starts the northbound server exactly once.
func (p *PLC) ensureModbus() error {
	p.mu.Lock()
	if p.mbServed {
		p.mu.Unlock()
		return nil
	}
	p.mbServed = true
	p.mu.Unlock()
	return p.mb.Serve(p.host, p.cfg.ModbusPort)
}

// Modbus returns the northbound server (tests assert on its tables).
func (p *PLC) Modbus() *modbus.Server { return p.mb }

// Config returns a copy of the runtime's defaulted configuration. Callers use
// it to validate northbound access before dialling: table sizes bound the
// addressable coil/register space, ModbusPort is where the server listens.
func (p *PLC) Config() Config { return p.cfg }

// Host returns the fabric host the PLC runs on (its northbound address).
func (p *PLC) Host() *netem.Host { return p.host }

// Env returns the ST environment (tests inspect variables).
func (p *PLC) Env() *st.Env { return p.env }

// Bindings returns the distinct IED names referenced by the PLC's MMS
// input/output bindings (the set of southbound associations it needs).
func (p *PLC) Bindings() []string {
	seen := map[string]bool{}
	var out []string
	for _, b := range p.cfg.Inputs {
		if !seen[b.IED] {
			seen[b.IED] = true
			out = append(out, b.IED)
		}
	}
	for _, b := range p.cfg.Outputs {
		if !seen[b.IED] {
			seen[b.IED] = true
			out = append(out, b.IED)
		}
	}
	return out
}

// Stats reports completed scans, mean scan time and I/O error counts.
func (p *PLC) Stats() (scans uint64, meanScan time.Duration, readErrs, writeErrs uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.scans > 0 {
		meanScan = time.Duration(p.scanNS / int64(p.scans))
	}
	return p.scans, meanScan, p.readErrs, p.writeErrs
}

// Scan executes one full cycle: inputs -> logic -> outputs.
func (p *PLC) Scan(now time.Time) error {
	start := time.Now()
	// 1. Apply queued SCADA commands.
	p.mu.Lock()
	pending := p.pending
	p.pending = nil
	p.mu.Unlock()
	for _, cmd := range pending {
		_ = p.env.Set(cmd.variable, cmd.value)
	}

	// 2. Read southbound inputs over MMS.
	for _, b := range p.cfg.Inputs {
		cli := p.client(b.IED)
		if cli == nil {
			p.bumpReadErr()
			continue
		}
		v, err := cli.Read(b.Ref)
		if err != nil {
			p.bumpReadErr()
			p.noteIEDError(b.IED)
			continue
		}
		p.noteIEDSuccess(b.IED)
		_ = p.env.Set(upper(b.Var), mmsToST(v, scaleOf(b.Scale)))
	}

	// 3. Execute logic.
	if err := p.env.Step(now); err != nil {
		return fmt.Errorf("plc: scan: %w", err)
	}

	// 4. Write southbound outputs (on change).
	for _, b := range p.cfg.Outputs {
		val, ok := p.env.Get(upper(b.Var))
		if !ok {
			continue
		}
		key := b.IED + "/" + string(b.Ref)
		p.mu.Lock()
		last, seen := p.lastWrite[key]
		p.mu.Unlock()
		if seen && sameValue(last, val) {
			continue
		}
		cli := p.client(b.IED)
		if cli == nil {
			p.bumpWriteErr()
			continue
		}
		if err := cli.Write(b.Ref, stToMMS(val, scaleOf(b.Scale))); err != nil {
			p.bumpWriteErr()
			p.noteIEDError(b.IED)
			continue
		}
		p.noteIEDSuccess(b.IED)
		p.mu.Lock()
		p.lastWrite[key] = val
		p.mu.Unlock()
	}

	// 5. Expose variables northbound.
	for _, b := range p.cfg.Expose {
		val, ok := p.env.Get(upper(b.Var))
		if !ok {
			continue
		}
		scale := scaleOf(b.Scale)
		switch b.Kind {
		case ExposeInputReg:
			p.mb.SetInput(int(b.Addr), toRegister(val.AsReal()*scale))
		case ExposeDiscrete:
			p.mb.SetDiscrete(int(b.Addr), val.AsBool())
		case ExposeHolding:
			p.mb.SetHolding(int(b.Addr), toRegister(val.AsReal()*scale))
		}
	}

	p.mu.Lock()
	p.scans++
	p.scanNS += time.Since(start).Nanoseconds()
	p.mu.Unlock()
	return nil
}

// client returns a live association, redialling (with backoff) when the
// previous one broke.
func (p *PLC) client(name string) *mms.Client {
	p.mu.Lock()
	c := p.ieds[name]
	if c == nil {
		p.mu.Unlock()
		return nil
	}
	if c.cli != nil {
		cli := c.cli
		p.mu.Unlock()
		return cli
	}
	if time.Since(c.lastDial) < reconnectBackoff {
		p.mu.Unlock()
		return nil
	}
	c.lastDial = time.Now()
	addr, port := c.addr, c.port
	p.mu.Unlock()
	cli, err := mms.Dial(p.host, addr, port, mms.DialOptions{Vendor: "openplc61850-sgml", Timeout: time.Second})
	if err != nil {
		return nil
	}
	p.mu.Lock()
	c.cli = cli
	c.fails = 0
	p.mu.Unlock()
	return cli
}

func (p *PLC) bumpReadErr() {
	p.mu.Lock()
	p.readErrs++
	p.mu.Unlock()
}

func (p *PLC) bumpWriteErr() {
	p.mu.Lock()
	p.writeErrs++
	p.mu.Unlock()
}

func scaleOf(s float64) float64 {
	if s == 0 {
		return 1
	}
	return s
}

func toRegister(f float64) uint16 {
	if f < 0 {
		f = 0
	}
	if f > math.MaxUint16 {
		f = math.MaxUint16
	}
	return uint16(math.Round(f))
}

func sameValue(a, b st.Value) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case st.KindBool:
		return a.Bool == b.Bool
	case st.KindInt:
		return a.Int == b.Int
	case st.KindReal:
		return a.Real == b.Real
	case st.KindTime:
		return a.Dur == b.Dur
	}
	return false
}

func mmsToST(v mms.Value, scale float64) st.Value {
	switch v.Kind {
	case mms.KindBool:
		return st.BoolVal(v.Bool)
	case mms.KindInt:
		if scale != 1 {
			return st.RealVal(float64(v.Int) * scale)
		}
		return st.IntVal(v.Int)
	case mms.KindUnsigned:
		return st.IntVal(int64(v.Uint))
	case mms.KindFloat:
		return st.RealVal(v.Float * scale)
	default:
		return st.IntVal(0)
	}
}

func stToMMS(v st.Value, scale float64) mms.Value {
	switch v.Kind {
	case st.KindBool:
		return mms.NewBool(v.Bool)
	case st.KindInt:
		return mms.NewInt(v.Int)
	case st.KindReal:
		return mms.NewFloat(v.Real / scale)
	case st.KindTime:
		return mms.NewInt(int64(v.Dur / time.Millisecond))
	default:
		return mms.NewInt(0)
	}
}
