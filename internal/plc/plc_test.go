package plc

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/mms"
	"repro/internal/modbus"
	"repro/internal/netem"
)

const samplePLCopen = `<?xml version="1.0" encoding="utf-8"?>
<project xmlns="http://www.plcopen.org/xml/tc6_0201">
  <fileHeader companyName="SG-ML" productName="test"/>
  <types>
    <pous>
      <pou name="Main" pouType="program">
        <interface>
          <inputVars>
            <variable name="Voltage"><type><REAL/></type></variable>
          </inputVars>
          <outputVars>
            <variable name="TripCmd"><type><BOOL/></type></variable>
          </outputVars>
          <localVars>
            <variable name="Threshold"><type><REAL/></type><initialValue><simpleValue value="1.10"/></initialValue></variable>
          </localVars>
        </interface>
        <body>
          <ST>
            <xhtml>
TripCmd := Voltage &gt; Threshold;
            </xhtml>
          </ST>
        </body>
      </pou>
    </pous>
  </types>
</project>`

func TestParsePLCopen(t *testing.T) {
	name, src, err := ParsePLCopen([]byte(samplePLCopen))
	if err != nil {
		t.Fatal(err)
	}
	if name != "Main" {
		t.Errorf("name = %q", name)
	}
	for _, want := range []string{"VAR_INPUT", "Voltage : REAL", "TripCmd : BOOL", "Threshold : REAL := 1.10", "TripCmd := Voltage > Threshold"} {
		if !strings.Contains(src, want) {
			t.Errorf("source missing %q:\n%s", want, src)
		}
	}
}

func TestParsePLCopenErrors(t *testing.T) {
	cases := []string{
		"not xml",
		"<other/>",
		`<project><types><pous><pou name="x" pouType="program"><body/></pou></pous></types></project>`,
		`<project><types><pous/></types></project>`,
	}
	for i, c := range cases {
		if _, _, err := ParsePLCopen([]byte(c)); !errors.Is(err, ErrPLCopen) {
			t.Errorf("case %d err = %v", i, err)
		}
	}
}

func TestBuildPLCopenRoundTrip(t *testing.T) {
	src := "VAR x : INT; END_VAR\nx := x + 1;"
	data, err := BuildPLCopen("CPLC", src)
	if err != nil {
		t.Fatal(err)
	}
	name, got, err := ParsePLCopen(data)
	if err != nil {
		t.Fatal(err)
	}
	if name != "CPLC" || !strings.Contains(got, "x := x + 1;") {
		t.Errorf("round trip: name=%q src=%q", name, got)
	}
}

// rig builds a LAN with an IED host (MMS server), a PLC host and a SCADA host.
type rig struct {
	net   *netem.Network
	ied   *netem.Host
	plc   *netem.Host
	scada *netem.Host
	srv   *mms.Server
}

func newRig(t *testing.T) *rig {
	t.Helper()
	n := netem.NewNetwork()
	if _, err := netem.NewSwitch(n, "sw", 4); err != nil {
		t.Fatal(err)
	}
	mk := func(name string, last byte) *netem.Host {
		h, err := netem.NewHost(n, name, netem.MAC{2, 0, 0, 0, 0, last}, netem.IPv4{10, 0, 0, last})
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	ied := mk("ied1", 1)
	plcHost := mk("cplc", 2)
	scada := mk("scada", 3)
	for i, h := range []*netem.Host{ied, plcHost, scada} {
		if _, err := n.Connect(h.Name(), 0, "sw", i, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)

	srv := mms.NewServer("SGML", "vIED")
	srv.Define("LD0/MMXU1.PhV.phsA", mms.NewFloat(1.0))
	srv.OnWrite("LD0/XCBR1.Pos.Oper", mms.NewBool(true), func(_ mms.ObjectReference, _ mms.Value) error { return nil })
	if err := srv.Serve(ied, 0); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return &rig{net: n, ied: ied, plc: plcHost, scada: scada, srv: srv}
}

const tripLogic = `
VAR_INPUT voltage : REAL; END_VAR
VAR_OUTPUT breakerClose : BOOL := TRUE; END_VAR
VAR manualOpen : BOOL; threshold : REAL := 1.10; END_VAR
breakerClose := voltage <= threshold AND NOT manualOpen;
`

func newPLC(t *testing.T, r *rig) *PLC {
	t.Helper()
	p, err := New(r.plc, Config{
		Name: "CPLC",
		Inputs: []MMSBinding{
			{Var: "voltage", IED: "ied1", Ref: "LD0/MMXU1.PhV.phsA"},
		},
		Outputs: []MMSBinding{
			{Var: "breakerClose", IED: "ied1", Ref: "LD0/XCBR1.Pos.Oper"},
		},
		Expose: []ModbusBinding{
			{Var: "voltage", Kind: ExposeInputReg, Addr: 0, Scale: 1000},
			{Var: "breakerClose", Kind: ExposeDiscrete, Addr: 0},
		},
		Commands: []CommandBinding{{Coil: 0, Var: "manualOpen"}},
	}, tripLogic)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ConnectIED("ied1", r.ied.IP(), 0); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestScanReadsExecutesWrites(t *testing.T) {
	r := newRig(t)
	p := newPLC(t, r)
	defer p.Stop()
	if err := p.ServeModbusOnly(); err != nil {
		t.Fatal(err)
	}
	if err := p.Scan(time.Now()); err != nil {
		t.Fatal(err)
	}
	// Normal voltage: logic keeps breaker closed; exposed northbound.
	if got := p.Modbus().Holding(0); got != 0 {
		t.Errorf("holding = %d", got)
	}
	v, _ := p.Env().Get("VOLTAGE")
	if v.AsReal() != 1.0 {
		t.Errorf("voltage var = %v", v)
	}
	// Raise the measured voltage beyond threshold: the scan must trip.
	r.srv.Update("LD0/MMXU1.PhV.phsA", mms.NewFloat(1.25))
	if err := p.Scan(time.Now()); err != nil {
		t.Fatal(err)
	}
	if got, _ := r.srv.Get("LD0/XCBR1.Pos.Oper"); got.Bool {
		t.Error("IED did not receive breaker-open write")
	}
	scans, mean, readErrs, writeErrs := p.Stats()
	if scans != 2 || mean <= 0 || readErrs != 0 || writeErrs != 0 {
		t.Errorf("stats = %d scans, %v, %d/%d errs", scans, mean, readErrs, writeErrs)
	}
}

func TestWriteOnChangeOnly(t *testing.T) {
	r := newRig(t)
	p := newPLC(t, r)
	defer p.Stop()
	for i := 0; i < 5; i++ {
		if err := p.Scan(time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	_, writes := r.srv.Stats()
	if writes != 1 {
		t.Errorf("IED writes = %d, want 1 (write-on-change)", writes)
	}
}

func TestSCADACommandViaModbus(t *testing.T) {
	r := newRig(t)
	p := newPLC(t, r)
	defer p.Stop()
	if err := p.ServeModbusOnly(); err != nil {
		t.Fatal(err)
	}
	p.Scan(time.Now())

	cli, err := modbus.DialClient(r.scada, r.plc.IP(), 0, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	// SCADA reads the exposed measurement.
	regs, err := cli.ReadInput(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if regs[0] != 1000 { // 1.0 pu * 1000
		t.Errorf("input reg = %d", regs[0])
	}
	st, err := cli.ReadDiscreteInputs(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !st[0] {
		t.Error("breaker status should be closed")
	}
	// SCADA commands a manual open via coil 0.
	if err := cli.WriteCoil(0, true); err != nil {
		t.Fatal(err)
	}
	p.Scan(time.Now())
	if got, _ := r.srv.Get("LD0/XCBR1.Pos.Oper"); got.Bool {
		t.Error("manual open command not propagated to IED")
	}
	st, _ = cli.ReadDiscreteInputs(0, 1)
	if st[0] {
		t.Error("exposed breaker status still closed")
	}
}

func TestRunLoop(t *testing.T) {
	r := newRig(t)
	p := newPLC(t, r)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pCfgScan := 5 * time.Millisecond
	p.cfg.ScanTime = pCfgScan
	if err := p.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(ctx); !errors.Is(err, ErrAlreadyRun) {
		t.Errorf("double start = %v", err)
	}
	time.Sleep(60 * time.Millisecond)
	p.Stop()
	scans, _, _, _ := p.Stats()
	if scans < 3 {
		t.Errorf("scan loop made %d scans", scans)
	}
}

func TestReadErrorsCounted(t *testing.T) {
	r := newRig(t)
	p, err := New(r.plc, Config{
		Inputs: []MMSBinding{{Var: "voltage", IED: "ied1", Ref: "LD0/Ghost.ref"}},
	}, `VAR_INPUT voltage : REAL; END_VAR ;`)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	if err := p.ConnectIED("ied1", r.ied.IP(), 0); err != nil {
		t.Fatal(err)
	}
	p.Scan(time.Now())
	_, _, readErrs, _ := p.Stats()
	if readErrs != 1 {
		t.Errorf("readErrs = %d", readErrs)
	}
	// Unconnected IED also counts.
	p2, err := New(r.plc, Config{
		Inputs: []MMSBinding{{Var: "voltage", IED: "ghost", Ref: "LD0/X.y"}},
	}, `VAR_INPUT voltage : REAL; END_VAR ;`)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Stop()
	p2.Scan(time.Now())
	_, _, readErrs, _ = p2.Stats()
	if readErrs != 1 {
		t.Errorf("unconnected readErrs = %d", readErrs)
	}
}

func TestBindingValidation(t *testing.T) {
	r := newRig(t)
	cases := []Config{
		{Inputs: []MMSBinding{{Var: "ghost", IED: "a", Ref: "x/y"}}},
		{Outputs: []MMSBinding{{Var: "ghost", IED: "a", Ref: "x/y"}}},
		{Expose: []ModbusBinding{{Var: "ghost", Kind: ExposeDiscrete}}},
		{Commands: []CommandBinding{{Coil: 0, Var: "ghost"}}},
	}
	for i, cfg := range cases {
		if _, err := New(r.plc, cfg, `VAR a : INT; END_VAR ;`); !errors.Is(err, ErrUnknownVar) {
			t.Errorf("case %d err = %v", i, err)
		}
	}
	if _, err := New(r.plc, Config{}, `garbage !!`); err == nil {
		t.Error("bad ST accepted")
	}
}

func TestValueConversions(t *testing.T) {
	if got := mmsToST(mms.NewFloat(2.0), 0.5); got.AsReal() != 1.0 {
		t.Errorf("scaled float = %v", got)
	}
	if got := mmsToST(mms.NewInt(7), 1); got.AsInt() != 7 {
		t.Errorf("int = %v", got)
	}
	if got := mmsToST(mms.NewBool(true), 1); !got.AsBool() {
		t.Errorf("bool = %v", got)
	}
	if got := toRegister(-5); got != 0 {
		t.Errorf("negative clamp = %d", got)
	}
	if got := toRegister(1e9); got != 65535 {
		t.Errorf("overflow clamp = %d", got)
	}
	if got := toRegister(1020.4); got != 1020 {
		t.Errorf("round = %d", got)
	}
}
