package modbus

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/netem"
)

func pair(t *testing.T) (*netem.Host, *netem.Host) {
	t.Helper()
	n := netem.NewNetwork()
	if _, err := netem.NewSwitch(n, "sw", 4); err != nil {
		t.Fatal(err)
	}
	srv, err := netem.NewHost(n, "plc", netem.MustMAC("02:00:00:00:00:01"), netem.MustIPv4("10.0.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	cli, err := netem.NewHost(n, "scada", netem.MustMAC("02:00:00:00:00:02"), netem.MustIPv4("10.0.0.2"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Connect("plc", 0, "sw", 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Connect("scada", 0, "sw", 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)
	return srv, cli
}

func served(t *testing.T) (*Server, *Client) {
	t.Helper()
	srvHost, cliHost := pair(t)
	srv := NewServer(64, 64, 128, 128)
	if err := srv.Serve(srvHost, 0); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	cli, err := DialClient(cliHost, srvHost.IP(), 0, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return srv, cli
}

func TestReadInputRegisters(t *testing.T) {
	srv, cli := served(t)
	srv.SetInput(0, 1020) // e.g. voltage * 1000
	srv.SetInput(1, 351)
	got, err := cli.ReadInput(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1020 || got[1] != 351 {
		t.Errorf("input = %v", got)
	}
}

func TestHoldingRegistersRoundTrip(t *testing.T) {
	srv, cli := served(t)
	if err := cli.WriteRegister(5, 777); err != nil {
		t.Fatal(err)
	}
	if got := srv.Holding(5); got != 777 {
		t.Errorf("server holding[5] = %d", got)
	}
	vals, err := cli.ReadHolding(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 777 {
		t.Errorf("read back %v", vals)
	}
}

func TestWriteMultipleRegisters(t *testing.T) {
	srv, cli := served(t)
	want := []uint16{1, 2, 3, 65535}
	if err := cli.WriteRegisters(10, want); err != nil {
		t.Fatal(err)
	}
	got, err := cli.ReadHolding(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("reg %d = %d, want %d", i, got[i], want[i])
		}
	}
	_ = srv
}

func TestCoilsAndHook(t *testing.T) {
	srv, cli := served(t)
	var mu sync.Mutex
	writes := map[uint16]bool{}
	srv.OnCoilWrite(func(addr uint16, v bool) {
		mu.Lock()
		writes[addr] = v
		mu.Unlock()
	})
	if err := cli.WriteCoil(3, true); err != nil {
		t.Fatal(err)
	}
	if !srv.Coil(3) {
		t.Error("coil not set")
	}
	if err := cli.WriteCoils(8, []bool{true, false, true}); err != nil {
		t.Fatal(err)
	}
	got, err := cli.ReadCoils(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0] || got[1] || !got[2] {
		t.Errorf("coils = %v", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if !writes[3] || !writes[8] || writes[9] || !writes[10] {
		t.Errorf("hook writes = %v", writes)
	}
}

func TestDiscreteInputs(t *testing.T) {
	srv, cli := served(t)
	srv.SetDiscrete(0, true)
	srv.SetDiscrete(2, true)
	got, err := cli.ReadDiscreteInputs(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0] || got[1] || !got[2] {
		t.Errorf("discrete = %v", got)
	}
}

func TestRegisterWriteHook(t *testing.T) {
	srv, cli := served(t)
	got := make(chan uint16, 1)
	srv.OnRegisterWrite(func(addr uint16, v uint16) {
		if addr == 20 {
			got <- v
		}
	})
	if err := cli.WriteRegister(20, 444); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v != 444 {
			t.Errorf("hook value = %d", v)
		}
	case <-time.After(time.Second):
		t.Fatal("hook not fired")
	}
}

func TestExceptions(t *testing.T) {
	_, cli := served(t)
	// Out-of-range address.
	if _, err := cli.ReadHolding(1000, 4); !errors.Is(err, ErrException) {
		t.Errorf("out of range err = %v", err)
	}
	var ex *ExceptionError
	_, err := cli.ReadHolding(1000, 4)
	if !errors.As(err, &ex) || ex.Code != ExIllegalAddress {
		t.Errorf("exception = %+v", ex)
	}
	// Zero count.
	if _, err := cli.ReadCoils(0, 0); !errors.Is(err, ErrException) {
		t.Errorf("zero count err = %v", err)
	}
}

func TestConcurrentPolling(t *testing.T) {
	srv, cli := served(t)
	srv.SetInput(0, 42)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if _, err := cli.ReadInput(0, 1); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if srv.Requests() < 160 {
		t.Errorf("requests = %d", srv.Requests())
	}
}

func TestServerCloseBreaksClient(t *testing.T) {
	srv, cli := served(t)
	srv.Close()
	if _, err := cli.ReadInput(0, 1); err == nil {
		t.Error("read succeeded after server close")
	}
}

func TestMultipleClients(t *testing.T) {
	srvHost, cliHost := pair(t)
	srv := NewServer(8, 8, 8, 8)
	if err := srv.Serve(srvHost, 0); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetInput(0, 7)
	for i := 0; i < 3; i++ {
		cli, err := DialClient(cliHost, srvHost.IP(), 0, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cli.ReadInput(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != 7 {
			t.Errorf("client %d read %v", i, got)
		}
		cli.Close()
	}
}

func TestBoundsSettersIgnoreOutOfRange(t *testing.T) {
	srv := NewServer(1, 1, 1, 1)
	srv.SetInput(-1, 5)
	srv.SetInput(99, 5)
	srv.SetDiscrete(99, true)
	srv.SetHolding(99, 5)
	srv.SetCoil(99, true)
	if srv.Coil(99) || srv.Holding(99) != 0 {
		t.Error("out-of-range access leaked")
	}
}
