// Package modbus implements Modbus/TCP, the protocol between the SCADA HMI
// and the virtual PLC ("OpenPLC61850 supports Modbus communication protocol
// (for interacting with SCADA)", §III-B).
//
// It provides a register-table server with write hooks (the PLC's northbound
// face) and a client (the SCADA poller), speaking standard MBAP framing with
// function codes 1-6, 15 and 16, including proper exception responses.
package modbus

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/netem"
)

// DefaultPort is the registered Modbus/TCP port.
const DefaultPort = 502

// Function codes.
const (
	FuncReadCoils          = 1
	FuncReadDiscreteInputs = 2
	FuncReadHolding        = 3
	FuncReadInput          = 4
	FuncWriteSingleCoil    = 5
	FuncWriteSingleReg     = 6
	FuncWriteMultiCoils    = 15
	FuncWriteMultiRegs     = 16
)

// Exception codes.
const (
	ExIllegalFunction = 1
	ExIllegalAddress  = 2
	ExIllegalValue    = 3
	ExServerFailure   = 4
)

// Errors returned by the client.
var (
	ErrException = errors.New("modbus: exception response")
	ErrFraming   = errors.New("modbus: bad frame")
	ErrClosed    = errors.New("modbus: connection closed")
)

// ExceptionError carries the exception code of a failed request.
type ExceptionError struct {
	Function byte
	Code     byte
}

func (e *ExceptionError) Error() string {
	return fmt.Sprintf("modbus: function %d exception %d", e.Function, e.Code)
}

// Is reports that an ExceptionError matches ErrException.
func (e *ExceptionError) Is(target error) bool { return target == ErrException }

// mbap is the Modbus Application Protocol header.
type mbap struct {
	txID   uint16
	unitID byte
}

func writeADU(w io.Writer, h mbap, pdu []byte) error {
	buf := make([]byte, 7+len(pdu))
	binary.BigEndian.PutUint16(buf[0:], h.txID)
	binary.BigEndian.PutUint16(buf[2:], 0) // protocol ID
	binary.BigEndian.PutUint16(buf[4:], uint16(1+len(pdu)))
	buf[6] = h.unitID
	copy(buf[7:], pdu)
	_, err := w.Write(buf)
	return err
}

func readADU(r io.Reader) (mbap, []byte, error) {
	var hdr [7]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return mbap{}, nil, err
	}
	if binary.BigEndian.Uint16(hdr[2:]) != 0 {
		return mbap{}, nil, fmt.Errorf("%w: protocol id", ErrFraming)
	}
	length := int(binary.BigEndian.Uint16(hdr[4:]))
	if length < 2 || length > 260 {
		return mbap{}, nil, fmt.Errorf("%w: length %d", ErrFraming, length)
	}
	pdu := make([]byte, length-1)
	if _, err := io.ReadFull(r, pdu); err != nil {
		return mbap{}, nil, err
	}
	return mbap{txID: binary.BigEndian.Uint16(hdr[0:]), unitID: hdr[6]}, pdu, nil
}

// CoilWriteHook observes a committed coil write (PLC command intake).
type CoilWriteHook func(addr uint16, value bool)

// RegWriteHook observes a committed holding-register write.
type RegWriteHook func(addr uint16, value uint16)

// Server is a Modbus/TCP register-table server.
type Server struct {
	mu       sync.RWMutex
	coils    []bool
	discrete []bool
	holding  []uint16
	input    []uint16
	onCoil   CoilWriteHook
	onReg    RegWriteHook
	listener *netem.Listener
	conns    map[*netem.TCPConn]bool
	closed   bool
	wg       sync.WaitGroup
	requests uint64
}

// NewServer allocates a server with the given table sizes.
func NewServer(coils, discrete, holding, input int) *Server {
	return &Server{
		coils:    make([]bool, coils),
		discrete: make([]bool, discrete),
		holding:  make([]uint16, holding),
		input:    make([]uint16, input),
		conns:    make(map[*netem.TCPConn]bool),
	}
}

// OnCoilWrite installs the coil write hook.
func (s *Server) OnCoilWrite(h CoilWriteHook) {
	s.mu.Lock()
	s.onCoil = h
	s.mu.Unlock()
}

// OnRegisterWrite installs the holding-register write hook.
func (s *Server) OnRegisterWrite(h RegWriteHook) {
	s.mu.Lock()
	s.onReg = h
	s.mu.Unlock()
}

// SetInput sets an input register (measurement exposure).
func (s *Server) SetInput(addr int, v uint16) {
	s.mu.Lock()
	if addr >= 0 && addr < len(s.input) {
		s.input[addr] = v
	}
	s.mu.Unlock()
}

// SetDiscrete sets a discrete input (status exposure).
func (s *Server) SetDiscrete(addr int, v bool) {
	s.mu.Lock()
	if addr >= 0 && addr < len(s.discrete) {
		s.discrete[addr] = v
	}
	s.mu.Unlock()
}

// SetHolding sets a holding register locally.
func (s *Server) SetHolding(addr int, v uint16) {
	s.mu.Lock()
	if addr >= 0 && addr < len(s.holding) {
		s.holding[addr] = v
	}
	s.mu.Unlock()
}

// SetCoil sets a coil locally (without firing the hook).
func (s *Server) SetCoil(addr int, v bool) {
	s.mu.Lock()
	if addr >= 0 && addr < len(s.coils) {
		s.coils[addr] = v
	}
	s.mu.Unlock()
}

// Coil reads a coil.
func (s *Server) Coil(addr int) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if addr < 0 || addr >= len(s.coils) {
		return false
	}
	return s.coils[addr]
}

// InputReg reads an input register.
func (s *Server) InputReg(addr int) uint16 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if addr < 0 || addr >= len(s.input) {
		return 0
	}
	return s.input[addr]
}

// Discrete reads a discrete input.
func (s *Server) Discrete(addr int) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if addr < 0 || addr >= len(s.discrete) {
		return false
	}
	return s.discrete[addr]
}

// Holding reads a holding register.
func (s *Server) Holding(addr int) uint16 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if addr < 0 || addr >= len(s.holding) {
		return 0
	}
	return s.holding[addr]
}

// Requests reports the number of served PDUs.
func (s *Server) Requests() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.requests
}

// Serve starts accepting connections on the host.
func (s *Server) Serve(h *netem.Host, port uint16) error {
	if port == 0 {
		port = DefaultPort
	}
	ln, err := h.ListenTCP(port)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				conn.Close()
				return
			}
			s.conns[conn] = true
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serveConn(conn)
			}()
		}
	}()
	return nil
}

// Close stops the server.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.listener
	conns := make([]*netem.TCPConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

func (s *Server) serveConn(conn *netem.TCPConn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		hdr, pdu, err := readADU(conn)
		if err != nil {
			return
		}
		resp := s.handlePDU(pdu)
		if err := writeADU(conn, hdr, resp); err != nil {
			return
		}
	}
}

func exception(fn, code byte) []byte { return []byte{fn | 0x80, code} }

func (s *Server) handlePDU(pdu []byte) []byte {
	if len(pdu) < 1 {
		return exception(0, ExIllegalFunction)
	}
	fn := pdu[0]
	s.mu.Lock()
	s.requests++
	s.mu.Unlock()
	switch fn {
	case FuncReadCoils, FuncReadDiscreteInputs:
		if len(pdu) < 5 {
			return exception(fn, ExIllegalValue)
		}
		addr := binary.BigEndian.Uint16(pdu[1:])
		count := binary.BigEndian.Uint16(pdu[3:])
		if count == 0 || count > 2000 {
			return exception(fn, ExIllegalValue)
		}
		s.mu.RLock()
		table := s.coils
		if fn == FuncReadDiscreteInputs {
			table = s.discrete
		}
		if int(addr)+int(count) > len(table) {
			s.mu.RUnlock()
			return exception(fn, ExIllegalAddress)
		}
		nbytes := (int(count) + 7) / 8
		resp := make([]byte, 2+nbytes)
		resp[0], resp[1] = fn, byte(nbytes)
		for i := 0; i < int(count); i++ {
			if table[int(addr)+i] {
				resp[2+i/8] |= 1 << (i % 8)
			}
		}
		s.mu.RUnlock()
		return resp

	case FuncReadHolding, FuncReadInput:
		if len(pdu) < 5 {
			return exception(fn, ExIllegalValue)
		}
		addr := binary.BigEndian.Uint16(pdu[1:])
		count := binary.BigEndian.Uint16(pdu[3:])
		if count == 0 || count > 125 {
			return exception(fn, ExIllegalValue)
		}
		s.mu.RLock()
		table := s.holding
		if fn == FuncReadInput {
			table = s.input
		}
		if int(addr)+int(count) > len(table) {
			s.mu.RUnlock()
			return exception(fn, ExIllegalAddress)
		}
		resp := make([]byte, 2+2*int(count))
		resp[0], resp[1] = fn, byte(2*count)
		for i := 0; i < int(count); i++ {
			binary.BigEndian.PutUint16(resp[2+2*i:], table[int(addr)+i])
		}
		s.mu.RUnlock()
		return resp

	case FuncWriteSingleCoil:
		if len(pdu) < 5 {
			return exception(fn, ExIllegalValue)
		}
		addr := binary.BigEndian.Uint16(pdu[1:])
		raw := binary.BigEndian.Uint16(pdu[3:])
		if raw != 0x0000 && raw != 0xFF00 {
			return exception(fn, ExIllegalValue)
		}
		v := raw == 0xFF00
		s.mu.Lock()
		if int(addr) >= len(s.coils) {
			s.mu.Unlock()
			return exception(fn, ExIllegalAddress)
		}
		s.coils[addr] = v
		hook := s.onCoil
		s.mu.Unlock()
		if hook != nil {
			hook(addr, v)
		}
		return append([]byte(nil), pdu[:5]...)

	case FuncWriteSingleReg:
		if len(pdu) < 5 {
			return exception(fn, ExIllegalValue)
		}
		addr := binary.BigEndian.Uint16(pdu[1:])
		v := binary.BigEndian.Uint16(pdu[3:])
		s.mu.Lock()
		if int(addr) >= len(s.holding) {
			s.mu.Unlock()
			return exception(fn, ExIllegalAddress)
		}
		s.holding[addr] = v
		hook := s.onReg
		s.mu.Unlock()
		if hook != nil {
			hook(addr, v)
		}
		return append([]byte(nil), pdu[:5]...)

	case FuncWriteMultiCoils:
		if len(pdu) < 6 {
			return exception(fn, ExIllegalValue)
		}
		addr := binary.BigEndian.Uint16(pdu[1:])
		count := binary.BigEndian.Uint16(pdu[3:])
		nbytes := int(pdu[5])
		if count == 0 || count > 1968 || nbytes != (int(count)+7)/8 || len(pdu) < 6+nbytes {
			return exception(fn, ExIllegalValue)
		}
		s.mu.Lock()
		if int(addr)+int(count) > len(s.coils) {
			s.mu.Unlock()
			return exception(fn, ExIllegalAddress)
		}
		hook := s.onCoil
		changed := make([]bool, count)
		for i := 0; i < int(count); i++ {
			v := pdu[6+i/8]&(1<<(i%8)) != 0
			s.coils[int(addr)+i] = v
			changed[i] = v
		}
		s.mu.Unlock()
		if hook != nil {
			for i, v := range changed {
				hook(addr+uint16(i), v)
			}
		}
		resp := make([]byte, 5)
		resp[0] = fn
		binary.BigEndian.PutUint16(resp[1:], addr)
		binary.BigEndian.PutUint16(resp[3:], count)
		return resp

	case FuncWriteMultiRegs:
		if len(pdu) < 6 {
			return exception(fn, ExIllegalValue)
		}
		addr := binary.BigEndian.Uint16(pdu[1:])
		count := binary.BigEndian.Uint16(pdu[3:])
		nbytes := int(pdu[5])
		if count == 0 || count > 123 || nbytes != 2*int(count) || len(pdu) < 6+nbytes {
			return exception(fn, ExIllegalValue)
		}
		s.mu.Lock()
		if int(addr)+int(count) > len(s.holding) {
			s.mu.Unlock()
			return exception(fn, ExIllegalAddress)
		}
		hook := s.onReg
		vals := make([]uint16, count)
		for i := 0; i < int(count); i++ {
			v := binary.BigEndian.Uint16(pdu[6+2*i:])
			s.holding[int(addr)+i] = v
			vals[i] = v
		}
		s.mu.Unlock()
		if hook != nil {
			for i, v := range vals {
				hook(addr+uint16(i), v)
			}
		}
		resp := make([]byte, 5)
		resp[0] = fn
		binary.BigEndian.PutUint16(resp[1:], addr)
		binary.BigEndian.PutUint16(resp[3:], count)
		return resp

	default:
		return exception(fn, ExIllegalFunction)
	}
}

// Client is a Modbus/TCP master.
type Client struct {
	mu      sync.Mutex
	conn    *netem.TCPConn
	txID    uint16
	timeout time.Duration
}

// DialClient connects to a Modbus server.
func DialClient(h *netem.Host, ip netem.IPv4, port uint16, timeout time.Duration) (*Client, error) {
	if port == 0 {
		port = DefaultPort
	}
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	conn, err := h.DialTCP(ip, port)
	if err != nil {
		return nil, fmt.Errorf("modbus: dial %s:%d: %w", ip, port, err)
	}
	return &Client{conn: conn, timeout: timeout}, nil
}

// Close terminates the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip issues one request PDU and returns the response PDU.
// Requests are serialised: Modbus/TCP allows one outstanding transaction.
func (c *Client) roundTrip(pdu []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.txID++
	if err := writeADU(c.conn, mbap{txID: c.txID, unitID: 1}, pdu); err != nil {
		return nil, err
	}
	c.conn.SetReadDeadline(time.Now().Add(c.timeout))
	defer c.conn.SetReadDeadline(time.Time{})
	hdr, resp, err := readADU(c.conn)
	if err != nil {
		return nil, err
	}
	if hdr.txID != c.txID {
		return nil, fmt.Errorf("%w: transaction id %d, want %d", ErrFraming, hdr.txID, c.txID)
	}
	if len(resp) >= 2 && resp[0]&0x80 != 0 {
		return nil, &ExceptionError{Function: resp[0] & 0x7F, Code: resp[1]}
	}
	return resp, nil
}

func readReq(fn byte, addr, count uint16) []byte {
	pdu := make([]byte, 5)
	pdu[0] = fn
	binary.BigEndian.PutUint16(pdu[1:], addr)
	binary.BigEndian.PutUint16(pdu[3:], count)
	return pdu
}

// ReadCoils reads coil states.
func (c *Client) ReadCoils(addr, count uint16) ([]bool, error) {
	return c.readBits(FuncReadCoils, addr, count)
}

// ReadDiscreteInputs reads discrete input states.
func (c *Client) ReadDiscreteInputs(addr, count uint16) ([]bool, error) {
	return c.readBits(FuncReadDiscreteInputs, addr, count)
}

func (c *Client) readBits(fn byte, addr, count uint16) ([]bool, error) {
	resp, err := c.roundTrip(readReq(fn, addr, count))
	if err != nil {
		return nil, err
	}
	if len(resp) < 2 || len(resp) < 2+int(resp[1]) {
		return nil, ErrFraming
	}
	out := make([]bool, count)
	for i := range out {
		out[i] = resp[2+i/8]&(1<<(i%8)) != 0
	}
	return out, nil
}

// ReadHolding reads holding registers.
func (c *Client) ReadHolding(addr, count uint16) ([]uint16, error) {
	return c.readRegs(FuncReadHolding, addr, count)
}

// ReadInput reads input registers.
func (c *Client) ReadInput(addr, count uint16) ([]uint16, error) {
	return c.readRegs(FuncReadInput, addr, count)
}

func (c *Client) readRegs(fn byte, addr, count uint16) ([]uint16, error) {
	resp, err := c.roundTrip(readReq(fn, addr, count))
	if err != nil {
		return nil, err
	}
	if len(resp) < 2 || len(resp) < 2+int(resp[1]) || int(resp[1]) != 2*int(count) {
		return nil, ErrFraming
	}
	out := make([]uint16, count)
	for i := range out {
		out[i] = binary.BigEndian.Uint16(resp[2+2*i:])
	}
	return out, nil
}

// WriteCoil writes a single coil.
func (c *Client) WriteCoil(addr uint16, v bool) error {
	raw := uint16(0)
	if v {
		raw = 0xFF00
	}
	pdu := make([]byte, 5)
	pdu[0] = FuncWriteSingleCoil
	binary.BigEndian.PutUint16(pdu[1:], addr)
	binary.BigEndian.PutUint16(pdu[3:], raw)
	_, err := c.roundTrip(pdu)
	return err
}

// WriteRegister writes a single holding register.
func (c *Client) WriteRegister(addr, v uint16) error {
	pdu := make([]byte, 5)
	pdu[0] = FuncWriteSingleReg
	binary.BigEndian.PutUint16(pdu[1:], addr)
	binary.BigEndian.PutUint16(pdu[3:], v)
	_, err := c.roundTrip(pdu)
	return err
}

// WriteCoils writes multiple coils starting at addr.
func (c *Client) WriteCoils(addr uint16, vals []bool) error {
	nbytes := (len(vals) + 7) / 8
	pdu := make([]byte, 6+nbytes)
	pdu[0] = FuncWriteMultiCoils
	binary.BigEndian.PutUint16(pdu[1:], addr)
	binary.BigEndian.PutUint16(pdu[3:], uint16(len(vals)))
	pdu[5] = byte(nbytes)
	for i, v := range vals {
		if v {
			pdu[6+i/8] |= 1 << (i % 8)
		}
	}
	_, err := c.roundTrip(pdu)
	return err
}

// WriteRegisters writes multiple holding registers starting at addr.
func (c *Client) WriteRegisters(addr uint16, vals []uint16) error {
	pdu := make([]byte, 6+2*len(vals))
	pdu[0] = FuncWriteMultiRegs
	binary.BigEndian.PutUint16(pdu[1:], addr)
	binary.BigEndian.PutUint16(pdu[3:], uint16(len(vals)))
	pdu[5] = byte(2 * len(vals))
	for i, v := range vals {
		binary.BigEndian.PutUint16(pdu[6+2*i:], v)
	}
	_, err := c.roundTrip(pdu)
	return err
}
