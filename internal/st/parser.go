package st

import "fmt"

// Parse compiles ST source into a Program. The source may be a bare
// statement list or wrapped in PROGRAM ... END_PROGRAM with VAR sections.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	if err := checkProgram(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) accept(kind TokenKind, text string) bool {
	t := p.cur()
	if t.Kind == kind && (text == "" || t.Text == text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind TokenKind, text string) (Token, error) {
	t := p.cur()
	if t.Kind != kind || (text != "" && t.Text != text) {
		want := text
		if want == "" {
			want = fmt.Sprintf("token kind %d", kind)
		}
		return t, errAt(t.Line, t.Col, "expected %s, got %q", want, t.Raw)
	}
	p.pos++
	return t, nil
}

func (p *parser) parseProgram() (*Program, error) {
	prog := &Program{Name: "MAIN"}
	if p.accept(TokKeyword, "PROGRAM") || p.accept(TokKeyword, "FUNCTION_BLOCK") {
		name, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		prog.Name = name.Text
	}
	// VAR sections.
	for {
		class := ClassLocal
		switch {
		case p.accept(TokKeyword, "VAR"):
		case p.accept(TokKeyword, "VAR_INPUT"):
			class = ClassInput
		case p.accept(TokKeyword, "VAR_OUTPUT"):
			class = ClassOutput
		case p.accept(TokKeyword, "VAR_IN_OUT"):
			class = ClassInOut
		default:
			goto body
		}
		// Optional RETAIN/CONSTANT qualifiers.
		p.accept(TokKeyword, "RETAIN")
		p.accept(TokKeyword, "CONSTANT")
		for !p.accept(TokKeyword, "END_VAR") {
			decls, err := p.parseVarDecl(class)
			if err != nil {
				return nil, err
			}
			prog.Vars = append(prog.Vars, decls...)
		}
	}
body:
	body, err := p.parseStatements(map[string]bool{"END_PROGRAM": true, "END_FUNCTION_BLOCK": true, "": true})
	if err != nil {
		return nil, err
	}
	prog.Body = body
	p.accept(TokKeyword, "END_PROGRAM")
	p.accept(TokKeyword, "END_FUNCTION_BLOCK")
	if _, err := p.expect(TokEOF, ""); err != nil {
		return nil, err
	}
	return prog, nil
}

// parseVarDecl parses "a, b : INT := 5;" possibly with AT %QX0.0 bindings.
func (p *parser) parseVarDecl(class VarClass) ([]VarDecl, error) {
	var names []string
	address := ""
	for {
		t, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		names = append(names, t.Text)
		if p.accept(TokKeyword, "AT") {
			// Address like %QX0.0 — we lex it loosely as operator '%'? The
			// lexer has no '%'; accept an identifier-ish run instead.
			addr, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			address = addr.Raw
		}
		if !p.accept(TokComma, "") {
			break
		}
	}
	if _, err := p.expect(TokColon, ""); err != nil {
		return nil, err
	}
	typTok, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	typ := TypeName(typTok.Text)
	switch typ {
	case TypeBool, TypeInt, TypeDInt, TypeUInt, TypeReal, TypeLReal, TypeTime,
		TypeTON, TypeTOF, TypeTP, TypeRTrig, TypeFTrig, TypeSR, TypeRS, TypeCTU, TypeCTD:
	default:
		return nil, errAt(typTok.Line, typTok.Col, "unsupported type %q", typTok.Raw)
	}
	var init Expr
	if p.accept(TokAssign, "") {
		init, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokSemi, ""); err != nil {
		return nil, err
	}
	out := make([]VarDecl, 0, len(names))
	for _, name := range names {
		out = append(out, VarDecl{Name: name, Type: typ, Class: class, Init: init, Address: address})
	}
	return out, nil
}

// parseStatements parses until one of the terminator keywords (not consumed).
func (p *parser) parseStatements(terminators map[string]bool) ([]Stmt, error) {
	var out []Stmt
	for {
		t := p.cur()
		if t.Kind == TokEOF && terminators[""] {
			return out, nil
		}
		if t.Kind == TokKeyword && terminators[t.Text] {
			return out, nil
		}
		if t.Kind == TokEOF {
			return nil, errAt(t.Line, t.Col, "unexpected end of input")
		}
		stmt, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		if stmt != nil {
			out = append(out, stmt)
		}
	}
}

func (p *parser) parseStatement() (Stmt, error) {
	t := p.cur()
	switch {
	case t.Kind == TokSemi:
		p.next()
		return nil, nil
	case t.Kind == TokKeyword && t.Text == "IF":
		return p.parseIf()
	case t.Kind == TokKeyword && t.Text == "CASE":
		return p.parseCase()
	case t.Kind == TokKeyword && t.Text == "FOR":
		return p.parseFor()
	case t.Kind == TokKeyword && t.Text == "WHILE":
		return p.parseWhile()
	case t.Kind == TokKeyword && t.Text == "REPEAT":
		return p.parseRepeat()
	case t.Kind == TokKeyword && t.Text == "EXIT":
		p.next()
		if _, err := p.expect(TokSemi, ""); err != nil {
			return nil, err
		}
		return &ExitStmt{Line: t.Line}, nil
	case t.Kind == TokKeyword && t.Text == "RETURN":
		p.next()
		if _, err := p.expect(TokSemi, ""); err != nil {
			return nil, err
		}
		return &ReturnStmt{Line: t.Line}, nil
	case t.Kind == TokIdent:
		return p.parseAssignOrCall()
	default:
		return nil, errAt(t.Line, t.Col, "unexpected token %q", t.Raw)
	}
}

func (p *parser) parseAssignOrCall() (Stmt, error) {
	ident := p.next() // TokIdent
	// FB invocation: IDENT ( name := expr, ... ) ;
	if p.cur().Kind == TokLParen {
		p.next()
		call := &FBCallStmt{Instance: ident.Text, Line: ident.Line}
		if !p.accept(TokRParen, "") {
			for {
				argName, err := p.expect(TokIdent, "")
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(TokAssign, ""); err != nil {
					return nil, err
				}
				val, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, FBArg{Name: argName.Text, Value: val})
				if p.accept(TokRParen, "") {
					break
				}
				if _, err := p.expect(TokComma, ""); err != nil {
					return nil, err
				}
			}
		}
		if _, err := p.expect(TokSemi, ""); err != nil {
			return nil, err
		}
		return call, nil
	}
	// Assignment: IDENT[.member] := expr ;
	ref := VarRef{Name: ident.Text, Line: ident.Line}
	if p.accept(TokDot, "") {
		member, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		ref.Member = member.Text
	}
	if _, err := p.expect(TokAssign, ""); err != nil {
		return nil, err
	}
	val, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi, ""); err != nil {
		return nil, err
	}
	return &AssignStmt{Target: ref, Value: val, Line: ident.Line}, nil
}

func (p *parser) parseIf() (Stmt, error) {
	start := p.next() // IF
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "THEN"); err != nil {
		return nil, err
	}
	stmt := &IfStmt{Cond: cond, Line: start.Line}
	stmt.Then, err = p.parseStatements(map[string]bool{"ELSIF": true, "ELSE": true, "END_IF": true})
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "ELSIF") {
		econd, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "THEN"); err != nil {
			return nil, err
		}
		body, err := p.parseStatements(map[string]bool{"ELSIF": true, "ELSE": true, "END_IF": true})
		if err != nil {
			return nil, err
		}
		stmt.Elifs = append(stmt.Elifs, struct {
			Cond Expr
			Body []Stmt
		}{econd, body})
	}
	if p.accept(TokKeyword, "ELSE") {
		stmt.Else, err = p.parseStatements(map[string]bool{"END_IF": true})
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokKeyword, "END_IF"); err != nil {
		return nil, err
	}
	p.accept(TokSemi, "")
	return stmt, nil
}

func (p *parser) parseCase() (Stmt, error) {
	start := p.next() // CASE
	sel, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "OF"); err != nil {
		return nil, err
	}
	stmt := &CaseStmt{Selector: sel, Line: start.Line}
	for {
		if p.accept(TokKeyword, "ELSE") {
			stmt.Else, err = p.parseStatements(map[string]bool{"END_CASE": true})
			if err != nil {
				return nil, err
			}
			break
		}
		if p.cur().Kind == TokKeyword && p.cur().Text == "END_CASE" {
			break
		}
		var labels []CaseLabel
		for {
			neg := false
			if p.cur().Kind == TokOp && p.cur().Text == "-" {
				p.next()
				neg = true
			}
			lo, err := p.expect(TokIntLit, "")
			if err != nil {
				return nil, err
			}
			loVal := lo.Int
			if neg {
				loVal = -loVal
			}
			label := CaseLabel{Low: loVal, High: loVal}
			if p.accept(TokDotDot, "") {
				hi, err := p.expect(TokIntLit, "")
				if err != nil {
					return nil, err
				}
				label.High = hi.Int
				label.IsRange = true
			}
			labels = append(labels, label)
			if !p.accept(TokComma, "") {
				break
			}
		}
		if _, err := p.expect(TokColon, ""); err != nil {
			return nil, err
		}
		body, err := p.parseCaseBody()
		if err != nil {
			return nil, err
		}
		stmt.Cases = append(stmt.Cases, CaseBranch{Values: labels, Body: body})
	}
	if _, err := p.expect(TokKeyword, "END_CASE"); err != nil {
		return nil, err
	}
	p.accept(TokSemi, "")
	return stmt, nil
}

// parseCaseBody parses statements until the next case label, ELSE or
// END_CASE. A case label is INT (possibly negative or a list) followed by
// ':' — we detect it by lookahead.
func (p *parser) parseCaseBody() ([]Stmt, error) {
	var out []Stmt
	for {
		t := p.cur()
		if t.Kind == TokKeyword && (t.Text == "END_CASE" || t.Text == "ELSE") {
			return out, nil
		}
		if t.Kind == TokIntLit || (t.Kind == TokOp && t.Text == "-" && p.toks[p.pos+1].Kind == TokIntLit) {
			return out, nil // next case label
		}
		if t.Kind == TokEOF {
			return nil, errAt(t.Line, t.Col, "unterminated CASE")
		}
		stmt, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		if stmt != nil {
			out = append(out, stmt)
		}
	}
}

func (p *parser) parseFor() (Stmt, error) {
	start := p.next() // FOR
	v, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokAssign, ""); err != nil {
		return nil, err
	}
	from, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "TO"); err != nil {
		return nil, err
	}
	to, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	var by Expr
	if p.accept(TokKeyword, "BY") {
		by, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokKeyword, "DO"); err != nil {
		return nil, err
	}
	body, err := p.parseStatements(map[string]bool{"END_FOR": true})
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "END_FOR"); err != nil {
		return nil, err
	}
	p.accept(TokSemi, "")
	return &ForStmt{Var: v.Text, From: from, To: to, By: by, Body: body, Line: start.Line}, nil
}

func (p *parser) parseWhile() (Stmt, error) {
	start := p.next() // WHILE
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "DO"); err != nil {
		return nil, err
	}
	body, err := p.parseStatements(map[string]bool{"END_WHILE": true})
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "END_WHILE"); err != nil {
		return nil, err
	}
	p.accept(TokSemi, "")
	return &WhileStmt{Cond: cond, Body: body, Line: start.Line}, nil
}

func (p *parser) parseRepeat() (Stmt, error) {
	start := p.next() // REPEAT
	body, err := p.parseStatements(map[string]bool{"UNTIL": true})
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "UNTIL"); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "END_REPEAT"); err != nil {
		return nil, err
	}
	p.accept(TokSemi, "")
	return &RepeatStmt{Body: body, Until: cond, Line: start.Line}, nil
}

// Expression parsing with precedence climbing.
// Precedence (low→high): OR, XOR, AND (&), comparison (= <> < <= > >=),
// additive (+ -), multiplicative (* / MOD), power (**), unary (NOT, -).

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseXor()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind == TokKeyword && t.Text == "OR" {
			p.next()
			right, err := p.parseXor()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: "OR", Left: left, Right: right, Line: t.Line}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseXor() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind == TokKeyword && t.Text == "XOR" {
			p.next()
			right, err := p.parseAnd()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: "XOR", Left: left, Right: right, Line: t.Line}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseComparison()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if (t.Kind == TokKeyword && t.Text == "AND") || (t.Kind == TokOp && t.Text == "&") {
			p.next()
			right, err := p.parseComparison()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: "AND", Left: left, Right: right, Line: t.Line}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == TokOp {
		switch t.Text {
		case "=", "<>", "<", "<=", ">", ">=":
			p.next()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: t.Text, Left: left, Right: right, Line: t.Line}, nil
		}
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind == TokOp && (t.Text == "+" || t.Text == "-") {
			p.next()
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: t.Text, Left: left, Right: right, Line: t.Line}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parsePower()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if (t.Kind == TokOp && (t.Text == "*" || t.Text == "/")) || (t.Kind == TokKeyword && t.Text == "MOD") {
			p.next()
			right, err := p.parsePower()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: t.Text, Left: left, Right: right, Line: t.Line}
			continue
		}
		return left, nil
	}
}

func (p *parser) parsePower() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == TokOp && t.Text == "**" {
		p.next()
		right, err := p.parsePower() // right-associative
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: "**", Left: left, Right: right, Line: t.Line}, nil
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.Kind == TokKeyword && t.Text == "NOT" {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x, Line: t.Line}, nil
	}
	if t.Kind == TokOp && t.Text == "-" {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", X: x, Line: t.Line}, nil
	}
	if t.Kind == TokOp && t.Text == "+" {
		p.next()
		return p.parseUnary()
	}
	return p.parsePrimary()
}

var stdFuncs = map[string]int{ // name -> arity (-1 = variadic >= 2)
	"ABS": 1, "SQRT": 1, "LN": 1, "LOG": 1, "EXP": 1,
	"SIN": 1, "COS": 1, "TAN": 1,
	"MIN": -1, "MAX": -1, "LIMIT": 3, "SEL": 3,
	"TRUNC": 1, "ROUND": 1,
	"INT_TO_REAL": 1, "REAL_TO_INT": 1, "BOOL_TO_INT": 1, "INT_TO_BOOL": 1,
	"TIME_TO_INT": 1, "INT_TO_TIME": 1, "DINT_TO_REAL": 1, "REAL_TO_DINT": 1,
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokIntLit:
		p.next()
		return &Literal{Val: IntVal(t.Int), Line: t.Line}, nil
	case TokRealLit:
		p.next()
		return &Literal{Val: RealVal(t.Real), Line: t.Line}, nil
	case TokBoolLit:
		p.next()
		return &Literal{Val: BoolVal(t.Int == 1), Line: t.Line}, nil
	case TokTimeLit:
		p.next()
		return &Literal{Val: TimeVal(t.Dur), Line: t.Line}, nil
	case TokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen, ""); err != nil {
			return nil, err
		}
		return e, nil
	case TokIdent:
		p.next()
		// Standard function call?
		if p.cur().Kind == TokLParen {
			if _, ok := stdFuncs[t.Text]; !ok {
				return nil, errAt(t.Line, t.Col, "unknown function %q (FB invocations are statements)", t.Raw)
			}
			p.next()
			call := &CallExpr{Func: t.Text, Line: t.Line}
			if !p.accept(TokRParen, "") {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if p.accept(TokRParen, "") {
						break
					}
					if _, err := p.expect(TokComma, ""); err != nil {
						return nil, err
					}
				}
			}
			if err := checkArity(call, t); err != nil {
				return nil, err
			}
			return call, nil
		}
		ref := VarRef{Name: t.Text, Line: t.Line}
		if p.accept(TokDot, "") {
			member, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			ref.Member = member.Text
		}
		return ref, nil
	default:
		return nil, errAt(t.Line, t.Col, "unexpected token %q in expression", t.Raw)
	}
}

func checkArity(call *CallExpr, t Token) error {
	want := stdFuncs[call.Func]
	if want == -1 {
		if len(call.Args) < 2 {
			return errAt(t.Line, t.Col, "%s needs at least 2 arguments", call.Func)
		}
		return nil
	}
	if len(call.Args) != want {
		return errAt(t.Line, t.Col, "%s needs %d arguments, got %d", call.Func, want, len(call.Args))
	}
	return nil
}

// checkProgram performs static checks: every referenced variable is declared,
// FB calls target FB-typed variables, assignment targets are writable.
func checkProgram(prog *Program) error {
	declared := map[string]TypeName{}
	for _, v := range prog.Vars {
		if _, dup := declared[v.Name]; dup {
			return fmt.Errorf("st: duplicate variable %q", v.Name)
		}
		declared[v.Name] = v.Type
	}
	var checkExpr func(e Expr) error
	var checkStmts func(body []Stmt) error
	checkExpr = func(e Expr) error {
		switch x := e.(type) {
		case *BinaryExpr:
			if err := checkExpr(x.Left); err != nil {
				return err
			}
			return checkExpr(x.Right)
		case *UnaryExpr:
			return checkExpr(x.X)
		case *CallExpr:
			for _, a := range x.Args {
				if err := checkExpr(a); err != nil {
					return err
				}
			}
			return nil
		case VarRef:
			typ, ok := declared[x.Name]
			if !ok {
				return fmt.Errorf("st: line %d: undeclared variable %q", x.Line, x.Name)
			}
			if x.Member != "" && !typ.IsFB() {
				return fmt.Errorf("st: line %d: %q is not a function block (member %q)", x.Line, x.Name, x.Member)
			}
			return nil
		case *Literal:
			return nil
		}
		return nil
	}
	checkStmts = func(body []Stmt) error {
		for _, s := range body {
			switch x := s.(type) {
			case *AssignStmt:
				typ, ok := declared[x.Target.Name]
				if !ok {
					return fmt.Errorf("st: line %d: assignment to undeclared variable %q", x.Line, x.Target.Name)
				}
				if x.Target.Member != "" && !typ.IsFB() {
					return fmt.Errorf("st: line %d: %q is not a function block", x.Line, x.Target.Name)
				}
				if err := checkExpr(x.Value); err != nil {
					return err
				}
			case *IfStmt:
				if err := checkExpr(x.Cond); err != nil {
					return err
				}
				if err := checkStmts(x.Then); err != nil {
					return err
				}
				for _, e := range x.Elifs {
					if err := checkExpr(e.Cond); err != nil {
						return err
					}
					if err := checkStmts(e.Body); err != nil {
						return err
					}
				}
				if err := checkStmts(x.Else); err != nil {
					return err
				}
			case *CaseStmt:
				if err := checkExpr(x.Selector); err != nil {
					return err
				}
				for _, c := range x.Cases {
					if err := checkStmts(c.Body); err != nil {
						return err
					}
				}
				if err := checkStmts(x.Else); err != nil {
					return err
				}
			case *ForStmt:
				if _, ok := declared[x.Var]; !ok {
					return fmt.Errorf("st: line %d: undeclared loop variable %q", x.Line, x.Var)
				}
				for _, e := range []Expr{x.From, x.To, x.By} {
					if e != nil {
						if err := checkExpr(e); err != nil {
							return err
						}
					}
				}
				if err := checkStmts(x.Body); err != nil {
					return err
				}
			case *WhileStmt:
				if err := checkExpr(x.Cond); err != nil {
					return err
				}
				if err := checkStmts(x.Body); err != nil {
					return err
				}
			case *RepeatStmt:
				if err := checkStmts(x.Body); err != nil {
					return err
				}
				if err := checkExpr(x.Until); err != nil {
					return err
				}
			case *FBCallStmt:
				typ, ok := declared[x.Instance]
				if !ok {
					return fmt.Errorf("st: line %d: undeclared FB instance %q", x.Line, x.Instance)
				}
				if !typ.IsFB() {
					return fmt.Errorf("st: line %d: %q is not a function block", x.Line, x.Instance)
				}
				for _, a := range x.Args {
					if err := checkExpr(a.Value); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
	if err := checkStmts(prog.Body); err != nil {
		return err
	}
	// Initialisers may only reference literals/earlier vars; check leniently.
	for _, v := range prog.Vars {
		if v.Init != nil {
			if err := checkExpr(v.Init); err != nil {
				return fmt.Errorf("in initialiser of %q: %w", v.Name, err)
			}
		}
	}
	return nil
}

// MustParse parses or panics; for tests and embedded fixtures.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}
