package st

import (
	"fmt"
	"time"
)

// FB is a standard function-block instance. Invoke runs one evaluation with
// named inputs at the scan instant; Member reads an output.
type FB interface {
	Invoke(inputs map[string]Value, now time.Time) error
	Member(name string) (Value, error)
	SetMember(name string, v Value) error
}

func newFB(t TypeName) FB {
	switch t {
	case TypeTON:
		return &tonFB{}
	case TypeTOF:
		return &tofFB{}
	case TypeTP:
		return &tpFB{}
	case TypeRTrig:
		return &rtrigFB{}
	case TypeFTrig:
		return &ftrigFB{}
	case TypeSR:
		return &srFB{}
	case TypeRS:
		return &rsFB{}
	case TypeCTU:
		return &ctuFB{}
	case TypeCTD:
		return &ctdFB{}
	}
	return nil
}

func badMember(fb, name string) error {
	return fmt.Errorf("%w: %s.%s", ErrBadMember, fb, name)
}

// tonFB is the on-delay timer: Q rises PT after IN rises.
type tonFB struct {
	in      bool
	pt      time.Duration
	q       bool
	et      time.Duration
	started time.Time
	running bool
}

func (t *tonFB) Invoke(in map[string]Value, now time.Time) error {
	if v, ok := in["PT"]; ok {
		t.pt = v.AsTime()
	}
	if v, ok := in["IN"]; ok {
		t.in = v.AsBool()
	}
	switch {
	case !t.in:
		t.q, t.et, t.running = false, 0, false
	case !t.running:
		t.running = true
		t.started = now
		t.et = 0
		t.q = t.pt == 0
	default:
		t.et = now.Sub(t.started)
		if t.et >= t.pt {
			t.et = t.pt
			t.q = true
		}
	}
	return nil
}

func (t *tonFB) Member(name string) (Value, error) {
	switch name {
	case "Q":
		return BoolVal(t.q), nil
	case "ET":
		return TimeVal(t.et), nil
	case "IN":
		return BoolVal(t.in), nil
	case "PT":
		return TimeVal(t.pt), nil
	}
	return Value{}, badMember("TON", name)
}

func (t *tonFB) SetMember(name string, v Value) error {
	switch name {
	case "IN":
		t.in = v.AsBool()
		return nil
	case "PT":
		t.pt = v.AsTime()
		return nil
	}
	return badMember("TON", name)
}

// tofFB is the off-delay timer: Q falls PT after IN falls.
type tofFB struct {
	in      bool
	pt      time.Duration
	q       bool
	et      time.Duration
	started time.Time
	timing  bool
}

func (t *tofFB) Invoke(in map[string]Value, now time.Time) error {
	if v, ok := in["PT"]; ok {
		t.pt = v.AsTime()
	}
	if v, ok := in["IN"]; ok {
		t.in = v.AsBool()
	}
	switch {
	case t.in:
		t.q, t.et, t.timing = true, 0, false
	case t.q && !t.timing:
		t.timing = true
		t.started = now
	case t.timing:
		t.et = now.Sub(t.started)
		if t.et >= t.pt {
			t.et = t.pt
			t.q = false
			t.timing = false
		}
	}
	return nil
}

func (t *tofFB) Member(name string) (Value, error) {
	switch name {
	case "Q":
		return BoolVal(t.q), nil
	case "ET":
		return TimeVal(t.et), nil
	}
	return Value{}, badMember("TOF", name)
}

func (t *tofFB) SetMember(name string, v Value) error {
	switch name {
	case "IN":
		t.in = v.AsBool()
		return nil
	case "PT":
		t.pt = v.AsTime()
		return nil
	}
	return badMember("TOF", name)
}

// tpFB is the pulse timer: Q is true for PT after a rising edge on IN.
type tpFB struct {
	lastIn  bool
	pt      time.Duration
	q       bool
	et      time.Duration
	started time.Time
}

func (t *tpFB) Invoke(in map[string]Value, now time.Time) error {
	if v, ok := in["PT"]; ok {
		t.pt = v.AsTime()
	}
	cur := t.lastIn
	if v, ok := in["IN"]; ok {
		cur = v.AsBool()
	}
	rising := cur && !t.lastIn
	t.lastIn = cur
	if rising && !t.q {
		t.q = true
		t.started = now
		t.et = 0
	}
	if t.q {
		t.et = now.Sub(t.started)
		if t.et >= t.pt {
			t.et = t.pt
			t.q = false
		}
	}
	return nil
}

func (t *tpFB) Member(name string) (Value, error) {
	switch name {
	case "Q":
		return BoolVal(t.q), nil
	case "ET":
		return TimeVal(t.et), nil
	}
	return Value{}, badMember("TP", name)
}

func (t *tpFB) SetMember(name string, v Value) error {
	switch name {
	case "IN":
		return t.Invoke(map[string]Value{"IN": v}, time.Now())
	case "PT":
		t.pt = v.AsTime()
		return nil
	}
	return badMember("TP", name)
}

// rtrigFB detects rising edges.
type rtrigFB struct {
	last bool
	q    bool
}

func (t *rtrigFB) Invoke(in map[string]Value, _ time.Time) error {
	cur := t.last
	if v, ok := in["CLK"]; ok {
		cur = v.AsBool()
	}
	t.q = cur && !t.last
	t.last = cur
	return nil
}

func (t *rtrigFB) Member(name string) (Value, error) {
	if name == "Q" {
		return BoolVal(t.q), nil
	}
	return Value{}, badMember("R_TRIG", name)
}

func (t *rtrigFB) SetMember(name string, v Value) error {
	if name == "CLK" {
		return t.Invoke(map[string]Value{"CLK": v}, time.Time{})
	}
	return badMember("R_TRIG", name)
}

// ftrigFB detects falling edges.
type ftrigFB struct {
	last bool
	q    bool
	seen bool
}

func (t *ftrigFB) Invoke(in map[string]Value, _ time.Time) error {
	cur := t.last
	if v, ok := in["CLK"]; ok {
		cur = v.AsBool()
	}
	t.q = t.seen && !cur && t.last
	t.last = cur
	t.seen = true
	return nil
}

func (t *ftrigFB) Member(name string) (Value, error) {
	if name == "Q" {
		return BoolVal(t.q), nil
	}
	return Value{}, badMember("F_TRIG", name)
}

func (t *ftrigFB) SetMember(name string, v Value) error {
	if name == "CLK" {
		return t.Invoke(map[string]Value{"CLK": v}, time.Time{})
	}
	return badMember("F_TRIG", name)
}

// srFB is a set-dominant latch.
type srFB struct{ q bool }

func (t *srFB) Invoke(in map[string]Value, _ time.Time) error {
	r := false
	if v, ok := in["R"]; ok {
		r = v.AsBool()
	}
	s := false
	if v, ok := in["S1"]; ok {
		s = v.AsBool()
	} else if v, ok := in["S"]; ok {
		s = v.AsBool()
	}
	// Set dominates.
	t.q = s || (t.q && !r)
	return nil
}

func (t *srFB) Member(name string) (Value, error) {
	if name == "Q" || name == "Q1" {
		return BoolVal(t.q), nil
	}
	return Value{}, badMember("SR", name)
}

func (t *srFB) SetMember(name string, v Value) error { return badMember("SR", name) }

// rsFB is a reset-dominant latch.
type rsFB struct{ q bool }

func (t *rsFB) Invoke(in map[string]Value, _ time.Time) error {
	s := false
	if v, ok := in["S"]; ok {
		s = v.AsBool()
	}
	r := false
	if v, ok := in["R1"]; ok {
		r = v.AsBool()
	} else if v, ok := in["R"]; ok {
		r = v.AsBool()
	}
	// Reset dominates.
	t.q = (s || t.q) && !r
	return nil
}

func (t *rsFB) Member(name string) (Value, error) {
	if name == "Q" || name == "Q1" {
		return BoolVal(t.q), nil
	}
	return Value{}, badMember("RS", name)
}

func (t *rsFB) SetMember(name string, v Value) error { return badMember("RS", name) }

// ctuFB counts rising edges on CU up to PV.
type ctuFB struct {
	lastCU bool
	cv     int64
	pv     int64
	q      bool
}

func (t *ctuFB) Invoke(in map[string]Value, _ time.Time) error {
	if v, ok := in["PV"]; ok {
		t.pv = v.AsInt()
	}
	if v, ok := in["R"]; ok && v.AsBool() {
		t.cv = 0
	}
	cur := t.lastCU
	if v, ok := in["CU"]; ok {
		cur = v.AsBool()
	}
	if cur && !t.lastCU {
		t.cv++
	}
	t.lastCU = cur
	t.q = t.cv >= t.pv
	return nil
}

func (t *ctuFB) Member(name string) (Value, error) {
	switch name {
	case "Q":
		return BoolVal(t.q), nil
	case "CV":
		return IntVal(t.cv), nil
	}
	return Value{}, badMember("CTU", name)
}

func (t *ctuFB) SetMember(name string, v Value) error {
	if name == "PV" {
		t.pv = v.AsInt()
		return nil
	}
	return badMember("CTU", name)
}

// ctdFB counts down from PV on CD edges.
type ctdFB struct {
	lastCD bool
	cv     int64
	pv     int64
	q      bool
}

func (t *ctdFB) Invoke(in map[string]Value, _ time.Time) error {
	if v, ok := in["PV"]; ok {
		t.pv = v.AsInt()
	}
	if v, ok := in["LD"]; ok && v.AsBool() {
		t.cv = t.pv
	}
	cur := t.lastCD
	if v, ok := in["CD"]; ok {
		cur = v.AsBool()
	}
	if cur && !t.lastCD && t.cv > 0 {
		t.cv--
	}
	t.lastCD = cur
	t.q = t.cv <= 0
	return nil
}

func (t *ctdFB) Member(name string) (Value, error) {
	switch name {
	case "Q":
		return BoolVal(t.q), nil
	case "CV":
		return IntVal(t.cv), nil
	}
	return Value{}, badMember("CTD", name)
}

func (t *ctdFB) SetMember(name string, v Value) error {
	if name == "PV" {
		t.pv = v.AsInt()
		return nil
	}
	return badMember("CTD", name)
}
