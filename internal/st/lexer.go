// Package st implements an IEC 61131-3 Structured Text (ST) language
// interpreter: lexer, parser and a scan-cycle evaluator with the standard
// function blocks (TON/TOF/TP timers, R_TRIG/F_TRIG edge detectors, SR/RS
// latches, CTU/CTD counters).
//
// It is the language substrate of the virtual PLC (OpenPLC61850 substitute,
// §III-B): "PLC logic in Structured Text format can be uploaded to the
// OpenPLC runtime and then started". internal/plc embeds this interpreter in
// a read-inputs → execute → write-outputs scan cycle.
package st

import (
	"fmt"
	"strings"
	"time"
	"unicode"
)

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota + 1
	TokIdent
	TokKeyword
	TokIntLit
	TokRealLit
	TokTimeLit
	TokBoolLit
	TokStringLit
	TokAssign // :=
	TokOp     // + - * / < <= etc.
	TokLParen
	TokRParen
	TokLBracket
	TokRBracket
	TokSemi
	TokColon
	TokComma
	TokDot
	TokDotDot // ..
)

// Token is one lexical unit with its position for error reporting.
type Token struct {
	Kind TokenKind
	Text string // normalised: keywords and identifiers upper-cased
	Raw  string
	Int  int64
	Real float64
	Dur  time.Duration
	Line int
	Col  int
}

func (t Token) String() string {
	return fmt.Sprintf("%s@%d:%d", t.Raw, t.Line, t.Col)
}

var keywords = map[string]bool{
	"PROGRAM": true, "END_PROGRAM": true,
	"FUNCTION_BLOCK": true, "END_FUNCTION_BLOCK": true,
	"VAR": true, "VAR_INPUT": true, "VAR_OUTPUT": true, "VAR_IN_OUT": true, "END_VAR": true,
	"IF": true, "THEN": true, "ELSIF": true, "ELSE": true, "END_IF": true,
	"CASE": true, "OF": true, "END_CASE": true,
	"FOR": true, "TO": true, "BY": true, "DO": true, "END_FOR": true,
	"WHILE": true, "END_WHILE": true,
	"REPEAT": true, "UNTIL": true, "END_REPEAT": true,
	"EXIT": true, "RETURN": true,
	"AND": true, "OR": true, "XOR": true, "NOT": true, "MOD": true,
	"AT": true, "RETAIN": true, "CONSTANT": true,
}

// SyntaxError reports a lexing or parsing failure with position.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("st: %d:%d: %s", e.Line, e.Col, e.Msg)
}

func errAt(line, col int, format string, args ...any) error {
	return &SyntaxError{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// Lex tokenises ST source. Comments (* ... *) and // ... are skipped.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	n := len(src)
	advance := func(k int) {
		for j := 0; j < k && i < n; j++ {
			if src[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '(' && i+1 < n && src[i+1] == '*':
			startLine, startCol := line, col
			advance(2)
			for {
				if i+1 >= n {
					return nil, errAt(startLine, startCol, "unterminated comment")
				}
				if src[i] == '*' && src[i+1] == ')' {
					advance(2)
					break
				}
				advance(1)
			}
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				advance(1)
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			startLine, startCol := line, col
			j := i
			for j < n && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_' || src[j] == '#') {
				// '#' appears in typed literals like T#500MS and 16#FF.
				if src[j] == '#' {
					break
				}
				j++
			}
			word := src[i:j]
			upper := strings.ToUpper(word)
			// Time literal T#...
			if (upper == "T" || upper == "TIME") && j < n && src[j] == '#' {
				k := j + 1
				for k < n && (unicode.IsLetter(rune(src[k])) || unicode.IsDigit(rune(src[k])) || src[k] == '.' || src[k] == '_') {
					k++
				}
				lit := src[j+1 : k]
				d, err := parseTimeLiteral(lit)
				if err != nil {
					return nil, errAt(startLine, startCol, "bad time literal %q: %v", lit, err)
				}
				toks = append(toks, Token{Kind: TokTimeLit, Text: upper + "#" + lit, Raw: src[i:k], Dur: d, Line: startLine, Col: startCol})
				advance(k - i)
				continue
			}
			switch {
			case upper == "TRUE":
				toks = append(toks, Token{Kind: TokBoolLit, Text: "TRUE", Raw: word, Int: 1, Line: startLine, Col: startCol})
			case upper == "FALSE":
				toks = append(toks, Token{Kind: TokBoolLit, Text: "FALSE", Raw: word, Line: startLine, Col: startCol})
			case keywords[upper]:
				toks = append(toks, Token{Kind: TokKeyword, Text: upper, Raw: word, Line: startLine, Col: startCol})
			default:
				toks = append(toks, Token{Kind: TokIdent, Text: upper, Raw: word, Line: startLine, Col: startCol})
			}
			advance(j - i)
		case unicode.IsDigit(rune(c)):
			startLine, startCol := line, col
			j := i
			isReal := false
			// Base-prefixed literal 16#FF / 2#1010.
			base := 10
			digits := ""
			for j < n && unicode.IsDigit(rune(src[j])) {
				j++
			}
			if j < n && src[j] == '#' {
				baseStr := src[i:j]
				switch baseStr {
				case "2":
					base = 2
				case "8":
					base = 8
				case "16":
					base = 16
				default:
					return nil, errAt(startLine, startCol, "unsupported literal base %q", baseStr)
				}
				j++
				k := j
				for k < n && (unicode.IsDigit(rune(src[k])) || (base == 16 && isHexLetter(src[k])) || src[k] == '_') {
					k++
				}
				digits = strings.ReplaceAll(src[j:k], "_", "")
				var v int64
				for _, ch := range digits {
					v = v*int64(base) + int64(hexVal(byte(ch)))
				}
				toks = append(toks, Token{Kind: TokIntLit, Text: src[i:k], Raw: src[i:k], Int: v, Line: startLine, Col: startCol})
				advance(k - i)
				continue
			}
			if j < n && src[j] == '.' && j+1 < n && unicode.IsDigit(rune(src[j+1])) {
				isReal = true
				j++
				for j < n && unicode.IsDigit(rune(src[j])) {
					j++
				}
			}
			if j < n && (src[j] == 'e' || src[j] == 'E') {
				k := j + 1
				if k < n && (src[k] == '+' || src[k] == '-') {
					k++
				}
				if k < n && unicode.IsDigit(rune(src[k])) {
					isReal = true
					j = k
					for j < n && unicode.IsDigit(rune(src[j])) {
						j++
					}
				}
			}
			text := src[i:j]
			if isReal {
				var f float64
				if _, err := fmt.Sscanf(text, "%g", &f); err != nil {
					return nil, errAt(startLine, startCol, "bad real literal %q", text)
				}
				toks = append(toks, Token{Kind: TokRealLit, Text: text, Raw: text, Real: f, Line: startLine, Col: startCol})
			} else {
				var v int64
				if _, err := fmt.Sscanf(text, "%d", &v); err != nil {
					return nil, errAt(startLine, startCol, "bad integer literal %q", text)
				}
				toks = append(toks, Token{Kind: TokIntLit, Text: text, Raw: text, Int: v, Line: startLine, Col: startCol})
			}
			advance(j - i)
		case c == '\'':
			startLine, startCol := line, col
			j := i + 1
			for j < n && src[j] != '\'' {
				j++
			}
			if j >= n {
				return nil, errAt(startLine, startCol, "unterminated string")
			}
			toks = append(toks, Token{Kind: TokStringLit, Text: src[i+1 : j], Raw: src[i : j+1], Line: startLine, Col: startCol})
			advance(j - i + 1)
		default:
			startLine, startCol := line, col
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			emit := func(kind TokenKind, text string, width int) {
				toks = append(toks, Token{Kind: kind, Text: text, Raw: text, Line: startLine, Col: startCol})
				advance(width)
			}
			switch {
			case two == ":=":
				emit(TokAssign, ":=", 2)
			case two == "<=", two == ">=", two == "<>", two == "**":
				emit(TokOp, two, 2)
			case two == "..":
				emit(TokDotDot, "..", 2)
			case c == '+', c == '-', c == '*', c == '/', c == '<', c == '>', c == '=', c == '&':
				emit(TokOp, string(c), 1)
			case c == '(':
				emit(TokLParen, "(", 1)
			case c == ')':
				emit(TokRParen, ")", 1)
			case c == '[':
				emit(TokLBracket, "[", 1)
			case c == ']':
				emit(TokRBracket, "]", 1)
			case c == ';':
				emit(TokSemi, ";", 1)
			case c == ':':
				emit(TokColon, ":", 1)
			case c == ',':
				emit(TokComma, ",", 1)
			case c == '.':
				emit(TokDot, ".", 1)
			default:
				return nil, errAt(startLine, startCol, "unexpected character %q", string(c))
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Text: "", Line: line, Col: col})
	return toks, nil
}

func isHexLetter(c byte) bool {
	return (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return 0
}

// parseTimeLiteral parses IEC duration literals like "500ms", "1s500ms",
// "2m30s", "1h", "1d2h" (case-insensitive).
func parseTimeLiteral(s string) (time.Duration, error) {
	s = strings.ToLower(strings.ReplaceAll(s, "_", ""))
	if s == "" {
		return 0, fmt.Errorf("empty")
	}
	var total time.Duration
	i := 0
	for i < len(s) {
		j := i
		for j < len(s) && (unicode.IsDigit(rune(s[j])) || s[j] == '.') {
			j++
		}
		if j == i {
			return 0, fmt.Errorf("expected number at %q", s[i:])
		}
		var val float64
		if _, err := fmt.Sscanf(s[i:j], "%g", &val); err != nil {
			return 0, err
		}
		k := j
		for k < len(s) && unicode.IsLetter(rune(s[k])) {
			k++
		}
		unit := s[j:k]
		var mult time.Duration
		switch unit {
		case "d":
			mult = 24 * time.Hour
		case "h":
			mult = time.Hour
		case "m":
			mult = time.Minute
		case "s":
			mult = time.Second
		case "ms":
			mult = time.Millisecond
		case "us":
			mult = time.Microsecond
		case "ns":
			mult = time.Nanosecond
		default:
			return 0, fmt.Errorf("unknown unit %q", unit)
		}
		total += time.Duration(val * float64(mult))
		i = k
	}
	return total, nil
}
