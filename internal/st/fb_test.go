package st

import (
	"testing"
	"time"
)

func TestCTDCountdown(t *testing.T) {
	prog := MustParse(`
		VAR c : CTD; clk, load : BOOL; done : BOOL; left : INT; END_VAR
		c(CD := clk, LD := load, PV := 3);
		done := c.Q;
		left := c.CV;
	`)
	env, err := NewEnv(prog)
	if err != nil {
		t.Fatal(err)
	}
	// Load the preset.
	env.Set("LOAD", BoolVal(true))
	env.Step(time.Now())
	wantInt(t, env, "LEFT", 3)
	wantBool(t, env, "DONE", false)
	env.Set("LOAD", BoolVal(false))
	// Three falling/rising cycles count down to zero.
	for i := 0; i < 3; i++ {
		env.Set("CLK", BoolVal(true))
		env.Step(time.Now())
		env.Set("CLK", BoolVal(false))
		env.Step(time.Now())
	}
	wantInt(t, env, "LEFT", 0)
	wantBool(t, env, "DONE", true)
	// Does not underflow.
	env.Set("CLK", BoolVal(true))
	env.Step(time.Now())
	wantInt(t, env, "LEFT", 0)
}

func TestFBMemberErrors(t *testing.T) {
	for _, typ := range []TypeName{TypeTON, TypeTOF, TypeTP, TypeRTrig, TypeFTrig, TypeSR, TypeRS, TypeCTU, TypeCTD} {
		fb := newFB(typ)
		if fb == nil {
			t.Fatalf("newFB(%s) = nil", typ)
		}
		if _, err := fb.Member("BOGUS"); err == nil {
			t.Errorf("%s.Member(BOGUS) succeeded", typ)
		}
		if err := fb.SetMember("BOGUS", BoolVal(true)); err == nil {
			t.Errorf("%s.SetMember(BOGUS) succeeded", typ)
		}
	}
	if newFB(TypeBool) != nil {
		t.Error("newFB on scalar returned instance")
	}
}

func TestFBDirectMemberAssignment(t *testing.T) {
	// ST allows assigning FB inputs directly: t.IN := x;
	prog := MustParse(`
		VAR t : TON; q : BOOL; END_VAR
		t.PT := T#50ms;
		t.IN := TRUE;
		t(IN := TRUE);
		q := t.Q;
	`)
	env, err := NewEnv(prog)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(0, 0)
	if err := env.Step(base); err != nil {
		t.Fatal(err)
	}
	if err := env.Step(base.Add(100 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	wantBool(t, env, "Q", true)
}

func TestTONZeroPT(t *testing.T) {
	prog := MustParse(`
		VAR t : TON; q : BOOL; END_VAR
		t(IN := TRUE, PT := T#0s);
		q := t.Q;
	`)
	env, _ := NewEnv(prog)
	env.Step(time.Unix(0, 0))
	wantBool(t, env, "Q", true) // zero delay fires immediately
}

func TestSRLatchDefaultInputNames(t *testing.T) {
	// SR accepts S as an alias for S1; RS accepts R for R1.
	prog := MustParse(`
		VAR sr1 : SR; rs1 : RS; q1, q2 : BOOL; END_VAR
		sr1(S := TRUE, R := FALSE);
		rs1(S := TRUE, R := FALSE);
		q1 := sr1.Q1;
		q2 := rs1.Q1;
	`)
	env, _ := NewEnv(prog)
	env.Step(time.Now())
	wantBool(t, env, "Q1", true)
	wantBool(t, env, "Q2", true)
}

func TestTOFMembers(t *testing.T) {
	fb := newFB(TypeTOF)
	if err := fb.SetMember("PT", TimeVal(time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := fb.SetMember("IN", BoolVal(true)); err != nil {
		t.Fatal(err)
	}
	if err := fb.Invoke(map[string]Value{"IN": BoolVal(true)}, time.Now()); err != nil {
		t.Fatal(err)
	}
	q, err := fb.Member("Q")
	if err != nil || !q.AsBool() {
		t.Errorf("TOF Q = %v, %v", q, err)
	}
	if _, err := fb.Member("ET"); err != nil {
		t.Errorf("TOF ET: %v", err)
	}
}

func TestTPMemberAccess(t *testing.T) {
	fb := newFB(TypeTP)
	if err := fb.SetMember("PT", TimeVal(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := fb.SetMember("IN", BoolVal(true)); err != nil {
		t.Fatal(err)
	}
	q, err := fb.Member("Q")
	if err != nil || !q.AsBool() {
		t.Errorf("TP Q after rising edge = %v, %v", q, err)
	}
	if _, err := fb.Member("ET"); err != nil {
		t.Error(err)
	}
}

func TestCTUSetMemberPV(t *testing.T) {
	fb := newFB(TypeCTU)
	if err := fb.SetMember("PV", IntVal(2)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		fb.Invoke(map[string]Value{"CU": BoolVal(true)}, time.Time{})
		fb.Invoke(map[string]Value{"CU": BoolVal(false)}, time.Time{})
	}
	q, _ := fb.Member("Q")
	if !q.AsBool() {
		t.Error("CTU did not reach preset")
	}
	// Reset.
	fb.Invoke(map[string]Value{"R": BoolVal(true)}, time.Time{})
	cv, _ := fb.Member("CV")
	if cv.AsInt() != 0 {
		t.Errorf("CV after reset = %d", cv.AsInt())
	}
}

func TestCTDSetMemberPV(t *testing.T) {
	fb := newFB(TypeCTD)
	if err := fb.SetMember("PV", IntVal(5)); err != nil {
		t.Fatal(err)
	}
	fb.Invoke(map[string]Value{"LD": BoolVal(true)}, time.Time{})
	cv, _ := fb.Member("CV")
	if cv.AsInt() != 5 {
		t.Errorf("CV after load = %d", cv.AsInt())
	}
}
