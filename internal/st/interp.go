package st

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Runtime errors.
var (
	ErrDivideByZero = errors.New("st: division by zero")
	ErrLoopBudget   = errors.New("st: loop iteration budget exceeded")
	ErrBadMember    = errors.New("st: unknown function block member")
)

// maxLoopIterations bounds any single loop per scan, so user logic cannot
// wedge the PLC scan cycle.
const maxLoopIterations = 1_000_000

// Env is the runtime state of a program: variable values and FB instances.
type Env struct {
	vars map[string]*Value
	fbs  map[string]FB
	prog *Program
	// Now is the scan timestamp, injected by the runtime so timers advance
	// deterministically in tests.
	Now time.Time
}

// NewEnv allocates runtime state for the program: variables get their
// declared initialisers (or zero values), FB-typed variables get instances.
func NewEnv(prog *Program) (*Env, error) {
	env := &Env{
		vars: make(map[string]*Value, len(prog.Vars)),
		fbs:  make(map[string]FB),
		prog: prog,
		Now:  time.Now(),
	}
	for _, d := range prog.Vars {
		if d.Type.IsFB() {
			env.fbs[d.Name] = newFB(d.Type)
			continue
		}
		v := ZeroOf(d.Type)
		if d.Init != nil {
			iv, err := env.eval(d.Init)
			if err != nil {
				return nil, fmt.Errorf("st: initialiser of %q: %w", d.Name, err)
			}
			v = coerce(iv, d.Type)
		}
		val := v
		env.vars[d.Name] = &val
	}
	return env, nil
}

func coerce(v Value, t TypeName) Value {
	switch t {
	case TypeBool:
		return BoolVal(v.AsBool())
	case TypeReal, TypeLReal:
		return RealVal(v.AsReal())
	case TypeTime:
		return TimeVal(v.AsTime())
	default:
		return IntVal(v.AsInt())
	}
}

// Set assigns a variable (runtime input injection). Unknown names error.
func (e *Env) Set(name string, v Value) error {
	slot, ok := e.vars[name]
	if !ok {
		return fmt.Errorf("st: set of undeclared variable %q", name)
	}
	if d := e.prog.FindVar(name); d != nil {
		v = coerce(v, d.Type)
	}
	*slot = v
	return nil
}

// Get reads a variable.
func (e *Env) Get(name string) (Value, bool) {
	slot, ok := e.vars[name]
	if !ok {
		return Value{}, false
	}
	return *slot, true
}

// GetFB returns a function-block instance (for inspecting Q/ET in tests).
func (e *Env) GetFB(name string) (FB, bool) {
	fb, ok := e.fbs[name]
	return fb, ok
}

// stop signals early termination of statement execution.
type stop int

const (
	stopNone stop = iota
	stopExit
	stopReturn
)

// Step executes one scan of the program body at the given instant.
func (e *Env) Step(now time.Time) error {
	e.Now = now
	_, err := e.exec(e.prog.Body)
	return err
}

func (e *Env) exec(body []Stmt) (stop, error) {
	for _, s := range body {
		switch x := s.(type) {
		case *AssignStmt:
			v, err := e.eval(x.Value)
			if err != nil {
				return stopNone, err
			}
			if err := e.assign(x.Target, v); err != nil {
				return stopNone, err
			}
		case *IfStmt:
			cond, err := e.eval(x.Cond)
			if err != nil {
				return stopNone, err
			}
			var branch []Stmt
			if cond.AsBool() {
				branch = x.Then
			} else {
				matched := false
				for _, elif := range x.Elifs {
					c, err := e.eval(elif.Cond)
					if err != nil {
						return stopNone, err
					}
					if c.AsBool() {
						branch = elif.Body
						matched = true
						break
					}
				}
				if !matched {
					branch = x.Else
				}
			}
			if st, err := e.exec(branch); err != nil || st != stopNone {
				return st, err
			}
		case *CaseStmt:
			sel, err := e.eval(x.Selector)
			if err != nil {
				return stopNone, err
			}
			selInt := sel.AsInt()
			var branch []Stmt = x.Else
			for _, c := range x.Cases {
				for _, label := range c.Values {
					if selInt >= label.Low && selInt <= label.High {
						branch = c.Body
						goto found
					}
				}
			}
		found:
			if st, err := e.exec(branch); err != nil || st != stopNone {
				return st, err
			}
		case *ForStmt:
			from, err := e.eval(x.From)
			if err != nil {
				return stopNone, err
			}
			to, err := e.eval(x.To)
			if err != nil {
				return stopNone, err
			}
			by := int64(1)
			if x.By != nil {
				bv, err := e.eval(x.By)
				if err != nil {
					return stopNone, err
				}
				by = bv.AsInt()
			}
			if by == 0 {
				return stopNone, fmt.Errorf("st: line %d: FOR step of zero", x.Line)
			}
			slot, ok := e.vars[x.Var]
			if !ok {
				return stopNone, fmt.Errorf("st: line %d: undeclared loop variable %q", x.Line, x.Var)
			}
			iters := 0
			for i := from.AsInt(); (by > 0 && i <= to.AsInt()) || (by < 0 && i >= to.AsInt()); i += by {
				*slot = IntVal(i)
				st, err := e.exec(x.Body)
				if err != nil {
					return stopNone, err
				}
				if st == stopExit {
					break
				}
				if st == stopReturn {
					return stopReturn, nil
				}
				if iters++; iters > maxLoopIterations {
					return stopNone, fmt.Errorf("line %d: %w", x.Line, ErrLoopBudget)
				}
			}
		case *WhileStmt:
			iters := 0
			for {
				cond, err := e.eval(x.Cond)
				if err != nil {
					return stopNone, err
				}
				if !cond.AsBool() {
					break
				}
				st, err := e.exec(x.Body)
				if err != nil {
					return stopNone, err
				}
				if st == stopExit {
					break
				}
				if st == stopReturn {
					return stopReturn, nil
				}
				if iters++; iters > maxLoopIterations {
					return stopNone, fmt.Errorf("line %d: %w", x.Line, ErrLoopBudget)
				}
			}
		case *RepeatStmt:
			iters := 0
			for {
				st, err := e.exec(x.Body)
				if err != nil {
					return stopNone, err
				}
				if st == stopExit {
					break
				}
				if st == stopReturn {
					return stopReturn, nil
				}
				cond, err := e.eval(x.Until)
				if err != nil {
					return stopNone, err
				}
				if cond.AsBool() {
					break
				}
				if iters++; iters > maxLoopIterations {
					return stopNone, fmt.Errorf("line %d: %w", x.Line, ErrLoopBudget)
				}
			}
		case *FBCallStmt:
			fb, ok := e.fbs[x.Instance]
			if !ok {
				return stopNone, fmt.Errorf("st: line %d: unknown FB instance %q", x.Line, x.Instance)
			}
			inputs := make(map[string]Value, len(x.Args))
			for _, a := range x.Args {
				v, err := e.eval(a.Value)
				if err != nil {
					return stopNone, err
				}
				inputs[a.Name] = v
			}
			if err := fb.Invoke(inputs, e.Now); err != nil {
				return stopNone, fmt.Errorf("st: line %d: %s: %w", x.Line, x.Instance, err)
			}
		case *ExitStmt:
			return stopExit, nil
		case *ReturnStmt:
			return stopReturn, nil
		}
	}
	return stopNone, nil
}

func (e *Env) assign(ref VarRef, v Value) error {
	if ref.Member != "" {
		fb, ok := e.fbs[ref.Name]
		if !ok {
			return fmt.Errorf("st: line %d: unknown FB instance %q", ref.Line, ref.Name)
		}
		return fb.SetMember(ref.Member, v)
	}
	slot, ok := e.vars[ref.Name]
	if !ok {
		return fmt.Errorf("st: line %d: assignment to undeclared %q", ref.Line, ref.Name)
	}
	if d := e.prog.FindVar(ref.Name); d != nil {
		v = coerce(v, d.Type)
	}
	*slot = v
	return nil
}

func (e *Env) eval(expr Expr) (Value, error) {
	switch x := expr.(type) {
	case *Literal:
		return x.Val, nil
	case VarRef:
		if x.Member != "" {
			fb, ok := e.fbs[x.Name]
			if !ok {
				return Value{}, fmt.Errorf("st: line %d: unknown FB instance %q", x.Line, x.Name)
			}
			return fb.Member(x.Member)
		}
		slot, ok := e.vars[x.Name]
		if !ok {
			return Value{}, fmt.Errorf("st: line %d: undeclared variable %q", x.Line, x.Name)
		}
		return *slot, nil
	case *UnaryExpr:
		v, err := e.eval(x.X)
		if err != nil {
			return Value{}, err
		}
		switch x.Op {
		case "NOT":
			return BoolVal(!v.AsBool()), nil
		case "-":
			if v.Kind == KindReal {
				return RealVal(-v.Real), nil
			}
			return IntVal(-v.AsInt()), nil
		}
		return Value{}, fmt.Errorf("st: line %d: bad unary op %q", x.Line, x.Op)
	case *BinaryExpr:
		return e.evalBinary(x)
	case *CallExpr:
		return e.evalCall(x)
	}
	return Value{}, fmt.Errorf("st: unknown expression %T", expr)
}

func (e *Env) evalBinary(x *BinaryExpr) (Value, error) {
	// Short-circuit booleans.
	if x.Op == "AND" || x.Op == "OR" {
		l, err := e.eval(x.Left)
		if err != nil {
			return Value{}, err
		}
		if x.Op == "AND" && !l.AsBool() {
			return BoolVal(false), nil
		}
		if x.Op == "OR" && l.AsBool() {
			return BoolVal(true), nil
		}
		r, err := e.eval(x.Right)
		if err != nil {
			return Value{}, err
		}
		return BoolVal(r.AsBool()), nil
	}
	l, err := e.eval(x.Left)
	if err != nil {
		return Value{}, err
	}
	r, err := e.eval(x.Right)
	if err != nil {
		return Value{}, err
	}
	real := l.Kind == KindReal || r.Kind == KindReal
	timey := l.Kind == KindTime && r.Kind == KindTime
	switch x.Op {
	case "XOR":
		return BoolVal(l.AsBool() != r.AsBool()), nil
	case "+":
		if timey {
			return TimeVal(l.Dur + r.Dur), nil
		}
		if real {
			return RealVal(l.AsReal() + r.AsReal()), nil
		}
		return IntVal(l.AsInt() + r.AsInt()), nil
	case "-":
		if timey {
			return TimeVal(l.Dur - r.Dur), nil
		}
		if real {
			return RealVal(l.AsReal() - r.AsReal()), nil
		}
		return IntVal(l.AsInt() - r.AsInt()), nil
	case "*":
		if real {
			return RealVal(l.AsReal() * r.AsReal()), nil
		}
		return IntVal(l.AsInt() * r.AsInt()), nil
	case "/":
		if real {
			if r.AsReal() == 0 {
				return Value{}, fmt.Errorf("line %d: %w", x.Line, ErrDivideByZero)
			}
			return RealVal(l.AsReal() / r.AsReal()), nil
		}
		if r.AsInt() == 0 {
			return Value{}, fmt.Errorf("line %d: %w", x.Line, ErrDivideByZero)
		}
		return IntVal(l.AsInt() / r.AsInt()), nil
	case "MOD":
		if r.AsInt() == 0 {
			return Value{}, fmt.Errorf("line %d: %w", x.Line, ErrDivideByZero)
		}
		return IntVal(l.AsInt() % r.AsInt()), nil
	case "**":
		return RealVal(math.Pow(l.AsReal(), r.AsReal())), nil
	case "=":
		return BoolVal(compare(l, r) == 0), nil
	case "<>":
		return BoolVal(compare(l, r) != 0), nil
	case "<":
		return BoolVal(compare(l, r) < 0), nil
	case "<=":
		return BoolVal(compare(l, r) <= 0), nil
	case ">":
		return BoolVal(compare(l, r) > 0), nil
	case ">=":
		return BoolVal(compare(l, r) >= 0), nil
	}
	return Value{}, fmt.Errorf("st: line %d: bad operator %q", x.Line, x.Op)
}

func compare(l, r Value) int {
	if l.Kind == KindBool && r.Kind == KindBool {
		switch {
		case l.Bool == r.Bool:
			return 0
		case l.Bool:
			return 1
		default:
			return -1
		}
	}
	lf, rf := l.AsReal(), r.AsReal()
	switch {
	case lf < rf:
		return -1
	case lf > rf:
		return 1
	default:
		return 0
	}
}

func (e *Env) evalCall(x *CallExpr) (Value, error) {
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, err := e.eval(a)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	switch x.Func {
	case "ABS":
		if args[0].Kind == KindReal {
			return RealVal(math.Abs(args[0].Real)), nil
		}
		v := args[0].AsInt()
		if v < 0 {
			v = -v
		}
		return IntVal(v), nil
	case "SQRT":
		return RealVal(math.Sqrt(args[0].AsReal())), nil
	case "LN":
		return RealVal(math.Log(args[0].AsReal())), nil
	case "LOG":
		return RealVal(math.Log10(args[0].AsReal())), nil
	case "EXP":
		return RealVal(math.Exp(args[0].AsReal())), nil
	case "SIN":
		return RealVal(math.Sin(args[0].AsReal())), nil
	case "COS":
		return RealVal(math.Cos(args[0].AsReal())), nil
	case "TAN":
		return RealVal(math.Tan(args[0].AsReal())), nil
	case "MIN":
		out := args[0]
		for _, a := range args[1:] {
			if compare(a, out) < 0 {
				out = a
			}
		}
		return out, nil
	case "MAX":
		out := args[0]
		for _, a := range args[1:] {
			if compare(a, out) > 0 {
				out = a
			}
		}
		return out, nil
	case "LIMIT": // LIMIT(min, in, max)
		v := args[1]
		if compare(v, args[0]) < 0 {
			v = args[0]
		}
		if compare(v, args[2]) > 0 {
			v = args[2]
		}
		return v, nil
	case "SEL": // SEL(g, in0, in1)
		if args[0].AsBool() {
			return args[2], nil
		}
		return args[1], nil
	case "TRUNC":
		return IntVal(int64(args[0].AsReal())), nil
	case "ROUND":
		return IntVal(int64(math.Round(args[0].AsReal()))), nil
	case "INT_TO_REAL", "DINT_TO_REAL":
		return RealVal(args[0].AsReal()), nil
	case "REAL_TO_INT", "REAL_TO_DINT":
		return IntVal(int64(math.Round(args[0].AsReal()))), nil
	case "BOOL_TO_INT":
		return IntVal(args[0].AsInt()), nil
	case "INT_TO_BOOL":
		return BoolVal(args[0].AsBool()), nil
	case "TIME_TO_INT":
		return IntVal(args[0].AsInt()), nil
	case "INT_TO_TIME":
		return TimeVal(args[0].AsTime()), nil
	}
	return Value{}, fmt.Errorf("st: line %d: unknown function %q", x.Line, x.Func)
}
