package st

import "time"

// TypeName enumerates supported declared types.
type TypeName string

// Supported elementary and function-block types.
const (
	TypeBool  TypeName = "BOOL"
	TypeInt   TypeName = "INT"
	TypeDInt  TypeName = "DINT"
	TypeUInt  TypeName = "UINT"
	TypeReal  TypeName = "REAL"
	TypeLReal TypeName = "LREAL"
	TypeTime  TypeName = "TIME"
	TypeTON   TypeName = "TON"
	TypeTOF   TypeName = "TOF"
	TypeTP    TypeName = "TP"
	TypeRTrig TypeName = "R_TRIG"
	TypeFTrig TypeName = "F_TRIG"
	TypeSR    TypeName = "SR"
	TypeRS    TypeName = "RS"
	TypeCTU   TypeName = "CTU"
	TypeCTD   TypeName = "CTD"
)

// IsFB reports whether the type is a function-block type.
func (t TypeName) IsFB() bool {
	switch t {
	case TypeTON, TypeTOF, TypeTP, TypeRTrig, TypeFTrig, TypeSR, TypeRS, TypeCTU, TypeCTD:
		return true
	}
	return false
}

// VarClass distinguishes declaration sections.
type VarClass int

// Variable classes.
const (
	ClassLocal VarClass = iota + 1
	ClassInput
	ClassOutput
	ClassInOut
)

// VarDecl is one declared variable.
type VarDecl struct {
	Name    string
	Type    TypeName
	Class   VarClass
	Init    Expr   // nil when defaulted
	Address string // AT %IX0.0 binding, kept verbatim
}

// Program is a parsed POU (program organisation unit).
type Program struct {
	Name string
	Vars []VarDecl
	Body []Stmt
}

// FindVar returns the declaration of name, or nil.
func (p *Program) FindVar(name string) *VarDecl {
	for i := range p.Vars {
		if p.Vars[i].Name == name {
			return &p.Vars[i]
		}
	}
	return nil
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// AssignStmt is target := value.
type AssignStmt struct {
	Target VarRef
	Value  Expr
	Line   int
}

// IfStmt is IF/ELSIF/ELSE/END_IF.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	// Elifs are evaluated in order.
	Elifs []struct {
		Cond Expr
		Body []Stmt
	}
	Else []Stmt
	Line int
}

// CaseStmt is CASE x OF ... END_CASE.
type CaseStmt struct {
	Selector Expr
	Cases    []CaseBranch
	Else     []Stmt
	Line     int
}

// CaseBranch holds one case label list (values or ranges) and body.
type CaseBranch struct {
	Values []CaseLabel
	Body   []Stmt
}

// CaseLabel is a single value or inclusive range.
type CaseLabel struct {
	Low, High int64
	IsRange   bool
}

// ForStmt is FOR i := a TO b BY c DO ... END_FOR.
type ForStmt struct {
	Var  string
	From Expr
	To   Expr
	By   Expr // nil = 1
	Body []Stmt
	Line int
}

// WhileStmt is WHILE cond DO ... END_WHILE.
type WhileStmt struct {
	Cond Expr
	Body []Stmt
	Line int
}

// RepeatStmt is REPEAT ... UNTIL cond END_REPEAT.
type RepeatStmt struct {
	Body  []Stmt
	Until Expr
	Line  int
}

// FBCallStmt invokes a function-block instance: T1(IN := x, PT := T#1s);.
type FBCallStmt struct {
	Instance string
	Args     []FBArg
	Line     int
}

// FBArg is one named argument of an FB invocation.
type FBArg struct {
	Name  string
	Value Expr
}

// ExitStmt breaks the innermost loop.
type ExitStmt struct{ Line int }

// ReturnStmt ends the scan early.
type ReturnStmt struct{ Line int }

func (*AssignStmt) stmtNode() {}
func (*IfStmt) stmtNode()     {}
func (*CaseStmt) stmtNode()   {}
func (*ForStmt) stmtNode()    {}
func (*WhileStmt) stmtNode()  {}
func (*RepeatStmt) stmtNode() {}
func (*FBCallStmt) stmtNode() {}
func (*ExitStmt) stmtNode()   {}
func (*ReturnStmt) stmtNode() {}

// Expr is an expression node.
type Expr interface{ exprNode() }

// BinaryExpr applies Op to Left and Right.
type BinaryExpr struct {
	Op          string // + - * / MOD ** = <> < <= > >= AND OR XOR &
	Left, Right Expr
	Line        int
}

// UnaryExpr applies Op to X (NOT, unary -).
type UnaryExpr struct {
	Op   string
	X    Expr
	Line int
}

// Literal is a constant.
type Literal struct {
	Val  Value
	Line int
}

// VarRef references a variable or an FB member (dotted).
type VarRef struct {
	Name   string // base identifier, upper-case
	Member string // optional member (Q, ET, CV, ...)
	Line   int
}

// CallExpr is a standard-function call: ABS(x), MIN(a,b), ...
type CallExpr struct {
	Func string
	Args []Expr
	Line int
}

func (*BinaryExpr) exprNode() {}
func (*UnaryExpr) exprNode()  {}
func (*Literal) exprNode()    {}
func (VarRef) exprNode()      {}
func (*CallExpr) exprNode()   {}

// ValueKind tags runtime values.
type ValueKind int

// Runtime value kinds.
const (
	KindBool ValueKind = iota + 1
	KindInt
	KindReal
	KindTime
)

// Value is an ST runtime value.
type Value struct {
	Kind ValueKind
	Bool bool
	Int  int64
	Real float64
	Dur  time.Duration
}

// BoolVal builds a BOOL value.
func BoolVal(b bool) Value { return Value{Kind: KindBool, Bool: b} }

// IntVal builds an INT/DINT value.
func IntVal(i int64) Value { return Value{Kind: KindInt, Int: i} }

// RealVal builds a REAL value.
func RealVal(f float64) Value { return Value{Kind: KindReal, Real: f} }

// TimeVal builds a TIME value.
func TimeVal(d time.Duration) Value { return Value{Kind: KindTime, Dur: d} }

// AsBool coerces to bool (non-zero numerics are true).
func (v Value) AsBool() bool {
	switch v.Kind {
	case KindBool:
		return v.Bool
	case KindInt:
		return v.Int != 0
	case KindReal:
		return v.Real != 0
	case KindTime:
		return v.Dur != 0
	}
	return false
}

// AsInt coerces to int64 (reals truncate).
func (v Value) AsInt() int64 {
	switch v.Kind {
	case KindBool:
		if v.Bool {
			return 1
		}
		return 0
	case KindInt:
		return v.Int
	case KindReal:
		return int64(v.Real)
	case KindTime:
		return int64(v.Dur / time.Millisecond)
	}
	return 0
}

// AsReal coerces to float64.
func (v Value) AsReal() float64 {
	switch v.Kind {
	case KindBool:
		if v.Bool {
			return 1
		}
		return 0
	case KindInt:
		return float64(v.Int)
	case KindReal:
		return v.Real
	case KindTime:
		return float64(v.Dur) / float64(time.Millisecond)
	}
	return 0
}

// AsTime coerces to a duration (ints are milliseconds).
func (v Value) AsTime() time.Duration {
	switch v.Kind {
	case KindTime:
		return v.Dur
	case KindInt:
		return time.Duration(v.Int) * time.Millisecond
	case KindReal:
		return time.Duration(v.Real * float64(time.Millisecond))
	}
	return 0
}

// ZeroOf returns the zero value for a declared type.
func ZeroOf(t TypeName) Value {
	switch t {
	case TypeBool:
		return BoolVal(false)
	case TypeReal, TypeLReal:
		return RealVal(0)
	case TypeTime:
		return TimeVal(0)
	default:
		return IntVal(0)
	}
}
