package st

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// run parses src, steps once and returns the env.
func run(t *testing.T, src string) *Env {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Step(time.Now()); err != nil {
		t.Fatal(err)
	}
	return env
}

func wantInt(t *testing.T, env *Env, name string, want int64) {
	t.Helper()
	v, ok := env.Get(name)
	if !ok {
		t.Fatalf("variable %q missing", name)
	}
	if v.AsInt() != want {
		t.Errorf("%s = %v, want %d", name, v, want)
	}
}

func wantBool(t *testing.T, env *Env, name string, want bool) {
	t.Helper()
	v, ok := env.Get(name)
	if !ok {
		t.Fatalf("variable %q missing", name)
	}
	if v.AsBool() != want {
		t.Errorf("%s = %v, want %t", name, v, want)
	}
}

func wantReal(t *testing.T, env *Env, name string, want float64) {
	t.Helper()
	v, _ := env.Get(name)
	if diff := v.AsReal() - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("%s = %v, want %v", name, v, want)
	}
}

func TestArithmetic(t *testing.T) {
	env := run(t, `
		VAR a, b, c : INT; r : REAL; END_VAR
		a := 2 + 3 * 4;
		b := (2 + 3) * 4;
		c := 17 MOD 5;
		r := 10.0 / 4.0 + 2 ** 3;
	`)
	wantInt(t, env, "A", 14)
	wantInt(t, env, "B", 20)
	wantInt(t, env, "C", 2)
	wantReal(t, env, "R", 10.5)
}

func TestBooleansAndComparisons(t *testing.T) {
	env := run(t, `
		VAR p, q, r, s, x : BOOL; a : INT := 5; END_VAR
		p := a > 3 AND a < 10;
		q := NOT p OR FALSE;
		r := a = 5 XOR a <> 5;
		s := a >= 5 AND a <= 5;
		x := TRUE & (3 < 2);
	`)
	wantBool(t, env, "P", true)
	wantBool(t, env, "Q", false)
	wantBool(t, env, "R", true)
	wantBool(t, env, "S", true)
	wantBool(t, env, "X", false)
}

func TestIfElsifElse(t *testing.T) {
	src := `
		VAR x : INT := %d; out : INT; END_VAR
		IF x < 0 THEN out := -1;
		ELSIF x = 0 THEN out := 0;
		ELSIF x < 10 THEN out := 1;
		ELSE out := 2;
		END_IF;
	`
	for _, tc := range []struct{ in, want int64 }{{-5, -1}, {0, 0}, {5, 1}, {50, 2}} {
		env := run(t, strings.Replace(src, "%d", itoa(tc.in), 1))
		wantInt(t, env, "OUT", tc.want)
	}
}

func itoa(v int64) string {
	if v < 0 {
		return "0 - " + itoa(-v)
	}
	digits := ""
	for {
		digits = string(rune('0'+v%10)) + digits
		v /= 10
		if v == 0 {
			return digits
		}
	}
}

func TestCaseStatement(t *testing.T) {
	src := `
		VAR x : INT := %d; out : INT; END_VAR
		CASE x OF
			1: out := 10;
			2, 3: out := 20;
			4..6: out := 30;
		ELSE out := 99;
		END_CASE;
	`
	for _, tc := range []struct{ in, want int64 }{{1, 10}, {2, 20}, {3, 20}, {4, 30}, {6, 30}, {7, 99}} {
		env := run(t, strings.Replace(src, "%d", itoa(tc.in), 1))
		wantInt(t, env, "OUT", tc.want)
	}
}

func TestForLoop(t *testing.T) {
	env := run(t, `
		VAR i, sum : INT; END_VAR
		FOR i := 1 TO 10 DO sum := sum + i; END_FOR;
	`)
	wantInt(t, env, "SUM", 55)
	env = run(t, `
		VAR i, sum : INT; END_VAR
		FOR i := 10 TO 2 BY -2 DO sum := sum + i; END_FOR;
	`)
	wantInt(t, env, "SUM", 30)
}

func TestForLoopExit(t *testing.T) {
	env := run(t, `
		VAR i, sum : INT; END_VAR
		FOR i := 1 TO 100 DO
			IF i > 5 THEN EXIT; END_IF;
			sum := sum + i;
		END_FOR;
	`)
	wantInt(t, env, "SUM", 15)
}

func TestWhileAndRepeat(t *testing.T) {
	env := run(t, `
		VAR n, steps : INT; END_VAR
		n := 27;
		WHILE n > 1 DO
			IF n MOD 2 = 0 THEN n := n / 2; ELSE n := 3 * n + 1; END_IF;
			steps := steps + 1;
		END_WHILE;
	`)
	wantInt(t, env, "STEPS", 111) // Collatz length of 27
	env = run(t, `
		VAR x : INT; END_VAR
		REPEAT x := x + 1; UNTIL x >= 3 END_REPEAT;
	`)
	wantInt(t, env, "X", 3)
}

func TestReturnStopsScan(t *testing.T) {
	env := run(t, `
		VAR a, b : INT; END_VAR
		a := 1;
		RETURN;
		b := 1;
	`)
	wantInt(t, env, "A", 1)
	wantInt(t, env, "B", 0)
}

func TestStandardFunctions(t *testing.T) {
	env := run(t, `
		VAR a : INT; b, c, d : REAL; e, f : INT; g : REAL; END_VAR
		a := ABS(-7);
		b := SQRT(16.0);
		c := MAX(1.5, 2.5, 0.5);
		d := MIN(3.0, -1.0);
		e := LIMIT(0, 15, 10);
		f := SEL(TRUE, 1, 2);
		g := INT_TO_REAL(3) / 2.0;
	`)
	wantInt(t, env, "A", 7)
	wantReal(t, env, "B", 4)
	wantReal(t, env, "C", 2.5)
	wantReal(t, env, "D", -1)
	wantInt(t, env, "E", 10)
	wantInt(t, env, "F", 2)
	wantReal(t, env, "G", 1.5)
}

func TestVarInitialisers(t *testing.T) {
	env := run(t, `
		VAR a : INT := 5; b : REAL := 2.5; c : BOOL := TRUE; d : TIME := T#1s500ms; e : INT := 16#FF; END_VAR
	`)
	wantInt(t, env, "A", 5)
	wantReal(t, env, "B", 2.5)
	wantBool(t, env, "C", true)
	wantInt(t, env, "E", 255)
	v, _ := env.Get("D")
	if v.AsTime() != 1500*time.Millisecond {
		t.Errorf("D = %v", v.AsTime())
	}
}

func TestProgramWrapper(t *testing.T) {
	prog, err := Parse(`
		PROGRAM Blinker
		VAR_INPUT  in1 : BOOL; END_VAR
		VAR_OUTPUT out1 : BOOL; END_VAR
		VAR tmp : BOOL; END_VAR
		tmp := NOT in1;
		out1 := tmp;
		END_PROGRAM
	`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "BLINKER" {
		t.Errorf("name = %q", prog.Name)
	}
	if d := prog.FindVar("IN1"); d == nil || d.Class != ClassInput {
		t.Error("input class lost")
	}
	env, err := NewEnv(prog)
	if err != nil {
		t.Fatal(err)
	}
	env.Set("IN1", BoolVal(false))
	env.Step(time.Now())
	wantBool(t, env, "OUT1", true)
	env.Set("IN1", BoolVal(true))
	env.Step(time.Now())
	wantBool(t, env, "OUT1", false)
}

func TestTONTimer(t *testing.T) {
	prog := MustParse(`
		VAR t1 : TON; start : BOOL; lamp : BOOL; END_VAR
		t1(IN := start, PT := T#100ms);
		lamp := t1.Q;
	`)
	env, err := NewEnv(prog)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(0, 0)
	env.Set("START", BoolVal(true))
	env.Step(base)
	wantBool(t, env, "LAMP", false)
	env.Step(base.Add(50 * time.Millisecond))
	wantBool(t, env, "LAMP", false)
	env.Step(base.Add(120 * time.Millisecond))
	wantBool(t, env, "LAMP", true)
	// Dropping IN resets.
	env.Set("START", BoolVal(false))
	env.Step(base.Add(130 * time.Millisecond))
	wantBool(t, env, "LAMP", false)
	fb, _ := env.GetFB("T1")
	et, _ := fb.Member("ET")
	if et.AsTime() != 0 {
		t.Errorf("ET after reset = %v", et.AsTime())
	}
}

func TestTOFTimer(t *testing.T) {
	prog := MustParse(`
		VAR t1 : TOF; in1 : BOOL; out1 : BOOL; END_VAR
		t1(IN := in1, PT := T#100ms);
		out1 := t1.Q;
	`)
	env, _ := NewEnv(prog)
	base := time.Unix(0, 0)
	env.Set("IN1", BoolVal(true))
	env.Step(base)
	wantBool(t, env, "OUT1", true)
	env.Set("IN1", BoolVal(false))
	env.Step(base.Add(10 * time.Millisecond))
	wantBool(t, env, "OUT1", true) // still on during off-delay
	env.Step(base.Add(60 * time.Millisecond))
	wantBool(t, env, "OUT1", true)
	env.Step(base.Add(150 * time.Millisecond))
	wantBool(t, env, "OUT1", false)
}

func TestTPPulse(t *testing.T) {
	prog := MustParse(`
		VAR t1 : TP; trig : BOOL; out1 : BOOL; END_VAR
		t1(IN := trig, PT := T#100ms);
		out1 := t1.Q;
	`)
	env, _ := NewEnv(prog)
	base := time.Unix(0, 0)
	env.Set("TRIG", BoolVal(true))
	env.Step(base)
	wantBool(t, env, "OUT1", true)
	env.Step(base.Add(50 * time.Millisecond))
	wantBool(t, env, "OUT1", true)
	env.Step(base.Add(150 * time.Millisecond))
	wantBool(t, env, "OUT1", false)
}

func TestEdgeTriggers(t *testing.T) {
	prog := MustParse(`
		VAR rt : R_TRIG; ft : F_TRIG; clk : BOOL; rises, falls : INT; END_VAR
		rt(CLK := clk);
		ft(CLK := clk);
		IF rt.Q THEN rises := rises + 1; END_IF;
		IF ft.Q THEN falls := falls + 1; END_IF;
	`)
	env, _ := NewEnv(prog)
	pattern := []bool{false, true, true, false, true, false, false}
	for _, v := range pattern {
		env.Set("CLK", BoolVal(v))
		env.Step(time.Now())
	}
	wantInt(t, env, "RISES", 2)
	wantInt(t, env, "FALLS", 2)
}

func TestLatches(t *testing.T) {
	prog := MustParse(`
		VAR sr1 : SR; rs1 : RS; s, r : BOOL; qs, qr : BOOL; END_VAR
		sr1(S1 := s, R := r);
		rs1(S := s, R1 := r);
		qs := sr1.Q;
		qr := rs1.Q;
	`)
	env, _ := NewEnv(prog)
	step := func(s, r bool) {
		env.Set("S", BoolVal(s))
		env.Set("R", BoolVal(r))
		env.Step(time.Now())
	}
	step(true, false)
	wantBool(t, env, "QS", true)
	wantBool(t, env, "QR", true)
	step(false, false)
	wantBool(t, env, "QS", true) // latched
	wantBool(t, env, "QR", true)
	// Conflicting inputs: SR is set-dominant, RS is reset-dominant.
	step(true, true)
	wantBool(t, env, "QS", true)
	wantBool(t, env, "QR", false)
	step(false, true)
	wantBool(t, env, "QS", false)
	wantBool(t, env, "QR", false)
}

func TestCounters(t *testing.T) {
	prog := MustParse(`
		VAR c : CTU; clk : BOOL; done : BOOL; count : INT; END_VAR
		c(CU := clk, PV := 3);
		done := c.Q;
		count := c.CV;
	`)
	env, _ := NewEnv(prog)
	for i := 0; i < 3; i++ {
		env.Set("CLK", BoolVal(true))
		env.Step(time.Now())
		env.Set("CLK", BoolVal(false))
		env.Step(time.Now())
	}
	wantBool(t, env, "DONE", true)
	wantInt(t, env, "COUNT", 3)
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want error
	}{
		{"div by zero int", `VAR a : INT; END_VAR a := 1 / 0;`, ErrDivideByZero},
		{"mod by zero", `VAR a : INT; END_VAR a := 1 MOD 0;`, ErrDivideByZero},
		{"infinite while", `VAR a : INT; END_VAR WHILE TRUE DO a := a + 1; END_WHILE;`, ErrLoopBudget},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := Parse(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			env, err := NewEnv(prog)
			if err != nil {
				t.Fatal(err)
			}
			if err := env.Step(time.Now()); !errors.Is(err, tc.want) {
				t.Errorf("Step err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`VAR a : FLOAT; END_VAR`,                            // unsupported type
		`VAR a : INT; END_VAR b := 1;`,                      // undeclared assignment
		`VAR a : INT; END_VAR a := b + 1;`,                  // undeclared read
		`VAR a : INT; END_VAR a := ;`,                       // missing expr
		`VAR a : INT; END_VAR IF a THEN a := 1;`,            // unterminated IF
		`VAR a : INT; END_VAR a := FOO(1);`,                 // unknown function
		`VAR a : INT; a : INT; END_VAR`,                     // duplicate decl (needs semi)
		`VAR a : INT; END_VAR a.Q := 1;`,                    // member on non-FB
		`VAR t : TON; END_VAR t.BOGUS := 1; t(IN := TRUE);`, // static OK but runtime member fails
		`VAR a : INT; END_VAR a := ABS(1, 2);`,              // arity
		`(* unterminated`,
		`VAR a : INT := 99#1; END_VAR`, // bad base
	}
	for i, src := range cases {
		prog, err := Parse(src)
		if err != nil {
			continue // parse-time rejection is fine
		}
		env, envErr := NewEnv(prog)
		if envErr != nil {
			continue
		}
		if stepErr := env.Step(time.Now()); stepErr == nil {
			t.Errorf("case %d accepted: %q", i, src)
		}
	}
}

func TestCommentsAndCase(t *testing.T) {
	env := run(t, `
		(* block comment
		   spanning lines *)
		var A : int := 1; end_var // trailing comment
		a := A + 1; (* inline *) a := a + 1;
	`)
	wantInt(t, env, "A", 3)
}

func TestTimeLiterals(t *testing.T) {
	cases := map[string]time.Duration{
		"T#500ms":   500 * time.Millisecond,
		"T#1s":      time.Second,
		"T#1s500ms": 1500 * time.Millisecond,
		"T#2m30s":   150 * time.Second,
		"T#1h":      time.Hour,
		"T#1d2h":    26 * time.Hour,
		"TIME#10us": 10 * time.Microsecond,
	}
	for lit, want := range cases {
		prog, err := Parse(`VAR t : TIME := ` + lit + `; END_VAR`)
		if err != nil {
			t.Errorf("%s: %v", lit, err)
			continue
		}
		env, err := NewEnv(prog)
		if err != nil {
			t.Fatal(err)
		}
		v, _ := env.Get("T")
		if v.AsTime() != want {
			t.Errorf("%s = %v, want %v", lit, v.AsTime(), want)
		}
	}
}

func TestScanStatePersistsAcrossSteps(t *testing.T) {
	prog := MustParse(`VAR counter : INT; END_VAR counter := counter + 1;`)
	env, _ := NewEnv(prog)
	for i := 0; i < 5; i++ {
		if err := env.Step(time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	wantInt(t, env, "COUNTER", 5)
}

func TestLexNeverPanics(t *testing.T) {
	f := func(s string) bool {
		_, _ = Lex(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParseNeverPanics(t *testing.T) {
	f := func(s string) bool {
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestValueCoercions(t *testing.T) {
	if IntVal(5).AsReal() != 5 || !IntVal(1).AsBool() || IntVal(0).AsBool() {
		t.Error("int coercions wrong")
	}
	if RealVal(2.9).AsInt() != 2 || !RealVal(0.1).AsBool() {
		t.Error("real coercions wrong")
	}
	if BoolVal(true).AsInt() != 1 || BoolVal(true).AsReal() != 1 {
		t.Error("bool coercions wrong")
	}
	if TimeVal(time.Second).AsInt() != 1000 {
		t.Error("time->int should be milliseconds")
	}
	if IntVal(250).AsTime() != 250*time.Millisecond {
		t.Error("int->time should be milliseconds")
	}
}
