package st

import (
	"testing"
	"time"
)

func lex(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := Lex(src)
	if err != nil {
		t.Fatalf("Lex(%q): %v", src, err)
	}
	return toks
}

func TestLexBasicTokens(t *testing.T) {
	toks := lex(t, `x := (a + 3.5) * 2; // comment`)
	kinds := []TokenKind{TokIdent, TokAssign, TokLParen, TokIdent, TokOp, TokRealLit, TokRParen, TokOp, TokIntLit, TokSemi, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("tokens = %d, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d kind = %d, want %d (%s)", i, toks[i].Kind, k, toks[i].Raw)
		}
	}
}

func TestLexCaseInsensitiveKeywords(t *testing.T) {
	toks := lex(t, `If then ELSIF End_If while`)
	for i, want := range []string{"IF", "THEN", "ELSIF", "END_IF", "WHILE"} {
		if toks[i].Kind != TokKeyword || toks[i].Text != want {
			t.Errorf("token %d = %+v, want keyword %s", i, toks[i], want)
		}
	}
}

func TestLexBaseLiterals(t *testing.T) {
	cases := map[string]int64{
		"16#FF":        255,
		"16#ff":        255,
		"2#1010":       10,
		"8#17":         15,
		"16#DEAD_BEEF": 0xDEADBEEF,
	}
	for src, want := range cases {
		toks := lex(t, src)
		if toks[0].Kind != TokIntLit || toks[0].Int != want {
			t.Errorf("Lex(%q) = %+v, want %d", src, toks[0], want)
		}
	}
	if _, err := Lex("99#1"); err == nil {
		t.Error("bad base accepted")
	}
}

func TestLexScientificNotation(t *testing.T) {
	toks := lex(t, "1.5e3 2E-2 7e2")
	wants := []float64{1500, 0.02, 700}
	for i, w := range wants {
		if toks[i].Kind != TokRealLit || toks[i].Real != w {
			t.Errorf("token %d = %+v, want %g", i, toks[i], w)
		}
	}
}

func TestLexStringLiteral(t *testing.T) {
	toks := lex(t, `'hello world'`)
	if toks[0].Kind != TokStringLit || toks[0].Text != "hello world" {
		t.Errorf("string token = %+v", toks[0])
	}
	if _, err := Lex(`'unterminated`); err == nil {
		t.Error("unterminated string accepted")
	}
}

func TestLexComments(t *testing.T) {
	toks := lex(t, `a (* multi
	line (* not nested *) b // rest
	c`)
	var idents []string
	for _, tok := range toks {
		if tok.Kind == TokIdent {
			idents = append(idents, tok.Text)
		}
	}
	// The block comment ends at the first *), so "b" survives; "rest" is cut.
	if len(idents) != 3 || idents[0] != "A" || idents[1] != "B" || idents[2] != "C" {
		t.Errorf("idents = %v", idents)
	}
	if _, err := Lex("(* never closed"); err == nil {
		t.Error("unterminated comment accepted")
	}
}

func TestLexPositions(t *testing.T) {
	toks := lex(t, "a\n  b")
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("a at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("b at %d:%d", toks[1].Line, toks[1].Col)
	}
}

func TestParseTimeLiteralUnits(t *testing.T) {
	cases := map[string]time.Duration{
		"500ms":   500 * time.Millisecond,
		"1.5s":    1500 * time.Millisecond,
		"2m":      2 * time.Minute,
		"1h30m":   90 * time.Minute,
		"1d":      24 * time.Hour,
		"100us":   100 * time.Microsecond,
		"250ns":   250 * time.Nanosecond,
		"1s500ms": 1500 * time.Millisecond,
	}
	for lit, want := range cases {
		got, err := parseTimeLiteral(lit)
		if err != nil {
			t.Errorf("parseTimeLiteral(%q): %v", lit, err)
			continue
		}
		if got != want {
			t.Errorf("parseTimeLiteral(%q) = %v, want %v", lit, got, want)
		}
	}
	for _, bad := range []string{"", "xyz", "5q", "s5"} {
		if _, err := parseTimeLiteral(bad); err == nil {
			t.Errorf("parseTimeLiteral(%q) accepted", bad)
		}
	}
}

func TestLexUnexpectedCharacter(t *testing.T) {
	if _, err := Lex("a ? b"); err == nil {
		t.Error("unexpected character accepted")
	}
}

func TestSyntaxErrorFormat(t *testing.T) {
	_, err := Lex("a ? b")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Line != 1 || se.Col != 3 {
		t.Errorf("position %d:%d", se.Line, se.Col)
	}
	if se.Error() == "" {
		t.Error("empty message")
	}
}
