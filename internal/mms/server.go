package mms

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/ber"
	"repro/internal/netem"
)

// DefaultPort is the ISO transport port MMS servers listen on.
const DefaultPort = 102

// MMS error codes carried in confirmedError PDUs.
const (
	errCodeObjectNotFound   = 10
	errCodeAccessDenied     = 3
	errCodeTypeInconsistent = 7
)

// Server errors.
var (
	ErrObjectNotFound = errors.New("mms: object not found")
	ErrAccessDenied   = errors.New("mms: access denied")
	ErrServerClosed   = errors.New("mms: server closed")
)

// WriteHandler intercepts a write to a control object. Returning an error
// rejects the write with an access-denied response.
type WriteHandler func(ref ObjectReference, v Value) error

// Server is an MMS server hosting a variable tree — the network face of a
// virtual IED or PLC.
type Server struct {
	Vendor string
	Model  string

	mu        sync.RWMutex
	vars      map[ObjectReference]Value
	handlers  map[ObjectReference]WriteHandler
	readOnly  map[ObjectReference]bool
	listener  *netem.Listener
	conns     map[*netem.TCPConn]bool
	reporters map[*netem.TCPConn]bool
	closed    bool
	wg        sync.WaitGroup

	// Stats for the experiment harness.
	reads  uint64
	writes uint64
}

// NewServer returns an empty server.
func NewServer(vendor, model string) *Server {
	return &Server{
		Vendor:    vendor,
		Model:     model,
		vars:      make(map[ObjectReference]Value),
		handlers:  make(map[ObjectReference]WriteHandler),
		readOnly:  make(map[ObjectReference]bool),
		conns:     make(map[*netem.TCPConn]bool),
		reporters: make(map[*netem.TCPConn]bool),
	}
}

// Define creates or replaces a variable.
func (s *Server) Define(ref ObjectReference, v Value) {
	s.mu.Lock()
	s.vars[ref] = v
	s.mu.Unlock()
}

// DefineReadOnly creates a variable that rejects client writes.
func (s *Server) DefineReadOnly(ref ObjectReference, v Value) {
	s.mu.Lock()
	s.vars[ref] = v
	s.readOnly[ref] = true
	s.mu.Unlock()
}

// OnWrite installs a write handler for a control object. The variable is
// created with the given initial value.
func (s *Server) OnWrite(ref ObjectReference, initial Value, h WriteHandler) {
	s.mu.Lock()
	s.vars[ref] = initial
	s.handlers[ref] = h
	s.mu.Unlock()
}

// Update sets a variable's value locally (e.g. fresh measurement) without
// invoking write handlers.
func (s *Server) Update(ref ObjectReference, v Value) {
	s.mu.Lock()
	s.vars[ref] = v
	s.mu.Unlock()
}

// Get returns the current value of a variable.
func (s *Server) Get(ref ObjectReference) (Value, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.vars[ref]
	return v, ok
}

// Names returns all object references, sorted.
func (s *Server) Names() []ObjectReference {
	s.mu.RLock()
	out := make([]ObjectReference, 0, len(s.vars))
	for ref := range s.vars {
		out = append(out, ref)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats reports served read and write counts.
func (s *Server) Stats() (reads, writes uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.reads, s.writes
}

// Serve starts accepting MMS associations on the host's port. It returns
// immediately; call Close to stop.
func (s *Server) Serve(h *netem.Host, port uint16) error {
	if port == 0 {
		port = DefaultPort
	}
	ln, err := h.ListenTCP(port)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.listener = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				conn.Close()
				return
			}
			s.conns[conn] = true
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serveConn(conn)
			}()
		}
	}()
	return nil
}

// Close stops the server and tears down associations.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.listener
	conns := make([]*netem.TCPConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

// Report pushes an information report for ref to every associated client
// that completed the initiate handshake.
func (s *Server) Report(ref ObjectReference, v Value) {
	payload := encodeInfoReport(nil, ref, v)
	s.mu.RLock()
	var targets []*netem.TCPConn
	for c, ok := range s.reporters {
		if ok {
			targets = append(targets, c)
		}
	}
	s.mu.RUnlock()
	for _, c := range targets {
		_ = writeFrame(c, payload)
	}
}

func (s *Server) serveConn(conn *netem.TCPConn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		delete(s.reporters, conn)
		s.mu.Unlock()
	}()
	// Per-connection scratch: the TLV arena and one frame buffer are reused
	// across requests, so the steady-state request/response loop (a PLC's
	// per-scan reads) is allocation-light. The response PDU is encoded in
	// place after a reserved 4-byte TPKT header (the MarshalAppend pattern),
	// so each reply is built and written without an intermediate copy. Safe
	// because each pdu is fully consumed before the next decode.
	var (
		dec      ber.Decoder
		frameBuf []byte
	)
	// hdr resets the frame buffer to a TPKT header placeholder for the next
	// in-place encode; reply back-patches the length and writes the frame.
	hdr := func() []byte {
		return append(frameBuf[:0], 0x03, 0x00, 0, 0)
	}
	reply := func(frame []byte) error {
		frameBuf = frame
		if len(frame) > 0xFFFF {
			return ErrTooLarge
		}
		frame[2] = byte(len(frame) >> 8)
		frame[3] = byte(len(frame))
		_, err := conn.Write(frame)
		return err
	}
	for {
		payload, err := readFrame(conn)
		if err != nil {
			return
		}
		p, err := decodePDUArena(&dec, payload)
		if err != nil {
			return // malformed association: drop it
		}
		switch p.kind {
		case tagInitiateRequest:
			if err := reply(encodeInitiateResponse(hdr(), s.Vendor, s.Model)); err != nil {
				return
			}
			s.mu.Lock()
			s.reporters[conn] = true
			s.mu.Unlock()
		case tagConclude:
			return
		case tagConfirmedRequest:
			if err := reply(s.handleRequest(hdr(), p)); err != nil {
				return
			}
		default:
			// Responses/reports from a client make no sense; ignore.
		}
	}
}

// handleRequest appends the response PDU to dst and returns it.
func (s *Server) handleRequest(dst []byte, p pdu) []byte {
	svcTLV := p.body.Children[1]
	switch p.service {
	case svcRead:
		if len(svcTLV.Children) < 1 {
			return encodeErrorResponse(dst, p.invokeID, errCodeObjectNotFound)
		}
		ref, err := decodeObjectName(svcTLV.Children[0])
		if err != nil {
			return encodeErrorResponse(dst, p.invokeID, errCodeObjectNotFound)
		}
		s.mu.Lock()
		v, ok := s.vars[ref]
		s.reads++
		s.mu.Unlock()
		if !ok {
			return encodeErrorResponse(dst, p.invokeID, errCodeObjectNotFound)
		}
		return encodeReadResponse(dst, p.invokeID, v)

	case svcWrite:
		if len(svcTLV.Children) < 2 {
			return encodeErrorResponse(dst, p.invokeID, errCodeTypeInconsistent)
		}
		ref, err := decodeObjectName(svcTLV.Children[0])
		if err != nil {
			return encodeErrorResponse(dst, p.invokeID, errCodeObjectNotFound)
		}
		v, err := decodeValue(svcTLV.Children[1])
		if err != nil {
			return encodeErrorResponse(dst, p.invokeID, errCodeTypeInconsistent)
		}
		s.mu.Lock()
		_, exists := s.vars[ref]
		ro := s.readOnly[ref]
		handler := s.handlers[ref]
		s.mu.Unlock()
		if !exists {
			return encodeErrorResponse(dst, p.invokeID, errCodeObjectNotFound)
		}
		if ro {
			return encodeErrorResponse(dst, p.invokeID, errCodeAccessDenied)
		}
		if handler != nil {
			if err := handler(ref, v); err != nil {
				return encodeErrorResponse(dst, p.invokeID, errCodeAccessDenied)
			}
		}
		s.mu.Lock()
		s.vars[ref] = v
		s.writes++
		s.mu.Unlock()
		return encodeWriteResponse(dst, p.invokeID)

	case svcGetNameList:
		prefix := ""
		if len(svcTLV.Children) > 0 {
			prefix = svcTLV.Children[0].String()
		}
		var names []string
		for _, ref := range s.Names() {
			if prefix == "" || strings.HasPrefix(string(ref), prefix) {
				names = append(names, string(ref))
			}
		}
		return encodeGetNameListResponse(dst, p.invokeID, names)

	default:
		return encodeErrorResponse(dst, p.invokeID, errCodeObjectNotFound)
	}
}

// errorFromCode maps a wire error code back to a sentinel error.
func errorFromCode(code int64) error {
	switch code {
	case errCodeObjectNotFound:
		return ErrObjectNotFound
	case errCodeAccessDenied:
		return ErrAccessDenied
	default:
		return fmt.Errorf("mms: service error %d", code)
	}
}
