package mms

import "repro/internal/ber"

// EncodeData appends the MMS Data encoding of v to e. GOOSE and SV payloads
// (IEC 61850-8-1 / 9-2) reuse the MMS Data encoding for their dataset
// members, so the GOOSE/SV stacks share this codec.
func EncodeData(e *ber.Encoder, v Value) { encodeValue(e, v) }

// DecodeData parses one MMS Data TLV (see EncodeData).
func DecodeData(t ber.TLV) (Value, error) { return decodeValue(t) }
