// Package mms implements an MMS (Manufacturing Message Specification,
// ISO 9506) protocol stack for the cyber range, the substitute for
// libiec61850's MMS layer (§III-B).
//
// IEC 61850 uses MMS between SCADA/PLCs and IEDs for interrogation and
// control. This implementation speaks a BER-encoded, MMS-shaped wire protocol
// over the emulated network's TCP streams: initiate handshake, read, write,
// getNameList and information reports, with IEC 61850-style object references
// ("LD0/MMXU1.A.phsA"). Messages are real bytes on the wire — the false
// command injection case study (§IV-B) crafts standard-compliant PDUs with
// this same client, exactly as IEC61850bean does on the original range.
//
// The OSI lower layers (TPKT/COTP/session/presentation) are collapsed into a
// 4-byte TPKT-style framing header; DESIGN.md records this substitution.
package mms

import (
	"fmt"
	"strings"
	"time"
)

// ValueKind enumerates MMS Data alternatives used by IEC 61850.
type ValueKind int

// Value kinds, numbered after the MMS Data CHOICE context tags.
const (
	KindStructure ValueKind = iota + 1
	KindBool
	KindBitString
	KindInt
	KindUnsigned
	KindFloat
	KindString
	KindUTCTime
)

func (k ValueKind) String() string {
	switch k {
	case KindStructure:
		return "structure"
	case KindBool:
		return "boolean"
	case KindBitString:
		return "bit-string"
	case KindInt:
		return "integer"
	case KindUnsigned:
		return "unsigned"
	case KindFloat:
		return "floating-point"
	case KindString:
		return "visible-string"
	case KindUTCTime:
		return "utc-time"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Value is one MMS data value.
type Value struct {
	Kind   ValueKind
	Bool   bool
	Int    int64
	Uint   uint64
	Float  float64
	Str    string
	Bits   []byte
	NBits  int
	Time   time.Time
	Fields []Value // for KindStructure
}

// Bool returns a boolean value.
func NewBool(v bool) Value { return Value{Kind: KindBool, Bool: v} }

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{Kind: KindInt, Int: v} }

// NewUnsigned returns an unsigned value.
func NewUnsigned(v uint64) Value { return Value{Kind: KindUnsigned, Uint: v} }

// NewFloat returns a floating-point value.
func NewFloat(v float64) Value { return Value{Kind: KindFloat, Float: v} }

// NewString returns a visible-string value.
func NewString(v string) Value { return Value{Kind: KindString, Str: v} }

// NewBitString returns a bit-string value.
func NewBitString(bits []byte, nbits int) Value {
	return Value{Kind: KindBitString, Bits: bits, NBits: nbits}
}

// NewUTCTime returns a UTC timestamp value.
func NewUTCTime(t time.Time) Value { return Value{Kind: KindUTCTime, Time: t} }

// NewStructure returns a structured value.
func NewStructure(fields ...Value) Value { return Value{Kind: KindStructure, Fields: fields} }

// Equal reports deep equality (timestamps compared at microsecond grain,
// matching the wire format's fraction precision).
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindBool:
		return v.Bool == o.Bool
	case KindInt:
		return v.Int == o.Int
	case KindUnsigned:
		return v.Uint == o.Uint
	case KindFloat:
		return v.Float == o.Float
	case KindString:
		return v.Str == o.Str
	case KindBitString:
		if v.NBits != o.NBits || len(v.Bits) != len(o.Bits) {
			return false
		}
		for i := range v.Bits {
			if v.Bits[i] != o.Bits[i] {
				return false
			}
		}
		return true
	case KindUTCTime:
		return v.Time.Truncate(time.Microsecond).Equal(o.Time.Truncate(time.Microsecond))
	case KindStructure:
		if len(v.Fields) != len(o.Fields) {
			return false
		}
		for i := range v.Fields {
			if !v.Fields[i].Equal(o.Fields[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

func (v Value) String() string {
	switch v.Kind {
	case KindBool:
		return fmt.Sprintf("%t", v.Bool)
	case KindInt:
		return fmt.Sprintf("%d", v.Int)
	case KindUnsigned:
		return fmt.Sprintf("%du", v.Uint)
	case KindFloat:
		return fmt.Sprintf("%g", v.Float)
	case KindString:
		return fmt.Sprintf("%q", v.Str)
	case KindBitString:
		return fmt.Sprintf("bits(%d)", v.NBits)
	case KindUTCTime:
		return v.Time.UTC().Format(time.RFC3339Nano)
	case KindStructure:
		parts := make([]string, len(v.Fields))
		for i, f := range v.Fields {
			parts[i] = f.String()
		}
		return "{" + strings.Join(parts, ", ") + "}"
	default:
		return "<invalid>"
	}
}

// ObjectReference is an IEC 61850-style reference "LDName/LNName.DO.DA".
type ObjectReference string

// Split returns the domain (logical device) and item parts.
func (r ObjectReference) Split() (domain, item string) {
	s := string(r)
	if i := strings.IndexByte(s, '/'); i >= 0 {
		return s[:i], s[i+1:]
	}
	return "", s
}

// Valid reports whether the reference has both domain and item parts.
func (r ObjectReference) Valid() bool {
	d, item := r.Split()
	return d != "" && item != ""
}
