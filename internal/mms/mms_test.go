package mms

import (
	"errors"
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netem"
)

// testPair builds a started LAN with a server host and a client host.
func testPair(t *testing.T) (*netem.Host, *netem.Host) {
	t.Helper()
	n := netem.NewNetwork()
	if _, err := netem.NewSwitch(n, "sw", 4); err != nil {
		t.Fatal(err)
	}
	srv, err := netem.NewHost(n, "srv", netem.MustMAC("02:00:00:00:00:01"), netem.MustIPv4("10.0.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	cli, err := netem.NewHost(n, "cli", netem.MustMAC("02:00:00:00:00:02"), netem.MustIPv4("10.0.0.2"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Connect("srv", 0, "sw", 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Connect("cli", 0, "sw", 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)
	return srv, cli
}

func TestValueRoundTripProperty(t *testing.T) {
	check := func(v Value) bool {
		payload := encodeReadResponse(nil, 7, v)
		p, err := decodePDU(payload)
		if err != nil {
			return false
		}
		got, err := decodeValue(p.body.Children[1].Children[0])
		return err == nil && got.Equal(v)
	}
	f := func(b bool, i int64, fl float64, s string, u uint64) bool {
		if math.IsNaN(fl) {
			fl = 0
		}
		vals := []Value{
			NewBool(b), NewInt(i), NewFloat(fl), NewString(s), NewUnsigned(u),
			NewStructure(NewBool(b), NewStructure(NewInt(i), NewFloat(fl))),
			NewBitString([]byte{0xF0}, 4),
		}
		for _, v := range vals {
			if !check(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestUTCTimeValue(t *testing.T) {
	now := time.Unix(1_700_000_000, 123_456_000).UTC()
	payload := encodeReadResponse(nil, 1, NewUTCTime(now))
	p, err := decodePDU(payload)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeValue(p.body.Children[1].Children[0])
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindUTCTime {
		t.Fatalf("kind = %v", got.Kind)
	}
	if d := got.Time.Sub(now); d < -time.Microsecond || d > time.Microsecond {
		t.Errorf("time drift %v", d)
	}
}

func TestObjectReference(t *testing.T) {
	r := ObjectReference("LD0/MMXU1.A.phsA")
	d, i := r.Split()
	if d != "LD0" || i != "MMXU1.A.phsA" {
		t.Errorf("split = %q / %q", d, i)
	}
	if !r.Valid() {
		t.Error("valid ref reported invalid")
	}
	if ObjectReference("nodomain").Valid() {
		t.Error("domainless ref reported valid")
	}
}

func TestReadWriteEndToEnd(t *testing.T) {
	srvHost, cliHost := testPair(t)
	srv := NewServer("SGML", "vIED-1")
	srv.Define("LD0/MMXU1.A.phsA", NewFloat(0.150))
	srv.DefineReadOnly("LD0/LLN0.NamPlt", NewString("GIED1"))
	if err := srv.Serve(srvHost, 0); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := Dial(cliHost, srvHost.IP(), 0, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if vendor, model := cli.PeerIdentity(); vendor != "SGML" || model != "vIED-1" {
		t.Errorf("identity = %q/%q", vendor, model)
	}
	v, err := cli.Read("LD0/MMXU1.A.phsA")
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != KindFloat || v.Float != 0.150 {
		t.Errorf("read = %v", v)
	}
	// Server-side update is visible on next read.
	srv.Update("LD0/MMXU1.A.phsA", NewFloat(0.175))
	v, err = cli.Read("LD0/MMXU1.A.phsA")
	if err != nil {
		t.Fatal(err)
	}
	if v.Float != 0.175 {
		t.Errorf("read after update = %v", v)
	}
	// Client write round-trips.
	if err := cli.Write("LD0/MMXU1.A.phsA", NewFloat(9.9)); err != nil {
		t.Fatal(err)
	}
	if got, _ := srv.Get("LD0/MMXU1.A.phsA"); got.Float != 9.9 {
		t.Errorf("server value after write = %v", got)
	}
	reads, writes := srv.Stats()
	if reads != 2 || writes != 1 {
		t.Errorf("stats = %d reads, %d writes", reads, writes)
	}
}

func TestErrorResponses(t *testing.T) {
	srvHost, cliHost := testPair(t)
	srv := NewServer("SGML", "vIED")
	srv.DefineReadOnly("LD0/LLN0.NamPlt", NewString("x"))
	if err := srv.Serve(srvHost, 0); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(cliHost, srvHost.IP(), 0, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if _, err := cli.Read("LD0/Ghost"); !errors.Is(err, ErrObjectNotFound) {
		t.Errorf("read ghost err = %v", err)
	}
	if err := cli.Write("LD0/Ghost", NewInt(1)); !errors.Is(err, ErrObjectNotFound) {
		t.Errorf("write ghost err = %v", err)
	}
	if err := cli.Write("LD0/LLN0.NamPlt", NewString("hax")); !errors.Is(err, ErrAccessDenied) {
		t.Errorf("write read-only err = %v", err)
	}
}

func TestWriteHandlerControl(t *testing.T) {
	srvHost, cliHost := testPair(t)
	srv := NewServer("SGML", "vIED")
	var mu sync.Mutex
	var commands []bool
	srv.OnWrite("LD0/XCBR1.Pos.Oper", NewBool(true), func(_ ObjectReference, v Value) error {
		if v.Kind != KindBool {
			return errors.New("bad type")
		}
		mu.Lock()
		commands = append(commands, v.Bool)
		mu.Unlock()
		return nil
	})
	if err := srv.Serve(srvHost, 0); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(cliHost, srvHost.IP(), 0, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if err := cli.Write("LD0/XCBR1.Pos.Oper", NewBool(false)); err != nil {
		t.Fatal(err)
	}
	// Handler rejection surfaces as access denied.
	if err := cli.Write("LD0/XCBR1.Pos.Oper", NewInt(42)); !errors.Is(err, ErrAccessDenied) {
		t.Errorf("rejected write err = %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(commands) != 1 || commands[0] != false {
		t.Errorf("commands = %v", commands)
	}
}

func TestGetNameList(t *testing.T) {
	srvHost, cliHost := testPair(t)
	srv := NewServer("SGML", "vIED")
	srv.Define("LD0/MMXU1.A.phsA", NewFloat(1))
	srv.Define("LD0/MMXU1.PhV.phsA", NewFloat(1))
	srv.Define("LD1/XCBR1.Pos.stVal", NewBool(true))
	if err := srv.Serve(srvHost, 0); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(cliHost, srvHost.IP(), 0, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	all, err := cli.GetNameList("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Errorf("all names = %v", all)
	}
	ld0, err := cli.GetNameList("LD0/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ld0) != 2 {
		t.Errorf("LD0 names = %v", ld0)
	}
}

func TestInformationReports(t *testing.T) {
	srvHost, cliHost := testPair(t)
	srv := NewServer("SGML", "vIED")
	srv.Define("LD0/PTOC1.Op.general", NewBool(false))
	if err := srv.Serve(srvHost, 0); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	got := make(chan Value, 1)
	cli, err := Dial(cliHost, srvHost.IP(), 0, DialOptions{
		OnReport: func(ref ObjectReference, v Value) {
			if ref == "LD0/PTOC1.Op.general" {
				got <- v
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	srv.Report("LD0/PTOC1.Op.general", NewBool(true))
	select {
	case v := <-got:
		if !v.Bool {
			t.Error("report value false")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no report delivered")
	}
}

func TestConcurrentClients(t *testing.T) {
	srvHost, cliHost := testPair(t)
	srv := NewServer("SGML", "vIED")
	srv.Define("LD0/MMXU1.A.phsA", NewFloat(1))
	if err := srv.Serve(srvHost, 0); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli, err := Dial(cliHost, srvHost.IP(), 0, DialOptions{})
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			for j := 0; j < 10; j++ {
				if _, err := cli.Read("LD0/MMXU1.A.phsA"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestServerCloseTerminatesAssociations(t *testing.T) {
	srvHost, cliHost := testPair(t)
	srv := NewServer("SGML", "vIED")
	srv.Define("LD0/X.v", NewInt(1))
	if err := srv.Serve(srvHost, 0); err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(cliHost, srvHost.IP(), 0, DialOptions{Timeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	srv.Close()
	if _, err := cli.Read("LD0/X.v"); err == nil {
		t.Error("read succeeded after server close")
	}
	// Serve after close is rejected.
	if err := srv.Serve(srvHost, 1102); !errors.Is(err, ErrServerClosed) {
		t.Errorf("Serve after close = %v", err)
	}
}

func TestDialErrors(t *testing.T) {
	srvHost, cliHost := testPair(t)
	_ = srvHost
	if _, err := Dial(cliHost, srvHost.IP(), 555, DialOptions{Timeout: 200 * time.Millisecond}); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestDecodePDUErrors(t *testing.T) {
	bad := [][]byte{
		nil,
		{0xA0, 0x00},             // confirmed request without invokeID
		{0xFF, 0x01, 0x00},       // unknown tag
		{0x02, 0x01, 0x05, 0xFF}, // trailing bytes
	}
	for _, b := range bad {
		if _, err := decodePDU(b); err == nil {
			t.Errorf("decodePDU(%x) succeeded", b)
		}
	}
}

func TestFramingErrors(t *testing.T) {
	srvHost, cliHost := testPair(t)
	// A raw TCP client sending garbage must not wedge the server.
	srv := NewServer("SGML", "vIED")
	srv.Define("LD0/X.v", NewInt(1))
	if err := srv.Serve(srvHost, 0); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := cliHost.DialTCP(srvHost.IP(), DefaultPort)
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte{0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02})
	conn.Close()
	// A fresh legitimate association still works.
	cli, err := Dial(cliHost, srvHost.IP(), 0, DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Read("LD0/X.v"); err != nil {
		t.Error(err)
	}
}
