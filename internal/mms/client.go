package mms

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/netem"
)

// Client errors.
var (
	ErrTimeout      = errors.New("mms: request timeout")
	ErrClientClosed = errors.New("mms: client closed")
	ErrNoInitiate   = errors.New("mms: association not initiated")
)

// ReportHandler receives unsolicited information reports.
type ReportHandler func(ref ObjectReference, v Value)

// Client is an MMS client association, used by SCADA, PLCs — and attackers
// injecting false commands (§IV-B).
type Client struct {
	mu         sync.Mutex
	conn       *netem.TCPConn
	nextID     uint32
	pending    map[uint32]chan pdu
	onReport   ReportHandler
	closed     bool
	timeout    time.Duration
	vendor     string
	peerVendor string
	peerModel  string
	readerDone chan struct{}
}

// DialOptions tunes the client.
type DialOptions struct {
	Timeout  time.Duration // per-request; default 2 s
	Vendor   string        // reported in initiate; default "sgml-client"
	OnReport ReportHandler
}

// Dial opens a TCP association from the host and performs the MMS initiate
// handshake.
func Dial(h *netem.Host, ip netem.IPv4, port uint16, opts DialOptions) (*Client, error) {
	if port == 0 {
		port = DefaultPort
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 2 * time.Second
	}
	if opts.Vendor == "" {
		opts.Vendor = "sgml-client"
	}
	conn, err := h.DialTCP(ip, port)
	if err != nil {
		return nil, fmt.Errorf("mms: dial %s:%d: %w", ip, port, err)
	}
	c := &Client{
		conn:       conn,
		pending:    make(map[uint32]chan pdu),
		onReport:   opts.OnReport,
		timeout:    opts.Timeout,
		vendor:     opts.Vendor,
		readerDone: make(chan struct{}),
	}
	// Initiate handshake happens before the reader goroutine owns the conn.
	if err := writeFrame(conn, encodeInitiateRequest(nil, opts.Vendor)); err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetReadDeadline(time.Now().Add(opts.Timeout))
	payload, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("%w: initiate: %v", ErrNoInitiate, err)
	}
	p, err := decodePDU(payload)
	if err != nil || p.kind != tagInitiateResponse {
		conn.Close()
		return nil, fmt.Errorf("%w: unexpected initiate response", ErrNoInitiate)
	}
	if len(p.body.Children) >= 3 {
		c.peerVendor = p.body.Children[1].String()
		c.peerModel = p.body.Children[2].String()
	}
	conn.SetReadDeadline(time.Time{})
	go c.readLoop()
	return c, nil
}

// PeerIdentity returns the server's vendor and model from the initiate
// response.
func (c *Client) PeerIdentity() (vendor, model string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peerVendor, c.peerModel
}

func (c *Client) readLoop() {
	defer close(c.readerDone)
	for {
		payload, err := readFrame(c.conn)
		if err != nil {
			c.failAll()
			return
		}
		p, err := decodePDU(payload)
		if err != nil {
			continue // tolerate garbage mid-association (tampering experiments)
		}
		switch p.kind {
		case tagConfirmedResponse, tagConfirmedError:
			c.mu.Lock()
			ch := c.pending[p.invokeID]
			delete(c.pending, p.invokeID)
			c.mu.Unlock()
			if ch != nil {
				ch <- p
			}
		case tagUnconfirmed:
			c.deliverReport(p)
		}
	}
}

func (c *Client) deliverReport(p pdu) {
	c.mu.Lock()
	h := c.onReport
	c.mu.Unlock()
	if h == nil || len(p.body.Children) == 0 {
		return
	}
	svc := p.body.Children[0]
	if len(svc.Children) < 2 {
		return
	}
	ref, err := decodeObjectName(svc.Children[0])
	if err != nil {
		return
	}
	v, err := decodeValue(svc.Children[1])
	if err != nil {
		return
	}
	h(ref, v)
}

func (c *Client) failAll() {
	c.mu.Lock()
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch)
	}
	c.mu.Unlock()
}

// roundTrip sends a confirmed request and waits for its response.
func (c *Client) roundTrip(id uint32, payload []byte) (pdu, error) {
	ch := make(chan pdu, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return pdu{}, ErrClientClosed
	}
	c.pending[id] = ch
	c.mu.Unlock()

	if err := writeFrame(c.conn, payload); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return pdu{}, err
	}
	select {
	case p, ok := <-ch:
		if !ok {
			return pdu{}, ErrClientClosed
		}
		if p.kind == tagConfirmedError {
			return pdu{}, errorFromCode(p.errCode)
		}
		return p, nil
	case <-time.After(c.timeout):
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return pdu{}, ErrTimeout
	}
}

func (c *Client) allocID() uint32 {
	c.mu.Lock()
	c.nextID++
	id := c.nextID
	c.mu.Unlock()
	return id
}

// Read fetches the value of an object.
func (c *Client) Read(ref ObjectReference) (Value, error) {
	id := c.allocID()
	p, err := c.roundTrip(id, encodeReadRequest(nil, id, ref))
	if err != nil {
		return Value{}, fmt.Errorf("mms: read %s: %w", ref, err)
	}
	svc := p.body.Children[1]
	if len(svc.Children) < 1 {
		return Value{}, fmt.Errorf("mms: read %s: %w", ref, ErrBadPDU)
	}
	v, err := decodeValue(svc.Children[0])
	if err != nil {
		return Value{}, fmt.Errorf("mms: read %s: %w", ref, err)
	}
	return v, nil
}

// Write sets the value of an object (the control primitive: a breaker-open
// command is a Write to the XCBR Pos.Oper object).
func (c *Client) Write(ref ObjectReference, v Value) error {
	id := c.allocID()
	if _, err := c.roundTrip(id, encodeWriteRequest(nil, id, ref, v)); err != nil {
		return fmt.Errorf("mms: write %s: %w", ref, err)
	}
	return nil
}

// GetNameList lists object references, optionally filtered by prefix.
func (c *Client) GetNameList(prefix string) ([]string, error) {
	id := c.allocID()
	p, err := c.roundTrip(id, encodeGetNameListRequest(nil, id, prefix))
	if err != nil {
		return nil, fmt.Errorf("mms: getNameList: %w", err)
	}
	svc := p.body.Children[1]
	names := make([]string, 0, len(svc.Children))
	for _, child := range svc.Children {
		names = append(names, child.String())
	}
	return names, nil
}

// Close concludes the association.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	_ = writeFrame(c.conn, encodeConclude(nil))
	err := c.conn.Close()
	select {
	case <-c.readerDone:
	case <-time.After(time.Second):
	}
	return err
}
