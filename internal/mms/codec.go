package mms

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/ber"
)

// PDU type tags (context-specific constructed, after the MMS PDU CHOICE).
const (
	tagConfirmedRequest  = 0xA0 // [0]
	tagConfirmedResponse = 0xA1 // [1]
	tagConfirmedError    = 0xA2 // [2]
	tagUnconfirmed       = 0xA3 // [3]
	tagInitiateRequest   = 0xA8 // [8]
	tagInitiateResponse  = 0xA9 // [9]
	tagConclude          = 0xAB // [11]
)

// Service tags within a confirmed request/response.
const (
	svcGetNameList = 0x01
	svcRead        = 0x04
	svcWrite       = 0x05
	svcInfoReport  = 0x00 // within unconfirmed PDU
)

// Data CHOICE tags (context-specific), following MMS Data encoding.
const (
	dataStructure = 0xA2 // [2] constructed
	dataBool      = 0x83 // [3]
	dataBitString = 0x84 // [4]
	dataInt       = 0x85 // [5]
	dataUnsigned  = 0x86 // [6]
	dataFloat     = 0x87 // [7]
	dataString    = 0x8A // [10]
	dataUTCTime   = 0x91 // [17]
)

// Codec errors.
var (
	ErrFraming  = errors.New("mms: bad framing")
	ErrBadPDU   = errors.New("mms: malformed PDU")
	ErrTooLarge = errors.New("mms: message exceeds maximum size")
)

// maxMessage bounds a single MMS message (framing sanity limit).
const maxMessage = 1 << 20

// pdu is a decoded MMS message.
type pdu struct {
	kind     byte // one of the tag* constants
	invokeID uint32
	service  byte // for confirmed PDUs
	body     ber.TLV
	errCode  int64 // for confirmedError
}

// writeFrame writes a TPKT-style frame: version 3, reserved 0, 16-bit length
// (including the 4-byte header).
func writeFrame(w io.Writer, payload []byte) error {
	_, err := writeFrameReuse(w, nil, payload)
	return err
}

// writeFrameReuse is writeFrame with a caller-owned assembly buffer: the
// frame is built in scratch (grown as needed) and the buffer is returned for
// reuse, so a connection's steady-state response path allocates nothing. The
// TCP stack copies written bytes into segments, so reuse is safe.
func writeFrameReuse(w io.Writer, scratch, payload []byte) ([]byte, error) {
	if len(payload)+4 > 0xFFFF {
		return scratch, ErrTooLarge
	}
	// One buffer, one Write: keeps header and PDU in a single TCP segment,
	// which both halves segment count and lets passive monitors (the IDS)
	// parse frames without stream reassembly.
	buf := append(scratch[:0], 0x03, 0x00,
		byte((len(payload)+4)>>8), byte(len(payload)+4))
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	return buf, err
}

// readFrame reads one TPKT-style frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] != 0x03 {
		return nil, fmt.Errorf("%w: version 0x%02x", ErrFraming, hdr[0])
	}
	total := int(binary.BigEndian.Uint16(hdr[2:]))
	if total < 4 || total > maxMessage {
		return nil, fmt.Errorf("%w: length %d", ErrFraming, total)
	}
	payload := make([]byte, total-4)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// encodeValue appends the MMS Data encoding of v.
func encodeValue(e *ber.Encoder, v Value) {
	switch v.Kind {
	case KindBool:
		e.AppendBool(dataBool, v.Bool)
	case KindInt:
		e.AppendInt(dataInt, v.Int)
	case KindUnsigned:
		e.AppendUint(dataUnsigned, v.Uint)
	case KindFloat:
		e.AppendFloat64(dataFloat, v.Float)
	case KindString:
		e.AppendString(dataString, v.Str)
	case KindBitString:
		e.AppendBitString(dataBitString, v.Bits, v.NBits)
	case KindUTCTime:
		e.AppendUTCTime(dataUTCTime, v.Time.Unix(), int64(v.Time.Nanosecond()))
	case KindStructure:
		e.AppendConstructed(dataStructure, func(inner *ber.Encoder) {
			for _, f := range v.Fields {
				encodeValue(inner, f)
			}
		})
	}
}

// decodeValue parses one MMS Data TLV.
func decodeValue(t ber.TLV) (Value, error) {
	switch t.Tag {
	case dataBool:
		b, err := t.Bool()
		if err != nil {
			return Value{}, err
		}
		return NewBool(b), nil
	case dataInt:
		i, err := t.Int()
		if err != nil {
			return Value{}, err
		}
		return NewInt(i), nil
	case dataUnsigned:
		u, err := t.Uint()
		if err != nil {
			return Value{}, err
		}
		return NewUnsigned(u), nil
	case dataFloat:
		f, err := t.Float64()
		if err != nil {
			return Value{}, err
		}
		return NewFloat(f), nil
	case dataString:
		return NewString(t.String()), nil
	case dataBitString:
		bits, n, err := t.BitString()
		if err != nil {
			return Value{}, err
		}
		return NewBitString(append([]byte(nil), bits...), n), nil
	case dataUTCTime:
		sec, nanos, err := t.UTCTime()
		if err != nil {
			return Value{}, err
		}
		return NewUTCTime(time.Unix(sec, nanos).UTC()), nil
	case dataStructure:
		out := Value{Kind: KindStructure}
		for _, c := range t.Children {
			f, err := decodeValue(c)
			if err != nil {
				return Value{}, err
			}
			out.Fields = append(out.Fields, f)
		}
		return out, nil
	default:
		return Value{}, fmt.Errorf("%w: data tag 0x%02x", ErrBadPDU, t.Tag)
	}
}

// encodeObjectName appends a domain-specific object name: [1] { domainID,
// itemID } as visible strings.
func encodeObjectName(e *ber.Encoder, ref ObjectReference) {
	domain, item := ref.Split()
	e.AppendConstructed(ber.ContextConstructed(1), func(inner *ber.Encoder) {
		inner.AppendString(ber.ContextTag(0), domain)
		inner.AppendString(ber.ContextTag(1), item)
	})
}

func decodeObjectName(t ber.TLV) (ObjectReference, error) {
	if t.Tag != ber.ContextConstructed(1) || len(t.Children) != 2 {
		return "", fmt.Errorf("%w: object name tag 0x%02x", ErrBadPDU, t.Tag)
	}
	return ObjectReference(t.Children[0].String() + "/" + t.Children[1].String()), nil
}

// --- request/response builders -------------------------------------------
//
// Every builder is a MarshalAppend-style fast path: it appends the encoded
// PDU to dst and returns the extended buffer, so callers that reuse a
// scratch buffer (the server's per-connection response path) encode without
// allocating. Pass nil for a one-shot encode.

func encodeInitiateRequest(dst []byte, vendor string) []byte {
	var e ber.Encoder
	e.UseBuf(dst)
	e.AppendConstructed(tagInitiateRequest, func(inner *ber.Encoder) {
		inner.AppendInt(ber.ContextTag(0), maxMessage)
		inner.AppendString(ber.ContextTag(1), vendor)
	})
	return e.Bytes()
}

func encodeInitiateResponse(dst []byte, vendor, model string) []byte {
	var e ber.Encoder
	e.UseBuf(dst)
	e.AppendConstructed(tagInitiateResponse, func(inner *ber.Encoder) {
		inner.AppendInt(ber.ContextTag(0), maxMessage)
		inner.AppendString(ber.ContextTag(1), vendor)
		inner.AppendString(ber.ContextTag(2), model)
	})
	return e.Bytes()
}

func encodeReadRequest(dst []byte, invokeID uint32, ref ObjectReference) []byte {
	var e ber.Encoder
	e.UseBuf(dst)
	e.AppendConstructed(tagConfirmedRequest, func(inner *ber.Encoder) {
		inner.AppendUint(0x02, uint64(invokeID)) // universal INTEGER invokeID
		inner.AppendConstructed(ber.ContextConstructed(svcRead), func(svc *ber.Encoder) {
			encodeObjectName(svc, ref)
		})
	})
	return e.Bytes()
}

func encodeReadResponse(dst []byte, invokeID uint32, v Value) []byte {
	var e ber.Encoder
	e.UseBuf(dst)
	e.AppendConstructed(tagConfirmedResponse, func(inner *ber.Encoder) {
		inner.AppendUint(0x02, uint64(invokeID))
		inner.AppendConstructed(ber.ContextConstructed(svcRead), func(svc *ber.Encoder) {
			encodeValue(svc, v)
		})
	})
	return e.Bytes()
}

func encodeWriteRequest(dst []byte, invokeID uint32, ref ObjectReference, v Value) []byte {
	var e ber.Encoder
	e.UseBuf(dst)
	e.AppendConstructed(tagConfirmedRequest, func(inner *ber.Encoder) {
		inner.AppendUint(0x02, uint64(invokeID))
		inner.AppendConstructed(ber.ContextConstructed(svcWrite), func(svc *ber.Encoder) {
			encodeObjectName(svc, ref)
			encodeValue(svc, v)
		})
	})
	return e.Bytes()
}

func encodeWriteResponse(dst []byte, invokeID uint32) []byte {
	var e ber.Encoder
	e.UseBuf(dst)
	e.AppendConstructed(tagConfirmedResponse, func(inner *ber.Encoder) {
		inner.AppendUint(0x02, uint64(invokeID))
		inner.AppendConstructed(ber.ContextConstructed(svcWrite), func(svc *ber.Encoder) {
			svc.AppendBool(ber.ContextTag(0), true) // success
		})
	})
	return e.Bytes()
}

func encodeGetNameListRequest(dst []byte, invokeID uint32, domain string) []byte {
	var e ber.Encoder
	e.UseBuf(dst)
	e.AppendConstructed(tagConfirmedRequest, func(inner *ber.Encoder) {
		inner.AppendUint(0x02, uint64(invokeID))
		inner.AppendConstructed(ber.ContextConstructed(svcGetNameList), func(svc *ber.Encoder) {
			svc.AppendString(ber.ContextTag(0), domain)
		})
	})
	return e.Bytes()
}

func encodeGetNameListResponse(dst []byte, invokeID uint32, names []string) []byte {
	var e ber.Encoder
	e.UseBuf(dst)
	e.AppendConstructed(tagConfirmedResponse, func(inner *ber.Encoder) {
		inner.AppendUint(0x02, uint64(invokeID))
		inner.AppendConstructed(ber.ContextConstructed(svcGetNameList), func(svc *ber.Encoder) {
			for _, name := range names {
				svc.AppendString(ber.ContextTag(0), name)
			}
		})
	})
	return e.Bytes()
}

func encodeErrorResponse(dst []byte, invokeID uint32, code int64) []byte {
	var e ber.Encoder
	e.UseBuf(dst)
	e.AppendConstructed(tagConfirmedError, func(inner *ber.Encoder) {
		inner.AppendUint(0x02, uint64(invokeID))
		inner.AppendInt(ber.ContextTag(0), code)
	})
	return e.Bytes()
}

// encodeInfoReport builds an unconfirmed information report carrying a named
// variable and its value (IEC 61850 report semantics, simplified).
func encodeInfoReport(dst []byte, ref ObjectReference, v Value) []byte {
	var e ber.Encoder
	e.UseBuf(dst)
	e.AppendConstructed(tagUnconfirmed, func(inner *ber.Encoder) {
		inner.AppendConstructed(ber.ContextConstructed(svcInfoReport), func(svc *ber.Encoder) {
			encodeObjectName(svc, ref)
			encodeValue(svc, v)
		})
	})
	return e.Bytes()
}

func encodeConclude(dst []byte) []byte {
	var e ber.Encoder
	e.UseBuf(dst)
	e.AppendTLV(tagConclude, nil)
	return e.Bytes()
}

// decodePDU parses the outer PDU envelope. The returned pdu's body retains
// the decoded TLV tree, so it uses the allocating package-level decode;
// consumers that process PDUs strictly one at a time (the server's
// per-connection loop) use decodePDUArena instead.
func decodePDU(payload []byte) (pdu, error) {
	t, n, err := ber.Decode(payload)
	return finishPDU(payload, t, n, err)
}

// decodePDUArena decodes with a reusable TLV arena. The returned pdu aliases
// the decoder's arena and is only valid until d's next Decode call.
func decodePDUArena(d *ber.Decoder, payload []byte) (pdu, error) {
	t, n, err := d.Decode(payload)
	return finishPDU(payload, t, n, err)
}

func finishPDU(payload []byte, t ber.TLV, n int, err error) (pdu, error) {
	if err != nil {
		return pdu{}, fmt.Errorf("%w: %v", ErrBadPDU, err)
	}
	if n != len(payload) {
		return pdu{}, fmt.Errorf("%w: trailing bytes", ErrBadPDU)
	}
	out := pdu{kind: t.Tag, body: t}
	switch t.Tag {
	case tagInitiateRequest, tagInitiateResponse, tagUnconfirmed, tagConclude:
		return out, nil
	case tagConfirmedRequest, tagConfirmedResponse, tagConfirmedError:
		if len(t.Children) < 1 {
			return pdu{}, fmt.Errorf("%w: missing invokeID", ErrBadPDU)
		}
		id, err := t.Children[0].Uint()
		if err != nil {
			return pdu{}, fmt.Errorf("%w: invokeID: %v", ErrBadPDU, err)
		}
		out.invokeID = uint32(id)
		if t.Tag == tagConfirmedError {
			if len(t.Children) > 1 {
				out.errCode, _ = t.Children[1].Int()
			}
			return out, nil
		}
		if len(t.Children) < 2 {
			return pdu{}, fmt.Errorf("%w: missing service element", ErrBadPDU)
		}
		out.service = t.Children[1].Tag & 0x1F
		return out, nil
	default:
		return pdu{}, fmt.Errorf("%w: unknown PDU tag 0x%02x", ErrBadPDU, t.Tag)
	}
}
