package scl

import (
	"errors"
	"strings"
	"testing"
)

const sampleSSD = `<?xml version="1.0" encoding="UTF-8"?>
<SCL xmlns="http://www.iec.ch/61850/2003/SCL">
  <Header id="epic-ssd" version="1.0"/>
  <Substation name="EPIC">
    <VoltageLevel name="VL22">
      <Voltage unit="V" multiplier="k">22</Voltage>
      <Bay name="GenBay">
        <ConductingEquipment name="Gen1" type="GEN">
          <Terminal connectivityNode="EPIC/VL22/GenBay/CN1" cNodeName="CN1"/>
        </ConductingEquipment>
        <ConductingEquipment name="CB1" type="CBR">
          <Terminal connectivityNode="EPIC/VL22/GenBay/CN1" cNodeName="CN1"/>
          <Terminal connectivityNode="EPIC/VL22/GenBay/CN2" cNodeName="CN2"/>
        </ConductingEquipment>
        <ConnectivityNode name="CN1" pathName="EPIC/VL22/GenBay/CN1"/>
        <ConnectivityNode name="CN2" pathName="EPIC/VL22/GenBay/CN2"/>
      </Bay>
    </VoltageLevel>
  </Substation>
</SCL>`

const sampleSCD = `<?xml version="1.0" encoding="UTF-8"?>
<SCL xmlns="http://www.iec.ch/61850/2003/SCL">
  <Header id="epic-scd"/>
  <Substation name="EPIC">
    <VoltageLevel name="VL22">
      <Voltage unit="V" multiplier="k">22</Voltage>
      <Bay name="Bay1">
        <ConductingEquipment name="CB1" type="CBR">
          <Terminal connectivityNode="EPIC/VL22/Bay1/CN1" cNodeName="CN1"/>
        </ConductingEquipment>
        <ConnectivityNode name="CN1" pathName="EPIC/VL22/Bay1/CN1"/>
      </Bay>
    </VoltageLevel>
  </Substation>
  <IED name="GIED1" type="protection" manufacturer="SGML">
    <AccessPoint name="AP1">
      <Server>
        <LDevice inst="LD0">
          <LN0 lnClass="LLN0" inst=""/>
          <LN lnClass="PTOC" inst="1" lnType="PTOC_T"/>
          <LN lnClass="XCBR" inst="1" lnType="XCBR_T"/>
          <LN lnClass="MMXU" inst="1" lnType="MMXU_T"/>
        </LDevice>
      </Server>
    </AccessPoint>
  </IED>
  <Communication>
    <SubNetwork name="StationBus" type="8-MMS">
      <ConnectedAP iedName="GIED1" apName="AP1">
        <Address>
          <P type="IP">10.0.1.11</P>
          <P type="IP-SUBNET">255.255.255.0</P>
          <P type="MAC-Address">00-0C-CD-01-00-0B</P>
        </Address>
        <GSE ldInst="LD0" cbName="gcb1">
          <Address>
            <P type="MAC-Address">01-0C-CD-01-00-01</P>
            <P type="APPID">0001</P>
          </Address>
        </GSE>
      </ConnectedAP>
    </SubNetwork>
  </Communication>
  <DataTypeTemplates>
    <LNodeType id="PTOC_T" lnClass="PTOC">
      <DO name="Str" type="ACD_T"/>
      <DO name="Op" type="ACT_T"/>
    </LNodeType>
  </DataTypeTemplates>
</SCL>`

const sampleICD = `<?xml version="1.0" encoding="UTF-8"?>
<SCL xmlns="http://www.iec.ch/61850/2003/SCL">
  <Header id="ied-icd"/>
  <IED name="TEMPLATE" type="protection">
    <AccessPoint name="AP1">
      <Server>
        <LDevice inst="LD0">
          <LN0 lnClass="LLN0" inst=""/>
          <LN lnClass="PTOV" inst="1" lnType="PTOV_T"/>
          <LN lnClass="CILO" inst="1" lnType="CILO_T"/>
        </LDevice>
      </Server>
    </AccessPoint>
  </IED>
  <DataTypeTemplates>
    <LNodeType id="PTOV_T" lnClass="PTOV">
      <DO name="Op" type="ACT_T"/>
    </LNodeType>
  </DataTypeTemplates>
</SCL>`

const sampleSED = `<?xml version="1.0" encoding="UTF-8"?>
<SED>
  <Header id="multi-sed"/>
  <Tie name="T12" fromSubstation="S1" fromNode="S1/VL/B/CN1" toSubstation="S2" toNode="S2/VL/B/CN1"
       lengthKm="25" rOhmPerKm="0.06" xOhmPerKm="0.4" cNfPerKm="9" maxIKa="0.6"/>
  <WAN latencyMs="5"/>
  <GatewayIED substation="S1" iedName="GW1"/>
</SED>`

func TestParseSSD(t *testing.T) {
	doc, err := Parse([]byte(sampleSSD))
	if err != nil {
		t.Fatal(err)
	}
	if got := doc.DetectKind(); got != KindSSD {
		t.Errorf("kind = %v, want SSD", got)
	}
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
	sub := doc.FindSubstation("EPIC")
	if sub == nil {
		t.Fatal("substation missing")
	}
	vl := sub.VoltageLevels[0]
	if vl.Voltage.KV() != 22 {
		t.Errorf("voltage = %v kV", vl.Voltage.KV())
	}
	bay := vl.Bays[0]
	if len(bay.ConductingEquipments) != 2 || len(bay.ConnectivityNodes) != 2 {
		t.Errorf("bay contents: %d equipment, %d nodes", len(bay.ConductingEquipments), len(bay.ConnectivityNodes))
	}
	if bay.ConductingEquipments[0].Type != TypeGenerator {
		t.Errorf("equipment type %q", bay.ConductingEquipments[0].Type)
	}
}

func TestParseSCD(t *testing.T) {
	doc, err := Parse([]byte(sampleSCD))
	if err != nil {
		t.Fatal(err)
	}
	if got := doc.DetectKind(); got != KindSCD {
		t.Errorf("kind = %v, want SCD", got)
	}
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
	ied := doc.FindIED("GIED1")
	if ied == nil {
		t.Fatal("IED missing")
	}
	if !ied.HasLNClass("PTOC") || ied.HasLNClass("PTUV") {
		t.Error("logical node detection wrong")
	}
	if got := len(ied.LogicalNodes()); got != 3 {
		t.Errorf("logical nodes = %d, want 3", got)
	}
	addr := doc.Communication.APAddress("GIED1", "AP1")
	if addr == nil {
		t.Fatal("AP address missing")
	}
	if ip := addr.Get("IP"); ip != "10.0.1.11" {
		t.Errorf("IP = %q", ip)
	}
	if mac := addr.Get("MAC-Address"); mac != "00-0C-CD-01-00-0B" {
		t.Errorf("MAC = %q", mac)
	}
	if addr.Get("NONSENSE") != "" {
		t.Error("missing param returned non-empty")
	}
	gse := doc.Communication.SubNetworks[0].ConnectedAPs[0].GSEs[0]
	if gse.CBName != "gcb1" || gse.Address.Get("APPID") != "0001" {
		t.Errorf("GSE = %+v", gse)
	}
}

func TestParseICD(t *testing.T) {
	doc, err := Parse([]byte(sampleICD))
	if err != nil {
		t.Fatal(err)
	}
	if got := doc.DetectKind(); got != KindICD {
		t.Errorf("kind = %v, want ICD", got)
	}
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
	if !doc.IEDs[0].HasLNClass("CILO") {
		t.Error("CILO not detected")
	}
}

func TestParseSED(t *testing.T) {
	sed, err := ParseSED([]byte(sampleSED))
	if err != nil {
		t.Fatal(err)
	}
	if len(sed.Ties) != 1 || sed.Ties[0].FromSub != "S1" || sed.Ties[0].LengthKM != 25 {
		t.Errorf("ties = %+v", sed.Ties)
	}
	if sed.WAN.LatencyMS != 5 {
		t.Errorf("WAN latency = %v", sed.WAN.LatencyMS)
	}
	if len(sed.GatewayIEDs) != 1 {
		t.Errorf("gateways = %+v", sed.GatewayIEDs)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte("not xml")); err == nil {
		t.Error("garbage accepted as SCL")
	}
	if _, err := Parse([]byte("<Other/>")); !errors.Is(err, ErrNotSCL) {
		t.Errorf("wrong root error = %v", err)
	}
	if _, err := ParseSED([]byte("<Other/>")); !errors.Is(err, ErrNotSED) {
		t.Errorf("wrong SED root error = %v", err)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	doc, err := Parse([]byte(sampleSCD))
	if err != nil {
		t.Fatal(err)
	}
	data, err := doc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), Namespace) {
		t.Error("marshalled doc lacks SCL namespace")
	}
	again, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if again.DetectKind() != KindSCD {
		t.Error("round-tripped kind changed")
	}
	if again.FindIED("GIED1") == nil {
		t.Error("IED lost in round trip")
	}
	if got := again.Communication.APAddress("GIED1", "").Get("IP"); got != "10.0.1.11" {
		t.Errorf("IP after round trip = %q", got)
	}
}

func TestSEDMarshalRoundTrip(t *testing.T) {
	sed, err := ParseSED([]byte(sampleSED))
	if err != nil {
		t.Fatal(err)
	}
	data, err := sed.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseSED(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Ties) != 1 || again.Ties[0].XOhmPerKM != 0.4 {
		t.Errorf("round trip ties = %+v", again.Ties)
	}
}

func TestVoltageKV(t *testing.T) {
	tests := []struct {
		mult string
		val  float64
		want float64
	}{
		{"k", 110, 110},
		{"M", 1.1, 1100},
		{"", 22000, 22},
		{"x", 5, 5},
	}
	for _, tt := range tests {
		v := Voltage{Multiplier: tt.mult, Value: tt.val}
		if got := v.KV(); got != tt.want {
			t.Errorf("KV(%q,%v) = %v, want %v", tt.mult, tt.val, got, tt.want)
		}
	}
}

func TestValidationFailures(t *testing.T) {
	mutate := func(fn func(*Document)) *Document {
		doc, err := Parse([]byte(sampleSCD))
		if err != nil {
			t.Fatal(err)
		}
		fn(doc)
		return doc
	}
	tests := []struct {
		name string
		doc  *Document
	}{
		{"dup substation", mutate(func(d *Document) { d.Substations = append(d.Substations, d.Substations[0]) })},
		{"dup IED", mutate(func(d *Document) { d.IEDs = append(d.IEDs, d.IEDs[0]) })},
		{"zero voltage", mutate(func(d *Document) { d.Substations[0].VoltageLevels[0].Voltage.Value = 0 })},
		{"dangling terminal", mutate(func(d *Document) {
			d.Substations[0].VoltageLevels[0].Bays[0].ConductingEquipments[0].Terminals[0].ConnectivityNode = "nope"
		})},
		{"no terminals", mutate(func(d *Document) {
			d.Substations[0].VoltageLevels[0].Bays[0].ConductingEquipments[0].Terminals = nil
		})},
		{"comm references unknown IED", mutate(func(d *Document) {
			d.Communication.SubNetworks[0].ConnectedAPs[0].IEDName = "ghost"
		})},
		{"bad IP", mutate(func(d *Document) {
			d.Communication.SubNetworks[0].ConnectedAPs[0].Address.Ps[0].Value = "999.1.2.3.4"
		})},
		{"unnamed IED", mutate(func(d *Document) { d.IEDs[0].Name = "" })},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.doc.Validate(); !errors.Is(err, ErrValidation) {
				t.Errorf("Validate() = %v, want ErrValidation", err)
			}
		})
	}
}

func TestSEDValidate(t *testing.T) {
	sed, _ := ParseSED([]byte(sampleSED))
	s1, _ := Parse([]byte(strings.ReplaceAll(sampleSSD, "EPIC", "S1")))
	s2, _ := Parse([]byte(strings.ReplaceAll(sampleSSD, "EPIC", "S2")))
	subs := map[string]*Document{"S1": s1, "S2": s2}
	// Node paths in the SSDs are S1/VL22/GenBay/CN1 etc., not S1/VL/B/CN1.
	if err := sed.Validate(subs); err == nil {
		t.Error("tie with unknown node accepted")
	}
	sed.Ties[0].FromNode = "S1/VL22/GenBay/CN1"
	sed.Ties[0].ToNode = "S2/VL22/GenBay/CN1"
	if err := sed.Validate(subs); err != nil {
		t.Errorf("valid SED rejected: %v", err)
	}
	sed.Ties[0].XOhmPerKM = 0
	if err := sed.Validate(subs); err == nil {
		t.Error("tie without impedance accepted")
	}
	sed.Ties[0].XOhmPerKM = 0.4
	sed.GatewayIEDs[0].Substation = "ghost"
	if err := sed.Validate(subs); err == nil {
		t.Error("gateway to unknown substation accepted")
	}
	delete(subs, "S2")
	sed.GatewayIEDs[0].Substation = "S1"
	if err := sed.Validate(subs); err == nil {
		t.Error("tie to missing substation accepted")
	}
}

func TestTransformerValidation(t *testing.T) {
	doc, err := Parse([]byte(sampleSSD))
	if err != nil {
		t.Fatal(err)
	}
	doc.Substations[0].PowerTransformers = []PowerTransformer{{
		Name: "T1",
		Windings: []TransformerWinding{
			{Name: "HV", Terminals: []Terminal{{ConnectivityNode: "EPIC/VL22/GenBay/CN1"}}},
			{Name: "LV", Terminals: []Terminal{{ConnectivityNode: "EPIC/VL22/GenBay/CN2"}}},
		},
	}}
	if err := doc.Validate(); err != nil {
		t.Fatalf("two-winding transformer rejected: %v", err)
	}
	doc.Substations[0].PowerTransformers[0].Windings = doc.Substations[0].PowerTransformers[0].Windings[:1]
	if err := doc.Validate(); err == nil {
		t.Error("one-winding transformer accepted")
	}
}

func TestLNRef(t *testing.T) {
	ln := LN{Prefix: "Q1", LnClass: "XCBR", Inst: "1"}
	if got := ln.Ref(); got != "Q1XCBR1" {
		t.Errorf("Ref() = %q", got)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{KindSSD: "SSD", KindSCD: "SCD", KindICD: "ICD", KindSED: "SED", KindUnknown: "unknown"} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
