// Package scl implements the IEC 61850 SCL (System Configuration description
// Language) document model used as the primary input of the SG-ML framework.
//
// The paper (Table I) consumes four SCL file kinds:
//
//   - SSD (System Specification Description): substation single-line diagram —
//     voltage levels, bays, conducting equipment, connectivity nodes.
//   - SCD (System Configuration Description): the complete substation,
//     including all IEDs and the Communication section (addresses, subnets).
//   - ICD (IED Capability Description): one IED's logical devices / logical
//     nodes and data type templates.
//   - SED (System Exchange Description): electrical + communication
//     connectivity between substations, for multi-substation models.
//
// SSD/SCD/ICD share the <SCL> root element per IEC 61850-6; this package
// models the subset of the schema the SG-ML Processor needs and detects the
// file kind from content. SED is modelled as the pragmatic schema described
// in DESIGN.md (a dedicated <SED> root listing substation ties), since the
// paper only uses it as "connectivity between a pair of substations".
package scl

import (
	"encoding/xml"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Namespace is the IEC 61850-6 SCL XML namespace.
const Namespace = "http://www.iec.ch/61850/2003/SCL"

// Kind identifies which of the Table I file types a document is.
type Kind int

// SCL file kinds (Table I).
const (
	KindUnknown Kind = iota
	KindSSD
	KindSCD
	KindICD
	KindSED
)

func (k Kind) String() string {
	switch k {
	case KindSSD:
		return "SSD"
	case KindSCD:
		return "SCD"
	case KindICD:
		return "ICD"
	case KindSED:
		return "SED"
	default:
		return "unknown"
	}
}

// Document is an SCL file (SSD, SCD or ICD).
type Document struct {
	XMLName           xml.Name           `xml:"SCL"`
	XMLNS             string             `xml:"xmlns,attr,omitempty"`
	Header            Header             `xml:"Header"`
	Substations       []Substation       `xml:"Substation"`
	IEDs              []IED              `xml:"IED"`
	Communication     *Communication     `xml:"Communication"`
	DataTypeTemplates *DataTypeTemplates `xml:"DataTypeTemplates"`
}

// Header carries document identity and revision.
type Header struct {
	ID       string `xml:"id,attr"`
	Version  string `xml:"version,attr,omitempty"`
	Revision string `xml:"revision,attr,omitempty"`
	ToolID   string `xml:"toolID,attr,omitempty"`
}

// Substation is the physical single-line description (SSD core).
type Substation struct {
	Name              string             `xml:"name,attr"`
	Desc              string             `xml:"desc,attr,omitempty"`
	VoltageLevels     []VoltageLevel     `xml:"VoltageLevel"`
	PowerTransformers []PowerTransformer `xml:"PowerTransformer"`
}

// VoltageLevel groups bays at one nominal voltage.
type VoltageLevel struct {
	Name    string  `xml:"name,attr"`
	Desc    string  `xml:"desc,attr,omitempty"`
	Voltage Voltage `xml:"Voltage"`
	Bays    []Bay   `xml:"Bay"`
}

// Voltage is a value with an SI multiplier (typically k + V).
type Voltage struct {
	Unit       string  `xml:"unit,attr,omitempty"`
	Multiplier string  `xml:"multiplier,attr,omitempty"`
	Value      float64 `xml:",chardata"`
}

// KV returns the voltage in kilovolts.
func (v Voltage) KV() float64 {
	switch v.Multiplier {
	case "k", "K":
		return v.Value
	case "M":
		return v.Value * 1000
	case "":
		return v.Value / 1000
	default:
		return v.Value
	}
}

// Bay is one switchgear bay with its equipment and connectivity nodes.
type Bay struct {
	Name                 string                `xml:"name,attr"`
	Desc                 string                `xml:"desc,attr,omitempty"`
	ConductingEquipments []ConductingEquipment `xml:"ConductingEquipment"`
	ConnectivityNodes    []ConnectivityNode    `xml:"ConnectivityNode"`
	LNodes               []LNodeRef            `xml:"LNode"`
}

// Equipment type codes used by the SG-ML profile. CBR/DIS/GEN/CAP/BAT are
// standard IEC 61850-6 codes; LIN (line segment), LOD (load), PVS
// (photovoltaic source) and GRI (external grid connection) are the SG-ML
// profile extensions documented in DESIGN.md.
const (
	TypeBreaker      = "CBR"
	TypeDisconnector = "DIS"
	TypeGenerator    = "GEN"
	TypeCapacitor    = "CAP"
	TypeBattery      = "BAT"
	TypeLine         = "LIN"
	TypeLoad         = "LOD"
	TypePV           = "PVS"
	TypeExternalGrid = "GRI"
)

// ConductingEquipment is a primary-circuit device in a bay.
type ConductingEquipment struct {
	Name      string     `xml:"name,attr"`
	Type      string     `xml:"type,attr"`
	Desc      string     `xml:"desc,attr,omitempty"`
	Terminals []Terminal `xml:"Terminal"`
}

// Terminal attaches equipment to a connectivity node.
type Terminal struct {
	Name             string `xml:"name,attr,omitempty"`
	ConnectivityNode string `xml:"connectivityNode,attr"`
	CNodeName        string `xml:"cNodeName,attr,omitempty"`
}

// ConnectivityNode is an electrical node; its pathName doubles as the bus
// name during power-model generation.
type ConnectivityNode struct {
	Name     string `xml:"name,attr"`
	PathName string `xml:"pathName,attr"`
}

// LNodeRef binds a logical node (protection/measurement function on an IED)
// to a primary element.
type LNodeRef struct {
	IEDName string `xml:"iedName,attr"`
	LDInst  string `xml:"ldInst,attr,omitempty"`
	LNClass string `xml:"lnClass,attr"`
	LNInst  string `xml:"lnInst,attr,omitempty"`
}

// PowerTransformer is a two-winding transformer in the single-line diagram.
type PowerTransformer struct {
	Name     string               `xml:"name,attr"`
	Desc     string               `xml:"desc,attr,omitempty"`
	Type     string               `xml:"type,attr,omitempty"`
	Windings []TransformerWinding `xml:"TransformerWinding"`
}

// TransformerWinding is one winding with its terminal.
type TransformerWinding struct {
	Name      string     `xml:"name,attr"`
	Type      string     `xml:"type,attr,omitempty"`
	Terminals []Terminal `xml:"Terminal"`
}

// IED describes one intelligent electronic device.
type IED struct {
	Name         string        `xml:"name,attr"`
	Type         string        `xml:"type,attr,omitempty"`
	Manufacturer string        `xml:"manufacturer,attr,omitempty"`
	Desc         string        `xml:"desc,attr,omitempty"`
	AccessPoints []AccessPoint `xml:"AccessPoint"`
}

// AccessPoint is a communication attachment of an IED.
type AccessPoint struct {
	Name   string  `xml:"name,attr"`
	Server *Server `xml:"Server"`
}

// Server hosts logical devices.
type Server struct {
	LDevices []LDevice `xml:"LDevice"`
}

// LDevice is a logical device with its logical nodes.
type LDevice struct {
	Inst string `xml:"inst,attr"`
	LN0  *LN    `xml:"LN0"`
	LNs  []LN   `xml:"LN"`
}

// LN is a logical node instance (e.g. PTOC 1). Table II lists the protection
// classes the virtual IED implements: PTOC, PTOV, PTUV, PDIF, CILO.
type LN struct {
	Prefix  string `xml:"prefix,attr,omitempty"`
	LnClass string `xml:"lnClass,attr"`
	Inst    string `xml:"inst,attr,omitempty"`
	LnType  string `xml:"lnType,attr,omitempty"`
	Desc    string `xml:"desc,attr,omitempty"`
}

// Ref renders the conventional object reference piece "prefixCLASSinst".
func (l LN) Ref() string { return l.Prefix + l.LnClass + l.Inst }

// Communication carries subnetworks and per-IED addressing (SCD core).
type Communication struct {
	SubNetworks []SubNetwork `xml:"SubNetwork"`
}

// SubNetwork is one LAN segment.
type SubNetwork struct {
	Name         string        `xml:"name,attr"`
	Type         string        `xml:"type,attr,omitempty"`
	Desc         string        `xml:"desc,attr,omitempty"`
	ConnectedAPs []ConnectedAP `xml:"ConnectedAP"`
}

// ConnectedAP attaches an IED access point to a subnetwork with addresses.
type ConnectedAP struct {
	IEDName string  `xml:"iedName,attr"`
	APName  string  `xml:"apName,attr"`
	Address Address `xml:"Address"`
	GSEs    []GSE   `xml:"GSE"`
	SMVs    []SMV   `xml:"SMV"`
}

// Address is a list of typed parameters.
type Address struct {
	Ps []P `xml:"P"`
}

// Get returns the value of the first parameter with the given type.
func (a Address) Get(ptype string) string {
	for _, p := range a.Ps {
		if p.Type == ptype {
			return strings.TrimSpace(p.Value)
		}
	}
	return ""
}

// P is one typed address parameter (IP, IP-SUBNET, MAC-Address, APPID, ...).
type P struct {
	Type  string `xml:"type,attr"`
	Value string `xml:",chardata"`
}

// GSE is a GOOSE control block's network binding.
type GSE struct {
	LDInst  string  `xml:"ldInst,attr"`
	CBName  string  `xml:"cbName,attr"`
	Address Address `xml:"Address"`
}

// SMV is a sampled-values control block's network binding.
type SMV struct {
	LDInst  string  `xml:"ldInst,attr"`
	CBName  string  `xml:"cbName,attr"`
	Address Address `xml:"Address"`
}

// DataTypeTemplates carries logical node type definitions (ICD core).
type DataTypeTemplates struct {
	LNodeTypes []LNodeType `xml:"LNodeType"`
	DOTypes    []DOType    `xml:"DOType"`
}

// LNodeType defines the data objects of a logical node class.
type LNodeType struct {
	ID      string `xml:"id,attr"`
	LnClass string `xml:"lnClass,attr"`
	DOs     []DO   `xml:"DO"`
}

// DO is a data object reference within an LNodeType.
type DO struct {
	Name string `xml:"name,attr"`
	Type string `xml:"type,attr"`
}

// DOType defines the attributes of a data object class.
type DOType struct {
	ID  string `xml:"id,attr"`
	CDC string `xml:"cdc,attr"`
	DAs []DA   `xml:"DA"`
}

// DA is a data attribute.
type DA struct {
	Name  string `xml:"name,attr"`
	BType string `xml:"bType,attr"`
	FC    string `xml:"fc,attr,omitempty"`
}

// SED is the System Exchange Description: inter-substation electrical ties
// and the WAN communication description (Table I, last row).
type SED struct {
	XMLName     xml.Name  `xml:"SED"`
	Header      Header    `xml:"Header"`
	Ties        []Tie     `xml:"Tie"`
	WAN         WANConfig `xml:"WAN"`
	GatewayIEDs []Gateway `xml:"GatewayIED"`
}

// Tie is one electrical connection between two substations.
type Tie struct {
	Name      string  `xml:"name,attr"`
	FromSub   string  `xml:"fromSubstation,attr"`
	FromNode  string  `xml:"fromNode,attr"` // connectivity node pathName
	ToSub     string  `xml:"toSubstation,attr"`
	ToNode    string  `xml:"toNode,attr"`
	LengthKM  float64 `xml:"lengthKm,attr"`
	ROhmPerKM float64 `xml:"rOhmPerKm,attr"`
	XOhmPerKM float64 `xml:"xOhmPerKm,attr"`
	CNFPerKM  float64 `xml:"cNfPerKm,attr"`
	MaxIKA    float64 `xml:"maxIKa,attr"`
	// Breaker optionally names a circuit breaker guarding the tie at the
	// receiving end (operable by gateway IEDs, e.g. on a PDIF trip).
	Breaker string `xml:"breaker,attr,omitempty"`
}

// WANConfig describes the inter-substation network. The paper's toolchain
// "simplifies the emulation of WAN, and it is abstracted as a single switch
// connected to all substations" (§III-B); LatencyMS parameterises its links.
type WANConfig struct {
	LatencyMS float64 `xml:"latencyMs,attr"`
}

// Gateway names the IEDs participating in inter-substation communication
// (R-GOOSE / R-SV semantics of the SED per Table I).
type Gateway struct {
	Substation string `xml:"substation,attr"`
	IEDName    string `xml:"iedName,attr"`
}

// Errors returned by parsing and validation.
var (
	ErrNotSCL     = errors.New("scl: not an SCL document")
	ErrNotSED     = errors.New("scl: not an SED document")
	ErrValidation = errors.New("scl: validation failed")
)

// Parse decodes an SSD/SCD/ICD document.
func Parse(data []byte) (*Document, error) {
	var doc Document
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotSCL, err)
	}
	if doc.XMLName.Local != "SCL" {
		return nil, fmt.Errorf("%w: root element %q", ErrNotSCL, doc.XMLName.Local)
	}
	return &doc, nil
}

// ParseSED decodes a System Exchange Description.
func ParseSED(data []byte) (*SED, error) {
	var sed SED
	if err := xml.Unmarshal(data, &sed); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotSED, err)
	}
	if sed.XMLName.Local != "SED" {
		return nil, fmt.Errorf("%w: root element %q", ErrNotSED, sed.XMLName.Local)
	}
	return &sed, nil
}

// Marshal encodes the document with the SCL namespace and an XML header.
func (d *Document) Marshal() ([]byte, error) {
	d.XMLNS = Namespace
	body, err := xml.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append([]byte(xml.Header), body...), nil
}

// Marshal encodes the SED with an XML header.
func (s *SED) Marshal() ([]byte, error) {
	body, err := xml.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append([]byte(xml.Header), body...), nil
}

// DetectKind classifies a document per Table I.
func (d *Document) DetectKind() Kind {
	hasSub := len(d.Substations) > 0
	hasIEDs := len(d.IEDs) > 0
	hasComm := d.Communication != nil && len(d.Communication.SubNetworks) > 0
	switch {
	case hasSub && hasIEDs && hasComm:
		return KindSCD
	case hasSub && !hasIEDs:
		return KindSSD
	case !hasSub && len(d.IEDs) == 1:
		return KindICD
	case hasSub && hasIEDs:
		return KindSCD // partial SCD without comm section
	default:
		return KindUnknown
	}
}

// FindIED returns the named IED, or nil.
func (d *Document) FindIED(name string) *IED {
	for i := range d.IEDs {
		if d.IEDs[i].Name == name {
			return &d.IEDs[i]
		}
	}
	return nil
}

// FindSubstation returns the named substation, or nil.
func (d *Document) FindSubstation(name string) *Substation {
	for i := range d.Substations {
		if d.Substations[i].Name == name {
			return &d.Substations[i]
		}
	}
	return nil
}

// LogicalNodes flattens all LN instances of an IED (across LDevices),
// excluding LN0.
func (i *IED) LogicalNodes() []LN {
	var out []LN
	for _, ap := range i.AccessPoints {
		if ap.Server == nil {
			continue
		}
		for _, ld := range ap.Server.LDevices {
			out = append(out, ld.LNs...)
		}
	}
	return out
}

// HasLNClass reports whether the IED declares a logical node of the class
// (e.g. "PTOV" enables over-voltage protection per §III-B).
func (i *IED) HasLNClass(class string) bool {
	for _, ln := range i.LogicalNodes() {
		if ln.LnClass == class {
			return true
		}
	}
	return false
}

// APAddress returns the Address of the IED's connected access point within
// the communication section, or nil.
func (c *Communication) APAddress(iedName, apName string) *Address {
	for i := range c.SubNetworks {
		for j := range c.SubNetworks[i].ConnectedAPs {
			cap := &c.SubNetworks[i].ConnectedAPs[j]
			if cap.IEDName == iedName && (apName == "" || cap.APName == apName) {
				return &cap.Address
			}
		}
	}
	return nil
}

// Validate checks structural invariants needed by the SG-ML Processor.
func (d *Document) Validate() error {
	kind := d.DetectKind()
	if kind == KindUnknown {
		return fmt.Errorf("%w: cannot classify document (no substation, no IED)", ErrValidation)
	}
	seenSub := map[string]bool{}
	for _, sub := range d.Substations {
		if sub.Name == "" {
			return fmt.Errorf("%w: substation without name", ErrValidation)
		}
		if seenSub[sub.Name] {
			return fmt.Errorf("%w: duplicate substation %q", ErrValidation, sub.Name)
		}
		seenSub[sub.Name] = true
		cns := map[string]bool{}
		for _, vl := range sub.VoltageLevels {
			if vl.Voltage.KV() <= 0 {
				return fmt.Errorf("%w: voltage level %s/%s has no voltage", ErrValidation, sub.Name, vl.Name)
			}
			for _, bay := range vl.Bays {
				for _, cn := range bay.ConnectivityNodes {
					if cns[cn.PathName] {
						return fmt.Errorf("%w: duplicate connectivity node %q", ErrValidation, cn.PathName)
					}
					cns[cn.PathName] = true
				}
			}
		}
		// Terminals must reference declared connectivity nodes.
		for _, vl := range sub.VoltageLevels {
			for _, bay := range vl.Bays {
				for _, eq := range bay.ConductingEquipments {
					if len(eq.Terminals) == 0 {
						return fmt.Errorf("%w: equipment %s/%s has no terminals", ErrValidation, bay.Name, eq.Name)
					}
					for _, term := range eq.Terminals {
						if !cns[term.ConnectivityNode] {
							return fmt.Errorf("%w: equipment %q terminal references unknown node %q",
								ErrValidation, eq.Name, term.ConnectivityNode)
						}
					}
				}
			}
		}
		for _, tr := range sub.PowerTransformers {
			if len(tr.Windings) != 2 {
				return fmt.Errorf("%w: transformer %q has %d windings, want 2", ErrValidation, tr.Name, len(tr.Windings))
			}
			for _, w := range tr.Windings {
				for _, term := range w.Terminals {
					if !cns[term.ConnectivityNode] {
						return fmt.Errorf("%w: transformer %q winding references unknown node %q",
							ErrValidation, tr.Name, term.ConnectivityNode)
					}
				}
			}
		}
	}
	seenIED := map[string]bool{}
	for _, ied := range d.IEDs {
		if ied.Name == "" {
			return fmt.Errorf("%w: IED without name", ErrValidation)
		}
		if seenIED[ied.Name] {
			return fmt.Errorf("%w: duplicate IED %q", ErrValidation, ied.Name)
		}
		seenIED[ied.Name] = true
	}
	if d.Communication != nil {
		for _, sn := range d.Communication.SubNetworks {
			for _, cap := range sn.ConnectedAPs {
				if kind == KindSCD && !seenIED[cap.IEDName] {
					return fmt.Errorf("%w: subnetwork %q references unknown IED %q", ErrValidation, sn.Name, cap.IEDName)
				}
				if ip := cap.Address.Get("IP"); ip != "" {
					if err := checkIPv4(ip); err != nil {
						return fmt.Errorf("%w: IED %q: %v", ErrValidation, cap.IEDName, err)
					}
				}
			}
		}
	}
	return nil
}

// Validate checks tie and gateway integrity of an SED against the named
// substation documents it joins.
func (s *SED) Validate(subs map[string]*Document) error {
	for _, tie := range s.Ties {
		for _, end := range []struct{ sub, node string }{{tie.FromSub, tie.FromNode}, {tie.ToSub, tie.ToNode}} {
			doc, ok := subs[end.sub]
			if !ok {
				return fmt.Errorf("%w: tie %q references unknown substation %q", ErrValidation, tie.Name, end.sub)
			}
			if !docHasNode(doc, end.node) {
				return fmt.Errorf("%w: tie %q references unknown node %q in %q", ErrValidation, tie.Name, end.node, end.sub)
			}
		}
		if tie.XOhmPerKM <= 0 || tie.LengthKM <= 0 {
			return fmt.Errorf("%w: tie %q missing impedance/length", ErrValidation, tie.Name)
		}
	}
	for _, gw := range s.GatewayIEDs {
		if _, ok := subs[gw.Substation]; !ok {
			return fmt.Errorf("%w: gateway references unknown substation %q", ErrValidation, gw.Substation)
		}
	}
	return nil
}

func docHasNode(doc *Document, path string) bool {
	for _, sub := range doc.Substations {
		for _, vl := range sub.VoltageLevels {
			for _, bay := range vl.Bays {
				for _, cn := range bay.ConnectivityNodes {
					if cn.PathName == path {
						return true
					}
				}
			}
		}
	}
	return false
}

func checkIPv4(s string) error {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return fmt.Errorf("bad IPv4 %q", s)
	}
	for _, p := range parts {
		if _, err := strconv.ParseUint(p, 10, 8); err != nil {
			return fmt.Errorf("bad IPv4 %q", s)
		}
	}
	return nil
}
