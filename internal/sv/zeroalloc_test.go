package sv

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/testutil"
)

func sampleASDU(values int) Sample {
	s := Sample{
		SvID: "MU01", SmpCnt: 4093, ConfRev: 2,
		RefrTm: time.Unix(1_700_000_000, 500_000_000).UTC(),
	}
	for i := 0; i < values; i++ {
		s.Values = append(s.Values, 0.25*float64(i)-3)
	}
	return s
}

func TestMarshalAppendMatchesMarshalSV(t *testing.T) {
	// 20+ values push the PDU past the short length form.
	for _, values := range []int{0, 1, 6, 20, 40} {
		s := sampleASDU(values)
		want := Marshal(0x4000, s)
		got := MarshalAppend(nil, 0x4000, s)
		if !bytes.Equal(want, got) {
			t.Fatalf("values=%d: MarshalAppend differs from Marshal", values)
		}
		withPrefix := MarshalAppend([]byte{0x01, 0x02}, 0x4000, s)
		if !bytes.Equal(withPrefix[:2], []byte{0x01, 0x02}) || !bytes.Equal(withPrefix[2:], want) {
			t.Fatalf("values=%d: prefixed MarshalAppend corrupts output", values)
		}
	}
}

func TestDecoderMatchesUnmarshalSV(t *testing.T) {
	var dec Decoder
	for _, values := range []int{0, 1, 6, 20, 40} {
		s := sampleASDU(values)
		payload := Marshal(0x4000, s)
		wantID, wantS, wantErr := Unmarshal(payload)
		gotID, gotS, gotErr := dec.Unmarshal(payload)
		if (wantErr == nil) != (gotErr == nil) || wantID != gotID {
			t.Fatalf("values=%d: header mismatch", values)
		}
		if !reflect.DeepEqual(wantS, gotS) {
			t.Fatalf("values=%d: arena decode differs from Unmarshal", values)
		}
	}
}

func TestWarmSVMarshalUnmarshalAllocBudget(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation budgets are meaningless under -race")
	}
	s := sampleASDU(6)
	var dec Decoder
	var buf []byte
	op := func() {
		buf = MarshalAppend(buf[:0], 0x4000, s)
		if _, _, err := dec.Unmarshal(buf); err != nil {
			t.Fatal(err)
		}
	}
	op() // warm buffer and arena
	// Budget: marshal is allocation-free; the decoded Sample owns its SvID
	// string and Values slice (~3 allocs). Slack of 2 catches a regression
	// back to tree-per-packet decoding without flaking on GC noise.
	if n := testing.AllocsPerRun(200, op); n > 5 {
		t.Errorf("warm SV marshal+unmarshal allocates %.1f/op, budget 5", n)
	}
}

func TestPooledSVStreamDeliversIdenticalBytes(t *testing.T) {
	// Differential: pooled PublishNow delivers the same wire bytes as the
	// reference path for the same sample sequence.
	run := func(pooling bool) [][]byte {
		n := netem.NewNetwork()
		n.SetFramePooling(pooling)
		if _, err := netem.NewSwitch(n, "sw", 4); err != nil {
			t.Fatal(err)
		}
		muHost, err := netem.NewHost(n, "mu", netem.MAC{2, 0, 0, 0, 0, 1}, netem.IPv4{10, 0, 0, 1})
		if err != nil {
			t.Fatal(err)
		}
		iedHost, err := netem.NewHost(n, "ied", netem.MAC{2, 0, 0, 0, 0, 2}, netem.IPv4{10, 0, 0, 2})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.Connect("mu", 0, "sw", 0, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := n.Connect("ied", 0, "sw", 1, 0); err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		var got [][]byte
		iedHost.JoinMulticast(netem.SVMAC(0x4000))
		iedHost.HandleEtherType(netem.EtherTypeSV, func(f netem.Frame) {
			mu.Lock()
			got = append(got, append([]byte(nil), f.Payload...))
			mu.Unlock()
		})
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
		defer n.Stop()
		step := 0
		pub := NewPublisher(muHost, PublisherConfig{SvID: "MU01", AppID: 0x4000, ConfRev: 1},
			func() []float64 {
				step++
				return []float64{float64(step), -float64(step), 0.5}
			})
		for i := 0; i < 20; i++ {
			pub.PublishNow()
		}
		deadline := time.Now().Add(2 * time.Second)
		for {
			mu.Lock()
			cnt := len(got)
			mu.Unlock()
			if cnt >= 20 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("missing deliveries")
			}
			time.Sleep(time.Millisecond)
		}
		mu.Lock()
		defer mu.Unlock()
		return got
	}
	ref := run(false)
	pooled := run(true)
	if len(ref) != len(pooled) {
		t.Fatalf("delivered %d vs %d", len(ref), len(pooled))
	}
	for i := range ref {
		// RefrTm differs between runs (wall clock); mask the UtcTime value
		// before comparing. Its 8 octets sit at a fixed offset only if the
		// surrounding fields are fixed-width, which they are for this
		// dataset — locate it by tag instead to stay robust.
		a, b := maskRefrTm(t, ref[i]), maskRefrTm(t, pooled[i])
		if !bytes.Equal(a, b) {
			t.Fatalf("frame %d differs between reference and pooled stream paths", i)
		}
	}
}

// maskRefrTm zeroes the RefrTm timestamp value inside an encoded SV payload.
func maskRefrTm(t *testing.T, payload []byte) []byte {
	t.Helper()
	out := append([]byte(nil), payload...)
	// Find tag 0x84 (RefrTm) with length 8 inside the ASDU; the encoding is
	// deterministic, so a linear scan is safe for test data.
	for i := 8; i+10 <= len(out); i++ {
		if out[i] == tagRefrTm && out[i+1] == 8 {
			for j := i + 2; j < i+10; j++ {
				out[j] = 0
			}
			return out
		}
	}
	t.Fatal("RefrTm not found in payload")
	return nil
}
