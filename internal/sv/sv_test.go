package sv

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netem"
)

func testLAN(t *testing.T, hosts int) []*netem.Host {
	t.Helper()
	n := netem.NewNetwork()
	if _, err := netem.NewSwitch(n, "sw", hosts+1); err != nil {
		t.Fatal(err)
	}
	out := make([]*netem.Host, hosts)
	for i := 0; i < hosts; i++ {
		h, err := netem.NewHost(n, string(rune('a'+i))+"-host",
			netem.MAC{0x02, 0, 0, 0, 0, byte(i + 1)}, netem.IPv4{10, 0, 0, byte(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.Connect(h.Name(), 0, "sw", i, 0); err != nil {
			t.Fatal(err)
		}
		out[i] = h
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)
	return out
}

func TestMarshalRoundTrip(t *testing.T) {
	s := Sample{
		SvID:    "GIED1MU01",
		SmpCnt:  4095,
		ConfRev: 2,
		Values:  []float64{0.123, -4.5, 1e6, 0},
		RefrTm:  time.Unix(1_700_000_000, 500_000_000).UTC(),
	}
	appID, got, err := Unmarshal(Marshal(0x4001, s))
	if err != nil {
		t.Fatal(err)
	}
	if appID != 0x4001 {
		t.Errorf("appID = 0x%04x", appID)
	}
	if got.SvID != s.SvID || got.SmpCnt != s.SmpCnt || got.ConfRev != s.ConfRev {
		t.Errorf("got %+v", got)
	}
	if len(got.Values) != 4 {
		t.Fatalf("values = %v", got.Values)
	}
	for i := range s.Values {
		if got.Values[i] != s.Values[i] {
			t.Errorf("value %d = %v, want %v", i, got.Values[i], s.Values[i])
		}
	}
}

func TestValueRoundTripProperty(t *testing.T) {
	f := func(a, b, c float64, cnt uint16) bool {
		s := Sample{SvID: "x", SmpCnt: cnt, Values: []float64{a, b, c}, RefrTm: time.Unix(1, 0)}
		_, got, err := Unmarshal(Marshal(1, s))
		if err != nil || got.SmpCnt != cnt || len(got.Values) != 3 {
			return false
		}
		for i, v := range []float64{a, b, c} {
			if got.Values[i] != v && !(v != v && got.Values[i] != got.Values[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, _, _ = Unmarshal(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x40, 0x01, 0x00, 0x02},
		append([]byte{0x40, 0x01, 0x00, 0x0C, 0, 0, 0, 0}, 0x30, 0x02, 0x01, 0x01),
	}
	for i, c := range cases {
		if _, _, err := Unmarshal(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestStreamDelivery(t *testing.T) {
	hosts := testLAN(t, 2)
	var mu sync.Mutex
	current := []float64{0.1, 0.1, 0.1}
	pub := NewPublisher(hosts[0], PublisherConfig{SvID: "MU01", AppID: 0x4000, Rate: 5 * time.Millisecond},
		func() []float64 {
			mu.Lock()
			defer mu.Unlock()
			return append([]float64(nil), current...)
		})
	sub := Subscribe(hosts[1], 0x4000)
	pub.Start()
	defer pub.Stop()

	// Collect some samples, then change the source and observe the change.
	var first Sample
	select {
	case first = <-sub.Samples():
	case <-time.After(2 * time.Second):
		t.Fatal("no samples")
	}
	if first.SvID != "MU01" || len(first.Values) != 3 {
		t.Errorf("first sample = %+v", first)
	}
	mu.Lock()
	current = []float64{9, 9, 9}
	mu.Unlock()
	deadline := time.After(2 * time.Second)
	for {
		select {
		case s := <-sub.Samples():
			if s.Values[0] == 9 {
				goto done
			}
		case <-deadline:
			t.Fatal("source change never observed")
		}
	}
done:
	received, _ := sub.Stats()
	if received < 2 {
		t.Errorf("received = %d", received)
	}
	if pub.Sent() < received {
		t.Errorf("sent %d < received %d", pub.Sent(), received)
	}
}

func TestSmpCntIncrementsAndLossDetection(t *testing.T) {
	hosts := testLAN(t, 2)
	pub := NewPublisher(hosts[0], PublisherConfig{SvID: "MU02", AppID: 0x4001},
		func() []float64 { return []float64{1} })
	sub := Subscribe(hosts[1], 0x4001)

	for i := 0; i < 5; i++ {
		pub.PublishNow()
	}
	time.Sleep(50 * time.Millisecond)
	received, lost := sub.Stats()
	if received != 5 || lost != 0 {
		t.Fatalf("received=%d lost=%d", received, lost)
	}
	var prev *Sample
	for i := 0; i < 5; i++ {
		s := <-sub.Samples()
		if prev != nil && s.SmpCnt != prev.SmpCnt+1 {
			t.Errorf("smpCnt jump %d -> %d", prev.SmpCnt, s.SmpCnt)
		}
		cp := s
		prev = &cp
	}
}

func TestRSVGatewayExchange(t *testing.T) {
	hosts := testLAN(t, 2)
	// Bidirectional differential-protection exchange: each gateway streams
	// its local current to the other.
	subA, err := SubscribeR(hosts[0], 0x4100)
	if err != nil {
		t.Fatal(err)
	}
	defer subA.Close()
	subB, err := SubscribeR(hosts[1], 0x4100)
	if err != nil {
		t.Fatal(err)
	}
	defer subB.Close()

	pubA, err := NewRPublisher(hosts[0], PublisherConfig{SvID: "GW-A", AppID: 0x4100},
		[]netem.IPv4{hosts[1].IP()}, func() []float64 { return []float64{0.351} })
	if err != nil {
		t.Fatal(err)
	}
	defer pubA.Stop()
	pubB, err := NewRPublisher(hosts[1], PublisherConfig{SvID: "GW-B", AppID: 0x4100},
		[]netem.IPv4{hosts[0].IP()}, func() []float64 { return []float64{0.349} })
	if err != nil {
		t.Fatal(err)
	}
	defer pubB.Stop()

	pubA.PublishNow()
	pubB.PublishNow()

	select {
	case s := <-subB.Samples():
		if s.SvID != "GW-A" || s.Values[0] != 0.351 {
			t.Errorf("B received %+v", s)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("B missed A's stream")
	}
	select {
	case s := <-subA.Samples():
		if s.SvID != "GW-B" || s.Values[0] != 0.349 {
			t.Errorf("A received %+v", s)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("A missed B's stream")
	}
	if pubA.Sent() != 1 || pubB.Sent() != 1 {
		t.Errorf("sent counts %d/%d", pubA.Sent(), pubB.Sent())
	}
}

func TestRSVStartStop(t *testing.T) {
	hosts := testLAN(t, 2)
	sub, err := SubscribeR(hosts[1], 0x4200)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := NewRPublisher(hosts[0], PublisherConfig{SvID: "GW", AppID: 0x4200, Rate: 5 * time.Millisecond},
		[]netem.IPv4{hosts[1].IP()}, func() []float64 { return []float64{1} })
	if err != nil {
		t.Fatal(err)
	}
	pub.Start()
	time.Sleep(40 * time.Millisecond)
	pub.Stop()
	received, _ := sub.Stats()
	if received < 2 {
		t.Errorf("received = %d before stop", received)
	}
	time.Sleep(30 * time.Millisecond)
	afterStop, _ := sub.Stats()
	time.Sleep(30 * time.Millisecond)
	final, _ := sub.Stats()
	if final != afterStop {
		t.Error("samples still flowing after Stop")
	}
}
