// Package sv implements IEC 61850-9-2 Sampled Values messaging and the
// routable R-SV variant, substituting libiec61850's SV layer (§III-B).
//
// SV streams power-grid measurements (phase currents and voltages) between
// merging units and IEDs at a fixed rate. In the cyber range R-SV carries
// measurements between substations for differential protection (PDIF,
// Table II): each gateway IED streams its local line current to the remote
// end, which compares the two. Frames use EtherType 0x88BA on the LAN and
// UDP datagrams across the WAN.
package sv

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/ber"
	"repro/internal/netem"
)

// RSVPort is the UDP port used for routable SV.
const RSVPort = 103

// ErrBadPDU is returned for malformed SV payloads.
var ErrBadPDU = errors.New("sv: malformed PDU")

// Sample is one ASDU: a snapshot of measured values.
type Sample struct {
	SvID    string
	SmpCnt  uint16
	ConfRev uint32
	// Values carries the dataset in dataset order (e.g. [iA, iB, iC, vA, vB, vC]
	// or a single line current for R-SV differential exchange).
	Values []float64
	// RefrTm is the refresh timestamp.
	RefrTm time.Time
}

// PDU field tags (context-specific, after IEC 61850-9-2 savPdu).
const (
	tagSavPDU   = 0x60 // APPLICATION 0 constructed
	tagNoASDU   = 0x80
	tagSeqASDU  = 0xA2
	tagASDU     = 0x30
	tagSvID     = 0x80
	tagSmpCnt   = 0x82
	tagConfRev  = 0x83
	tagRefrTm   = 0x84
	tagSamples  = 0x87
	tagSmpSynch = 0x85
)

// Marshal encodes APPID header + savPdu with one ASDU.
func Marshal(appID uint16, s Sample) []byte {
	return MarshalAppend(nil, appID, s)
}

// MarshalAppend appends the encoded sample to dst and returns the extended
// buffer — the warm-path form of Marshal: with a reused dst it allocates
// nothing. The output bytes are identical to Marshal's.
func MarshalAppend(dst []byte, appID uint16, s Sample) []byte {
	start := len(dst)
	var e ber.Encoder
	e.UseBuf(append(dst, 0, 0, 0, 0, 0, 0, 0, 0))
	e.AppendConstructed(tagSavPDU, func(e *ber.Encoder) {
		e.AppendUint(tagNoASDU, 1)
		e.AppendConstructed(tagSeqASDU, func(seq *ber.Encoder) {
			seq.AppendConstructed(tagASDU, func(a *ber.Encoder) {
				a.AppendString(tagSvID, s.SvID)
				var cnt [2]byte
				binary.BigEndian.PutUint16(cnt[:], s.SmpCnt)
				a.AppendTLV(tagSmpCnt, cnt[:])
				a.AppendUint(tagConfRev, uint64(s.ConfRev))
				a.AppendUTCTime(tagRefrTm, s.RefrTm.Unix(), int64(s.RefrTm.Nanosecond()))
				a.AppendTLV(tagSmpSynch, []byte{0x01})
				// Samples: packed IEEE-754 doubles (the production protocol
				// uses scaled INT32; doubles keep the simulator exact),
				// appended in place inside the constructed element.
				a.AppendTLVFunc(tagSamples, func(e *ber.Encoder) {
					var w [8]byte
					for _, v := range s.Values {
						binary.BigEndian.PutUint64(w[:], math.Float64bits(v))
						e.AppendRaw(w[:])
					}
				})
			})
		})
	})
	out := e.Bytes()
	binary.BigEndian.PutUint16(out[start:], appID)
	binary.BigEndian.PutUint16(out[start+2:], uint16(len(out)-start))
	return out
}

// Decoder decodes SV payloads reusing an internal TLV arena across calls
// (see ber.Decoder). Not safe for concurrent use.
type Decoder struct {
	ber ber.Decoder
}

// Unmarshal decodes an SV payload, returning APPID and the first ASDU.
func Unmarshal(payload []byte) (uint16, Sample, error) {
	var d Decoder
	return d.Unmarshal(payload)
}

// Unmarshal decodes like the package-level Unmarshal, reusing the decoder's
// arena. The returned Sample owns all its data (nothing aliases the payload).
func (d *Decoder) Unmarshal(payload []byte) (uint16, Sample, error) {
	var s Sample
	if len(payload) < 8 {
		return 0, s, fmt.Errorf("%w: short header", ErrBadPDU)
	}
	appID := binary.BigEndian.Uint16(payload[0:])
	length := int(binary.BigEndian.Uint16(payload[2:]))
	if length < 8 || length > len(payload) {
		return 0, s, fmt.Errorf("%w: bad length %d", ErrBadPDU, length)
	}
	t, _, err := d.ber.Decode(payload[8:length])
	if err != nil || t.Tag != tagSavPDU {
		return 0, s, fmt.Errorf("%w: savPdu", ErrBadPDU)
	}
	seq, err := t.Child(tagSeqASDU)
	if err != nil || len(seq.Children) == 0 {
		return 0, s, fmt.Errorf("%w: no ASDU", ErrBadPDU)
	}
	asdu := seq.Children[0]
	for _, c := range asdu.Children {
		switch c.Tag {
		case tagSvID:
			s.SvID = c.String()
		case tagSmpCnt:
			if len(c.Value) == 2 {
				s.SmpCnt = binary.BigEndian.Uint16(c.Value)
			}
		case tagConfRev:
			v, _ := c.Uint()
			s.ConfRev = uint32(v)
		case tagRefrTm:
			sec, nanos, err := c.UTCTime()
			if err == nil {
				s.RefrTm = time.Unix(sec, nanos).UTC()
			}
		case tagSamples:
			if len(c.Value)%8 != 0 {
				return 0, s, fmt.Errorf("%w: sample block size %d", ErrBadPDU, len(c.Value))
			}
			if s.Values == nil && len(c.Value) > 0 {
				s.Values = make([]float64, 0, len(c.Value)/8)
			}
			for i := 0; i+8 <= len(c.Value); i += 8 {
				bits := binary.BigEndian.Uint64(c.Value[i:])
				s.Values = append(s.Values, math.Float64frombits(bits))
			}
		}
	}
	if s.SvID == "" {
		return 0, s, fmt.Errorf("%w: missing svID", ErrBadPDU)
	}
	return appID, s, nil
}

// SourceFunc supplies the current measurement values for each transmission.
type SourceFunc func() []float64

// PublisherConfig configures an SV stream.
type PublisherConfig struct {
	SvID    string
	AppID   uint16
	ConfRev uint32
	Rate    time.Duration // sampling period; default 10 ms
}

// Publisher streams samples as L2 multicast frames.
type Publisher struct {
	cfg  PublisherConfig
	host *netem.Host
	src  SourceFunc

	mu     sync.Mutex
	smpCnt uint16
	sent   uint64
	cancel context.CancelFunc
	done   chan struct{}
}

// NewPublisher creates an SV publisher on a host NIC.
func NewPublisher(h *netem.Host, cfg PublisherConfig, src SourceFunc) *Publisher {
	if cfg.Rate <= 0 {
		cfg.Rate = 10 * time.Millisecond
	}
	return &Publisher{cfg: cfg, host: h, src: src}
}

// Start begins streaming until Stop is called.
func (p *Publisher) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	p.mu.Lock()
	p.cancel = cancel
	p.done = make(chan struct{})
	done := p.done
	p.mu.Unlock()
	go func() {
		defer close(done)
		ticker := time.NewTicker(p.cfg.Rate)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				p.publishOnce()
			}
		}
	}()
}

// publishOnce transmits a single sample (exported for step-driven tests via
// PublishNow).
func (p *Publisher) publishOnce() {
	values := p.src()
	p.mu.Lock()
	s := Sample{
		SvID:    p.cfg.SvID,
		SmpCnt:  p.smpCnt,
		ConfRev: p.cfg.ConfRev,
		Values:  values,
		RefrTm:  time.Now(),
	}
	p.smpCnt++
	p.sent++
	p.mu.Unlock()
	// Marshal into a fabric-pooled buffer; the terminal deliverer releases
	// it (zero-allocation warm path for kHz-rate streams).
	pb := p.host.AllocPayload()
	pb.B = MarshalAppend(pb.B, p.cfg.AppID, s)
	p.host.SendPooled(netem.SVMAC(p.cfg.AppID), netem.EtherTypeSV, pb)
}

// PublishNow transmits one sample immediately (step-driven mode).
func (p *Publisher) PublishNow() { p.publishOnce() }

// Stop halts the stream.
func (p *Publisher) Stop() {
	p.mu.Lock()
	cancel := p.cancel
	done := p.done
	p.cancel = nil
	p.mu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
}

// Sent reports transmitted samples.
func (p *Publisher) Sent() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sent
}

// Subscriber receives an SV stream.
type Subscriber struct {
	mu       sync.Mutex
	received uint64
	lost     uint64
	lastCnt  uint16
	seen     bool
	ch       chan Sample
}

// Subscribe joins the SV multicast group for appID.
func Subscribe(h *netem.Host, appID uint16) *Subscriber {
	s := &Subscriber{ch: make(chan Sample, 1024)}
	h.JoinMulticast(netem.SVMAC(appID))
	// Runs on the host's single worker goroutine; the arena decoder is
	// reused across frames and the Sample copies everything it keeps.
	var dec Decoder
	h.HandleEtherType(netem.EtherTypeSV, func(f netem.Frame) {
		gotID, sample, err := dec.Unmarshal(f.Payload)
		if err != nil || gotID != appID {
			return
		}
		s.deliver(sample)
	})
	return s
}

func (s *Subscriber) deliver(sample Sample) {
	s.mu.Lock()
	if s.seen {
		expected := s.lastCnt + 1
		if sample.SmpCnt != expected {
			s.lost += uint64(uint16(sample.SmpCnt - expected))
		}
	}
	s.lastCnt = sample.SmpCnt
	s.seen = true
	s.received++
	s.mu.Unlock()
	select {
	case s.ch <- sample:
	default: // measurement streams tolerate consumer lag
	}
}

// Samples returns the delivery channel.
func (s *Subscriber) Samples() <-chan Sample { return s.ch }

// Stats reports received and lost sample counts (from smpCnt gaps).
func (s *Subscriber) Stats() (received, lost uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.received, s.lost
}

// RPublisher streams samples over UDP to peer gateways (R-SV).
type RPublisher struct {
	cfg   PublisherConfig
	sock  *netem.UDPSocket
	peers []netem.IPv4
	src   SourceFunc

	mu      sync.Mutex
	smpCnt  uint16
	sent    uint64
	scratch []byte // reused marshal buffer; SendTo copies, so reuse is safe
	cancel  context.CancelFunc
	done    chan struct{}
}

// NewRPublisher binds an ephemeral UDP socket for an R-SV stream.
func NewRPublisher(h *netem.Host, cfg PublisherConfig, peers []netem.IPv4, src SourceFunc) (*RPublisher, error) {
	if cfg.Rate <= 0 {
		cfg.Rate = 10 * time.Millisecond
	}
	sock, err := h.BindUDP(0)
	if err != nil {
		return nil, err
	}
	return &RPublisher{cfg: cfg, sock: sock, peers: append([]netem.IPv4(nil), peers...), src: src}, nil
}

// Start begins streaming until Stop.
func (p *RPublisher) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	p.mu.Lock()
	p.cancel = cancel
	p.done = make(chan struct{})
	done := p.done
	p.mu.Unlock()
	go func() {
		defer close(done)
		ticker := time.NewTicker(p.cfg.Rate)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				p.PublishNow()
			}
		}
	}()
}

// PublishNow transmits one sample to all peers immediately.
func (p *RPublisher) PublishNow() {
	values := p.src()
	p.mu.Lock()
	s := Sample{
		SvID:    p.cfg.SvID,
		SmpCnt:  p.smpCnt,
		ConfRev: p.cfg.ConfRev,
		Values:  values,
		RefrTm:  time.Now(),
	}
	p.smpCnt++
	// The scratch buffer is reused under the lock; SendTo copies the payload
	// into the datagram, so nothing retains it past the call.
	p.scratch = MarshalAppend(p.scratch[:0], p.cfg.AppID, s)
	for _, peer := range p.peers {
		if err := p.sock.SendTo(peer, RSVPort, p.scratch); err == nil {
			p.sent++
		}
	}
	p.mu.Unlock()
}

// Stop halts the stream and closes the socket.
func (p *RPublisher) Stop() {
	p.mu.Lock()
	cancel := p.cancel
	done := p.done
	p.cancel = nil
	p.mu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
	p.sock.Close()
}

// Sent reports transmitted datagrams.
func (p *RPublisher) Sent() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sent
}

// RSubscriber receives an R-SV stream on the R-SV UDP port.
type RSubscriber struct {
	sub  *Subscriber
	sock *netem.UDPSocket
	done chan struct{}
}

// SubscribeR binds the R-SV port and decodes inbound datagrams for appID.
func SubscribeR(h *netem.Host, appID uint16) (*RSubscriber, error) {
	sock, err := h.BindUDP(RSVPort)
	if err != nil {
		return nil, err
	}
	rs := &RSubscriber{sub: &Subscriber{ch: make(chan Sample, 1024)}, sock: sock, done: make(chan struct{})}
	go func() {
		defer close(rs.done)
		for m := range sock.Recv() {
			gotID, sample, err := Unmarshal(m.Data)
			if err != nil || gotID != appID {
				continue
			}
			rs.sub.deliver(sample)
		}
	}()
	return rs, nil
}

// Samples returns the delivery channel.
func (rs *RSubscriber) Samples() <-chan Sample { return rs.sub.Samples() }

// Stats reports received and lost counts.
func (rs *RSubscriber) Stats() (received, lost uint64) { return rs.sub.Stats() }

// Close releases the socket.
func (rs *RSubscriber) Close() {
	rs.sock.Close()
	<-rs.done
}
