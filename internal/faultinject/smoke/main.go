// Command smoke is the process-level chaos check run by CI: it executes a
// small campaign whose fault plan injects a mid-run panic and a store append
// failure, with retries enabled, and exits non-zero unless the process
// survives, every faulted cell recovers to a clean run, and the store still
// seals under a verifiable Merkle root. It proves the panic-isolation
// boundary at the level that matters — a real process that must not crash —
// where an in-process test's recover could mask a broken one.
package main

import (
	"context"
	"fmt"
	"os"

	sgml "repro"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "faultinject smoke:", err)
		os.Exit(1)
	}
	fmt.Println("faultinject smoke OK: panic + store fault absorbed, sweep sealed and verified")
}

func run() error {
	ms, err := sgml.EPICModelSet()
	if err != nil {
		return err
	}
	c := &sgml.Campaign{
		Name:  "chaos-smoke",
		Model: ms,
		Variants: []sgml.CampaignVariant{
			{Name: "smoke", Seeds: []int64{1, 2}, Scenario: &sgml.Scenario{
				Name:  "smoke-drill",
				Steps: 4,
				Events: []sgml.Event{
					{Name: "trip", Trigger: sgml.At(1), Action: sgml.OpenBreaker("CBMicro")},
				},
			}},
		},
	}

	// The plan: seed 1's first attempt panics in step 2, and the sweep's
	// first store append fails once. Both must be absorbed by retries.
	plan := faultinject.NewPlan(42).
		PanicRun("smoke", 1, 1, 2).
		FailStoreAppends(1)

	dir, err := os.MkdirTemp("", "chaos-smoke-store-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	rep, err := core.RunCampaign(context.Background(), c,
		core.WithRetries(2),
		core.WithRunProbe(plan.Probe()),
		core.WithCampaignStore(func(c *core.Campaign) (core.CampaignStore, error) {
			s, err := store.OpenJSONL(dir, c)
			if err != nil {
				return nil, err
			}
			s.SetAppendHook(plan.AppendHook())
			return s, nil
		}))
	if err != nil {
		return err
	}

	if rep.Failures != 0 {
		return fmt.Errorf("%d of %d runs failed despite retries:\n%s", rep.Failures, rep.TotalRuns, rep)
	}
	if plan.PanicsFired() == 0 {
		return fmt.Errorf("planned panic never fired — the smoke tested nothing")
	}
	if plan.StoreFailsFired() == 0 {
		return fmt.Errorf("planned store fault never fired — the smoke tested nothing")
	}
	if rep.StoreDegraded {
		return fmt.Errorf("store degraded despite retries: %s", rep.StoreErr)
	}
	if rep.Retried == 0 {
		return fmt.Errorf("no run carries retry history although faults fired")
	}
	if rep.MerkleRoot == "" {
		return fmt.Errorf("clean retried sweep was not sealed")
	}
	vs, err := sgml.VerifyStore(dir)
	if err != nil {
		return fmt.Errorf("store verification: %w", err)
	}
	if len(vs) != 1 || vs[0].Root != rep.MerkleRoot {
		return fmt.Errorf("store verification disagrees with the report (%v vs %s)", vs, rep.MerkleRoot)
	}
	return nil
}
