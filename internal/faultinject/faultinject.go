// Package faultinject builds seeded, deterministic fault plans for the
// campaign engine's chaos suites: panic in the Kth run's step M, wedge run J
// against its deadline, fail the Nth store append. A Plan compiles into the
// two closures the engine exposes as test-only seams — a step probe
// (core.WithRunProbe) and a store append hook (store JSONL.SetAppendHook) —
// and keeps an account of every fault it actually fired, so a test can assert
// its chaos happened before asserting the sweep survived it.
//
// The package deliberately imports neither internal/core nor internal/store:
// the closures it produces use only plain types, so they plug into both
// packages' hook points without creating an import cycle (core must not
// import store, and nothing may import a test harness back).
//
// Determinism: faults fire at plan-specified (cell, step) coordinates, on the
// first attempt of a cell only — a retried attempt runs clean, which is
// exactly the contract the chaos differential pins (the retried sweep's
// fingerprints and Merkle root must match the clean sweep's byte for byte).
// The seed feeds an internal RNG (RandomStep) so randomized plans replay.
package faultinject

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
)

// cell identifies one campaign run: the (variant, seed, attempt) triple.
type cell struct {
	variant string
	seed    int64
	attempt int
}

func (c cell) String() string {
	return fmt.Sprintf("%s:%d:%d", c.variant, c.seed, c.attempt)
}

// Plan is a deterministic fault schedule. Build it with the chained
// PanicRun/DelayRun/FailStoreAppends declarations, then thread Probe() into
// core.WithRunProbe and AppendHook() into the JSONL store. A Plan is safe for
// concurrent use by the campaign worker pool.
type Plan struct {
	seed int64
	rng  *rand.Rand

	mu         sync.Mutex
	panics     map[cell]int // step at which attempt 1 panics
	delays     map[cell]int // step at which attempt 1 wedges until ctx death
	storeFails map[int]bool // 1-based append indices that fail
	appends    int          // appends observed so far
	fired      []string     // account of every fault that actually fired

	panicsFired int
	delaysFired int
	storeFired  int
}

// NewPlan creates an empty fault plan. The seed drives RandomStep (and any
// future randomized builders); two plans built identically from the same seed
// inject identical faults.
func NewPlan(seed int64) *Plan {
	return &Plan{
		seed:       seed,
		rng:        rand.New(rand.NewSource(seed)),
		panics:     make(map[cell]int),
		delays:     make(map[cell]int),
		storeFails: make(map[int]bool),
	}
}

// Seed returns the plan's seed.
func (p *Plan) Seed() int64 { return p.seed }

// RandomStep draws a deterministic step index in [min, max] from the plan's
// seeded RNG — for plans that want seed-derived fault coordinates.
func (p *Plan) RandomStep(min, max int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if max <= min {
		return min
	}
	return min + p.rng.Intn(max-min+1)
}

// PanicRun schedules a panic in the given run's step (first attempt only):
// the device-model-blew-up fault the worker boundary must absorb.
func (p *Plan) PanicRun(variant string, seed int64, attempt, step int) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.panics[cell{variant, seed, attempt}] = step
	return p
}

// DelayRun schedules the given run to wedge at a step (first attempt only):
// the probe blocks until the run's context dies, so the run can only end by
// deadline (WithRunTimeout) or campaign cancellation.
func (p *Plan) DelayRun(variant string, seed int64, attempt, step int) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.delays[cell{variant, seed, attempt}] = step
	return p
}

// FailStoreAppends schedules the given 1-based store append attempts to fail.
// Append numbering is global across the sweep (the store hook serializes
// under the store lock); an engine-level Put retry is a new append number, so
// a single scheduled failure is exactly one transient fault.
func (p *Plan) FailStoreAppends(ns ...int) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, n := range ns {
		p.storeFails[n] = true
	}
	return p
}

// Probe compiles the plan's run faults into a step-probe closure matching
// core.RunProbe's shape. Faults target the first attempt of their cell only;
// retried attempts run clean.
func (p *Plan) Probe() func(ctx context.Context, variant string, seed int64, attempt, try, step int) error {
	return func(ctx context.Context, variant string, seed int64, attempt, try, step int) error {
		if try != 1 {
			return nil
		}
		c := cell{variant, seed, attempt}
		p.mu.Lock()
		panicAt, doPanic := p.panics[c]
		delayAt, doDelay := p.delays[c]
		if doPanic && step == panicAt {
			p.panicsFired++
			p.fired = append(p.fired, fmt.Sprintf("panic run=%s step=%d", c, step))
			p.mu.Unlock()
			panic(fmt.Sprintf("faultinject: planned panic in %s step %d", c, step))
		}
		if doDelay && step == delayAt {
			p.delaysFired++
			p.fired = append(p.fired, fmt.Sprintf("delay run=%s step=%d", c, step))
			p.mu.Unlock()
			// Wedge: hold the run until its own context dies. Blocking
			// happens outside the plan lock so other runs keep injecting.
			<-ctx.Done()
			return ctx.Err()
		}
		p.mu.Unlock()
		return nil
	}
}

// AppendHook compiles the plan's store faults into an append-hook closure for
// the JSONL store (SetAppendHook): the scheduled append numbers fail with a
// transient-looking error, every other append proceeds.
func (p *Plan) AppendHook() func() error {
	return func() error {
		p.mu.Lock()
		defer p.mu.Unlock()
		p.appends++
		if p.storeFails[p.appends] {
			p.storeFired++
			p.fired = append(p.fired, fmt.Sprintf("store-append n=%d", p.appends))
			return fmt.Errorf("faultinject: planned append failure (append %d)", p.appends)
		}
		return nil
	}
}

// Fired returns the account of every fault that actually fired, in firing
// order.
func (p *Plan) Fired() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.fired...)
}

// PanicsFired, DelaysFired and StoreFailsFired report how many faults of each
// kind actually fired — the preconditions a chaos test asserts before trusting
// that the sweep survived anything at all.
func (p *Plan) PanicsFired() int { p.mu.Lock(); defer p.mu.Unlock(); return p.panicsFired }

// DelaysFired reports the number of delay faults that fired.
func (p *Plan) DelaysFired() int { p.mu.Lock(); defer p.mu.Unlock(); return p.delaysFired }

// StoreFailsFired reports the number of store append failures injected.
func (p *Plan) StoreFailsFired() int { p.mu.Lock(); defer p.mu.Unlock(); return p.storeFired }
