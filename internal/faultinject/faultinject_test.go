package faultinject

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestFaultPlanPanicFiresOnce checks a scheduled panic fires at exactly its
// (cell, step) coordinate on try 1 and never on a retry attempt.
func TestFaultPlanPanicFiresOnce(t *testing.T) {
	plan := NewPlan(1).PanicRun("v", 3, 1, 2)
	probe := plan.Probe()
	ctx := context.Background()

	// Wrong cell, wrong step, wrong try: all silent.
	if err := probe(ctx, "v", 3, 1, 1, 1); err != nil {
		t.Fatalf("off-coordinate probe errored: %v", err)
	}
	if err := probe(ctx, "other", 3, 1, 1, 2); err != nil {
		t.Fatalf("off-cell probe errored: %v", err)
	}
	if err := probe(ctx, "v", 3, 1, 2, 2); err != nil {
		t.Fatalf("retry-attempt probe errored: %v", err)
	}
	if got := plan.PanicsFired(); got != 0 {
		t.Fatalf("panics fired early: %d", got)
	}

	didPanic := func() (p any) {
		defer func() { p = recover() }()
		probe(ctx, "v", 3, 1, 1, 2)
		return nil
	}()
	if didPanic == nil {
		t.Fatal("scheduled panic did not fire")
	}
	if got := plan.PanicsFired(); got != 1 {
		t.Fatalf("PanicsFired = %d, want 1", got)
	}
	if fired := plan.Fired(); len(fired) != 1 || !strings.Contains(fired[0], "panic run=v:3:1 step=2") {
		t.Fatalf("fired log = %v", fired)
	}
}

// TestFaultPlanDelayBlocksUntilContextDies checks the delay fault wedges the
// run until its context dies and returns the context's error.
func TestFaultPlanDelayBlocksUntilContextDies(t *testing.T) {
	plan := NewPlan(1).DelayRun("v", 1, 1, 0)
	probe := plan.Probe()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()

	start := time.Now()
	err := probe(ctx, "v", 1, 1, 1, 0)
	if err != context.DeadlineExceeded {
		t.Fatalf("delay probe returned %v, want DeadlineExceeded", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("delay probe returned before the context died")
	}
	if plan.DelaysFired() != 1 {
		t.Fatalf("DelaysFired = %d, want 1", plan.DelaysFired())
	}
}

// TestFaultPlanStoreAppendFailsScheduledIndices checks the append hook fails
// exactly the scheduled 1-based append numbers, so an engine-level retry (a
// fresh append number) goes through.
func TestFaultPlanStoreAppendFailsScheduledIndices(t *testing.T) {
	plan := NewPlan(1).FailStoreAppends(2, 4)
	hook := plan.AppendHook()

	var errs []bool
	for i := 0; i < 5; i++ {
		errs = append(errs, hook() != nil)
	}
	want := []bool{false, true, false, true, false}
	for i := range want {
		if errs[i] != want[i] {
			t.Fatalf("append %d: failed=%v, want %v (all: %v)", i+1, errs[i], want[i], errs)
		}
	}
	if plan.StoreFailsFired() != 2 {
		t.Fatalf("StoreFailsFired = %d, want 2", plan.StoreFailsFired())
	}
}

// TestFaultPlanRandomStepIsSeeded checks two same-seed plans draw identical
// step sequences and a different seed diverges.
func TestFaultPlanRandomStepIsSeeded(t *testing.T) {
	a, b, c := NewPlan(7), NewPlan(7), NewPlan(8)
	var sa, sb, sc []int
	for i := 0; i < 16; i++ {
		sa = append(sa, a.RandomStep(0, 1000))
		sb = append(sb, b.RandomStep(0, 1000))
		sc = append(sc, c.RandomStep(0, 1000))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("same-seed plans diverged at draw %d: %d vs %d", i, sa[i], sb[i])
		}
	}
	same := true
	for i := range sa {
		if sa[i] != sc[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical draws")
	}
	if got := a.RandomStep(5, 5); got != 5 {
		t.Fatalf("degenerate range draw = %d, want 5", got)
	}
}
