package ber

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/testutil"
)

// sampleStream builds a nested constructed encoding exercising both length
// forms.
func sampleStream(valueSize int) []byte {
	var e Encoder
	e.AppendConstructed(ApplicationConstructed(1), func(inner *Encoder) {
		inner.AppendString(ContextTag(0), "gocbRef/with/path")
		inner.AppendUint(ContextTag(1), 123456)
		inner.AppendConstructed(ContextConstructed(2), func(deep *Encoder) {
			deep.AppendBool(ContextTag(0), true)
			deep.AppendTLV(ContextTag(1), bytes.Repeat([]byte{0xAB}, valueSize))
			deep.AppendInt(ContextTag(2), -42)
		})
		inner.AppendFloat64(ContextTag(3), 1.0625)
	})
	return e.Bytes()
}

func TestDecoderMatchesDecode(t *testing.T) {
	var d Decoder
	for _, size := range []int{1, 10, 120, 200, 70000} {
		b := sampleStream(size)
		want, wantN, wantErr := Decode(b)
		got, gotN, gotErr := d.Decode(b)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("size %d: err %v vs %v", size, wantErr, gotErr)
		}
		if wantN != gotN {
			t.Fatalf("size %d: n %d vs %d", size, wantN, gotN)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("size %d: arena decode differs from Decode", size)
		}
	}
}

func TestDecoderReusesArenaAcrossCalls(t *testing.T) {
	var d Decoder
	big := sampleStream(50)
	if _, _, err := d.Decode(big); err != nil {
		t.Fatal(err)
	}
	grown := cap(d.arena)
	if grown == 0 {
		t.Fatal("arena did not grow")
	}
	// A second decode of a same-shaped message must not grow the arena.
	if _, _, err := d.Decode(sampleStream(60)); err != nil {
		t.Fatal(err)
	}
	if cap(d.arena) != grown {
		t.Errorf("arena regrew: %d -> %d", grown, cap(d.arena))
	}
}

func TestDecoderRejectsWhatDecodeRejects(t *testing.T) {
	var d Decoder
	cases := [][]byte{
		nil,
		{0x02},
		{0x02, 0x05, 0x01},                   // truncated value
		{0x1F, 0x01, 0x00},                   // long tag
		{0x30, 0x03, 0x02, 0x05, 0x01},       // truncated child
		{0x02, 0x85, 1, 1, 1, 1, 1},          // oversized length form
		append([]byte{0x30, 0x02}, 0xFF, 10), // garbage child header
	}
	for i, b := range cases {
		_, _, wantErr := Decode(b)
		_, _, gotErr := d.Decode(b)
		if (wantErr == nil) != (gotErr == nil) {
			t.Errorf("case %d: Decode err=%v, Decoder err=%v", i, wantErr, gotErr)
		}
	}
}

func TestDecoderArbitraryBytesNeverPanic(t *testing.T) {
	var d Decoder
	rng := uint64(12345)
	for i := 0; i < 5000; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		n := int(rng % 64)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte(rng >> (uint(j%8) * 8))
		}
		d.Decode(b) //nolint:errcheck — must not panic
	}
}

func TestAppendTLVFuncLongFormBackPatch(t *testing.T) {
	// The in-place constructed encoding must produce the same bytes as an
	// AppendTLV of the separately-built value, across the length-form
	// boundaries (0x7F/0x80, 0xFF/0x100, 0xFFFF/0x10000).
	for _, size := range []int{0, 1, 0x7F, 0x80, 0xFF, 0x100, 0xFFFF, 0x10000} {
		value := bytes.Repeat([]byte{0x5A}, size)
		var want, got Encoder
		want.AppendTLV(0xA1, value)
		got.AppendTLVFunc(0xA1, func(e *Encoder) { e.AppendRaw(value) })
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Errorf("size %d: in-place encoding differs", size)
		}
	}
}

func TestEncoderUseBufAppends(t *testing.T) {
	prefix := []byte{0xDE, 0xAD}
	var e Encoder
	e.UseBuf(append([]byte(nil), prefix...))
	e.AppendBool(ContextTag(0), true)
	out := e.Bytes()
	if !bytes.Equal(out[:2], prefix) {
		t.Errorf("prefix clobbered: % x", out)
	}
	if out[2] != ContextTag(0) {
		t.Errorf("tag = %#x", out[2])
	}
}

func TestEncoderWarmPathDoesNotAllocate(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation budgets are meaningless under -race")
	}
	var e Encoder
	bits := []byte{0xF0}
	encode := func() {
		e.Reset()
		e.AppendConstructed(ApplicationConstructed(1), func(inner *Encoder) {
			inner.AppendString(ContextTag(0), "ref")
			inner.AppendUint(ContextTag(1), 99)
			inner.AppendInt(ContextTag(2), -7)
			inner.AppendBool(ContextTag(3), true)
			inner.AppendFloat64(ContextTag(4), 0.5)
			inner.AppendFloat32(ContextTag(5), 0.25)
			inner.AppendBitString(ContextTag(6), bits, 4)
			inner.AppendUTCTime(ContextTag(7), 1_700_000_000, 0)
		})
	}
	encode() // warm the buffer
	if n := testing.AllocsPerRun(200, encode); n > 0 {
		t.Errorf("warm encode allocates %.1f times per run, want 0", n)
	}
}
