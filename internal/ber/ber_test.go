package ber

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestAppendIntBytesMinimal(t *testing.T) {
	tests := []struct {
		name string
		v    int64
		want []byte
	}{
		{"zero", 0, []byte{0x00}},
		{"one", 1, []byte{0x01}},
		{"minus one", -1, []byte{0xFF}},
		{"127", 127, []byte{0x7F}},
		{"128 needs two octets", 128, []byte{0x00, 0x80}},
		{"-128", -128, []byte{0x80}},
		{"-129", -129, []byte{0xFF, 0x7F}},
		{"256", 256, []byte{0x01, 0x00}},
		{"65535", 65535, []byte{0x00, 0xFF, 0xFF}},
		{"max int64", math.MaxInt64, []byte{0x7F, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}},
		{"min int64", math.MinInt64, []byte{0x80, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := AppendIntBytes(nil, tt.v)
			if !bytes.Equal(got, tt.want) {
				t.Errorf("AppendIntBytes(%d) = %x, want %x", tt.v, got, tt.want)
			}
		})
	}
}

func TestIntRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		var e Encoder
		e.AppendInt(0x02, v)
		tlv, n, err := Decode(e.Bytes())
		if err != nil || n != e.Len() {
			return false
		}
		got, err := tlv.Int()
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUintRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		var e Encoder
		e.AppendUint(0x02, v)
		tlv, _, err := Decode(e.Bytes())
		if err != nil {
			return false
		}
		got, err := tlv.Uint()
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64RoundTrip(t *testing.T) {
	f := func(v float64) bool {
		var e Encoder
		e.AppendFloat64(0x87, v)
		tlv, _, err := Decode(e.Bytes())
		if err != nil {
			return false
		}
		got, err := tlv.Float64()
		if err != nil {
			return false
		}
		if math.IsNaN(v) {
			return math.IsNaN(got)
		}
		return got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat32RoundTrip(t *testing.T) {
	var e Encoder
	e.AppendFloat32(0x87, 3.25)
	tlv, _, err := Decode(e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	got, err := tlv.Float64()
	if err != nil {
		t.Fatal(err)
	}
	if got != 3.25 {
		t.Errorf("Float64() = %v, want 3.25", got)
	}
}

func TestStringRoundTrip(t *testing.T) {
	f := func(s string) bool {
		var e Encoder
		e.AppendString(0x1A, s)
		tlv, _, err := Decode(e.Bytes())
		return err == nil && tlv.String() == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoolRoundTrip(t *testing.T) {
	for _, v := range []bool{true, false} {
		var e Encoder
		e.AppendBool(0x83, v)
		tlv, _, err := Decode(e.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		got, err := tlv.Bool()
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Errorf("Bool() = %v, want %v", got, v)
		}
	}
}

func TestBitStringRoundTrip(t *testing.T) {
	var e Encoder
	e.AppendBitString(0x84, []byte{0b1100_0000, 0b1000_0000}, 10)
	tlv, _, err := Decode(e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	bits, n, err := tlv.BitString()
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("nbits = %d, want 10", n)
	}
	if !bytes.Equal(bits, []byte{0b1100_0000, 0b1000_0000}) {
		t.Errorf("bits = %08b", bits)
	}
}

func TestUTCTimeRoundTrip(t *testing.T) {
	var e Encoder
	const sec, nanos = 1_700_000_000, 500_000_000
	e.AppendUTCTime(0x91, sec, nanos)
	tlv, _, err := Decode(e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	gotSec, gotNanos, err := tlv.UTCTime()
	if err != nil {
		t.Fatal(err)
	}
	if gotSec != sec {
		t.Errorf("sec = %d, want %d", gotSec, sec)
	}
	// The 24-bit fraction loses precision; allow ~60ns.
	if diff := gotNanos - nanos; diff < -60 || diff > 60 {
		t.Errorf("nanos = %d, want ~%d", gotNanos, nanos)
	}
}

func TestConstructedNesting(t *testing.T) {
	var e Encoder
	e.AppendConstructed(ContextConstructed(1), func(inner *Encoder) {
		inner.AppendInt(ContextTag(0), 42)
		inner.AppendString(ContextTag(1), "hello")
		inner.AppendConstructed(ContextConstructed(2), func(deep *Encoder) {
			deep.AppendBool(ContextTag(3), true)
		})
	})
	tlv, n, err := Decode(e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if n != e.Len() {
		t.Errorf("consumed %d bytes of %d", n, e.Len())
	}
	if !tlv.IsConstructed() || len(tlv.Children) != 3 {
		t.Fatalf("children = %d, want 3", len(tlv.Children))
	}
	c0, err := tlv.Child(ContextTag(0))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := c0.Int(); v != 42 {
		t.Errorf("child 0 = %d, want 42", v)
	}
	c2, err := tlv.Child(ContextConstructed(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(c2.Children) != 1 {
		t.Fatalf("deep children = %d, want 1", len(c2.Children))
	}
	if b, _ := c2.Children[0].Bool(); !b {
		t.Error("deep bool = false, want true")
	}
}

func TestLongLengthForms(t *testing.T) {
	for _, size := range []int{0, 1, 127, 128, 255, 256, 65535, 65536, 1 << 20} {
		payload := bytes.Repeat([]byte{0xAB}, size)
		var e Encoder
		e.AppendTLV(0x04, payload)
		tlv, n, err := Decode(e.Bytes())
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if n != e.Len() {
			t.Errorf("size %d: consumed %d of %d", size, n, e.Len())
		}
		if !bytes.Equal(tlv.Value, payload) {
			t.Errorf("size %d: payload mismatch", size)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	tests := []struct {
		name string
		in   []byte
	}{
		{"empty", nil},
		{"single byte", []byte{0x02}},
		{"truncated value", []byte{0x02, 0x05, 0x01}},
		{"truncated long length", []byte{0x02, 0x82, 0x01}},
		{"indefinite/overlong length", []byte{0x02, 0x85, 1, 2, 3, 4, 5, 6}},
		{"multi-byte tag", []byte{0x1F, 0x81, 0x00}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, _, err := Decode(tt.in); err == nil {
				t.Errorf("Decode(%x) succeeded, want error", tt.in)
			}
		})
	}
}

func TestDecodeAllSequence(t *testing.T) {
	var e Encoder
	for i := int64(0); i < 10; i++ {
		e.AppendInt(0x02, i)
	}
	elems, err := DecodeAll(e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(elems) != 10 {
		t.Fatalf("len = %d, want 10", len(elems))
	}
	for i, el := range elems {
		if v, _ := el.Int(); v != int64(i) {
			t.Errorf("elem %d = %d", i, v)
		}
	}
}

func TestDecodeAllRejectsGarbage(t *testing.T) {
	var e Encoder
	e.AppendInt(0x02, 7)
	in := append(e.Bytes(), 0x02) // dangling tag byte
	if _, err := DecodeAll(in); err == nil {
		t.Error("DecodeAll with trailing garbage succeeded, want error")
	}
}

func TestArbitraryBytesNeverPanic(t *testing.T) {
	f := func(b []byte) bool {
		_, _, _ = Decode(b) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestChildErrors(t *testing.T) {
	var e Encoder
	e.AppendConstructed(0x30, func(inner *Encoder) {
		inner.AppendInt(0x02, 1)
	})
	tlv, _, err := Decode(e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tlv.Child(0x99); err == nil {
		t.Error("Child(0x99) succeeded, want error")
	}
	if _, err := tlv.ChildN(5); err == nil {
		t.Error("ChildN(5) succeeded, want error")
	}
	if _, err := tlv.ChildN(0); err != nil {
		t.Errorf("ChildN(0) error: %v", err)
	}
}
