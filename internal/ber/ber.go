// Package ber implements a minimal ASN.1 BER-style tag-length-value codec.
//
// IEC 61850 application protocols (MMS, GOOSE) are defined over ASN.1 BER.
// The cyber range does not need a full ASN.1 compiler; it needs interoperable,
// byte-level TLV framing so that protocol messages are real encoded packets
// that can be captured, replayed and tampered with on the emulated network.
// This package provides exactly that: definite-length BER encoding with
// context-specific, application and universal tag classes, plus helpers for
// the primitive types the protocol stacks use (integer, boolean, string,
// bit-string, float, timestamp).
package ber

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Class is the BER tag class.
type Class byte

// Tag classes as defined by X.690.
const (
	ClassUniversal   Class = 0x00
	ClassApplication Class = 0x40
	ClassContext     Class = 0x80
	ClassPrivate     Class = 0xC0
)

// Constructed marks a TLV whose value is itself a sequence of TLVs.
const Constructed byte = 0x20

// Errors returned by the decoder.
var (
	ErrTruncated    = errors.New("ber: truncated element")
	ErrLengthForm   = errors.New("ber: unsupported length form")
	ErrTagMismatch  = errors.New("ber: tag mismatch")
	ErrValueRange   = errors.New("ber: value out of range")
	ErrLongTag      = errors.New("ber: multi-byte tags unsupported")
	ErrTrailingData = errors.New("ber: trailing data")
)

// TLV is a decoded BER element. For constructed elements, Children holds the
// decoded sub-elements and Value holds the raw concatenated encoding.
type TLV struct {
	Tag      byte
	Value    []byte
	Children []TLV
}

// IsConstructed reports whether the element carries nested TLVs.
func (t TLV) IsConstructed() bool { return t.Tag&Constructed != 0 }

// TagNumber returns the low 5 bits of the identifier octet.
func (t TLV) TagNumber() int { return int(t.Tag & 0x1F) }

// Class returns the tag class of the element.
func (t TLV) Class() Class { return Class(t.Tag & 0xC0) }

// Encoder builds a BER byte stream. The zero value is ready to use. All
// Append* methods are allocation-free apart from buffer growth, so an
// encoder whose buffer is reused (Reset, or UseBuf with a pooled slice)
// encodes on a warm path without allocating.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded stream.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset discards the buffer contents, retaining capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// UseBuf makes the encoder append to dst, enabling MarshalAppend-style
// callers to encode into a caller-owned (typically pooled) buffer.
func (e *Encoder) UseBuf(dst []byte) { e.buf = dst }

// AppendTLV appends one element with the given identifier octet and value.
func (e *Encoder) AppendTLV(tag byte, value []byte) {
	e.buf = append(e.buf, tag)
	e.buf = appendLength(e.buf, len(value))
	e.buf = append(e.buf, value...)
}

// AppendConstructed appends a constructed element whose value is produced by
// build. The element is encoded in place in the encoder's own buffer — build
// receives e itself — and the length octets are back-patched afterwards, so
// nesting allocates nothing.
func (e *Encoder) AppendConstructed(tag byte, build func(*Encoder)) {
	e.AppendTLVFunc(tag|Constructed, build)
}

// AppendRaw appends pre-encoded bytes verbatim (value octets inside an
// AppendTLVFunc build callback).
func (e *Encoder) AppendRaw(b []byte) { e.buf = append(e.buf, b...) }

// AppendTLVFunc appends one element with the given identifier octet (used
// verbatim — set the Constructed bit yourself or use AppendConstructed)
// whose value octets are produced in place by build, with the length octets
// back-patched afterwards.
func (e *Encoder) AppendTLVFunc(tag byte, build func(*Encoder)) {
	e.buf = append(e.buf, tag, 0) // short-form length placeholder
	start := len(e.buf)
	build(e)
	n := len(e.buf) - start
	if n < 0x80 {
		e.buf[start-1] = byte(n)
		return
	}
	// Long form: widen the length field and shift the value right.
	var lb [5]byte
	enc := appendLength(lb[:0], n)
	extra := len(enc) - 1
	for i := 0; i < extra; i++ {
		e.buf = append(e.buf, 0)
	}
	copy(e.buf[start+extra:], e.buf[start:start+n])
	copy(e.buf[start-1:], enc)
}

// AppendInt appends a two's-complement integer with minimal octets.
func (e *Encoder) AppendInt(tag byte, v int64) {
	var tmp [8]byte
	e.AppendTLV(tag, AppendIntBytes(tmp[:0], v))
}

// AppendUint appends an unsigned integer with minimal octets (a leading zero
// octet is added when the high bit would otherwise flag a negative value).
func (e *Encoder) AppendUint(tag byte, v uint64) {
	var tmp [9]byte
	e.AppendTLV(tag, AppendUintBytes(tmp[:0], v))
}

// AppendBool appends a boolean (0x00 / 0xFF per BER convention).
func (e *Encoder) AppendBool(tag byte, v bool) {
	b := byte(0x00)
	if v {
		b = 0xFF
	}
	e.buf = append(e.buf, tag, 1, b)
}

// AppendString appends a UTF-8 / visible string value.
func (e *Encoder) AppendString(tag byte, s string) {
	e.buf = append(e.buf, tag)
	e.buf = appendLength(e.buf, len(s))
	e.buf = append(e.buf, s...)
}

// AppendFloat64 appends an IEEE-754 float in the 9-octet format used by MMS
// floating-point (exponent-width octet followed by the big-endian IEEE bits).
func (e *Encoder) AppendFloat64(tag byte, f float64) {
	var v [9]byte
	v[0] = 11 // exponent width of IEEE-754 double
	binary.BigEndian.PutUint64(v[1:], math.Float64bits(f))
	e.AppendTLV(tag, v[:])
}

// AppendFloat32 appends a single-precision IEEE-754 float (5-octet MMS form).
func (e *Encoder) AppendFloat32(tag byte, f float32) {
	var v [5]byte
	v[0] = 8 // exponent width of IEEE-754 single
	binary.BigEndian.PutUint32(v[1:], math.Float32bits(f))
	e.AppendTLV(tag, v[:])
}

// AppendBitString appends a bit string with the given number of valid bits.
// bits is packed MSB-first.
func (e *Encoder) AppendBitString(tag byte, bits []byte, nbits int) {
	unused := len(bits)*8 - nbits
	if unused < 0 || unused > 7 {
		unused = 0
	}
	e.buf = append(e.buf, tag)
	e.buf = appendLength(e.buf, len(bits)+1)
	e.buf = append(e.buf, byte(unused))
	e.buf = append(e.buf, bits...)
}

// AppendUTCTime appends an 8-octet IEC 61850 UtcTime: 4-octet seconds since
// the epoch, 3-octet fraction, 1-octet time quality.
func (e *Encoder) AppendUTCTime(tag byte, unixSec int64, fracNanos int64) {
	var v [8]byte
	binary.BigEndian.PutUint32(v[0:], uint32(unixSec))
	frac := uint32((fracNanos << 24) / 1_000_000_000)
	v[4] = byte(frac >> 16)
	v[5] = byte(frac >> 8)
	v[6] = byte(frac)
	v[7] = 0x0A // leap-seconds known | 10 bits of accuracy
	e.AppendTLV(tag, v[:])
}

// AppendIntBytes appends the minimal two's-complement encoding of v to dst.
func AppendIntBytes(dst []byte, v int64) []byte {
	n := 1
	for ; n < 8; n++ {
		if shifted := v >> (uint(n) * 8); shifted == 0 || shifted == -1 {
			// Check the sign bit of the candidate top octet agrees.
			top := byte(v >> (uint(n-1) * 8))
			if (shifted == 0 && top&0x80 == 0) || (shifted == -1 && top&0x80 != 0) {
				break
			}
		}
	}
	for i := n - 1; i >= 0; i-- {
		dst = append(dst, byte(v>>(uint(i)*8)))
	}
	return dst
}

// AppendUintBytes appends the minimal unsigned encoding of v to dst, with a
// leading zero octet when needed to keep the value non-negative under BER.
func AppendUintBytes(dst []byte, v uint64) []byte {
	n := 1
	for ; n < 8; n++ {
		if v>>(uint(n)*8) == 0 {
			break
		}
	}
	if v>>(uint(n-1)*8)&0x80 != 0 {
		dst = append(dst, 0x00)
	}
	for i := n - 1; i >= 0; i-- {
		dst = append(dst, byte(v>>(uint(i)*8)))
	}
	return dst
}

func appendLength(dst []byte, n int) []byte {
	switch {
	case n < 0x80:
		return append(dst, byte(n))
	case n <= 0xFF:
		return append(dst, 0x81, byte(n))
	case n <= 0xFFFF:
		return append(dst, 0x82, byte(n>>8), byte(n))
	case n <= 0xFFFFFF:
		return append(dst, 0x83, byte(n>>16), byte(n>>8), byte(n))
	default:
		return append(dst, 0x84, byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
	}
}

// parseHeader decodes the identifier and length octets of the element at the
// start of b, returning a shallow TLV (Children unset) and its total size.
func parseHeader(b []byte) (TLV, int, error) {
	if len(b) < 2 {
		return TLV{}, 0, ErrTruncated
	}
	tag := b[0]
	if tag&0x1F == 0x1F {
		return TLV{}, 0, ErrLongTag
	}
	length, lenBytes, err := decodeLength(b[1:])
	if err != nil {
		return TLV{}, 0, err
	}
	total := 1 + lenBytes + length
	if total > len(b) {
		return TLV{}, 0, ErrTruncated
	}
	return TLV{Tag: tag, Value: b[1+lenBytes : total]}, total, nil
}

// Decode parses one TLV from b and returns it with the number of bytes read.
// Constructed elements are decoded recursively.
func Decode(b []byte) (TLV, int, error) {
	t, total, err := parseHeader(b)
	if err != nil {
		return TLV{}, 0, err
	}
	if t.IsConstructed() {
		children, err := DecodeAll(t.Value)
		if err != nil {
			return TLV{}, 0, fmt.Errorf("ber: decoding children of tag 0x%02x: %w", t.Tag, err)
		}
		t.Children = children
	}
	return t, total, nil
}

// Decoder decodes TLV trees into a reusable arena: one Decode call fills a
// scratch []TLV with every nested element instead of allocating a fresh
// Children slice per constructed node. Once the arena has grown to the
// largest message seen, subsequent decodes allocate nothing.
//
// Ownership: the returned TLV's Value fields alias the input buffer and its
// Children alias the decoder's arena; both are valid only until the next
// Decode call. Callers that retain decoded data must copy it out first. A
// Decoder is not safe for concurrent use.
type Decoder struct {
	arena []TLV
}

// Decode parses one TLV from b, like the package-level Decode, reusing the
// decoder's arena for all nested elements.
func (d *Decoder) Decode(b []byte) (TLV, int, error) {
	elems, _, err := countTree(b)
	if err != nil {
		return TLV{}, 0, err
	}
	// Pre-sizing the arena to the full tree guarantees the appends in fill
	// never reallocate, so the Children sub-slices handed out stay valid.
	if cap(d.arena) < elems {
		d.arena = make([]TLV, 0, elems)
	} else {
		d.arena = d.arena[:0]
	}
	t, total, err := parseHeader(b)
	if err != nil {
		return TLV{}, 0, err
	}
	if t.IsConstructed() {
		if err := d.fill(&t); err != nil {
			return TLV{}, 0, fmt.Errorf("ber: decoding children of tag 0x%02x: %w", t.Tag, err)
		}
	}
	return t, total, nil
}

// fill decodes the direct children of constructed t into a contiguous arena
// range, then recurses to fill each constructed child in place.
func (d *Decoder) fill(t *TLV) error {
	start := len(d.arena)
	v := t.Value
	for len(v) > 0 {
		ct, n, err := parseHeader(v)
		if err != nil {
			return err
		}
		d.arena = append(d.arena, ct)
		v = v[n:]
	}
	end := len(d.arena)
	t.Children = d.arena[start:end:end]
	for i := start; i < end; i++ {
		if d.arena[i].IsConstructed() {
			if err := d.fill(&d.arena[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// countTree returns the number of TLV elements (including nested ones) in the
// single element at the start of b, validating the whole structure.
func countTree(b []byte) (elems, size int, err error) {
	t, total, err := parseHeader(b)
	if err != nil {
		return 0, 0, err
	}
	elems = 1
	if t.IsConstructed() {
		v := t.Value
		for len(v) > 0 {
			ce, cs, err := countTree(v)
			if err != nil {
				return 0, 0, err
			}
			elems += ce
			v = v[cs:]
		}
	}
	return elems, total, nil
}

// DecodeAll parses a concatenation of TLVs until b is exhausted.
func DecodeAll(b []byte) ([]TLV, error) {
	var out []TLV
	for len(b) > 0 {
		t, n, err := Decode(b)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		b = b[n:]
	}
	return out, nil
}

func decodeLength(b []byte) (length, n int, err error) {
	if len(b) == 0 {
		return 0, 0, ErrTruncated
	}
	first := b[0]
	if first < 0x80 {
		return int(first), 1, nil
	}
	numOctets := int(first & 0x7F)
	if numOctets == 0 || numOctets > 4 {
		return 0, 0, ErrLengthForm
	}
	if len(b) < 1+numOctets {
		return 0, 0, ErrTruncated
	}
	for i := 0; i < numOctets; i++ {
		length = length<<8 | int(b[1+i])
	}
	if length < 0 {
		return 0, 0, ErrValueRange
	}
	return length, 1 + numOctets, nil
}

// Int decodes a two's-complement integer value.
func (t TLV) Int() (int64, error) {
	v := t.Value
	if len(v) == 0 || len(v) > 8 {
		return 0, ErrValueRange
	}
	var out int64
	if v[0]&0x80 != 0 {
		out = -1
	}
	for _, b := range v {
		out = out<<8 | int64(b)
	}
	return out, nil
}

// Uint decodes an unsigned integer value.
func (t TLV) Uint() (uint64, error) {
	v := t.Value
	if len(v) == 0 || len(v) > 9 || (len(v) == 9 && v[0] != 0) {
		return 0, ErrValueRange
	}
	var out uint64
	for _, b := range v {
		out = out<<8 | uint64(b)
	}
	return out, nil
}

// Bool decodes a boolean value (any non-zero octet is true).
func (t TLV) Bool() (bool, error) {
	if len(t.Value) != 1 {
		return false, ErrValueRange
	}
	return t.Value[0] != 0, nil
}

// String decodes the value as a string.
func (t TLV) String() string { return string(t.Value) }

// Float64 decodes an MMS floating-point value (5- or 9-octet form).
func (t TLV) Float64() (float64, error) {
	switch len(t.Value) {
	case 9:
		return math.Float64frombits(binary.BigEndian.Uint64(t.Value[1:])), nil
	case 5:
		return float64(math.Float32frombits(binary.BigEndian.Uint32(t.Value[1:]))), nil
	default:
		return 0, ErrValueRange
	}
}

// BitString decodes the value as (bits, nbits).
func (t TLV) BitString() ([]byte, int, error) {
	if len(t.Value) == 0 {
		return nil, 0, ErrValueRange
	}
	unused := int(t.Value[0])
	if unused > 7 {
		return nil, 0, ErrValueRange
	}
	bits := t.Value[1:]
	return bits, len(bits)*8 - unused, nil
}

// UTCTime decodes an 8-octet IEC 61850 UtcTime into (unixSec, fracNanos).
func (t TLV) UTCTime() (int64, int64, error) {
	if len(t.Value) != 8 {
		return 0, 0, ErrValueRange
	}
	sec := int64(binary.BigEndian.Uint32(t.Value[0:4]))
	frac := int64(t.Value[4])<<16 | int64(t.Value[5])<<8 | int64(t.Value[6])
	nanos := (frac * 1_000_000_000) >> 24
	return sec, nanos, nil
}

// Child returns the first child with the given tag, or an error.
func (t TLV) Child(tag byte) (TLV, error) {
	for _, c := range t.Children {
		if c.Tag == tag {
			return c, nil
		}
	}
	return TLV{}, fmt.Errorf("%w: no child with tag 0x%02x", ErrTagMismatch, tag)
}

// ChildN returns the i-th child, or an error if out of range.
func (t TLV) ChildN(i int) (TLV, error) {
	if i < 0 || i >= len(t.Children) {
		return TLV{}, fmt.Errorf("%w: child index %d of %d", ErrValueRange, i, len(t.Children))
	}
	return t.Children[i], nil
}

// ContextTag builds a context-specific primitive identifier octet.
func ContextTag(n int) byte { return byte(ClassContext) | byte(n&0x1F) }

// ContextConstructed builds a context-specific constructed identifier octet.
func ContextConstructed(n int) byte { return byte(ClassContext) | Constructed | byte(n&0x1F) }

// ApplicationConstructed builds an application-class constructed identifier octet.
func ApplicationConstructed(n int) byte { return byte(ClassApplication) | Constructed | byte(n&0x1F) }
