package sgmlconf

import (
	"encoding/json"
	"fmt"
)

// SCADABR-style import JSON. The paper's toolchain includes "a script to
// translate the SCADA Config XML into a JSON format that SCADABR can import"
// (§III-B); this is that translation, consumed by internal/scada.

// ScadaImport is the top-level import document.
type ScadaImport struct {
	DataSources []ScadaImportSource `json:"dataSources"`
	DataPoints  []ScadaImportPoint  `json:"dataPoints"`
}

// ScadaImportSource mirrors a SCADABR data source definition.
type ScadaImportSource struct {
	XID            string `json:"xid"`
	Name           string `json:"name"`
	Type           string `json:"type"` // MODBUS_IP | MMS
	Host           string `json:"host"`
	IP             string `json:"ip"`
	Port           int    `json:"port"`
	UpdatePeriodMS int    `json:"updatePeriodMs"`
	Enabled        bool   `json:"enabled"`
}

// ScadaImportPoint mirrors a SCADABR data point definition.
type ScadaImportPoint struct {
	XID             string  `json:"xid"`
	Name            string  `json:"name"`
	DataSourceXID   string  `json:"dataSourceXid"`
	PointLocator    string  `json:"pointLocator"` // register / MMS object reference
	DataType        string  `json:"dataType"`     // NUMERIC | BINARY
	Multiplier      float64 `json:"multiplier"`
	SettableEnabled bool    `json:"settable"`
	AlarmEnabled    bool    `json:"alarmEnabled"`
	AlarmLowLimit   float64 `json:"alarmLowLimit,omitempty"`
	AlarmHighLimit  float64 `json:"alarmHighLimit,omitempty"`
}

// ToImportJSON converts the SCADA Config XML model to the importable JSON.
func (c *SCADAConfig) ToImportJSON() ([]byte, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	imp := ScadaImport{}
	for _, s := range c.DataSources {
		typ := "MODBUS_IP"
		if s.Protocol == "mms" {
			typ = "MMS"
		}
		poll := s.PollMS
		if poll <= 0 {
			poll = 1000
		}
		imp.DataSources = append(imp.DataSources, ScadaImportSource{
			XID:            "DS_" + s.Name,
			Name:           s.Name,
			Type:           typ,
			Host:           s.Host,
			IP:             s.IP,
			Port:           s.Port,
			UpdatePeriodMS: poll,
			Enabled:        true,
		})
	}
	for _, p := range c.DataPoints {
		dt := "NUMERIC"
		if p.Kind == "binary" {
			dt = "BINARY"
		}
		mult := p.Scale
		if mult == 0 {
			mult = 1
		}
		imp.DataPoints = append(imp.DataPoints, ScadaImportPoint{
			XID:             "DP_" + p.Name,
			Name:            p.Name,
			DataSourceXID:   "DS_" + p.Source,
			PointLocator:    p.Address,
			DataType:        dt,
			Multiplier:      mult,
			SettableEnabled: p.Writable,
			AlarmEnabled:    p.HasAlarm,
			AlarmLowLimit:   p.AlarmLow,
			AlarmHighLimit:  p.AlarmHigh,
		})
	}
	return json.MarshalIndent(imp, "", "  ")
}

// ParseImportJSON decodes the importable JSON back into its model form
// (the SCADA HMI loads this at startup, mirroring the paper's manual upload
// of "the SCADABR Config JSON data").
func ParseImportJSON(data []byte) (*ScadaImport, error) {
	var imp ScadaImport
	if err := json.Unmarshal(data, &imp); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	srcs := map[string]bool{}
	for _, s := range imp.DataSources {
		srcs[s.XID] = true
	}
	for _, p := range imp.DataPoints {
		if !srcs[p.DataSourceXID] {
			return nil, fmt.Errorf("%w: point %q references unknown source %q", ErrConfig, p.XID, p.DataSourceXID)
		}
	}
	return &imp, nil
}
