package sgmlconf

import (
	"encoding/xml"
	"fmt"
	"strconv"
	"strings"
)

// ---------------------------------------------------------------------------
// Scenario XML
// ---------------------------------------------------------------------------
//
// The fourth supplementary schema: a declarative experiment description in
// the same flat, attribute-based style as the three SG-ML config files. It
// extends the Power System Extra Config's <Step> time series to the full
// scenario vocabulary — power faults, network impairments, attack steps and
// IDS deployment — with triggers that may be a step index, a simulated-time
// offset, or an observed condition.
//
//	<Scenario name="redblue" steps="16" seed="7">
//	  <Attacker name="redbox" switch="sw-TransLAN" ip="10.0.1.13"/>
//	  <Event name="blue"  atStep="0" kind="deployIDS" writers="SCADA,CPLC" threshold="5"/>
//	  <Event name="recon" atStep="3" kind="portScan" attacker="redbox" target="TIED1"/>
//	  <Event name="fci"   onAlert="tcp-port-scan" plus="1" kind="falseCommand"
//	         attacker="redbox" target="TIED1" ref="LD0/XCBR1.Pos.Oper" boolValue="false"/>
//	</Scenario>

// ScenarioConfig is the root of a Scenario XML file. The optional attributes
// carry omitempty so the writer half (MarshalScenarioConfig) emits the same
// sparse attribute style the examples are written in; parsing is unaffected.
type ScenarioConfig struct {
	XMLName   xml.Name           `xml:"Scenario"`
	Name      string             `xml:"name,attr"`
	Steps     int                `xml:"steps,attr,omitempty"`
	Seed      int64              `xml:"seed,attr,omitempty"`
	Attackers []ScenarioAttacker `xml:"Attacker"`
	Events    []ScenarioEvent    `xml:"Event"`
}

// ScenarioAttacker places an attacker host on a named switch.
type ScenarioAttacker struct {
	Name   string `xml:"name,attr"`
	Switch string `xml:"switch,attr"`
	IP     string `xml:"ip,attr"`
	MAC    string `xml:"mac,attr,omitempty"` // optional; derived from the seed when empty
}

// ScenarioEvent is one trigger + action pair. Exactly one trigger attribute
// may be set (none defaults to atStep="0"); the action attributes used depend
// on kind.
type ScenarioEvent struct {
	Name string `xml:"name,attr,omitempty"`

	// Triggers (mutually exclusive). AtStep is a pointer so atStep="0" stays
	// distinguishable from "no trigger attribute" on both passes: a non-nil
	// pointer to zero survives omitempty, a nil one is omitted.
	AtStep         *int   `xml:"atStep,attr,omitempty"`
	AfterMS        int    `xml:"afterMs,attr,omitempty"`
	OnBreakerOpen  string `xml:"onBreakerOpen,attr,omitempty"`
	OnBreakerClose string `xml:"onBreakerClose,attr,omitempty"`
	OnAlert        string `xml:"onAlert,attr,omitempty"`
	OnDeadBuses    int    `xml:"onDeadBuses,attr,omitempty"`
	Plus           int    `xml:"plus,attr,omitempty"` // extra step delay on any trigger

	// Action selector.
	Kind string `xml:"kind,attr"`

	// Power actions: loadScale|loadP|genP|sgenP|switch|lineService (generic,
	// element+value) and the openBreaker|closeBreaker sugar (element only).
	Element string  `xml:"element,attr,omitempty"`
	Value   float64 `xml:"value,attr,omitempty"`

	// Network impairments: linkDown|linkUp|linkFlap|linkLoss|linkLatency.
	LinkA     string  `xml:"linkA,attr,omitempty"`
	LinkB     string  `xml:"linkB,attr,omitempty"`
	DownSteps int     `xml:"downSteps,attr,omitempty"`
	Rate      float64 `xml:"rate,attr,omitempty"`
	LatencyMS int     `xml:"latencyMs,attr,omitempty"`

	// Attack steps: portScan|falseCommand|mitm|stopMitm.
	Attacker    string  `xml:"attacker,attr,omitempty"`
	Target      string  `xml:"target,attr,omitempty"`
	Ports       string  `xml:"ports,attr,omitempty"` // comma-separated; empty = defaults
	Ref         string  `xml:"ref,attr,omitempty"`
	BoolValue   *bool   `xml:"boolValue,attr,omitempty"` // falseCommand payload; Value when absent
	VictimA     string  `xml:"victimA,attr,omitempty"`
	VictimB     string  `xml:"victimB,attr,omitempty"`
	ScaleFloats float64 `xml:"scaleFloats,attr,omitempty"`
	Blackhole   bool    `xml:"blackhole,attr,omitempty"`
	ForSteps    int     `xml:"forSteps,attr,omitempty"`

	// Sensor deployment: deployIDS.
	Sensor    string `xml:"sensor,attr,omitempty"`
	Writers   string `xml:"writers,attr,omitempty"` // comma-separated node names
	Threshold int    `xml:"threshold,attr,omitempty"`

	// PLC tampering: modbusTamper (attacker + target select who and which
	// PLC; these select what is written).
	Table   string `xml:"table,attr,omitempty"`   // "coil" (default) or "holding"
	Address int    `xml:"address,attr,omitempty"` // coil/register address
	Word    int    `xml:"word,attr,omitempty"`    // value written (coil: 0 clears, else sets)
}

// PortList parses the comma-separated port list (nil when empty).
func (e *ScenarioEvent) PortList() []uint16 {
	if e.Ports == "" {
		return nil
	}
	var out []uint16
	for _, s := range strings.Split(e.Ports, ",") {
		p, err := strconv.ParseUint(strings.TrimSpace(s), 10, 16)
		if err != nil {
			continue // Validate rejects malformed lists before this is used
		}
		out = append(out, uint16(p))
	}
	return out
}

// WriterList parses the comma-separated authorized-writer node names.
func (e *ScenarioEvent) WriterList() []string {
	if e.Writers == "" {
		return nil
	}
	var out []string
	for _, s := range strings.Split(e.Writers, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

// SensorName returns the sensor attribute (deployIDS), defaulting downstream.
func (e *ScenarioEvent) SensorName() string { return e.Sensor }

var scenarioActionKinds = map[string]bool{
	"loadScale": true, "loadP": true, "genP": true, "sgenP": true,
	"switch": true, "lineService": true,
	"openBreaker": true, "closeBreaker": true,
	"linkDown": true, "linkUp": true, "linkFlap": true,
	"linkLoss": true, "linkLatency": true,
	"portScan": true, "falseCommand": true, "mitm": true, "stopMitm": true,
	"modbusTamper": true,
	"deployIDS":    true,
}

// Validate checks the structural invariants: trigger exclusivity, known
// action kinds and the per-kind required attributes. Name resolution against
// a compiled range happens when the scenario runs.
func (c *ScenarioConfig) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("%w: scenario without name", ErrConfig)
	}
	if c.Steps < 0 {
		return fmt.Errorf("%w: scenario steps %d", ErrConfig, c.Steps)
	}
	attackers := map[string]bool{}
	for _, a := range c.Attackers {
		if a.Name == "" || attackers[a.Name] {
			return fmt.Errorf("%w: bad or duplicate attacker %q", ErrConfig, a.Name)
		}
		if a.Switch == "" {
			return fmt.Errorf("%w: attacker %q without switch", ErrConfig, a.Name)
		}
		if a.IP == "" {
			return fmt.Errorf("%w: attacker %q without ip", ErrConfig, a.Name)
		}
		attackers[a.Name] = true
	}
	names := map[string]bool{}
	for i := range c.Events {
		e := &c.Events[i]
		label := e.Name
		if label == "" {
			label = fmt.Sprintf("#%d", i+1)
		}
		if e.Name != "" && names[e.Name] {
			return fmt.Errorf("%w: duplicate event name %q", ErrConfig, e.Name)
		}
		names[e.Name] = true
		triggers := 0
		if e.AtStep != nil {
			triggers++
			if *e.AtStep < 0 {
				return fmt.Errorf("%w: event %s: negative atStep", ErrConfig, label)
			}
		}
		if e.AfterMS > 0 {
			triggers++
		}
		if e.OnBreakerOpen != "" {
			triggers++
		}
		if e.OnBreakerClose != "" {
			triggers++
		}
		if e.OnAlert != "" {
			triggers++
		}
		if e.OnDeadBuses > 0 {
			triggers++
		}
		if triggers > 1 {
			return fmt.Errorf("%w: event %s: multiple triggers", ErrConfig, label)
		}
		if e.Plus < 0 {
			return fmt.Errorf("%w: event %s: negative plus", ErrConfig, label)
		}
		if !scenarioActionKinds[e.Kind] {
			return fmt.Errorf("%w: event %s: unknown kind %q", ErrConfig, label, e.Kind)
		}
		if err := e.validateKind(label, attackers); err != nil {
			return err
		}
	}
	return nil
}

func (e *ScenarioEvent) validateKind(label string, attackers map[string]bool) error {
	needAttacker := func() error {
		if e.Attacker == "" {
			return fmt.Errorf("%w: event %s: kind %q needs attacker", ErrConfig, label, e.Kind)
		}
		if !attackers[e.Attacker] {
			return fmt.Errorf("%w: event %s: undeclared attacker %q", ErrConfig, label, e.Attacker)
		}
		return nil
	}
	switch e.Kind {
	case "loadScale", "loadP", "genP", "sgenP", "switch", "lineService",
		"openBreaker", "closeBreaker":
		if e.Element == "" {
			return fmt.Errorf("%w: event %s: kind %q needs element", ErrConfig, label, e.Kind)
		}
	case "linkDown", "linkUp", "linkFlap", "linkLoss", "linkLatency":
		if e.LinkA == "" || e.LinkB == "" {
			return fmt.Errorf("%w: event %s: kind %q needs linkA and linkB", ErrConfig, label, e.Kind)
		}
		if e.Kind == "linkFlap" && e.DownSteps < 1 {
			return fmt.Errorf("%w: event %s: linkFlap needs downSteps >= 1", ErrConfig, label)
		}
		if e.Kind == "linkLoss" && (e.Rate < 0 || e.Rate > 1) {
			return fmt.Errorf("%w: event %s: loss rate %v outside [0,1]", ErrConfig, label, e.Rate)
		}
	case "portScan":
		if err := needAttacker(); err != nil {
			return err
		}
		if e.Target == "" {
			return fmt.Errorf("%w: event %s: portScan needs target", ErrConfig, label)
		}
		if e.Ports != "" {
			for _, s := range strings.Split(e.Ports, ",") {
				if _, err := strconv.ParseUint(strings.TrimSpace(s), 10, 16); err != nil {
					return fmt.Errorf("%w: event %s: bad port %q", ErrConfig, label, strings.TrimSpace(s))
				}
			}
		}
	case "falseCommand":
		if err := needAttacker(); err != nil {
			return err
		}
		if e.Target == "" || e.Ref == "" {
			return fmt.Errorf("%w: event %s: falseCommand needs target and ref", ErrConfig, label)
		}
	case "mitm":
		if err := needAttacker(); err != nil {
			return err
		}
		if e.VictimA == "" || e.VictimB == "" {
			return fmt.Errorf("%w: event %s: mitm needs victimA and victimB", ErrConfig, label)
		}
	case "stopMitm":
		if err := needAttacker(); err != nil {
			return err
		}
	case "modbusTamper":
		if err := needAttacker(); err != nil {
			return err
		}
		if e.Target == "" {
			return fmt.Errorf("%w: event %s: modbusTamper needs target", ErrConfig, label)
		}
		switch e.Table {
		case "", "coil", "holding":
		default:
			return fmt.Errorf("%w: event %s: modbusTamper table %q (want coil or holding)", ErrConfig, label, e.Table)
		}
		if e.Address < 0 || e.Address > 65535 {
			return fmt.Errorf("%w: event %s: modbusTamper address %d outside 0..65535", ErrConfig, label, e.Address)
		}
		if e.Word < 0 || e.Word > 65535 {
			return fmt.Errorf("%w: event %s: modbusTamper word %d outside 0..65535", ErrConfig, label, e.Word)
		}
	case "deployIDS":
		if e.Threshold < 0 {
			return fmt.Errorf("%w: event %s: negative threshold", ErrConfig, label)
		}
	}
	return nil
}

// MarshalScenarioConfig validates and renders a Scenario config back to XML —
// the writer half the scenario-search minimizer stands on. The output
// re-parses under ParseScenarioConfig to an equivalent config: every emitted
// attribute round-trips, and attributes at their parse-time defaults are
// omitted.
func MarshalScenarioConfig(c *ScenarioConfig) ([]byte, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return Marshal(c)
}

// ParseScenarioConfig decodes and validates a Scenario XML file.
func ParseScenarioConfig(data []byte) (*ScenarioConfig, error) {
	var c ScenarioConfig
	if err := xml.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}
