package sgmlconf

import (
	"encoding/xml"
	"fmt"
)

// PLCConfig is the PLC I/O mapping file — the equivalent of OpenPLC61850's
// mapping configuration that binds Structured Text variables to IEC 61850
// object references southbound and Modbus table entries northbound. The
// paper's OpenPLC61850 derives this from the ICD files it is given plus its
// own mapping file; SG-ML carries it as one more supplementary XML schema.
type PLCConfig struct {
	XMLName    xml.Name     `xml:"PLCConfig"`
	Name       string       `xml:"name,attr"`
	Host       string       `xml:"host,attr"` // node name in the SCD
	ScanMS     int          `xml:"scanMs,attr"`
	ModbusPort int          `xml:"modbusPort,attr"`
	Inputs     []PLCBinding `xml:"Input"`
	Outputs    []PLCBinding `xml:"Output"`
	Exposes    []PLCExpose  `xml:"Expose"`
	Commands   []PLCCommand `xml:"Command"`
}

// PLCBinding couples an ST variable with an IED object reference.
type PLCBinding struct {
	Var   string  `xml:"var,attr"`
	IED   string  `xml:"ied,attr"`
	Ref   string  `xml:"ref,attr"`
	Scale float64 `xml:"scale,attr"`
}

// PLCExpose publishes an ST variable into a Modbus table.
type PLCExpose struct {
	Var   string  `xml:"var,attr"`
	Kind  string  `xml:"kind,attr"` // inputReg | discrete | holding
	Addr  uint16  `xml:"addr,attr"`
	Scale float64 `xml:"scale,attr"`
}

// PLCCommand maps a Modbus coil write onto an ST variable.
type PLCCommand struct {
	Coil uint16 `xml:"coil,attr"`
	Var  string `xml:"var,attr"`
}

var validExposeKinds = map[string]bool{"inputReg": true, "discrete": true, "holding": true}

// Validate checks structural sanity.
func (c *PLCConfig) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("%w: PLC config without name", ErrConfig)
	}
	for _, b := range c.Inputs {
		if b.Var == "" || b.IED == "" || b.Ref == "" {
			return fmt.Errorf("%w: PLC input binding %+v incomplete", ErrConfig, b)
		}
	}
	for _, b := range c.Outputs {
		if b.Var == "" || b.IED == "" || b.Ref == "" {
			return fmt.Errorf("%w: PLC output binding %+v incomplete", ErrConfig, b)
		}
	}
	for _, e := range c.Exposes {
		if e.Var == "" || !validExposeKinds[e.Kind] {
			return fmt.Errorf("%w: PLC expose %+v invalid", ErrConfig, e)
		}
	}
	for _, cmd := range c.Commands {
		if cmd.Var == "" {
			return fmt.Errorf("%w: PLC command for coil %d without variable", ErrConfig, cmd.Coil)
		}
	}
	return nil
}

// ParsePLCConfig decodes and validates a PLC mapping file.
func ParsePLCConfig(data []byte) (*PLCConfig, error) {
	var c PLCConfig
	if err := xml.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}
