package sgmlconf

import (
	"errors"
	"reflect"
	"testing"
)

func TestParseCampaignConfig(t *testing.T) {
	c, err := ParseCampaignConfig([]byte(`<Campaign name="sweep" workers="4">
  <Variant name="a" scenario="drill.scenario.xml" seeds="1, 3-5 ,20"/>
  <Variant name="b" scenario="drill.scenario.xml" model="alt-model" seeds="2"
           repeat="3" sequential="true" framePooling="off"/>
  <Variant name="c" scenario="other.scenario.xml" framePooling="on"/>
</Campaign>`))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "sweep" || c.Workers != 4 || len(c.Variants) != 3 {
		t.Fatalf("campaign = %+v", c)
	}
	seeds, err := c.Variants[0].SeedList()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seeds, []int64{1, 3, 4, 5, 20}) {
		t.Errorf("seeds = %v", seeds)
	}
	if c.Variants[1].Model != "alt-model" || !c.Variants[1].Sequential || c.Variants[1].Repeat != 3 {
		t.Errorf("variant b = %+v", c.Variants[1])
	}
	off, err := c.Variants[1].FramePoolingChoice()
	if err != nil || off == nil || *off {
		t.Errorf("framePooling off = %v, %v", off, err)
	}
	on, err := c.Variants[2].FramePoolingChoice()
	if err != nil || on == nil || !*on {
		t.Errorf("framePooling on = %v, %v", on, err)
	}
	// Absent seeds attribute: nil list (the engine defaults it).
	empty, err := c.Variants[2].SeedList()
	if err != nil || empty != nil {
		t.Errorf("absent seeds = %v, %v", empty, err)
	}
	keep, err := c.Variants[0].FramePoolingChoice()
	if err != nil || keep != nil {
		t.Errorf("unset framePooling = %v, %v", keep, err)
	}
}

func TestCampaignConfigValidation(t *testing.T) {
	cases := []struct{ name, xml string }{
		{"no name", `<Campaign><Variant name="v" scenario="s.xml"/></Campaign>`},
		{"no variants", `<Campaign name="c"/>`},
		{"no scenario", `<Campaign name="c"><Variant name="v"/></Campaign>`},
		{"duplicate variant", `<Campaign name="c"><Variant name="v" scenario="s.xml"/><Variant name="v" scenario="s.xml"/></Campaign>`},
		{"negative repeat", `<Campaign name="c"><Variant name="v" scenario="s.xml" repeat="-1"/></Campaign>`},
		{"negative workers", `<Campaign name="c" workers="-2"><Variant name="v" scenario="s.xml"/></Campaign>`},
		{"bad seed", `<Campaign name="c"><Variant name="v" scenario="s.xml" seeds="x"/></Campaign>`},
		{"inverted range", `<Campaign name="c"><Variant name="v" scenario="s.xml" seeds="9-3"/></Campaign>`},
		{"empty seeds", `<Campaign name="c"><Variant name="v" scenario="s.xml" seeds=""/></Campaign>`},
		{"separator-only seeds", `<Campaign name="c"><Variant name="v" scenario="s.xml" seeds=" , "/></Campaign>`},
		{"bad framePooling", `<Campaign name="c"><Variant name="v" scenario="s.xml" framePooling="sometimes"/></Campaign>`},
		{"double-dash range", `<Campaign name="c"><Variant name="v" scenario="s.xml" seeds="1--3"/></Campaign>`},
		{"open-ended range", `<Campaign name="c"><Variant name="v" scenario="s.xml" seeds="3-"/></Campaign>`},
		{"range in garbage", `<Campaign name="c"><Variant name="v" scenario="s.xml" seeds="1,2-b"/></Campaign>`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseCampaignConfig([]byte(tc.xml)); !errors.Is(err, ErrConfig) {
				t.Errorf("err = %v, want ErrConfig", err)
			}
		})
	}
}
