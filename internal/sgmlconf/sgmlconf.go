package sgmlconf

import (
	"encoding/xml"
	"errors"
	"fmt"
	"time"
)

// ErrConfig is the base error for malformed supplementary configs.
var ErrConfig = errors.New("sgmlconf: invalid configuration")

// ---------------------------------------------------------------------------
// IED Config XML
// ---------------------------------------------------------------------------

// IEDConfig is the root of the IED Config XML file.
type IEDConfig struct {
	XMLName xml.Name   `xml:"IEDConfig"`
	IEDs    []IEDEntry `xml:"IED"`
}

// IEDEntry configures one virtual IED.
type IEDEntry struct {
	Name       string     `xml:"name,attr"`
	Substation string     `xml:"substation,attr"`
	Protection Protection `xml:"Protection"`
	Measures   []Measure  `xml:"Measure"`
	Controls   []Control  `xml:"Control"`
}

// Protection holds the per-function thresholds of Table II. A nil entry
// leaves the function disabled even if the ICD declares the logical node.
type Protection struct {
	PTOC *PTOCConf `xml:"PTOC"`
	PTOV *PTOVConf `xml:"PTOV"`
	PTUV *PTUVConf `xml:"PTUV"`
	PDIF *PDIFConf `xml:"PDIF"`
	CILO *CILOConf `xml:"CILO"`
}

// PTOCConf configures time over-current protection: "threshold limit for
// current, generally 3 to 4 times the nominal current" (Table II).
type PTOCConf struct {
	ThresholdKA float64 `xml:"thresholdKa,attr"`
	DelayMS     int     `xml:"delayMs,attr"`
	Line        string  `xml:"line,attr"` // monitored line element
}

// PTOVConf configures over-voltage protection (upper bus-voltage limit).
type PTOVConf struct {
	ThresholdPU float64 `xml:"thresholdPu,attr"`
	DelayMS     int     `xml:"delayMs,attr"`
	Bus         string  `xml:"bus,attr"`
}

// PTUVConf configures under-voltage protection (lower bus-voltage limit).
type PTUVConf struct {
	ThresholdPU float64 `xml:"thresholdPu,attr"`
	DelayMS     int     `xml:"delayMs,attr"`
	Bus         string  `xml:"bus,attr"`
}

// PDIFConf configures differential protection: trips when local and remote
// current measurements differ beyond the threshold (Table II row 4).
type PDIFConf struct {
	ThresholdKA float64 `xml:"thresholdKa,attr"`
	DelayMS     int     `xml:"delayMs,attr"`
	Line        string  `xml:"line,attr"`
	RemoteIED   string  `xml:"remoteIed,attr"` // peer sending R-SV measurements
}

// CILOConf configures interlocking: "prevents a circuit breaker to be closed
// when a certain circuit breaker is open" (Table II row 5). The guarding
// breaker status arrives via GOOSE from GuardIED.
type CILOConf struct {
	GuardBreaker string `xml:"guardBreaker,attr"`
	GuardIED     string `xml:"guardIed,attr"`
}

// Measure maps an IED data point onto a power-simulation output.
type Measure struct {
	Point   string `xml:"point,attr"`   // "busVoltage", "lineCurrent", "lineP", "lineQ"
	Element string `xml:"element,attr"` // bus or line name in the power model
}

// Control maps the IED's switch-control object onto a breaker element.
type Control struct {
	Breaker string `xml:"breaker,attr"`
}

// Find returns the entry for the named IED, or nil.
func (c *IEDConfig) Find(name string) *IEDEntry {
	for i := range c.IEDs {
		if c.IEDs[i].Name == name {
			return &c.IEDs[i]
		}
	}
	return nil
}

// Validate checks threshold sanity.
func (c *IEDConfig) Validate() error {
	seen := map[string]bool{}
	for _, e := range c.IEDs {
		if e.Name == "" {
			return fmt.Errorf("%w: IED entry without name", ErrConfig)
		}
		if seen[e.Name] {
			return fmt.Errorf("%w: duplicate IED entry %q", ErrConfig, e.Name)
		}
		seen[e.Name] = true
		p := e.Protection
		if p.PTOC != nil && p.PTOC.ThresholdKA <= 0 {
			return fmt.Errorf("%w: IED %q PTOC threshold %v", ErrConfig, e.Name, p.PTOC.ThresholdKA)
		}
		if p.PTOV != nil && p.PTOV.ThresholdPU <= 1.0 {
			return fmt.Errorf("%w: IED %q PTOV threshold %v must exceed 1.0 pu", ErrConfig, e.Name, p.PTOV.ThresholdPU)
		}
		if p.PTUV != nil && (p.PTUV.ThresholdPU <= 0 || p.PTUV.ThresholdPU >= 1.0) {
			return fmt.Errorf("%w: IED %q PTUV threshold %v must be in (0,1) pu", ErrConfig, e.Name, p.PTUV.ThresholdPU)
		}
		if p.PDIF != nil && (p.PDIF.ThresholdKA <= 0 || p.PDIF.RemoteIED == "") {
			return fmt.Errorf("%w: IED %q PDIF needs threshold and remote IED", ErrConfig, e.Name)
		}
		if p.CILO != nil && p.CILO.GuardBreaker == "" {
			return fmt.Errorf("%w: IED %q CILO needs a guard breaker", ErrConfig, e.Name)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// SCADA Config XML
// ---------------------------------------------------------------------------

// SCADAConfig is the root of the SCADA Config XML file.
type SCADAConfig struct {
	XMLName     xml.Name     `xml:"SCADAConfig"`
	DataSources []DataSource `xml:"DataSource"`
	DataPoints  []DataPoint  `xml:"DataPoint"`
}

// DataSource is one polled endpoint (a PLC over Modbus, or an IED over MMS).
type DataSource struct {
	Name     string `xml:"name,attr"`
	Protocol string `xml:"protocol,attr"` // "modbus" | "mms"
	Host     string `xml:"host,attr"`     // node name in the emulated network
	IP       string `xml:"ip,attr"`
	Port     int    `xml:"port,attr"`
	PollMS   int    `xml:"pollMs,attr"`
}

// DataPoint is one monitored or controlled value.
type DataPoint struct {
	Name      string  `xml:"name,attr"`
	Source    string  `xml:"source,attr"`
	Kind      string  `xml:"kind,attr"` // "analog" | "binary"
	Address   string  `xml:"address,attr"`
	Scale     float64 `xml:"scale,attr"`
	Writable  bool    `xml:"writable,attr"`
	AlarmLow  float64 `xml:"alarmLow,attr"`
	AlarmHigh float64 `xml:"alarmHigh,attr"`
	HasAlarm  bool    `xml:"hasAlarm,attr"`
}

// Validate checks source references and point kinds.
func (c *SCADAConfig) Validate() error {
	srcs := map[string]bool{}
	for _, s := range c.DataSources {
		if s.Name == "" || srcs[s.Name] {
			return fmt.Errorf("%w: bad or duplicate data source %q", ErrConfig, s.Name)
		}
		if s.Protocol != "modbus" && s.Protocol != "mms" {
			return fmt.Errorf("%w: data source %q protocol %q", ErrConfig, s.Name, s.Protocol)
		}
		srcs[s.Name] = true
	}
	names := map[string]bool{}
	for _, p := range c.DataPoints {
		if p.Name == "" || names[p.Name] {
			return fmt.Errorf("%w: bad or duplicate data point %q", ErrConfig, p.Name)
		}
		names[p.Name] = true
		if !srcs[p.Source] {
			return fmt.Errorf("%w: data point %q references unknown source %q", ErrConfig, p.Name, p.Source)
		}
		if p.Kind != "analog" && p.Kind != "binary" {
			return fmt.Errorf("%w: data point %q kind %q", ErrConfig, p.Name, p.Kind)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Power System Extra Config XML
// ---------------------------------------------------------------------------

// PowerConfig is the root of the Power System Extra Config XML file. It
// supplies the electrical parameters SCL cannot express, the simulation
// interval, and the scenario time series ("the amount of load and circuit
// breaker status in a time series for each component", §III-B).
type PowerConfig struct {
	XMLName    xml.Name       `xml:"PowerSystemConfig"`
	BaseMVA    float64        `xml:"baseMVA,attr"`
	IntervalMS int            `xml:"intervalMs,attr"`
	Elements   []ElementParam `xml:"Element"`
	Steps      []ProfileStep  `xml:"Step"`
}

// ElementParam carries per-element electrical parameters keyed by the
// equipment name used in the SSD.
type ElementParam struct {
	Kind       string  `xml:"kind,attr"` // load|line|gen|sgen|extgrid|trafo|shunt
	Name       string  `xml:"name,attr"`
	PMW        float64 `xml:"pMW,attr"`
	QMVAr      float64 `xml:"qMVAr,attr"`
	VmPU       float64 `xml:"vmPU,attr"`
	LengthKM   float64 `xml:"lengthKm,attr"`
	ROhmPerKM  float64 `xml:"rOhmPerKm,attr"`
	XOhmPerKM  float64 `xml:"xOhmPerKm,attr"`
	CNFPerKM   float64 `xml:"cNfPerKm,attr"`
	MaxIKA     float64 `xml:"maxIKa,attr"`
	SnMVA      float64 `xml:"snMVA,attr"`
	VKPercent  float64 `xml:"vkPercent,attr"`
	VKRPercent float64 `xml:"vkrPercent,attr"`
	MinQMVAr   float64 `xml:"minQMVAr,attr"`
	MaxQMVAr   float64 `xml:"maxQMVAr,attr"`
}

// ProfileStep is one timed scenario action.
type ProfileStep struct {
	AtMS    int     `xml:"atMs,attr"`
	Kind    string  `xml:"kind,attr"` // loadScale|loadP|genP|sgenP|switch|lineService
	Element string  `xml:"element,attr"`
	Value   float64 `xml:"value,attr"`
}

// Interval returns the simulation interval (default 100 ms, §III-C).
func (c *PowerConfig) Interval() time.Duration {
	if c.IntervalMS <= 0 {
		return 100 * time.Millisecond
	}
	return time.Duration(c.IntervalMS) * time.Millisecond
}

// Element returns the parameters for (kind, name), or nil.
func (c *PowerConfig) Element(kind, name string) *ElementParam {
	for i := range c.Elements {
		e := &c.Elements[i]
		if e.Kind == kind && e.Name == name {
			return e
		}
	}
	return nil
}

var validStepKinds = map[string]bool{
	"loadScale": true, "loadP": true, "genP": true,
	"sgenP": true, "switch": true, "lineService": true,
}

var validElementKinds = map[string]bool{
	"load": true, "line": true, "gen": true, "sgen": true,
	"extgrid": true, "trafo": true, "shunt": true,
}

// Validate checks element and step kinds.
func (c *PowerConfig) Validate() error {
	for _, e := range c.Elements {
		if !validElementKinds[e.Kind] {
			return fmt.Errorf("%w: element kind %q", ErrConfig, e.Kind)
		}
		if e.Name == "" {
			return fmt.Errorf("%w: element of kind %q without name", ErrConfig, e.Kind)
		}
	}
	for _, s := range c.Steps {
		if !validStepKinds[s.Kind] {
			return fmt.Errorf("%w: step kind %q", ErrConfig, s.Kind)
		}
		if s.AtMS < 0 {
			return fmt.Errorf("%w: step at %d ms", ErrConfig, s.AtMS)
		}
		if s.Element == "" {
			return fmt.Errorf("%w: step of kind %q without element", ErrConfig, s.Kind)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Shared parse/marshal helpers
// ---------------------------------------------------------------------------

// ParseIEDConfig decodes and validates an IED Config XML file.
func ParseIEDConfig(data []byte) (*IEDConfig, error) {
	var c IEDConfig
	if err := xml.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// ParseSCADAConfig decodes and validates a SCADA Config XML file.
func ParseSCADAConfig(data []byte) (*SCADAConfig, error) {
	var c SCADAConfig
	if err := xml.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// ParsePowerConfig decodes and validates a Power System Extra Config XML file.
func ParsePowerConfig(data []byte) (*PowerConfig, error) {
	var c PowerConfig
	if err := xml.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Marshal encodes any of the three configs with an XML header.
func Marshal(v any) ([]byte, error) {
	body, err := xml.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append([]byte(xml.Header), body...), nil
}
