package sgmlconf

// Native Go fuzz targets for every supplementary-schema parser plus the
// seeds="1,3-5" range expander. The contract under fuzzing is narrow and
// absolute: a parser fed arbitrary bytes returns an error — it never panics.
// For documents that do parse, the scenario target additionally checks the
// marshal/re-parse loop: a valid config serializes, and the serialization
// parses back (the property the search minimizer's corpus pinning relies on).
//
// Seed corpora live in testdata/fuzz/<FuzzName>/; CI replays them with
// -fuzz disabled (plain `go test` runs every committed corpus entry).

import (
	"testing"
)

func FuzzParseIEDConfig(f *testing.F) {
	f.Add([]byte(sampleIEDConfig))
	f.Add([]byte(`<IEDConfig/>`))
	f.Add([]byte(`<IEDConfig><IED name=""/></IEDConfig>`))
	f.Add([]byte(`not xml at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ParseIEDConfig(data)
		if err == nil && c == nil {
			t.Fatal("nil config without error")
		}
	})
}

func FuzzParseSCADAConfig(f *testing.F) {
	f.Add([]byte(sampleSCADAConfig))
	f.Add([]byte(`<SCADAConfig/>`))
	f.Add([]byte(`<SCADAConfig><DataPoint name="p" source="ghost"/></SCADAConfig>`))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ParseSCADAConfig(data)
		if err == nil && c == nil {
			t.Fatal("nil config without error")
		}
	})
}

func FuzzParsePowerConfig(f *testing.F) {
	f.Add([]byte(samplePowerConfig))
	f.Add([]byte(`<PowerSystemConfig/>`))
	f.Add([]byte(`<PowerSystemConfig baseMVA="-1"><Element kind="load"/></PowerSystemConfig>`))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ParsePowerConfig(data)
		if err == nil && c == nil {
			t.Fatal("nil config without error")
		}
	})
}

func FuzzParsePLCConfig(f *testing.F) {
	f.Add([]byte(samplePLCConfig))
	f.Add([]byte(`<PLCConfig name="p" host="h"/>`))
	f.Add([]byte(`<PLCConfig name="p" host="h"><Expose var="v" kind="bogus" addr="0"/></PLCConfig>`))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ParsePLCConfig(data)
		if err == nil && c == nil {
			t.Fatal("nil config without error")
		}
	})
}

func FuzzParseScenario(f *testing.F) {
	f.Add([]byte(`<Scenario name="drill" steps="10" seed="7">
  <Attacker name="redbox" switch="sw-TransLAN" ip="10.0.1.13"/>
  <Event name="blue" atStep="0" kind="deployIDS" writers="SCADA,CPLC" threshold="5"/>
  <Event name="recon" atStep="2" kind="portScan" attacker="redbox" target="TIED1"/>
  <Event name="fci" onAlert="tcp-port-scan" plus="1" kind="falseCommand" attacker="redbox" target="TIED1" ref="LD0/XCBR1.Pos.Oper" boolValue="false"/>
  <Event name="tamper" atStep="3" kind="modbusTamper" attacker="redbox" target="CPLC" table="coil" address="2" word="1"/>
</Scenario>`))
	f.Add([]byte(`<Scenario name="s"><Event kind="openBreaker" element="CB1" atStep="0"/></Scenario>`))
	f.Add([]byte(`<Scenario name="s"><Event kind="unknownKind" atStep="0"/></Scenario>`))
	f.Add([]byte(`<Scenario/>`))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ParseScenarioConfig(data)
		if err != nil {
			return
		}
		// A config that parsed is valid, so it must survive the marshal /
		// re-parse loop the minimizer pins corpora through.
		out, err := MarshalScenarioConfig(c)
		if err != nil {
			t.Fatalf("valid scenario does not marshal: %v", err)
		}
		if _, err := ParseScenarioConfig(out); err != nil {
			t.Fatalf("marshalled scenario does not re-parse: %v\n%s", err, out)
		}
	})
}

func FuzzParseCampaign(f *testing.F) {
	f.Add([]byte(`<Campaign name="sweep" workers="4">
  <Variant name="baseline" scenario="drill.scenario.xml" seeds="1-20"/>
  <Variant name="reference" scenario="drill.scenario.xml" seeds="1,3-5" engine="sequential" framePooling="off" maxSteps="40"/>
</Campaign>`))
	f.Add([]byte(`<Campaign name="c"><Variant name="v" scenario="s.xml" seeds=""/></Campaign>`))
	f.Add([]byte(`<Campaign/>`))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ParseCampaignConfig(data)
		if err == nil && c == nil {
			t.Fatal("nil config without error")
		}
	})
}

func FuzzParseImportJSON(f *testing.F) {
	f.Add([]byte(`{"points":[{"name":"p","source":"s","kind":"analog","address":"30001"}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[`))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ParseImportJSON(data)
		if err == nil && c == nil {
			t.Fatal("nil import without error")
		}
	})
}

func FuzzParseSeeds(f *testing.F) {
	f.Add("1,3-5")
	f.Add("1-20")
	f.Add(" 7 , 9 - 12 ,")
	f.Add("")
	f.Add("5-1")
	f.Add("-3")
	f.Add("9223372036854775807")
	f.Add("1-9223372036854775807")
	f.Fuzz(func(t *testing.T, s string) {
		v := CampaignVariantConfig{Seeds: &s}
		seeds, err := v.SeedList()
		if err != nil {
			return
		}
		if len(seeds) == 0 {
			t.Fatalf("SeedList(%q) returned no seeds and no error", s)
		}
	})
}
