package sgmlconf

import (
	"errors"
	"testing"
)

const samplePLCConfig = `<?xml version="1.0"?>
<PLCConfig name="CPLC" host="CPLC" scanMs="100" modbusPort="502">
  <Input var="mainVoltage" ied="TIED1" ref="LD0/MMXU1.PhV.phsA"/>
  <Input var="tieCurrent" ied="TIED1" ref="LD0/MMXU1.A.phsA" scale="0.001"/>
  <Output var="tieBreakerClose" ied="TIED1" ref="LD0/XCBR1.Pos.Oper"/>
  <Expose var="mainVoltage" kind="inputReg" addr="0" scale="1000"/>
  <Expose var="tieBreakerClose" kind="discrete" addr="0"/>
  <Expose var="setpoint" kind="holding" addr="4"/>
  <Command coil="0" var="manualTrip"/>
</PLCConfig>`

func TestParsePLCConfig(t *testing.T) {
	c, err := ParsePLCConfig([]byte(samplePLCConfig))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "CPLC" || c.Host != "CPLC" || c.ScanMS != 100 || c.ModbusPort != 502 {
		t.Errorf("header = %+v", c)
	}
	if len(c.Inputs) != 2 || c.Inputs[1].Scale != 0.001 {
		t.Errorf("inputs = %+v", c.Inputs)
	}
	if len(c.Outputs) != 1 || c.Outputs[0].Ref != "LD0/XCBR1.Pos.Oper" {
		t.Errorf("outputs = %+v", c.Outputs)
	}
	if len(c.Exposes) != 3 || c.Exposes[0].Scale != 1000 || c.Exposes[2].Kind != "holding" {
		t.Errorf("exposes = %+v", c.Exposes)
	}
	if len(c.Commands) != 1 || c.Commands[0].Var != "manualTrip" {
		t.Errorf("commands = %+v", c.Commands)
	}
}

func TestPLCConfigRoundTrip(t *testing.T) {
	c, err := ParsePLCConfig([]byte(samplePLCConfig))
	if err != nil {
		t.Fatal(err)
	}
	data, err := Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParsePLCConfig(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Inputs) != 2 || again.Inputs[1].Scale != 0.001 {
		t.Errorf("round trip lost data: %+v", again.Inputs)
	}
}

func TestPLCConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		xml  string
	}{
		{"no name", `<PLCConfig/>`},
		{"input missing ied", `<PLCConfig name="p"><Input var="x" ref="a/b"/></PLCConfig>`},
		{"input missing ref", `<PLCConfig name="p"><Input var="x" ied="a"/></PLCConfig>`},
		{"output missing var", `<PLCConfig name="p"><Output ied="a" ref="a/b"/></PLCConfig>`},
		{"expose bad kind", `<PLCConfig name="p"><Expose var="x" kind="coil" addr="0"/></PLCConfig>`},
		{"expose missing var", `<PLCConfig name="p"><Expose kind="discrete" addr="0"/></PLCConfig>`},
		{"command missing var", `<PLCConfig name="p"><Command coil="0"/></PLCConfig>`},
		{"garbage", `not-xml`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParsePLCConfig([]byte(tc.xml)); !errors.Is(err, ErrConfig) {
				t.Errorf("err = %v, want ErrConfig", err)
			}
		})
	}
}
