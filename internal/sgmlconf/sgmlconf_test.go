package sgmlconf

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

const sampleIEDConfig = `<?xml version="1.0"?>
<IEDConfig>
  <IED name="GIED1" substation="EPIC">
    <Protection>
      <PTOC thresholdKa="0.4" delayMs="200" line="L1"/>
      <PTOV thresholdPu="1.10" delayMs="100" bus="BusA"/>
      <PTUV thresholdPu="0.90" delayMs="100" bus="BusA"/>
    </Protection>
    <Measure point="busVoltage" element="BusA"/>
    <Measure point="lineCurrent" element="L1"/>
    <Control breaker="CB1"/>
  </IED>
  <IED name="GIED2" substation="EPIC">
    <Protection>
      <PDIF thresholdKa="0.05" delayMs="150" line="Tie1" remoteIed="GIED9"/>
      <CILO guardBreaker="CB1" guardIed="GIED1"/>
    </Protection>
    <Control breaker="CB2"/>
  </IED>
</IEDConfig>`

const sampleSCADAConfig = `<?xml version="1.0"?>
<SCADAConfig>
  <DataSource name="cplc" protocol="modbus" host="CPLC" ip="10.0.1.5" port="502" pollMs="1000"/>
  <DataSource name="gied1" protocol="mms" host="GIED1" ip="10.0.1.11" port="102" pollMs="2000"/>
  <DataPoint name="MainBusVoltage" source="cplc" kind="analog" address="30001" scale="0.001" hasAlarm="true" alarmLow="0.9" alarmHigh="1.1"/>
  <DataPoint name="CB1Status" source="cplc" kind="binary" address="10001"/>
  <DataPoint name="CB1Cmd" source="cplc" kind="binary" address="1" writable="true"/>
  <DataPoint name="FeederCurrent" source="gied1" kind="analog" address="LD0/MMXU1.A.phsA"/>
</SCADAConfig>`

const samplePowerConfig = `<?xml version="1.0"?>
<PowerSystemConfig baseMVA="100" intervalMs="100">
  <Element kind="load" name="Home1" pMW="0.015" qMVAr="0.005"/>
  <Element kind="line" name="L1" lengthKm="0.5" rOhmPerKm="0.1" xOhmPerKm="0.35" cNfPerKm="10" maxIKa="0.4"/>
  <Element kind="gen" name="Gen1" pMW="0.01" vmPU="1.0"/>
  <Element kind="extgrid" name="Utility" vmPU="1.02"/>
  <Element kind="trafo" name="T1" snMVA="1" vkPercent="6" vkrPercent="0.5"/>
  <Step atMs="0" kind="loadScale" element="Home1" value="1.0"/>
  <Step atMs="60000" kind="loadScale" element="Home1" value="1.4"/>
  <Step atMs="120000" kind="switch" element="CB1" value="0"/>
</PowerSystemConfig>`

func TestParseIEDConfig(t *testing.T) {
	c, err := ParseIEDConfig([]byte(sampleIEDConfig))
	if err != nil {
		t.Fatal(err)
	}
	e := c.Find("GIED1")
	if e == nil {
		t.Fatal("GIED1 missing")
	}
	if e.Protection.PTOC == nil || e.Protection.PTOC.ThresholdKA != 0.4 || e.Protection.PTOC.Line != "L1" {
		t.Errorf("PTOC = %+v", e.Protection.PTOC)
	}
	if e.Protection.PTOV.ThresholdPU != 1.10 || e.Protection.PTUV.ThresholdPU != 0.90 {
		t.Error("voltage thresholds wrong")
	}
	if e.Protection.PDIF != nil {
		t.Error("GIED1 has PDIF it should not")
	}
	if len(e.Measures) != 2 || e.Measures[0].Point != "busVoltage" {
		t.Errorf("measures = %+v", e.Measures)
	}
	e2 := c.Find("GIED2")
	if e2.Protection.PDIF.RemoteIED != "GIED9" || e2.Protection.CILO.GuardBreaker != "CB1" {
		t.Errorf("GIED2 protection = %+v", e2.Protection)
	}
	if c.Find("nope") != nil {
		t.Error("Find on missing IED returned entry")
	}
}

func TestIEDConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		xml  string
	}{
		{"zero PTOC", `<IEDConfig><IED name="a"><Protection><PTOC thresholdKa="0"/></Protection></IED></IEDConfig>`},
		{"PTOV below 1", `<IEDConfig><IED name="a"><Protection><PTOV thresholdPu="0.95"/></Protection></IED></IEDConfig>`},
		{"PTUV above 1", `<IEDConfig><IED name="a"><Protection><PTUV thresholdPu="1.2"/></Protection></IED></IEDConfig>`},
		{"PDIF no remote", `<IEDConfig><IED name="a"><Protection><PDIF thresholdKa="0.1"/></Protection></IED></IEDConfig>`},
		{"CILO no guard", `<IEDConfig><IED name="a"><Protection><CILO guardIed="b"/></Protection></IED></IEDConfig>`},
		{"dup IED", `<IEDConfig><IED name="a"/><IED name="a"/></IEDConfig>`},
		{"unnamed IED", `<IEDConfig><IED/></IEDConfig>`},
		{"not xml", `garbage`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseIEDConfig([]byte(tt.xml)); !errors.Is(err, ErrConfig) {
				t.Errorf("err = %v, want ErrConfig", err)
			}
		})
	}
}

func TestParseSCADAConfig(t *testing.T) {
	c, err := ParseSCADAConfig([]byte(sampleSCADAConfig))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.DataSources) != 2 || len(c.DataPoints) != 4 {
		t.Fatalf("sources=%d points=%d", len(c.DataSources), len(c.DataPoints))
	}
	if c.DataSources[0].Protocol != "modbus" || c.DataSources[1].Protocol != "mms" {
		t.Error("protocols wrong")
	}
	if !c.DataPoints[0].HasAlarm || c.DataPoints[0].AlarmHigh != 1.1 {
		t.Errorf("alarm config = %+v", c.DataPoints[0])
	}
	if !c.DataPoints[2].Writable {
		t.Error("writable flag lost")
	}
}

func TestSCADAConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		xml  string
	}{
		{"bad protocol", `<SCADAConfig><DataSource name="x" protocol="dnp3"/></SCADAConfig>`},
		{"dup source", `<SCADAConfig><DataSource name="x" protocol="mms"/><DataSource name="x" protocol="mms"/></SCADAConfig>`},
		{"orphan point", `<SCADAConfig><DataPoint name="p" source="ghost" kind="analog"/></SCADAConfig>`},
		{"bad kind", `<SCADAConfig><DataSource name="x" protocol="mms"/><DataPoint name="p" source="x" kind="blob"/></SCADAConfig>`},
		{"dup point", `<SCADAConfig><DataSource name="x" protocol="mms"/><DataPoint name="p" source="x" kind="analog"/><DataPoint name="p" source="x" kind="analog"/></SCADAConfig>`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseSCADAConfig([]byte(tt.xml)); !errors.Is(err, ErrConfig) {
				t.Errorf("err = %v, want ErrConfig", err)
			}
		})
	}
}

func TestParsePowerConfig(t *testing.T) {
	c, err := ParsePowerConfig([]byte(samplePowerConfig))
	if err != nil {
		t.Fatal(err)
	}
	if c.BaseMVA != 100 || c.Interval() != 100*time.Millisecond {
		t.Errorf("base=%v interval=%v", c.BaseMVA, c.Interval())
	}
	ld := c.Element("load", "Home1")
	if ld == nil || ld.PMW != 0.015 {
		t.Errorf("load param = %+v", ld)
	}
	if c.Element("line", "L1").MaxIKA != 0.4 {
		t.Error("line param wrong")
	}
	if c.Element("load", "ghost") != nil {
		t.Error("missing element returned non-nil")
	}
	if len(c.Steps) != 3 || c.Steps[2].Kind != "switch" {
		t.Errorf("steps = %+v", c.Steps)
	}
}

func TestPowerConfigDefaultInterval(t *testing.T) {
	c := &PowerConfig{}
	if c.Interval() != 100*time.Millisecond {
		t.Errorf("default interval = %v", c.Interval())
	}
}

func TestPowerConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		xml  string
	}{
		{"bad element kind", `<PowerSystemConfig><Element kind="motor" name="m"/></PowerSystemConfig>`},
		{"unnamed element", `<PowerSystemConfig><Element kind="load"/></PowerSystemConfig>`},
		{"bad step kind", `<PowerSystemConfig><Step atMs="0" kind="explode" element="x"/></PowerSystemConfig>`},
		{"negative time", `<PowerSystemConfig><Step atMs="-5" kind="switch" element="x"/></PowerSystemConfig>`},
		{"step without element", `<PowerSystemConfig><Step atMs="0" kind="switch"/></PowerSystemConfig>`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParsePowerConfig([]byte(tt.xml)); !errors.Is(err, ErrConfig) {
				t.Errorf("err = %v, want ErrConfig", err)
			}
		})
	}
}

func TestMarshalRoundTrips(t *testing.T) {
	ied, _ := ParseIEDConfig([]byte(sampleIEDConfig))
	data, err := Marshal(ied)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseIEDConfig(data)
	if err != nil {
		t.Fatal(err)
	}
	if again.Find("GIED2").Protection.CILO.GuardIED != "GIED1" {
		t.Error("IED config round trip lost data")
	}

	pc, _ := ParsePowerConfig([]byte(samplePowerConfig))
	data, err = Marshal(pc)
	if err != nil {
		t.Fatal(err)
	}
	pcAgain, err := ParsePowerConfig(data)
	if err != nil {
		t.Fatal(err)
	}
	if pcAgain.Element("trafo", "T1").VKPercent != 6 {
		t.Error("power config round trip lost data")
	}
}

func TestSCADAToImportJSON(t *testing.T) {
	c, _ := ParseSCADAConfig([]byte(sampleSCADAConfig))
	data, err := c.ToImportJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Fatal("invalid JSON produced")
	}
	var imp ScadaImport
	if err := json.Unmarshal(data, &imp); err != nil {
		t.Fatal(err)
	}
	if len(imp.DataSources) != 2 || len(imp.DataPoints) != 4 {
		t.Fatalf("import: %d sources, %d points", len(imp.DataSources), len(imp.DataPoints))
	}
	if imp.DataSources[0].Type != "MODBUS_IP" || imp.DataSources[1].Type != "MMS" {
		t.Error("source types wrong")
	}
	if imp.DataPoints[0].DataSourceXID != "DS_cplc" || imp.DataPoints[0].DataType != "NUMERIC" {
		t.Errorf("point 0 = %+v", imp.DataPoints[0])
	}
	if imp.DataPoints[1].DataType != "BINARY" {
		t.Error("binary point type wrong")
	}
	if !imp.DataPoints[2].SettableEnabled {
		t.Error("settable flag lost")
	}
	if !strings.Contains(string(data), "alarmHighLimit") {
		t.Error("alarm limits missing from JSON")
	}
	// Default multiplier is 1 when no scale given.
	if imp.DataPoints[1].Multiplier != 1 {
		t.Errorf("default multiplier = %v", imp.DataPoints[1].Multiplier)
	}
}

func TestParseImportJSON(t *testing.T) {
	c, _ := ParseSCADAConfig([]byte(sampleSCADAConfig))
	data, _ := c.ToImportJSON()
	imp, err := ParseImportJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(imp.DataPoints) != 4 {
		t.Error("points lost")
	}
	if _, err := ParseImportJSON([]byte("{")); err == nil {
		t.Error("bad JSON accepted")
	}
	if _, err := ParseImportJSON([]byte(`{"dataPoints":[{"xid":"p","dataSourceXid":"ghost"}]}`)); err == nil {
		t.Error("orphan point accepted")
	}
}
