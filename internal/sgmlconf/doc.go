// Package sgmlconf implements the supplementary XML schemas of SG-ML.
//
// IEC 61850 SCL files carry static structure but not everything a cyber
// range needs (§III-A). The paper defines three supplementary config files;
// this reproduction adds two more in the same deliberately simple, flat
// attribute style ("user-friendliness", §III-A):
//
//   - IED Config XML (sgmlconf.go) — protection-function thresholds
//     (Table II) and the mapping between ICD data names and power-simulation
//     elements ("which IED is measuring or controlling which transmission
//     lines");
//   - SCADA Config XML (sgmlconf.go, scadajson.go) — data sources and data
//     points for the SCADA HMI, convertible to the SCADABR import JSON;
//   - Power System Extra Config XML (sgmlconf.go) — electrical parameters
//     absent from SCL, plus load-profile / disturbance time series driving
//     the simulation;
//   - Scenario XML (scenario.go) — the declarative experiment form: attacker
//     placements plus trigger + action events (power faults, link
//     impairments, attack steps, IDS deployment), executed headlessly by
//     "rangectl scenario run";
//   - Campaign XML (campaign.go) — the sweep form: scenario variants × seed
//     ranges × engine/data-plane toggles, executed concurrently by
//     "rangectl campaign run".
//
// There is also the PLC mapping config (plcconfig.go) binding PLC variables
// to IED data references and Modbus registers.
//
// Every Parse*Config function validates structural invariants and returns
// errors wrapping ErrConfig; resolution against a compiled range happens
// later, in internal/core.
package sgmlconf
