package sgmlconf

import (
	"encoding/xml"
	"fmt"
	"strconv"
	"strings"
)

// ---------------------------------------------------------------------------
// Campaign XML
// ---------------------------------------------------------------------------
//
// The fifth supplementary schema: a declarative sweep over scenario runs, in
// the same flat attribute style as the other SG-ML config files. Each
// <Variant> references a Scenario XML file (path relative to the campaign
// file) and sweeps it over a seed list under a fixed engine/data-plane
// choice; an optional model attribute points a variant at a different SG-ML
// model directory than the campaign default.
//
//	<Campaign name="seedsweep" workers="4">
//	  <Variant name="baseline"   scenario="drill.scenario.xml" seeds="1-20"/>
//	  <Variant name="reference"  scenario="drill.scenario.xml" seeds="1-5"
//	           repeat="2" sequential="true" framePooling="off"/>
//	</Campaign>

// CampaignConfig is the root of a Campaign XML file.
type CampaignConfig struct {
	XMLName xml.Name `xml:"Campaign"`
	Name    string   `xml:"name,attr"`
	// Workers is the default worker-pool size (0 = GOMAXPROCS).
	Workers  int                     `xml:"workers,attr"`
	Variants []CampaignVariantConfig `xml:"Variant"`
}

// CampaignVariantConfig is one sweep cell: scenario file, seed list and the
// engine/data-plane toggles to run it under.
type CampaignVariantConfig struct {
	Name string `xml:"name,attr"`
	// Scenario is the Scenario XML file, relative to the campaign file.
	Scenario string `xml:"scenario,attr"`
	// Model optionally overrides the campaign's model directory (relative to
	// the campaign file).
	Model string `xml:"model,attr"`
	// Seeds is a comma-separated list of seeds and inclusive ranges, e.g.
	// "1,2,10-14". An absent attribute sweeps the scenario's own seed once;
	// a present-but-empty one (seeds="") is rejected — a sweep of zero runs
	// is a truncated config, not a default. The pointer distinguishes the
	// two XML shapes.
	Seeds *string `xml:"seeds,attr"`
	// Repeat runs each seed this many times (>= 2 probes determinism).
	Repeat     int  `xml:"repeat,attr"`
	Sequential bool `xml:"sequential,attr"`
	// FramePooling is "on"/"off" ("" keeps the range default, pooled).
	FramePooling string `xml:"framePooling,attr"`
	// MaxSteps caps each run of this variant to the first N scenario steps
	// (0 = the scenario's full horizon). A run that exhausts the budget is
	// aborted deterministically and recorded as a scenario failure — a cheap
	// guard against runaway variants in a shared sweep.
	MaxSteps int `xml:"maxSteps,attr"`
}

// maxSeedExpansion bounds one seeds attribute's expanded length. A range
// like "1-9223372036854775807" is a spec typo, not a request for a 9-EB
// sweep; without the cap it would also hang expansion (and a range ending at
// MaxInt64 would overflow the loop counter).
const maxSeedExpansion = 1 << 20

// SeedList parses the seeds attribute into the expanded seed slice. An
// absent attribute returns (nil, nil) — the engine then defaults to the
// scenario's own seed; a present attribute that expands to no seeds at all
// (seeds="" or only separators) is an error, as is one expanding past
// maxSeedExpansion.
func (v *CampaignVariantConfig) SeedList() ([]int64, error) {
	if v.Seeds == nil {
		return nil, nil
	}
	var out []int64
	for _, part := range strings.Split(*v.Seeds, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		// An inclusive range "a-b" (negative seeds are not supported in the
		// XML form, so the dash is unambiguous — and a is never negative,
		// Cut splits at the first dash).
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err1 := strconv.ParseInt(strings.TrimSpace(lo), 10, 64)
			b, err2 := strconv.ParseInt(strings.TrimSpace(hi), 10, 64)
			if err1 != nil || err2 != nil || a > b {
				return nil, fmt.Errorf("bad seed range %q", part)
			}
			// a >= 0 <= b here, so b-a cannot overflow.
			if b-a >= maxSeedExpansion-int64(len(out)) {
				return nil, fmt.Errorf("seed range %q expands past %d seeds", part, maxSeedExpansion)
			}
			for s := a; ; s++ {
				out = append(out, s)
				if s == b {
					break
				}
			}
			continue
		}
		s, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q", part)
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("seeds attribute %q expands to no seeds (omit the attribute to sweep the scenario's own seed)", *v.Seeds)
	}
	return out, nil
}

// FramePoolingChoice resolves the framePooling attribute: (nil, nil) keeps
// the default; otherwise a pointer to the selected mode.
func (v *CampaignVariantConfig) FramePoolingChoice() (*bool, error) {
	switch strings.ToLower(v.FramePooling) {
	case "":
		return nil, nil
	case "on", "true":
		on := true
		return &on, nil
	case "off", "false":
		off := false
		return &off, nil
	}
	return nil, fmt.Errorf("framePooling %q, want on or off", v.FramePooling)
}

// Validate checks the structural invariants: a campaign name, at least one
// variant, unique variant names, scenario references, parsable seed lists
// and frame-pooling choices. File resolution happens in the loader.
func (c *CampaignConfig) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("%w: campaign without name", ErrConfig)
	}
	if c.Workers < 0 {
		return fmt.Errorf("%w: campaign workers %d", ErrConfig, c.Workers)
	}
	if len(c.Variants) == 0 {
		return fmt.Errorf("%w: campaign %q has no variants", ErrConfig, c.Name)
	}
	names := map[string]bool{}
	for i := range c.Variants {
		v := &c.Variants[i]
		label := v.Name
		if label == "" {
			label = fmt.Sprintf("#%d", i+1)
		}
		if v.Name != "" && names[v.Name] {
			return fmt.Errorf("%w: duplicate variant %q", ErrConfig, v.Name)
		}
		names[v.Name] = true
		if v.Scenario == "" {
			return fmt.Errorf("%w: variant %s without scenario file", ErrConfig, label)
		}
		if v.Repeat < 0 {
			return fmt.Errorf("%w: variant %s: negative repeat", ErrConfig, label)
		}
		if v.MaxSteps < 0 {
			return fmt.Errorf("%w: variant %s: negative maxSteps", ErrConfig, label)
		}
		if _, err := v.SeedList(); err != nil {
			return fmt.Errorf("%w: variant %s: %v", ErrConfig, label, err)
		}
		if _, err := v.FramePoolingChoice(); err != nil {
			return fmt.Errorf("%w: variant %s: %v", ErrConfig, label, err)
		}
	}
	return nil
}

// ParseCampaignConfig decodes and validates a Campaign XML file.
func ParseCampaignConfig(data []byte) (*CampaignConfig, error) {
	var c CampaignConfig
	if err := xml.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}
