package epic

import (
	"fmt"

	"repro/internal/scl"
	"repro/internal/sgmlconf"
)

// ScaleModel is a parametric multi-substation model for the scalability
// experiment (§IV-A: "a commodity desktop PC ... can host a 5-substation
// model including 104 virtual IEDs with 100ms power flow simulation
// interval").
type ScaleModel struct {
	SCDs        map[string]*scl.Document // substation name -> SCD
	SED         *scl.SED
	IEDConfigs  *sgmlconf.IEDConfig
	PowerConfig *sgmlconf.PowerConfig
	Substations []string
	TotalIEDs   int
	// ShardHints maps every generated IED to its substation — the natural
	// partition the parallel step engine shards the range along.
	ShardHints map[string]string
}

// NewScaleModel builds nSubs substations, each with feeders feeder bays (one
// IED per feeder plus one gateway IED), chained by SED tie lines. The first
// substation carries the external grid connection.
func NewScaleModel(nSubs, feeders int) (*ScaleModel, error) {
	if nSubs < 1 || feeders < 1 {
		return nil, fmt.Errorf("epic: scale model needs at least 1 substation and 1 feeder")
	}
	out := &ScaleModel{
		SCDs:        make(map[string]*scl.Document, nSubs),
		SED:         &scl.SED{Header: scl.Header{ID: "scale-sed"}, WAN: scl.WANConfig{LatencyMS: 2}},
		IEDConfigs:  &sgmlconf.IEDConfig{},
		PowerConfig: &sgmlconf.PowerConfig{BaseMVA: 100, IntervalMS: 100},
		ShardHints:  make(map[string]string, nSubs*(feeders+1)),
	}
	for s := 1; s <= nSubs; s++ {
		sub := fmt.Sprintf("S%d", s)
		out.Substations = append(out.Substations, sub)
		doc := buildScaleSub(sub, s, feeders, s == 1)
		out.SCDs[sub] = doc
		out.TotalIEDs += feeders + 1
		out.ShardHints[sub+"_GW"] = sub
		for f := 1; f <= feeders; f++ {
			out.ShardHints[fmt.Sprintf("%s_IED%d", sub, f)] = sub
		}

		// Element parameters + IED entries.
		if s == 1 {
			out.PowerConfig.Elements = append(out.PowerConfig.Elements,
				sgmlconf.ElementParam{Kind: "extgrid", Name: "Grid", VmPU: 1.01})
		}
		gwName := sub + "_GW"
		gwEntry := sgmlconf.IEDEntry{
			Name: gwName, Substation: sub,
			Measures: []sgmlconf.Measure{{Point: "busVoltage", Element: cn(sub, "VL22", "Main", "MainBus")}},
		}
		if s > 1 {
			// Differential protection on the upstream tie, exchanged with the
			// previous substation's gateway over R-SV (Table II row 4).
			prev := fmt.Sprintf("S%d", s-1)
			tie := fmt.Sprintf("Tie_%s_%s", prev, sub)
			gwEntry.Protection.PDIF = &sgmlconf.PDIFConf{
				ThresholdKA: 0.08, DelayMS: 100, Line: tie, RemoteIED: prev + "_GW",
			}
			gwEntry.Controls = []sgmlconf.Control{{Breaker: sub + "_TieCB"}}
		}
		out.IEDConfigs.IEDs = append(out.IEDConfigs.IEDs, gwEntry)
		for f := 1; f <= feeders; f++ {
			line := fmt.Sprintf("%s_F%d", sub, f)
			cb := fmt.Sprintf("%s_CB%d", sub, f)
			load := fmt.Sprintf("%s_LD%d", sub, f)
			out.PowerConfig.Elements = append(out.PowerConfig.Elements,
				sgmlconf.ElementParam{Kind: "line", Name: line, LengthKM: 0.5, ROhmPerKM: 0.1, XOhmPerKM: 0.35, CNFPerKM: 9, MaxIKA: 0.3},
				sgmlconf.ElementParam{Kind: "load", Name: load, PMW: 0.2, QMVAr: 0.05},
			)
			out.IEDConfigs.IEDs = append(out.IEDConfigs.IEDs, sgmlconf.IEDEntry{
				Name: fmt.Sprintf("%s_IED%d", sub, f), Substation: sub,
				Protection: sgmlconf.Protection{
					PTOC: &sgmlconf.PTOCConf{ThresholdKA: 0.25, DelayMS: 100, Line: line},
					PTUV: &sgmlconf.PTUVConf{ThresholdPU: 0.85, DelayMS: 300, Bus: cn(sub, "VL22", fmt.Sprintf("F%d", f), "FeederBus")},
				},
				Measures: []sgmlconf.Measure{
					{Point: "lineCurrent", Element: line},
					{Point: "busVoltage", Element: cn(sub, "VL22", fmt.Sprintf("F%d", f), "FeederBus")},
				},
				Controls: []sgmlconf.Control{{Breaker: cb}},
			})
		}
		if s > 1 {
			prev := fmt.Sprintf("S%d", s-1)
			tie := fmt.Sprintf("Tie_%s_%s", prev, sub)
			out.SED.Ties = append(out.SED.Ties, scl.Tie{
				Name:    tie,
				FromSub: prev, FromNode: cn(prev, "VL22", "Main", "MainBus"),
				ToSub: sub, ToNode: cn(sub, "VL22", "Main", "MainBus"),
				// Short, stiff ties: the radial chain must carry the whole
				// downstream load without voltage collapse.
				LengthKM: 5, ROhmPerKM: 0.04, XOhmPerKM: 0.25, CNFPerKM: 9, MaxIKA: 1.2,
				Breaker: sub + "_TieCB",
			})
			out.SED.GatewayIEDs = append(out.SED.GatewayIEDs,
				scl.Gateway{Substation: prev, IEDName: prev + "_GW"},
				scl.Gateway{Substation: sub, IEDName: gwName},
			)
		}
	}
	return out, nil
}

// The XL scale-model size: 10 substations × 50 feeders (510 buses), the
// size the sparse-solver ablation runs at. Past the 5×20 of the paper's
// §IV-A experiment, the radial chain needs lighter feeders and stiffer ties
// than the default parameters or the head of the chain collapses, so
// NewScaleModelXL rewrites the electrical parameters accordingly.
const (
	ScaleXLSubs    = 10
	ScaleXLFeeders = 50
)

// NewScaleModelXL builds the 10×50 model used by the sparse-solver ablation:
// NewScaleModel's topology with XL electrical parameters (0.05 MW feeders,
// low-impedance ties) so the ten-substation radial chain stays solvable.
func NewScaleModelXL() (*ScaleModel, error) {
	out, err := NewScaleModel(ScaleXLSubs, ScaleXLFeeders)
	if err != nil {
		return nil, err
	}
	for i := range out.PowerConfig.Elements {
		e := &out.PowerConfig.Elements[i]
		if e.Kind == "load" {
			e.PMW = 0.05
			e.QMVAr = 0.0125
		}
	}
	for i := range out.SED.Ties {
		t := &out.SED.Ties[i]
		t.LengthKM = 2
		t.ROhmPerKM = 0.02
		t.XOhmPerKM = 0.12
		t.MaxIKA = 2.0
	}
	return out, nil
}

func buildScaleSub(sub string, index, feeders int, withGrid bool) *scl.Document {
	mainBay := scl.Bay{
		Name: "Main",
		ConnectivityNodes: []scl.ConnectivityNode{
			{Name: "MainBus", PathName: cn(sub, "VL22", "Main", "MainBus")},
		},
	}
	if withGrid {
		mainBay.ConductingEquipments = append(mainBay.ConductingEquipments, scl.ConductingEquipment{
			Name: "Grid", Type: scl.TypeExternalGrid,
			Terminals: []scl.Terminal{{ConnectivityNode: cn(sub, "VL22", "Main", "MainBus")}},
		})
	}
	bays := []scl.Bay{mainBay}
	for f := 1; f <= feeders; f++ {
		bay := fmt.Sprintf("F%d", f)
		bays = append(bays, scl.Bay{
			Name: bay,
			ConductingEquipments: []scl.ConductingEquipment{
				{Name: fmt.Sprintf("%s_F%d", sub, f), Type: scl.TypeLine, Terminals: []scl.Terminal{
					{ConnectivityNode: cn(sub, "VL22", "Main", "MainBus")},
					{ConnectivityNode: cn(sub, "VL22", bay, "FeederBus")},
				}},
				{Name: fmt.Sprintf("%s_CB%d", sub, f), Type: scl.TypeBreaker, Terminals: []scl.Terminal{
					{ConnectivityNode: cn(sub, "VL22", bay, "FeederBus")},
				}},
				{Name: fmt.Sprintf("%s_LD%d", sub, f), Type: scl.TypeLoad, Terminals: []scl.Terminal{
					{ConnectivityNode: cn(sub, "VL22", bay, "FeederBus")},
				}},
			},
			ConnectivityNodes: []scl.ConnectivityNode{
				{Name: "FeederBus", PathName: cn(sub, "VL22", bay, "FeederBus")},
			},
		})
	}
	var ieds []scl.IED
	var caps []scl.ConnectedAP
	addIED := func(name string, last byte, classes []string) {
		lns := make([]scl.LN, 0, len(classes))
		for _, c := range classes {
			lns = append(lns, scl.LN{LnClass: c, Inst: "1", LnType: c + "_T"})
		}
		ieds = append(ieds, scl.IED{
			Name: name, Type: "protection", Manufacturer: "SG-ML",
			AccessPoints: []scl.AccessPoint{{
				Name:   "AP1",
				Server: &scl.Server{LDevices: []scl.LDevice{{Inst: "LD0", LNs: lns}}},
			}},
		})
		caps = append(caps, scl.ConnectedAP{
			IEDName: name, APName: "AP1",
			Address: scl.Address{Ps: []scl.P{
				{Type: "IP", Value: fmt.Sprintf("10.%d.0.%d", index, last)},
				{Type: "IP-SUBNET", Value: "255.255.0.0"},
				{Type: "MAC-Address", Value: fmt.Sprintf("00-0C-CD-%02X-00-%02X", index, last)},
			}},
		})
	}
	addIED(sub+"_GW", 9, []string{"MMXU", "XCBR", "PDIF", "CILO"})
	for f := 1; f <= feeders; f++ {
		addIED(fmt.Sprintf("%s_IED%d", sub, f), byte(10+f), []string{"MMXU", "XCBR", "PTOC", "PTUV", "CSWI"})
	}
	return &scl.Document{
		Header: scl.Header{ID: sub + "-scd", ToolID: "sgml-scale"},
		Substations: []scl.Substation{{
			Name: sub,
			VoltageLevels: []scl.VoltageLevel{{
				Name:    "VL22",
				Voltage: scl.Voltage{Unit: "V", Multiplier: "k", Value: 22},
				Bays:    bays,
			}},
		}},
		IEDs: ieds,
		Communication: &scl.Communication{SubNetworks: []scl.SubNetwork{{
			Name: "LAN", Type: "8-MMS", ConnectedAPs: caps,
		}}},
		DataTypeTemplates: &scl.DataTypeTemplates{LNodeTypes: lnTypes([]string{"MMXU", "XCBR", "PTOC", "PTUV", "CILO", "CSWI"})},
	}
}
