// Package epic generates the SG-ML model of the EPIC testbed used for the
// paper's demonstration (§IV-A), plus a parametric multi-substation scale
// model for the scalability experiment.
//
// EPIC (Electric Power and Intelligent Control, SUTD) has four segments —
// generation, transmission, micro-grid and smart homes — with two
// conventional generators, PV and battery storage, controllable home loads,
// IEDs in every segment, one mediating PLC (CPLC) and a SCADA HMI, all in a
// single substation. We cannot run against the physical testbed, so this
// package emits a faithful synthetic SG-ML model of that published topology:
// real SCL XML (SCD/SSD/ICDs), IEC 61131-3 PLCopen XML for the CPLC, and the
// three supplementary SG-ML config files. The SG-ML Processor consumes these
// files exactly as it would consume operator-provided ones.
package epic

import (
	"fmt"

	"repro/internal/plc"
	"repro/internal/scl"
	"repro/internal/sgmlconf"
)

// Segment names (Fig 4 / Fig 5 rounded rectangles).
const (
	SegGeneration   = "generation"
	SegTransmission = "transmission"
	SegMicrogrid    = "microgrid"
	SegSmartHome    = "smarthome"
)

// IEDSpec describes one generated IED (used by tests and the processor).
type IEDSpec struct {
	Name    string
	Segment string
	IP      string
	MAC     string
	AppID   uint16
}

// Model is a complete generated SG-ML input set.
type Model struct {
	Substation  string
	SCD         *scl.Document
	ICDs        map[string]*scl.Document
	IEDConfig   *sgmlconf.IEDConfig
	SCADAConfig *sgmlconf.SCADAConfig
	PowerConfig *sgmlconf.PowerConfig
	PLCConfig   *sgmlconf.PLCConfig
	PLCName     string
	PLCLogic    string // Structured Text
	PLCopenXML  []byte
	IEDs        []IEDSpec
}

// cn builds a connectivity node path.
func cn(sub, vl, bay, node string) string {
	return sub + "/" + vl + "/" + bay + "/" + node
}

// CPLC control logic for the EPIC range: mediates SCADA commands to the
// transmission breaker and raises an under-voltage alarm flag. This mirrors
// the paper's CPLC role ("mediate the communication between IEDs and SCADA").
const cplcLogic = `
PROGRAM CPLC
VAR_INPUT
  mainVoltage : REAL;
  tieCurrent : REAL;
END_VAR
VAR_OUTPUT
  tieBreakerClose : BOOL := TRUE;
  underVoltAlarm : BOOL;
END_VAR
VAR
  manualTrip : BOOL;
  alarmTimer : TON;
END_VAR
(* SCADA writes manualTrip via a Modbus coil; the PLC relays it to the IED *)
tieBreakerClose := NOT manualTrip;
(* debounced under-voltage alarm back to SCADA *)
alarmTimer(IN := mainVoltage < 0.95 AND mainVoltage > 0.05, PT := T#500ms);
underVoltAlarm := alarmTimer.Q;
END_PROGRAM
`

// NewModel generates the EPIC cyber range model.
func NewModel() (*Model, error) {
	const sub = "EPIC"
	m := &Model{
		Substation: sub,
		ICDs:       make(map[string]*scl.Document),
		PLCName:    "CPLC",
		PLCLogic:   cplcLogic,
	}

	// --- Physical single-line model (SSD content) -------------------------
	// Generation segment: Gen1 (slack machine) + Gen2 on GenBus, breakers.
	// Transmission: tie line GenBus -> MainBus with breaker CBTie.
	// Micro-grid: line MainBus -> MicroBus (CBMicro), PV + battery.
	// Smart homes: transformer MainBus -> HomeBus (0.4 kV), 4 loads.
	vl22 := scl.VoltageLevel{
		Name:    "VL22",
		Voltage: scl.Voltage{Unit: "V", Multiplier: "k", Value: 22},
		Bays: []scl.Bay{
			{
				Name: "GenBay",
				ConductingEquipments: []scl.ConductingEquipment{
					{Name: "Gen1", Type: scl.TypeExternalGrid, Terminals: []scl.Terminal{{ConnectivityNode: cn(sub, "VL22", "GenBay", "GenBus")}}},
					{Name: "Gen2", Type: scl.TypeGenerator, Terminals: []scl.Terminal{{ConnectivityNode: cn(sub, "VL22", "GenBay", "GenBus")}}},
				},
				ConnectivityNodes: []scl.ConnectivityNode{
					{Name: "GenBus", PathName: cn(sub, "VL22", "GenBay", "GenBus")},
				},
			},
			{
				Name: "TransBay",
				ConductingEquipments: []scl.ConductingEquipment{
					{Name: "TieLine", Type: scl.TypeLine, Terminals: []scl.Terminal{
						{ConnectivityNode: cn(sub, "VL22", "GenBay", "GenBus")},
						{ConnectivityNode: cn(sub, "VL22", "TransBay", "MainBus")},
					}},
					{Name: "CBTie", Type: scl.TypeBreaker, Terminals: []scl.Terminal{
						{ConnectivityNode: cn(sub, "VL22", "TransBay", "MainBus")},
					}},
				},
				ConnectivityNodes: []scl.ConnectivityNode{
					{Name: "MainBus", PathName: cn(sub, "VL22", "TransBay", "MainBus")},
				},
			},
			{
				Name: "MicroBay",
				ConductingEquipments: []scl.ConductingEquipment{
					{Name: "MicroLine", Type: scl.TypeLine, Terminals: []scl.Terminal{
						{ConnectivityNode: cn(sub, "VL22", "TransBay", "MainBus")},
						{ConnectivityNode: cn(sub, "VL22", "MicroBay", "MicroBus")},
					}},
					{Name: "CBMicro", Type: scl.TypeBreaker, Terminals: []scl.Terminal{
						{ConnectivityNode: cn(sub, "VL22", "MicroBay", "MicroBus")},
					}},
					{Name: "PV1", Type: scl.TypePV, Terminals: []scl.Terminal{{ConnectivityNode: cn(sub, "VL22", "MicroBay", "MicroBus")}}},
					{Name: "Battery1", Type: scl.TypeBattery, Terminals: []scl.Terminal{{ConnectivityNode: cn(sub, "VL22", "MicroBay", "MicroBus")}}},
				},
				ConnectivityNodes: []scl.ConnectivityNode{
					{Name: "MicroBus", PathName: cn(sub, "VL22", "MicroBay", "MicroBus")},
				},
			},
		},
	}
	vl04 := scl.VoltageLevel{
		Name:    "VL04",
		Voltage: scl.Voltage{Unit: "V", Multiplier: "k", Value: 0.4},
		Bays: []scl.Bay{
			{
				Name: "HomeBay",
				ConductingEquipments: []scl.ConductingEquipment{
					{Name: "CBHome", Type: scl.TypeBreaker, Terminals: []scl.Terminal{
						{ConnectivityNode: cn(sub, "VL04", "HomeBay", "HomeBus")},
					}},
					{Name: "Home1", Type: scl.TypeLoad, Terminals: []scl.Terminal{{ConnectivityNode: cn(sub, "VL04", "HomeBay", "HomeBus")}}},
					{Name: "Home2", Type: scl.TypeLoad, Terminals: []scl.Terminal{{ConnectivityNode: cn(sub, "VL04", "HomeBay", "HomeBus")}}},
					{Name: "Home3", Type: scl.TypeLoad, Terminals: []scl.Terminal{{ConnectivityNode: cn(sub, "VL04", "HomeBay", "HomeBus")}}},
					{Name: "Home4", Type: scl.TypeLoad, Terminals: []scl.Terminal{{ConnectivityNode: cn(sub, "VL04", "HomeBay", "HomeBus")}}},
				},
				ConnectivityNodes: []scl.ConnectivityNode{
					{Name: "HomeBus", PathName: cn(sub, "VL04", "HomeBay", "HomeBus")},
				},
			},
		},
	}
	substation := scl.Substation{
		Name:          sub,
		Desc:          "EPIC testbed replica: generation, transmission, micro-grid, smart homes",
		VoltageLevels: []scl.VoltageLevel{vl22, vl04},
		PowerTransformers: []scl.PowerTransformer{{
			Name: "HomeTrafo",
			Windings: []scl.TransformerWinding{
				{Name: "HV", Terminals: []scl.Terminal{{ConnectivityNode: cn(sub, "VL22", "TransBay", "MainBus")}}},
				{Name: "LV", Terminals: []scl.Terminal{{ConnectivityNode: cn(sub, "VL04", "HomeBay", "HomeBus")}}},
			},
		}},
	}

	// --- IEDs --------------------------------------------------------------
	specs := []struct {
		name, segment string
		last          byte
		classes       []string
	}{
		{"GIED1", SegGeneration, 11, []string{"MMXU", "XCBR", "PTOV", "PTUV", "CSWI"}},
		{"GIED2", SegGeneration, 12, []string{"MMXU", "XCBR", "PTOV", "CSWI"}},
		{"TIED1", SegTransmission, 21, []string{"MMXU", "XCBR", "PTOC", "CSWI"}},
		{"TIED2", SegTransmission, 22, []string{"MMXU", "PTOV", "PTUV"}},
		{"MIED1", SegMicrogrid, 31, []string{"MMXU", "XCBR", "PTOC", "CILO", "CSWI"}},
		{"MIED2", SegMicrogrid, 32, []string{"MMXU", "PTUV"}},
		{"SIED1", SegSmartHome, 41, []string{"MMXU", "XCBR", "PTOC", "CSWI"}},
		{"SIED2", SegSmartHome, 42, []string{"MMXU", "PTUV"}},
	}
	var ieds []scl.IED
	var caps []scl.ConnectedAP
	for i, s := range specs {
		appID := uint16(0x0100 + i + 1)
		lns := make([]scl.LN, 0, len(s.classes))
		for _, c := range s.classes {
			lns = append(lns, scl.LN{LnClass: c, Inst: "1", LnType: c + "_T"})
		}
		ied := scl.IED{
			Name: s.name, Type: "protection", Manufacturer: "SG-ML",
			AccessPoints: []scl.AccessPoint{{
				Name:   "AP1",
				Server: &scl.Server{LDevices: []scl.LDevice{{Inst: "LD0", LN0: &scl.LN{LnClass: "LLN0"}, LNs: lns}}},
			}},
		}
		ieds = append(ieds, ied)
		ip := fmt.Sprintf("10.0.1.%d", s.last)
		mac := fmt.Sprintf("00-0C-CD-01-00-%02X", s.last)
		caps = append(caps, scl.ConnectedAP{
			IEDName: s.name, APName: "AP1",
			Address: scl.Address{Ps: []scl.P{
				{Type: "IP", Value: ip},
				{Type: "IP-SUBNET", Value: "255.255.255.0"},
				{Type: "MAC-Address", Value: mac},
			}},
			GSEs: []scl.GSE{{
				LDInst: "LD0", CBName: "gcb1",
				Address: scl.Address{Ps: []scl.P{
					{Type: "MAC-Address", Value: fmt.Sprintf("01-0C-CD-01-%02X-%02X", appID>>8, appID&0xFF)},
					{Type: "APPID", Value: fmt.Sprintf("%04X", appID)},
				}},
			}},
		})
		m.IEDs = append(m.IEDs, IEDSpec{Name: s.name, Segment: s.segment, IP: ip, MAC: mac, AppID: appID})
		// Per-IED ICD file (template document).
		m.ICDs[s.name] = &scl.Document{
			Header: scl.Header{ID: s.name + "-icd", ToolID: "sgml-epic"},
			IEDs:   []scl.IED{ied},
			DataTypeTemplates: &scl.DataTypeTemplates{
				LNodeTypes: lnTypes(s.classes),
			},
		}
	}
	// CPLC and SCADA as communication nodes (no server section needed).
	plcIED := scl.IED{Name: "CPLC", Type: "plc", Manufacturer: "OpenPLC61850"}
	scadaIED := scl.IED{Name: "SCADA", Type: "hmi", Manufacturer: "SCADABR"}
	ieds = append(ieds, plcIED, scadaIED)
	caps = append(caps,
		scl.ConnectedAP{IEDName: "CPLC", APName: "AP1", Address: scl.Address{Ps: []scl.P{
			{Type: "IP", Value: "10.0.1.5"}, {Type: "IP-SUBNET", Value: "255.255.255.0"},
			{Type: "MAC-Address", Value: "00-0C-CD-01-00-05"},
		}}},
		scl.ConnectedAP{IEDName: "SCADA", APName: "AP1", Address: scl.Address{Ps: []scl.P{
			{Type: "IP", Value: "10.0.1.3"}, {Type: "IP-SUBNET", Value: "255.255.255.0"},
			{Type: "MAC-Address", Value: "00-0C-CD-01-00-03"},
		}}},
	)

	// Per-segment subnetworks mirror Fig 4: each EPIC segment has its own
	// switch, joined through a central switch by the network builder.
	segOf := map[string]string{
		"GIED1": "GenLAN", "GIED2": "GenLAN",
		"TIED1": "TransLAN", "TIED2": "TransLAN",
		"MIED1": "MicroLAN", "MIED2": "MicroLAN",
		"SIED1": "HomeLAN", "SIED2": "HomeLAN",
		"CPLC": "ControlLAN", "SCADA": "ControlLAN",
	}
	subnets := map[string]*scl.SubNetwork{}
	order := []string{"GenLAN", "TransLAN", "MicroLAN", "HomeLAN", "ControlLAN"}
	for _, name := range order {
		subnets[name] = &scl.SubNetwork{Name: name, Type: "8-MMS"}
	}
	for _, cap := range caps {
		sn := subnets[segOf[cap.IEDName]]
		sn.ConnectedAPs = append(sn.ConnectedAPs, cap)
	}
	var subNetworks []scl.SubNetwork
	for _, name := range order {
		subNetworks = append(subNetworks, *subnets[name])
	}
	m.SCD = &scl.Document{
		Header:            scl.Header{ID: "epic-scd", Version: "1.0", ToolID: "sgml-epic"},
		Substations:       []scl.Substation{substation},
		IEDs:              ieds,
		Communication:     &scl.Communication{SubNetworks: subNetworks},
		DataTypeTemplates: &scl.DataTypeTemplates{LNodeTypes: lnTypes([]string{"MMXU", "XCBR", "PTOC", "PTOV", "PTUV", "CILO", "CSWI"})},
	}

	// --- Supplementary configs ---------------------------------------------
	m.IEDConfig = &sgmlconf.IEDConfig{IEDs: []sgmlconf.IEDEntry{
		{
			Name: "GIED1", Substation: sub,
			Protection: sgmlconf.Protection{
				PTOV: &sgmlconf.PTOVConf{ThresholdPU: 1.10, DelayMS: 200, Bus: cn(sub, "VL22", "GenBay", "GenBus")},
				PTUV: &sgmlconf.PTUVConf{ThresholdPU: 0.88, DelayMS: 300, Bus: cn(sub, "VL22", "GenBay", "GenBus")},
			},
			Measures: []sgmlconf.Measure{
				{Point: "busVoltage", Element: cn(sub, "VL22", "GenBay", "GenBus")},
			},
			Controls: []sgmlconf.Control{{Breaker: "CBTie"}},
		},
		{
			Name: "GIED2", Substation: sub,
			Protection: sgmlconf.Protection{
				PTOV: &sgmlconf.PTOVConf{ThresholdPU: 1.12, DelayMS: 200, Bus: cn(sub, "VL22", "GenBay", "GenBus")},
			},
			Measures: []sgmlconf.Measure{{Point: "busVoltage", Element: cn(sub, "VL22", "GenBay", "GenBus")}},
		},
		{
			Name: "TIED1", Substation: sub,
			Protection: sgmlconf.Protection{
				// "generally 3 to 4 times the nominal current" (Table II).
				PTOC: &sgmlconf.PTOCConf{ThresholdKA: 0.60, DelayMS: 150, Line: "TieLine"},
			},
			Measures: []sgmlconf.Measure{
				{Point: "lineCurrent", Element: "TieLine"},
				{Point: "lineP", Element: "TieLine"},
				{Point: "lineQ", Element: "TieLine"},
				{Point: "busVoltage", Element: cn(sub, "VL22", "TransBay", "MainBus")},
			},
			Controls: []sgmlconf.Control{{Breaker: "CBTie"}},
		},
		{
			Name: "TIED2", Substation: sub,
			Protection: sgmlconf.Protection{
				PTOV: &sgmlconf.PTOVConf{ThresholdPU: 1.10, DelayMS: 200, Bus: cn(sub, "VL22", "TransBay", "MainBus")},
				PTUV: &sgmlconf.PTUVConf{ThresholdPU: 0.90, DelayMS: 300, Bus: cn(sub, "VL22", "TransBay", "MainBus")},
			},
			Measures: []sgmlconf.Measure{{Point: "busVoltage", Element: cn(sub, "VL22", "TransBay", "MainBus")}},
		},
		{
			Name: "MIED1", Substation: sub,
			Protection: sgmlconf.Protection{
				PTOC: &sgmlconf.PTOCConf{ThresholdKA: 0.30, DelayMS: 150, Line: "MicroLine"},
				// Micro-grid breaker may only close when the tie breaker is
				// closed (anti-islanding interlock).
				CILO: &sgmlconf.CILOConf{GuardBreaker: "CBTie", GuardIED: "TIED1"},
			},
			Measures: []sgmlconf.Measure{
				{Point: "lineCurrent", Element: "MicroLine"},
				{Point: "busVoltage", Element: cn(sub, "VL22", "MicroBay", "MicroBus")},
			},
			Controls: []sgmlconf.Control{{Breaker: "CBMicro"}},
		},
		{
			Name: "MIED2", Substation: sub,
			Protection: sgmlconf.Protection{
				PTUV: &sgmlconf.PTUVConf{ThresholdPU: 0.90, DelayMS: 300, Bus: cn(sub, "VL22", "MicroBay", "MicroBus")},
			},
			Measures: []sgmlconf.Measure{{Point: "busVoltage", Element: cn(sub, "VL22", "MicroBay", "MicroBus")}},
		},
		{
			Name: "SIED1", Substation: sub,
			Protection: sgmlconf.Protection{
				PTOC: &sgmlconf.PTOCConf{ThresholdKA: 0.12, DelayMS: 150, Line: "HomeTrafo"},
			},
			Measures: []sgmlconf.Measure{{Point: "busVoltage", Element: cn(sub, "VL04", "HomeBay", "HomeBus")}},
			Controls: []sgmlconf.Control{{Breaker: "CBHome"}},
		},
		{
			Name: "SIED2", Substation: sub,
			Protection: sgmlconf.Protection{
				PTUV: &sgmlconf.PTUVConf{ThresholdPU: 0.90, DelayMS: 300, Bus: cn(sub, "VL04", "HomeBay", "HomeBus")},
			},
			Measures: []sgmlconf.Measure{{Point: "busVoltage", Element: cn(sub, "VL04", "HomeBay", "HomeBus")}},
		},
	}}

	m.SCADAConfig = &sgmlconf.SCADAConfig{
		DataSources: []sgmlconf.DataSource{
			{Name: "cplc", Protocol: "modbus", Host: "CPLC", IP: "10.0.1.5", Port: 502, PollMS: 1000},
			{Name: "tied1", Protocol: "mms", Host: "TIED1", IP: "10.0.1.21", Port: 102, PollMS: 2000},
			{Name: "gied1", Protocol: "mms", Host: "GIED1", IP: "10.0.1.11", Port: 102, PollMS: 2000},
		},
		DataPoints: []sgmlconf.DataPoint{
			{Name: "MainVoltage", Source: "cplc", Kind: "analog", Address: "30001", Scale: 0.001,
				HasAlarm: true, AlarmLow: 0.90, AlarmHigh: 1.10},
			{Name: "TieBreakerClose", Source: "cplc", Kind: "binary", Address: "10001"},
			{Name: "UnderVoltAlarm", Source: "cplc", Kind: "binary", Address: "10002"},
			{Name: "ManualTrip", Source: "cplc", Kind: "binary", Address: "1", Writable: true},
			{Name: "TieCurrent", Source: "tied1", Kind: "analog", Address: "LD0/MMXU1.A.phsA"},
			{Name: "TiePower", Source: "tied1", Kind: "analog", Address: "LD0/MMXU1.TotW"},
			{Name: "GenBusVoltage", Source: "gied1", Kind: "analog", Address: "LD0/MMXU1.PhV.phsA",
				HasAlarm: true, AlarmLow: 0.90, AlarmHigh: 1.10},
			{Name: "TieBreakerOper", Source: "tied1", Kind: "binary", Address: "LD0/XCBR1.Pos.Oper", Writable: true},
		},
	}

	m.PowerConfig = &sgmlconf.PowerConfig{
		BaseMVA:    100,
		IntervalMS: 100,
		Elements: []sgmlconf.ElementParam{
			{Kind: "extgrid", Name: "Gen1", VmPU: 1.00},
			{Kind: "gen", Name: "Gen2", PMW: 4, VmPU: 1.00, MinQMVAr: -3, MaxQMVAr: 3},
			{Kind: "sgen", Name: "PV1", PMW: 0.8},
			{Kind: "sgen", Name: "Battery1", PMW: 0.5},
			{Kind: "line", Name: "TieLine", LengthKM: 2, ROhmPerKM: 0.08, XOhmPerKM: 0.35, CNFPerKM: 10, MaxIKA: 0.8},
			{Kind: "line", Name: "MicroLine", LengthKM: 1, ROhmPerKM: 0.10, XOhmPerKM: 0.35, CNFPerKM: 10, MaxIKA: 0.4},
			{Kind: "trafo", Name: "HomeTrafo", SnMVA: 2, VKPercent: 6, VKRPercent: 0.8},
			{Kind: "load", Name: "Home1", PMW: 0.4, QMVAr: 0.1},
			{Kind: "load", Name: "Home2", PMW: 0.3, QMVAr: 0.08},
			{Kind: "load", Name: "Home3", PMW: 0.35, QMVAr: 0.09},
			{Kind: "load", Name: "Home4", PMW: 0.25, QMVAr: 0.06},
		},
		Steps: []sgmlconf.ProfileStep{
			// A mild daily profile: homes ramp up, PV dips (cloud cover).
			{AtMS: 0, Kind: "loadScale", Element: "Home1", Value: 1.0},
			{AtMS: 5000, Kind: "loadScale", Element: "Home1", Value: 1.3},
			{AtMS: 5000, Kind: "loadScale", Element: "Home2", Value: 1.2},
			{AtMS: 8000, Kind: "sgenP", Element: "PV1", Value: 0.2},
		},
	}

	m.PLCConfig = &sgmlconf.PLCConfig{
		Name: "CPLC", Host: "CPLC", ScanMS: 100, ModbusPort: 502,
		Inputs: []sgmlconf.PLCBinding{
			{Var: "mainVoltage", IED: "TIED1", Ref: "LD0/MMXU1.PhV.phsA"},
			{Var: "tieCurrent", IED: "TIED1", Ref: "LD0/MMXU1.A.phsA"},
		},
		Outputs: []sgmlconf.PLCBinding{
			{Var: "tieBreakerClose", IED: "TIED1", Ref: "LD0/XCBR1.Pos.Oper"},
		},
		Exposes: []sgmlconf.PLCExpose{
			{Var: "mainVoltage", Kind: "inputReg", Addr: 0, Scale: 1000},
			{Var: "tieBreakerClose", Kind: "discrete", Addr: 0},
			{Var: "underVoltAlarm", Kind: "discrete", Addr: 1},
		},
		Commands: []sgmlconf.PLCCommand{{Coil: 0, Var: "manualTrip"}},
	}
	if err := m.PLCConfig.Validate(); err != nil {
		return nil, fmt.Errorf("epic: generated PLC config invalid: %w", err)
	}

	xml, err := plc.BuildPLCopen("CPLC", cplcLogic)
	if err != nil {
		return nil, err
	}
	m.PLCopenXML = xml
	if err := m.SCD.Validate(); err != nil {
		return nil, fmt.Errorf("epic: generated SCD invalid: %w", err)
	}
	if err := m.IEDConfig.Validate(); err != nil {
		return nil, fmt.Errorf("epic: generated IED config invalid: %w", err)
	}
	if err := m.SCADAConfig.Validate(); err != nil {
		return nil, fmt.Errorf("epic: generated SCADA config invalid: %w", err)
	}
	if err := m.PowerConfig.Validate(); err != nil {
		return nil, fmt.Errorf("epic: generated power config invalid: %w", err)
	}
	return m, nil
}

// lnTypes emits LNodeType templates for the given classes.
func lnTypes(classes []string) []scl.LNodeType {
	out := make([]scl.LNodeType, 0, len(classes))
	for _, c := range classes {
		out = append(out, scl.LNodeType{
			ID: c + "_T", LnClass: c,
			DOs: []scl.DO{{Name: "Beh", Type: "ENS_T"}, {Name: "Op", Type: "ACT_T"}},
		})
	}
	return out
}

// Files serialises the model into the on-disk SG-ML file set the paper's
// toolchain consumes (Fig 2: "set of XML files used as the input").
func (m *Model) Files() (map[string][]byte, error) {
	out := make(map[string][]byte)
	scd, err := m.SCD.Marshal()
	if err != nil {
		return nil, err
	}
	out["epic.scd.xml"] = scd
	// SSD = substation-only view of the SCD.
	ssd := &scl.Document{Header: scl.Header{ID: "epic-ssd", ToolID: "sgml-epic"}, Substations: m.SCD.Substations}
	ssdXML, err := ssd.Marshal()
	if err != nil {
		return nil, err
	}
	out["epic.ssd.xml"] = ssdXML
	for name, icd := range m.ICDs {
		data, err := icd.Marshal()
		if err != nil {
			return nil, err
		}
		out[name+".icd.xml"] = data
	}
	iedCfg, err := sgmlconf.Marshal(m.IEDConfig)
	if err != nil {
		return nil, err
	}
	out["ied_config.xml"] = iedCfg
	scadaCfg, err := sgmlconf.Marshal(m.SCADAConfig)
	if err != nil {
		return nil, err
	}
	out["scada_config.xml"] = scadaCfg
	powerCfg, err := sgmlconf.Marshal(m.PowerConfig)
	if err != nil {
		return nil, err
	}
	out["power_config.xml"] = powerCfg
	out["cplc_logic.plcopen.xml"] = m.PLCopenXML
	plcCfg, err := sgmlconf.Marshal(m.PLCConfig)
	if err != nil {
		return nil, err
	}
	out["plc_config.xml"] = plcCfg
	scadaJSON, err := m.SCADAConfig.ToImportJSON()
	if err != nil {
		return nil, err
	}
	out["scadabr_import.json"] = scadaJSON
	return out, nil
}
