package epic

import (
	"strings"
	"testing"

	"repro/internal/plc"
	"repro/internal/scl"
	"repro/internal/st"
)

func TestNewModelStructure(t *testing.T) {
	m, err := NewModel()
	if err != nil {
		t.Fatal(err)
	}
	if m.Substation != "EPIC" {
		t.Errorf("substation = %q", m.Substation)
	}
	// 8 IEDs across the four segments.
	if len(m.IEDs) != 8 {
		t.Fatalf("IEDs = %d", len(m.IEDs))
	}
	segs := map[string]int{}
	for _, s := range m.IEDs {
		segs[s.Segment]++
	}
	for _, seg := range []string{SegGeneration, SegTransmission, SegMicrogrid, SegSmartHome} {
		if segs[seg] != 2 {
			t.Errorf("segment %s has %d IEDs, want 2", seg, segs[seg])
		}
	}
	// SCD validates and classifies correctly.
	if err := m.SCD.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.SCD.DetectKind() != scl.KindSCD {
		t.Errorf("kind = %v", m.SCD.DetectKind())
	}
	// 5 subnetworks (per segment + control).
	if got := len(m.SCD.Communication.SubNetworks); got != 5 {
		t.Errorf("subnetworks = %d", got)
	}
	// Each IED has a usable ICD.
	if len(m.ICDs) != 8 {
		t.Errorf("ICDs = %d", len(m.ICDs))
	}
	for name, icd := range m.ICDs {
		if icd.DetectKind() != scl.KindICD {
			t.Errorf("%s ICD kind = %v", name, icd.DetectKind())
		}
		if err := icd.Validate(); err != nil {
			t.Errorf("%s ICD invalid: %v", name, err)
		}
	}
	// Protection features match the Table II design.
	if !m.SCD.FindIED("TIED1").HasLNClass("PTOC") {
		t.Error("TIED1 lacks PTOC")
	}
	if !m.SCD.FindIED("MIED1").HasLNClass("CILO") {
		t.Error("MIED1 lacks CILO")
	}
	if m.IEDConfig.Find("TIED1").Protection.PTOC == nil {
		t.Error("TIED1 config lacks PTOC thresholds")
	}
	if m.IEDConfig.Find("MIED1").Protection.CILO.GuardBreaker != "CBTie" {
		t.Error("MIED1 interlock guard wrong")
	}
}

func TestCPLCLogicCompiles(t *testing.T) {
	m, err := NewModel()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := st.Parse(m.PLCLogic)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "CPLC" {
		t.Errorf("program name = %q", prog.Name)
	}
	// And the PLCopen XML round-trips to the same logic.
	name, src, err := plc.ParsePLCopen(m.PLCopenXML)
	if err != nil {
		t.Fatal(err)
	}
	if name != "CPLC" || !strings.Contains(src, "tieBreakerClose") {
		t.Errorf("PLCopen round trip: name=%q", name)
	}
	if _, err := st.Parse(src); err != nil {
		t.Errorf("round-tripped logic does not compile: %v", err)
	}
}

func TestFilesComplete(t *testing.T) {
	m, err := NewModel()
	if err != nil {
		t.Fatal(err)
	}
	files, err := m.Files()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"epic.scd.xml", "epic.ssd.xml", "ied_config.xml", "scada_config.xml",
		"power_config.xml", "plc_config.xml", "cplc_logic.plcopen.xml", "scadabr_import.json",
		"GIED1.icd.xml", "SIED2.icd.xml",
	} {
		if _, ok := files[want]; !ok {
			t.Errorf("file %q missing", want)
		}
	}
	// The serialized SCD parses back.
	doc, err := scl.Parse(files["epic.scd.xml"])
	if err != nil {
		t.Fatal(err)
	}
	if doc.FindIED("TIED1") == nil {
		t.Error("SCD lost TIED1 in serialization")
	}
	// The SSD view is substation-only.
	ssd, err := scl.Parse(files["epic.ssd.xml"])
	if err != nil {
		t.Fatal(err)
	}
	if ssd.DetectKind() != scl.KindSSD {
		t.Errorf("ssd kind = %v", ssd.DetectKind())
	}
}

func TestScaleModel(t *testing.T) {
	sm, err := NewScaleModel(5, 20)
	if err != nil {
		t.Fatal(err)
	}
	// 5 substations * (20 feeders + 1 gateway) = 105 IEDs; the paper's 104 is
	// matched by NewScaleModel(5, 20) with the slack substation's gateway
	// acting as one of them — TotalIEDs is what the bench reports.
	if sm.TotalIEDs != 105 {
		t.Errorf("total IEDs = %d", sm.TotalIEDs)
	}
	if len(sm.SCDs) != 5 || len(sm.Substations) != 5 {
		t.Fatalf("substations = %d", len(sm.SCDs))
	}
	if len(sm.SED.Ties) != 4 {
		t.Errorf("ties = %d, want 4 (chain)", len(sm.SED.Ties))
	}
	for name, doc := range sm.SCDs {
		if err := doc.Validate(); err != nil {
			t.Errorf("%s invalid: %v", name, err)
		}
		if doc.DetectKind() != scl.KindSCD {
			t.Errorf("%s kind = %v", name, doc.DetectKind())
		}
	}
	if err := sm.SED.Validate(sm.SCDs); err != nil {
		t.Errorf("SED invalid: %v", err)
	}
	if err := sm.IEDConfigs.Validate(); err != nil {
		t.Errorf("IED configs invalid: %v", err)
	}
	if err := sm.PowerConfig.Validate(); err != nil {
		t.Errorf("power config invalid: %v", err)
	}
	// Only the first substation carries the slack.
	if sm.PowerConfig.Element("extgrid", "Grid") == nil {
		t.Error("no external grid element")
	}
}

func TestScaleModelBounds(t *testing.T) {
	if _, err := NewScaleModel(0, 5); err == nil {
		t.Error("zero substations accepted")
	}
	if _, err := NewScaleModel(2, 0); err == nil {
		t.Error("zero feeders accepted")
	}
	sm, err := NewScaleModel(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sm.TotalIEDs != 2 || len(sm.SED.Ties) != 0 {
		t.Errorf("minimal model: %d IEDs, %d ties", sm.TotalIEDs, len(sm.SED.Ties))
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, err := NewModel()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewModel()
	if err != nil {
		t.Fatal(err)
	}
	fa, err := a.Files()
	if err != nil {
		t.Fatal(err)
	}
	fb, err := b.Files()
	if err != nil {
		t.Fatal(err)
	}
	if len(fa) != len(fb) {
		t.Fatalf("file counts differ")
	}
	for name := range fa {
		if string(fa[name]) != string(fb[name]) {
			t.Errorf("file %q not deterministic", name)
		}
	}
}
