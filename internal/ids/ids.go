// Package ids implements a passive network intrusion detection sensor for
// the cyber range — the defensive (blue-team) counterpart of the §IV-B
// attack case studies.
//
// The paper positions the cyber range for "red-team exercise to identify
// vulnerabilities" and "cybersecurity hands-on training"; a training range
// needs the defender's instruments too. The sensor taps every link of the
// emulated network (the same primitive a SPAN port gives a real IDS) and
// raises alerts for exactly the footprints the implemented attacks leave:
//
//   - ARP spoofing: an IP address claimed by conflicting MAC addresses
//     (the MITM case study, Fig 6);
//   - unauthorized MMS control writes: confirmed-write PDUs towards port 102
//     from sources outside the allowlist (the FCI case study);
//   - GOOSE stNum anomalies: regressions that indicate replay or a second
//     publisher (GOOSE spoofing);
//   - TCP port scans: one source probing many distinct ports (the "Nmap on
//     a virtual node" usage).
package ids

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"repro/internal/goose"
	"repro/internal/netem"
)

// AlertKind classifies sensor alerts.
type AlertKind string

// Alert kinds.
const (
	AlertARPSpoof          AlertKind = "arp-spoof"
	AlertUnauthorizedWrite AlertKind = "unauthorized-mms-write"
	AlertGooseAnomaly      AlertKind = "goose-stnum-anomaly"
	AlertPortScan          AlertKind = "tcp-port-scan"
)

// Alert is one detection.
type Alert struct {
	Time   time.Time
	Kind   AlertKind
	Source string // offending MAC or IP
	Detail string
	// Step is the simulation step during which the alert was raised, stamped
	// via SetStepFunc; -1 when no step provider is installed. Alerts raised
	// by synchronous scenario actions carry a deterministic step; alerts from
	// asynchronous traffic (GOOSE retransmissions, ARP re-poisoning ticks)
	// inherit whatever step the wall clock landed them in.
	Step int
}

// Options configures the sensor.
type Options struct {
	// AuthorizedWriters are the sources allowed to issue MMS control writes
	// (the SCADA HMI and PLCs). Empty disables write monitoring.
	AuthorizedWriters []netem.IPv4
	// PortScanThreshold is the number of distinct destination ports probed
	// by one source before a scan alert fires; default 10.
	PortScanThreshold int
}

// gooseState tracks the newest state number per control block and when it
// was first observed. The fabric floods multicast frames across several
// links, so a frame with the previous stNum can trail the new state by
// microseconds on another link; only regressions older than the grace
// window are genuine replays.
type gooseState struct {
	max uint32
	at  time.Time
}

// gooseReplayGrace is the window within which an out-of-order old-state
// frame is treated as flood duplication rather than replay.
const gooseReplayGrace = 100 * time.Millisecond

// Sensor is a passive detector attached to the fabric.
type Sensor struct {
	mu         sync.Mutex
	alerts     []Alert
	ipToMAC    map[netem.IPv4]netem.MAC
	writers    map[netem.IPv4]bool
	writeWatch bool
	gooseSt    map[string]*gooseState // gocbRef -> highest stNum seen
	gooseDec   goose.Decoder          // arena reused across inspected frames (under mu)
	synSeen    map[netem.IPv4]map[uint16]bool
	scanThresh int
	scanFired  map[netem.IPv4]bool
	frames     uint64
	stepFn     func() int // simulation-step provider for alert stamping
}

// New builds a sensor.
func New(opts Options) *Sensor {
	s := &Sensor{
		ipToMAC:    make(map[netem.IPv4]netem.MAC),
		writers:    make(map[netem.IPv4]bool),
		gooseSt:    make(map[string]*gooseState),
		synSeen:    make(map[netem.IPv4]map[uint16]bool),
		scanFired:  make(map[netem.IPv4]bool),
		scanThresh: opts.PortScanThreshold,
	}
	if s.scanThresh <= 0 {
		s.scanThresh = 10
	}
	for _, ip := range opts.AuthorizedWriters {
		s.writers[ip] = true
	}
	s.writeWatch = len(opts.AuthorizedWriters) > 0
	return s
}

// Attach registers the sensor as a tap on every link of the network. It may
// be called before the network starts or while it is running (scenario-driven
// sensor deployment); a sensor attached mid-run observes from the next frame.
func (s *Sensor) Attach(n *netem.Network) {
	n.Tap(func(_ *netem.Link, _ string, f netem.Frame) {
		s.inspect(f)
	})
}

// SetStepFunc installs a simulation-step provider; every subsequent alert is
// stamped with its value (Alert.Step). The function is called from fabric
// goroutines and must be safe for concurrent use (e.g. an atomic load).
func (s *Sensor) SetStepFunc(fn func() int) {
	s.mu.Lock()
	s.stepFn = fn
	s.mu.Unlock()
}

// Alerts returns a copy of the alert log.
func (s *Sensor) Alerts() []Alert {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Alert(nil), s.alerts...)
}

// AlertsOf filters alerts by kind.
func (s *Sensor) AlertsOf(kind AlertKind) []Alert {
	var out []Alert
	for _, a := range s.Alerts() {
		if a.Kind == kind {
			out = append(out, a)
		}
	}
	return out
}

// Frames reports the number of frames inspected.
func (s *Sensor) Frames() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.frames
}

func (s *Sensor) raise(kind AlertKind, source, detail string) {
	step := -1
	if s.stepFn != nil {
		step = s.stepFn()
	}
	s.alerts = append(s.alerts, Alert{Time: time.Now(), Kind: kind, Source: source, Detail: detail, Step: step})
}

// inspect runs under the tap; it must be fast and never block.
func (s *Sensor) inspect(f netem.Frame) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.frames++
	switch f.EtherType {
	case netem.EtherTypeARP:
		s.inspectARP(f)
	case netem.EtherTypeIPv4:
		s.inspectIP(f)
	case netem.EtherTypeGOOSE:
		s.inspectGOOSE(f)
	}
}

func (s *Sensor) inspectARP(f netem.Frame) {
	pkt, err := netem.UnmarshalARP(f.Payload)
	if err != nil {
		return
	}
	if pkt.SenderIP.IsZero() {
		return
	}
	known, seen := s.ipToMAC[pkt.SenderIP]
	if seen && known != pkt.SenderMAC {
		// Every subsequent poisoning round re-raises; dedupe per claimed pair.
		s.raise(AlertARPSpoof, pkt.SenderMAC.String(),
			fmt.Sprintf("IP %s previously at %s now claimed by %s", pkt.SenderIP, known, pkt.SenderMAC))
	}
	s.ipToMAC[pkt.SenderIP] = pkt.SenderMAC
}

func (s *Sensor) inspectIP(f netem.Frame) {
	pkt, err := netem.UnmarshalIP(f.Payload)
	if err != nil || pkt.Protocol != netem.IPProtoTCP || len(pkt.Payload) < 20 {
		return
	}
	srcPort := binary.BigEndian.Uint16(pkt.Payload[0:])
	dstPort := binary.BigEndian.Uint16(pkt.Payload[2:])
	flags := pkt.Payload[13]
	dataOff := int(pkt.Payload[12]>>4) * 4
	_ = srcPort

	// Port-scan detection: SYNs without ACK to many distinct ports.
	if flags&0x02 != 0 && flags&0x10 == 0 {
		ports := s.synSeen[pkt.Src]
		if ports == nil {
			ports = make(map[uint16]bool)
			s.synSeen[pkt.Src] = ports
		}
		ports[dstPort] = true
		if len(ports) >= s.scanThresh && !s.scanFired[pkt.Src] {
			s.scanFired[pkt.Src] = true
			s.raise(AlertPortScan, pkt.Src.String(),
				fmt.Sprintf("%d distinct ports probed", len(ports)))
		}
	}

	// Unauthorized MMS write: confirmed-request PDU with a write service
	// towards the MMS port from outside the allowlist.
	if s.writeWatch && dstPort == 102 && !s.writers[pkt.Src] &&
		dataOff >= 20 && dataOff < len(pkt.Payload) {
		if containsMMSWrite(pkt.Payload[dataOff:]) {
			s.raise(AlertUnauthorizedWrite, pkt.Src.String(),
				fmt.Sprintf("MMS write request to %s from non-authorized source", pkt.Dst))
		}
	}
}

// containsMMSWrite scans a TCP payload for a TPKT-framed MMS
// confirmed-request PDU carrying the write service ([5], tag 0xA5).
func containsMMSWrite(b []byte) bool {
	for len(b) >= 6 {
		if b[0] != 0x03 || b[1] != 0x00 {
			return false
		}
		total := int(binary.BigEndian.Uint16(b[2:]))
		if total < 4 || total > len(b) {
			return false
		}
		pdu := b[4:total]
		// confirmed-RequestPDU (0xA0): [len][invokeID TLV][service TLV].
		if len(pdu) > 4 && pdu[0] == 0xA0 {
			// Walk: skip the outer length (may be long-form).
			body, ok := tlvValue(pdu)
			if ok {
				// First child: invokeID (0x02 ...), second: service.
				if rest, ok := skipTLV(body); ok && len(rest) > 0 && rest[0] == 0xA5 {
					return true
				}
			}
		}
		b = b[total:]
	}
	return false
}

// tlvValue returns the value bytes of the TLV at the start of b.
func tlvValue(b []byte) ([]byte, bool) {
	if len(b) < 2 {
		return nil, false
	}
	ln := int(b[1])
	offset := 2
	if ln&0x80 != 0 {
		n := ln & 0x7F
		if n == 0 || n > 4 || len(b) < 2+n {
			return nil, false
		}
		ln = 0
		for i := 0; i < n; i++ {
			ln = ln<<8 | int(b[2+i])
		}
		offset = 2 + n
	}
	if len(b) < offset+ln {
		return nil, false
	}
	return b[offset : offset+ln], true
}

// skipTLV returns the bytes after the TLV at the start of b.
func skipTLV(b []byte) ([]byte, bool) {
	if len(b) < 2 {
		return nil, false
	}
	ln := int(b[1])
	offset := 2
	if ln&0x80 != 0 {
		n := ln & 0x7F
		if n == 0 || n > 4 || len(b) < 2+n {
			return nil, false
		}
		ln = 0
		for i := 0; i < n; i++ {
			ln = ln<<8 | int(b[2+i])
		}
		offset = 2 + n
	}
	if len(b) < offset+ln {
		return nil, false
	}
	return b[offset+ln:], true
}

// inspectGOOSE uses the header-only arena decode: per frame it neither
// re-allocates a TLV tree nor decodes the dataset values, and the gocbRef
// string is only materialised once per control block (map inserts).
func (s *Sensor) inspectGOOSE(f netem.Frame) {
	_, hdr, err := s.gooseDec.DecodeHeader(f.Payload)
	if err != nil {
		return
	}
	st := s.gooseSt[string(hdr.GocbRef)] // string() in a map index: no alloc
	now := time.Now()
	if st != nil && hdr.StNum < st.max && now.Sub(st.at) > gooseReplayGrace {
		s.raise(AlertGooseAnomaly, f.Src.String(),
			fmt.Sprintf("gocbRef %s stNum regressed %d -> %d (replay or spoofed publisher)",
				hdr.GocbRef, st.max, hdr.StNum))
	}
	switch {
	case st == nil:
		s.gooseSt[string(hdr.GocbRef)] = &gooseState{max: hdr.StNum, at: now}
	case hdr.StNum > st.max:
		st.max, st.at = hdr.StNum, now
	}
}
