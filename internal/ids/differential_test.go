package ids

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/goose"
	"repro/internal/mms"
	"repro/internal/netem"
)

// TestVerdictsIdenticalOnPooledAndReferencePaths drives the same attack
// traffic — GOOSE replay (stNum regression) plus an ARP spoof — over a
// pooled fabric and a reference (pooling-off) fabric and requires the
// sensor's verdicts to be identical, pinning the zero-allocation data plane
// to the legacy semantics.
func TestVerdictsIdenticalOnPooledAndReferencePaths(t *testing.T) {
	scenario := func(pooling bool) []string {
		n := netem.NewNetwork()
		n.SetFramePooling(pooling)
		if _, err := netem.NewSwitch(n, "sw", 4); err != nil {
			t.Fatal(err)
		}
		mk := func(name string, last byte) *netem.Host {
			h, err := netem.NewHost(n, name, netem.MAC{2, 0, 0, 0, 0, last}, netem.IPv4{10, 0, 0, last})
			if err != nil {
				t.Fatal(err)
			}
			return h
		}
		pub := mk("pub", 1)
		sub := mk("sub", 2)
		attacker := mk("attacker", 3)
		for i, h := range []*netem.Host{pub, sub, attacker} {
			if _, err := n.Connect(h.Name(), 0, "sw", i, 0); err != nil {
				t.Fatal(err)
			}
		}
		sensor := New(Options{})
		sensor.Attach(n)
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
		defer n.Stop()

		// Legit GOOSE traffic on the pooled publisher path.
		gp := goose.NewPublisher(pub, goose.PublisherConfig{
			GocbRef: "g1", AppID: 0x0001, FixedInterval: time.Hour,
		})
		defer gp.Stop()
		gsub := goose.Subscribe(sub, 0x0001)
		for i := 0; i < 5; i++ {
			gp.Publish(mms.NewBool(i%2 == 0))
		}
		waitCond(t, "legit goose", func() bool { return gsub.Received() >= 5 })
		awaitQuiet(t, sensor)

		// Replay an old state from the attacker after the flood-grace window.
		time.Sleep(150 * time.Millisecond)
		replay := goose.Marshal(0x0001, goose.Message{
			GocbRef: "g1", StNum: 1, Timestamp: time.Unix(0, 0),
			Values: []mms.Value{mms.NewBool(true)},
		})
		attacker.SendFrame(netem.Frame{
			Dst: netem.GooseMAC(0x0001), Src: attacker.MAC(),
			EtherType: netem.EtherTypeGOOSE, Payload: replay,
		})
		awaitQuiet(t, sensor)

		// ARP spoof: the attacker claims pub's IP. The legit binding must be
		// fully inspected (every flood hop) before the spoof flies, or the
		// interleaved hops raise a nondeterministic extra "reclaim" alert.
		legit := netem.ARPPacket{
			Op: netem.ARPReply, SenderMAC: pub.MAC(), SenderIP: pub.IP(),
			TargetMAC: sub.MAC(), TargetIP: sub.IP(),
		}
		pub.SendFrame(netem.Frame{Dst: sub.MAC(), Src: pub.MAC(),
			EtherType: netem.EtherTypeARP, Payload: legit.Marshal()})
		awaitQuiet(t, sensor)
		spoof := netem.ARPPacket{
			Op: netem.ARPReply, SenderMAC: attacker.MAC(), SenderIP: pub.IP(),
			TargetMAC: sub.MAC(), TargetIP: sub.IP(),
		}
		attacker.SendFrame(netem.Frame{Dst: sub.MAC(), Src: attacker.MAC(),
			EtherType: netem.EtherTypeARP, Payload: spoof.Marshal()})

		waitCond(t, "verdicts", func() bool {
			return len(sensor.AlertsOf(AlertGooseAnomaly)) >= 1 &&
				len(sensor.AlertsOf(AlertARPSpoof)) >= 1
		})
		awaitQuiet(t, sensor) // drain in-flight flood hops before snapshotting
		var out []string
		for _, a := range sensor.Alerts() {
			out = append(out, fmt.Sprintf("%s|%s|%s", a.Kind, a.Source, a.Detail))
		}
		return out
	}

	ref := scenario(false)
	pooled := scenario(true)
	if len(ref) != len(pooled) {
		t.Fatalf("alert count %d vs %d:\nref: %v\npooled: %v", len(ref), len(pooled), ref, pooled)
	}
	for i := range ref {
		if ref[i] != pooled[i] {
			t.Errorf("verdict %d differs:\nref:    %s\npooled: %s", i, ref[i], pooled[i])
		}
	}
}

// awaitQuiet waits until the sensor's inspected-frame count stops advancing
// (no tap crossing for 50 ms), so every in-flight flood hop has been
// inspected and alert state is deterministic.
func awaitQuiet(t *testing.T, sensor *Sensor) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	last := sensor.Frames()
	lastChange := time.Now()
	for {
		time.Sleep(5 * time.Millisecond)
		if now := sensor.Frames(); now != last {
			last, lastChange = now, time.Now()
		} else if time.Since(lastChange) > 50*time.Millisecond {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("fabric never went quiet")
		}
	}
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
