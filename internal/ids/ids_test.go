package ids

import (
	"context"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/goose"
	"repro/internal/kvbus"
	"repro/internal/mms"
	"repro/internal/netem"
	"repro/internal/sgmlconf"

	iedpkg "repro/internal/ied"
)

// rig: IED + legit client + attacker on one switch, sensor attached.
type rig struct {
	net      *netem.Network
	iedHost  *netem.Host
	client   *netem.Host
	attacker *netem.Host
	sensor   *Sensor
	ied      *iedpkg.IED
}

func newRig(t *testing.T) *rig {
	t.Helper()
	n := netem.NewNetwork()
	if _, err := netem.NewSwitch(n, "sw", 4); err != nil {
		t.Fatal(err)
	}
	mk := func(name string, last byte) *netem.Host {
		h, err := netem.NewHost(n, name, netem.MAC{2, 0, 0, 0, 0, last}, netem.IPv4{10, 0, 0, last})
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	iedHost := mk("ied", 1)
	client := mk("plc", 2)
	attacker := mk("attacker", 3)
	for i, h := range []*netem.Host{iedHost, client, attacker} {
		if _, err := n.Connect(h.Name(), 0, "sw", i, 0); err != nil {
			t.Fatal(err)
		}
	}
	sensor := New(Options{
		AuthorizedWriters: []netem.IPv4{client.IP()},
		PortScanThreshold: 5,
	})
	sensor.Attach(n)
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)

	bus := kvbus.New()
	entry := &sgmlconf.IEDEntry{
		Name: "IED", Substation: "s",
		Measures: []sgmlconf.Measure{{Point: "busVoltage", Element: "Bus"}},
		Controls: []sgmlconf.Control{{Breaker: "CB"}},
	}
	dev, err := iedpkg.New(iedHost, bus, iedpkg.Config{Name: "IED", Substation: "s", Entry: entry})
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Serve(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dev.Stop)
	return &rig{net: n, iedHost: iedHost, client: client, attacker: attacker, sensor: sensor, ied: dev}
}

func TestDetectsARPSpoofing(t *testing.T) {
	r := newRig(t)
	// Legit traffic populates the sensor's IP->MAC view.
	cli, err := mms.Dial(r.client, r.iedHost.IP(), 0, mms.DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cli.Read(iedpkg.RefVoltage())
	cli.Close()

	m := attack.NewMITM(r.attacker, r.client.IP(), r.iedHost.IP())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := m.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	time.Sleep(50 * time.Millisecond)

	alerts := r.sensor.AlertsOf(AlertARPSpoof)
	if len(alerts) == 0 {
		t.Fatal("ARP spoofing undetected")
	}
	if alerts[0].Source != r.attacker.MAC().String() {
		t.Errorf("alert source = %s, want attacker MAC", alerts[0].Source)
	}
}

func TestNoFalsePositiveOnLegitARP(t *testing.T) {
	r := newRig(t)
	// Plain resolution both ways.
	if _, err := r.client.ResolveARP(r.iedHost.IP(), time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := r.iedHost.ResolveARP(r.client.IP(), time.Second); err != nil {
		t.Fatal(err)
	}
	if alerts := r.sensor.AlertsOf(AlertARPSpoof); len(alerts) != 0 {
		t.Errorf("false positives: %+v", alerts)
	}
}

func TestDetectsUnauthorizedMMSWrite(t *testing.T) {
	r := newRig(t)
	// Authorized client writes: no alert.
	cli, err := mms.Dial(r.client, r.iedHost.IP(), 0, mms.DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Write(iedpkg.RefBreakerOper(1), mms.NewBool(true)); err != nil {
		t.Fatal(err)
	}
	cli.Close()
	if alerts := r.sensor.AlertsOf(AlertUnauthorizedWrite); len(alerts) != 0 {
		t.Fatalf("authorized write alerted: %+v", alerts)
	}
	// Attacker injects: alert.
	fci := attack.NewFCI(r.attacker)
	if err := fci.InjectCommand(r.iedHost.IP(), 0, iedpkg.RefBreakerOper(1), mms.NewBool(false)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	alerts := r.sensor.AlertsOf(AlertUnauthorizedWrite)
	if len(alerts) == 0 {
		t.Fatal("FCI write undetected")
	}
	if alerts[0].Source != r.attacker.IP().String() {
		t.Errorf("alert source = %s", alerts[0].Source)
	}
	// Reads from the attacker are not write alerts.
	before := len(r.sensor.AlertsOf(AlertUnauthorizedWrite))
	if _, err := fci.Enumerate(r.iedHost.IP(), 0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if after := len(r.sensor.AlertsOf(AlertUnauthorizedWrite)); after != before {
		t.Error("read-only enumeration raised a write alert")
	}
}

func TestDetectsPortScan(t *testing.T) {
	r := newRig(t)
	attack.ScanPorts(r.attacker, r.iedHost.IP(), []uint16{21, 22, 23, 80, 443, 502, 2404, 20000})
	time.Sleep(20 * time.Millisecond)
	alerts := r.sensor.AlertsOf(AlertPortScan)
	if len(alerts) != 1 {
		t.Fatalf("port-scan alerts = %d, want 1 (deduplicated)", len(alerts))
	}
	if alerts[0].Source != r.attacker.IP().String() {
		t.Errorf("source = %s", alerts[0].Source)
	}
}

func TestDetectsGooseReplay(t *testing.T) {
	r := newRig(t)
	pub := goose.NewPublisher(r.client, goose.PublisherConfig{
		GocbRef: "IEDLD0/LLN0$GO$gcb1", AppID: 0x0001, Heartbeat: time.Hour,
	})
	defer pub.Stop()
	pub.Publish(mms.NewBool(true))
	pub.Publish(mms.NewBool(false))    // stNum 2
	time.Sleep(150 * time.Millisecond) // beyond the replay grace window
	if alerts := r.sensor.AlertsOf(AlertGooseAnomaly); len(alerts) != 0 {
		t.Fatalf("legit GOOSE alerted: %+v", alerts)
	}
	// Replay: attacker re-emits a frame with an old stNum.
	replay := goose.Marshal(0x0001, goose.Message{
		GocbRef: "IEDLD0/LLN0$GO$gcb1", GoID: "gcb1", StNum: 1, SqNum: 0,
		TTLMillis: 2000, ConfRev: 1, Timestamp: time.Now(),
		Values: []mms.Value{mms.NewBool(true)},
	})
	r.attacker.SendFrame(netem.Frame{
		Dst: netem.GooseMAC(0x0001), Src: r.attacker.MAC(),
		EtherType: netem.EtherTypeGOOSE, Payload: replay,
	})
	time.Sleep(20 * time.Millisecond)
	alerts := r.sensor.AlertsOf(AlertGooseAnomaly)
	if len(alerts) == 0 {
		t.Fatal("GOOSE replay undetected")
	}
	if alerts[0].Source != r.attacker.MAC().String() {
		t.Errorf("source = %s", alerts[0].Source)
	}
}

func TestSensorCountsFrames(t *testing.T) {
	r := newRig(t)
	if _, err := r.client.ResolveARP(r.iedHost.IP(), time.Second); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if r.sensor.Frames() == 0 {
		t.Error("sensor saw no frames")
	}
}

func TestContainsMMSWriteParsing(t *testing.T) {
	// Not a TPKT frame.
	if containsMMSWrite([]byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06}) {
		t.Error("garbage classified as write")
	}
	// Short buffer.
	if containsMMSWrite([]byte{0x03}) {
		t.Error("short buffer classified as write")
	}
}
