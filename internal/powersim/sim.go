// Package powersim runs the stepped power-system simulation of the cyber range.
//
// The paper couples a one-shot steady-state solver to the cyber side by
// re-running it periodically (e.g. every 100 ms) with the breaker states
// written by virtual IEDs and the load values of a time-series profile
// (§III-B, §III-C). This package implements that loop: a Simulator owns a
// powergrid.Network, applies scheduled scenario events and breaker commands
// read from the kv bus, solves the flow (warm-started from the previous
// step), and publishes measurements back onto the bus for the IEDs to read.
package powersim

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/kvbus"
	"repro/internal/powerflow"
	"repro/internal/powergrid"
)

// EventKind classifies scenario events (Power System Extra Config XML).
type EventKind int

// Scenario event kinds. SetLoadScale multiplies a load's nominal power;
// SetLoadP / SetGenP / SetSGenP override absolute MW; SetSwitch opens or
// closes a breaker; SetLineService forces a line outage or repair.
const (
	SetLoadScale EventKind = iota + 1
	SetLoadP
	SetGenP
	SetSGenP
	SetSwitch
	SetLineService
)

// Event is one timed scenario action.
type Event struct {
	At      time.Duration // simulation-time offset
	Kind    EventKind
	Element string
	Value   float64 // for SetSwitch / SetLineService: >0.5 means closed/in-service
}

// ErrUnknownElement is returned when an event references a missing element.
var ErrUnknownElement = errors.New("powersim: unknown element")

// Options configures a Simulator.
type Options struct {
	Interval       time.Duration // solve period; default 100 ms (paper §III-C)
	EnforceQLimits bool
	// DisableWarmStart forces a flat start every step (used by the ablation
	// bench; the paper's loop implicitly warm-starts by reusing the model).
	DisableWarmStart bool
}

// Simulator steps a network and mirrors state onto a kv bus.
type Simulator struct {
	mu       sync.Mutex
	net      *powergrid.Network
	bus      *kvbus.Bus
	opts     Options
	events   []Event
	applied  int
	solver   *powerflow.Solver
	last     *powerflow.Result
	simTime  time.Duration
	steps    uint64 // successfully solved steps
	failures uint64 // steps whose solve errored (e.g. divergence)
	solveNS  int64  // cumulative successful-solve time, for the scalability experiment
}

// New clones the network and returns a ready simulator. The bus may be shared
// with virtual IEDs, the PLC layer and the SCADA HMI. The simulator owns a
// powerflow.Solver, so consecutive steps with unchanged breaker/switch
// topology stay on the solver's cached warm path.
func New(net *powergrid.Network, bus *kvbus.Bus, opts Options) *Simulator {
	return NewWithSolver(net, bus, opts, nil)
}

// NewWithSolver is New with a caller-supplied solver (nil falls back to a
// fresh one). The compiled-range fork path passes a powerflow.Solver.Fork of
// a prewarmed template here, so the simulator's first solve reuses the
// model's cached topology and symbolic factorization instead of rebuilding
// them. The solver must be private to this simulator (a Fork, not the shared
// template itself): Step serialises on the simulator mutex, not across
// simulators.
func NewWithSolver(net *powergrid.Network, bus *kvbus.Bus, opts Options, solver *powerflow.Solver) *Simulator {
	if opts.Interval <= 0 {
		opts.Interval = 100 * time.Millisecond
	}
	if solver == nil {
		solver = powerflow.NewSolver()
	}
	return &Simulator{net: net.Clone(), bus: bus, opts: opts, solver: solver}
}

// Prewarm runs one power-flow solve without advancing simulation time,
// applying events or publishing to the bus: its only effect is populating the
// solver's topology cache (and symbolic factorizations) for the current grid
// structure. A template simulator prewarms once per model so that every
// forked solver starts on the cache-hit path. Solve errors are returned but
// leave the simulator unchanged; the first real Step will surface the same
// condition.
func (s *Simulator) Prewarm() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.solver.Solve(s.net, powerflow.Options{EnforceQLimits: s.opts.EnforceQLimits})
	return err
}

// ForkSolver returns an isolated powerflow.Solver sharing this simulator's
// cached read-only topology artifacts (see powerflow.Solver.Fork).
func (s *Simulator) ForkSolver() *powerflow.Solver {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.solver.Fork()
}

// Network returns the simulator's (live) network model. Callers must not
// mutate it concurrently with Step; tests use it for assertions.
func (s *Simulator) Network() *powergrid.Network {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.net
}

// Schedule adds scenario events; they are kept sorted by activation time.
func (s *Simulator) Schedule(events ...Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, events...)
	sort.SliceStable(s.events, func(i, j int) bool { return s.events[i].At < s.events[j].At })
	s.applied = 0
	// Events already in the past relative to simTime re-apply on next step;
	// keep a stable cursor by re-scanning from zero.
}

// SimTime returns the current simulation time.
func (s *Simulator) SimTime() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.simTime
}

// LastResult returns the most recent solution (nil before the first step).
func (s *Simulator) LastResult() *powerflow.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// Stats reports the number of successfully solved steps and their mean solve
// time. Failed solves (divergence under a scenario) are excluded so the mean
// measures the healthy 100 ms loop, not iterations-to-divergence; they are
// counted by Failures.
func (s *Simulator) Stats() (steps uint64, meanSolve time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.steps == 0 {
		return 0, 0
	}
	return s.steps, time.Duration(s.solveNS / int64(s.steps))
}

// Failures reports the number of steps whose power-flow solve errored.
func (s *Simulator) Failures() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failures
}

// SolverCacheStats reports the power-flow topology cache's hit/miss counts:
// hits are steps that reused the cached island assignment, Ybus and symbolic
// factorization; misses are rebuilds after a topology change.
func (s *Simulator) SolverCacheStats() (hits, misses uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.solver.CacheStats()
}

// Apply applies one scenario event to the live network model immediately,
// outside the scheduled-event queue. The deterministic scenario scheduler
// uses it for condition-triggered actions whose activation time cannot be
// known in advance; the change is picked up by the next Step's solve. The
// event's At field is ignored.
func (s *Simulator) Apply(ev Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applyEvent(ev)
}

// Step advances simulation time by one interval and solves.
func (s *Simulator) Step() (*powerflow.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.simTime += s.opts.Interval
	return s.stepLocked(s.simTime)
}

// StepAt solves at an explicit simulation time (monotonically increasing).
func (s *Simulator) StepAt(t time.Duration) (*powerflow.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t > s.simTime {
		s.simTime = t
	}
	return s.stepLocked(s.simTime)
}

func (s *Simulator) stepLocked(now time.Duration) (*powerflow.Result, error) {
	if err := s.applyEventsLocked(now); err != nil {
		return nil, err
	}
	s.applyCommandsLocked()

	opts := powerflow.Options{EnforceQLimits: s.opts.EnforceQLimits}
	if !s.opts.DisableWarmStart {
		opts.WarmStart = s.last
	}
	start := time.Now()
	res, err := s.solver.Solve(s.net, opts)
	if err != nil {
		s.failures++
		return res, fmt.Errorf("powersim: step at %v: %w", now, err)
	}
	s.solveNS += time.Since(start).Nanoseconds()
	s.steps++
	s.last = res
	s.publishLocked(res)
	return res, nil
}

func (s *Simulator) applyEventsLocked(now time.Duration) error {
	for s.applied < len(s.events) && s.events[s.applied].At <= now {
		ev := s.events[s.applied]
		s.applied++
		if err := s.applyEvent(ev); err != nil {
			return err
		}
	}
	return nil
}

func (s *Simulator) applyEvent(ev Event) error {
	switch ev.Kind {
	case SetLoadScale:
		l := s.net.FindLoad(ev.Element)
		if l == nil {
			return fmt.Errorf("%w: load %q", ErrUnknownElement, ev.Element)
		}
		// SetScaling keeps an explicit 0 meaning "no load" (Pandapower
		// semantics) instead of decaying to the 1.0 unset default.
		l.SetScaling(ev.Value)
	case SetLoadP:
		l := s.net.FindLoad(ev.Element)
		if l == nil {
			return fmt.Errorf("%w: load %q", ErrUnknownElement, ev.Element)
		}
		l.PMW = ev.Value
	case SetGenP:
		g := s.net.FindGen(ev.Element)
		if g == nil {
			return fmt.Errorf("%w: gen %q", ErrUnknownElement, ev.Element)
		}
		g.PMW = ev.Value
	case SetSGenP:
		g := s.net.FindSGen(ev.Element)
		if g == nil {
			return fmt.Errorf("%w: sgen %q", ErrUnknownElement, ev.Element)
		}
		g.PMW = ev.Value
	case SetSwitch:
		sw := s.net.FindSwitch(ev.Element)
		if sw == nil {
			return fmt.Errorf("%w: switch %q", ErrUnknownElement, ev.Element)
		}
		sw.Closed = ev.Value > 0.5
	case SetLineService:
		l := s.net.FindLine(ev.Element)
		if l == nil {
			return fmt.Errorf("%w: line %q", ErrUnknownElement, ev.Element)
		}
		l.InService = ev.Value > 0.5
	default:
		return fmt.Errorf("powersim: unknown event kind %d", ev.Kind)
	}
	return nil
}

// applyCommandsLocked reads breaker commands written by IEDs from the bus.
// The command key is the IED-side "actuator" half of the coupling cache.
func (s *Simulator) applyCommandsLocked() {
	for i := range s.net.Switches {
		sw := &s.net.Switches[i]
		key := kvbus.BreakerCmdKey(s.net.Name, sw.Name)
		if v, ok := s.bus.Get(key); ok {
			if want, err := v.Bool(); err == nil {
				sw.Closed = want
			}
		}
	}
}

// publishLocked mirrors the solution onto the bus under the well-known keys.
func (s *Simulator) publishLocked(res *powerflow.Result) {
	name := s.net.Name
	for _, b := range s.net.Buses {
		br := res.Buses[b.Name]
		s.bus.SetFloat(kvbus.BusVoltageKey(name, b.Name), br.VmPU)
		s.bus.SetFloat(kvbus.BusAngleKey(name, b.Name), br.VaDeg)
	}
	for _, l := range s.net.Lines {
		lr := res.Lines[l.Name]
		s.bus.SetFloat(kvbus.LineCurrentKey(name, l.Name), lr.IFromKA)
		s.bus.SetFloat(kvbus.LinePKey(name, l.Name), lr.PFromMW)
		s.bus.SetFloat(kvbus.LineQKey(name, l.Name), lr.QFromMVAr)
	}
	for _, sw := range s.net.Switches {
		s.bus.SetBool(kvbus.BreakerStatusKey(name, sw.Name), sw.Closed)
	}
	for i := range s.net.Loads {
		l := &s.net.Loads[i]
		eff := 0.0
		if l.InService {
			if br, ok := res.Buses[l.Bus]; ok && br.Energized {
				eff = l.PMW * l.EffectiveScaling()
			}
		}
		s.bus.SetFloat(kvbus.LoadPKey(name, l.Name), eff)
	}
	for _, g := range s.net.Gens {
		p := 0.0
		if g.InService {
			p = g.PMW
		}
		s.bus.SetFloat(kvbus.GenPKey(name, g.Name), p)
	}
	s.bus.SetInt("pw/"+name+"/meta/steps", int64(s.steps))
	s.bus.SetInt("pw/"+name+"/meta/islands", int64(res.Islands))
}

// Run steps the simulation in real time until ctx is cancelled. Each tick
// advances simulation time by the configured interval. Solve errors (e.g. a
// scenario-induced divergence) are delivered to onErr if non-nil and the loop
// continues, matching the paper's interactive, operator-in-the-loop usage.
func (s *Simulator) Run(ctx context.Context, onErr func(error)) {
	ticker := time.NewTicker(s.opts.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			if _, err := s.Step(); err != nil && onErr != nil {
				onErr(err)
			}
		}
	}
}
