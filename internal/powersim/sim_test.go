package powersim

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/kvbus"
	"repro/internal/powergrid"
)

func testNet() *powergrid.Network {
	n := powergrid.New("sub1")
	n.AddBus("A", 110, "sub1")
	n.AddBus("B", 110, "sub1")
	n.Externals = append(n.Externals, powergrid.ExternalGrid{Name: "g", Bus: "A", VmPU: 1.0})
	n.Lines = append(n.Lines, powergrid.Line{
		Name: "L1", FromBus: "A", ToBus: "B", LengthKM: 10,
		ROhmPerKM: 0.06, XOhmPerKM: 0.4, MaxIKA: 0.5, InService: true,
	})
	n.Loads = append(n.Loads, powergrid.Load{Name: "LD1", Bus: "B", PMW: 20, QMVAr: 5, Scaling: 1, InService: true})
	n.Switches = append(n.Switches, powergrid.Switch{Name: "CB1", Bus: "A", Element: "L1", Kind: powergrid.SwitchLine, Closed: true})
	return n
}

func TestStepPublishesMeasurements(t *testing.T) {
	bus := kvbus.New()
	sim := New(testNet(), bus, Options{})
	res, err := sim.Step()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("not converged")
	}
	vm := bus.GetFloat(kvbus.BusVoltageKey("sub1", "B"), -1)
	if vm <= 0.9 || vm >= 1.0 {
		t.Errorf("published vm = %v", vm)
	}
	if i := bus.GetFloat(kvbus.LineCurrentKey("sub1", "L1"), -1); i <= 0 {
		t.Errorf("published current = %v", i)
	}
	if !bus.GetBool(kvbus.BreakerStatusKey("sub1", "CB1"), false) {
		t.Error("breaker status not published as closed")
	}
	if p := bus.GetFloat(kvbus.LoadPKey("sub1", "LD1"), -1); p != 20 {
		t.Errorf("load P = %v, want 20", p)
	}
}

func TestBreakerCommandTakesEffect(t *testing.T) {
	bus := kvbus.New()
	sim := New(testNet(), bus, Options{})
	if _, err := sim.Step(); err != nil {
		t.Fatal(err)
	}
	// An IED writes an open command; next step must de-energise bus B.
	bus.SetBool(kvbus.BreakerCmdKey("sub1", "CB1"), false)
	res, err := sim.Step()
	if err != nil {
		t.Fatal(err)
	}
	if res.Buses["B"].Energized {
		t.Error("bus B still energized after breaker open command")
	}
	if bus.GetBool(kvbus.BreakerStatusKey("sub1", "CB1"), true) {
		t.Error("breaker status still closed on bus")
	}
	if vm := bus.GetFloat(kvbus.BusVoltageKey("sub1", "B"), -1); vm != 0 {
		t.Errorf("dead bus vm = %v, want 0", vm)
	}
	// Close it again: service restored.
	bus.SetBool(kvbus.BreakerCmdKey("sub1", "CB1"), true)
	res, err = sim.Step()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Buses["B"].Energized {
		t.Error("bus B not restored after close command")
	}
}

func TestScheduledLoadProfile(t *testing.T) {
	bus := kvbus.New()
	sim := New(testNet(), bus, Options{Interval: 100 * time.Millisecond})
	sim.Schedule(
		Event{At: 0, Kind: SetLoadScale, Element: "LD1", Value: 0.5},
		Event{At: 300 * time.Millisecond, Kind: SetLoadScale, Element: "LD1", Value: 1.5},
	)
	r1, err := sim.Step() // t=100ms: scale 0.5 active
	if err != nil {
		t.Fatal(err)
	}
	if p := bus.GetFloat(kvbus.LoadPKey("sub1", "LD1"), -1); p != 10 {
		t.Errorf("scaled load = %v, want 10", p)
	}
	sim.Step() // t=200
	sim.Step() // t=300: scale 1.5 applies
	r4, err := sim.Step()
	if err != nil {
		t.Fatal(err)
	}
	if p := bus.GetFloat(kvbus.LoadPKey("sub1", "LD1"), -1); p != 30 {
		t.Errorf("scaled load = %v, want 30", p)
	}
	// Heavier load ⇒ lower voltage.
	if r4.Buses["B"].VmPU >= r1.Buses["B"].VmPU {
		t.Error("voltage did not drop with higher load")
	}
}

func TestContingencyEvents(t *testing.T) {
	bus := kvbus.New()
	sim := New(testNet(), bus, Options{Interval: time.Second})
	sim.Schedule(Event{At: 2 * time.Second, Kind: SetLineService, Element: "L1", Value: 0})
	r, err := sim.Step() // t=1s
	if err != nil {
		t.Fatal(err)
	}
	if !r.Buses["B"].Energized {
		t.Fatal("B should be energized before contingency")
	}
	r, err = sim.Step() // t=2s: line outage
	if err != nil {
		t.Fatal(err)
	}
	if r.Buses["B"].Energized {
		t.Error("B energized after line loss contingency")
	}
}

func TestEventErrors(t *testing.T) {
	tests := []struct {
		name string
		ev   Event
	}{
		{"unknown load", Event{Kind: SetLoadScale, Element: "zz", Value: 1}},
		{"unknown loadP", Event{Kind: SetLoadP, Element: "zz", Value: 1}},
		{"unknown gen", Event{Kind: SetGenP, Element: "zz", Value: 1}},
		{"unknown sgen", Event{Kind: SetSGenP, Element: "zz", Value: 1}},
		{"unknown switch", Event{Kind: SetSwitch, Element: "zz", Value: 1}},
		{"unknown line", Event{Kind: SetLineService, Element: "zz", Value: 1}},
		{"bad kind", Event{Kind: 0, Element: "LD1"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			sim := New(testNet(), kvbus.New(), Options{})
			sim.Schedule(tt.ev)
			if _, err := sim.Step(); !errors.Is(err, ErrUnknownElement) && tt.ev.Kind != 0 {
				t.Errorf("Step() err = %v, want ErrUnknownElement", err)
			} else if tt.ev.Kind == 0 && err == nil {
				t.Error("Step() with bad kind succeeded")
			}
		})
	}
}

func TestSimTimeAndStats(t *testing.T) {
	sim := New(testNet(), kvbus.New(), Options{Interval: 50 * time.Millisecond})
	for i := 0; i < 4; i++ {
		if _, err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := sim.SimTime(); got != 200*time.Millisecond {
		t.Errorf("SimTime = %v, want 200ms", got)
	}
	steps, mean := sim.Stats()
	if steps != 4 {
		t.Errorf("steps = %d, want 4", steps)
	}
	if mean <= 0 {
		t.Errorf("mean solve = %v", mean)
	}
	if sim.LastResult() == nil {
		t.Error("LastResult nil after steps")
	}
}

func TestStatsExcludeFailedSolves(t *testing.T) {
	bus := kvbus.New()
	sim := New(testNet(), bus, Options{Interval: 100 * time.Millisecond})
	for i := 0; i < 3; i++ {
		if _, err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	stepsBefore, meanBefore := sim.Stats()
	if stepsBefore != 3 {
		t.Fatalf("steps = %d, want 3", stepsBefore)
	}
	// Force a non-convergence: an impossible load on the weak line. The NR
	// loop burns all its iterations before giving up, which must not be
	// averaged into the healthy-step solve time.
	sim.Schedule(Event{At: 300 * time.Millisecond, Kind: SetLoadP, Element: "LD1", Value: 1e7})
	if _, err := sim.Step(); err == nil {
		t.Fatal("expected solve failure")
	}
	steps, mean := sim.Stats()
	if steps != stepsBefore {
		t.Errorf("successful steps = %d after failure, want still %d", steps, stepsBefore)
	}
	if mean != meanBefore {
		t.Errorf("mean solve changed from %v to %v on a failed step", meanBefore, mean)
	}
	if f := sim.Failures(); f != 1 {
		t.Errorf("failures = %d, want 1", f)
	}
	// Recovery: restore the load, stepping resumes counting.
	sim.Schedule(Event{At: 400 * time.Millisecond, Kind: SetLoadP, Element: "LD1", Value: 20})
	if _, err := sim.Step(); err != nil {
		t.Fatal(err)
	}
	if steps, _ := sim.Stats(); steps != stepsBefore+1 {
		t.Errorf("steps = %d after recovery, want %d", steps, stepsBefore+1)
	}
}

func TestLoadScaleZeroEventRemovesLoad(t *testing.T) {
	bus := kvbus.New()
	sim := New(testNet(), bus, Options{Interval: 100 * time.Millisecond})
	sim.Schedule(Event{At: 0, Kind: SetLoadScale, Element: "LD1", Value: 0})
	res, err := sim.Step()
	if err != nil {
		t.Fatal(err)
	}
	// Pandapower semantics: scaling=0 means no load, not "restore nominal".
	if p := bus.GetFloat(kvbus.LoadPKey("sub1", "LD1"), -1); p != 0 {
		t.Errorf("published load P = %v, want 0 for scaling=0", p)
	}
	if got := res.TotalLoadMW(sim.Network()); got != 0 {
		t.Errorf("TotalLoadMW = %v, want 0", got)
	}
	if vm := res.Buses["B"].VmPU; vm < 0.999 {
		t.Errorf("unloaded feeder vm = %v, want ~1.0", vm)
	}
}

func TestWarmStepsStayOnSolverCache(t *testing.T) {
	bus := kvbus.New()
	sim := New(testNet(), bus, Options{Interval: 100 * time.Millisecond})
	sim.Schedule(
		Event{At: 100 * time.Millisecond, Kind: SetLoadScale, Element: "LD1", Value: 0.8},
		Event{At: 200 * time.Millisecond, Kind: SetLoadScale, Element: "LD1", Value: 1.2},
		Event{At: 400 * time.Millisecond, Kind: SetSwitch, Element: "CB1", Value: 0},
	)
	for i := 0; i < 6; i++ {
		if _, err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := sim.SolverCacheStats()
	// Load-profile churn stays warm; only the first solve and the breaker
	// trip rebuild the topology.
	if misses != 2 {
		t.Errorf("cache misses = %d, want 2 (initial build + breaker trip)", misses)
	}
	if hits != 4 {
		t.Errorf("cache hits = %d, want 4", hits)
	}
}

func TestStepAtMonotonic(t *testing.T) {
	sim := New(testNet(), kvbus.New(), Options{})
	if _, err := sim.StepAt(time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.StepAt(500 * time.Millisecond); err != nil { // not rewound
		t.Fatal(err)
	}
	if got := sim.SimTime(); got != time.Second {
		t.Errorf("SimTime = %v, want 1s (no rewind)", got)
	}
}

func TestRunRealTimeLoop(t *testing.T) {
	bus := kvbus.New()
	sim := New(testNet(), bus, Options{Interval: 5 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		sim.Run(ctx, nil)
	}()
	time.Sleep(60 * time.Millisecond)
	cancel()
	<-done
	steps, _ := sim.Stats()
	if steps < 3 {
		t.Errorf("real-time loop made %d steps, want >= 3", steps)
	}
	if v, ok := bus.Get("pw/sub1/meta/steps"); !ok {
		t.Error("meta steps not published")
	} else if iv, _ := v.Int(); iv == 0 {
		t.Error("meta steps is zero")
	}
}

func TestRunDeliversSolveErrors(t *testing.T) {
	sim := New(testNet(), kvbus.New(), Options{Interval: time.Millisecond})
	sim.Schedule(Event{At: 0, Kind: SetLoadScale, Element: "nope", Value: 1})
	errCh := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		sim.Run(ctx, func(err error) {
			select {
			case errCh <- err:
			default:
			}
		})
	}()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrUnknownElement) {
			t.Errorf("err = %v", err)
		}
	case <-time.After(time.Second):
		t.Error("no error delivered")
	}
	cancel()
	<-done
}

func TestSimulatorDoesNotMutateInput(t *testing.T) {
	n := testNet()
	bus := kvbus.New()
	sim := New(n, bus, Options{})
	bus.SetBool(kvbus.BreakerCmdKey("sub1", "CB1"), false)
	if _, err := sim.Step(); err != nil {
		t.Fatal(err)
	}
	if !n.FindSwitch("CB1").Closed {
		t.Error("input network mutated by simulator")
	}
}
