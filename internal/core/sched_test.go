package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/epic"
	"repro/internal/scada"
	"repro/internal/sgmlconf"
)

// scaleModelSet builds the parametric multi-substation model with an
// overload scenario that deterministically drives feeder PTOC trips (and the
// follow-on PTUV pickups) mid-run, so the determinism diff covers IED bus
// writes, not just a quiet range.
func scaleModelSet(t *testing.T, nSubs, feeders int) *ModelSet {
	t.Helper()
	sm, err := epic.NewScaleModel(nSubs, feeders)
	if err != nil {
		t.Fatal(err)
	}
	// Overload the first substation's first feeder and the last substation's
	// last feeder: 0.2 MW * 60 ≈ 0.31 kA at 22 kV, above the 0.25 kA PTOC
	// threshold.
	sm.PowerConfig.Steps = []sgmlconf.ProfileStep{
		{AtMS: 500, Kind: "loadScale", Element: "S1_LD1", Value: 60},
		{AtMS: 900, Kind: "loadScale", Element: fmt.Sprintf("S%d_LD%d", nSubs, feeders), Value: 60},
	}
	return &ModelSet{
		Name:        fmt.Sprintf("scale-%dx%d", nSubs, feeders),
		SCDs:        sm.SCDs,
		SED:         sm.SED,
		IEDConfig:   sm.IEDConfigs,
		PowerConfig: sm.PowerConfig,
		ShardHints:  sm.ShardHints,
	}
}

// runSteps compiles ms, starts the range step-driven, and advances it N
// intervals from a fixed base instant. step selects the engine under test.
func runSteps(t *testing.T, ms *ModelSet, steps int, step func(*CyberRange, time.Time) error, opts ...CompileOption) *CyberRange {
	t.Helper()
	r, err := Compile(ms, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Stop)
	if err := r.Start(context.Background(), false); err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1700000000, 0)
	for i := 0; i < steps; i++ {
		now = now.Add(r.Interval())
		if err := step(r, now); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	return r
}

// diffRanges asserts the two ranges ended in identical observable state:
// every kv bus key (the coupling cache the paper's MySQL plays), per-IED
// trip counts, and — when present — every HMI point's value and quality.
func diffRanges(t *testing.T, seq, par *CyberRange) {
	t.Helper()
	a, b := seq.Bus.Snapshot(), par.Bus.Snapshot()
	if len(a) != len(b) {
		t.Errorf("kvbus key count: sequential %d, parallel %d", len(a), len(b))
	}
	for k, va := range a {
		if vb, ok := b[k]; !ok {
			t.Errorf("kvbus key %q missing from parallel run", k)
		} else if va != vb {
			t.Errorf("kvbus %q: sequential %q, parallel %q", k, va, vb)
		}
		sv, _ := seq.Bus.Get(k)
		pv, _ := par.Bus.Get(k)
		if sv.Version != pv.Version {
			t.Errorf("kvbus %q version: sequential %d, parallel %d", k, sv.Version, pv.Version)
		}
	}
	for k := range b {
		if _, ok := a[k]; !ok {
			t.Errorf("kvbus key %q only in parallel run", k)
		}
	}
	for name, dev := range seq.IEDs {
		if got, want := par.IEDs[name].TripCount(), dev.TripCount(); got != want {
			t.Errorf("IED %s trips: sequential %d, parallel %d", name, want, got)
		}
	}
	if seq.HMI != nil {
		pa, pb := seq.HMI.Points(), par.HMI.Points()
		if len(pa) != len(pb) {
			t.Fatalf("HMI points: sequential %d, parallel %d", len(pa), len(pb))
		}
		for i := range pa {
			if pa[i].XID != pb[i].XID || pa[i].Value != pb[i].Value ||
				pa[i].Binary != pb[i].Binary || pa[i].Quality != pb[i].Quality {
				t.Errorf("HMI point %s: sequential {v=%v b=%v q=%v}, parallel %s {v=%v b=%v q=%v}",
					pa[i].XID, pa[i].Value, pa[i].Binary, pa[i].Quality,
					pb[i].XID, pb[i].Value, pb[i].Binary, pb[i].Quality)
			}
		}
	}
}

func testDeterminism(t *testing.T, ms1, ms2 *ModelSet, steps int, opts ...CompileOption) {
	seq := runSteps(t, ms1, steps, (*CyberRange).StepAllSequential, WithWorkers(1))
	par := runSteps(t, ms2, steps, (*CyberRange).StepAll, opts...)
	diffRanges(t, seq, par)
	// The scenario must actually have fired protection, or the diff proved
	// nothing about IED write ordering.
	trips := 0
	for _, dev := range par.IEDs {
		trips += dev.TripCount()
	}
	if trips == 0 {
		t.Error("scenario produced no trips; determinism diff is vacuous")
	}
}

func TestParallelStepDeterminism3x4(t *testing.T) {
	testDeterminism(t, scaleModelSet(t, 3, 4), scaleModelSet(t, 3, 4), 100)
}

func TestParallelStepDeterminism5x20(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: 105-IED determinism soak")
	}
	testDeterminism(t, scaleModelSet(t, 5, 20), scaleModelSet(t, 5, 20), 100)
}

func TestParallelStepDeterminismEPIC(t *testing.T) {
	// The EPIC model exercises the PLC scan and HMI poll phases on top of
	// the IED pass; the HMI point table must match the sequential run too.
	// A PV over-export event trips MIED1 and TIED1 mid-run so the diff also
	// covers breaker commands flowing through the commit phase.
	overExport := func() *ModelSet {
		ms := epicModelSet(t)
		ms.PowerConfig.Steps = append(ms.PowerConfig.Steps,
			sgmlconf.ProfileStep{AtMS: 2000, Kind: "sgenP", Element: "PV1", Value: 30})
		return ms
	}
	testDeterminism(t, overExport(), overExport(), 50)
}

func TestParallelStepWorkerEdgeCases(t *testing.T) {
	t.Run("workers=1", func(t *testing.T) {
		seq := runSteps(t, scaleModelSet(t, 3, 4), 40, (*CyberRange).StepAllSequential, WithWorkers(1))
		par := runSteps(t, scaleModelSet(t, 3, 4), 40, (*CyberRange).StepAll, WithWorkers(1))
		if par.Workers() != 1 {
			t.Fatalf("workers = %d", par.Workers())
		}
		diffRanges(t, seq, par)
	})
	t.Run("workers>shards", func(t *testing.T) {
		seq := runSteps(t, scaleModelSet(t, 3, 4), 40, (*CyberRange).StepAllSequential, WithWorkers(1))
		par := runSteps(t, scaleModelSet(t, 3, 4), 40, (*CyberRange).StepAll, WithWorkers(64))
		if got := len(par.Shards()); got != 3 {
			t.Fatalf("shards = %d, want 3", got)
		}
		diffRanges(t, seq, par)
	})
	t.Run("workers=0 clamps to 1", func(t *testing.T) {
		r, err := Compile(scaleModelSet(t, 1, 1), WithWorkers(0))
		if err != nil {
			t.Fatal(err)
		}
		defer r.Stop()
		if r.Workers() != 1 {
			t.Errorf("workers = %d, want 1", r.Workers())
		}
	})
}

func TestShardPartition(t *testing.T) {
	t.Run("scale model shards by substation", func(t *testing.T) {
		r, err := Compile(scaleModelSet(t, 3, 4))
		if err != nil {
			t.Fatal(err)
		}
		defer r.Stop()
		shards := r.Shards()
		if len(shards) != 3 {
			t.Fatalf("shards = %d, want 3", len(shards))
		}
		for i, want := range []string{"S1", "S2", "S3"} {
			if shards[i].Name != want {
				t.Errorf("shard %d = %q, want %q", i, shards[i].Name, want)
			}
			if len(shards[i].IEDs) != 5 { // 4 feeders + 1 gateway
				t.Errorf("shard %s IEDs = %d, want 5", shards[i].Name, len(shards[i].IEDs))
			}
		}
	})
	t.Run("EPIC is a single shard with its PLC", func(t *testing.T) {
		r := compiledEPIC(t)
		shards := r.Shards()
		if len(shards) != 1 {
			t.Fatalf("shards = %v", shards)
		}
		if len(shards[0].IEDs) != 8 || len(shards[0].PLCs) != 1 {
			t.Errorf("shard = %+v, want 8 IEDs + 1 PLC", shards[0])
		}
	})
	t.Run("hints override merge attribution", func(t *testing.T) {
		ms := scaleModelSet(t, 2, 2)
		ms.ShardHints = map[string]string{}
		for _, sub := range []string{"S1", "S2"} {
			ms.ShardHints[sub+"_GW"] = "gateways"
			for f := 1; f <= 2; f++ {
				ms.ShardHints[fmt.Sprintf("%s_IED%d", sub, f)] = "feeders"
			}
		}
		r, err := Compile(ms)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Stop()
		shards := r.Shards()
		if len(shards) != 2 || shards[0].Name != "feeders" || shards[1].Name != "gateways" {
			t.Fatalf("shards = %+v", shards)
		}
		if len(shards[0].IEDs) != 4 || len(shards[1].IEDs) != 2 {
			t.Errorf("shard sizes = %d/%d, want 4/2", len(shards[0].IEDs), len(shards[1].IEDs))
		}
	})
}

// TestParallelStepUnderFault ensures the parallel engine keeps the failure
// semantics the sequential path had: a dead IED must not wedge or panic the
// two-phase step, and the HMI marks the source comm-fail.
func TestParallelStepUnderFault(t *testing.T) {
	r := compiledEPIC(t)
	if err := r.Start(context.Background(), false); err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1700000000, 0)
	step := func(n int) {
		for i := 0; i < n; i++ {
			now = now.Add(r.Interval())
			_ = r.StepAll(now)
		}
	}
	step(2)
	r.IEDs["TIED1"].Stop()
	step(3)
	r.HMI.PollOnce()
	r.HMI.PollOnce()
	dead, err := r.HMI.Point("DP_TieCurrent")
	if err != nil {
		t.Fatal(err)
	}
	if dead.Quality != scada.QualityCommFail {
		t.Errorf("dead IED point quality = %v, want COMM_FAIL", dead.Quality)
	}
	if res := r.Sim.LastResult(); res == nil || !res.Converged {
		t.Error("simulation broke after device death under parallel stepping")
	}
}
