package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/netem"
)

func TestCampaignValidation(t *testing.T) {
	sc := &Scenario{Name: "s", Steps: 4}
	ms := &ModelSet{Name: "m"}
	cases := []struct {
		name string
		c    *Campaign
		want string
	}{
		{"no variants", &Campaign{Name: "c"}, "no variants"},
		{"no scenario", &Campaign{Name: "c", Model: ms,
			Variants: []CampaignVariant{{Name: "v"}}}, "no scenario"},
		{"no model anywhere", &Campaign{Name: "c",
			Variants: []CampaignVariant{{Name: "v", Scenario: sc}}}, "no model"},
		{"duplicate variants", &Campaign{Name: "c", Model: ms, Variants: []CampaignVariant{
			{Name: "v", Scenario: sc}, {Name: "v", Scenario: sc}}}, "duplicate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := RunCampaign(context.Background(), tc.c)
			if !errors.Is(err, ErrCampaign) {
				t.Fatalf("err = %v, want ErrCampaign", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestCampaignDefaults(t *testing.T) {
	// Unnamed variants get positional names; empty seed lists fall back to
	// the scenario's own seed; repeat defaults to 1.
	c := &Campaign{Model: &ModelSet{Name: "m"}, Variants: []CampaignVariant{
		{Scenario: &Scenario{Name: "s", Seed: 7}},
		{Name: "second", Scenario: &Scenario{Name: "s"}, Repeat: 3},
	}}
	variants, err := c.normalizedVariants()
	if err != nil {
		t.Fatal(err)
	}
	if variants[0].Name != "variant-1" || variants[1].Name != "second" {
		t.Errorf("names = %q, %q", variants[0].Name, variants[1].Name)
	}
	if len(variants[0].Seeds) != 1 || variants[0].Seeds[0] != 7 {
		t.Errorf("seeds[0] = %v, want [7]", variants[0].Seeds)
	}
	if len(variants[1].Seeds) != 1 || variants[1].Seeds[0] != 1 {
		t.Errorf("seeds[1] = %v, want [1] (zero scenario seed)", variants[1].Seeds)
	}
	if variants[0].Repeat != 1 || variants[1].Repeat != 3 {
		t.Errorf("repeats = %d, %d", variants[0].Repeat, variants[1].Repeat)
	}
}

func TestCampaignQuantile(t *testing.T) {
	ms := func(v ...int) []time.Duration {
		out := make([]time.Duration, len(v))
		for i, x := range v {
			out[i] = time.Duration(x) * time.Millisecond
		}
		return out
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
	samples := ms(5, 1, 4, 2, 3)
	if got := quantile(samples, 0.5); got != 3*time.Millisecond {
		t.Errorf("p50 = %v, want 3ms", got)
	}
	if got := quantile(samples, 0.9); got != 5*time.Millisecond {
		t.Errorf("p90 = %v, want 5ms", got)
	}
	if got := quantile(samples, 1.0); got != 5*time.Millisecond {
		t.Errorf("max = %v, want 5ms", got)
	}
	if got := quantile(ms(8), 0.5); got != 8*time.Millisecond {
		t.Errorf("single-sample p50 = %v, want 8ms", got)
	}
}

func TestCampaignAggregateDeterminismMismatch(t *testing.T) {
	// aggregate must flag a (variant, seed) group whose attempts disagree,
	// and leave agreeing groups (and single-run groups) clean.
	mk := func(variant string, seed int64, attempt int, fp string) CampaignRun {
		return CampaignRun{
			Variant: variant, Seed: seed, Attempt: attempt,
			Fingerprint: fingerprintHash(fp), fingerprint: fp,
			Precision: 1, Recall: 1,
			Report: &RunReport{Precision: 1, Recall: 1},
		}
	}
	aborted := mk("w", 1, 2, "delta") // would diverge from w/1#1...
	aborted.Err = "run cancelled at step 3"
	failedEvent := mk("w", 1, 3, "alpha")
	failedEvent.Precision = 0.25 // must not pollute the scorecard mean
	failedEvent.EventErrors = []string{"fci: connection refused"}
	rep := &CampaignReport{Runs: []CampaignRun{
		mk("v", 1, 1, "alpha"),
		mk("v", 1, 2, "beta"), // diverges
		mk("v", 2, 1, "gamma"),
		mk("v", 2, 2, "gamma"),
		mk("w", 1, 1, "alpha"),
		aborted, // ...but aborted runs carry no determinism evidence
		failedEvent,
	}}
	rep.aggregate([]CampaignVariant{{Name: "v"}, {Name: "w"}})
	if len(rep.Determinism) != 1 {
		t.Fatalf("mismatches = %d, want 1", len(rep.Determinism))
	}
	m := rep.Determinism[0]
	if m.Variant != "v" || m.Seed != 1 || len(m.Fingerprints) != 2 {
		t.Errorf("mismatch = %+v", m)
	}
	if rep.Variants[0].DeterminismOK {
		t.Error("variant v reported deterministic")
	}
	// The aborted run's diverging fingerprint is not determinism evidence;
	// the deterministically-failed event's fingerprint is (and agrees).
	if !rep.Variants[1].DeterminismOK || rep.Variants[1].DeterminismGroups != 1 {
		t.Errorf("variant w summary = %+v", rep.Variants[1])
	}
	// The scorecard covers successful runs only: the failed-event run's
	// precision (0.25) must not drag variant w's mean below 1.
	if rep.Variants[1].PrecisionMean != 1 || rep.Variants[1].PrecisionMin != 1 {
		t.Errorf("variant w scorecard polluted by failed run: %+v", rep.Variants[1])
	}
	if rep.Variants[1].Failures != 2 {
		t.Errorf("variant w failures = %d, want 2", rep.Variants[1].Failures)
	}
	if rep.OK() {
		t.Error("report with mismatch reported OK")
	}
	if !strings.Contains(rep.String(), "MISMATCH") {
		t.Error("human summary does not surface the mismatch")
	}
}

// cancelSink cancels the campaign's context on the first delivered run and
// counts what reaches it — the streaming-sink view of a cancelled sweep.
type cancelSink struct {
	cancel context.CancelFunc
	mu     sync.Mutex
	puts   int
}

func (s *cancelSink) Put(run CampaignRun) error {
	if run.cancelled {
		panic("cancelled cell delivered to an external sink")
	}
	s.mu.Lock()
	s.puts++
	s.mu.Unlock()
	s.cancel()
	return nil
}

func TestCampaignCancellation(t *testing.T) {
	// Cancelling mid-sweep must stop the dispatcher promptly: the cells
	// never handed out are bulk-marked "cancelled before run" instead of
	// each being funnelled through a worker, and none of them reach sinks.
	ms := epicModelSet(t)
	sc := &Scenario{Name: "drill", Steps: 3}
	seeds := make([]int64, 24)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	c := &Campaign{Name: "cancel", Model: ms, Variants: []CampaignVariant{
		{Name: "only", Scenario: sc, Seeds: seeds},
	}}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sink := &cancelSink{cancel: cancel}
	rep, err := RunCampaign(ctx, c, WithWorkers(2), WithRunSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalRuns != len(seeds) {
		t.Fatalf("TotalRuns = %d, want %d", rep.TotalRuns, len(seeds))
	}
	cancelled := 0
	for i := range rep.Runs {
		if strings.Contains(rep.Runs[i].Err, "cancelled before run") {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Fatal("no cells marked cancelled")
	}
	// Prompt return: after the first completed run triggers cancel, only
	// the in-flight cells may still execute — the bulk of the sweep must
	// have been cancelled without ever reaching a worker or a sink.
	if sink.puts > 8 {
		t.Errorf("%d runs executed after cancellation; dispatcher did not stop promptly", sink.puts)
	}
	if sink.puts+cancelled != rep.TotalRuns {
		t.Errorf("executed (%d) + cancelled (%d) != total (%d): cancelled cells leaked to sinks or were lost",
			sink.puts, cancelled, rep.TotalRuns)
	}
	if rep.Failures != cancelled {
		t.Errorf("Failures = %d, want %d (the cancelled cells)", rep.Failures, cancelled)
	}
}

func TestCampaignCompileTimeOnFailure(t *testing.T) {
	// A failed provisioning step must still be attributed: the run records
	// the compile error AND what the attempt cost, under both the shared
	// compile-once root and the per-run-compile reference path.
	bad := &ModelSet{Name: "bad"} // no SCDs: Compile fails
	c := &Campaign{Name: "ct", Model: bad, Variants: []CampaignVariant{
		{Name: "only", Scenario: &Scenario{Name: "s", Steps: 1}, Seeds: []int64{1}},
	}}
	paths := map[string][]CampaignOption{
		"forked":          {WithWorkers(1)},
		"per-run-compile": {WithWorkers(1), WithPerRunCompile()},
	}
	for name, opts := range paths {
		t.Run(name, func(t *testing.T) {
			rep, err := RunCampaign(context.Background(), c, opts...)
			if err != nil {
				t.Fatal(err)
			}
			run := &rep.Runs[0]
			if !strings.Contains(run.Err, "compile:") {
				t.Fatalf("run.Err = %q, want a compile error", run.Err)
			}
			if run.CompileTime <= 0 {
				t.Errorf("CompileTime = %v on the failure path, want > 0", run.CompileTime)
			}
		})
	}
}

func TestCampaignResumeRequiresStore(t *testing.T) {
	c := &Campaign{Name: "r", Model: &ModelSet{Name: "m"}, Variants: []CampaignVariant{
		{Name: "v", Scenario: &Scenario{Name: "s", Steps: 1}},
	}}
	_, err := RunCampaign(context.Background(), c, WithResume())
	if !errors.Is(err, ErrCampaign) || !strings.Contains(err.Error(), "store") {
		t.Fatalf("err = %v, want ErrCampaign naming the missing store", err)
	}
}

func TestCampaignEventFailurePropagation(t *testing.T) {
	// A scenario event that fails at runtime (StopMITM with nothing mounted
	// passes validation — the attacker is declared — but errors on apply)
	// must surface as a failed run, never be buried in the report.
	ms := epicModelSet(t)
	sc := &Scenario{
		Name:  "broken",
		Steps: 3,
		Attackers: []AttackerSpec{
			{Name: "red", Switch: "sw-TransLAN", IP: netem.IPv4{10, 0, 1, 77}},
		},
		Events: []ScenarioEvent{
			{Name: "orphan-stop", Trigger: At(1), Action: StopMITM{Attacker: "red"}},
		},
	}
	c := &Campaign{Name: "c", Model: ms, Variants: []CampaignVariant{
		{Name: "only", Scenario: sc, Seeds: []int64{1}},
	}}
	rep, err := RunCampaign(context.Background(), c, WithCampaignWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 1 || rep.OK() {
		t.Fatalf("failures = %d, OK = %t; want 1, false", rep.Failures, rep.OK())
	}
	fails := rep.EventFailures()
	if len(fails) != 1 || !strings.Contains(fails[0], "orphan-stop") {
		t.Fatalf("event failures = %q", fails)
	}
	if !strings.Contains(rep.String(), "orphan-stop") {
		t.Error("human summary does not list the failed event")
	}
}
