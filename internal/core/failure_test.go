package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/scada"
	"repro/internal/sgmlconf"
)

// Failure injection: the compiled range must degrade gracefully under the
// faults a real testbed exhibits — lossy cables, link flaps, dead devices —
// because attack exercises routinely create exactly these conditions.

// linkOf returns the access link of a named host.
func linkOf(t *testing.T, r *CyberRange, host string) interface {
	SetUp(bool)
	SetLossRate(float64)
} {
	t.Helper()
	for _, l := range r.Net.Links() {
		devA, _, devB, _ := l.Endpoints()
		if devA == host || devB == host {
			return l
		}
	}
	t.Fatalf("no link for host %q", host)
	return nil
}

func TestRangeSurvivesLossyLinks(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: loss-rate soak with TCP-lite retransmissions")
	}
	r := compiledEPIC(t)
	if err := r.Start(context.Background(), false); err != nil {
		t.Fatal(err)
	}
	// 5% loss on the PLC's and TIED1's access links: TCP-lite must recover.
	linkOf(t, r, "CPLC").SetLossRate(0.05)
	linkOf(t, r, "TIED1").SetLossRate(0.05)
	now := time.Now()
	for i := 0; i < 6; i++ {
		now = now.Add(r.Interval())
		if err := r.StepAll(now); err != nil {
			t.Fatal(err)
		}
	}
	p, err := r.HMI.Point("DP_MainVoltage")
	if err != nil {
		t.Fatal(err)
	}
	if p.Quality != scada.QualityGood {
		t.Errorf("quality under loss = %v", p.Quality)
	}
	if p.Value < 0.9 || p.Value > 1.1 {
		t.Errorf("value under loss = %v", p.Value)
	}
	if r.Net.Dropped() == 0 {
		t.Error("loss rate produced no drops")
	}
}

func TestRangeSurvivesLinkFlap(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: dial/read timeouts through a dead link")
	}
	r := compiledEPIC(t)
	if err := r.Start(context.Background(), false); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	step := func(n int) {
		for i := 0; i < n; i++ {
			now = now.Add(r.Interval())
			_ = r.StepAll(now) // PLC scan errors are expected during the cut
		}
	}
	step(2)
	// Cut the CPLC's cable: the SCADA points sourced from it go comm-fail.
	link := linkOf(t, r, "CPLC")
	link.SetUp(false)
	for i := 0; i < 2; i++ {
		step(1)
		r.HMI.PollOnce()
	}
	p, _ := r.HMI.Point("DP_MainVoltage")
	if p.Quality != scada.QualityCommFail {
		t.Fatalf("quality during cut = %v, want COMM_FAIL", p.Quality)
	}
	// MMS-sourced points from the (unaffected) IED stay good.
	direct, _ := r.HMI.Point("DP_TieCurrent")
	if direct.Quality != scada.QualityGood {
		t.Errorf("unaffected source degraded: %v", direct.Quality)
	}
	// Restore: the poller reconnects and quality recovers.
	link.SetUp(true)
	deadline := time.Now().Add(5 * time.Second)
	for {
		step(1)
		r.HMI.PollOnce()
		p, _ = r.HMI.Point("DP_MainVoltage")
		if p.Quality == scada.QualityGood {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never recovered: %v", p.Quality)
		}
	}
	var fail, restore bool
	for _, e := range r.HMI.Events() {
		switch e.Kind {
		case scada.EventCommFail:
			fail = true
		case scada.EventCommRestore:
			restore = true
		}
	}
	if !fail || !restore {
		t.Error("comm fail/restore events missing")
	}
}

func TestRangeSurvivesIEDDeath(t *testing.T) {
	r := compiledEPIC(t)
	if err := r.Start(context.Background(), false); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	step := func(n int) {
		for i := 0; i < n; i++ {
			now = now.Add(r.Interval())
			_ = r.StepAll(now)
		}
	}
	step(2)
	// Kill TIED1 — the IED the PLC reads. The range keeps stepping.
	r.IEDs["TIED1"].Stop()
	step(3)
	_, _, readErrs, _ := r.PLCs["CPLC"].Stats()
	if readErrs == 0 {
		t.Error("PLC did not record read errors after IED death")
	}
	// Physics and the other IEDs are unaffected.
	res := r.Sim.LastResult()
	if !res.Converged {
		t.Error("simulation broke after device death")
	}
	if r.IEDs["GIED1"].Steps() == 0 {
		t.Error("other IEDs stalled")
	}
	// SCADA marks the dead MMS source comm-fail, keeps others good.
	r.HMI.PollOnce()
	r.HMI.PollOnce()
	dead, _ := r.HMI.Point("DP_TieCurrent")
	if dead.Quality != scada.QualityCommFail {
		t.Errorf("dead IED point quality = %v", dead.Quality)
	}
	alive, _ := r.HMI.Point("DP_GenBusVoltage")
	if alive.Quality != scada.QualityGood {
		t.Errorf("live IED point quality = %v", alive.Quality)
	}
}

func TestSimulatorDivergenceIsReported(t *testing.T) {
	// A scenario that drives the grid into collapse must surface an error
	// from StepAll, not hang or silently wedge the range.
	ms := epicModelSet(t)
	ms.PowerConfig.Steps = []sgmlconf.ProfileStep{
		// Pathological load: 10 GW on a 0.4 kV bus.
		{AtMS: 200, Kind: "loadP", Element: "Home1", Value: 10000},
	}
	r, err := Compile(ms)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if err := r.Start(context.Background(), false); err != nil {
		t.Fatal(err)
	}
	var sawErr bool
	now := time.Now()
	for i := 0; i < 3; i++ {
		now = now.Add(r.Interval())
		if err := r.StepAll(now); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Error("grid collapse not reported")
	}
}
