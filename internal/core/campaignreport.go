package core

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strings"
	"time"
)

// CampaignRun records one run of a campaign sweep. The deterministic outcome
// lives in Report (and its Fingerprint hash); the timing fields are
// wall-clock measurements and vary run to run, like RunReport.Diag.
type CampaignRun struct {
	Variant string `json:"variant"`
	Seed    int64  `json:"seed"`
	Attempt int    `json:"attempt"` // 1-based repeat index
	Engine  string `json:"engine"`  // "parallel" or "sequential"

	FramePooling bool `json:"framePooling"`
	// Fingerprint is the FNV-64a hash (hex) of the run's full
	// RunReport.Fingerprint — the compact JSON/display form. Determinism
	// grouping compares the full fingerprint text, not this hash.
	Fingerprint string        `json:"fingerprint,omitempty"`
	Steps       int           `json:"steps"`
	CompileTime time.Duration `json:"compileTimeNs"`
	// Duration is the scenario execution wall time (range start, steps,
	// attack I/O, teardown); StepTime is Duration / Steps, the effective
	// per-step wall cost of the run.
	Duration  time.Duration `json:"durationNs"`
	StepTime  time.Duration `json:"stepTimeNs"`
	Precision float64       `json:"precision"`
	Recall    float64       `json:"recall"`
	// EventErrors lists scenario events whose action failed at runtime —
	// surfaced here so a campaign can never bury a failed event.
	EventErrors []string `json:"eventErrors,omitempty"`
	Err         string   `json:"err,omitempty"`
	// Failure classifies a non-empty Err (panic, timeout, compile, scenario,
	// cancelled) and drives the retry policy; FailNone for clean runs and for
	// runs failed only through deterministic event errors.
	Failure RunFailure `json:"failure,omitempty"`
	// PanicStack is the recovered goroutine stack of a FailPanic run — the
	// sweep survives the panic, the evidence survives with the run.
	PanicStack string `json:"panicStack,omitempty"`
	// Retries is the attempt history of a retried cell (WithRetries): one
	// entry per failed attempt that was re-executed. Wall-clock bookkeeping
	// only — never part of the fingerprint or the store's Merkle leaves.
	Retries []RunRetry `json:"retries,omitempty"`

	// Resumed marks a run restored from a store (WithResume) instead of
	// executed by this process. A resumed run is indistinguishable from its
	// original execution in every deterministic field; only its wall-clock
	// timings are historical.
	Resumed bool `json:"resumed,omitempty"`

	// Report is the full structured run report, available in process for
	// drill-down; excluded from the campaign JSON, which carries the
	// aggregate view. Stores persist it separately so Load can rehydrate it.
	Report *RunReport `json:"-"`

	fingerprint string // full fingerprint text; determinism groups compare on it
	cancelled   bool   // cell never executed (context cancelled); withheld from sinks
}

// FullFingerprint returns the run's full canonical fingerprint text (the
// input of the displayed FNV hash). Determinism grouping and the store's
// Merkle leaves are computed over this text; empty for runs that never
// produced a report.
func (cr *CampaignRun) FullFingerprint() string { return cr.fingerprint }

// Rehydrate recomputes the run's fingerprint fields from its attached
// Report. Stores use it after decoding a persisted record: the full
// fingerprint text is derived state (a pure function of the report), so it
// is recomputed on load rather than trusted from disk.
func (cr *CampaignRun) Rehydrate() {
	if cr.Report == nil {
		return
	}
	cr.fingerprint = cr.Report.Fingerprint()
	cr.Fingerprint = fingerprintHash(cr.fingerprint)
}

// Failed reports whether the run is unusable: it errored, aborted, or any of
// its scenario events failed to execute.
func (cr *CampaignRun) Failed() bool {
	return cr.Err != "" || len(cr.EventErrors) > 0
}

// VariantSummary aggregates one variant's run population.
type VariantSummary struct {
	Variant string `json:"variant"`
	Runs    int    `json:"runs"`
	// Failures counts runs that errored or had failing events.
	Failures int `json:"failures"`

	// IDS scorecard distribution over successful runs.
	PrecisionMean float64 `json:"precisionMean"`
	PrecisionMin  float64 `json:"precisionMin"`
	RecallMean    float64 `json:"recallMean"`
	RecallMin     float64 `json:"recallMin"`
	// AlertLatencyMeanSteps is the mean detection delay in steps between an
	// injected attack firing and its ground-truth entry being detected
	// (-1 when the population produced no detections).
	AlertLatencyMeanSteps float64 `json:"alertLatencyMeanSteps"`

	// Performance distribution (wall-clock; non-deterministic).
	SolverCacheHitRate  float64       `json:"solverCacheHitRate"`
	DataPlanePktsPerSec float64       `json:"dataPlanePktsPerSec"`
	StepTimeP50         time.Duration `json:"stepTimeP50Ns"`
	StepTimeP90         time.Duration `json:"stepTimeP90Ns"`
	StepTimeMax         time.Duration `json:"stepTimeMaxNs"`

	// Determinism: every (variant, seed) group with >= 2 runs must agree on
	// its fingerprint.
	DeterminismGroups int  `json:"determinismGroups"`
	DeterminismOK     bool `json:"determinismOK"`
}

// DeterminismMismatch names a (variant, seed) group whose repeated runs
// produced diverging fingerprints — a replay-contract violation.
type DeterminismMismatch struct {
	Variant      string   `json:"variant"`
	Seed         int64    `json:"seed"`
	Fingerprints []string `json:"fingerprints"` // distinct hashes observed
}

// CampaignReport aggregates a campaign sweep: the per-run records, the
// per-variant distributions and the cross-seed determinism verdict. WriteJSON
// emits the machine-readable form; String renders the operator summary.
type CampaignReport struct {
	Campaign  string        `json:"campaign"`
	Workers   int           `json:"workers"`
	WallTime  time.Duration `json:"wallTimeNs"`
	TotalRuns int           `json:"totalRuns"`
	// Failures counts runs that errored or carried failing events; campaign
	// callers (rangectl) exit non-zero when it is > 0.
	Failures int `json:"failures"`
	// Resumed counts runs restored from a store instead of executed.
	Resumed int `json:"resumed,omitempty"`
	// Retried counts runs that needed at least one retry (WithRetries) before
	// reaching their recorded outcome.
	Retried int `json:"retried,omitempty"`
	// StoreDegraded flags a sweep whose attached store stopped accepting
	// appends (after in-place retries): the runs themselves are intact in
	// this report, but the store holds an incomplete record set and was left
	// unsealed — re-run with WithResume once the store is healthy to persist
	// the missing cells and seal. StoreErr carries the classified append
	// error.
	StoreDegraded bool                  `json:"storeDegraded,omitempty"`
	StoreErr      string                `json:"storeErr,omitempty"`
	Runs          []CampaignRun         `json:"runs"`
	Variants      []VariantSummary      `json:"variants"`
	Determinism   []DeterminismMismatch `json:"determinismMismatches,omitempty"`
	// MerkleRoot is the hex SHA-256 Merkle root over the sweep's run
	// fingerprints sorted by (variant, seed, attempt), stamped by the store
	// when a complete clean sweep is committed (sealed). Empty for sweeps
	// run without a store, cancelled sweeps and sweeps with failures. The
	// root is a pure function of the deterministic run outcomes, so an
	// interrupted-then-resumed sweep commits to the same root as an
	// uninterrupted one.
	MerkleRoot string `json:"merkleRoot,omitempty"`
}

// EventFailures returns every failed scenario event across the sweep, as
// "variant/seed#attempt event: error" lines.
func (rep *CampaignReport) EventFailures() []string {
	var out []string
	for i := range rep.Runs {
		run := &rep.Runs[i]
		for _, e := range run.EventErrors {
			out = append(out, fmt.Sprintf("%s/seed=%d#%d %s", run.Variant, run.Seed, run.Attempt, e))
		}
	}
	return out
}

// OK reports whether the sweep is clean: no failed runs, no failed events and
// no determinism mismatches.
func (rep *CampaignReport) OK() bool {
	return rep.Failures == 0 && len(rep.Determinism) == 0
}

// fingerprintHash compresses a full RunReport fingerprint to a 16-hex-digit
// FNV-64a digest.
func fingerprintHash(fp string) string {
	h := fnv.New64a()
	io.WriteString(h, fp)
	return fmt.Sprintf("%016x", h.Sum64())
}

// aggregate fills the variant summaries and determinism verdict from Runs.
// Variant order follows the campaign declaration; run records keep their
// expansion order regardless of which worker executed them, so the whole
// report (minus timings) is independent of scheduling.
func (rep *CampaignReport) aggregate(variants []CampaignVariant) {
	rep.TotalRuns = len(rep.Runs)
	rep.Failures = 0
	rep.Retried = 0
	byVariant := make(map[string][]*CampaignRun, len(variants))
	for i := range rep.Runs {
		run := &rep.Runs[i]
		if run.Failed() {
			rep.Failures++
		}
		if len(run.Retries) > 0 {
			rep.Retried++
		}
		byVariant[run.Variant] = append(byVariant[run.Variant], run)
	}
	for i := range variants {
		v := &variants[i]
		runs := byVariant[v.Name]
		sum := VariantSummary{Variant: v.Name, Runs: len(runs), DeterminismOK: true}

		// byFull groups per seed on the FULL fingerprint text (the hash is
		// display-only), mapping each distinct fingerprint to its hash.
		groups := map[int64]map[string]string{}
		var stepTimes []time.Duration
		var precSum, recSum, latSum, hitSum, ppsSum float64
		latN, perfN, scoreN := 0, 0, 0
		sum.PrecisionMin, sum.RecallMin = 1, 1
		for _, run := range runs {
			if run.Failed() {
				sum.Failures++
			}
			// Aborted runs (cancellation, step failure) stop at wall-clock-
			// dependent points, so their fingerprints are not evidence about
			// the replay contract; deterministically-failing events are (the
			// event error text is part of the fingerprint), so EventErrors
			// alone does not exclude a run from determinism grouping.
			if run.fingerprint != "" && run.Err == "" {
				g := groups[run.Seed]
				if g == nil {
					g = map[string]string{}
					groups[run.Seed] = g
				}
				g[run.fingerprint] = run.Fingerprint
			}
			// The scorecard and performance distributions cover successful
			// runs only; failed runs are counted, listed and excluded.
			if run.Report == nil || run.Failed() {
				continue
			}
			scoreN++
			precSum += run.Precision
			recSum += run.Recall
			if run.Precision < sum.PrecisionMin {
				sum.PrecisionMin = run.Precision
			}
			if run.Recall < sum.RecallMin {
				sum.RecallMin = run.Recall
			}
			if lat, n := alertLatency(run.Report); n > 0 {
				latSum += lat
				latN += n
			}
			d := run.Report.Diag
			if tot := d.SolverCacheHits + d.SolverCacheMisses; tot > 0 {
				hitSum += float64(d.SolverCacheHits) / float64(tot)
				perfN++
			}
			if run.Duration > 0 {
				ppsSum += float64(d.DataPlane.Transmitted) / run.Duration.Seconds()
			}
			if run.StepTime > 0 {
				stepTimes = append(stepTimes, run.StepTime)
			}
		}
		if scoreN > 0 {
			sum.PrecisionMean = precSum / float64(scoreN)
			sum.RecallMean = recSum / float64(scoreN)
			sum.DataPlanePktsPerSec = ppsSum / float64(scoreN)
		} else {
			sum.PrecisionMin, sum.RecallMin = 0, 0
		}
		if latN > 0 {
			sum.AlertLatencyMeanSteps = latSum / float64(latN)
		} else {
			sum.AlertLatencyMeanSteps = -1
		}
		if perfN > 0 {
			sum.SolverCacheHitRate = hitSum / float64(perfN)
		}
		sum.StepTimeP50 = quantile(stepTimes, 0.50)
		sum.StepTimeP90 = quantile(stepTimes, 0.90)
		sum.StepTimeMax = quantile(stepTimes, 1.0)

		seeds := make([]int64, 0, len(groups))
		for seed := range groups {
			seeds = append(seeds, seed)
		}
		sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
		for _, seed := range seeds {
			g := groups[seed]
			sum.DeterminismGroups++
			if len(g) > 1 {
				sum.DeterminismOK = false
				hashes := make([]string, 0, len(g))
				for _, h := range g {
					hashes = append(hashes, h)
				}
				sort.Strings(hashes)
				rep.Determinism = append(rep.Determinism, DeterminismMismatch{
					Variant: v.Name, Seed: seed, Fingerprints: hashes,
				})
			}
		}
		rep.Variants = append(rep.Variants, sum)
	}
}

// alertLatency sums, over the report's detected ground-truth entries, the
// step delay between the injecting event firing and the detection, returning
// the sum and the number of detections.
func alertLatency(report *RunReport) (sum float64, n int) {
	firedAt := make(map[string]int, len(report.Events))
	for _, ev := range report.Events {
		if ev.Fired {
			firedAt[ev.Event] = ev.Step
		}
	}
	for _, tr := range report.Truth {
		if !tr.Detected || tr.DetectedStep < 0 {
			continue
		}
		at, ok := firedAt[tr.Event]
		if !ok {
			continue
		}
		sum += float64(tr.DetectedStep - at)
		n++
	}
	return sum, n
}

// quantile returns the nearest-rank q-quantile of the samples (0 when empty).
func quantile(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// WriteJSON emits the machine-readable campaign report (indented JSON).
// Durations serialize as nanoseconds (the *Ns field names).
func (rep *CampaignReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// String renders the operator summary: the sweep header, one distribution
// line per variant, and any failures or determinism mismatches in full.
func (rep *CampaignReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== campaign %q ===\n", rep.Campaign)
	fmt.Fprintf(&sb, "%d runs · %d variants · %d workers · wall %v · %d failures",
		rep.TotalRuns, len(rep.Variants), rep.Workers, rep.WallTime.Round(time.Millisecond), rep.Failures)
	if rep.Resumed > 0 {
		fmt.Fprintf(&sb, " · %d resumed", rep.Resumed)
	}
	if rep.Retried > 0 {
		fmt.Fprintf(&sb, " · %d retried", rep.Retried)
	}
	sb.WriteString("\n")
	if rep.MerkleRoot != "" {
		fmt.Fprintf(&sb, "merkle root %s\n", rep.MerkleRoot)
	}
	if rep.StoreDegraded {
		fmt.Fprintf(&sb, "STORE DEGRADED: %s (store unsealed; resume once healthy)\n", rep.StoreErr)
	}
	sb.WriteString("\n--- variants ---\n")
	fmt.Fprintf(&sb, "%-16s %5s %5s %10s %8s %10s %10s %10s %-30s %s\n",
		"variant", "runs", "fail", "precision", "recall", "alert-lat", "cache-hit", "pkts/s", "step p50/p90/max", "determinism")
	for _, v := range rep.Variants {
		lat := "-"
		if v.AlertLatencyMeanSteps >= 0 {
			lat = fmt.Sprintf("%.1f", v.AlertLatencyMeanSteps)
		}
		det := "-"
		if v.DeterminismGroups > 0 {
			det = fmt.Sprintf("OK (%d groups)", v.DeterminismGroups)
			if !v.DeterminismOK {
				det = "MISMATCH"
			}
		}
		fmt.Fprintf(&sb, "%-16s %5d %5d %10.2f %8.2f %10s %10.2f %10.0f %-30s %s\n",
			v.Variant, v.Runs, v.Failures, v.PrecisionMean, v.RecallMean, lat,
			v.SolverCacheHitRate, v.DataPlanePktsPerSec,
			fmt.Sprintf("%v/%v/%v", v.StepTimeP50.Round(time.Microsecond),
				v.StepTimeP90.Round(time.Microsecond), v.StepTimeMax.Round(time.Microsecond)),
			det)
	}
	var failed []*CampaignRun
	for i := range rep.Runs {
		if rep.Runs[i].Failed() {
			failed = append(failed, &rep.Runs[i])
		}
	}
	if len(failed) > 0 {
		sb.WriteString("\n--- failed runs ---\n")
		for _, run := range failed {
			fmt.Fprintf(&sb, "%s seed=%d attempt=%d", run.Variant, run.Seed, run.Attempt)
			if run.Err != "" {
				if run.Failure != FailNone {
					fmt.Fprintf(&sb, "  ERROR(%s): %s", run.Failure, run.Err)
				} else {
					fmt.Fprintf(&sb, "  ERROR: %s", run.Err)
				}
			}
			if len(run.Retries) > 0 {
				fmt.Fprintf(&sb, "  [%d retries]", len(run.Retries))
			}
			sb.WriteString("\n")
			for _, e := range run.EventErrors {
				fmt.Fprintf(&sb, "    event %s\n", e)
			}
		}
	}
	if len(rep.Determinism) > 0 {
		sb.WriteString("\n--- determinism mismatches ---\n")
		for _, m := range rep.Determinism {
			fmt.Fprintf(&sb, "%s seed=%d: %s\n", m.Variant, m.Seed, strings.Join(m.Fingerprints, " vs "))
		}
	}
	return sb.String()
}
