package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/mms"
	"repro/internal/netem"
	"repro/internal/sgmlconf"
)

// redBlueScenario is the full §IV-B engagement as a declarative scenario:
// blue team deploys the sensor, red team scans, injects a false breaker-open
// command once the scan alert is up, then mounts a bounded MITM.
func redBlueScenario() *Scenario {
	return &Scenario{
		Name: "redblue-test",
		Seed: 7,
		Attackers: []AttackerSpec{
			{Name: "redbox", Switch: "sw-TransLAN", IP: netem.MustIPv4("10.0.1.13")},
		},
		Events: []ScenarioEvent{
			{Name: "blue-sensor", Trigger: At(0), Action: DeployIDS{
				Name:              "blue",
				AuthorizedWriters: []string{"SCADA", "CPLC"},
				PortScanThreshold: 5,
			}},
			{Name: "recon", Trigger: At(2), Action: PortScan{Attacker: "redbox", Target: "TIED1"}},
			{Name: "fci", Trigger: OnAlert(ids.AlertPortScan).Plus(1), Action: FalseCommand{
				Attacker: "redbox", Target: "TIED1",
				Ref: "LD0/XCBR1.Pos.Oper", Value: mms.NewBool(false),
			}},
			{Name: "mitm", Trigger: OnAlert(ids.AlertUnauthorizedWrite).Plus(1), Action: StartMITM{
				Attacker: "redbox", VictimA: "CPLC", VictimB: "TIED1",
				ScaleFloats: 1.0, ForSteps: 2,
			}},
		},
		Steps: 14,
	}
}

func TestRunScenarioRedBlue(t *testing.T) {
	r := compiledEPIC(t)
	rep, err := RunScenario(context.Background(), r, redBlueScenario())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Err != "" {
		t.Fatalf("run aborted: %s", rep.Err)
	}
	if rep.Steps != 14 || rep.Seed != 7 || rep.Engine != "parallel" {
		t.Errorf("header = %d steps seed %d engine %s", rep.Steps, rep.Seed, rep.Engine)
	}
	outcomes := map[string]EventOutcome{}
	for _, e := range rep.Events {
		outcomes[e.Event] = e
	}
	for _, name := range []string{"blue-sensor", "recon", "fci", "mitm"} {
		o := outcomes[name]
		if !o.Fired {
			t.Errorf("event %q never fired", name)
		}
		if o.Err != "" {
			t.Errorf("event %q error: %s", name, o.Err)
		}
	}
	if outcomes["recon"].Step != 2 {
		t.Errorf("recon step = %d, want 2", outcomes["recon"].Step)
	}
	// The scan alert is raised during the recon action itself (step 2's
	// pre-hook), observed at step 2's post-hook, so OnAlert.Plus(1) fires
	// the FCI at step 4; the MITM chains off the write alert likewise.
	if outcomes["fci"].Step != 4 {
		t.Errorf("fci step = %d, want 4", outcomes["fci"].Step)
	}
	if outcomes["mitm"].Step != 6 {
		t.Errorf("mitm step = %d, want 6", outcomes["mitm"].Step)
	}
	// Every injected attack must be in ground truth and detected.
	if len(rep.Truth) != 3 {
		t.Fatalf("truth entries = %d, want 3", len(rep.Truth))
	}
	for _, tr := range rep.Truth {
		if !tr.Detected {
			t.Errorf("injected %s (%s) undetected", tr.Expect, tr.Event)
		}
	}
	if rep.Recall != 1 {
		t.Errorf("recall = %v, want 1", rep.Recall)
	}
	if rep.Precision <= 0 || rep.Precision > 1 {
		t.Errorf("precision = %v", rep.Precision)
	}
	// The false breaker-open de-energises downstream buses.
	if rep.Grid.DeadBuses == 0 {
		t.Error("false command had no grid impact")
	}
	if len(rep.Grid.OpenBreakers) == 0 {
		t.Error("no open breakers after false breaker-open command")
	}
	if rep.Diag.PowerSteps == 0 || rep.Diag.FramesInspected == 0 {
		t.Errorf("diagnostics empty: %+v", rep.Diag)
	}
	// Report renderings.
	if !strings.Contains(rep.String(), "ground truth") {
		t.Error("String() missing scorecard")
	}
	if fp := rep.Fingerprint(); !strings.Contains(fp, "scenario \"redblue-test\"") {
		t.Errorf("fingerprint header: %q", fp)
	}
}

func TestRunScenarioConditionAndImpairments(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: PLC polls time out while the flapped link is down")
	}
	r := compiledEPIC(t)
	sc := &Scenario{
		Name: "faults",
		Events: []ScenarioEvent{
			{Name: "flap", Trigger: At(1), Action: LinkFlap{A: "GIED1", B: "sw-GenLAN", DownSteps: 2}},
			{Name: "slow-wan", Trigger: At(1), Action: LinkLatency{A: "TIED1", B: "sw-TransLAN", Latency: time.Millisecond}},
			{Name: "lossy", Trigger: At(1), Action: LinkLoss{A: "TIED2", B: "sw-TransLAN", Rate: 0.05}},
			{Name: "trip", Trigger: At(3), Action: OpenBreaker("CBMicro")},
			{Name: "after-trip", Trigger: OnBreakerOpen("CBMicro"), Action: ScaleLoad("Home1", 0.5)},
			{Name: "impact", Trigger: OnDeadBuses(1), Action: CloseBreaker("CBMicro")},
		},
		Steps: 10,
	}
	rep, err := RunScenario(context.Background(), r, sc, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Err != "" {
		t.Fatalf("run aborted: %s", rep.Err)
	}
	byName := map[string]EventOutcome{}
	for _, e := range rep.Events {
		byName[e.Event] = e
	}
	for _, name := range []string{"flap", "slow-wan", "lossy", "trip", "after-trip", "impact"} {
		if o := byName[name]; !o.Fired || o.Err != "" {
			t.Errorf("event %q: fired=%t err=%q", name, o.Fired, o.Err)
		}
	}
	// OnBreakerOpen observed at step 3's post-hook -> fires step 4.
	if byName["after-trip"].Step != 4 {
		t.Errorf("after-trip step = %d, want 4", byName["after-trip"].Step)
	}
	if load := r.Sim.Network().FindLoad("Home1"); load.EffectiveScaling() != 0.5 {
		t.Errorf("Home1 scaling = %v, want 0.5", load.EffectiveScaling())
	}
	// The flap restored itself: the link is back up.
	if l := r.Net.LinkBetween("GIED1", "sw-GenLAN"); !l.Up() {
		t.Error("flapped link still down")
	}
	if l := r.Net.LinkBetween("TIED1", "sw-TransLAN"); l.Latency() != time.Millisecond {
		t.Errorf("latency = %v", l.Latency())
	}
	// CloseBreaker fired after grid impact; the tie is closed again.
	if sw := r.Sim.Network().FindSwitch("CBMicro"); !sw.Closed {
		t.Error("CBMicro not re-closed")
	}
}

// TestLateFlapRestoredAtTeardown pins that a self-reverting action whose
// restore step lies past the end of the run is still reverted: the run ends
// with the fabric unimpaired, not with the link permanently down.
func TestLateFlapRestoredAtTeardown(t *testing.T) {
	r := compiledEPIC(t)
	sc := &Scenario{
		Name: "late-flap",
		Events: []ScenarioEvent{
			// Fires at step 3 of 4: the restore lands at step 8, after the run.
			{Name: "flap", Trigger: At(3), Action: LinkFlap{A: "SIED1", B: "sw-HomeLAN", DownSteps: 5}},
		},
		Steps: 4,
	}
	rep, err := RunScenario(context.Background(), r, sc)
	if err != nil {
		t.Fatal(err)
	}
	if o := rep.Events[0]; !o.Fired || o.Err != "" {
		t.Fatalf("flap outcome: %+v", o)
	}
	if l := r.Net.LinkBetween("SIED1", "sw-HomeLAN"); !l.Up() {
		t.Error("link left down after the run: late restore dropped")
	}
}

func TestScenarioValidation(t *testing.T) {
	cases := []struct {
		name string
		sc   *Scenario
	}{
		{"unknown breaker", &Scenario{Events: []ScenarioEvent{
			{Trigger: At(0), Action: OpenBreaker("GHOST")}}}},
		{"unknown load", &Scenario{Events: []ScenarioEvent{
			{Trigger: At(0), Action: ScaleLoad("GHOST", 1)}}}},
		{"unknown link", &Scenario{Events: []ScenarioEvent{
			{Trigger: At(0), Action: LinkDown{A: "GHOST", B: "sw-TransLAN"}}}}},
		{"undeclared attacker", &Scenario{Events: []ScenarioEvent{
			{Trigger: At(0), Action: PortScan{Attacker: "ghost", Target: "TIED1"}}}}},
		{"unknown target", &Scenario{
			Attackers: []AttackerSpec{{Name: "a", Switch: "sw-TransLAN", IP: netem.MustIPv4("10.0.1.99")}},
			Events: []ScenarioEvent{
				{Trigger: At(0), Action: PortScan{Attacker: "a", Target: "GHOST"}}}}},
		{"unknown switch", &Scenario{
			Attackers: []AttackerSpec{{Name: "a", Switch: "sw-ghost", IP: netem.MustIPv4("10.0.1.99")}}}},
		{"attacker collides", &Scenario{
			Attackers: []AttackerSpec{{Name: "TIED1", Switch: "sw-TransLAN", IP: netem.MustIPv4("10.0.1.99")}}}},
		{"bad trigger breaker", &Scenario{Events: []ScenarioEvent{
			{Trigger: OnBreakerOpen("GHOST"), Action: ScaleLoad("Home1", 1)}}}},
		{"bad flap", &Scenario{Events: []ScenarioEvent{
			{Trigger: At(0), Action: LinkFlap{A: "TIED1", B: "sw-TransLAN"}}}}},
		{"bad loss rate", &Scenario{Events: []ScenarioEvent{
			{Trigger: At(0), Action: LinkLoss{A: "TIED1", B: "sw-TransLAN", Rate: 1.5}}}}},
		{"no action", &Scenario{Events: []ScenarioEvent{{Trigger: At(0)}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := compiledEPIC(t)
			if _, err := RunScenario(context.Background(), r, tc.sc); !errors.Is(err, ErrScenario) {
				t.Errorf("err = %v, want ErrScenario", err)
			}
		})
	}
}

func TestCompileValidatesPowerSteps(t *testing.T) {
	t.Run("unknown element", func(t *testing.T) {
		ms := epicModelSet(t)
		ms.PowerConfig.Steps = append(ms.PowerConfig.Steps,
			sgmlconf.ProfileStep{AtMS: 100, Kind: "loadScale", Element: "NoSuchLoad", Value: 2})
		_, err := Compile(ms)
		if !errors.Is(err, ErrModel) {
			t.Fatalf("err = %v, want ErrModel", err)
		}
		if !strings.Contains(err.Error(), "NoSuchLoad") || !strings.Contains(err.Error(), "loadScale") {
			t.Errorf("error does not name the offending step: %v", err)
		}
	})
	t.Run("wrong element class", func(t *testing.T) {
		ms := epicModelSet(t)
		// CBTie is a breaker, not a load: must fail loadScale resolution.
		ms.PowerConfig.Steps = append(ms.PowerConfig.Steps,
			sgmlconf.ProfileStep{AtMS: 100, Kind: "loadScale", Element: "CBTie", Value: 2})
		if _, err := Compile(ms); !errors.Is(err, ErrModel) {
			t.Fatalf("err = %v, want ErrModel", err)
		}
	})
}

func TestScenarioFromConfig(t *testing.T) {
	xmlData := []byte(`<Scenario name="file-sc" steps="12" seed="9">
  <Attacker name="redbox" switch="sw-TransLAN" ip="10.0.1.13"/>
  <Event name="blue" atStep="0" kind="deployIDS" sensor="blue" writers="SCADA,CPLC" threshold="5"/>
  <Event name="recon" atStep="2" kind="portScan" attacker="redbox" target="TIED1" ports="22,80,102,443,502"/>
  <Event name="fci" onAlert="tcp-port-scan" plus="1" kind="falseCommand" attacker="redbox" target="TIED1" ref="LD0/XCBR1.Pos.Oper" boolValue="false"/>
  <Event name="shed" onDeadBuses="1" kind="loadScale" element="Home1" value="0"/>
  <Event name="lossy" afterMs="500" kind="linkLoss" linkA="GIED1" linkB="sw-GenLAN" rate="0.02"/>
</Scenario>`)
	cfg, err := sgmlconf.ParseScenarioConfig(xmlData)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := ScenarioFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "file-sc" || sc.Steps != 12 || sc.Seed != 9 {
		t.Errorf("header = %+v", sc)
	}
	if len(sc.Attackers) != 1 || sc.Attackers[0].IP != netem.MustIPv4("10.0.1.13") {
		t.Errorf("attackers = %+v", sc.Attackers)
	}
	if len(sc.Events) != 5 {
		t.Fatalf("events = %d", len(sc.Events))
	}
	// The scenario actually runs.
	r := compiledEPIC(t)
	rep, err := RunScenario(context.Background(), r, sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Err != "" {
		t.Fatalf("run aborted: %s", rep.Err)
	}
	if rep.Seed != 9 {
		t.Errorf("seed = %d, want the file's 9", rep.Seed)
	}
	for _, e := range rep.Events {
		if e.Err != "" {
			t.Errorf("event %q error: %s", e.Event, e.Err)
		}
	}
	// recon fires at 2, alert observed at 2, fci at 4.
	for _, e := range rep.Events {
		if e.Event == "fci" && e.Step != 4 {
			t.Errorf("fci step = %d, want 4", e.Step)
		}
	}
}

func TestScenarioConfigValidation(t *testing.T) {
	bad := []string{
		`<Scenario><Event kind="portScan"/></Scenario>`,                                                // no name
		`<Scenario name="x"><Event kind="explode" element="y"/></Scenario>`,                            // unknown kind
		`<Scenario name="x"><Event kind="openBreaker"/></Scenario>`,                                    // missing element
		`<Scenario name="x"><Event kind="portScan" target="T"/></Scenario>`,                            // missing attacker
		`<Scenario name="x"><Event atStep="1" afterMs="5" kind="openBreaker" element="B"/></Scenario>`, // two triggers
		`<Scenario name="x"><Attacker name="a" switch="s" ip="10.0.0.9"/>` +
			`<Event kind="portScan" attacker="a" target="T" ports="99999"/></Scenario>`, // bad port
		`<Scenario name="x"><Attacker name="a" ip="10.0.0.9"/></Scenario>`,           // attacker without switch
		`<Scenario name="x"><Event kind="linkFlap" linkA="a" linkB="b"/></Scenario>`, // flap without downSteps
	}
	for i, data := range bad {
		if _, err := sgmlconf.ParseScenarioConfig([]byte(data)); !errors.Is(err, sgmlconf.ErrConfig) {
			t.Errorf("case %d: err = %v, want ErrConfig", i, err)
		}
	}
}

func TestRunScenarioOnStartedRangeFails(t *testing.T) {
	r := compiledEPIC(t)
	if err := r.Start(context.Background(), false); err != nil {
		t.Fatal(err)
	}
	if _, err := RunScenario(context.Background(), r, &Scenario{Name: "x"}); !errors.Is(err, ErrScenario) {
		t.Errorf("err = %v, want ErrScenario", err)
	}
}
