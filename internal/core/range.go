package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/ied"
	"repro/internal/kvbus"
	"repro/internal/mms"
	"repro/internal/netem"
	"repro/internal/plc"
	"repro/internal/powergrid"
	"repro/internal/powersim"
	"repro/internal/scada"
	"repro/internal/scl"
	"repro/internal/sclmerge"
	"repro/internal/sgmlconf"
)

// PLCSpec bundles a PLC's control logic with its I/O mapping.
type PLCSpec struct {
	Config *sgmlconf.PLCConfig
	// PLCopenXML takes precedence over Logic when both are set.
	PLCopenXML []byte
	Logic      string // raw Structured Text
}

// ModelSet is the full SG-ML input of Fig 2: SCL files, the SED for
// multi-substation models, and the supplementary XML configs.
type ModelSet struct {
	Name        string
	SCDs        map[string]*scl.Document // substation name -> SCD
	SED         *scl.SED
	ICDs        map[string]*scl.Document // IED name -> ICD (optional)
	IEDConfig   *sgmlconf.IEDConfig
	SCADAConfig *sgmlconf.SCADAConfig
	PowerConfig *sgmlconf.PowerConfig
	PLCs        []PLCSpec
	// SCADAHost names the node running the HMI (default "SCADA").
	SCADAHost string
	// ShardHints optionally overrides the SCL-derived device -> substation
	// attribution used to partition the range into parallel step shards.
	// Model generators (e.g. the scale model) populate it; unknown devices
	// fall back to the merge stage's substation map.
	ShardHints map[string]string
}

// CyberRange is a compiled, operational cyber range (Fig 1's architecture):
// emulated network, virtual devices and the coupled power simulation.
type CyberRange struct {
	Name  string
	Net   *netem.Network
	Built *BuiltNetwork
	Bus   *kvbus.Bus
	Sim   *powersim.Simulator
	Grid  *powergrid.Network
	IEDs  map[string]*ied.IED
	PLCs  map[string]*plc.PLC
	HMI   *scada.HMI

	artifacts *rangeArtifacts
	cons      *sclmerge.Consolidated
	shards    []Shard
	engine    *stepEngine
	interval  time.Duration
	started   bool
	cancel    context.CancelFunc
	stepIndex int
	preStep   StepHook
	postStep  StepHook
}

// rangeArtifacts is everything Compile derives from a ModelSet that is
// immutable once built: the merged SCL, the power-model template, validated
// scenario events, per-device configurations, the prewarmed solver template,
// the coupling-cache template and the fabric's inbox recycler. A CyberRange
// is an instantiation of these artifacts; Fork re-instantiates them, which is
// what makes forked and freshly compiled ranges byte-identical — both come
// off the same assembly path, the fork merely skips re-deriving the inputs.
type rangeArtifacts struct {
	name     string
	cons     *sclmerge.Consolidated
	grid     *powergrid.Network // pristine template; cloned per instantiation
	events   []powersim.Event
	interval time.Duration

	iedCfgs    []ied.Config // in cons.Doc.IEDs order
	plcBuilds  []plcBuild
	scadaImp   *sgmlconf.ScadaImport // nil when the model has no SCADA config
	scadaHost  string
	shardHints map[string]string
	workers    int // compile-time default engine pool size

	// simTmpl is a never-started simulator holding the prewarmed solver
	// template; each instantiation forks its solver so the first real solve
	// is a topology-cache hit.
	simTmpl *powersim.Simulator
	// busTmpl is the coupling cache's initial state, forked per instantiation.
	busTmpl *kvbus.Bus
	// recycler hands drained device inbox channels from stopped ranges to the
	// next instantiation (the dominant fabric-construction cost at scale).
	recycler *netem.InboxRecycler
}

// plcBuild is one PLC's precompiled build inputs: config, extracted
// Structured Text and host attachment.
type plcBuild struct {
	cfg      plc.Config
	logic    string
	hostName string
}

// Compile runs the SG-ML Processor pipeline and assembles the range.
// Nothing is started; call Start (real-time) or StepAll (deterministic).
// The expensive derivation work (merge, model generation, config validation,
// solver warm-up) is kept on the range as shared immutable artifacts, so
// Fork can clone the range for another run without repeating it.
func Compile(ms *ModelSet, opts ...CompileOption) (*CyberRange, error) {
	var co optionSet
	applyCompile(opts, &co)
	a, built, err := buildArtifacts(ms, co.workers)
	if err != nil {
		return nil, err
	}
	return a.instantiate(built, a.workers)
}

// Fork clones a compiled, not-yet-started range into a fully isolated
// sibling: fresh fabric (recycled inbox channels), forked coupling cache,
// private grid and simulator (sharing only the solver's read-only symbolic
// artifacts), and freshly instantiated IEDs, PLCs and SCADA from the
// precompiled configs. Fork and Compile share one assembly path, so a forked
// range's runs are byte-identical to a freshly compiled range's (pinned by
// TestForkDeterminism and the campaign differential tests). Forks may be
// created concurrently and forked again; each owns its own Stop.
func (r *CyberRange) Fork() (*CyberRange, error) {
	if r.started {
		return nil, fmt.Errorf("%w: cannot fork a started range", ErrModel)
	}
	if r.artifacts == nil {
		return nil, fmt.Errorf("%w: range was not produced by Compile", ErrModel)
	}
	built, err := generateNetwork(r.artifacts.cons, r.artifacts.recycler)
	if err != nil {
		return nil, err
	}
	return r.artifacts.instantiate(built, r.engine.workers)
}

// releaseFabric hands the range's idle fabric inboxes to the artifacts'
// recycler. Only valid on a never-started range that will serve purely as a
// fork root from here on (RunCampaign's compile-once roots): the range's own
// fabric becomes undriveable, while Fork — which regenerates a fabric from
// the artifacts — is unaffected and the first fork inherits the channels.
func (r *CyberRange) releaseFabric() {
	if r.started {
		return
	}
	r.Net.ReclaimInboxes()
}

// buildArtifacts runs stages 1-2 of the pipeline (merge, power model), the
// one-time generation of the root fabric, and precomputes every immutable
// input of range assembly: validated power events, per-IED and per-PLC
// configurations, the parsed SCADA import and the prewarmed solver template.
func buildArtifacts(ms *ModelSet, workers int) (*rangeArtifacts, *BuiltNetwork, error) {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if ms.Name == "" {
		ms.Name = "sgml-range"
	}
	if len(ms.SCDs) == 0 {
		return nil, nil, fmt.Errorf("%w: no SCD documents", ErrModel)
	}

	// Stage 1: merge (SSD Merger + SCD Merger of Fig 3).
	var cons *sclmerge.Consolidated
	var err error
	if len(ms.SCDs) == 1 && ms.SED == nil {
		for name, doc := range ms.SCDs {
			cons, err = sclmerge.SingleSubstation(name, doc)
		}
	} else {
		cons, err = sclmerge.MergeSCD(ms.SCDs, ms.SED)
	}
	if err != nil {
		return nil, nil, err
	}

	// Stage 2: power system simulation model (SSD Parser).
	grid, err := GeneratePowerModel(ms.Name, cons, ms.PowerConfig)
	if err != nil {
		return nil, nil, err
	}

	a := &rangeArtifacts{
		name:       ms.Name,
		cons:       cons,
		grid:       grid,
		shardHints: ms.ShardHints,
		workers:    workers,
		busTmpl:    kvbus.New(),
		recycler:   netem.NewInboxRecycler(),
	}
	a.interval = 100 * time.Millisecond
	if ms.PowerConfig != nil {
		a.interval = ms.PowerConfig.Interval()
	}

	// Stage 3 (once): the root fabric. Later instantiations regenerate it
	// from cons; the host/address tables below are derived from this one.
	built, err := generateNetwork(cons, a.recycler)
	if err != nil {
		return nil, nil, err
	}

	// Power scenario events from the supplementary XML: validate every step
	// against the generated grid (an unknown kind or unresolvable element
	// fails Compile naming the step, rather than erroring — or worse, being
	// dropped — mid-run).
	specs, err := PowerEvents(ms.PowerConfig)
	if err != nil {
		return nil, nil, err
	}
	for i, spec := range specs {
		if err := spec.Validate(grid); err != nil {
			return nil, nil, fmt.Errorf("%w: power step %d (kind %q, element %q, at %d ms): %v",
				ErrModel, i, spec.Kind, spec.Element, spec.AtMS, err)
		}
		ev, err := spec.SimEvent()
		if err != nil {
			return nil, nil, err
		}
		a.events = append(a.events, ev)
	}

	// Solver template: one prewarm solve populates the topology cache and
	// symbolic factorization every fork then shares read-only. A failed
	// prewarm (e.g. a model that diverges at t=0) is not a compile error —
	// the first Start reports it exactly as before, just without the warm
	// cache.
	a.simTmpl = powersim.New(grid, a.busTmpl, powersim.Options{Interval: a.interval, EnforceQLimits: true})
	_ = a.simTmpl.Prewarm()

	// Per-IED configurations (stage 5 inputs).
	appIDs := gooseAppIDs(cons.Doc)
	for i := range cons.Doc.IEDs {
		sclIED := &cons.Doc.IEDs[i]
		if isInfraNode(sclIED) {
			continue
		}
		if _, ok := built.Hosts[sclIED.Name]; !ok {
			continue // no network attachment: not instantiated
		}
		var entry *sgmlconf.IEDEntry
		if ms.IEDConfig != nil {
			entry = ms.IEDConfig.Find(sclIED.Name)
		}
		icd := ms.ICDs[sclIED.Name]
		if icd == nil {
			// Fall back to the IED's own section within the SCD.
			icd = &scl.Document{IEDs: []scl.IED{*sclIED}}
		}
		cfg := ied.Config{
			Name:       sclIED.Name,
			Substation: ms.Name, // the simulator's kv namespace
			ICD:        icd,
			Entry:      entry,
			GooseAppID: appIDs[sclIED.Name],
			Period:     a.interval,
		}
		if entry != nil && entry.Protection.CILO != nil {
			cfg.GuardAppID = appIDs[entry.Protection.CILO.GuardIED]
		}
		if entry != nil && entry.Protection.PDIF != nil {
			// Differential protection needs the R-SV exchange with the remote
			// IED: derive a deterministic shared APPID from the (sorted) pair
			// and stream to the remote gateway's address.
			remote := entry.Protection.PDIF.RemoteIED
			peer, ok := built.AddrOf[remote]
			if !ok {
				return nil, nil, fmt.Errorf("%w: IED %s PDIF remote %q has no network address", ErrModel, sclIED.Name, remote)
			}
			cfg.RSVAppID = rsvPairAppID(sclIED.Name, remote)
			cfg.RSVPeers = []netem.IPv4{peer}
		}
		a.iedCfgs = append(a.iedCfgs, cfg)
	}

	// Per-PLC build inputs (stage 6), PLCopen parsed once.
	for _, spec := range ms.PLCs {
		if spec.Config == nil {
			return nil, nil, fmt.Errorf("%w: PLC spec without config", ErrModel)
		}
		if err := spec.Config.Validate(); err != nil {
			return nil, nil, err
		}
		hostName := spec.Config.Host
		if hostName == "" {
			hostName = spec.Config.Name
		}
		if _, ok := built.Hosts[hostName]; !ok {
			return nil, nil, fmt.Errorf("%w: PLC host %q not in communication section", ErrModel, hostName)
		}
		logic := spec.Logic
		if len(spec.PLCopenXML) > 0 {
			_, src, err := plc.ParsePLCopen(spec.PLCopenXML)
			if err != nil {
				return nil, nil, err
			}
			logic = src
		}
		cfg := plc.Config{
			Name:       spec.Config.Name,
			ScanTime:   time.Duration(spec.Config.ScanMS) * time.Millisecond,
			ModbusPort: uint16(spec.Config.ModbusPort),
		}
		for _, b := range spec.Config.Inputs {
			cfg.Inputs = append(cfg.Inputs, plc.MMSBinding{Var: b.Var, IED: b.IED, Ref: mms.ObjectReference(b.Ref), Scale: b.Scale})
		}
		for _, b := range spec.Config.Outputs {
			cfg.Outputs = append(cfg.Outputs, plc.MMSBinding{Var: b.Var, IED: b.IED, Ref: mms.ObjectReference(b.Ref), Scale: b.Scale})
		}
		for _, e := range spec.Config.Exposes {
			kind := plc.ExposeInputReg
			switch e.Kind {
			case "discrete":
				kind = plc.ExposeDiscrete
			case "holding":
				kind = plc.ExposeHolding
			}
			cfg.Expose = append(cfg.Expose, plc.ModbusBinding{Var: e.Var, Kind: kind, Addr: e.Addr, Scale: e.Scale})
		}
		for _, c := range spec.Config.Commands {
			cfg.Commands = append(cfg.Commands, plc.CommandBinding{Coil: c.Coil, Var: c.Var})
		}
		a.plcBuilds = append(a.plcBuilds, plcBuild{cfg: cfg, logic: logic, hostName: hostName})
	}

	// SCADA import (stage 7 input), generated and parsed once.
	if ms.SCADAConfig != nil {
		a.scadaHost = ms.SCADAHost
		if a.scadaHost == "" {
			a.scadaHost = "SCADA"
		}
		if _, ok := built.Hosts[a.scadaHost]; !ok {
			return nil, nil, fmt.Errorf("%w: SCADA host %q not in communication section", ErrModel, a.scadaHost)
		}
		jsonData, err := ms.SCADAConfig.ToImportJSON()
		if err != nil {
			return nil, nil, err
		}
		imp, err := sgmlconf.ParseImportJSON(jsonData)
		if err != nil {
			return nil, nil, err
		}
		a.scadaImp = imp
	}
	return a, built, nil
}

// instantiate assembles a runnable range on a freshly generated fabric: the
// single shared code path of Compile (first instantiation) and Fork (every
// later one).
func (a *rangeArtifacts) instantiate(built *BuiltNetwork, workers int) (*CyberRange, error) {
	// Stage 4: coupling cache + simulator with scenario events. The solver
	// fork shares the template's read-only topology artifacts.
	bus := a.busTmpl.Fork()
	sim := powersim.NewWithSolver(a.grid, bus, powersim.Options{Interval: a.interval, EnforceQLimits: true}, a.simTmpl.ForkSolver())
	if len(a.events) > 0 {
		sim.Schedule(a.events...)
	}

	r := &CyberRange{
		Name: a.name, Net: built.Net, Built: built, Bus: bus, Sim: sim, Grid: sim.Network(),
		IEDs: make(map[string]*ied.IED), PLCs: make(map[string]*plc.PLC),
		artifacts: a, cons: a.cons, interval: a.interval,
	}

	// Stage 5: virtual IED builder.
	for i := range a.iedCfgs {
		cfg := &a.iedCfgs[i]
		host, ok := built.Hosts[cfg.Name]
		if !ok {
			return nil, fmt.Errorf("%w: IED %s has no host on the generated fabric", ErrModel, cfg.Name)
		}
		dev, err := ied.New(host, bus, *cfg)
		if err != nil {
			return nil, fmt.Errorf("%w: IED %s: %v", ErrModel, cfg.Name, err)
		}
		r.IEDs[cfg.Name] = dev
	}

	// Stage 6: virtual PLCs (OpenPLC61850).
	for i := range a.plcBuilds {
		pb := &a.plcBuilds[i]
		host, ok := built.Hosts[pb.hostName]
		if !ok {
			return nil, fmt.Errorf("%w: PLC host %q not in communication section", ErrModel, pb.hostName)
		}
		p, err := plc.New(host, pb.cfg, pb.logic)
		if err != nil {
			return nil, err
		}
		r.PLCs[pb.cfg.Name] = p
	}

	// Stage 7: SCADA (HMI on the precompiled import model).
	if a.scadaImp != nil {
		host, ok := built.Hosts[a.scadaHost]
		if !ok {
			return nil, fmt.Errorf("%w: SCADA host %q not in communication section", ErrModel, a.scadaHost)
		}
		hmi, err := scada.New(host, a.scadaImp)
		if err != nil {
			return nil, err
		}
		hmi.SetDiagnostics(func() string {
			s := built.Net.Stats()
			return fmt.Sprintf("data plane: %d frames transmitted, %d dropped, pool hit rate %.0f%%\n",
				s.Transmitted, s.Dropped, 100*s.PoolHitRate())
		})
		r.HMI = hmi
	}

	// Stage 8: step scheduler — partition devices along the substation
	// hierarchy and build the bounded-pool two-phase engine.
	if workers < 1 {
		workers = 1
	}
	r.shards = partitionShards(a.cons.SubstationOf, a.shardHints, r.IEDs, r.PLCs)
	r.engine = newStepEngine(r.shards, workers, r.IEDs, r.PLCs, bus)
	return r, nil
}

// isInfraNode reports whether the SCL IED entry is actually the PLC or
// SCADA node (present in the communication section but not a virtual IED).
func isInfraNode(i *scl.IED) bool {
	switch strings.ToLower(i.Type) {
	case "plc", "hmi", "scada":
		return true
	}
	// No server section -> nothing to virtualise.
	for _, ap := range i.AccessPoints {
		if ap.Server != nil {
			return false
		}
	}
	return true
}

// rsvPairAppID derives the shared R-SV APPID for a differential-protection
// pair: both ends compute the same value from the sorted name pair, in the
// 0x4000 range IEC 61850-9-2 reserves for SV.
func rsvPairAppID(a, b string) uint16 {
	if b < a {
		a, b = b, a
	}
	var h uint32 = 2166136261
	for _, c := range []byte(a + "|" + b) {
		h ^= uint32(c)
		h *= 16777619
	}
	return 0x4000 | uint16(h&0x0FFF)
}

// gooseAppIDs extracts each IED's GOOSE APPID from the communication section.
func gooseAppIDs(doc *scl.Document) map[string]uint16 {
	out := map[string]uint16{}
	if doc.Communication == nil {
		return out
	}
	for _, sn := range doc.Communication.SubNetworks {
		for _, ap := range sn.ConnectedAPs {
			for _, gse := range ap.GSEs {
				if v := gse.Address.Get("APPID"); v != "" {
					var appID uint16
					if _, err := fmt.Sscanf(v, "%x", &appID); err == nil {
						out[ap.IEDName] = appID
					}
				}
			}
		}
	}
	return out
}

// Start brings the range up: network workers, one initial power-flow step
// (so devices see live measurements), MMS servers, PLC southbound
// associations, SCADA connections — then, in real-time mode, the periodic
// loops of every component.
func (r *CyberRange) Start(ctx context.Context, realTime bool) error {
	if r.started {
		return fmt.Errorf("%w: range already started", ErrModel)
	}
	r.started = true
	if err := r.Net.Start(); err != nil {
		return err
	}
	if _, err := r.Sim.Step(); err != nil {
		return fmt.Errorf("core: initial power flow: %w", err)
	}
	for name, dev := range r.IEDs {
		if err := dev.Serve(); err != nil {
			return fmt.Errorf("core: IED %s: %w", name, err)
		}
		dev.Step(time.Now())
	}
	for name, p := range r.PLCs {
		if err := p.ServeModbusOnly(); err != nil {
			return fmt.Errorf("core: PLC %s: %w", name, err)
		}
	}
	// Southbound associations (after IED servers are up).
	for name, p := range r.PLCs {
		spec := r.plcBindingsOf(name)
		for iedName := range spec {
			addr, ok := r.Built.AddrOf[iedName]
			if !ok {
				return fmt.Errorf("%w: PLC %s references unknown IED %q", ErrModel, name, iedName)
			}
			if err := p.ConnectIED(iedName, addr, 0); err != nil {
				return fmt.Errorf("core: PLC %s -> IED %s: %w", name, iedName, err)
			}
		}
	}
	if r.HMI != nil {
		r.HMI.Connect()
	}
	if realTime {
		runCtx, cancel := context.WithCancel(ctx)
		r.cancel = cancel
		go r.Sim.Run(runCtx, nil)
		for _, dev := range r.IEDs {
			dev.Run(runCtx)
		}
		for _, p := range r.PLCs {
			if err := p.Start(runCtx); err != nil {
				cancel()
				return err
			}
		}
		if r.HMI != nil {
			r.HMI.Run(runCtx)
		}
	}
	return nil
}

// plcBindingsOf collects the distinct IED names a PLC talks to.
func (r *CyberRange) plcBindingsOf(name string) map[string]bool {
	out := map[string]bool{}
	p := r.PLCs[name]
	if p == nil {
		return out
	}
	for _, b := range p.Bindings() {
		out[b] = true
	}
	return out
}

// StepAll advances the whole range one simulation interval, deterministically:
// physical solve, then the sharded two-phase device pass (parallel IED
// compute with buffered bus writes, ordered commit, PLC scans), one HMI poll.
// The committed state is byte-identical to StepAllSequential.
func (r *CyberRange) StepAll(now time.Time) error {
	step := r.stepIndex
	if r.preStep != nil {
		if err := r.preStep(step, now); err != nil {
			return err
		}
	}
	if _, err := r.Sim.Step(); err != nil {
		return err
	}
	if err := r.engine.step(now); err != nil {
		return err
	}
	if r.HMI != nil {
		r.HMI.PollOnce()
	}
	r.stepIndex++
	if r.postStep != nil {
		return r.postStep(step, now)
	}
	return nil
}

// StepAllSequential is the single-threaded reference engine: every IED in
// sorted order with immediate bus writes, then every PLC in shard/name
// order — the exact order the parallel engine commits in. Like the parallel
// path, it scans every PLC before reporting the first error, so a failing
// scan never forks the two engines' state. The determinism test and the
// parallel-engine ablation bench diff StepAll against it.
func (r *CyberRange) StepAllSequential(now time.Time) error {
	step := r.stepIndex
	if r.preStep != nil {
		if err := r.preStep(step, now); err != nil {
			return err
		}
	}
	if _, err := r.Sim.Step(); err != nil {
		return err
	}
	names := make([]string, 0, len(r.IEDs))
	for n := range r.IEDs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r.IEDs[n].Step(now)
	}
	var firstErr error
	for _, s := range r.shards {
		for _, n := range s.PLCs {
			if err := r.PLCs[n].Scan(now); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	if firstErr != nil {
		return firstErr
	}
	if r.HMI != nil {
		r.HMI.PollOnce()
	}
	r.stepIndex++
	if r.postStep != nil {
		return r.postStep(step, now)
	}
	return nil
}

// PowerSolverStats reports the coupled power simulator's health: topology
// cache hits/misses of the warm-path solver (hits = steps that reused the
// island assignment, Ybus and symbolic factorization) and the number of
// failed solves.
func (r *CyberRange) PowerSolverStats() (cacheHits, cacheMisses, solveFailures uint64) {
	cacheHits, cacheMisses = r.Sim.SolverCacheStats()
	return cacheHits, cacheMisses, r.Sim.Failures()
}

// DataPlaneStats reports the emulated fabric's data-plane counters: frames
// transmitted and dropped per hop, and the payload pool's hit rate (the
// zero-allocation protocol data plane). The HMI status panel renders the
// same counters as its diagnostics footer.
func (r *CyberRange) DataPlaneStats() netem.DataPlaneStats { return r.Net.Stats() }

// GooseSubscriberDrops reports, per subscribing IED, how many GOOSE updates
// its subscription lost to a full delivery channel. IEDs without GOOSE
// subscriptions (or without losses) are omitted.
func (r *CyberRange) GooseSubscriberDrops() map[string]uint64 {
	out := map[string]uint64{}
	for name, dev := range r.IEDs {
		if n := dev.GooseDropped(); n > 0 {
			out[name] = n
		}
	}
	return out
}

// SetStepHooks installs the scenario scheduler's pre/post hooks into the
// step loop (nil clears). The pre hook runs before the physical solve of the
// step — a scenario action applied there is visible to that step's power
// flow — and the post hook runs after the HMI poll, once the step's device
// state is committed; both run under BOTH engines (StepAll and
// StepAllSequential), which is what lets a scenario replay identically across
// them. Hooks are part of the single-threaded step loop: they must not be
// installed concurrently with stepping.
func (r *CyberRange) SetStepHooks(pre, post StepHook) {
	r.preStep, r.postStep = pre, post
}

// StepIndex reports how many steps the range has completed; the value passed
// to the step hooks for the upcoming step.
func (r *CyberRange) StepIndex() int { return r.stepIndex }

// Shards exposes the step engine's device partition (diagnostics, tests).
func (r *CyberRange) Shards() []Shard { return r.shards }

// Workers reports the step engine's worker-pool size.
func (r *CyberRange) Workers() int { return r.engine.workers }

// Stop tears the range down in reverse dependency order.
func (r *CyberRange) Stop() {
	if r.cancel != nil {
		r.cancel()
	}
	if r.HMI != nil {
		r.HMI.Close()
	}
	for _, p := range r.PLCs {
		p.Stop()
	}
	for _, dev := range r.IEDs {
		dev.Stop()
	}
	r.Net.Stop()
}

// Interval returns the simulation step interval.
func (r *CyberRange) Interval() time.Duration { return r.interval }

// Topology renders the generated cyber network (the Fig 4 artefact).
func (r *CyberRange) Topology() string { return r.Net.Topology() }

// PowerSummary renders the generated power model (the Fig 5 artefact).
func (r *CyberRange) PowerSummary() string { return r.Grid.Summary() }
