package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/scl"
	"repro/internal/sclmerge"
)

func commDoc(subnets int, apsPer int) *scl.Document {
	doc := &scl.Document{
		Header:        scl.Header{ID: "comm"},
		Communication: &scl.Communication{},
	}
	// Minimal substation so validation passes when needed.
	doc.Substations = []scl.Substation{{
		Name: "S1",
		VoltageLevels: []scl.VoltageLevel{{
			Name: "VL", Voltage: scl.Voltage{Multiplier: "k", Value: 22},
			Bays: []scl.Bay{{Name: "B", ConnectivityNodes: []scl.ConnectivityNode{{Name: "CN", PathName: "S1/VL/B/CN"}}}},
		}},
	}}
	n := 1
	for s := 0; s < subnets; s++ {
		sn := scl.SubNetwork{Name: string(rune('A' + s)), Type: "8-MMS"}
		for a := 0; a < apsPer; a++ {
			name := "IED" + string(rune('A'+s)) + string(rune('0'+a))
			doc.IEDs = append(doc.IEDs, scl.IED{
				Name: name,
				AccessPoints: []scl.AccessPoint{{Name: "AP1", Server: &scl.Server{
					LDevices: []scl.LDevice{{Inst: "LD0"}},
				}}},
			})
			sn.ConnectedAPs = append(sn.ConnectedAPs, scl.ConnectedAP{
				IEDName: name, APName: "AP1",
				Address: scl.Address{Ps: []scl.P{
					{Type: "IP", Value: netem.IPv4{10, 0, byte(s), byte(n)}.String()},
					{Type: "MAC-Address", Value: netem.MAC{2, 0, 0, 0, byte(s), byte(n)}.String()},
				}},
			})
			n++
		}
		doc.Communication.SubNetworks = append(doc.Communication.SubNetworks, sn)
	}
	return doc
}

func TestGenerateNetworkSingleSubnet(t *testing.T) {
	cons, err := sclmerge.SingleSubstation("S1", commDoc(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	built, err := GenerateNetwork(cons)
	if err != nil {
		t.Fatal(err)
	}
	if len(built.Hosts) != 3 {
		t.Errorf("hosts = %d", len(built.Hosts))
	}
	if len(built.Switches) != 1 {
		t.Errorf("switches = %d, want 1 (no WAN for single subnet)", len(built.Switches))
	}
	// Hosts can actually exchange traffic.
	if err := built.Net.Start(); err != nil {
		t.Fatal(err)
	}
	defer built.Net.Stop()
	a := built.Hosts["IEDA0"]
	b := built.Hosts["IEDA1"]
	if _, err := a.ResolveARP(b.IP(), time.Second); err != nil {
		t.Errorf("ARP across generated LAN: %v", err)
	}
}

func TestGenerateNetworkWAN(t *testing.T) {
	cons, err := sclmerge.SingleSubstation("S1", commDoc(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	cons.WAN = scl.WANConfig{LatencyMS: 1}
	built, err := GenerateNetwork(cons)
	if err != nil {
		t.Fatal(err)
	}
	if len(built.Switches) != 4 { // 3 subnet + WAN
		t.Errorf("switches = %d", len(built.Switches))
	}
	if built.Switches["sw-wan"] == nil {
		t.Fatal("no WAN switch")
	}
	if err := built.Net.Start(); err != nil {
		t.Fatal(err)
	}
	defer built.Net.Stop()
	// Cross-subnet reachability through the WAN switch, with latency.
	a := built.Hosts["IEDA0"]
	c := built.Hosts["IEDC1"]
	start := time.Now()
	if _, err := a.ResolveARP(c.IP(), 2*time.Second); err != nil {
		t.Fatalf("cross-WAN ARP: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Errorf("WAN latency not applied: resolved in %v", elapsed)
	}
}

func TestGenerateNetworkErrors(t *testing.T) {
	t.Run("no communication", func(t *testing.T) {
		doc := commDoc(1, 1)
		doc.Communication = nil
		cons := &sclmerge.Consolidated{Doc: doc}
		if _, err := GenerateNetwork(cons); !errors.Is(err, ErrModel) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("missing IP", func(t *testing.T) {
		doc := commDoc(1, 1)
		doc.Communication.SubNetworks[0].ConnectedAPs[0].Address.Ps = nil
		cons := &sclmerge.Consolidated{Doc: doc}
		if _, err := GenerateNetwork(cons); !errors.Is(err, ErrModel) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("bad MAC", func(t *testing.T) {
		doc := commDoc(1, 1)
		doc.Communication.SubNetworks[0].ConnectedAPs[0].Address.Ps[1].Value = "zz"
		cons := &sclmerge.Consolidated{Doc: doc}
		if _, err := GenerateNetwork(cons); !errors.Is(err, ErrModel) {
			t.Errorf("err = %v", err)
		}
	})
}

func TestGenerateNetworkDefaultMAC(t *testing.T) {
	doc := commDoc(1, 1)
	doc.Communication.SubNetworks[0].ConnectedAPs[0].Address.Ps =
		doc.Communication.SubNetworks[0].ConnectedAPs[0].Address.Ps[:1] // IP only
	cons := &sclmerge.Consolidated{Doc: doc}
	built, err := GenerateNetwork(cons)
	if err != nil {
		t.Fatal(err)
	}
	h := built.Hosts["IEDA0"]
	if h.MAC() == (netem.MAC{}) {
		t.Error("no MAC derived")
	}
}

func TestAttachHost(t *testing.T) {
	cons, err := sclmerge.SingleSubstation("S1", commDoc(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	built, err := GenerateNetwork(cons)
	if err != nil {
		t.Fatal(err)
	}
	attacker, err := built.AttachHost("attacker", netem.MAC{2, 0xBA, 0xD0, 0, 0, 1}, netem.IPv4{10, 0, 0, 99}, "sw-A")
	if err != nil {
		t.Fatal(err)
	}
	if err := built.Net.Start(); err != nil {
		t.Fatal(err)
	}
	defer built.Net.Stop()
	if _, err := attacker.ResolveARP(built.Hosts["IEDA0"].IP(), time.Second); err != nil {
		t.Errorf("attached host unreachable: %v", err)
	}
	if _, err := built.AttachHost("x", netem.MAC{2}, netem.IPv4{10, 9, 9, 9}, "ghost"); !errors.Is(err, ErrModel) {
		t.Errorf("attach to unknown switch err = %v", err)
	}
}
