package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/powergrid"
	"repro/internal/powersim"
	"repro/internal/scl"
	"repro/internal/sclmerge"
	"repro/internal/sgmlconf"
)

// ErrModel is returned when the SG-ML model cannot be compiled.
var ErrModel = errors.New("core: invalid SG-ML model")

// Default electrical parameters applied when the Power System Extra Config
// XML does not override an element (documented SG-ML profile defaults).
const (
	defLineLengthKM = 1.0
	defLineR        = 0.10
	defLineX        = 0.35
	defLineC        = 10.0
	defLineMaxIKA   = 0.4
	defLoadPMW      = 0.5
	defLoadQMVAr    = 0.1
	defGenPMW       = 1.0
	defVmPU         = 1.0
	defTrafoSnMVA   = 25.0
	defTrafoVK      = 10.0
	defTrafoVKR     = 0.5
)

// GeneratePowerModel is the SSD Parser stage: it walks every substation of
// the consolidated document and emits the powergrid.Network, merging in the
// electrical parameters of the Power System Extra Config XML and the
// inter-substation ties of the SED.
func GeneratePowerModel(name string, cons *sclmerge.Consolidated, pc *sgmlconf.PowerConfig) (*powergrid.Network, error) {
	if pc == nil {
		pc = &sgmlconf.PowerConfig{BaseMVA: 100}
	}
	net := powergrid.New(name)
	if pc.BaseMVA > 0 {
		net.BaseMVA = pc.BaseMVA
	}

	// Pass 1: buses from connectivity nodes, with their voltage level.
	type busInfo struct {
		vnKV float64
		zone string
	}
	buses := map[string]busInfo{}
	for _, sub := range cons.Doc.Substations {
		for _, vl := range sub.VoltageLevels {
			for _, bay := range vl.Bays {
				for _, node := range bay.ConnectivityNodes {
					if _, dup := buses[node.PathName]; dup {
						return nil, fmt.Errorf("%w: duplicate connectivity node %q", ErrModel, node.PathName)
					}
					buses[node.PathName] = busInfo{vnKV: vl.Voltage.KV(), zone: sub.Name}
					net.AddBus(node.PathName, vl.Voltage.KV(), sub.Name)
				}
			}
		}
	}

	// Pass 2: equipment.
	for _, sub := range cons.Doc.Substations {
		for _, vl := range sub.VoltageLevels {
			for _, bay := range vl.Bays {
				for _, eq := range bay.ConductingEquipments {
					if err := addEquipment(net, pc, sub.Name, bay, eq); err != nil {
						return nil, err
					}
				}
			}
		}
		for _, tr := range sub.PowerTransformers {
			if err := addTransformer(net, pc, tr); err != nil {
				return nil, err
			}
		}
	}

	// Pass 3: breakers (need lines/trafos resolved first).
	for _, sub := range cons.Doc.Substations {
		for _, vl := range sub.VoltageLevels {
			for _, bay := range vl.Bays {
				for _, eq := range bay.ConductingEquipments {
					if eq.Type != scl.TypeBreaker && eq.Type != scl.TypeDisconnector {
						continue
					}
					if err := addSwitch(net, bay, eq); err != nil {
						return nil, err
					}
				}
			}
		}
	}

	// Pass 4: SED ties become inter-substation lines.
	for _, tie := range cons.Ties {
		if _, ok := buses[tie.FromNode]; !ok {
			return nil, fmt.Errorf("%w: tie %q from-node %q not in model", ErrModel, tie.Name, tie.FromNode)
		}
		if _, ok := buses[tie.ToNode]; !ok {
			return nil, fmt.Errorf("%w: tie %q to-node %q not in model", ErrModel, tie.Name, tie.ToNode)
		}
		net.Lines = append(net.Lines, powergrid.Line{
			Name: tie.Name, FromBus: tie.FromNode, ToBus: tie.ToNode,
			LengthKM: tie.LengthKM, ROhmPerKM: tie.ROhmPerKM, XOhmPerKM: tie.XOhmPerKM,
			CNFPerKM: tie.CNFPerKM, MaxIKA: tie.MaxIKA, InService: true,
		})
		if tie.Breaker != "" {
			net.Switches = append(net.Switches, powergrid.Switch{
				Name: tie.Breaker, Bus: tie.ToNode, Element: tie.Name,
				Kind: powergrid.SwitchLine, Closed: true,
			})
		}
	}

	if err := net.Validate(); err != nil {
		return nil, fmt.Errorf("%w: generated power model: %v", ErrModel, err)
	}
	return net, nil
}

func addEquipment(net *powergrid.Network, pc *sgmlconf.PowerConfig, subName string, bay scl.Bay, eq scl.ConductingEquipment) error {
	nodeOf := func(i int) string { return eq.Terminals[i].ConnectivityNode }
	switch eq.Type {
	case scl.TypeLine:
		if len(eq.Terminals) != 2 {
			return fmt.Errorf("%w: line %q needs 2 terminals, has %d", ErrModel, eq.Name, len(eq.Terminals))
		}
		l := powergrid.Line{
			Name: eq.Name, FromBus: nodeOf(0), ToBus: nodeOf(1),
			LengthKM: defLineLengthKM, ROhmPerKM: defLineR, XOhmPerKM: defLineX,
			CNFPerKM: defLineC, MaxIKA: defLineMaxIKA, InService: true,
		}
		if p := pc.Element("line", eq.Name); p != nil {
			if p.LengthKM > 0 {
				l.LengthKM = p.LengthKM
			}
			if p.ROhmPerKM > 0 {
				l.ROhmPerKM = p.ROhmPerKM
			}
			if p.XOhmPerKM > 0 {
				l.XOhmPerKM = p.XOhmPerKM
			}
			if p.CNFPerKM > 0 {
				l.CNFPerKM = p.CNFPerKM
			}
			if p.MaxIKA > 0 {
				l.MaxIKA = p.MaxIKA
			}
		}
		net.Lines = append(net.Lines, l)
	case scl.TypeLoad:
		// Scaling is explicitly 1.0 (ScalingSet) so later load-profile events
		// can zero it out without tripping the unset-field default.
		ld := powergrid.Load{Name: eq.Name, Bus: nodeOf(0), PMW: defLoadPMW, QMVAr: defLoadQMVAr, Scaling: 1, ScalingSet: true, InService: true}
		if p := pc.Element("load", eq.Name); p != nil {
			if p.PMW != 0 {
				ld.PMW = p.PMW
			}
			ld.QMVAr = p.QMVAr
		}
		net.Loads = append(net.Loads, ld)
	case scl.TypeGenerator:
		g := powergrid.Generator{Name: eq.Name, Bus: nodeOf(0), PMW: defGenPMW, VmPU: defVmPU, InService: true}
		if p := pc.Element("gen", eq.Name); p != nil {
			if p.PMW != 0 {
				g.PMW = p.PMW
			}
			if p.VmPU > 0 {
				g.VmPU = p.VmPU
			}
			g.MinQMVAr = p.MinQMVAr
			g.MaxQMVAr = p.MaxQMVAr
		}
		net.Gens = append(net.Gens, g)
	case scl.TypeExternalGrid:
		e := powergrid.ExternalGrid{Name: eq.Name, Bus: nodeOf(0), VmPU: defVmPU}
		if p := pc.Element("extgrid", eq.Name); p != nil && p.VmPU > 0 {
			e.VmPU = p.VmPU
		}
		net.Externals = append(net.Externals, e)
	case scl.TypePV, scl.TypeBattery:
		sg := powergrid.StaticGenerator{Name: eq.Name, Bus: nodeOf(0), PMW: defLoadPMW, InService: true}
		if p := pc.Element("sgen", eq.Name); p != nil {
			sg.PMW = p.PMW
			sg.QMVAr = p.QMVAr
		}
		net.SGens = append(net.SGens, sg)
	case scl.TypeCapacitor:
		sh := powergrid.Shunt{Name: eq.Name, Bus: nodeOf(0), InService: true}
		if p := pc.Element("shunt", eq.Name); p != nil {
			sh.PMW = p.PMW
			sh.QMVAr = p.QMVAr
		}
		net.Shunts = append(net.Shunts, sh)
	case scl.TypeBreaker, scl.TypeDisconnector:
		// Handled in pass 3.
	default:
		return fmt.Errorf("%w: equipment %q has unsupported type %q", ErrModel, eq.Name, eq.Type)
	}
	_ = subName
	_ = bay
	return nil
}

func addTransformer(net *powergrid.Network, pc *sgmlconf.PowerConfig, tr scl.PowerTransformer) error {
	if len(tr.Windings) != 2 || len(tr.Windings[0].Terminals) == 0 || len(tr.Windings[1].Terminals) == 0 {
		return fmt.Errorf("%w: transformer %q needs 2 connected windings", ErrModel, tr.Name)
	}
	hvBus := tr.Windings[0].Terminals[0].ConnectivityNode
	lvBus := tr.Windings[1].Terminals[0].ConnectivityNode
	hvIdx, lvIdx := net.BusIndex(hvBus), net.BusIndex(lvBus)
	if hvIdx < 0 || lvIdx < 0 {
		return fmt.Errorf("%w: transformer %q references unknown nodes", ErrModel, tr.Name)
	}
	// Higher-voltage winding first, regardless of declaration order.
	if net.Buses[hvIdx].VnKV < net.Buses[lvIdx].VnKV {
		hvBus, lvBus = lvBus, hvBus
		hvIdx, lvIdx = lvIdx, hvIdx
	}
	t := powergrid.Transformer{
		Name: tr.Name, HVBus: hvBus, LVBus: lvBus,
		SnMVA: defTrafoSnMVA, VKPercent: defTrafoVK, VKRPercent: defTrafoVKR,
		VnHVKV: net.Buses[hvIdx].VnKV, VnLVKV: net.Buses[lvIdx].VnKV,
		InService: true,
	}
	if p := pc.Element("trafo", tr.Name); p != nil {
		if p.SnMVA > 0 {
			t.SnMVA = p.SnMVA
		}
		if p.VKPercent > 0 {
			t.VKPercent = p.VKPercent
		}
		if p.VKRPercent > 0 {
			t.VKRPercent = p.VKRPercent
		}
	}
	net.Trafos = append(net.Trafos, t)
	return nil
}

// addSwitch resolves which element a breaker/disconnector guards, per the
// SG-ML profile convention:
//   - two terminals: bus-bus coupler between the two nodes;
//   - one terminal: the line in the same bay, else any line at the same
//     node, else a transformer winding at the node.
func addSwitch(net *powergrid.Network, bay scl.Bay, eq scl.ConductingEquipment) error {
	if len(eq.Terminals) == 2 {
		net.Switches = append(net.Switches, powergrid.Switch{
			Name: eq.Name, Bus: eq.Terminals[0].ConnectivityNode,
			Element: eq.Terminals[1].ConnectivityNode,
			Kind:    powergrid.SwitchBusBus, Closed: true,
		})
		return nil
	}
	if len(eq.Terminals) != 1 {
		return fmt.Errorf("%w: breaker %q needs 1 or 2 terminals, has %d", ErrModel, eq.Name, len(eq.Terminals))
	}
	node := eq.Terminals[0].ConnectivityNode
	// Same-bay line first.
	for _, other := range bay.ConductingEquipments {
		if other.Type == scl.TypeLine && other.Name != eq.Name {
			net.Switches = append(net.Switches, powergrid.Switch{
				Name: eq.Name, Bus: node, Element: other.Name,
				Kind: powergrid.SwitchLine, Closed: true,
			})
			return nil
		}
	}
	// Any line touching the node.
	for i := range net.Lines {
		l := &net.Lines[i]
		if l.FromBus == node || l.ToBus == node {
			net.Switches = append(net.Switches, powergrid.Switch{
				Name: eq.Name, Bus: node, Element: l.Name,
				Kind: powergrid.SwitchLine, Closed: true,
			})
			return nil
		}
	}
	// A transformer winding at the node.
	for i := range net.Trafos {
		t := &net.Trafos[i]
		if t.HVBus == node || t.LVBus == node {
			net.Switches = append(net.Switches, powergrid.Switch{
				Name: eq.Name, Bus: node, Element: t.Name,
				Kind: powergrid.SwitchTrafo, Closed: true,
			})
			return nil
		}
	}
	return fmt.Errorf("%w: breaker %q at %q guards no line or transformer", ErrModel, eq.Name, node)
}

// PowerEvents converts Power System Extra Config XML steps into neutral
// event specs (the load-profile / contingency time series of §III-B). The
// specs are one compile-time source of the scenario event model: Compile
// validates them against the generated grid and schedules them into the
// simulator; Scenario runs express the same actions via the typed DSL.
func PowerEvents(pc *sgmlconf.PowerConfig) ([]EventSpec, error) {
	if pc == nil {
		return nil, nil
	}
	out := make([]EventSpec, 0, len(pc.Steps))
	for _, s := range pc.Steps {
		out = append(out, EventSpec{AtMS: s.AtMS, Kind: s.Kind, Element: s.Element, Value: s.Value})
	}
	return out, nil
}

// EventSpec is a scenario step in neutral form (decoupled from powersim so
// the public API does not leak the simulator's types). It is the wire form
// of the scenario layer's power actions: Action converts a spec into the
// typed DSL event, and the supplementary-XML power steps compile through it.
type EventSpec struct {
	AtMS    int
	Kind    string
	Element string
	Value   float64
}

// powerKinds maps the neutral step-kind vocabulary (shared by the
// supplementary XML schema and the scenario DSL) onto simulator event kinds.
var powerKinds = map[string]powersim.EventKind{
	"loadScale":   powersim.SetLoadScale,
	"loadP":       powersim.SetLoadP,
	"genP":        powersim.SetGenP,
	"sgenP":       powersim.SetSGenP,
	"switch":      powersim.SetSwitch,
	"lineService": powersim.SetLineService,
}

// Action converts the spec into its typed scenario-DSL action.
func (s EventSpec) Action() Action {
	return PowerStep{Kind: s.Kind, Element: s.Element, Value: s.Value}
}

// SimEvent converts the spec into a scheduled simulator event.
func (s EventSpec) SimEvent() (powersim.Event, error) {
	k, ok := powerKinds[s.Kind]
	if !ok {
		return powersim.Event{}, fmt.Errorf("%w: step kind %q", ErrModel, s.Kind)
	}
	return powersim.Event{
		At: time.Duration(s.AtMS) * time.Millisecond, Kind: k,
		Element: s.Element, Value: s.Value,
	}, nil
}

// Validate checks that the spec's kind is known and its element resolves in
// the generated power model, so a broken scenario step fails Compile instead
// of being discovered (or silently dropped) at runtime.
func (s EventSpec) Validate(grid *powergrid.Network) error {
	return validatePowerAction(grid, s.Kind, s.Element)
}

// validatePowerAction resolves (kind, element) against the power model. It
// backs both the compile-time validation of supplementary-XML steps and the
// scenario layer's pre-run validation of power actions.
func validatePowerAction(grid *powergrid.Network, kind, element string) error {
	if _, ok := powerKinds[kind]; !ok {
		return fmt.Errorf("unknown event kind %q", kind)
	}
	var found bool
	switch kind {
	case "loadScale", "loadP":
		found = grid.FindLoad(element) != nil
	case "genP":
		found = grid.FindGen(element) != nil
	case "sgenP":
		found = grid.FindSGen(element) != nil
	case "switch":
		found = grid.FindSwitch(element) != nil
	case "lineService":
		found = grid.FindLine(element) != nil
	}
	if !found {
		return fmt.Errorf("%s element %q not in the power model", kindElementNoun(kind), element)
	}
	return nil
}

// kindElementNoun names the element class an event kind addresses.
func kindElementNoun(kind string) string {
	switch kind {
	case "loadScale", "loadP":
		return "load"
	case "genP":
		return "generator"
	case "sgenP":
		return "static generator"
	case "switch":
		return "breaker/switch"
	case "lineService":
		return "line"
	}
	return "element"
}
