package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestCampaignForkDifferential is the differential fingerprint check behind
// the fork fast path: the same campaign — sweeping both step engines, both
// data planes, repeats and several seeds — executed once on the default
// compile-once-fork-per-run path and once under WithPerRunCompile must
// produce the identical fingerprint for every (variant, seed, attempt)
// triple. Any divergence means a fork leaked or dropped state relative to a
// fresh compile.
func TestCampaignForkDifferential(t *testing.T) {
	ms := epicModelSet(t)
	sc := redBlueScenario()
	pooled, unpooled := true, false
	c := &Campaign{Name: "fork-diff", Model: ms, Variants: []CampaignVariant{
		{Name: "parallel-pooled", Scenario: sc, Seeds: []int64{7, 11}, Repeat: 2},
		{Name: "sequential", Scenario: sc, Seeds: []int64{7}, Sequential: true, FramePooling: &pooled},
		{Name: "parallel-unpooled", Scenario: sc, Seeds: []int64{7}, FramePooling: &unpooled},
	}}

	key := func(r *CampaignRun) string {
		return fmt.Sprintf("%s/%d#%d", r.Variant, r.Seed, r.Attempt)
	}
	collect := func(t *testing.T, opts ...CampaignOption) map[string]string {
		t.Helper()
		rep, err := RunCampaign(context.Background(), c, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("campaign not OK:\n%s", rep.String())
		}
		out := make(map[string]string, len(rep.Runs))
		for i := range rep.Runs {
			out[key(&rep.Runs[i])] = rep.Runs[i].fingerprint
		}
		return out
	}

	forked := collect(t, WithWorkers(2))
	perRun := collect(t, WithWorkers(2), WithPerRunCompile())
	if len(forked) != len(perRun) {
		t.Fatalf("run counts differ: forked %d, per-run-compile %d", len(forked), len(perRun))
	}
	for k, want := range perRun {
		if got := forked[k]; got != want {
			t.Errorf("%s: forked fingerprint diverged from per-run compile\n--- per-run ---\n%s\n--- forked ---\n%s", k, want, got)
		}
	}
}

// TestCampaignRootCompileFailure pins that a root compile error under the
// fork path is recorded on every affected run — same contract as the old
// per-run compile error — without aborting the sweep.
func TestCampaignRootCompileFailure(t *testing.T) {
	c := &Campaign{Name: "broken", Model: &ModelSet{Name: "empty"}, Variants: []CampaignVariant{
		{Name: "v", Scenario: &Scenario{Name: "s", Steps: 2}, Seeds: []int64{1, 2}},
	}}
	rep, err := RunCampaign(context.Background(), c, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 2 {
		t.Fatalf("failures = %d, want 2", rep.Failures)
	}
	for _, run := range rep.Runs {
		if !strings.Contains(run.Err, "compile:") {
			t.Errorf("run %s/%d: err = %q, want compile error", run.Variant, run.Seed, run.Err)
		}
	}
}

// TestCampaignEmptySeeds pins the fail-fast contract for zero-run sweeps: a
// non-nil empty seed list names the variant instead of silently contributing
// no runs, while a nil list keeps the scenario-seed default.
func TestCampaignEmptySeeds(t *testing.T) {
	ms := &ModelSet{Name: "m"}
	c := &Campaign{Name: "c", Model: ms, Variants: []CampaignVariant{
		{Name: "ok", Scenario: &Scenario{Name: "s", Seed: 3}},
		{Name: "hollow", Scenario: &Scenario{Name: "s"}, Seeds: []int64{}},
	}}
	_, err := c.normalizedVariants()
	if !errors.Is(err, ErrCampaign) {
		t.Fatalf("err = %v, want ErrCampaign", err)
	}
	if !strings.Contains(err.Error(), "hollow") {
		t.Errorf("err %q does not name the variant", err)
	}
	if !strings.Contains(err.Error(), "empty seed list") {
		t.Errorf("err %q does not explain the empty seed list", err)
	}
}
