package core

import (
	"fmt"
	"time"

	"repro/internal/netem"
	"repro/internal/sclmerge"
)

// BuiltNetwork is the cyber network emulation model generated from the SCD
// communication section: one switch per subnetwork, one host per connected
// access point, and — for multi-substation models — a central WAN switch
// joining the subnetwork switches ("the WAN is abstracted as a single switch
// connected to all substations", §III-B). The same central switch joins the
// per-segment LANs of a single substation, matching Fig 4's topology.
type BuiltNetwork struct {
	Net      *netem.Network
	Hosts    map[string]*netem.Host // IED/PLC/SCADA name -> host
	Switches map[string]*netem.Switch
	// AddrOf records each node's parsed address.
	AddrOf map[string]netem.IPv4
}

// GenerateNetwork is the Mininet-launcher stage.
func GenerateNetwork(cons *sclmerge.Consolidated) (*BuiltNetwork, error) {
	return generateNetwork(cons, nil)
}

// generateNetwork is GenerateNetwork with an optional inbox recycler: the
// compiled-range fork path threads one recycler through every fabric it
// generates so a fork re-uses the drained device inboxes of stopped siblings
// (allocating and zeroing those channels dominates fabric construction at
// scale).
func generateNetwork(cons *sclmerge.Consolidated, rc *netem.InboxRecycler) (*BuiltNetwork, error) {
	doc := cons.Doc
	if doc.Communication == nil || len(doc.Communication.SubNetworks) == 0 {
		return nil, fmt.Errorf("%w: no communication section", ErrModel)
	}
	out := &BuiltNetwork{
		Net:      netem.NewNetwork(),
		Hosts:    make(map[string]*netem.Host),
		Switches: make(map[string]*netem.Switch),
		AddrOf:   make(map[string]netem.IPv4),
	}
	if rc != nil {
		if err := out.Net.UseInboxRecycler(rc); err != nil {
			return nil, err
		}
	}
	wanLatency := time.Duration(cons.WAN.LatencyMS * float64(time.Millisecond))

	// Central switch (WAN or intra-substation backbone).
	multi := len(doc.Communication.SubNetworks) > 1
	var core *netem.Switch
	if multi {
		sw, err := netem.NewSwitch(out.Net, "sw-wan", len(doc.Communication.SubNetworks)+2)
		if err != nil {
			return nil, err
		}
		core = sw
		out.Switches["sw-wan"] = sw
	}

	corePort := 0
	for _, sn := range doc.Communication.SubNetworks {
		swName := "sw-" + sanitize(sn.Name)
		sw, err := netem.NewSwitch(out.Net, swName, len(sn.ConnectedAPs)+2)
		if err != nil {
			return nil, err
		}
		out.Switches[swName] = sw
		for i, ap := range sn.ConnectedAPs {
			ipStr := ap.Address.Get("IP")
			macStr := ap.Address.Get("MAC-Address")
			if ipStr == "" {
				return nil, fmt.Errorf("%w: IED %q has no IP address", ErrModel, ap.IEDName)
			}
			ip, err := netem.ParseIPv4(ipStr)
			if err != nil {
				return nil, fmt.Errorf("%w: IED %q: %v", ErrModel, ap.IEDName, err)
			}
			var mac netem.MAC
			if macStr != "" {
				mac, err = netem.ParseMAC(macStr)
				if err != nil {
					return nil, fmt.Errorf("%w: IED %q: %v", ErrModel, ap.IEDName, err)
				}
			} else {
				mac = netem.MAC{0x02, 0x00, ip[0], ip[1], ip[2], ip[3]}
			}
			host, err := netem.NewHost(out.Net, ap.IEDName, mac, ip)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrModel, err)
			}
			if _, err := out.Net.Connect(ap.IEDName, 0, swName, i, 0); err != nil {
				return nil, err
			}
			out.Hosts[ap.IEDName] = host
			out.AddrOf[ap.IEDName] = ip
		}
		if core != nil {
			// Uplink on the subnet switch's last port.
			if _, err := out.Net.Connect(swName, len(sn.ConnectedAPs), "sw-wan", corePort, wanLatency); err != nil {
				return nil, err
			}
			corePort++
		}
	}
	return out, nil
}

// AttachHost adds an extra node (e.g. an attacker box, the "own devices
// connected to the cyber range" usage of §IV-B) to a named switch.
func (b *BuiltNetwork) AttachHost(name string, mac netem.MAC, ip netem.IPv4, switchName string) (*netem.Host, error) {
	sw, ok := b.Switches[switchName]
	if !ok {
		return nil, fmt.Errorf("%w: unknown switch %q", ErrModel, switchName)
	}
	host, err := netem.NewHost(b.Net, name, mac, ip)
	if err != nil {
		return nil, err
	}
	// Find a free port: scan used ports on the switch.
	port, err := b.freePort(switchName, sw.NumPorts())
	if err != nil {
		return nil, err
	}
	if _, err := b.Net.Connect(name, 0, switchName, port, 0); err != nil {
		return nil, err
	}
	b.Hosts[name] = host
	b.AddrOf[name] = ip
	return host, nil
}

func (b *BuiltNetwork) freePort(switchName string, numPorts int) (int, error) {
	used := map[int]bool{}
	for _, l := range b.Net.Links() {
		devA, portA, devB, portB := l.Endpoints()
		if devA == switchName {
			used[portA] = true
		}
		if devB == switchName {
			used[portB] = true
		}
	}
	for p := 0; p < numPorts; p++ {
		if !used[p] {
			return p, nil
		}
	}
	return 0, fmt.Errorf("%w: switch %q has no free ports", ErrModel, switchName)
}

func sanitize(s string) string {
	out := []rune(s)
	for i, r := range out {
		if r == '/' || r == ' ' {
			out[i] = '-'
		}
	}
	return string(out)
}
