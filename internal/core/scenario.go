package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/attack"
	"repro/internal/ids"
	"repro/internal/mms"
	"repro/internal/modbus"
	"repro/internal/netem"
	"repro/internal/sgmlconf"
)

// ErrScenario is returned when a scenario cannot be validated against the
// compiled range, or cannot be run.
var ErrScenario = errors.New("core: invalid scenario")

// Scenario is a declarative, reproducible experiment: attacker placements
// plus a list of typed events, each pairing a trigger (step index, simulated
// time offset, or an observed condition) with an action (a power fault, a
// network impairment, an attack step, or sensor deployment). RunScenario
// executes it deterministically against a compiled range.
type Scenario struct {
	Name string
	// Steps is the number of simulation intervals to run. Zero derives a
	// default: five steps past the last timed event (at least ten).
	Steps int
	// Seed is the default replay seed (WithSeed overrides; zero means 1).
	// It drives every randomised choice of the run — attacker MAC
	// derivation, port-scan order, the fabric's loss generator — so a fixed
	// (model, scenario, seed) triple replays identically.
	Seed int64
	// Attackers are extra hosts attached to named switches before the range
	// starts (the "own devices connected to the cyber range" usage, §IV-B).
	Attackers []AttackerSpec
	Events    []ScenarioEvent
}

// AttackerSpec places an attacker host on the emulated fabric.
type AttackerSpec struct {
	Name   string
	Switch string     // switch to cable into (e.g. "sw-TransLAN")
	IP     netem.IPv4 // required
	MAC    netem.MAC  // zero derives a deterministic MAC from the run seed
}

// ScenarioEvent pairs a trigger with an action.
type ScenarioEvent struct {
	Name    string // optional; defaults to "event-<n>"
	Trigger Trigger
	Action  Action
}

// ---------------------------------------------------------------------------
// Triggers
// ---------------------------------------------------------------------------

type triggerKind int

const (
	trigAtStep triggerKind = iota
	trigAfter
	trigBreakerOpen
	trigBreakerClose
	trigAlert
	trigDeadBuses
)

// Trigger decides when an event fires. Timed triggers (At, After) resolve to
// a step index up front; condition triggers are evaluated at every step
// boundary against committed state, and fire at the next boundary after the
// condition first holds (plus any Plus delay). Both paths are evaluated in
// the step loop's hooks, never concurrently with a step, so triggering is
// deterministic under either engine.
type Trigger struct {
	kind    triggerKind
	step    int
	offset  time.Duration
	element string
	alert   ids.AlertKind
	count   int
	delay   int
}

// At triggers at the given zero-based step index.
func At(step int) Trigger { return Trigger{kind: trigAtStep, step: step} }

// After triggers at the first step whose start is >= the given simulated-time
// offset from the run's beginning (offset / interval, rounded up).
func After(offset time.Duration) Trigger { return Trigger{kind: trigAfter, offset: offset} }

// OnBreakerOpen triggers at the step boundary after the named breaker or
// switch is first observed open.
func OnBreakerOpen(breaker string) Trigger {
	return Trigger{kind: trigBreakerOpen, element: breaker}
}

// OnBreakerClose triggers at the step boundary after the named breaker or
// switch is first observed closed.
func OnBreakerClose(breaker string) Trigger {
	return Trigger{kind: trigBreakerClose, element: breaker}
}

// OnAlert triggers at the step boundary after any deployed IDS sensor has
// raised at least one alert of the given kind.
func OnAlert(kind ids.AlertKind) Trigger { return Trigger{kind: trigAlert, alert: kind} }

// OnDeadBuses triggers at the step boundary after the solved grid first
// reports at least n de-energised buses.
func OnDeadBuses(n int) Trigger { return Trigger{kind: trigDeadBuses, count: n} }

// Plus delays the trigger by extra steps after it would otherwise fire.
func (t Trigger) Plus(steps int) Trigger {
	t.delay += steps
	return t
}

// describe renders the trigger for reports and validation errors.
func (t Trigger) describe() string {
	var s string
	switch t.kind {
	case trigAtStep:
		s = fmt.Sprintf("at step %d", t.step)
	case trigAfter:
		s = fmt.Sprintf("after %v", t.offset)
	case trigBreakerOpen:
		s = fmt.Sprintf("on breaker %s open", t.element)
	case trigBreakerClose:
		s = fmt.Sprintf("on breaker %s close", t.element)
	case trigAlert:
		s = fmt.Sprintf("on alert %s", t.alert)
	case trigDeadBuses:
		s = fmt.Sprintf("on >=%d dead buses", t.count)
	}
	if t.delay > 0 {
		s += fmt.Sprintf(" +%d", t.delay)
	}
	return s
}

// ---------------------------------------------------------------------------
// Actions
// ---------------------------------------------------------------------------

// Action is one typed scenario action. Implementations cover the power model
// (PowerStep and its sugar constructors), network impairments (LinkDown/
// LinkUp/LinkFlap/LinkLoss/LinkLatency), attack steps (PortScan,
// FalseCommand, StartMITM, StopMITM) and sensor deployment (DeployIDS).
type Action interface {
	describe() string
	validate(v *scenarioValidator) error
	apply(rt *scenarioRun, ev *eventState) (detail string, err error)
}

// --- power actions ---------------------------------------------------------

// PowerStep is the generic power-model action, in the shared kind vocabulary
// of the supplementary XML ("loadScale", "loadP", "genP", "sgenP", "switch",
// "lineService"). The sugar constructors below cover the common cases.
type PowerStep struct {
	Kind    string
	Element string
	Value   float64
}

// OpenBreaker opens the named breaker/switch in the power model.
func OpenBreaker(breaker string) PowerStep {
	return PowerStep{Kind: "switch", Element: breaker, Value: 0}
}

// CloseBreaker closes the named breaker/switch in the power model.
func CloseBreaker(breaker string) PowerStep {
	return PowerStep{Kind: "switch", Element: breaker, Value: 1}
}

// ScaleLoad multiplies the named load's nominal power by factor (0 sheds it).
func ScaleLoad(load string, factor float64) PowerStep {
	return PowerStep{Kind: "loadScale", Element: load, Value: factor}
}

// SetLoadMW overrides the named load's absolute active power.
func SetLoadMW(load string, mw float64) PowerStep {
	return PowerStep{Kind: "loadP", Element: load, Value: mw}
}

// SetGenMW overrides the named generator's active power.
func SetGenMW(gen string, mw float64) PowerStep {
	return PowerStep{Kind: "genP", Element: gen, Value: mw}
}

// SetSGenMW overrides the named static generator's active power.
func SetSGenMW(sgen string, mw float64) PowerStep {
	return PowerStep{Kind: "sgenP", Element: sgen, Value: mw}
}

// FailLine forces the named line out of service (a line fault).
func FailLine(line string) PowerStep {
	return PowerStep{Kind: "lineService", Element: line, Value: 0}
}

// RestoreLine returns the named line to service.
func RestoreLine(line string) PowerStep {
	return PowerStep{Kind: "lineService", Element: line, Value: 1}
}

func (a PowerStep) describe() string {
	return fmt.Sprintf("power %s %s=%g", a.Kind, a.Element, a.Value)
}

func (a PowerStep) validate(v *scenarioValidator) error {
	return validatePowerAction(v.r.Grid, a.Kind, a.Element)
}

func (a PowerStep) apply(rt *scenarioRun, _ *eventState) (string, error) {
	spec := EventSpec{Kind: a.Kind, Element: a.Element, Value: a.Value}
	ev, err := spec.SimEvent()
	if err != nil {
		return "", err
	}
	if err := rt.r.Sim.Apply(ev); err != nil {
		return "", err
	}
	return fmt.Sprintf("%s %s=%g applied", a.Kind, a.Element, a.Value), nil
}

// --- network impairments ---------------------------------------------------

func validateLink(v *scenarioValidator, a, b string) error {
	if v.r.Net.LinkBetween(a, b) == nil {
		return fmt.Errorf("no link between %q and %q", a, b)
	}
	return nil
}

// LinkDown pulls the cable between two named devices (host or switch).
type LinkDown struct{ A, B string }

func (a LinkDown) describe() string                    { return fmt.Sprintf("link %s<->%s down", a.A, a.B) }
func (a LinkDown) validate(v *scenarioValidator) error { return validateLink(v, a.A, a.B) }
func (a LinkDown) apply(rt *scenarioRun, _ *eventState) (string, error) {
	rt.r.Net.LinkBetween(a.A, a.B).SetUp(false)
	return "link down", nil
}

// LinkUp restores the cable between two named devices.
type LinkUp struct{ A, B string }

func (a LinkUp) describe() string                    { return fmt.Sprintf("link %s<->%s up", a.A, a.B) }
func (a LinkUp) validate(v *scenarioValidator) error { return validateLink(v, a.A, a.B) }
func (a LinkUp) apply(rt *scenarioRun, _ *eventState) (string, error) {
	rt.r.Net.LinkBetween(a.A, a.B).SetUp(true)
	return "link up", nil
}

// LinkFlap pulls the cable for DownSteps simulation steps, then restores it.
type LinkFlap struct {
	A, B      string
	DownSteps int
}

func (a LinkFlap) describe() string {
	return fmt.Sprintf("link %s<->%s flap (%d steps)", a.A, a.B, a.DownSteps)
}
func (a LinkFlap) validate(v *scenarioValidator) error {
	if a.DownSteps < 1 {
		return fmt.Errorf("flap DownSteps %d, need >= 1", a.DownSteps)
	}
	return validateLink(v, a.A, a.B)
}
func (a LinkFlap) apply(rt *scenarioRun, ev *eventState) (string, error) {
	l := rt.r.Net.LinkBetween(a.A, a.B)
	l.SetUp(false)
	rt.scheduleRestore(ev.firedAt+a.DownSteps, func() { l.SetUp(true) })
	return fmt.Sprintf("down until step %d", ev.firedAt+a.DownSteps), nil
}

// LinkLoss sets the per-frame loss rate (0..1) on the link between two
// devices. The loss draws come from the fabric's seeded generator, so the
// draw sequence replays with the seed; which frame consumes which draw still
// depends on delivery-goroutine scheduling, so byte-identical RunReport
// replay is only guaranteed for scenarios whose deterministic outcomes do
// not ride on lossy links (impair GOOSE/SV telemetry freely; avoid loss on
// links carrying the attack path or PLC/SCADA polls you assert on).
type LinkLoss struct {
	A, B string
	Rate float64
}

func (a LinkLoss) describe() string {
	return fmt.Sprintf("link %s<->%s loss=%.2f", a.A, a.B, a.Rate)
}
func (a LinkLoss) validate(v *scenarioValidator) error {
	if a.Rate < 0 || a.Rate > 1 {
		return fmt.Errorf("loss rate %v outside [0,1]", a.Rate)
	}
	return validateLink(v, a.A, a.B)
}
func (a LinkLoss) apply(rt *scenarioRun, _ *eventState) (string, error) {
	rt.r.Net.LinkBetween(a.A, a.B).SetLossRate(a.Rate)
	return fmt.Sprintf("loss rate %.2f", a.Rate), nil
}

// LinkLatency sets the one-way propagation delay on the link between two
// devices.
type LinkLatency struct {
	A, B    string
	Latency time.Duration
}

func (a LinkLatency) describe() string {
	return fmt.Sprintf("link %s<->%s latency=%v", a.A, a.B, a.Latency)
}
func (a LinkLatency) validate(v *scenarioValidator) error {
	if a.Latency < 0 {
		return fmt.Errorf("negative latency %v", a.Latency)
	}
	return validateLink(v, a.A, a.B)
}
func (a LinkLatency) apply(rt *scenarioRun, _ *eventState) (string, error) {
	rt.r.Net.LinkBetween(a.A, a.B).SetLatency(a.Latency)
	return fmt.Sprintf("latency %v", a.Latency), nil
}

// --- attack steps ----------------------------------------------------------

// DefaultScanPorts is the port list a PortScan probes when none is given.
var DefaultScanPorts = []uint16{21, 22, 23, 80, 102, 443, 502, 2404}

// PortScan runs a TCP connect scan from an attacker against a named node
// (the "Nmap on a virtual node" reconnaissance of §IV-B). The probe order is
// shuffled with the run's seeded RNG.
type PortScan struct {
	Attacker string
	Target   string
	Ports    []uint16 // nil uses DefaultScanPorts
}

func (a PortScan) describe() string { return fmt.Sprintf("port scan %s -> %s", a.Attacker, a.Target) }
func (a PortScan) validate(v *scenarioValidator) error {
	if err := v.attacker(a.Attacker); err != nil {
		return err
	}
	return v.node(a.Target)
}
func (a PortScan) apply(rt *scenarioRun, ev *eventState) (string, error) {
	host := rt.attackers[a.Attacker]
	ports := append([]uint16(nil), a.Ports...)
	if len(ports) == 0 {
		ports = append(ports, DefaultScanPorts...)
	}
	rt.rng.Shuffle(len(ports), func(i, j int) { ports[i], ports[j] = ports[j], ports[i] })
	results := attack.ScanPorts(host, rt.r.Built.AddrOf[a.Target], ports)
	openPorts := make([]int, 0, len(results))
	for _, res := range results {
		if res.Open {
			openPorts = append(openPorts, int(res.Port))
		}
	}
	sort.Ints(openPorts)
	open := make([]string, len(openPorts))
	for i, p := range openPorts {
		open[i] = fmt.Sprintf("%d", p)
	}
	rt.expect(ev, ids.AlertPortScan, host.IP().String())
	return fmt.Sprintf("%d ports probed, open: [%s]", len(ports), strings.Join(open, " ")), nil
}

// FalseCommand injects a standard-compliant MMS write from an attacker into
// a named IED (the false-command-injection case study, §IV-B). Value helpers:
// mms.NewBool / mms.NewFloat.
type FalseCommand struct {
	Attacker string
	Target   string
	Ref      string // MMS object reference, e.g. "LD0/XCBR1.Pos.Oper"
	Value    mms.Value
}

func (a FalseCommand) describe() string {
	return fmt.Sprintf("false command %s -> %s %s=%s", a.Attacker, a.Target, a.Ref, a.Value)
}
func (a FalseCommand) validate(v *scenarioValidator) error {
	if err := v.attacker(a.Attacker); err != nil {
		return err
	}
	if !mms.ObjectReference(a.Ref).Valid() {
		return fmt.Errorf("invalid MMS reference %q", a.Ref)
	}
	return v.node(a.Target)
}
func (a FalseCommand) apply(rt *scenarioRun, ev *eventState) (string, error) {
	host := rt.attackers[a.Attacker]
	fci := rt.fcis[a.Attacker]
	if fci == nil {
		fci = attack.NewFCI(host)
		rt.fcis[a.Attacker] = fci
	}
	if err := fci.InjectCommand(rt.r.Built.AddrOf[a.Target], 0, mms.ObjectReference(a.Ref), a.Value); err != nil {
		return "", err
	}
	// Ground truth only counts injections that reached the wire: a failed
	// attack must not drag recall down for an alert that could never fire.
	rt.expect(ev, ids.AlertUnauthorizedWrite, host.IP().String())
	return fmt.Sprintf("injected %s=%s", a.Ref, a.Value), nil
}

// StartMITM mounts an ARP-spoofing man-in-the-middle between two victims
// from an attacker (Fig 6). ScaleFloats != 0 installs the MMS float rewrite
// with that factor (1.0 = pure interception); Blackhole drops intercepted
// traffic instead. ForSteps > 0 auto-withdraws after that many steps;
// otherwise the MITM runs until a StopMITM event or the end of the run.
type StartMITM struct {
	Attacker    string
	VictimA     string
	VictimB     string
	ScaleFloats float64
	Blackhole   bool
	ForSteps    int
}

func (a StartMITM) describe() string {
	return fmt.Sprintf("mitm %s between %s and %s", a.Attacker, a.VictimA, a.VictimB)
}
func (a StartMITM) validate(v *scenarioValidator) error {
	if err := v.attacker(a.Attacker); err != nil {
		return err
	}
	if err := v.node(a.VictimA); err != nil {
		return err
	}
	if err := v.node(a.VictimB); err != nil {
		return err
	}
	if a.ForSteps < 0 {
		return fmt.Errorf("negative ForSteps %d", a.ForSteps)
	}
	return nil
}
func (a StartMITM) apply(rt *scenarioRun, ev *eventState) (string, error) {
	host := rt.attackers[a.Attacker]
	if rt.mitms[a.Attacker] != nil {
		return "", fmt.Errorf("attacker %q already has an active MITM", a.Attacker)
	}
	m := attack.NewMITM(host, rt.r.Built.AddrOf[a.VictimA], rt.r.Built.AddrOf[a.VictimB])
	if a.Blackhole {
		m.SetBlackhole(true)
	} else if a.ScaleFloats != 0 {
		m.SetPayloadTamper(attack.ScaleMMSFloats(a.ScaleFloats))
	}
	if err := m.Start(rt.ctx); err != nil {
		return "", err
	}
	// As with FalseCommand: only a mounted MITM (poisoning already sent
	// during Start) becomes ground truth.
	rt.expect(ev, ids.AlertARPSpoof, host.MAC().String())
	rt.mitms[a.Attacker] = m
	detail := "mounted"
	if a.ForSteps > 0 {
		until := ev.firedAt + a.ForSteps
		rt.scheduleRestore(until, func() {
			if rt.mitms[a.Attacker] == m {
				m.Stop()
				delete(rt.mitms, a.Attacker)
			}
		})
		detail = fmt.Sprintf("mounted until step %d", until)
	}
	return detail, nil
}

// StopMITM withdraws an attacker's active MITM, healing the victims' ARP
// caches.
type StopMITM struct{ Attacker string }

func (a StopMITM) describe() string                    { return fmt.Sprintf("stop mitm %s", a.Attacker) }
func (a StopMITM) validate(v *scenarioValidator) error { return v.attacker(a.Attacker) }
func (a StopMITM) apply(rt *scenarioRun, _ *eventState) (string, error) {
	m := rt.mitms[a.Attacker]
	if m == nil {
		return "", fmt.Errorf("attacker %q has no active MITM", a.Attacker)
	}
	m.Stop()
	delete(rt.mitms, a.Attacker)
	return "withdrawn", nil
}

// ModbusTamper injects a Modbus/TCP write from an attacker into a PLC's
// northbound server — the logic-manipulation counterpart of FalseCommand.
// Where FalseCommand speaks IEC 61850 MMS to an IED, ModbusTamper speaks the
// SCADA protocol to the PLC layer (internal/modbus against the ST runtime):
// a coil write lands in the PLC's pending-command queue and is applied by its
// next scan, so a tampered command coil drives the control logic exactly as a
// SCADA operator action would. Table selects what is written: "coil" (Value
// != 0 asserts the coil) or "holding" (Value is the register word).
//
// The write is issued synchronously inside the firing step's pre-hook, so its
// effect lands at a deterministic scan boundary under either engine.
type ModbusTamper struct {
	Attacker string
	PLC      string // target PLC by its config name (e.g. "CPLC")
	Table    string // "coil" (default) or "holding"
	Address  uint16
	Value    uint16
}

// TamperCoil builds a ModbusTamper that forces a PLC coil.
func TamperCoil(attacker, plcName string, addr uint16, on bool) ModbusTamper {
	var v uint16
	if on {
		v = 1
	}
	return ModbusTamper{Attacker: attacker, PLC: plcName, Table: "coil", Address: addr, Value: v}
}

// TamperRegister builds a ModbusTamper that overwrites a PLC holding register.
func TamperRegister(attacker, plcName string, addr, value uint16) ModbusTamper {
	return ModbusTamper{Attacker: attacker, PLC: plcName, Table: "holding", Address: addr, Value: value}
}

func (a ModbusTamper) table() string {
	if a.Table == "" {
		return "coil"
	}
	return a.Table
}

func (a ModbusTamper) describe() string {
	return fmt.Sprintf("modbus tamper %s -> %s %s[%d]=%d", a.Attacker, a.PLC, a.table(), a.Address, a.Value)
}

// validate resolves the tamper against the compiled model's PLC inventory.
// Failures wrap ErrModel (the target is a model element, like a power step's),
// and the scenario wrapper adds the event name on top.
func (a ModbusTamper) validate(v *scenarioValidator) error {
	if err := v.attacker(a.Attacker); err != nil {
		return err
	}
	p, ok := v.r.PLCs[a.PLC]
	if !ok {
		return fmt.Errorf("%w: modbus tamper target %q is not a PLC of the model", ErrModel, a.PLC)
	}
	cfg := p.Config()
	switch a.table() {
	case "coil":
		if int(a.Address) >= cfg.Coils {
			return fmt.Errorf("%w: modbus tamper coil %d outside PLC %q table (0..%d)",
				ErrModel, a.Address, a.PLC, cfg.Coils-1)
		}
	case "holding":
		if int(a.Address) >= cfg.Holding {
			return fmt.Errorf("%w: modbus tamper holding register %d outside PLC %q table (0..%d)",
				ErrModel, a.Address, a.PLC, cfg.Holding-1)
		}
	default:
		return fmt.Errorf("%w: modbus tamper table %q (want coil or holding)", ErrModel, a.Table)
	}
	return nil
}

func (a ModbusTamper) apply(rt *scenarioRun, ev *eventState) (string, error) {
	host := rt.attackers[a.Attacker]
	p := rt.r.PLCs[a.PLC]
	cli, err := modbus.DialClient(host, p.Host().IP(), p.Config().ModbusPort, 0)
	if err != nil {
		return "", err
	}
	defer cli.Close()
	switch a.table() {
	case "coil":
		err = cli.WriteCoil(a.Address, a.Value != 0)
	case "holding":
		err = cli.WriteRegister(a.Address, a.Value)
	}
	if err != nil {
		return "", err
	}
	// The IDS advertises coverage of unauthorized control writes, so a
	// tampered PLC command is ground truth for that alert kind — but the
	// sensor only inspects MMS towards port 102, never Modbus towards 502.
	// This is the deliberate blind spot the scenario search hunts.
	rt.expect(ev, ids.AlertUnauthorizedWrite, host.IP().String())
	return fmt.Sprintf("%s[%d]=%d written", a.table(), a.Address, a.Value), nil
}

// --- sensor deployment -----------------------------------------------------

// DeployIDS attaches a passive network IDS sensor to every link of the
// fabric (blue-team instrumentation). AuthorizedWriters are node names whose
// MMS control writes are legitimate (typically the SCADA host and PLCs).
type DeployIDS struct {
	Name              string // sensor name in the report; defaults to "ids"
	AuthorizedWriters []string
	PortScanThreshold int // default 10 (the sensor's default)
}

func (a DeployIDS) describe() string { return fmt.Sprintf("deploy IDS %q", a.sensorName()) }
func (a DeployIDS) sensorName() string {
	if a.Name == "" {
		return "ids"
	}
	return a.Name
}
func (a DeployIDS) validate(v *scenarioValidator) error {
	if a.PortScanThreshold < 0 {
		return fmt.Errorf("negative port-scan threshold")
	}
	for _, w := range a.AuthorizedWriters {
		if err := v.node(w); err != nil {
			return err
		}
	}
	if v.sensorNames[a.sensorName()] {
		return fmt.Errorf("duplicate sensor name %q", a.sensorName())
	}
	v.sensorNames[a.sensorName()] = true
	return nil
}
func (a DeployIDS) apply(rt *scenarioRun, _ *eventState) (string, error) {
	writers := make([]netem.IPv4, 0, len(a.AuthorizedWriters))
	for _, w := range a.AuthorizedWriters {
		writers = append(writers, rt.r.Built.AddrOf[w])
	}
	s := ids.New(ids.Options{AuthorizedWriters: writers, PortScanThreshold: a.PortScanThreshold})
	s.SetStepFunc(func() int { return int(rt.stepNow.Load()) })
	s.Attach(rt.r.Net)
	rt.sensors = append(rt.sensors, deployedSensor{name: a.sensorName(), s: s})
	return fmt.Sprintf("tapping all links, %d authorized writers", len(writers)), nil
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

type scenarioValidator struct {
	r           *CyberRange
	attackers   map[string]bool
	sensorNames map[string]bool
}

func (v *scenarioValidator) attacker(name string) error {
	if !v.attackers[name] {
		return fmt.Errorf("undeclared attacker %q", name)
	}
	return nil
}

func (v *scenarioValidator) node(name string) error {
	if _, ok := v.r.Built.AddrOf[name]; !ok {
		return fmt.Errorf("unknown node %q", name)
	}
	return nil
}

// validate checks the scenario against the compiled range: every referenced
// element, link, node, attacker and alert kind must resolve, so a broken
// scenario fails before the range starts rather than mid-engagement.
func (sc *Scenario) validate(r *CyberRange) error {
	v := &scenarioValidator{
		r:           r,
		attackers:   make(map[string]bool, len(sc.Attackers)),
		sensorNames: make(map[string]bool),
	}
	for i := range sc.Attackers {
		a := &sc.Attackers[i]
		if a.Name == "" {
			return fmt.Errorf("%w: attacker %d has no name", ErrScenario, i)
		}
		if v.attackers[a.Name] {
			return fmt.Errorf("%w: duplicate attacker %q", ErrScenario, a.Name)
		}
		if _, exists := r.Built.Hosts[a.Name]; exists {
			return fmt.Errorf("%w: attacker %q collides with an existing node", ErrScenario, a.Name)
		}
		if _, ok := r.Built.Switches[a.Switch]; !ok {
			return fmt.Errorf("%w: attacker %q: unknown switch %q", ErrScenario, a.Name, a.Switch)
		}
		if a.IP.IsZero() {
			return fmt.Errorf("%w: attacker %q has no IP", ErrScenario, a.Name)
		}
		v.attackers[a.Name] = true
	}
	seen := make(map[string]bool, len(sc.Events))
	for i := range sc.Events {
		ev := &sc.Events[i]
		if seen[ev.Name] {
			return fmt.Errorf("%w: duplicate event name %q", ErrScenario, ev.Name)
		}
		seen[ev.Name] = true
		if ev.Action == nil {
			return fmt.Errorf("%w: event %q has no action", ErrScenario, ev.Name)
		}
		if err := sc.validateTrigger(r, ev.Trigger); err != nil {
			return fmt.Errorf("%w: event %q: %v", ErrScenario, ev.Name, err)
		}
		// Double-wrap so both sentinels survive: a failed action validation is
		// always ErrScenario, and actions that resolve model elements (power
		// steps via validatePowerAction, ModbusTamper via the PLC inventory)
		// additionally surface ErrModel through the chain.
		if err := ev.Action.validate(v); err != nil {
			return fmt.Errorf("%w: event %q: %w", ErrScenario, ev.Name, err)
		}
	}
	return nil
}

func (sc *Scenario) validateTrigger(r *CyberRange, t Trigger) error {
	if t.delay < 0 {
		return fmt.Errorf("negative trigger delay")
	}
	switch t.kind {
	case trigAtStep:
		if t.step < 0 {
			return fmt.Errorf("negative trigger step %d", t.step)
		}
	case trigAfter:
		if t.offset < 0 {
			return fmt.Errorf("negative trigger offset %v", t.offset)
		}
	case trigBreakerOpen, trigBreakerClose:
		if r.Grid.FindSwitch(t.element) == nil {
			return fmt.Errorf("trigger breaker/switch %q not in the power model", t.element)
		}
	case trigAlert:
		switch t.alert {
		case ids.AlertARPSpoof, ids.AlertUnauthorizedWrite, ids.AlertGooseAnomaly, ids.AlertPortScan:
		default:
			return fmt.Errorf("unknown alert kind %q", t.alert)
		}
	case trigDeadBuses:
		if t.count < 1 {
			return fmt.Errorf("dead-bus threshold %d, need >= 1", t.count)
		}
	}
	return nil
}

// ValidateScenario resolves a scenario against a compiled range without
// running it: every referenced element, link, node, attacker, PLC and alert
// kind must exist. It is the same check RunScenario performs before starting
// the range, exposed so callers (the scenario search's mutation engine, CLI
// dry runs) can reject a broken candidate without paying for a fork or a run.
// Errors wrap ErrScenario; actions that resolve model elements (power steps,
// ModbusTamper) additionally wrap ErrModel.
func ValidateScenario(r *CyberRange, sc *Scenario) error {
	norm, err := sc.normalized(r.interval)
	if err != nil {
		return err
	}
	return norm.validate(r)
}

// normalized returns a defaulted copy: event names filled in, timed triggers
// resolved to step indices, and the step budget derived when unset.
func (sc *Scenario) normalized(interval time.Duration) (*Scenario, error) {
	out := *sc
	out.Events = append([]ScenarioEvent(nil), sc.Events...)
	out.Attackers = append([]AttackerSpec(nil), sc.Attackers...)
	lastTimed := 0
	for i := range out.Events {
		ev := &out.Events[i]
		if ev.Name == "" {
			ev.Name = fmt.Sprintf("event-%d", i+1)
		}
		if ev.Trigger.kind == trigAfter {
			steps := int((ev.Trigger.offset + interval - 1) / interval)
			ev.Trigger = Trigger{kind: trigAtStep, step: steps, delay: ev.Trigger.delay}
		}
		if ev.Trigger.kind == trigAtStep {
			if fireAt := ev.Trigger.step + ev.Trigger.delay; fireAt > lastTimed {
				lastTimed = fireAt
			}
		}
	}
	if out.Steps <= 0 {
		out.Steps = lastTimed + 5
		if out.Steps < 10 {
			out.Steps = 10
		}
	}
	return &out, nil
}

// ---------------------------------------------------------------------------
// Deterministic scheduler
// ---------------------------------------------------------------------------

type eventState struct {
	ev      *ScenarioEvent
	outcome *EventOutcome
	fired   bool
	// fireAt is the step whose pre-hook fires the event; -1 while a
	// condition trigger has not been satisfied yet.
	fireAt  int
	firedAt int
}

type deployedSensor struct {
	name string
	s    *ids.Sensor
}

type restore struct {
	at int
	fn func()
}

type scenarioRun struct {
	r   *CyberRange
	sc  *Scenario
	cfg optionSet
	ctx context.Context
	rng *rand.Rand

	stepNow   atomic.Int64 // current step, read by sensor alert stamping
	attackers map[string]*netem.Host
	fcis      map[string]*attack.FCI
	mitms     map[string]*attack.MITM
	sensors   []deployedSensor
	events    []*eventState
	restores  []restore
	report    *RunReport
}

// RunScenario executes a scenario against a compiled (not yet started) range
// and returns the structured report. The scheduler is woven into the range's
// step loop via the pre/post step hooks, so events trigger at identical
// points under the parallel and sequential engines; the seeded RNG makes
// every randomised choice replayable. The range is left started (callers
// still own Stop); scenario-started MITMs are withdrawn before returning.
func RunScenario(ctx context.Context, r *CyberRange, sc *Scenario, opts ...RunOption) (*RunReport, error) {
	cfg := optionSet{seed: sc.Seed}
	applyRun(opts, &cfg)
	if cfg.seed == 0 {
		cfg.seed = 1
	}
	if r.started {
		return nil, fmt.Errorf("%w: range already started", ErrScenario)
	}
	if cfg.workers > 0 {
		// Per-run override of the compiled pool size. Worker count never
		// changes committed state or fingerprints (pinned by the determinism
		// tests), so this is a pure throughput knob.
		r.engine.workers = cfg.workers
	}
	norm, err := sc.normalized(r.interval)
	if err != nil {
		return nil, err
	}
	if err := norm.validate(r); err != nil {
		return nil, err
	}

	engine := "parallel"
	if cfg.sequential {
		engine = "sequential"
	}
	rt := &scenarioRun{
		r: r, sc: norm, cfg: cfg, ctx: ctx,
		rng:       rand.New(rand.NewSource(cfg.seed)),
		attackers: make(map[string]*netem.Host),
		fcis:      make(map[string]*attack.FCI),
		mitms:     make(map[string]*attack.MITM),
		report: &RunReport{
			Scenario: norm.Name, Seed: cfg.seed, Steps: norm.Steps,
			Interval: r.interval, Engine: engine,
		},
	}
	rt.report.FramePooling = !cfg.poolingSet || cfg.pooling
	r.Net.SeedRand(uint64(cfg.seed))
	if cfg.poolingSet {
		r.Net.SetFramePooling(cfg.pooling)
	}

	for i := range norm.Attackers {
		a := &norm.Attackers[i]
		mac := a.MAC
		if mac == (netem.MAC{}) {
			// Locally-administered unicast MAC derived from the seeded RNG.
			mac = netem.MAC{0x02, 0x5c}
			for j := 2; j < 6; j++ {
				mac[j] = byte(rt.rng.Intn(256))
			}
		}
		host, err := r.Built.AttachHost(a.Name, mac, a.IP, a.Switch)
		if err != nil {
			return nil, fmt.Errorf("%w: attacker %q: %v", ErrScenario, a.Name, err)
		}
		rt.attackers[a.Name] = host
	}

	rt.report.Events = make([]EventOutcome, len(norm.Events))
	rt.events = make([]*eventState, len(norm.Events))
	for i := range norm.Events {
		ev := &norm.Events[i]
		rt.report.Events[i] = EventOutcome{Event: ev.Name, Action: ev.Action.describe(), Step: -1}
		st := &eventState{ev: ev, outcome: &rt.report.Events[i], fireAt: -1}
		if ev.Trigger.kind == trigAtStep {
			st.fireAt = ev.Trigger.step + ev.Trigger.delay
		}
		rt.events[i] = st
	}

	r.SetStepHooks(rt.preStep, rt.postStep)
	defer r.SetStepHooks(nil, nil)
	if err := r.Start(ctx, false); err != nil {
		return nil, err
	}

	stepFn := r.StepAll
	if cfg.sequential {
		stepFn = r.StepAllSequential
	}
	now := time.Now()
	for i := 0; i < norm.Steps; i++ {
		if err := ctx.Err(); err != nil {
			rt.report.Err = fmt.Sprintf("run cancelled at step %d", i)
			break
		}
		if cfg.maxSteps > 0 && i >= cfg.maxSteps {
			// A deterministic budget abort (WithMaxSteps): the run asked for
			// more steps than its variant allows.
			rt.report.Err = fmt.Sprintf("step budget %d exhausted at step %d", cfg.maxSteps, i)
			break
		}
		if cfg.stepProbe != nil {
			// Fault-injection seam (campaign WithRunProbe): may error, block
			// on ctx, or panic. Runs before the step so an injected fault
			// lands at a deterministic point.
			if err := cfg.stepProbe(ctx, i); err != nil {
				rt.report.Err = fmt.Sprintf("step %d: %v", i, err)
				break
			}
		}
		now = now.Add(r.interval)
		if err := stepFn(now); err != nil {
			rt.report.Err = fmt.Sprintf("step %d: %v", i, err)
			break
		}
	}

	rt.teardown()
	rt.finish()
	return rt.report, nil
}

// scheduleRestore queues fn to run at the given step's pre-hook (used by
// self-reverting actions: link flaps, bounded MITMs).
func (rt *scenarioRun) scheduleRestore(at int, fn func()) {
	rt.restores = append(rt.restores, restore{at: at, fn: fn})
}

// expect registers an injected-attack ground-truth entry: the alert kind and
// source the IDS layer should raise for the firing event.
func (rt *scenarioRun) expect(ev *eventState, kind ids.AlertKind, source string) {
	rt.report.Truth = append(rt.report.Truth, TruthEntry{
		Event: ev.ev.Name, Expect: string(kind), Source: source, DetectedStep: -1,
	})
}

// preStep is the scheduler's firing half: restores first, then every due
// event in declaration order, before the step's physical solve.
func (rt *scenarioRun) preStep(step int, _ time.Time) error {
	rt.stepNow.Store(int64(step))
	if len(rt.restores) > 0 {
		kept := rt.restores[:0]
		for _, rs := range rt.restores {
			if rs.at <= step {
				rs.fn()
			} else {
				kept = append(kept, rs)
			}
		}
		rt.restores = kept
	}
	for _, st := range rt.events {
		if st.fired || st.fireAt < 0 || st.fireAt > step {
			continue
		}
		st.fired = true
		st.firedAt = step
		st.outcome.Fired = true
		st.outcome.Step = step
		detail, err := st.ev.Action.apply(rt, st)
		st.outcome.Detail = detail
		if err != nil {
			st.outcome.Err = err.Error()
		}
	}
	return nil
}

// postStep is the scheduler's observing half: arm condition triggers against
// the step's committed state and poll ground-truth detection.
func (rt *scenarioRun) postStep(step int, _ time.Time) error {
	for _, st := range rt.events {
		if st.fired || st.fireAt >= 0 {
			continue
		}
		if rt.conditionHolds(st.ev.Trigger) {
			st.fireAt = step + 1 + st.ev.Trigger.delay
		}
	}
	if len(rt.sensors) > 0 {
		for i := range rt.report.Truth {
			tr := &rt.report.Truth[i]
			if tr.Detected {
				continue
			}
			if rt.alertSeen(ids.AlertKind(tr.Expect), tr.Source) {
				tr.Detected = true
				tr.DetectedStep = step
			}
		}
	}
	return nil
}

func (rt *scenarioRun) conditionHolds(t Trigger) bool {
	switch t.kind {
	case trigBreakerOpen, trigBreakerClose:
		sw := rt.r.Sim.Network().FindSwitch(t.element)
		if sw == nil {
			return false
		}
		return sw.Closed == (t.kind == trigBreakerClose)
	case trigAlert:
		for _, ds := range rt.sensors {
			if len(ds.s.AlertsOf(t.alert)) > 0 {
				return true
			}
		}
	case trigDeadBuses:
		if res := rt.r.Sim.LastResult(); res != nil {
			return res.DeadBuses >= t.count
		}
	}
	return false
}

func (rt *scenarioRun) alertSeen(kind ids.AlertKind, source string) bool {
	for _, ds := range rt.sensors {
		for _, a := range ds.s.AlertsOf(kind) {
			if a.Source == source {
				return true
			}
		}
	}
	return false
}

// teardown withdraws scenario-started attack infrastructure so the range is
// left clean for post-run inspection. Restores whose step lies past the end
// of the run (a link flap fired near the last step) are executed here rather
// than dropped, so the fabric is never left impaired by a self-reverting
// action.
func (rt *scenarioRun) teardown() {
	sort.SliceStable(rt.restores, func(i, j int) bool { return rt.restores[i].at < rt.restores[j].at })
	for _, rs := range rt.restores {
		rs.fn()
	}
	rt.restores = nil
	names := make([]string, 0, len(rt.mitms))
	for name := range rt.mitms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rt.mitms[name].Stop()
		delete(rt.mitms, name)
	}
}

// finish assembles the report: the distinct alert timeline, precision and
// recall against ground truth, the grid's closing state and the diagnostics.
func (rt *scenarioRun) finish() {
	rep := rt.report

	type pairKey struct{ sensor, kind, source string }
	first := map[pairKey]int{}
	order := []pairKey{}
	raw := 0
	var inspected uint64
	for _, ds := range rt.sensors {
		inspected += ds.s.Frames()
		for _, a := range ds.s.Alerts() {
			raw++
			k := pairKey{ds.name, string(a.Kind), a.Source}
			if at, ok := first[k]; !ok || (a.Step >= 0 && a.Step < at) {
				if !ok {
					order = append(order, k)
				}
				first[k] = a.Step
			}
		}
	}
	matched := func(kind, source string) bool {
		for _, tr := range rep.Truth {
			if tr.Expect == kind && tr.Source == source {
				return true
			}
		}
		return false
	}
	for _, k := range order {
		rep.Alerts = append(rep.Alerts, AlertSummary{
			Sensor: k.sensor, Kind: k.kind, Source: k.source,
			FirstStep: first[k], Matched: matched(k.kind, k.source),
		})
	}
	sort.Slice(rep.Alerts, func(i, j int) bool {
		a, b := rep.Alerts[i], rep.Alerts[j]
		if a.Sensor != b.Sensor {
			return a.Sensor < b.Sensor
		}
		if a.FirstStep != b.FirstStep {
			return a.FirstStep < b.FirstStep
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Source < b.Source
	})

	rep.Precision, rep.Recall = 1, 1
	if len(rep.Alerts) > 0 {
		hits := 0
		for _, a := range rep.Alerts {
			if a.Matched {
				hits++
			}
		}
		rep.Precision = float64(hits) / float64(len(rep.Alerts))
	}
	if len(rep.Truth) > 0 {
		det := 0
		for _, tr := range rep.Truth {
			if tr.Detected {
				det++
			}
		}
		rep.Recall = float64(det) / float64(len(rep.Truth))
	}

	if res := rt.r.Sim.LastResult(); res != nil {
		rep.Grid.Converged = res.Converged
		rep.Grid.Islands = res.Islands
		rep.Grid.DeadBuses = res.DeadBuses
	}
	for _, sw := range rt.r.Sim.Network().Switches {
		if !sw.Closed {
			rep.Grid.OpenBreakers = append(rep.Grid.OpenBreakers, sw.Name)
		}
	}
	sort.Strings(rep.Grid.OpenBreakers)

	steps, mean := rt.r.Sim.Stats()
	hits, misses := rt.r.Sim.SolverCacheStats()
	rep.Diag = RunDiagnostics{
		PowerSteps: steps, MeanSolve: mean,
		SolverCacheHits: hits, SolverCacheMisses: misses,
		SolveFailures:   rt.r.Sim.Failures(),
		DataPlane:       rt.r.Net.Stats(),
		FramesInspected: inspected,
		AlertsRaised:    raw,
	}
}

// ---------------------------------------------------------------------------
// Scenario files (the declarative XML form parsed by internal/sgmlconf)
// ---------------------------------------------------------------------------

// ScenarioFromConfig converts a parsed Scenario XML file into the typed
// scenario model. Structural validation (known kinds, required attributes)
// happened in sgmlconf; resolution against a compiled range happens when the
// scenario runs.
func ScenarioFromConfig(c *sgmlconf.ScenarioConfig) (*Scenario, error) {
	sc := &Scenario{Name: c.Name, Steps: c.Steps, Seed: c.Seed}
	for _, a := range c.Attackers {
		spec := AttackerSpec{Name: a.Name, Switch: a.Switch}
		ip, err := netem.ParseIPv4(a.IP)
		if err != nil {
			return nil, fmt.Errorf("%w: attacker %q: %v", ErrScenario, a.Name, err)
		}
		spec.IP = ip
		if a.MAC != "" {
			mac, err := netem.ParseMAC(a.MAC)
			if err != nil {
				return nil, fmt.Errorf("%w: attacker %q: %v", ErrScenario, a.Name, err)
			}
			spec.MAC = mac
		}
		sc.Attackers = append(sc.Attackers, spec)
	}
	for i := range c.Events {
		e := &c.Events[i]
		trig, err := triggerFromConfig(e)
		if err != nil {
			return nil, fmt.Errorf("%w: event %q: %v", ErrScenario, e.Name, err)
		}
		act, err := actionFromConfig(e)
		if err != nil {
			return nil, fmt.Errorf("%w: event %q: %v", ErrScenario, e.Name, err)
		}
		sc.Events = append(sc.Events, ScenarioEvent{Name: e.Name, Trigger: trig, Action: act})
	}
	return sc, nil
}

func triggerFromConfig(e *sgmlconf.ScenarioEvent) (Trigger, error) {
	var t Trigger
	switch {
	case e.AtStep != nil:
		t = At(*e.AtStep)
	case e.AfterMS > 0:
		t = After(time.Duration(e.AfterMS) * time.Millisecond)
	case e.OnBreakerOpen != "":
		t = OnBreakerOpen(e.OnBreakerOpen)
	case e.OnBreakerClose != "":
		t = OnBreakerClose(e.OnBreakerClose)
	case e.OnAlert != "":
		t = OnAlert(ids.AlertKind(e.OnAlert))
	case e.OnDeadBuses > 0:
		t = OnDeadBuses(e.OnDeadBuses)
	default:
		t = At(0)
	}
	return t.Plus(e.Plus), nil
}

// ScenarioToConfig renders a typed scenario into its declarative XML form —
// the reverse of ScenarioFromConfig, and the serializer the scenario-search
// minimizer and regression corpus stand on. The contract (pinned by the
// round-trip property test) is behavioural equivalence: the emitted config
// re-parses to a scenario whose run fingerprint matches the original for a
// fixed (model, seed). Values without an XML form — sub-millisecond
// durations, exotic MMS payload kinds, user-defined Action implementations —
// return ErrScenario rather than serializing lossily.
func ScenarioToConfig(sc *Scenario) (*sgmlconf.ScenarioConfig, error) {
	c := &sgmlconf.ScenarioConfig{Name: sc.Name, Steps: sc.Steps, Seed: sc.Seed}
	if c.Name == "" {
		c.Name = "scenario"
	}
	for i := range sc.Attackers {
		a := &sc.Attackers[i]
		sa := sgmlconf.ScenarioAttacker{Name: a.Name, Switch: a.Switch, IP: a.IP.String()}
		if a.MAC != (netem.MAC{}) {
			sa.MAC = a.MAC.String()
		}
		c.Attackers = append(c.Attackers, sa)
	}
	for i := range sc.Events {
		ev := &sc.Events[i]
		if ev.Action == nil {
			return nil, fmt.Errorf("%w: event %q has no action", ErrScenario, ev.Name)
		}
		e := sgmlconf.ScenarioEvent{Name: ev.Name}
		if err := triggerToConfig(ev.Trigger, &e); err != nil {
			return nil, fmt.Errorf("%w: event %q: %v", ErrScenario, ev.Name, err)
		}
		if err := actionToConfig(ev.Action, &e); err != nil {
			return nil, fmt.Errorf("%w: event %q: %v", ErrScenario, ev.Name, err)
		}
		c.Events = append(c.Events, e)
	}
	return c, nil
}

func triggerToConfig(t Trigger, e *sgmlconf.ScenarioEvent) error {
	switch t.kind {
	case trigAtStep:
		step := t.step
		e.AtStep = &step
	case trigAfter:
		if t.offset%time.Millisecond != 0 {
			return fmt.Errorf("trigger offset %v is not a whole millisecond", t.offset)
		}
		if ms := int(t.offset / time.Millisecond); ms > 0 {
			e.AfterMS = ms
		} else {
			// After(0) and At(0) resolve identically; emit the explicit form.
			zero := 0
			e.AtStep = &zero
		}
	case trigBreakerOpen:
		e.OnBreakerOpen = t.element
	case trigBreakerClose:
		e.OnBreakerClose = t.element
	case trigAlert:
		e.OnAlert = string(t.alert)
	case trigDeadBuses:
		e.OnDeadBuses = t.count
	default:
		return fmt.Errorf("trigger %q has no XML form", t.describe())
	}
	e.Plus = t.delay
	return nil
}

func actionToConfig(a Action, e *sgmlconf.ScenarioEvent) error {
	switch act := a.(type) {
	case PowerStep:
		e.Kind, e.Element, e.Value = act.Kind, act.Element, act.Value
	case LinkDown:
		e.Kind, e.LinkA, e.LinkB = "linkDown", act.A, act.B
	case LinkUp:
		e.Kind, e.LinkA, e.LinkB = "linkUp", act.A, act.B
	case LinkFlap:
		e.Kind, e.LinkA, e.LinkB, e.DownSteps = "linkFlap", act.A, act.B, act.DownSteps
	case LinkLoss:
		e.Kind, e.LinkA, e.LinkB, e.Rate = "linkLoss", act.A, act.B, act.Rate
	case LinkLatency:
		if act.Latency%time.Millisecond != 0 {
			return fmt.Errorf("latency %v is not a whole millisecond", act.Latency)
		}
		e.Kind, e.LinkA, e.LinkB = "linkLatency", act.A, act.B
		e.LatencyMS = int(act.Latency / time.Millisecond)
	case PortScan:
		e.Kind, e.Attacker, e.Target = "portScan", act.Attacker, act.Target
		ports := make([]string, len(act.Ports))
		for i, p := range act.Ports {
			ports[i] = fmt.Sprintf("%d", p)
		}
		e.Ports = strings.Join(ports, ",")
	case FalseCommand:
		e.Kind, e.Attacker, e.Target, e.Ref = "falseCommand", act.Attacker, act.Target, act.Ref
		switch act.Value.Kind {
		case mms.KindBool:
			b := act.Value.Bool
			e.BoolValue = &b
		case mms.KindFloat:
			e.Value = act.Value.Float
		default:
			return fmt.Errorf("falseCommand value kind %v has no XML form", act.Value.Kind)
		}
	case StartMITM:
		e.Kind, e.Attacker, e.VictimA, e.VictimB = "mitm", act.Attacker, act.VictimA, act.VictimB
		e.ScaleFloats, e.Blackhole, e.ForSteps = act.ScaleFloats, act.Blackhole, act.ForSteps
	case StopMITM:
		e.Kind, e.Attacker = "stopMitm", act.Attacker
	case ModbusTamper:
		e.Kind, e.Attacker, e.Target = "modbusTamper", act.Attacker, act.PLC
		e.Table, e.Address, e.Word = act.Table, int(act.Address), int(act.Value)
	case DeployIDS:
		e.Kind, e.Sensor, e.Threshold = "deployIDS", act.Name, act.PortScanThreshold
		e.Writers = strings.Join(act.AuthorizedWriters, ",")
	default:
		return fmt.Errorf("action %T has no XML form", a)
	}
	return nil
}

func actionFromConfig(e *sgmlconf.ScenarioEvent) (Action, error) {
	switch e.Kind {
	case "loadScale", "loadP", "genP", "sgenP", "switch", "lineService":
		return PowerStep{Kind: e.Kind, Element: e.Element, Value: e.Value}, nil
	case "openBreaker":
		return OpenBreaker(e.Element), nil
	case "closeBreaker":
		return CloseBreaker(e.Element), nil
	case "linkDown":
		return LinkDown{A: e.LinkA, B: e.LinkB}, nil
	case "linkUp":
		return LinkUp{A: e.LinkA, B: e.LinkB}, nil
	case "linkFlap":
		return LinkFlap{A: e.LinkA, B: e.LinkB, DownSteps: e.DownSteps}, nil
	case "linkLoss":
		return LinkLoss{A: e.LinkA, B: e.LinkB, Rate: e.Rate}, nil
	case "linkLatency":
		return LinkLatency{A: e.LinkA, B: e.LinkB, Latency: time.Duration(e.LatencyMS) * time.Millisecond}, nil
	case "portScan":
		return PortScan{Attacker: e.Attacker, Target: e.Target, Ports: e.PortList()}, nil
	case "falseCommand":
		var v mms.Value
		if e.BoolValue != nil {
			v = mms.NewBool(*e.BoolValue)
		} else {
			v = mms.NewFloat(e.Value)
		}
		return FalseCommand{Attacker: e.Attacker, Target: e.Target, Ref: e.Ref, Value: v}, nil
	case "mitm":
		return StartMITM{
			Attacker: e.Attacker, VictimA: e.VictimA, VictimB: e.VictimB,
			ScaleFloats: e.ScaleFloats, Blackhole: e.Blackhole, ForSteps: e.ForSteps,
		}, nil
	case "stopMitm":
		return StopMITM{Attacker: e.Attacker}, nil
	case "modbusTamper":
		return ModbusTamper{
			Attacker: e.Attacker, PLC: e.Target,
			Table: e.Table, Address: uint16(e.Address), Value: uint16(e.Word),
		}, nil
	case "deployIDS":
		return DeployIDS{
			Name:              e.SensorName(),
			AuthorizedWriters: e.WriterList(),
			PortScanThreshold: e.Threshold,
		}, nil
	}
	return nil, fmt.Errorf("unknown action kind %q", e.Kind)
}
