package core
