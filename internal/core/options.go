package core

import (
	"context"
	"time"
)

// Unified option surface for Compile, RunScenario and RunCampaign.
//
// The three entry points historically took three unrelated function-typed
// option families (CompileOption, RunOption, CampaignOption), which made the
// one genuinely shared knob — the worker count — exist under two names with
// incompatible types. The families are now interfaces over a single option
// set: each With* constructor returns a value implementing exactly the
// interfaces of the calls it is meaningful for, so passing WithSeed to
// Compile is still a compile-time error while WithWorkers is accepted
// everywhere. The old names (WithCampaignWorkers) remain as thin deprecated
// aliases.

// optionSet is the merged configuration every option applies into. Each entry
// point reads only the fields its narrowed interface can set.
type optionSet struct {
	workers       int // step-engine pool (Compile/Run) or campaign pool (RunCampaign); 0 = default
	seed          int64
	sequential    bool
	pooling       bool
	poolingSet    bool
	perRunCompile bool
	sinks         []RunSink   // extra streaming observers (WithRunSink)
	storeOpen     StoreOpener // deferred store constructor (WithCampaignStore)
	resume        bool        // skip cells the store already holds (WithResume)

	// Fault-tolerance knobs (WithRunTimeout / WithRetries) and the
	// fault-injection seams (WithRunProbe at campaign level, stepProbe as its
	// per-run projection; maxSteps carries the variant's step budget).
	runTimeout time.Duration
	retries    int
	runProbe   RunProbe
	stepProbe  func(ctx context.Context, step int) error
	maxSteps   int
}

// CompileOption tunes the compiled range (accepted by Compile).
type CompileOption interface {
	applyOption(*optionSet)
	compileOption()
}

// RunOption tunes a scenario run (accepted by RunScenario and the public
// Run/RunCompiled wrappers).
type RunOption interface {
	applyOption(*optionSet)
	runOption()
}

// CampaignOption tunes a campaign execution (accepted by RunCampaign).
type CampaignOption interface {
	applyOption(*optionSet)
	campaignOption()
}

// Option is the shared subset: an option meaningful to Compile, RunScenario
// and RunCampaign alike (see WithWorkers). Any Option can be passed wherever
// one of the three narrower families is expected.
type Option interface {
	CompileOption
	RunOption
	CampaignOption
}

// workersOption implements every family: the one knob all three calls share.
type workersOption int

func (w workersOption) applyOption(o *optionSet) { o.workers = int(w) }
func (workersOption) compileOption()             {}
func (workersOption) runOption()                 {}
func (workersOption) campaignOption()            {}

// WithWorkers sets the worker-pool size of the receiving call:
//
//   - Compile: the parallel step engine's pool (default runtime.GOMAXPROCS(0);
//     1 keeps the two-phase engine on a single goroutine).
//   - RunScenario / Run: overrides the compiled range's step-engine pool for
//     the run. Worker count never changes committed state or fingerprints.
//   - RunCampaign: how many runs execute concurrently, each on its own
//     isolated range (1 executes the sweep sequentially).
func WithWorkers(n int) Option { return workersOption(n) }

// WithCampaignWorkers sets the campaign worker-pool size.
//
// Deprecated: WithCampaignWorkers is the pre-unification name; it is exactly
// WithWorkers restricted to campaigns. Use WithWorkers.
func WithCampaignWorkers(n int) CampaignOption { return workersOption(n) }

type seedOption int64

func (s seedOption) applyOption(o *optionSet) { o.seed = int64(s) }
func (seedOption) runOption()                 {}

// WithSeed overrides the scenario's replay seed: every randomised choice of
// the run derives from it, so a fixed seed replays byte-identically.
func WithSeed(seed int64) RunOption { return seedOption(seed) }

type sequentialOption struct{}

func (sequentialOption) applyOption(o *optionSet) { o.sequential = true }
func (sequentialOption) runOption()               {}

// WithSequential drives the run with StepAllSequential (the single-threaded
// reference engine) instead of the sharded parallel engine. The determinism
// tests diff reports across the two.
func WithSequential() RunOption { return sequentialOption{} }

type framePoolingOption bool

func (p framePoolingOption) applyOption(o *optionSet) { o.pooling = bool(p); o.poolingSet = true }
func (framePoolingOption) runOption()                 {}

// WithFramePooling selects the pooled (true) or reference copy-per-publish
// (false) data plane for the run; unset leaves the network's default.
func WithFramePooling(on bool) RunOption { return framePoolingOption(on) }

type perRunCompileOption struct{}

func (perRunCompileOption) applyOption(o *optionSet) { o.perRunCompile = true }
func (perRunCompileOption) campaignOption()          {}

// WithPerRunCompile makes RunCampaign compile a fresh range for every run
// (the pre-fork reference path) instead of compiling each distinct model once
// and forking per run. The two paths produce byte-identical run fingerprints
// — pinned by the campaign fork tests and the campaign-throughput bench —
// so this knob exists for ablation and as the conservative fallback, not for
// correctness.
func WithPerRunCompile() CampaignOption { return perRunCompileOption{} }

type runSinkOption struct{ sink RunSink }

func (s runSinkOption) applyOption(o *optionSet) { o.sinks = append(o.sinks, s.sink) }
func (runSinkOption) campaignOption()            {}

// WithRunSink attaches a streaming observer to RunCampaign: every executed
// run is delivered to the sink as it completes, in completion order, from
// worker goroutines (the sink must be safe for concurrent use). Cancelled
// cells are recorded in the report but never delivered. May be repeated to
// attach several sinks.
func WithRunSink(s RunSink) CampaignOption { return runSinkOption{sink: s} }

type storeOption struct{ open StoreOpener }

func (s storeOption) applyOption(o *optionSet) { o.storeOpen = s.open }
func (storeOption) campaignOption()            {}

// WithCampaignStore attaches a persistent CampaignStore to RunCampaign. The
// opener runs once the campaign is assembled (durable stores key their
// layout by the campaign's name and SpecHash); the store then receives every
// executed run like a RunSink, and — if the sweep completes with every cell
// clean — its Finish commit, where it seals the result set under its Merkle
// root and stamps CampaignReport.MerkleRoot. The public sgml.WithStore(dir)
// wraps this with the JSONL directory backend from internal/store.
func WithCampaignStore(open StoreOpener) CampaignOption { return storeOption{open: open} }

type resumeOption struct{}

func (resumeOption) applyOption(o *optionSet) { o.resume = true }
func (resumeOption) campaignOption()          {}

// WithResume makes RunCampaign load the attached store's records before
// dispatch: cells with a clean persisted record are restored into the report
// (marked Resumed) and never re-executed; only the missing cells run.
// Requires a store (WithCampaignStore / sgml.WithStore); a resumed sweep's
// fingerprint map and Merkle root are byte-identical to an uninterrupted
// run's, pinned by the resume differential tests.
func WithResume() CampaignOption { return resumeOption{} }

type runTimeoutOption time.Duration

func (d runTimeoutOption) applyOption(o *optionSet) { o.runTimeout = time.Duration(d) }
func (runTimeoutOption) campaignOption()            {}

// WithRunTimeout gives every campaign run its own deadline, derived from the
// campaign context: a run that has not finished within d — a wedged scenario,
// a diverging solver — is cancelled via its private context and recorded as a
// FailTimeout run instead of stalling its worker forever. Zero (the default)
// means no per-run deadline. Timed-out runs are retryable (WithRetries) and
// are never persisted, so their cells re-execute on resume.
func WithRunTimeout(d time.Duration) CampaignOption { return runTimeoutOption(d) }

type retriesOption int

func (n retriesOption) applyOption(o *optionSet) { o.retries = int(n) }
func (retriesOption) campaignOption()            {}

// WithRetries re-executes a failed campaign run up to n extra times, on a
// fresh fork, with capped exponential backoff between attempts — but only
// when the failure is infrastructure-shaped (RunFailure.Retryable: panic,
// timeout; store appends are retried in place). Scenario-semantics failures
// (compile errors, step failures, failing events) are deterministic and are
// never retried. The attempt history is kept on CampaignRun.Retries; a
// retried cell that succeeds reproduces the same fingerprint it would have
// produced first try, so retries never perturb the determinism contract or
// the store's Merkle root.
func WithRetries(n int) CampaignOption { return retriesOption(n) }

// RunProbe is the campaign fault-injection seam: when attached with
// WithRunProbe it is called at the top of every step of every run, with the
// run's cell identity, the 1-based retry attempt and the step index. A probe
// may return an error (aborting the step like a step failure), block on ctx
// (wedging the run against its deadline) or panic (exercising worker-boundary
// recovery). ctx is the run's own context — the campaign context plus any
// WithRunTimeout deadline. Probes exist for the fault-injection tests
// (internal/faultinject); production sweeps run without one.
type RunProbe func(ctx context.Context, variant string, seed int64, attempt, try, step int) error

type runProbeOption struct{ probe RunProbe }

func (p runProbeOption) applyOption(o *optionSet) { o.runProbe = p.probe }
func (runProbeOption) campaignOption()            {}

// WithRunProbe attaches a fault-injection probe to every run of the campaign.
// Test-only seam; see RunProbe.
func WithRunProbe(p RunProbe) CampaignOption { return runProbeOption{probe: p} }

type stepProbeOption struct {
	probe func(ctx context.Context, step int) error
}

func (p stepProbeOption) applyOption(o *optionSet) { o.stepProbe = p.probe }
func (stepProbeOption) runOption()                 {}

// withStepProbe is the per-run projection of WithRunProbe: the campaign
// worker binds the cell identity and attempt number into a closure invoked at
// each step of the run loop. Unexported — fault injection enters through the
// campaign-level option.
func withStepProbe(p func(ctx context.Context, step int) error) RunOption {
	return stepProbeOption{probe: p}
}

type maxStepsOption int

func (n maxStepsOption) applyOption(o *optionSet) { o.maxSteps = int(n) }
func (maxStepsOption) runOption()                 {}

// WithMaxSteps caps the run at n executed steps: a scenario that would step
// past the budget is aborted with a deterministic "step budget" error
// (classified FailScenario — exceeding a fixed budget reproduces on every
// retry). Zero means no budget. Campaigns set it per variant
// (CampaignVariant.MaxSteps, maxSteps in the XML schema).
func WithMaxSteps(n int) RunOption { return maxStepsOption(n) }

// applyCompile/applyRun/applyCampaign adapt the narrowed slices to apply.
func applyCompile(opts []CompileOption, o *optionSet) {
	for _, opt := range opts {
		opt.applyOption(o)
	}
}

func applyRun(opts []RunOption, o *optionSet) {
	for _, opt := range opts {
		opt.applyOption(o)
	}
}

func applyCampaign(opts []CampaignOption, o *optionSet) {
	for _, opt := range opts {
		opt.applyOption(o)
	}
}
