package core

// Unified option surface for Compile, RunScenario and RunCampaign.
//
// The three entry points historically took three unrelated function-typed
// option families (CompileOption, RunOption, CampaignOption), which made the
// one genuinely shared knob — the worker count — exist under two names with
// incompatible types. The families are now interfaces over a single option
// set: each With* constructor returns a value implementing exactly the
// interfaces of the calls it is meaningful for, so passing WithSeed to
// Compile is still a compile-time error while WithWorkers is accepted
// everywhere. The old names (WithCampaignWorkers) remain as thin deprecated
// aliases.

// optionSet is the merged configuration every option applies into. Each entry
// point reads only the fields its narrowed interface can set.
type optionSet struct {
	workers       int // step-engine pool (Compile/Run) or campaign pool (RunCampaign); 0 = default
	seed          int64
	sequential    bool
	pooling       bool
	poolingSet    bool
	perRunCompile bool
	sinks         []RunSink   // extra streaming observers (WithRunSink)
	storeOpen     StoreOpener // deferred store constructor (WithCampaignStore)
	resume        bool        // skip cells the store already holds (WithResume)
}

// CompileOption tunes the compiled range (accepted by Compile).
type CompileOption interface {
	applyOption(*optionSet)
	compileOption()
}

// RunOption tunes a scenario run (accepted by RunScenario and the public
// Run/RunCompiled wrappers).
type RunOption interface {
	applyOption(*optionSet)
	runOption()
}

// CampaignOption tunes a campaign execution (accepted by RunCampaign).
type CampaignOption interface {
	applyOption(*optionSet)
	campaignOption()
}

// Option is the shared subset: an option meaningful to Compile, RunScenario
// and RunCampaign alike (see WithWorkers). Any Option can be passed wherever
// one of the three narrower families is expected.
type Option interface {
	CompileOption
	RunOption
	CampaignOption
}

// workersOption implements every family: the one knob all three calls share.
type workersOption int

func (w workersOption) applyOption(o *optionSet) { o.workers = int(w) }
func (workersOption) compileOption()             {}
func (workersOption) runOption()                 {}
func (workersOption) campaignOption()            {}

// WithWorkers sets the worker-pool size of the receiving call:
//
//   - Compile: the parallel step engine's pool (default runtime.GOMAXPROCS(0);
//     1 keeps the two-phase engine on a single goroutine).
//   - RunScenario / Run: overrides the compiled range's step-engine pool for
//     the run. Worker count never changes committed state or fingerprints.
//   - RunCampaign: how many runs execute concurrently, each on its own
//     isolated range (1 executes the sweep sequentially).
func WithWorkers(n int) Option { return workersOption(n) }

// WithCampaignWorkers sets the campaign worker-pool size.
//
// Deprecated: WithCampaignWorkers is the pre-unification name; it is exactly
// WithWorkers restricted to campaigns. Use WithWorkers.
func WithCampaignWorkers(n int) CampaignOption { return workersOption(n) }

type seedOption int64

func (s seedOption) applyOption(o *optionSet) { o.seed = int64(s) }
func (seedOption) runOption()                 {}

// WithSeed overrides the scenario's replay seed: every randomised choice of
// the run derives from it, so a fixed seed replays byte-identically.
func WithSeed(seed int64) RunOption { return seedOption(seed) }

type sequentialOption struct{}

func (sequentialOption) applyOption(o *optionSet) { o.sequential = true }
func (sequentialOption) runOption()               {}

// WithSequential drives the run with StepAllSequential (the single-threaded
// reference engine) instead of the sharded parallel engine. The determinism
// tests diff reports across the two.
func WithSequential() RunOption { return sequentialOption{} }

type framePoolingOption bool

func (p framePoolingOption) applyOption(o *optionSet) { o.pooling = bool(p); o.poolingSet = true }
func (framePoolingOption) runOption()                 {}

// WithFramePooling selects the pooled (true) or reference copy-per-publish
// (false) data plane for the run; unset leaves the network's default.
func WithFramePooling(on bool) RunOption { return framePoolingOption(on) }

type perRunCompileOption struct{}

func (perRunCompileOption) applyOption(o *optionSet) { o.perRunCompile = true }
func (perRunCompileOption) campaignOption()          {}

// WithPerRunCompile makes RunCampaign compile a fresh range for every run
// (the pre-fork reference path) instead of compiling each distinct model once
// and forking per run. The two paths produce byte-identical run fingerprints
// — pinned by the campaign fork tests and the campaign-throughput bench —
// so this knob exists for ablation and as the conservative fallback, not for
// correctness.
func WithPerRunCompile() CampaignOption { return perRunCompileOption{} }

type runSinkOption struct{ sink RunSink }

func (s runSinkOption) applyOption(o *optionSet) { o.sinks = append(o.sinks, s.sink) }
func (runSinkOption) campaignOption()            {}

// WithRunSink attaches a streaming observer to RunCampaign: every executed
// run is delivered to the sink as it completes, in completion order, from
// worker goroutines (the sink must be safe for concurrent use). Cancelled
// cells are recorded in the report but never delivered. May be repeated to
// attach several sinks.
func WithRunSink(s RunSink) CampaignOption { return runSinkOption{sink: s} }

type storeOption struct{ open StoreOpener }

func (s storeOption) applyOption(o *optionSet) { o.storeOpen = s.open }
func (storeOption) campaignOption()            {}

// WithCampaignStore attaches a persistent CampaignStore to RunCampaign. The
// opener runs once the campaign is assembled (durable stores key their
// layout by the campaign's name and SpecHash); the store then receives every
// executed run like a RunSink, and — if the sweep completes with every cell
// clean — its Finish commit, where it seals the result set under its Merkle
// root and stamps CampaignReport.MerkleRoot. The public sgml.WithStore(dir)
// wraps this with the JSONL directory backend from internal/store.
func WithCampaignStore(open StoreOpener) CampaignOption { return storeOption{open: open} }

type resumeOption struct{}

func (resumeOption) applyOption(o *optionSet) { o.resume = true }
func (resumeOption) campaignOption()          {}

// WithResume makes RunCampaign load the attached store's records before
// dispatch: cells with a clean persisted record are restored into the report
// (marked Resumed) and never re-executed; only the missing cells run.
// Requires a store (WithCampaignStore / sgml.WithStore); a resumed sweep's
// fingerprint map and Merkle root are byte-identical to an uninterrupted
// run's, pinned by the resume differential tests.
func WithResume() CampaignOption { return resumeOption{} }

// applyCompile/applyRun/applyCampaign adapt the narrowed slices to apply.
func applyCompile(opts []CompileOption, o *optionSet) {
	for _, opt := range opts {
		opt.applyOption(o)
	}
}

func applyRun(opts []RunOption, o *optionSet) {
	for _, opt := range opts {
		opt.applyOption(o)
	}
}

func applyCampaign(opts []CampaignOption, o *optionSet) {
	for _, opt := range opts {
		opt.applyOption(o)
	}
}
