package core

import (
	"context"
	"time"
)

// RunFailure classifies why a campaign run (or one of its attempts) failed.
// The classification drives the retry policy (WithRetries): infrastructure-
// shaped failures — a panicking device model, a run that outlived its
// deadline, a store append that could not be written — are transient from the
// sweep's point of view and are retried on a fresh fork; scenario-semantics
// failures (a compile error, a diverging solver, a failing event) are
// deterministic properties of the (model, scenario, seed) cell and re-running
// them could only reproduce the same outcome.
type RunFailure string

const (
	// FailNone marks a run whose Err is empty. A run may still be Failed()
	// through deterministic event errors; those are real experiment outcomes,
	// not infrastructure faults, and are never retried.
	FailNone RunFailure = ""
	// FailCompile is a model compile or fork error: deterministic, never
	// retried.
	FailCompile RunFailure = "compile"
	// FailPanic is a panic recovered at the worker boundary — anywhere in the
	// run's fork/start/step/teardown path. Retryable.
	FailPanic RunFailure = "panic"
	// FailTimeout is a run cancelled by its own WithRunTimeout deadline while
	// the campaign context was still live. Retryable.
	FailTimeout RunFailure = "timeout"
	// FailStore is a CampaignStore append that kept failing after retries.
	// It never marks a run (the run itself succeeded); it classifies the
	// sweep's StoreDegraded condition.
	FailStore RunFailure = "store"
	// FailScenario is a deterministic execution failure: an aborted step, a
	// diverging solver, an exhausted MaxSteps budget. Never retried.
	FailScenario RunFailure = "scenario"
	// FailCancelled is a run stopped by campaign-context cancellation. Not an
	// infrastructure fault of the cell; never retried (the sweep is ending).
	FailCancelled RunFailure = "cancelled"
)

// Retryable reports whether the failure is infrastructure-shaped — the only
// class WithRetries re-executes. Scenario semantics, compile errors and
// cancellation are deterministic or terminal and are never retried.
func (f RunFailure) Retryable() bool {
	switch f {
	case FailPanic, FailTimeout, FailStore:
		return true
	}
	return false
}

// RunRetry records one failed attempt of a retried cell: what failed, how it
// was classified, and the backoff paid before the next attempt. The final
// (successful or abandoned) attempt is the CampaignRun itself; its Retries
// slice holds the history. Retry history is wall-clock bookkeeping — it is
// never part of the run fingerprint or the store's Merkle leaves, so a
// retried cell that eventually succeeds is byte-identical to one that
// succeeded first try.
type RunRetry struct {
	// Try is the 1-based attempt number that failed.
	Try     int        `json:"try"`
	Failure RunFailure `json:"failure"`
	Err     string     `json:"err"`
	// Backoff is the capped exponential delay slept before the next attempt.
	Backoff time.Duration `json:"backoffNs"`
}

// Retry backoff: capped exponential, deterministic (no jitter — campaign
// workers are already decorrelated by scheduling, and determinism keeps the
// fault-injection differential reproducible).
const (
	retryBackoffBase = 5 * time.Millisecond
	retryBackoffCap  = 200 * time.Millisecond
)

// retryBackoff returns the delay before attempt try+1 (try is 1-based).
func retryBackoff(try int) time.Duration {
	d := retryBackoffBase << uint(try-1)
	if d > retryBackoffCap || d <= 0 {
		d = retryBackoffCap
	}
	return d
}

// sleepBackoff sleeps the attempt's backoff, abandoning early (returning
// false) if the campaign context is cancelled first.
func sleepBackoff(ctx context.Context, try int) bool {
	t := time.NewTimer(retryBackoff(try))
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// classifyRunFailure classifies a failed run by its contexts: a dead parent
// context means the sweep is being cancelled; a dead run context with a live
// parent means the per-run deadline fired; anything else is scenario
// semantics.
func classifyRunFailure(parent, runCtx context.Context) RunFailure {
	switch {
	case parent.Err() != nil:
		return FailCancelled
	case runCtx.Err() == context.DeadlineExceeded:
		return FailTimeout
	default:
		return FailScenario
	}
}
