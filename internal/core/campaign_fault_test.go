package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// faultCampaign is a small two-seed sweep on the EPIC model, cheap enough to
// run many times per test.
func faultCampaign(t *testing.T, seeds ...int64) *Campaign {
	t.Helper()
	if len(seeds) == 0 {
		seeds = []int64{1, 2}
	}
	return &Campaign{
		Name:  "fault-sweep",
		Model: epicModelSet(t),
		Variants: []CampaignVariant{
			{Name: "v", Seeds: seeds, Scenario: &Scenario{
				Name:  "fault-drill",
				Steps: 4,
				Events: []ScenarioEvent{
					{Name: "trip", Trigger: At(1), Action: OpenBreaker("CBMicro")},
				},
			}},
		},
	}
}

// findRun returns the (variant, seed, attempt) run from the report.
func findRun(t *testing.T, rep *CampaignReport, variant string, seed int64, attempt int) *CampaignRun {
	t.Helper()
	for i := range rep.Runs {
		r := &rep.Runs[i]
		if r.Variant == variant && r.Seed == seed && r.Attempt == attempt {
			return r
		}
	}
	t.Fatalf("run %s:%d:%d not in report", variant, seed, attempt)
	return nil
}

// TestCampaignFaultPanicIsolation checks that a panic inside a run's step
// path — retries disabled — is absorbed at the worker boundary: the run fails
// as FailPanic carrying the panic value and stack, every other run completes,
// and the process obviously survives.
func TestCampaignFaultPanicIsolation(t *testing.T) {
	c := faultCampaign(t)
	rep, err := RunCampaign(context.Background(), c, WithRunProbe(
		func(ctx context.Context, variant string, seed int64, attempt, try, step int) error {
			if seed == 1 && step == 2 {
				panic("injected device-model explosion")
			}
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 1 {
		t.Fatalf("Failures = %d, want 1\n%s", rep.Failures, rep)
	}
	bad := findRun(t, rep, "v", 1, 1)
	if bad.Failure != FailPanic {
		t.Fatalf("failed run classified %q, want %q", bad.Failure, FailPanic)
	}
	if !strings.Contains(bad.Err, "panic") || !strings.Contains(bad.Err, "injected device-model explosion") {
		t.Errorf("run error %q does not carry the panic value", bad.Err)
	}
	if !strings.Contains(bad.PanicStack, "goroutine") {
		t.Errorf("run carries no panic stack: %q", bad.PanicStack)
	}
	if bad.Report != nil || bad.Fingerprint != "" {
		t.Error("panicked run kept a partial report/fingerprint")
	}
	good := findRun(t, rep, "v", 2, 1)
	if good.Err != "" || good.Fingerprint == "" {
		t.Errorf("unfaulted sibling run was damaged: err=%q fp=%q", good.Err, good.Fingerprint)
	}
}

// TestCampaignFaultRunTimeout checks WithRunTimeout: a wedged run (its probe
// blocks until the context dies) is cancelled by its private deadline and
// classified FailTimeout, without wedging the sweep.
func TestCampaignFaultRunTimeout(t *testing.T) {
	c := faultCampaign(t)
	rep, err := RunCampaign(context.Background(), c,
		WithRunTimeout(150*time.Millisecond),
		WithRunProbe(func(ctx context.Context, variant string, seed int64, attempt, try, step int) error {
			if seed == 1 && step == 1 {
				<-ctx.Done()
				return ctx.Err()
			}
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 1 {
		t.Fatalf("Failures = %d, want 1\n%s", rep.Failures, rep)
	}
	bad := findRun(t, rep, "v", 1, 1)
	if bad.Failure != FailTimeout {
		t.Fatalf("wedged run classified %q, want %q (err %q)", bad.Failure, FailTimeout, bad.Err)
	}
	good := findRun(t, rep, "v", 2, 1)
	if good.Err != "" {
		t.Errorf("unfaulted sibling run failed: %q", good.Err)
	}
}

// TestCampaignRetryRecoversFaultedRun checks the retry loop end to end: a
// panic on the cell's first try is retried on a fresh fork, the retried
// attempt succeeds, the abandoned attempt is kept in the run's history, and
// the recovered fingerprint is identical to an unfaulted sweep's.
func TestCampaignRetryRecoversFaultedRun(t *testing.T) {
	clean, err := RunCampaign(context.Background(), faultCampaign(t))
	if err != nil {
		t.Fatal(err)
	}
	if clean.Failures != 0 {
		t.Fatalf("clean sweep failed:\n%s", clean)
	}

	rep, err := RunCampaign(context.Background(), faultCampaign(t),
		WithRetries(2),
		WithRunProbe(func(ctx context.Context, variant string, seed int64, attempt, try, step int) error {
			if seed == 1 && try == 1 && step == 2 {
				panic("transient blowup")
			}
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 0 {
		t.Fatalf("retried sweep still has %d failures:\n%s", rep.Failures, rep)
	}
	if rep.Retried != 1 {
		t.Fatalf("Retried = %d, want 1", rep.Retried)
	}
	recovered := findRun(t, rep, "v", 1, 1)
	if len(recovered.Retries) != 1 {
		t.Fatalf("retry history = %+v, want one abandoned attempt", recovered.Retries)
	}
	h := recovered.Retries[0]
	if h.Try != 1 || h.Failure != FailPanic || !strings.Contains(h.Err, "transient blowup") {
		t.Errorf("history entry = %+v", h)
	}
	if h.Backoff != retryBackoff(1) {
		t.Errorf("history backoff = %v, want %v", h.Backoff, retryBackoff(1))
	}
	// The recovered cell reproduces the deterministic result.
	want := findRun(t, clean, "v", 1, 1)
	if recovered.Fingerprint == "" || recovered.Fingerprint != want.Fingerprint {
		t.Errorf("recovered fingerprint %q != clean %q", recovered.Fingerprint, want.Fingerprint)
	}
}

// TestCampaignRetryNeverRepeatsScenarioFailures checks the classification
// boundary: a deterministic scenario failure (here a MaxSteps budget abort)
// is never retried, no matter how many retries are allowed.
func TestCampaignRetryNeverRepeatsScenarioFailures(t *testing.T) {
	c := faultCampaign(t, 1)
	c.Variants[0].MaxSteps = 2
	var attempts int32
	var mu sync.Mutex
	rep, err := RunCampaign(context.Background(), c,
		WithRetries(5),
		WithRunProbe(func(ctx context.Context, variant string, seed int64, attempt, try, step int) error {
			mu.Lock()
			if int32(try) > attempts {
				attempts = int32(try)
			}
			mu.Unlock()
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 1 {
		t.Fatalf("Failures = %d, want 1 (budget abort)\n%s", rep.Failures, rep)
	}
	bad := findRun(t, rep, "v", 1, 1)
	if bad.Failure != FailScenario {
		t.Fatalf("budget abort classified %q, want %q (err %q)", bad.Failure, FailScenario, bad.Err)
	}
	if !strings.Contains(bad.Err, "step budget 2") {
		t.Errorf("budget abort error = %q", bad.Err)
	}
	if len(bad.Retries) != 0 {
		t.Errorf("deterministic failure was retried: %+v", bad.Retries)
	}
	if attempts != 1 {
		t.Errorf("observed %d attempts, want 1", attempts)
	}
}

// flakyStore is a CampaignStore stub whose Put fails a configured number of
// times (or forever), for degradation tests without a filesystem.
type flakyStore struct {
	mu       sync.Mutex
	puts     int
	failures int // fail the first N puts; -1 fails every put
	finished bool
	closed   bool
	blockCtx context.Context // if set, Put blocks here until the ctx dies
}

func (s *flakyStore) Put(run CampaignRun) error {
	if s.blockCtx != nil {
		<-s.blockCtx.Done()
		return fmt.Errorf("store offline: %w", s.blockCtx.Err())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts++
	if s.failures < 0 || s.puts <= s.failures {
		return errors.New("disk on fire")
	}
	return nil
}

func (s *flakyStore) Done(string, int64, int) bool { return false }

func (s *flakyStore) Load() (*CampaignReport, error) { return &CampaignReport{}, nil }

func (s *flakyStore) Finish(rep *CampaignReport) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.finished = true
	return nil
}

func (s *flakyStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

// TestCampaignFaultStoreDegradation checks the degradation contract: a store
// whose Put keeps failing does not fail any run — the sweep completes, the
// report is flagged StoreDegraded, and the store is never sealed.
func TestCampaignFaultStoreDegradation(t *testing.T) {
	st := &flakyStore{failures: -1}
	rep, err := RunCampaign(context.Background(), faultCampaign(t),
		WithRetries(1),
		WithCampaignStore(func(*Campaign) (CampaignStore, error) { return st, nil }))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 0 {
		t.Fatalf("store failure leaked into run failures: %d\n%s", rep.Failures, rep)
	}
	if !rep.StoreDegraded {
		t.Fatal("report not flagged StoreDegraded")
	}
	if !strings.Contains(rep.StoreErr, string(FailStore)) || !strings.Contains(rep.StoreErr, "disk on fire") {
		t.Errorf("StoreErr = %q", rep.StoreErr)
	}
	if st.finished {
		t.Error("degraded store was sealed")
	}
	if !st.closed {
		t.Error("degraded store was not closed")
	}
	if !strings.Contains(rep.String(), "STORE DEGRADED") {
		t.Error("report text does not surface the degradation")
	}
}

// TestCampaignFaultStorePutRetried checks that a transiently failing Put is
// retried under WithRetries and a later success clears the degradation path.
func TestCampaignFaultStorePutRetried(t *testing.T) {
	st := &flakyStore{failures: 1}
	rep, err := RunCampaign(context.Background(), faultCampaign(t, 1),
		WithRetries(2),
		WithCampaignStore(func(*Campaign) (CampaignStore, error) { return st, nil }))
	if err != nil {
		t.Fatal(err)
	}
	if rep.StoreDegraded {
		t.Fatalf("transient store fault degraded the sweep: %s", rep.StoreErr)
	}
	if !st.finished {
		t.Error("healthy sweep was not sealed")
	}
	if st.puts < 2 {
		t.Errorf("puts = %d, want the failed append retried", st.puts)
	}
}

// TestCampaignFaultCancellationDuringPersistence cancels the campaign while a
// store Put is in flight: RunCampaign must neither deadlock nor seal the
// partial store.
func TestCampaignFaultCancellationDuringPersistence(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	st := &flakyStore{blockCtx: ctx}
	done := make(chan struct{})
	var rep *CampaignReport
	var err error
	go func() {
		defer close(done)
		rep, err = RunCampaign(ctx, faultCampaign(t), WithRetries(3),
			WithCampaignStore(func(*Campaign) (CampaignStore, error) { return st, nil }))
	}()
	// Give the sweep time to reach the blocking Put, then kill it.
	time.Sleep(200 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("RunCampaign deadlocked on a blocked store Put after cancellation")
	}
	if err != nil {
		t.Fatal(err)
	}
	if st.finished {
		t.Error("cancelled sweep sealed the store")
	}
	if rep.MerkleRoot != "" {
		t.Error("cancelled sweep stamped a Merkle root")
	}
}

// TestRetryClassification pins the Retryable table and the backoff schedule.
func TestRetryClassification(t *testing.T) {
	retryable := map[RunFailure]bool{
		FailNone: false, FailCompile: false, FailPanic: true, FailTimeout: true,
		FailStore: true, FailScenario: false, FailCancelled: false,
	}
	for f, want := range retryable {
		if got := f.Retryable(); got != want {
			t.Errorf("%s.Retryable() = %v, want %v", f, got, want)
		}
	}
	if retryBackoff(1) != retryBackoffBase {
		t.Errorf("backoff(1) = %v", retryBackoff(1))
	}
	if retryBackoff(2) != 2*retryBackoffBase {
		t.Errorf("backoff(2) = %v", retryBackoff(2))
	}
	if retryBackoff(20) != retryBackoffCap {
		t.Errorf("backoff(20) = %v, want cap %v", retryBackoff(20), retryBackoffCap)
	}
	if retryBackoff(200) != retryBackoffCap {
		t.Errorf("backoff(200) = %v, want cap (shift overflow)", retryBackoff(200))
	}
}
