package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// ErrCampaign is returned when a campaign cannot be validated or executed.
var ErrCampaign = errors.New("core: invalid campaign")

// Campaign is a declarative sweep over scenario runs: the population form of
// the single (model, scenario, seed) experiment RunScenario executes. Each
// variant pairs a scenario with a seed list and the engine/data-plane toggles
// to run it under; RunCampaign expands the cross product into individual runs
// and executes them concurrently on a bounded worker pool, one isolated
// CyberRange per run.
//
// The parsed model (ModelSet) is the one compiled artifact that is safe to
// share: it is read-only during Compile, so every run of a variant reuses the
// same parsed SCL documents and supplementary configs instead of re-loading
// them. Compiled ranges are stateful (grid switch positions, kv bus, device
// goroutines) and are therefore never shared — each run compiles, starts and
// stops its own.
type Campaign struct {
	Name string
	// Model is the default model compiled for every run; a variant may
	// override it with its own. Required unless every variant carries one.
	Model *ModelSet
	// Workers is the default worker-pool size (0 = runtime.GOMAXPROCS);
	// WithCampaignWorkers overrides it per execution.
	Workers  int
	Variants []CampaignVariant
}

// CampaignVariant is one cell of the sweep matrix: a scenario executed once
// per (seed, attempt) under a fixed engine and data-plane choice.
type CampaignVariant struct {
	Name string
	// Model overrides the campaign's default model for this variant.
	Model    *ModelSet
	Scenario *Scenario
	// Seeds are the replay seeds to sweep. Empty defaults to the scenario's
	// own seed (or 1), i.e. a single run per attempt.
	Seeds []int64
	// Repeat is the number of runs per seed (default 1). Repeat >= 2 turns
	// the variant into a determinism probe: all attempts of a (variant, seed)
	// pair must produce identical RunReport fingerprints.
	Repeat int
	// Sequential drives the runs with the single-threaded reference step
	// engine (StepAllSequential) instead of the sharded parallel engine.
	Sequential bool
	// FramePooling selects the pooled (true) or reference copy-per-publish
	// (false) data plane; nil keeps the network's default (pooled).
	FramePooling *bool
}

// CampaignOption tunes a campaign execution.
type CampaignOption func(*campaignConfig)

type campaignConfig struct {
	workers int
}

// WithCampaignWorkers sets the campaign worker-pool size — how many runs
// execute concurrently, each with its own range. 1 executes the sweep
// sequentially (the reference path the throughput ablation compares against).
func WithCampaignWorkers(n int) CampaignOption {
	return func(c *campaignConfig) { c.workers = n }
}

// campaignRunSpec is one expanded run of the sweep.
type campaignRunSpec struct {
	variant *CampaignVariant
	model   *ModelSet
	seed    int64
	attempt int // 1-based repeat index
}

// normalizedVariants validates the campaign and expands defaults: variant
// names, seed lists, repeat counts and the per-variant model.
func (c *Campaign) normalizedVariants() ([]CampaignVariant, error) {
	if len(c.Variants) == 0 {
		return nil, fmt.Errorf("%w: no variants", ErrCampaign)
	}
	out := append([]CampaignVariant(nil), c.Variants...)
	seen := make(map[string]bool, len(out))
	for i := range out {
		v := &out[i]
		if v.Name == "" {
			v.Name = fmt.Sprintf("variant-%d", i+1)
		}
		if seen[v.Name] {
			return nil, fmt.Errorf("%w: duplicate variant %q", ErrCampaign, v.Name)
		}
		seen[v.Name] = true
		if v.Scenario == nil {
			return nil, fmt.Errorf("%w: variant %q has no scenario", ErrCampaign, v.Name)
		}
		if v.Model == nil {
			v.Model = c.Model
		}
		if v.Model == nil {
			return nil, fmt.Errorf("%w: variant %q has no model and the campaign has no default", ErrCampaign, v.Name)
		}
		if v.Repeat < 1 {
			v.Repeat = 1
		}
		if len(v.Seeds) == 0 {
			seed := v.Scenario.Seed
			if seed == 0 {
				seed = 1
			}
			v.Seeds = []int64{seed}
		}
	}
	return out, nil
}

// RunCampaign executes the campaign's full sweep — every (variant, seed,
// attempt) triple — on a bounded worker pool and aggregates the per-run
// RunReports into a CampaignReport: per-variant score and performance
// distributions, cross-seed determinism checks, and both machine-readable
// (WriteJSON) and human (String) renderings.
//
// Run ordering and worker count never change the deterministic half of any
// run: each run owns a private range seeded from its own (scenario, seed), so
// the set of run fingerprints is identical whether the sweep executes on one
// worker or many (pinned by the campaign determinism tests). A failed run
// (compile error, aborted scenario, failed event) is recorded in its
// CampaignRun rather than aborting the sweep; callers decide via
// CampaignReport.Failures and EventFailures whether the population is usable.
func RunCampaign(ctx context.Context, c *Campaign, opts ...CampaignOption) (*CampaignReport, error) {
	cfg := campaignConfig{workers: c.Workers}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.workers < 1 {
		cfg.workers = runtime.GOMAXPROCS(0)
	}
	name := c.Name
	if name == "" {
		name = "campaign"
	}
	variants, err := c.normalizedVariants()
	if err != nil {
		return nil, err
	}
	// Default every distinct model's name serially, before the pool shares
	// them: Compile writes ms.Name when empty, which would otherwise be the
	// one write against the read-only sharing contract.
	for i := range variants {
		if variants[i].Model.Name == "" {
			variants[i].Model.Name = name
		}
	}

	var specs []campaignRunSpec
	for i := range variants {
		v := &variants[i]
		for _, seed := range v.Seeds {
			for attempt := 1; attempt <= v.Repeat; attempt++ {
				specs = append(specs, campaignRunSpec{variant: v, model: v.Model, seed: seed, attempt: attempt})
			}
		}
	}

	rep := &CampaignReport{
		Campaign: name,
		Workers:  cfg.workers,
		Runs:     make([]CampaignRun, len(specs)),
	}
	start := time.Now()
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				rep.Runs[idx] = executeCampaignRun(ctx, specs[idx])
			}
		}()
	}
	for idx := range specs {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	rep.WallTime = time.Since(start)
	rep.aggregate(variants)
	return rep, nil
}

// executeCampaignRun performs one isolated run: compile the (shared, read-
// only) model into a private range, execute the scenario, tear down, record.
func executeCampaignRun(ctx context.Context, spec campaignRunSpec) CampaignRun {
	v := spec.variant
	run := CampaignRun{
		Variant: v.Name,
		Seed:    spec.seed,
		Attempt: spec.attempt,
		Engine:  "parallel",
	}
	if v.Sequential {
		run.Engine = "sequential"
	}
	run.FramePooling = v.FramePooling == nil || *v.FramePooling
	if err := ctx.Err(); err != nil {
		run.Err = fmt.Sprintf("cancelled before run: %v", err)
		return run
	}

	compileStart := time.Now()
	r, err := Compile(spec.model)
	if err != nil {
		run.Err = fmt.Sprintf("compile: %v", err)
		return run
	}
	defer r.Stop()
	run.CompileTime = time.Since(compileStart)

	opts := []RunOption{WithSeed(spec.seed)}
	if v.Sequential {
		opts = append(opts, WithSequential())
	}
	if v.FramePooling != nil {
		opts = append(opts, WithFramePooling(*v.FramePooling))
	}
	runStart := time.Now()
	report, err := RunScenario(ctx, r, v.Scenario, opts...)
	run.Duration = time.Since(runStart)
	if err != nil {
		run.Err = err.Error()
		return run
	}
	run.Report = report
	run.fingerprint = report.Fingerprint()
	run.Fingerprint = fingerprintHash(run.fingerprint)
	run.Steps = report.Steps
	if report.Steps > 0 {
		run.StepTime = run.Duration / time.Duration(report.Steps)
	}
	run.Precision = report.Precision
	run.Recall = report.Recall
	if report.Err != "" {
		run.Err = report.Err
	}
	run.EventErrors = report.FailedEvents()
	return run
}
