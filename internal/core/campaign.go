package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// ErrCampaign is returned when a campaign cannot be validated or executed.
var ErrCampaign = errors.New("core: invalid campaign")

// Campaign is a declarative sweep over scenario runs: the population form of
// the single (model, scenario, seed) experiment RunScenario executes. Each
// variant pairs a scenario with a seed list and the engine/data-plane toggles
// to run it under; RunCampaign expands the cross product into individual runs
// and executes them concurrently on a bounded worker pool, one isolated
// CyberRange per run.
//
// Each distinct model is compiled once into a root range whose immutable
// artifacts (parsed SCL, power-model template, device configs, prewarmed
// solver) every run shares read-only; the mutable layers — fabric, coupling
// cache, grid, devices — are never shared. Each run forks the root
// (CyberRange.Fork) into a private range it starts and stops itself, or
// compiles its own under WithPerRunCompile.
type Campaign struct {
	Name string
	// Model is the default model compiled for every run; a variant may
	// override it with its own. Required unless every variant carries one.
	Model *ModelSet
	// Workers is the default worker-pool size (0 = runtime.GOMAXPROCS);
	// WithWorkers overrides it per execution.
	Workers  int
	Variants []CampaignVariant
}

// CampaignVariant is one cell of the sweep matrix: a scenario executed once
// per (seed, attempt) under a fixed engine and data-plane choice.
type CampaignVariant struct {
	Name string
	// Model overrides the campaign's default model for this variant.
	Model    *ModelSet
	Scenario *Scenario
	// Seeds are the replay seeds to sweep. A nil list defaults to the
	// scenario's own seed (or 1), i.e. a single run per attempt; a non-nil
	// empty list is rejected (a sweep of zero runs is a config error).
	Seeds []int64
	// Repeat is the number of runs per seed (default 1). Repeat >= 2 turns
	// the variant into a determinism probe: all attempts of a (variant, seed)
	// pair must produce identical RunReport fingerprints.
	Repeat int
	// Sequential drives the runs with the single-threaded reference step
	// engine (StepAllSequential) instead of the sharded parallel engine.
	Sequential bool
	// FramePooling selects the pooled (true) or reference copy-per-publish
	// (false) data plane; nil keeps the network's default (pooled).
	FramePooling *bool
}

// campaignRunSpec is one expanded run of the sweep.
type campaignRunSpec struct {
	variant *CampaignVariant
	model   *ModelSet
	seed    int64
	attempt int // 1-based repeat index
	// root is the model's compile-once range; runs fork it instead of
	// recompiling. nil under WithPerRunCompile (each run compiles), and when
	// the root compile failed (rootErr carries the error to every run).
	root    *CyberRange
	rootErr error
}

// normalizedVariants validates the campaign and expands defaults: variant
// names, seed lists, repeat counts and the per-variant model.
func (c *Campaign) normalizedVariants() ([]CampaignVariant, error) {
	if len(c.Variants) == 0 {
		return nil, fmt.Errorf("%w: no variants", ErrCampaign)
	}
	out := append([]CampaignVariant(nil), c.Variants...)
	seen := make(map[string]bool, len(out))
	for i := range out {
		v := &out[i]
		if v.Name == "" {
			v.Name = fmt.Sprintf("variant-%d", i+1)
		}
		if seen[v.Name] {
			return nil, fmt.Errorf("%w: duplicate variant %q", ErrCampaign, v.Name)
		}
		seen[v.Name] = true
		if v.Scenario == nil {
			return nil, fmt.Errorf("%w: variant %q has no scenario", ErrCampaign, v.Name)
		}
		if v.Model == nil {
			v.Model = c.Model
		}
		if v.Model == nil {
			return nil, fmt.Errorf("%w: variant %q has no model and the campaign has no default", ErrCampaign, v.Name)
		}
		if v.Repeat < 1 {
			v.Repeat = 1
		}
		if v.Seeds != nil && len(v.Seeds) == 0 {
			// A present-but-empty seed list is a sweep of zero runs — almost
			// always a truncated config, so it fails fast naming the variant
			// instead of silently contributing nothing to the population.
			// A nil list keeps the documented default below.
			return nil, fmt.Errorf("%w: variant %q has an empty seed list (omit Seeds to default to the scenario seed)", ErrCampaign, v.Name)
		}
		if len(v.Seeds) == 0 {
			seed := v.Scenario.Seed
			if seed == 0 {
				seed = 1
			}
			v.Seeds = []int64{seed}
		}
	}
	return out, nil
}

// RunCampaign executes the campaign's full sweep — every (variant, seed,
// attempt) triple — on a bounded worker pool and aggregates the per-run
// RunReports into a CampaignReport: per-variant score and performance
// distributions, cross-seed determinism checks, and both machine-readable
// (WriteJSON) and human (String) renderings.
//
// Run ordering and worker count never change the deterministic half of any
// run: each run owns a private range seeded from its own (scenario, seed), so
// the set of run fingerprints is identical whether the sweep executes on one
// worker or many (pinned by the campaign determinism tests). A failed run
// (compile error, aborted scenario, failed event) is recorded in its
// CampaignRun rather than aborting the sweep; callers decide via
// CampaignReport.Failures and EventFailures whether the population is usable.
//
// Each distinct model is compiled once and every run forks the compiled root
// (CyberRange.Fork): the expensive SG-ML pipeline — merge, model generation,
// config validation, solver warm-up — runs once per model instead of once per
// run, and stopped forks hand their fabric inboxes back for the next fork.
// WithPerRunCompile restores the old compile-every-run behaviour; the two
// paths produce byte-identical run fingerprints (pinned by the campaign fork
// tests and BenchmarkScale_CampaignThroughput).
func RunCampaign(ctx context.Context, c *Campaign, opts ...CampaignOption) (*CampaignReport, error) {
	cfg := optionSet{workers: c.Workers}
	applyCampaign(opts, &cfg)
	if cfg.workers < 1 {
		cfg.workers = runtime.GOMAXPROCS(0)
	}
	name := c.Name
	if name == "" {
		name = "campaign"
	}
	variants, err := c.normalizedVariants()
	if err != nil {
		return nil, err
	}
	// Default every distinct model's name serially, before the pool shares
	// them: Compile writes ms.Name when empty, which would otherwise be the
	// one write against the read-only sharing contract.
	for i := range variants {
		if variants[i].Model.Name == "" {
			variants[i].Model.Name = name
		}
	}

	// Compile each distinct model once, up front. A root compile failure is
	// not fatal to the sweep: it is recorded on every run of the affected
	// variants, exactly as the per-run compile error used to be.
	roots := make(map[*ModelSet]*CyberRange)
	rootErrs := make(map[*ModelSet]error)
	if !cfg.perRunCompile {
		for i := range variants {
			ms := variants[i].Model
			if _, ok := roots[ms]; ok {
				continue
			}
			if _, ok := rootErrs[ms]; ok {
				continue
			}
			root, err := Compile(ms)
			if err != nil {
				rootErrs[ms] = err
				continue
			}
			// The root exists only to be forked: donate its idle fabric
			// channels to the recycler so the sweep's first fork starts from
			// a warm pool instead of allocating a fabric of its own.
			root.releaseFabric()
			roots[ms] = root
		}
		defer func() {
			for _, root := range roots {
				root.Stop()
			}
		}()
	}

	var specs []campaignRunSpec
	for i := range variants {
		v := &variants[i]
		for _, seed := range v.Seeds {
			for attempt := 1; attempt <= v.Repeat; attempt++ {
				specs = append(specs, campaignRunSpec{
					variant: v, model: v.Model, seed: seed, attempt: attempt,
					root: roots[v.Model], rootErr: rootErrs[v.Model],
				})
			}
		}
	}

	rep := &CampaignReport{
		Campaign: name,
		Workers:  cfg.workers,
		Runs:     make([]CampaignRun, len(specs)),
	}
	start := time.Now()
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				rep.Runs[idx] = executeCampaignRun(ctx, specs[idx])
			}
		}()
	}
	for idx := range specs {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	rep.WallTime = time.Since(start)
	rep.aggregate(variants)
	return rep, nil
}

// executeCampaignRun performs one isolated run: obtain a private range — a
// fork of the model's compile-once root, or a fresh compile under
// WithPerRunCompile — execute the scenario, tear down, record.
func executeCampaignRun(ctx context.Context, spec campaignRunSpec) CampaignRun {
	v := spec.variant
	run := CampaignRun{
		Variant: v.Name,
		Seed:    spec.seed,
		Attempt: spec.attempt,
		Engine:  "parallel",
	}
	if v.Sequential {
		run.Engine = "sequential"
	}
	run.FramePooling = v.FramePooling == nil || *v.FramePooling
	if err := ctx.Err(); err != nil {
		run.Err = fmt.Sprintf("cancelled before run: %v", err)
		return run
	}

	// CompileTime records what this run paid to obtain its range: the fork
	// (fast path) or the full compile (per-run-compile reference path).
	compileStart := time.Now()
	var r *CyberRange
	var err error
	switch {
	case spec.rootErr != nil:
		err = spec.rootErr
	case spec.root != nil:
		r, err = spec.root.Fork()
	default:
		r, err = Compile(spec.model)
	}
	if err != nil {
		run.Err = fmt.Sprintf("compile: %v", err)
		return run
	}
	defer r.Stop()
	run.CompileTime = time.Since(compileStart)

	opts := []RunOption{WithSeed(spec.seed)}
	if v.Sequential {
		opts = append(opts, WithSequential())
	}
	if v.FramePooling != nil {
		opts = append(opts, WithFramePooling(*v.FramePooling))
	}
	runStart := time.Now()
	report, err := RunScenario(ctx, r, v.Scenario, opts...)
	run.Duration = time.Since(runStart)
	if err != nil {
		run.Err = err.Error()
		return run
	}
	run.Report = report
	run.fingerprint = report.Fingerprint()
	run.Fingerprint = fingerprintHash(run.fingerprint)
	run.Steps = report.Steps
	if report.Steps > 0 {
		run.StepTime = run.Duration / time.Duration(report.Steps)
	}
	run.Precision = report.Precision
	run.Recall = report.Recall
	if report.Err != "" {
		run.Err = report.Err
	}
	run.EventErrors = report.FailedEvents()
	return run
}
