package core

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// ErrCampaign is returned when a campaign cannot be validated or executed.
var ErrCampaign = errors.New("core: invalid campaign")

// Campaign is a declarative sweep over scenario runs: the population form of
// the single (model, scenario, seed) experiment RunScenario executes. Each
// variant pairs a scenario with a seed list and the engine/data-plane toggles
// to run it under; RunCampaign expands the cross product into individual runs
// and executes them concurrently on a bounded worker pool, one isolated
// CyberRange per run.
//
// Each distinct model is compiled once into a root range whose immutable
// artifacts (parsed SCL, power-model template, device configs, prewarmed
// solver) every run shares read-only; the mutable layers — fabric, coupling
// cache, grid, devices — are never shared. Each run forks the root
// (CyberRange.Fork) into a private range it starts and stops itself, or
// compiles its own under WithPerRunCompile.
type Campaign struct {
	Name string
	// Model is the default model compiled for every run; a variant may
	// override it with its own. Required unless every variant carries one.
	Model *ModelSet
	// Workers is the default worker-pool size (0 = runtime.GOMAXPROCS);
	// WithWorkers overrides it per execution.
	Workers  int
	Variants []CampaignVariant
}

// CampaignVariant is one cell of the sweep matrix: a scenario executed once
// per (seed, attempt) under a fixed engine and data-plane choice.
type CampaignVariant struct {
	Name string
	// Model overrides the campaign's default model for this variant.
	Model    *ModelSet
	Scenario *Scenario
	// Seeds are the replay seeds to sweep. A nil list defaults to the
	// scenario's own seed (or 1), i.e. a single run per attempt; a non-nil
	// empty list is rejected (a sweep of zero runs is a config error).
	Seeds []int64
	// Repeat is the number of runs per seed (default 1). Repeat >= 2 turns
	// the variant into a determinism probe: all attempts of a (variant, seed)
	// pair must produce identical RunReport fingerprints.
	Repeat int
	// Sequential drives the runs with the single-threaded reference step
	// engine (StepAllSequential) instead of the sharded parallel engine.
	Sequential bool
	// FramePooling selects the pooled (true) or reference copy-per-publish
	// (false) data plane; nil keeps the network's default (pooled).
	FramePooling *bool
	// MaxSteps caps each run of the variant at this many executed steps
	// (0 = no budget): a scenario stepping past it aborts with a
	// deterministic "step budget" error. See WithMaxSteps.
	MaxSteps int
}

// RunSink observes completed campaign runs as they finish — the streaming
// half of the campaign result path. RunCampaign delivers every executed run
// to every attached sink from worker goroutines, in completion order (which
// is scheduling-dependent; CampaignReport.Runs keeps declaration order
// regardless). Cells that were cancelled before they executed are recorded
// in the report but never delivered to sinks, so a persistent sink only ever
// checkpoints real outcomes. Implementations must be safe for concurrent
// use; the first Put error fails the sweep (the report is still returned).
//
// The in-memory aggregation behind CampaignReport is itself just the default
// sink; stores (internal/store) are sinks with a resume/verify surface.
type RunSink interface {
	Put(run CampaignRun) error
}

// CampaignStore is the persistence contract RunCampaign drives when a store
// is attached (WithCampaignStore, surfaced publicly as sgml.WithStore): a
// RunSink whose records survive the process, plus the resume surface. The
// backends live in internal/store, which core must not import; they satisfy
// this interface structurally.
//
// A store may additionally implement
//
//	Finish(rep *CampaignReport) error
//	Close() error
//
// Finish is called exactly once, after aggregation, when the sweep completed
// with every cell executed cleanly and every record persisted (no
// cancellation, no failed run, no store degradation) — the point at which a
// store commits the result set, e.g. seals it under its Merkle root and
// stamps CampaignReport.MerkleRoot. A store whose Put keeps failing after
// retries does not fail the sweep: the report is flagged StoreDegraded and
// the store is left unsealed so WithResume can re-execute the unpersisted
// cells. Close is called when RunCampaign returns.
type CampaignStore interface {
	RunSink
	// Done reports whether a clean record for the (variant, seed, attempt)
	// cell is already persisted.
	Done(variant string, seed int64, attempt int) bool
	// Load reconstructs the persisted population as a partial
	// CampaignReport: one entry per stored cell, full RunReports attached
	// and fingerprints rehydrated, sorted by (variant, seed, attempt).
	Load() (*CampaignReport, error)
}

// StoreOpener opens a CampaignStore for a specific campaign — deferred to
// RunCampaign time because durable stores key their layout by the campaign's
// name and SpecHash, which only exist once the campaign is assembled.
type StoreOpener func(c *Campaign) (CampaignStore, error)

// cellKey identifies one cell of the sweep matrix.
type cellKey struct {
	variant string
	seed    int64
	attempt int
}

// campaignRunSpec is one expanded run of the sweep.
type campaignRunSpec struct {
	variant *CampaignVariant
	model   *ModelSet
	seed    int64
	attempt int // 1-based repeat index
	// root is the model's compile-once range; runs fork it instead of
	// recompiling. nil under WithPerRunCompile (each run compiles), and when
	// the root compile failed (rootErr carries the error to every run).
	root    *CyberRange
	rootErr error
	// rootErrTime is what the failed root compile cost: attributed as the
	// CompileTime of every run the failure propagates to, so failed runs
	// stay accountable in sinks and store records.
	rootErrTime time.Duration
}

// normalizedVariants validates the campaign and expands defaults: variant
// names, seed lists, repeat counts and the per-variant model.
func (c *Campaign) normalizedVariants() ([]CampaignVariant, error) {
	if len(c.Variants) == 0 {
		return nil, fmt.Errorf("%w: no variants", ErrCampaign)
	}
	out := append([]CampaignVariant(nil), c.Variants...)
	seen := make(map[string]bool, len(out))
	for i := range out {
		v := &out[i]
		if v.Name == "" {
			v.Name = fmt.Sprintf("variant-%d", i+1)
		}
		if seen[v.Name] {
			return nil, fmt.Errorf("%w: duplicate variant %q", ErrCampaign, v.Name)
		}
		seen[v.Name] = true
		if v.Scenario == nil {
			return nil, fmt.Errorf("%w: variant %q has no scenario", ErrCampaign, v.Name)
		}
		if v.Model == nil {
			v.Model = c.Model
		}
		if v.Model == nil {
			return nil, fmt.Errorf("%w: variant %q has no model and the campaign has no default", ErrCampaign, v.Name)
		}
		if v.Repeat < 1 {
			v.Repeat = 1
		}
		if v.Seeds != nil && len(v.Seeds) == 0 {
			// A present-but-empty seed list is a sweep of zero runs — almost
			// always a truncated config, so it fails fast naming the variant
			// instead of silently contributing nothing to the population.
			// A nil list keeps the documented default below.
			return nil, fmt.Errorf("%w: variant %q has an empty seed list (omit Seeds to default to the scenario seed)", ErrCampaign, v.Name)
		}
		if len(v.Seeds) == 0 {
			seed := v.Scenario.Seed
			if seed == 0 {
				seed = 1
			}
			v.Seeds = []int64{seed}
		}
	}
	return out, nil
}

// SpecHash returns the hex SHA-256 content hash of the campaign's normalized
// declarative spec: every variant's name, model name, seed list, repeat
// count and engine/data-plane toggles, plus its scenario's attackers and
// typed events in their canonical one-line descriptions. The hash is a pure
// function of the declaration — independent of the process, pointer
// identity or run order — so durable stores key their on-disk layout by it
// and an edited campaign can never resume into a stale record set.
//
// The hash covers the declarative sweep surface, not the model file bytes:
// pointing the same-named model directory at different content is the
// operator's responsibility (and surfaces as fingerprint divergence in the
// determinism verdict).
func (c *Campaign) SpecHash() (string, error) {
	variants, err := c.normalizedVariants()
	if err != nil {
		return "", err
	}
	name := c.Name
	if name == "" {
		name = "campaign"
	}
	h := sha256.New()
	fmt.Fprintf(h, "campaign %q\n", name)
	for i := range variants {
		v := &variants[i]
		engine := "parallel"
		if v.Sequential {
			engine = "sequential"
		}
		pooling := "default"
		if v.FramePooling != nil {
			pooling = fmt.Sprintf("%t", *v.FramePooling)
		}
		fmt.Fprintf(h, "variant %q model=%q seeds=%v repeat=%d engine=%s pooling=%s",
			v.Name, v.Model.Name, v.Seeds, v.Repeat, engine, pooling)
		if v.MaxSteps > 0 {
			// Appended only when set, so pre-existing campaigns keep their
			// store keys.
			fmt.Fprintf(h, " maxsteps=%d", v.MaxSteps)
		}
		fmt.Fprintf(h, "\n")
		sc := v.Scenario
		fmt.Fprintf(h, "  scenario %q steps=%d seed=%d\n", sc.Name, sc.Steps, sc.Seed)
		for _, a := range sc.Attackers {
			fmt.Fprintf(h, "  attacker %q switch=%q ip=%v mac=%v\n", a.Name, a.Switch, a.IP, a.MAC)
		}
		for _, ev := range sc.Events {
			action := "<nil>"
			if ev.Action != nil {
				action = ev.Action.describe()
			}
			fmt.Fprintf(h, "  event %q trigger=%q action=%q\n", ev.Name, ev.Trigger.describe(), action)
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

// memorySink is the default RunSink: it places each completed run at its
// expansion index in the report, so CampaignReport.Runs keeps declaration
// order no matter which worker finishes which cell first (completion order
// is only observable through additional sinks).
type memorySink struct {
	mu    sync.Mutex
	rep   *CampaignReport
	index map[cellKey]int
}

func (s *memorySink) Put(run CampaignRun) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if idx, ok := s.index[cellKey{run.Variant, run.Seed, run.Attempt}]; ok {
		s.rep.Runs[idx] = run
	}
	return nil
}

// RunCampaign executes the campaign's full sweep — every (variant, seed,
// attempt) triple — on a bounded worker pool, streaming each completed
// CampaignRun through the attached RunSinks as it finishes and aggregating
// the population into a CampaignReport: per-variant score and performance
// distributions, cross-seed determinism checks, and both machine-readable
// (WriteJSON) and human (String) renderings.
//
// Run ordering and worker count never change the deterministic half of any
// run: each run owns a private range seeded from its own (scenario, seed), so
// the set of run fingerprints is identical whether the sweep executes on one
// worker or many (pinned by the campaign determinism tests). A failed run
// (compile error, aborted scenario, failed event) is recorded in its
// CampaignRun rather than aborting the sweep; callers decide via
// CampaignReport.Failures and EventFailures whether the population is usable.
//
// Each distinct model is compiled once and every run forks the compiled root
// (CyberRange.Fork): the expensive SG-ML pipeline — merge, model generation,
// config validation, solver warm-up — runs once per model instead of once per
// run, and stopped forks hand their fabric inboxes back for the next fork.
// WithPerRunCompile restores the old compile-every-run behaviour; the two
// paths produce byte-identical run fingerprints (pinned by the campaign fork
// tests and BenchmarkScale_CampaignThroughput).
//
// With a store attached (WithCampaignStore / sgml.WithStore) every executed
// run is checkpointed as it completes, and WithResume pre-loads the store's
// records: already-done cells are restored into the report (marked Resumed)
// and excluded from dispatch, so an interrupted sweep pays only for the
// cells it never finished. Cancellation is prompt: the dispatcher watches
// ctx and marks every not-yet-dispatched cell "cancelled before run" in bulk
// instead of feeding the whole matrix through the pool.
func RunCampaign(ctx context.Context, c *Campaign, opts ...CampaignOption) (*CampaignReport, error) {
	cfg := optionSet{workers: c.Workers}
	applyCampaign(opts, &cfg)
	if cfg.workers < 1 {
		cfg.workers = runtime.GOMAXPROCS(0)
	}
	name := c.Name
	if name == "" {
		name = "campaign"
	}
	variants, err := c.normalizedVariants()
	if err != nil {
		return nil, err
	}
	// Default every distinct model's name serially, before the pool shares
	// them: Compile writes ms.Name when empty, which would otherwise be the
	// one write against the read-only sharing contract.
	for i := range variants {
		if variants[i].Model.Name == "" {
			variants[i].Model.Name = name
		}
	}

	// Attach the store, if any. Opening is deferred to here because durable
	// stores key their layout by the campaign's name and SpecHash.
	var st CampaignStore
	if cfg.storeOpen != nil {
		if st, err = cfg.storeOpen(c); err != nil {
			return nil, err
		}
		if cl, ok := st.(interface{ Close() error }); ok {
			defer cl.Close()
		}
	}
	if cfg.resume && st == nil {
		return nil, fmt.Errorf("%w: WithResume needs a store to resume from (WithStore)", ErrCampaign)
	}

	// Expand the sweep matrix. rep.Runs is indexed by expansion order; the
	// cell index lets sinks and the resume path address cells by identity.
	var specs []campaignRunSpec
	for i := range variants {
		v := &variants[i]
		for _, seed := range v.Seeds {
			for attempt := 1; attempt <= v.Repeat; attempt++ {
				specs = append(specs, campaignRunSpec{variant: v, model: v.Model, seed: seed, attempt: attempt})
			}
		}
	}
	rep := &CampaignReport{
		Campaign: name,
		Workers:  cfg.workers,
		Runs:     make([]CampaignRun, len(specs)),
	}
	index := make(map[cellKey]int, len(specs))
	for idx := range specs {
		s := &specs[idx]
		index[cellKey{s.variant.Name, s.seed, s.attempt}] = idx
	}

	// Resume: restore the store's records into the report and build the
	// skip-set — restored cells are never dispatched, let alone re-executed.
	var pending []int
	if cfg.resume {
		stored, err := st.Load()
		if err != nil {
			return nil, fmt.Errorf("resume: %w", err)
		}
		restored := make(map[cellKey]*CampaignRun, len(stored.Runs))
		for i := range stored.Runs {
			run := &stored.Runs[i]
			restored[cellKey{run.Variant, run.Seed, run.Attempt}] = run
		}
		for idx := range specs {
			s := &specs[idx]
			prior, ok := restored[cellKey{s.variant.Name, s.seed, s.attempt}]
			if !ok {
				pending = append(pending, idx)
				continue
			}
			run := *prior
			run.Resumed = true
			rep.Runs[idx] = run
			rep.Resumed++
		}
	} else {
		pending = make([]int, len(specs))
		for i := range pending {
			pending[i] = i
		}
	}

	// Compile each model with pending cells once, up front (a fully-resumed
	// sweep compiles nothing). A root compile failure is not fatal to the
	// sweep: it is recorded on every run of the affected variants, exactly
	// as the per-run compile error used to be.
	roots := make(map[*ModelSet]*CyberRange)
	rootErrs := make(map[*ModelSet]error)
	rootErrTimes := make(map[*ModelSet]time.Duration)
	if !cfg.perRunCompile {
		for _, idx := range pending {
			ms := specs[idx].model
			if _, ok := roots[ms]; ok {
				continue
			}
			if _, ok := rootErrs[ms]; ok {
				continue
			}
			compileStart := time.Now()
			root, err := Compile(ms)
			if err != nil {
				rootErrs[ms] = err
				rootErrTimes[ms] = time.Since(compileStart)
				continue
			}
			// The root exists only to be forked: donate its idle fabric
			// channels to the recycler so the sweep's first fork starts from
			// a warm pool instead of allocating a fabric of its own.
			root.releaseFabric()
			roots[ms] = root
		}
		defer func() {
			for _, root := range roots {
				root.Stop()
			}
		}()
		for _, idx := range pending {
			s := &specs[idx]
			s.root, s.rootErr = roots[s.model], rootErrs[s.model]
			s.rootErrTime = rootErrTimes[s.model]
		}
	}

	// The sink chain: the report's own in-memory aggregation first, then any
	// extra observers, then the store. Cancelled cells reach only the memory
	// sink — a store must never checkpoint a cell that did not execute.
	//
	// The store is handled apart from the other sinks because its failure
	// mode differs: a sink error is a caller bug and fails the sweep, while a
	// store append error is infrastructure — the write is retried with
	// backoff, and if it keeps failing the sweep is demoted to a flagged
	// StoreDegraded report (results intact in memory, store left unsealed so
	// WithResume can re-execute the unpersisted cells) instead of failing
	// runs that actually succeeded.
	mem := &memorySink{rep: rep, index: index}
	ext := append([]RunSink(nil), cfg.sinks...)
	var sinkMu sync.Mutex
	var sinkErr error
	record := func(run CampaignRun) {
		mem.Put(run)
		if run.cancelled {
			return
		}
		for _, s := range ext {
			if err := s.Put(run); err != nil {
				sinkMu.Lock()
				if sinkErr == nil {
					sinkErr = err
				}
				sinkMu.Unlock()
			}
		}
		if st != nil {
			err := st.Put(run)
			for try := 1; err != nil && try <= cfg.retries && ctx.Err() == nil; try++ {
				if !sleepBackoff(ctx, try) {
					break
				}
				err = st.Put(run)
			}
			if err != nil {
				sinkMu.Lock()
				if !rep.StoreDegraded {
					rep.StoreDegraded = true
					rep.StoreErr = fmt.Sprintf("%s: %v", FailStore, err)
				}
				sinkMu.Unlock()
			}
		}
	}

	// executeCell is the worker's unit of work: one run, retried on a fresh
	// fork for infrastructure-shaped failures (RunFailure.Retryable) with
	// capped exponential backoff, the attempt history kept on the final run.
	executeCell := func(spec campaignRunSpec) CampaignRun {
		run := executeCampaignRun(ctx, spec, &cfg, 1)
		var history []RunRetry
		for try := 1; try <= cfg.retries; try++ {
			if !run.Failure.Retryable() || ctx.Err() != nil {
				break
			}
			history = append(history, RunRetry{
				Try: try, Failure: run.Failure, Err: run.Err, Backoff: retryBackoff(try),
			})
			if !sleepBackoff(ctx, try) {
				break
			}
			run = executeCampaignRun(ctx, spec, &cfg, try+1)
		}
		run.Retries = history
		return run
	}

	start := time.Now()
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				record(executeCell(specs[idx]))
			}
		}()
	}
	// The dispatcher watches ctx alongside the unbuffered job channel: on
	// cancellation it stops feeding immediately and stamps every cell it
	// never handed out in one bulk pass, so a cancelled 10k-run sweep
	// returns as soon as the in-flight runs notice, instead of funnelling
	// every remaining cell through a worker just to mark it cancelled.
	cancelledAt := -1
	for i, idx := range pending {
		select {
		case jobs <- idx:
			continue
		case <-ctx.Done():
			cancelledAt = i
		}
		break
	}
	close(jobs)
	if cancelledAt >= 0 {
		cause := ctx.Err()
		for _, idx := range pending[cancelledAt:] {
			record(cancelledRun(&specs[idx], cause))
		}
	}
	wg.Wait()
	rep.WallTime = time.Since(start)
	rep.aggregate(variants)
	if sinkErr != nil {
		return rep, fmt.Errorf("campaign sink: %w", sinkErr)
	}
	// Commit the finished sweep. Only a complete, fully-clean, fully-persisted
	// population is committed: a cancelled, partially-failed or store-degraded
	// sweep stays open so a later resume can finish (or retry) the missing
	// cells.
	if st != nil && cancelledAt < 0 && rep.Failures == 0 && !rep.StoreDegraded {
		if fin, ok := st.(interface{ Finish(*CampaignReport) error }); ok {
			if err := fin.Finish(rep); err != nil {
				return rep, fmt.Errorf("campaign store commit: %w", err)
			}
		}
	}
	return rep, nil
}

// cancelledRun stamps a cell that will never execute because the context was
// cancelled first. Cancelled cells are recorded in the report (the operator
// sees exactly which cells are missing) but withheld from sinks.
func cancelledRun(spec *campaignRunSpec, cause error) CampaignRun {
	v := spec.variant
	run := CampaignRun{
		Variant: v.Name,
		Seed:    spec.seed,
		Attempt: spec.attempt,
		Engine:  "parallel",
	}
	if v.Sequential {
		run.Engine = "sequential"
	}
	run.FramePooling = v.FramePooling == nil || *v.FramePooling
	run.Err = fmt.Sprintf("cancelled before run: %v", cause)
	run.Failure = FailCancelled
	run.cancelled = true
	return run
}

// executeCampaignRun performs one isolated attempt of a run: obtain a private
// range — a fork of the model's compile-once root, or a fresh compile under
// WithPerRunCompile — execute the scenario under its own deadline, tear down,
// record, classify. try is the 1-based attempt number (see WithRetries); the
// fault-injection probe receives it so injected faults can target one
// attempt.
//
// The function is the worker boundary for panic isolation: a panic anywhere
// in the fork/start/step/teardown path is recovered here and converted into a
// FailPanic run carrying the panic value and stack, so one broken device
// model can never crash the sweep.
func executeCampaignRun(ctx context.Context, spec campaignRunSpec, cfg *optionSet, try int) (run CampaignRun) {
	v := spec.variant
	run = CampaignRun{
		Variant: v.Name,
		Seed:    spec.seed,
		Attempt: spec.attempt,
		Engine:  "parallel",
	}
	if v.Sequential {
		run.Engine = "sequential"
	}
	run.FramePooling = v.FramePooling == nil || *v.FramePooling
	defer func() {
		if p := recover(); p != nil {
			// Identity fields are already set; scrub any partial outcome so
			// a panicked attempt can never masquerade as a result.
			run.Err = fmt.Sprintf("panic: %v", p)
			run.Failure = FailPanic
			run.PanicStack = string(debug.Stack())
			run.Report = nil
			run.fingerprint = ""
			run.Fingerprint = ""
		}
	}()
	if err := ctx.Err(); err != nil {
		return cancelledRun(&spec, err)
	}

	// CompileTime records what this run paid to obtain its range: the fork
	// (fast path) or the full compile (per-run-compile reference path) — on
	// the failure paths too, so failed runs stay attributable in sinks and
	// store records.
	if spec.rootErr != nil {
		// The shared root failed to compile once, up front; every run of the
		// model inherits the error and is attributed the compile's real cost.
		run.CompileTime = spec.rootErrTime
		run.Err = fmt.Sprintf("compile: %v", spec.rootErr)
		run.Failure = FailCompile
		return run
	}
	compileStart := time.Now()
	var r *CyberRange
	var err error
	if spec.root != nil {
		r, err = spec.root.Fork()
	} else {
		r, err = Compile(spec.model)
	}
	run.CompileTime = time.Since(compileStart)
	if err != nil {
		run.Err = fmt.Sprintf("compile: %v", err)
		run.Failure = FailCompile
		return run
	}
	defer r.Stop()

	// The run's own deadline (WithRunTimeout): a wedged or diverging run is
	// cancelled through its private context, leaving the rest of the sweep
	// untouched. classifyRunFailure distinguishes this from campaign
	// cancellation by checking which context died.
	runCtx := ctx
	if cfg.runTimeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, cfg.runTimeout)
		defer cancel()
	}

	opts := []RunOption{WithSeed(spec.seed)}
	if v.Sequential {
		opts = append(opts, WithSequential())
	}
	if v.FramePooling != nil {
		opts = append(opts, WithFramePooling(*v.FramePooling))
	}
	if v.MaxSteps > 0 {
		opts = append(opts, WithMaxSteps(v.MaxSteps))
	}
	if cfg.runProbe != nil {
		probe := cfg.runProbe
		variant, seed, attempt := v.Name, spec.seed, spec.attempt
		opts = append(opts, withStepProbe(func(ctx context.Context, step int) error {
			return probe(ctx, variant, seed, attempt, try, step)
		}))
	}
	runStart := time.Now()
	report, err := RunScenario(runCtx, r, v.Scenario, opts...)
	run.Duration = time.Since(runStart)
	if err != nil {
		run.Err = err.Error()
		run.Failure = classifyRunFailure(ctx, runCtx)
		return run
	}
	run.Report = report
	run.fingerprint = report.Fingerprint()
	run.Fingerprint = fingerprintHash(run.fingerprint)
	run.Steps = report.Steps
	if report.Steps > 0 {
		run.StepTime = run.Duration / time.Duration(report.Steps)
	}
	run.Precision = report.Precision
	run.Recall = report.Recall
	if report.Err != "" {
		run.Err = report.Err
		run.Failure = classifyRunFailure(ctx, runCtx)
	}
	run.EventErrors = report.FailedEvents()
	return run
}
