package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/netem"
)

// RunReport is the structured result of a scenario run: what fired and when,
// how the IDS timeline compares against the injected ground truth, and the
// closing state of the grid, plus the range's solver and data-plane counters.
//
// Everything outside Diag is deterministic for a fixed (model, scenario,
// seed): two runs — under either step engine and with frame pooling on or
// off — produce identical values, which Fingerprint canonicalises for
// replay tests. Diag collects wall-clock-coupled counters (solve times,
// frame/retransmission counts) that vary run to run and is excluded from the
// fingerprint.
type RunReport struct {
	Scenario string
	Seed     int64
	Steps    int
	Interval time.Duration
	// Engine and FramePooling record how the run was driven ("parallel" or
	// "sequential"; pooled or reference data plane). They are run metadata,
	// not outcomes, and are excluded from Fingerprint so the determinism
	// contract can be stated ACROSS engines and pooling modes.
	Engine       string
	FramePooling bool
	// Err is set when the run aborted (solver divergence, cancelled context);
	// the report still carries everything observed up to the abort.
	Err string

	Events    []EventOutcome
	Truth     []TruthEntry
	Alerts    []AlertSummary
	Precision float64 // matched distinct (sensor,kind,source) alerts / all such alerts; 1 when no alerts
	Recall    float64 // detected ground-truth injections / all injections; 1 when no injections

	Grid GridReport
	Diag RunDiagnostics
}

// EventOutcome records one scenario event's execution.
type EventOutcome struct {
	Event  string
	Action string // deterministic one-line action description
	Fired  bool
	Step   int    // step whose pre-hook fired the event; -1 if never fired
	Detail string // action-specific deterministic result, e.g. "8 ports scanned, 2 open"
	Err    string // runtime failure of the action ("" on success)
}

// TruthEntry is one injected-attack ground-truth record: the alert the IDS
// layer should have raised, and whether (and when) it did.
type TruthEntry struct {
	Event        string
	Expect       string // expected alert kind
	Source       string // expected alert source (attacker IP or MAC)
	Detected     bool
	DetectedStep int // step at whose post-hook the match was first observed; -1 if undetected
}

// AlertSummary is one distinct (sensor, kind, source) alert line of the IDS
// timeline. Repeat raises of the same line (ARP re-poisoning rounds, a write
// observed on several tapped links) collapse into it, so the summary is
// independent of wall-clock repetition counts.
type AlertSummary struct {
	Sensor    string
	Kind      string
	Source    string
	FirstStep int  // Alert.Step of the earliest raise; -1 when unstamped
	Matched   bool // corresponds to an injected ground-truth entry
}

// GridReport is the closing state of the power model.
type GridReport struct {
	Converged    bool
	Islands      int
	DeadBuses    int
	OpenBreakers []string // sorted
}

// RunDiagnostics are the wall-clock-coupled counters of the run — excluded
// from Fingerprint (see RunReport).
type RunDiagnostics struct {
	PowerSteps        uint64
	MeanSolve         time.Duration
	SolverCacheHits   uint64
	SolverCacheMisses uint64
	SolveFailures     uint64
	DataPlane         netem.DataPlaneStats
	FramesInspected   uint64 // summed over deployed sensors
	AlertsRaised      int    // raw alert count incl. repeats
}

// FailedEvents returns "event: error" lines for every scenario event whose
// action failed at runtime. Operators (rangectl, campaigns) use it to turn a
// buried event failure into a non-zero exit instead of a silent report line.
func (rep *RunReport) FailedEvents() []string {
	var out []string
	for _, e := range rep.Events {
		if e.Err != "" {
			out = append(out, fmt.Sprintf("%s: %s", e.Event, e.Err))
		}
	}
	return out
}

// Fingerprint renders the deterministic projection of the report in a
// canonical line-oriented form. Two runs of the same scenario with the same
// seed yield byte-identical fingerprints regardless of step engine, frame
// pooling, host speed or wall-clock timing; the determinism tests pin this.
func (rep *RunReport) Fingerprint() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "scenario %q seed=%d steps=%d interval=%s err=%q\n",
		rep.Scenario, rep.Seed, rep.Steps, rep.Interval, rep.Err)
	for _, e := range rep.Events {
		fmt.Fprintf(&sb, "event %q action=%q fired=%t step=%d detail=%q err=%q\n",
			e.Event, e.Action, e.Fired, e.Step, e.Detail, e.Err)
	}
	for _, tr := range rep.Truth {
		fmt.Fprintf(&sb, "truth %q expect=%s source=%s detected=%t step=%d\n",
			tr.Event, tr.Expect, tr.Source, tr.Detected, tr.DetectedStep)
	}
	for _, a := range rep.Alerts {
		fmt.Fprintf(&sb, "alert sensor=%q kind=%s source=%s first=%d matched=%t\n",
			a.Sensor, a.Kind, a.Source, a.FirstStep, a.Matched)
	}
	fmt.Fprintf(&sb, "score precision=%.4f recall=%.4f\n", rep.Precision, rep.Recall)
	fmt.Fprintf(&sb, "grid converged=%t islands=%d dead=%d open=%s\n",
		rep.Grid.Converged, rep.Grid.Islands, rep.Grid.DeadBuses,
		strings.Join(rep.Grid.OpenBreakers, ","))
	return sb.String()
}

// String renders the full report for operators (rangectl, examples): the
// deterministic sections plus the diagnostics footer.
func (rep *RunReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== scenario %q ===\n", rep.Scenario)
	fmt.Fprintf(&sb, "seed %d · %d steps @ %v · %s engine · frame pooling %v\n",
		rep.Seed, rep.Steps, rep.Interval, rep.Engine, rep.FramePooling)
	if rep.Err != "" {
		fmt.Fprintf(&sb, "RUN ABORTED: %s\n", rep.Err)
	}
	sb.WriteString("\n--- events ---\n")
	for _, e := range rep.Events {
		status := "  idle "
		if e.Fired {
			status = fmt.Sprintf("step %2d", e.Step)
		}
		fmt.Fprintf(&sb, "%s  %-20s %s", status, e.Event, e.Action)
		if e.Detail != "" {
			fmt.Fprintf(&sb, "  -> %s", e.Detail)
		}
		if e.Err != "" {
			fmt.Fprintf(&sb, "  ERROR: %s", e.Err)
		}
		sb.WriteString("\n")
	}
	if len(rep.Alerts) > 0 {
		sb.WriteString("\n--- IDS alert timeline (distinct) ---\n")
		for _, a := range rep.Alerts {
			mark := " "
			if a.Matched {
				mark = "*"
			}
			fmt.Fprintf(&sb, "%s step %2d  %-24s src=%-18s (%s)\n", mark, a.FirstStep, a.Kind, a.Source, a.Sensor)
		}
	}
	if len(rep.Truth) > 0 {
		sb.WriteString("\n--- ground truth vs detections ---\n")
		for _, tr := range rep.Truth {
			if tr.Detected {
				fmt.Fprintf(&sb, "detected  %-24s (%s, step %d)\n", tr.Expect, tr.Event, tr.DetectedStep)
			} else {
				fmt.Fprintf(&sb, "MISSED    %-24s (%s)\n", tr.Expect, tr.Event)
			}
		}
		fmt.Fprintf(&sb, "precision %.2f · recall %.2f\n", rep.Precision, rep.Recall)
	}
	fmt.Fprintf(&sb, "\n--- grid ---\nconverged=%t islands=%d dead buses=%d",
		rep.Grid.Converged, rep.Grid.Islands, rep.Grid.DeadBuses)
	if len(rep.Grid.OpenBreakers) > 0 {
		fmt.Fprintf(&sb, " open=[%s]", strings.Join(rep.Grid.OpenBreakers, " "))
	}
	d := rep.Diag
	fmt.Fprintf(&sb, "\n\n--- diagnostics (non-deterministic) ---\n")
	fmt.Fprintf(&sb, "power: %d solves, mean %v, cache %d/%d hit/miss, %d failures\n",
		d.PowerSteps, d.MeanSolve, d.SolverCacheHits, d.SolverCacheMisses, d.SolveFailures)
	fmt.Fprintf(&sb, "data plane: %d frames transmitted, %d dropped, pool hit rate %.0f%%\n",
		d.DataPlane.Transmitted, d.DataPlane.Dropped, 100*d.DataPlane.PoolHitRate())
	if d.FramesInspected > 0 || d.AlertsRaised > 0 {
		fmt.Fprintf(&sb, "ids: %d frames inspected, %d alerts raised\n", d.FramesInspected, d.AlertsRaised)
	}
	return sb.String()
}
