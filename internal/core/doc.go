// Package core implements the SG-ML Processor and the runtime it produces:
// the toolchain that parses SG-ML model files and "compiles" them into an
// operational cyber range (Fig 2 / Fig 3 of the paper), plus the engines
// that drive the compiled range — the deterministic step loop, the scenario
// scheduler and the campaign sweep executor.
//
// # Compiler (Fig 3 stages)
//
// Compile runs the stages in Fig 3 order: SSD/SCD merging
// (internal/sclmerge), power-system model generation from the SSD content
// (power.go), cyber network emulation model generation from the SCD
// communication section (network.go), virtual IED building from ICDs + IED
// Config XML, PLC instantiation from PLCopen XML, SCADA configuration from
// the SCADA Config JSON, and final assembly into a runnable CyberRange
// (range.go). Supplementary-XML power steps are validated against the
// generated grid at compile time, so a broken model fails with ErrModel
// before anything runs.
//
// # Step engines
//
// CyberRange.StepAll advances one simulation interval with the sharded
// two-phase engine (sched.go, shard.go): per-substation shards compute
// concurrently with bus writes buffered into per-IED transactions, then a
// commit phase applies them in globally sorted IED order. The committed
// kv-bus/HMI state is byte-identical to CyberRange.StepAllSequential, the
// retained single-threaded reference path.
//
// # Scenario scheduler
//
// Scenario (scenario.go) is the typed event DSL: attacker placements plus
// trigger + action pairs executed by a deterministic scheduler woven into
// the step loop as pre/post hooks (SetStepHooks). RunScenario returns the
// structured RunReport (runreport.go) whose deterministic projection
// (Fingerprint) is identical across engines, data planes and repeated runs
// for a fixed (model, scenario, seed).
//
// # Campaign engine
//
// Campaign (campaign.go) is the population form: a declarative sweep of
// scenario variants × seed lists × engine/data-plane toggles, executed by
// RunCampaign on a bounded worker pool with one isolated CyberRange per run
// and the parsed ModelSet shared read-only. The aggregated CampaignReport
// (campaignreport.go) carries per-variant distributions (precision/recall,
// alert latency, solver cache hit rate, data-plane throughput, step-time
// quantiles) and the cross-seed determinism verdict: repeated (variant,
// seed) runs must reproduce identical fingerprints regardless of worker
// count or run ordering.
package core
