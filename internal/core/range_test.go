package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/epic"
	"repro/internal/kvbus"
	"repro/internal/scl"
	"repro/internal/sgmlconf"
)

func epicModelSet(t *testing.T) *ModelSet {
	t.Helper()
	m, err := epic.NewModel()
	if err != nil {
		t.Fatal(err)
	}
	return &ModelSet{
		Name:        "epic",
		SCDs:        map[string]*scl.Document{m.Substation: m.SCD},
		ICDs:        m.ICDs,
		IEDConfig:   m.IEDConfig,
		SCADAConfig: m.SCADAConfig,
		PowerConfig: m.PowerConfig,
		PLCs:        []PLCSpec{{Config: m.PLCConfig, PLCopenXML: m.PLCopenXML}},
	}
}

func compiledEPIC(t *testing.T) *CyberRange {
	t.Helper()
	r, err := Compile(epicModelSet(t))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Stop)
	return r
}

func TestCompileEPIC(t *testing.T) {
	r := compiledEPIC(t)
	// 8 virtual IEDs; CPLC and SCADA are infra nodes.
	if len(r.IEDs) != 8 {
		t.Errorf("IEDs = %d, want 8", len(r.IEDs))
	}
	if len(r.PLCs) != 1 || r.PLCs["CPLC"] == nil {
		t.Errorf("PLCs = %v", r.PLCs)
	}
	if r.HMI == nil {
		t.Error("HMI missing")
	}
	// Power model: 4 buses, 2 lines, 1 trafo, slack+gen+2 sgens+4 loads.
	if got := len(r.Grid.Buses); got != 4 {
		t.Errorf("buses = %d, want 4", got)
	}
	if got := len(r.Grid.Lines); got != 2 {
		t.Errorf("lines = %d", got)
	}
	if got := len(r.Grid.Trafos); got != 1 {
		t.Errorf("trafos = %d", got)
	}
	if got := len(r.Grid.Loads); got != 4 {
		t.Errorf("loads = %d", got)
	}
	if got := len(r.Grid.Switches); got != 3 {
		t.Errorf("switches = %d, want 3 (CBTie, CBMicro, CBHome)", got)
	}
	// Network: 10 hosts + 5 segment switches + central switch.
	if got := len(r.Built.Hosts); got != 10 {
		t.Errorf("hosts = %d, want 10", got)
	}
	if got := len(r.Built.Switches); got != 6 {
		t.Errorf("switches = %d, want 6", got)
	}
	if r.Interval() != 100*time.Millisecond {
		t.Errorf("interval = %v", r.Interval())
	}
}

func TestFig4TopologyRendering(t *testing.T) {
	r := compiledEPIC(t)
	top := r.Topology()
	for _, want := range []string{"GIED1", "TIED1", "MIED1", "SIED1", "CPLC", "SCADA",
		"sw-GenLAN", "sw-TransLAN", "sw-MicroLAN", "sw-HomeLAN", "sw-ControlLAN", "sw-wan",
		"10.0.1.11", "10.0.1.5"} {
		if !strings.Contains(top, want) {
			t.Errorf("topology missing %q", want)
		}
	}
}

func TestFig5PowerRendering(t *testing.T) {
	r := compiledEPIC(t)
	s := r.PowerSummary()
	for _, want := range []string{"TieLine", "MicroLine", "HomeTrafo", "GenBus", "MainBus", "MicroBus", "HomeBus", "22.0", "0.4"} {
		if !strings.Contains(s, want) {
			t.Errorf("power summary missing %q:\n%s", want, s)
		}
	}
}

func TestEPICEndToEndDataPath(t *testing.T) {
	// Fig 1's full loop: simulator -> kv bus -> IED -> MMS -> PLC -> Modbus
	// -> SCADA, and control back down.
	r := compiledEPIC(t)
	ctx := context.Background()
	if err := r.Start(ctx, false); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	for i := 0; i < 3; i++ {
		now = now.Add(100 * time.Millisecond)
		if err := r.StepAll(now); err != nil {
			t.Fatal(err)
		}
	}
	// Simulator solved and published.
	res := r.Sim.LastResult()
	if res == nil || !res.Converged {
		t.Fatal("power flow did not converge")
	}
	mainBus := "EPIC/VL22/TransBay/MainBus"
	if !res.Buses[mainBus].Energized {
		t.Fatal("main bus dead")
	}
	vm := res.Buses[mainBus].VmPU
	if vm < 0.9 || vm > 1.1 {
		t.Errorf("main bus vm = %v", vm)
	}
	// IED picked the measurement up from the bus.
	if got := r.Bus.GetFloat(kvbus.BusVoltageKey("epic", mainBus), -1); got != vm {
		t.Errorf("bus voltage key = %v, want %v", got, vm)
	}
	// PLC read it over MMS and exposed it northbound (scaled by 1000).
	plcVal := r.PLCs["CPLC"].Modbus()
	reg := plcVal // input register 0
	_ = reg
	gotReg := float64(plcRead(t, r)) / 1000
	if diff := gotReg - vm; diff < -0.01 || diff > 0.01 {
		t.Errorf("PLC-exposed voltage = %v, sim %v", gotReg, vm)
	}
	// SCADA polled the PLC (MainVoltage point).
	p, err := r.HMI.Point("DP_MainVoltage")
	if err != nil {
		t.Fatal(err)
	}
	if p.Quality.String() != "GOOD" {
		t.Fatalf("SCADA point quality = %v", p.Quality)
	}
	if diff := p.Value - vm; diff < -0.01 || diff > 0.01 {
		t.Errorf("SCADA voltage = %v, sim %v", p.Value, vm)
	}
	// SCADA reads the IED directly over MMS too.
	amps, err := r.HMI.Point("DP_TieCurrent")
	if err != nil {
		t.Fatal(err)
	}
	if amps.Value <= 0 {
		t.Errorf("tie current via MMS = %v", amps.Value)
	}
	// Operator control: ManualTrip coil -> PLC logic -> MMS write -> IED ->
	// breaker command -> next solve de-energises everything downstream.
	if err := r.HMI.Control("DP_ManualTrip", 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		now = now.Add(100 * time.Millisecond)
		if err := r.StepAll(now); err != nil {
			t.Fatal(err)
		}
	}
	res = r.Sim.LastResult()
	if res.Buses[mainBus].Energized {
		t.Error("main bus still energized after manual trip")
	}
	if sw := r.Sim.Network().FindSwitch("CBTie"); sw.Closed {
		t.Error("CBTie still closed")
	}
}

// plcRead fetches input register 0 from the CPLC's Modbus table directly.
func plcRead(t *testing.T, r *CyberRange) uint16 {
	t.Helper()
	return r.PLCs["CPLC"].Modbus().InputReg(0)
}

func TestEPICRealTimeMode(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: wall-clock soak, timing-sensitive on loaded CI runners")
	}
	r := compiledEPIC(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := r.Start(ctx, true); err != nil {
		t.Fatal(err)
	}
	time.Sleep(350 * time.Millisecond)
	r.Stop()
	steps, mean := r.Sim.Stats()
	if steps < 2 {
		t.Errorf("sim steps = %d", steps)
	}
	if mean > 100*time.Millisecond {
		t.Errorf("mean solve %v exceeds interval", mean)
	}
	scans, _, _, _ := r.PLCs["CPLC"].Stats()
	if scans < 2 {
		t.Errorf("PLC scans = %d", scans)
	}
	if r.HMI.Polls() < 1 {
		t.Errorf("HMI polls = %d", r.HMI.Polls())
	}
}

func TestCompileFromSerializedFiles(t *testing.T) {
	// Full round trip: generate EPIC -> serialize to XML -> parse back ->
	// compile. This is the paper's actual workflow (files in, range out).
	m, err := epic.NewModel()
	if err != nil {
		t.Fatal(err)
	}
	files, err := m.Files()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 12 {
		t.Fatalf("files = %d", len(files))
	}
	ms, err := LoadModelFiles("epic", files)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms.ICDs) != 8 {
		t.Errorf("ICDs = %d", len(ms.ICDs))
	}
	if len(ms.PLCs) != 1 {
		t.Fatalf("PLCs = %d", len(ms.PLCs))
	}
	r, err := Compile(ms)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if err := r.Start(context.Background(), false); err != nil {
		t.Fatal(err)
	}
	if err := r.StepAll(time.Now()); err != nil {
		t.Fatal(err)
	}
	if res := r.Sim.LastResult(); res == nil || !res.Converged {
		t.Error("round-tripped model does not solve")
	}
}

func TestCompileScaleModel(t *testing.T) {
	sm, err := epic.NewScaleModel(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	ms := &ModelSet{
		Name: "scale", SCDs: sm.SCDs, SED: sm.SED,
		IEDConfig: sm.IEDConfigs, PowerConfig: sm.PowerConfig,
	}
	r, err := Compile(ms)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if len(r.IEDs) != 15 { // 3 * (4 feeders + 1 gateway)
		t.Errorf("IEDs = %d, want 15", len(r.IEDs))
	}
	// Power model spans all three substations through ties.
	if err := r.Start(context.Background(), false); err != nil {
		t.Fatal(err)
	}
	if err := r.StepAll(time.Now()); err != nil {
		t.Fatal(err)
	}
	res := r.Sim.LastResult()
	if !res.Converged {
		t.Fatal("scale model did not converge")
	}
	if res.DeadBuses != 0 {
		t.Errorf("dead buses = %d", res.DeadBuses)
	}
	if res.Islands != 1 {
		t.Errorf("islands = %d, want 1 (tied)", res.Islands)
	}
	// Feeder voltages across substations are all near nominal.
	for _, bus := range []string{"S1/VL22/F1/FeederBus", "S3/VL22/F4/FeederBus"} {
		if vm := res.Buses[bus].VmPU; vm < 0.9 || vm > 1.05 {
			t.Errorf("%s vm = %v", bus, vm)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		if _, err := Compile(&ModelSet{}); !errors.Is(err, ErrModel) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("PLC without config", func(t *testing.T) {
		ms := epicModelSet(t)
		ms.PLCs = []PLCSpec{{}}
		if _, err := Compile(ms); !errors.Is(err, ErrModel) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("PLC host missing", func(t *testing.T) {
		ms := epicModelSet(t)
		ms.PLCs[0].Config = &sgmlconf.PLCConfig{Name: "GHOST", Host: "GHOST"}
		if _, err := Compile(ms); !errors.Is(err, ErrModel) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("SCADA host missing", func(t *testing.T) {
		ms := epicModelSet(t)
		ms.SCADAHost = "GHOST"
		if _, err := Compile(ms); !errors.Is(err, ErrModel) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("bad step kind survives sgmlconf but fails compile", func(t *testing.T) {
		ms := epicModelSet(t)
		ms.PowerConfig.Steps = append(ms.PowerConfig.Steps, sgmlconf.ProfileStep{AtMS: 0, Kind: "explode", Element: "x"})
		if _, err := Compile(ms); err == nil {
			t.Error("bad step accepted")
		}
	})
}

func TestScenarioProfileAffectsRange(t *testing.T) {
	ms := epicModelSet(t)
	// Replace profile: drop PV to zero at t=200ms.
	ms.PowerConfig.Steps = []sgmlconf.ProfileStep{
		{AtMS: 200, Kind: "sgenP", Element: "PV1", Value: 0},
	}
	r, err := Compile(ms)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if err := r.Start(context.Background(), false); err != nil {
		t.Fatal(err)
	}
	r.StepAll(time.Now()) // t=200ms (initial step at Start was t=100ms)
	if got := r.Sim.Network().FindSGen("PV1").PMW; got != 0 {
		t.Errorf("PV output after scenario = %v", got)
	}
}
