package core

import (
	"errors"
	"testing"

	"repro/internal/powerflow"
	"repro/internal/powergrid"
	"repro/internal/scl"
	"repro/internal/sclmerge"
	"repro/internal/sgmlconf"
)

// miniSSD builds a small single-substation document for the SSD-parser tests:
// grid -- line L1 (CB1) -- BusB with load + gen, plus a transformer to a
// low-voltage bus with another load.
func miniSSD() *scl.Document {
	sub := "S1"
	mk := func(vl, bay, node string) string { return sub + "/" + vl + "/" + bay + "/" + node }
	return &scl.Document{
		Header: scl.Header{ID: "mini"},
		Substations: []scl.Substation{{
			Name: sub,
			VoltageLevels: []scl.VoltageLevel{
				{
					Name:    "VL110",
					Voltage: scl.Voltage{Unit: "V", Multiplier: "k", Value: 110},
					Bays: []scl.Bay{
						{
							Name: "A",
							ConductingEquipments: []scl.ConductingEquipment{
								{Name: "Grid", Type: scl.TypeExternalGrid, Terminals: []scl.Terminal{{ConnectivityNode: mk("VL110", "A", "BusA")}}},
							},
							ConnectivityNodes: []scl.ConnectivityNode{{Name: "BusA", PathName: mk("VL110", "A", "BusA")}},
						},
						{
							Name: "B",
							ConductingEquipments: []scl.ConductingEquipment{
								{Name: "L1", Type: scl.TypeLine, Terminals: []scl.Terminal{
									{ConnectivityNode: mk("VL110", "A", "BusA")},
									{ConnectivityNode: mk("VL110", "B", "BusB")},
								}},
								{Name: "CB1", Type: scl.TypeBreaker, Terminals: []scl.Terminal{
									{ConnectivityNode: mk("VL110", "B", "BusB")},
								}},
								{Name: "LD1", Type: scl.TypeLoad, Terminals: []scl.Terminal{{ConnectivityNode: mk("VL110", "B", "BusB")}}},
								{Name: "G1", Type: scl.TypeGenerator, Terminals: []scl.Terminal{{ConnectivityNode: mk("VL110", "B", "BusB")}}},
								{Name: "C1", Type: scl.TypeCapacitor, Terminals: []scl.Terminal{{ConnectivityNode: mk("VL110", "B", "BusB")}}},
							},
							ConnectivityNodes: []scl.ConnectivityNode{{Name: "BusB", PathName: mk("VL110", "B", "BusB")}},
						},
					},
				},
				{
					Name:    "VL20",
					Voltage: scl.Voltage{Unit: "V", Multiplier: "k", Value: 20},
					Bays: []scl.Bay{{
						Name: "C",
						ConductingEquipments: []scl.ConductingEquipment{
							{Name: "CB2", Type: scl.TypeBreaker, Terminals: []scl.Terminal{
								{ConnectivityNode: mk("VL20", "C", "BusC")},
							}},
							{Name: "LD2", Type: scl.TypeLoad, Terminals: []scl.Terminal{{ConnectivityNode: mk("VL20", "C", "BusC")}}},
						},
						ConnectivityNodes: []scl.ConnectivityNode{{Name: "BusC", PathName: mk("VL20", "C", "BusC")}},
					}},
				},
			},
			PowerTransformers: []scl.PowerTransformer{{
				Name: "T1",
				Windings: []scl.TransformerWinding{
					{Name: "LV", Terminals: []scl.Terminal{{ConnectivityNode: mk("VL20", "C", "BusC")}}},
					{Name: "HV", Terminals: []scl.Terminal{{ConnectivityNode: mk("VL110", "B", "BusB")}}},
				},
			}},
		}},
	}
}

func consOf(t *testing.T, doc *scl.Document) *sclmerge.Consolidated {
	t.Helper()
	cons, err := sclmerge.SingleSubstation("S1", doc)
	if err != nil {
		t.Fatal(err)
	}
	return cons
}

func TestGeneratePowerModel(t *testing.T) {
	pc := &sgmlconf.PowerConfig{
		BaseMVA: 100,
		Elements: []sgmlconf.ElementParam{
			{Kind: "load", Name: "LD1", PMW: 12, QMVAr: 3},
			{Kind: "gen", Name: "G1", PMW: 5, VmPU: 1.01, MinQMVAr: -4, MaxQMVAr: 4},
			{Kind: "extgrid", Name: "Grid", VmPU: 1.02},
			{Kind: "line", Name: "L1", LengthKM: 12, ROhmPerKM: 0.05, XOhmPerKM: 0.38, MaxIKA: 0.6},
			{Kind: "trafo", Name: "T1", SnMVA: 31.5, VKPercent: 11, VKRPercent: 0.6},
			{Kind: "shunt", Name: "C1", QMVAr: -2},
		},
	}
	grid, err := GeneratePowerModel("mini", consOf(t, miniSSD()), pc)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Buses) != 3 {
		t.Fatalf("buses = %d", len(grid.Buses))
	}
	l := grid.FindLine("L1")
	if l == nil || l.LengthKM != 12 || l.MaxIKA != 0.6 {
		t.Errorf("line = %+v", l)
	}
	if ld := grid.FindLoad("LD1"); ld == nil || ld.PMW != 12 || ld.QMVAr != 3 {
		t.Errorf("load = %+v", ld)
	}
	if g := grid.FindGen("G1"); g == nil || g.PMW != 5 || g.VmPU != 1.01 || g.MaxQMVAr != 4 {
		t.Errorf("gen = %+v", g)
	}
	if len(grid.Externals) != 1 || grid.Externals[0].VmPU != 1.02 {
		t.Errorf("ext = %+v", grid.Externals)
	}
	if len(grid.Shunts) != 1 || grid.Shunts[0].QMVAr != -2 {
		t.Errorf("shunt = %+v", grid.Shunts)
	}
	// Transformer: HV side must be the 110 kV bus despite winding order.
	if len(grid.Trafos) != 1 {
		t.Fatalf("trafos = %+v", grid.Trafos)
	}
	tr := grid.Trafos[0]
	if tr.VnHVKV != 110 || tr.VnLVKV != 20 || tr.SnMVA != 31.5 {
		t.Errorf("trafo = %+v", tr)
	}
	// Switches: CB1 guards its same-bay line; CB2 guards the trafo at BusC.
	sw1 := grid.FindSwitch("CB1")
	if sw1 == nil || sw1.Kind != powergrid.SwitchLine || sw1.Element != "L1" {
		t.Errorf("CB1 = %+v", sw1)
	}
	sw2 := grid.FindSwitch("CB2")
	if sw2 == nil || sw2.Kind != powergrid.SwitchTrafo || sw2.Element != "T1" {
		t.Errorf("CB2 = %+v", sw2)
	}
	// The generated model actually solves.
	res, err := powerflow.Solve(grid, powerflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadBuses != 0 {
		t.Errorf("dead buses = %d", res.DeadBuses)
	}
}

func TestGeneratePowerModelDefaults(t *testing.T) {
	// No PowerConfig at all: every element gets profile defaults.
	grid, err := GeneratePowerModel("mini", consOf(t, miniSSD()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if l := grid.FindLine("L1"); l.LengthKM != defLineLengthKM || l.XOhmPerKM != defLineX {
		t.Errorf("default line = %+v", l)
	}
	if ld := grid.FindLoad("LD1"); ld.PMW != defLoadPMW {
		t.Errorf("default load = %+v", ld)
	}
	if res, err := powerflow.Solve(grid, powerflow.Options{}); err != nil || !res.Converged {
		t.Errorf("default model solve: %v", err)
	}
}

func TestGeneratePowerModelBusBusBreaker(t *testing.T) {
	doc := miniSSD()
	// A two-terminal breaker becomes a coupler.
	bayB := &doc.Substations[0].VoltageLevels[0].Bays[1]
	bayB.ConnectivityNodes = append(bayB.ConnectivityNodes, scl.ConnectivityNode{
		Name: "BusB2", PathName: "S1/VL110/B/BusB2",
	})
	bayB.ConductingEquipments = append(bayB.ConductingEquipments, scl.ConductingEquipment{
		Name: "CBCouple", Type: scl.TypeBreaker,
		Terminals: []scl.Terminal{
			{ConnectivityNode: "S1/VL110/B/BusB"},
			{ConnectivityNode: "S1/VL110/B/BusB2"},
		},
	})
	grid, err := GeneratePowerModel("mini", consOf(t, doc), nil)
	if err != nil {
		t.Fatal(err)
	}
	sw := grid.FindSwitch("CBCouple")
	if sw == nil || sw.Kind != powergrid.SwitchBusBus {
		t.Errorf("coupler = %+v", sw)
	}
}

func TestGeneratePowerModelErrors(t *testing.T) {
	t.Run("orphan breaker", func(t *testing.T) {
		doc := miniSSD()
		bayA := &doc.Substations[0].VoltageLevels[0].Bays[0]
		bayA.ConductingEquipments = append(bayA.ConductingEquipments, scl.ConductingEquipment{
			Name: "CBOrphan", Type: scl.TypeBreaker,
			Terminals: []scl.Terminal{{ConnectivityNode: "S1/VL110/A/BusA"}},
		})
		// BusA has line L1 attached (from bay B), so this actually resolves;
		// point it at a node with nothing instead.
		bayA.ConductingEquipments[len(bayA.ConductingEquipments)-1].Terminals[0].ConnectivityNode = "S1/VL110/A/BusLonely"
		bayA.ConnectivityNodes = append(bayA.ConnectivityNodes, scl.ConnectivityNode{Name: "BusLonely", PathName: "S1/VL110/A/BusLonely"})
		if _, err := GeneratePowerModel("x", consOf(t, doc), nil); !errors.Is(err, ErrModel) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("unsupported equipment type", func(t *testing.T) {
		doc := miniSSD()
		bayA := &doc.Substations[0].VoltageLevels[0].Bays[0]
		bayA.ConductingEquipments = append(bayA.ConductingEquipments, scl.ConductingEquipment{
			Name: "Weird", Type: "XYZ",
			Terminals: []scl.Terminal{{ConnectivityNode: "S1/VL110/A/BusA"}},
		})
		if _, err := GeneratePowerModel("x", consOf(t, doc), nil); !errors.Is(err, ErrModel) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("line with one terminal", func(t *testing.T) {
		doc := miniSSD()
		bayB := &doc.Substations[0].VoltageLevels[0].Bays[1]
		bayB.ConductingEquipments[0].Terminals = bayB.ConductingEquipments[0].Terminals[:1]
		if _, err := GeneratePowerModel("x", consOf(t, doc), nil); !errors.Is(err, ErrModel) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("tie to unknown node", func(t *testing.T) {
		cons := consOf(t, miniSSD())
		cons.Ties = []scl.Tie{{Name: "T", FromNode: "ghost", ToNode: "S1/VL110/A/BusA", LengthKM: 1, XOhmPerKM: 0.3}}
		if _, err := GeneratePowerModel("x", cons, nil); !errors.Is(err, ErrModel) {
			t.Errorf("err = %v", err)
		}
	})
}

func TestPowerEventsConversion(t *testing.T) {
	pc := &sgmlconf.PowerConfig{Steps: []sgmlconf.ProfileStep{
		{AtMS: 100, Kind: "loadScale", Element: "LD1", Value: 1.5},
		{AtMS: 200, Kind: "switch", Element: "CB1", Value: 0},
	}}
	evs, err := PowerEvents(pc)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[0].Kind != "loadScale" || evs[1].AtMS != 200 {
		t.Errorf("events = %+v", evs)
	}
	if evs, err := PowerEvents(nil); err != nil || evs != nil {
		t.Errorf("nil config: %v %v", evs, err)
	}
}
