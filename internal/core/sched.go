package core

import (
	"sort"
	"sync"
	"time"

	"repro/internal/ied"
	"repro/internal/kvbus"
	"repro/internal/plc"
)

// stepEngine advances the device layer of a range with a two-phase step:
//
//  1. Compute phase: shards run concurrently on a bounded worker pool. Each
//     shard steps its IEDs in sorted order, routing every bus write into the
//     IED's private kvbus.Tx; reads see only the pre-step bus state (the
//     simulator's last publication), exactly as they would sequentially.
//  2. Commit phase: the buffered writes are applied to the bus in globally
//     sorted IED-name order — the same write order StepAllSequential
//     produces, so per-key values, versions and even the watcher stream
//     are byte-identical.
//
// The identity contract covers everything coupled through the kv bus. It
// deliberately excludes GOOSE/R-SV arrival timing: frames are delivered
// through per-device worker goroutines (plus wall-clock link latency) in
// BOTH engines, so which step first observes a peer's publication is
// scheduler-dependent sequentially too; protection that keys off message
// freshness (PDIF) inherits that in either mode.
//
// PLC scans follow on the same pool, one job per shard with the shard's
// PLCs scanned in order (their MMS reads hit IED servers that are quiescent
// once the compute phase has drained). Every PLC is scanned every step —
// one failing scan never skips the rest, which would fork the state from
// the reference engine — and the surfaced error is the first in shard/name
// order, deterministic regardless of which worker failed first. PLC
// actuation (MMS breaker writes) is applied by the receiving IED directly,
// outside the Tx path, so byte-identity across engines additionally assumes
// no two PLCs command the same breaker — which per-substation PLC placement
// gives by construction.
// StepHook observes (and may act on) the range's step loop. step is the
// zero-based index of the step about to run (pre hook) or just completed
// (post hook); now is the step's virtual timestamp. Returning an error aborts
// the step. The deterministic scenario scheduler is implemented as a pair of
// these hooks, which is what keeps event triggering identical across the
// parallel and sequential engines: hooks run strictly between device passes,
// never concurrently with them.
type StepHook func(step int, now time.Time) error

type stepEngine struct {
	shards  []Shard
	workers int
	ieds    map[string]*ied.IED
	plcs    map[string]*plc.PLC
	bus     *kvbus.Bus

	iedOrder []string       // globally sorted; the commit replay order
	iedIdx   map[string]int // IED name -> index into iedOrder/txs
	txs      []kvbus.Tx     // one per IED, reused across steps
}

// newStepEngine builds an engine over the compiled shards. The caller
// (Compile) guarantees workers >= 1; extra workers beyond the job count of
// a phase simply idle.
func newStepEngine(shards []Shard, workers int, ieds map[string]*ied.IED, plcs map[string]*plc.PLC, bus *kvbus.Bus) *stepEngine {
	e := &stepEngine{
		shards:  shards,
		workers: workers,
		ieds:    ieds,
		plcs:    plcs,
		bus:     bus,
		iedIdx:  make(map[string]int, len(ieds)),
	}
	for name := range ieds {
		e.iedOrder = append(e.iedOrder, name)
	}
	sort.Strings(e.iedOrder)
	for i, name := range e.iedOrder {
		e.iedIdx[name] = i
	}
	e.txs = make([]kvbus.Tx, len(e.iedOrder))
	return e
}

// step runs one device-layer pass: parallel IED compute, ordered commit,
// then the PLC scans.
func (e *stepEngine) step(now time.Time) error {
	e.stepIEDs(now)
	return e.scanPLCs(now)
}

// stepIEDs is the two-phase IED pass.
func (e *stepEngine) stepIEDs(now time.Time) {
	e.forEach(len(e.shards), func(i int) {
		for _, name := range e.shards[i].IEDs {
			e.ieds[name].StepTx(now, &e.txs[e.iedIdx[name]])
		}
	})
	for i := range e.txs {
		e.txs[i].Commit(e.bus)
	}
}

// scanPLCs runs each shard's PLC scans on the pool and returns the error of
// the first failing PLC in shard/name order (nil when all scans succeed).
func (e *stepEngine) scanPLCs(now time.Time) error {
	if len(e.plcs) == 0 {
		return nil
	}
	errs := make([][]error, len(e.shards))
	e.forEach(len(e.shards), func(i int) {
		s := &e.shards[i]
		if len(s.PLCs) == 0 {
			return
		}
		errs[i] = make([]error, len(s.PLCs))
		for j, name := range s.PLCs {
			errs[i][j] = e.plcs[name].Scan(now)
		}
	})
	for _, shardErrs := range errs {
		for _, err := range shardErrs {
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// forEach runs fn(0..n-1) on the bounded worker pool and waits for all of
// them. With one worker (or one job) it degenerates to an inline loop.
func (e *stepEngine) forEach(n int, fn func(i int)) {
	workers := e.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}
