package core

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/epic"
)

func epicFiles(t *testing.T) map[string][]byte {
	t.Helper()
	m, err := epic.NewModel()
	if err != nil {
		t.Fatal(err)
	}
	files, err := m.Files()
	if err != nil {
		t.Fatal(err)
	}
	return files
}

func TestLoadModelFiles(t *testing.T) {
	ms, err := LoadModelFiles("epic", epicFiles(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms.SCDs) != 1 || ms.SCDs["EPIC"] == nil {
		t.Errorf("SCDs = %v", ms.SCDs)
	}
	if len(ms.ICDs) != 8 {
		t.Errorf("ICDs = %d", len(ms.ICDs))
	}
	if ms.IEDConfig == nil || ms.SCADAConfig == nil || ms.PowerConfig == nil {
		t.Error("supplementary configs missing")
	}
	if len(ms.PLCs) != 1 || ms.PLCs[0].Config.Name != "CPLC" {
		t.Errorf("PLCs = %+v", ms.PLCs)
	}
}

func TestLoadModelFilesErrors(t *testing.T) {
	t.Run("no SCD", func(t *testing.T) {
		if _, err := LoadModelFiles("x", map[string][]byte{}); !errors.Is(err, ErrModel) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("corrupt SCD", func(t *testing.T) {
		if _, err := LoadModelFiles("x", map[string][]byte{"a.scd.xml": []byte("junk")}); err == nil {
			t.Error("junk accepted")
		}
	})
	t.Run("corrupt IED config", func(t *testing.T) {
		files := epicFiles(t)
		files["ied_config.xml"] = []byte("junk")
		if _, err := LoadModelFiles("x", files); err == nil {
			t.Error("junk config accepted")
		}
	})
	t.Run("PLC config without logic", func(t *testing.T) {
		files := epicFiles(t)
		delete(files, "cplc_logic.plcopen.xml")
		if _, err := LoadModelFiles("x", files); !errors.Is(err, ErrModel) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("corrupt SED", func(t *testing.T) {
		files := epicFiles(t)
		files["multi.sed.xml"] = []byte("junk")
		if _, err := LoadModelFiles("x", files); err == nil {
			t.Error("junk SED accepted")
		}
	})
}

func TestLoadModelDir(t *testing.T) {
	dir := t.TempDir()
	for name, data := range epicFiles(t) {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A stray documentation file must be ignored.
	os.WriteFile(filepath.Join(dir, "README.txt"), []byte("docs"), 0o644)
	os.Mkdir(filepath.Join(dir, "subdir"), 0o755)

	ms, err := LoadModelDir("epic", dir)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Compile(ms)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if len(r.IEDs) != 8 {
		t.Errorf("IEDs from dir = %d", len(r.IEDs))
	}
	if _, err := LoadModelDir("x", filepath.Join(dir, "nope")); err == nil {
		t.Error("missing dir accepted")
	}
}
