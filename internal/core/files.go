package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/plc"
	"repro/internal/scl"
	"repro/internal/sgmlconf"
)

// LoadModelFiles assembles a ModelSet from raw SG-ML files, keyed by file
// name. File roles follow the naming conventions the generator emits and the
// paper's toolchain expects:
//
//	*.scd.xml            SCD (one per substation; base name before .scd is the substation)
//	*.ssd.xml            SSD (informational; the SCD carries the substation section)
//	*.icd.xml            per-IED ICD (base name is the IED name)
//	*.sed.xml            SED for multi-substation models
//	ied_config.xml       IED Config XML
//	scada_config.xml     SCADA Config XML
//	power_config.xml     Power System Extra Config XML
//	plc_config.xml       PLC mapping (may appear multiple times as <name>.plc_config.xml)
//	*.plcopen.xml        IEC 61131-3 PLCopen control logic
func LoadModelFiles(name string, files map[string][]byte) (*ModelSet, error) {
	ms := &ModelSet{
		Name: name,
		SCDs: map[string]*scl.Document{},
		ICDs: map[string]*scl.Document{},
	}
	var plcopen = map[string][]byte{} // pou name -> xml
	var plcCfgs []*sgmlconf.PLCConfig
	for fname, data := range files {
		base := filepath.Base(fname)
		switch {
		case strings.HasSuffix(base, ".scd.xml"):
			doc, err := scl.Parse(data)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", fname, err)
			}
			sub := strings.TrimSuffix(base, ".scd.xml")
			if len(doc.Substations) == 1 {
				sub = doc.Substations[0].Name
			}
			ms.SCDs[sub] = doc
		case strings.HasSuffix(base, ".icd.xml"):
			doc, err := scl.Parse(data)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", fname, err)
			}
			iedName := strings.TrimSuffix(base, ".icd.xml")
			ms.ICDs[iedName] = doc
		case strings.HasSuffix(base, ".sed.xml"):
			sed, err := scl.ParseSED(data)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", fname, err)
			}
			ms.SED = sed
		case base == "ied_config.xml":
			cfg, err := sgmlconf.ParseIEDConfig(data)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", fname, err)
			}
			ms.IEDConfig = cfg
		case base == "scada_config.xml":
			cfg, err := sgmlconf.ParseSCADAConfig(data)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", fname, err)
			}
			ms.SCADAConfig = cfg
		case base == "power_config.xml":
			cfg, err := sgmlconf.ParsePowerConfig(data)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", fname, err)
			}
			ms.PowerConfig = cfg
		case base == "plc_config.xml" || strings.HasSuffix(base, ".plc_config.xml"):
			cfg, err := sgmlconf.ParsePLCConfig(data)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", fname, err)
			}
			plcCfgs = append(plcCfgs, cfg)
		case strings.HasSuffix(base, ".plcopen.xml"):
			pou, _, err := plc.ParsePLCopen(data)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", fname, err)
			}
			plcopen[strings.ToUpper(pou)] = data
		case strings.HasSuffix(base, ".ssd.xml"), strings.HasSuffix(base, ".json"):
			// SSD content is carried by the SCD; JSON artefacts are outputs.
		default:
			// Unknown files are ignored so model directories can carry docs.
		}
	}
	for _, cfg := range plcCfgs {
		spec := PLCSpec{Config: cfg}
		if xmlData, ok := plcopen[strings.ToUpper(cfg.Name)]; ok {
			spec.PLCopenXML = xmlData
		} else {
			return nil, fmt.Errorf("%w: PLC %q has no PLCopen logic file", ErrModel, cfg.Name)
		}
		ms.PLCs = append(ms.PLCs, spec)
	}
	if len(ms.SCDs) == 0 {
		return nil, fmt.Errorf("%w: no SCD file in model set", ErrModel)
	}
	return ms, nil
}

// LoadModelDir reads every file in dir and assembles a ModelSet.
func LoadModelDir(name, dir string) (*ModelSet, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	files := map[string][]byte{}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		files[e.Name()] = data
	}
	return LoadModelFiles(name, files)
}
