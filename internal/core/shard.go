package core

import (
	"sort"

	"repro/internal/ied"
	"repro/internal/plc"
)

// Shard is one unit of sequential work in the parallel step engine: the
// devices of a single substation, stepped in sorted name order. Shards are
// mutually independent within a step — IEDs exchange state with the power
// simulation only through the kv bus (sim-written keys are read-only during
// the device phase, IED-written command keys are buffered until the commit
// phase), so any shard interleaving yields the same committed state.
type Shard struct {
	// Name is the substation the shard covers (or "range" for devices with
	// no substation attribution).
	Name string
	// IEDs are the shard's virtual IEDs, sorted — the order the sequential
	// engine would step them in relative to each other.
	IEDs []string
	// PLCs are the shard's PLC runtimes, sorted.
	PLCs []string
}

// defaultShard collects devices that no substation claims.
const defaultShard = "range"

// partitionShards groups compiled devices into per-substation shards.
// subOf is the SCL-derived IED -> substation map from the merge stage;
// hints (from ModelSet.ShardHints, e.g. the scale model generator) override
// it per device. The result is sorted by shard name, and devices within a
// shard are sorted, so the partition is deterministic for a given model.
func partitionShards(subOf, hints map[string]string, ieds map[string]*ied.IED, plcs map[string]*plc.PLC) []Shard {
	keyOf := func(name string) string {
		if s, ok := hints[name]; ok && s != "" {
			return s
		}
		if s, ok := subOf[name]; ok && s != "" {
			return s
		}
		return defaultShard
	}
	byKey := map[string]*Shard{}
	shard := func(key string) *Shard {
		s, ok := byKey[key]
		if !ok {
			s = &Shard{Name: key}
			byKey[key] = s
		}
		return s
	}
	for name := range ieds {
		s := shard(keyOf(name))
		s.IEDs = append(s.IEDs, name)
	}
	for name := range plcs {
		s := shard(keyOf(name))
		s.PLCs = append(s.PLCs, name)
	}
	out := make([]Shard, 0, len(byKey))
	for _, s := range byKey {
		sort.Strings(s.IEDs)
		sort.Strings(s.PLCs)
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
