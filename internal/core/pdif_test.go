package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/epic"
	"repro/internal/netem"
	"repro/internal/sv"
)

// TestPDIFWiringAcrossSubstations verifies the compiler's automatic R-SV
// wiring: gateway IEDs of tied substations exchange tie-line currents and
// stay quiet while the measurements agree.
func TestPDIFWiringAcrossSubstations(t *testing.T) {
	sm, err := epic.NewScaleModel(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	ms := &ModelSet{Name: "pdif", SCDs: sm.SCDs, SED: sm.SED,
		IEDConfig: sm.IEDConfigs, PowerConfig: sm.PowerConfig}
	r, err := Compile(ms)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if err := r.Start(context.Background(), false); err != nil {
		t.Fatal(err)
	}
	// The tie breaker from the SED exists and is closed.
	if sw := r.Grid.FindSwitch("S2_TieCB"); sw == nil {
		t.Fatal("tie breaker not generated from SED")
	}
	now := time.Now()
	for i := 0; i < 5; i++ {
		now = now.Add(r.Interval())
		if err := r.StepAll(now); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond) // let R-SV datagrams land
	}
	// Healthy tie: identical currents at both ends, no differential trip.
	if trips := r.IEDs["S2_GW"].TripCount(); trips != 0 {
		t.Errorf("healthy tie tripped PDIF %d times", trips)
	}
	if !r.Sim.LastResult().Buses["S2/VL22/Main/MainBus"].Energized {
		t.Error("S2 dead on healthy tie")
	}
}

// TestPDIFFalseDataInjection is the reference-[23] attack of the paper's
// authors: forged R-SV samples (no authentication on the wire) convince the
// S2 gateway that the remote current diverged, falsely tripping the tie and
// blacking out substation 2.
func TestPDIFFalseDataInjection(t *testing.T) {
	sm, err := epic.NewScaleModel(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	ms := &ModelSet{Name: "fdi", SCDs: sm.SCDs, SED: sm.SED,
		IEDConfig: sm.IEDConfigs, PowerConfig: sm.PowerConfig}
	r, err := Compile(ms)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	// Attacker on S2's LAN.
	attacker, err := r.Built.AttachHost("attacker",
		netem.MustMAC("02:ba:d0:00:00:77"), netem.MustIPv4("10.2.0.77"), "sw-S2-LAN")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(context.Background(), false); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	step := func() {
		now = now.Add(r.Interval())
		if err := r.StepAll(now); err != nil {
			t.Fatal(err)
		}
	}
	step()
	step()
	if r.IEDs["S2_GW"].TripCount() != 0 {
		t.Fatal("tripped before injection")
	}

	// Forge R-SV: claim S1_GW measures 5 kA on the tie (true value ~0.01 kA).
	sock, err := attacker.BindUDP(0)
	if err != nil {
		t.Fatal(err)
	}
	defer sock.Close()
	appID := rsvPairAppID("S1_GW", "S2_GW")
	victim := r.Built.AddrOf["S2_GW"]
	var smpCnt uint16 = 9000
	inject := func() {
		payload := sv.Marshal(appID, sv.Sample{
			SvID: "S1_GW", SmpCnt: smpCnt, ConfRev: 1,
			Values: []float64{5.0}, RefrTm: time.Now(),
		})
		smpCnt++
		if err := sock.SendTo(victim, sv.RSVPort, payload); err != nil {
			t.Fatal(err)
		}
	}
	// Keep injecting across steps so the forged value is the freshest when
	// the gateway drains its subscription; the 100 ms PDIF delay must elapse.
	for i := 0; i < 4; i++ {
		inject()
		time.Sleep(15 * time.Millisecond)
		step()
	}
	if trips := r.IEDs["S2_GW"].TripCount(); trips == 0 {
		t.Fatal("forged R-SV did not trip PDIF")
	}
	// The false trip opened the tie: substation 2 is dark.
	res := r.Sim.LastResult()
	if res.Buses["S2/VL22/Main/MainBus"].Energized {
		t.Error("S2 still energized after false trip")
	}
	if res.DeadBuses == 0 {
		t.Error("no buses de-energised")
	}
	t.Logf("FDI on R-SV: %d buses de-energised by a forged sample", res.DeadBuses)
}
