// Package sclmerge implements the SSD Merger and SCD Merger stages of the
// SG-ML Processor (Fig 3).
//
// "Typically, an SED file contains connectivity between a pair of
// substations. Our toolchain first combines multiple SSD files into a
// consolidated SSD file based on the connectivity derived from SED files.
// Then the consolidated SSD file is processed using the same tool to generate
// a multi-substation power grid physical model." (§III-B). The SCD merger
// does the same for the cyber side, with the WAN abstracted as a single
// switch joining the per-substation subnetworks.
package sclmerge

import (
	"errors"
	"fmt"

	"repro/internal/scl"
)

// Errors returned by the mergers.
var (
	ErrNoDocuments       = errors.New("sclmerge: no documents to merge")
	ErrDuplicateName     = errors.New("sclmerge: duplicate name across substations")
	ErrWrongKind         = errors.New("sclmerge: wrong document kind")
	ErrUnknownSubstation = errors.New("sclmerge: SED references unknown substation")
)

// Consolidated is a merged multi-substation model: one SCL document holding
// every substation (and, for SCD merges, every IED and subnetwork), plus the
// inter-substation ties and WAN parameters from the SED.
type Consolidated struct {
	Doc *scl.Document
	// SubstationOf maps IED name -> substation name (needed to place IEDs on
	// the right LAN and bind them to the right power-model namespace).
	SubstationOf map[string]string
	// SubnetSubstation maps subnetwork name -> substation name.
	SubnetSubstation map[string]string
	Ties             []scl.Tie
	WAN              scl.WANConfig
	Gateways         []scl.Gateway
}

// MergeSSD combines per-substation SSD documents using the SED.
// docs maps substation name -> its SSD document. A nil sed merges
// disconnected substations (valid, but islands stay separate).
func MergeSSD(docs map[string]*scl.Document, sed *scl.SED) (*Consolidated, error) {
	if len(docs) == 0 {
		return nil, ErrNoDocuments
	}
	for name, d := range docs {
		kind := d.DetectKind()
		if kind != scl.KindSSD && kind != scl.KindSCD {
			return nil, fmt.Errorf("%w: %q is %s, want SSD or SCD", ErrWrongKind, name, kind)
		}
		if err := d.Validate(); err != nil {
			return nil, fmt.Errorf("sclmerge: substation %q: %w", name, err)
		}
	}
	if sed != nil {
		if err := sed.Validate(docs); err != nil {
			return nil, err
		}
	}
	out := &Consolidated{
		Doc: &scl.Document{
			Header: scl.Header{ID: "consolidated-ssd", ToolID: "sgml-processor"},
		},
		SubstationOf:     map[string]string{},
		SubnetSubstation: map[string]string{},
	}
	seenSub := map[string]bool{}
	for _, name := range sortedKeys(docs) {
		d := docs[name]
		for _, sub := range d.Substations {
			if seenSub[sub.Name] {
				return nil, fmt.Errorf("%w: substation %q", ErrDuplicateName, sub.Name)
			}
			seenSub[sub.Name] = true
			out.Doc.Substations = append(out.Doc.Substations, sub)
		}
	}
	if sed != nil {
		out.Ties = append(out.Ties, sed.Ties...)
		out.WAN = sed.WAN
		out.Gateways = append(out.Gateways, sed.GatewayIEDs...)
	}
	return out, nil
}

// MergeSCD combines per-substation SCD documents using the SED. Substation
// sections, IEDs, communication subnetworks and data type templates are all
// carried over; subnetwork names are prefixed with their substation to keep
// them unique, and the SED's WAN config is preserved for the network builder.
func MergeSCD(docs map[string]*scl.Document, sed *scl.SED) (*Consolidated, error) {
	if len(docs) == 0 {
		return nil, ErrNoDocuments
	}
	for name, d := range docs {
		if kind := d.DetectKind(); kind != scl.KindSCD {
			return nil, fmt.Errorf("%w: %q is %s, want SCD", ErrWrongKind, name, kind)
		}
		if err := d.Validate(); err != nil {
			return nil, fmt.Errorf("sclmerge: substation %q: %w", name, err)
		}
	}
	if sed != nil {
		if err := sed.Validate(docs); err != nil {
			return nil, err
		}
	}
	out := &Consolidated{
		Doc: &scl.Document{
			Header:            scl.Header{ID: "consolidated-scd", ToolID: "sgml-processor"},
			Communication:     &scl.Communication{},
			DataTypeTemplates: &scl.DataTypeTemplates{},
		},
		SubstationOf:     map[string]string{},
		SubnetSubstation: map[string]string{},
	}
	seenSub := map[string]bool{}
	seenIED := map[string]bool{}
	seenLNT := map[string]bool{}
	for _, name := range sortedKeys(docs) {
		d := docs[name]
		for _, sub := range d.Substations {
			if seenSub[sub.Name] {
				return nil, fmt.Errorf("%w: substation %q", ErrDuplicateName, sub.Name)
			}
			seenSub[sub.Name] = true
			out.Doc.Substations = append(out.Doc.Substations, sub)
		}
		for _, ied := range d.IEDs {
			if seenIED[ied.Name] {
				return nil, fmt.Errorf("%w: IED %q", ErrDuplicateName, ied.Name)
			}
			seenIED[ied.Name] = true
			out.Doc.IEDs = append(out.Doc.IEDs, ied)
			out.SubstationOf[ied.Name] = name
		}
		if d.Communication != nil {
			for _, sn := range d.Communication.SubNetworks {
				merged := sn
				merged.Name = name + "/" + sn.Name
				out.Doc.Communication.SubNetworks = append(out.Doc.Communication.SubNetworks, merged)
				out.SubnetSubstation[merged.Name] = name
			}
		}
		if d.DataTypeTemplates != nil {
			for _, lnt := range d.DataTypeTemplates.LNodeTypes {
				if seenLNT[lnt.ID] {
					continue // identical template shared across substations
				}
				seenLNT[lnt.ID] = true
				out.Doc.DataTypeTemplates.LNodeTypes = append(out.Doc.DataTypeTemplates.LNodeTypes, lnt)
			}
			out.Doc.DataTypeTemplates.DOTypes = append(out.Doc.DataTypeTemplates.DOTypes, d.DataTypeTemplates.DOTypes...)
		}
	}
	if sed != nil {
		out.Ties = append(out.Ties, sed.Ties...)
		out.WAN = sed.WAN
		out.Gateways = append(out.Gateways, sed.GatewayIEDs...)
	}
	return out, nil
}

// SingleSubstation wraps one SCD document (the common EPIC case) in the
// Consolidated form the downstream stages consume.
func SingleSubstation(name string, doc *scl.Document) (*Consolidated, error) {
	if err := doc.Validate(); err != nil {
		return nil, err
	}
	out := &Consolidated{
		Doc:              doc,
		SubstationOf:     map[string]string{},
		SubnetSubstation: map[string]string{},
	}
	for _, ied := range doc.IEDs {
		out.SubstationOf[ied.Name] = name
	}
	if doc.Communication != nil {
		for _, sn := range doc.Communication.SubNetworks {
			out.SubnetSubstation[sn.Name] = name
		}
	}
	return out, nil
}

func sortedKeys(m map[string]*scl.Document) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
