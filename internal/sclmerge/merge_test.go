package sclmerge

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/scl"
)

// subSSD builds a minimal one-substation SSD document named sub.
func subSSD(sub string) *scl.Document {
	xml := fmt.Sprintf(`<SCL xmlns="http://www.iec.ch/61850/2003/SCL">
  <Header id="%s-ssd"/>
  <Substation name="%s">
    <VoltageLevel name="VL">
      <Voltage unit="V" multiplier="k">110</Voltage>
      <Bay name="B">
        <ConductingEquipment name="%s_CB1" type="CBR">
          <Terminal connectivityNode="%s/VL/B/CN1"/>
          <Terminal connectivityNode="%s/VL/B/CN2"/>
        </ConductingEquipment>
        <ConnectivityNode name="CN1" pathName="%s/VL/B/CN1"/>
        <ConnectivityNode name="CN2" pathName="%s/VL/B/CN2"/>
      </Bay>
    </VoltageLevel>
  </Substation>
</SCL>`, sub, sub, sub, sub, sub, sub, sub)
	doc, err := scl.Parse([]byte(xml))
	if err != nil {
		panic(err)
	}
	return doc
}

// subSCD builds a minimal one-substation SCD document.
func subSCD(sub string) *scl.Document {
	doc := subSSD(sub)
	doc.IEDs = []scl.IED{{
		Name: sub + "_IED1",
		AccessPoints: []scl.AccessPoint{{
			Name: "AP1",
			Server: &scl.Server{LDevices: []scl.LDevice{{
				Inst: "LD0",
				LNs:  []scl.LN{{LnClass: "PTOC", Inst: "1", LnType: "PTOC_T"}},
			}}},
		}},
	}}
	doc.Communication = &scl.Communication{SubNetworks: []scl.SubNetwork{{
		Name: "LAN",
		ConnectedAPs: []scl.ConnectedAP{{
			IEDName: sub + "_IED1", APName: "AP1",
			Address: scl.Address{Ps: []scl.P{{Type: "IP", Value: "10.0.1.11"}}},
		}},
	}}}
	doc.DataTypeTemplates = &scl.DataTypeTemplates{LNodeTypes: []scl.LNodeType{{ID: "PTOC_T", LnClass: "PTOC"}}}
	return doc
}

func testSED() *scl.SED {
	return &scl.SED{
		Ties: []scl.Tie{{
			Name: "T12", FromSub: "S1", FromNode: "S1/VL/B/CN2",
			ToSub: "S2", ToNode: "S2/VL/B/CN1",
			LengthKM: 30, ROhmPerKM: 0.06, XOhmPerKM: 0.4,
		}},
		WAN:         scl.WANConfig{LatencyMS: 4},
		GatewayIEDs: []scl.Gateway{{Substation: "S1", IEDName: "S1_IED1"}},
	}
}

func TestMergeSSD(t *testing.T) {
	docs := map[string]*scl.Document{"S1": subSSD("S1"), "S2": subSSD("S2")}
	out, err := MergeSSD(docs, testSED())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Doc.Substations) != 2 {
		t.Fatalf("substations = %d", len(out.Doc.Substations))
	}
	if out.Doc.FindSubstation("S1") == nil || out.Doc.FindSubstation("S2") == nil {
		t.Error("substations lost")
	}
	if len(out.Ties) != 1 || out.Ties[0].Name != "T12" {
		t.Errorf("ties = %+v", out.Ties)
	}
	if out.WAN.LatencyMS != 4 {
		t.Errorf("WAN = %+v", out.WAN)
	}
}

func TestMergeSSDWithoutSED(t *testing.T) {
	docs := map[string]*scl.Document{"S1": subSSD("S1"), "S2": subSSD("S2")}
	out, err := MergeSSD(docs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Ties) != 0 {
		t.Error("phantom ties")
	}
}

func TestMergeSSDErrors(t *testing.T) {
	if _, err := MergeSSD(nil, nil); !errors.Is(err, ErrNoDocuments) {
		t.Errorf("empty merge err = %v", err)
	}
	// Duplicate substation name in two documents.
	docs := map[string]*scl.Document{"A": subSSD("X"), "B": subSSD("X")}
	if _, err := MergeSSD(docs, nil); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("dup substation err = %v", err)
	}
	// SED referencing a node that does not exist.
	sed := testSED()
	sed.Ties[0].ToNode = "S2/VL/B/GHOST"
	docs = map[string]*scl.Document{"S1": subSSD("S1"), "S2": subSSD("S2")}
	if _, err := MergeSSD(docs, sed); err == nil {
		t.Error("SED with ghost node accepted")
	}
	// Invalid document inside the set.
	bad := subSSD("S3")
	bad.Substations[0].VoltageLevels[0].Voltage.Value = 0
	if _, err := MergeSSD(map[string]*scl.Document{"S3": bad}, nil); err == nil {
		t.Error("invalid document accepted")
	}
}

func TestMergeSCD(t *testing.T) {
	docs := map[string]*scl.Document{"S1": subSCD("S1"), "S2": subSCD("S2"), "S3": subSCD("S3")}
	sed := testSED()
	out, err := MergeSCD(docs, sed)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Doc.Substations) != 3 || len(out.Doc.IEDs) != 3 {
		t.Fatalf("merged: %d subs, %d IEDs", len(out.Doc.Substations), len(out.Doc.IEDs))
	}
	if got := out.SubstationOf["S2_IED1"]; got != "S2" {
		t.Errorf("SubstationOf = %q", got)
	}
	// Subnet names must be prefixed and mapped.
	if len(out.Doc.Communication.SubNetworks) != 3 {
		t.Fatalf("subnets = %d", len(out.Doc.Communication.SubNetworks))
	}
	names := map[string]bool{}
	for _, sn := range out.Doc.Communication.SubNetworks {
		names[sn.Name] = true
	}
	if !names["S1/LAN"] || !names["S3/LAN"] {
		t.Errorf("subnet names = %v", names)
	}
	if got := out.SubnetSubstation["S1/LAN"]; got != "S1" {
		t.Errorf("SubnetSubstation = %q", got)
	}
	// Shared templates deduplicated.
	if got := len(out.Doc.DataTypeTemplates.LNodeTypes); got != 1 {
		t.Errorf("templates = %d, want 1 (deduplicated)", got)
	}
	// Merged doc must itself validate as an SCD.
	if err := out.Doc.Validate(); err != nil {
		t.Errorf("consolidated SCD invalid: %v", err)
	}
	if out.Doc.DetectKind() != scl.KindSCD {
		t.Errorf("kind = %v", out.Doc.DetectKind())
	}
}

func TestMergeSCDErrors(t *testing.T) {
	if _, err := MergeSCD(nil, nil); !errors.Is(err, ErrNoDocuments) {
		t.Errorf("empty err = %v", err)
	}
	// SSD passed where SCD required.
	if _, err := MergeSCD(map[string]*scl.Document{"S1": subSSD("S1")}, nil); !errors.Is(err, ErrWrongKind) {
		t.Errorf("kind err = %v", err)
	}
	// Duplicate IED names across substations.
	a := subSCD("S1")
	b := subSCD("S2")
	b.IEDs[0].Name = "S1_IED1"
	b.Communication.SubNetworks[0].ConnectedAPs[0].IEDName = "S1_IED1"
	if _, err := MergeSCD(map[string]*scl.Document{"S1": a, "S2": b}, nil); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("dup IED err = %v", err)
	}
}

func TestSingleSubstation(t *testing.T) {
	doc := subSCD("EPIC")
	out, err := SingleSubstation("EPIC", doc)
	if err != nil {
		t.Fatal(err)
	}
	if out.SubstationOf["EPIC_IED1"] != "EPIC" {
		t.Error("IED mapping missing")
	}
	if out.SubnetSubstation["LAN"] != "EPIC" {
		t.Error("subnet mapping missing")
	}
	bad := subSCD("EPIC")
	bad.IEDs[0].Name = ""
	if _, err := SingleSubstation("EPIC", bad); err == nil {
		t.Error("invalid doc accepted")
	}
}

func TestSortedKeysDeterminism(t *testing.T) {
	docs := map[string]*scl.Document{"S3": subSSD("S3"), "S1": subSSD("S1"), "S2": subSSD("S2")}
	out, err := MergeSSD(docs, nil)
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	for _, s := range out.Doc.Substations {
		order = append(order, s.Name)
	}
	if strings.Join(order, ",") != "S1,S2,S3" {
		t.Errorf("merge order = %v, want sorted", order)
	}
}
