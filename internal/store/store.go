// Package store persists campaign results and anchors them in a Merkle
// commitment, so a sweep survives its process and a published result set is
// independently checkable.
//
// The campaign engine (internal/core) streams every executed run through its
// RunSink chain; this package supplies the sinks that remember: an in-memory
// ReportStore for tests and single-process pipelines, and a durable
// append-only JSONL directory store whose records survive crashes
// (length/CRC-framed, fsync'd per record, torn tails recovered on reopen).
// A store answers three questions — Put (checkpoint this run), Done (is this
// cell already finished?), Load (reconstruct the persisted population) — and
// commits a finished sweep by sealing it under a Merkle root over the run
// fingerprints, from which per-run inclusion proofs are produced and
// verified (see merkle.go and Verify).
//
// core must not import this package (it would invert the dependency
// direction), so the backends satisfy core.CampaignStore structurally and
// the wiring lives in the public sgml layer (WithStore / WithResume).
package store

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// ReportStore is the persistence contract of a campaign result store: a
// streaming checkpoint (Put), the resume query (Done) and bulk recovery
// (Load). It mirrors core.CampaignStore — the backends here satisfy that
// interface structurally, keeping core free of store imports.
//
// Implementations must be safe for concurrent Put/Done calls; Load is only
// called before dispatch starts.
type ReportStore interface {
	// Put checkpoints one executed run. Runs that never executed
	// (cancelled cells) are never offered; implementations persist runs
	// with an empty Err (clean and deterministic event-failure outcomes)
	// and skip aborted ones, so an aborted cell re-executes on resume.
	Put(run core.CampaignRun) error
	// Done reports whether the (variant, seed, attempt) cell already has a
	// persisted record.
	Done(variant string, seed int64, attempt int) bool
	// Load reconstructs the persisted population as a partial
	// CampaignReport: one run per stored cell, full RunReports attached,
	// fingerprints rehydrated, sorted by (variant, seed, attempt).
	Load() (*core.CampaignReport, error)
}

// cellKey identifies one cell of a sweep matrix.
type cellKey struct {
	variant string
	seed    int64
	attempt int
}

func (k cellKey) less(o cellKey) bool {
	if k.variant != o.variant {
		return k.variant < o.variant
	}
	if k.seed != o.seed {
		return k.seed < o.seed
	}
	return k.attempt < o.attempt
}

func (k cellKey) String() string {
	return fmt.Sprintf("%s:%d:%d", k.variant, k.seed, k.attempt)
}

// storable reports whether a run belongs in a store: it executed (cancelled
// cells never reach sinks, but the check is cheap insurance) and did not
// abort. Aborted runs (Err != "") stop at wall-clock-dependent points — they
// are not evidence, and persisting them would mark the cell done and stop a
// resume from retrying it. Deterministic event failures (EventErrors with an
// empty Err) are real outcomes and are persisted.
func storable(run *core.CampaignRun) bool {
	return run.Err == "" && run.Report != nil
}

// leafContent is the byte string a run contributes to the Merkle tree: its
// cell identity and full canonical fingerprint text, unit-separated. The
// commitment therefore covers exactly the deterministic projection of the
// sweep — identical for an interrupted-then-resumed run and an
// uninterrupted one.
func leafContent(run *core.CampaignRun) []byte {
	return []byte(fmt.Sprintf("%s\x1f%d\x1f%d\x1f%s", run.Variant, run.Seed, run.Attempt, run.FullFingerprint()))
}

// sortRuns orders runs by (variant, seed, attempt) — the canonical store
// order used for Load results and Merkle leaves.
func sortRuns(runs []core.CampaignRun) {
	sort.Slice(runs, func(i, j int) bool {
		a, b := &runs[i], &runs[j]
		return cellKey{a.Variant, a.Seed, a.Attempt}.less(cellKey{b.Variant, b.Seed, b.Attempt})
	})
}

// rootOverRuns computes the hex Merkle root committing to the given runs
// (any order; sorted internally). Empty populations have no root.
func rootOverRuns(runs []core.CampaignRun) string {
	if len(runs) == 0 {
		return ""
	}
	sorted := append([]core.CampaignRun(nil), runs...)
	sortRuns(sorted)
	leaves := make([][]byte, len(sorted))
	for i := range sorted {
		leaves[i] = leafContent(&sorted[i])
	}
	return MerkleRoot(leaves)
}
