package store

import (
	"fmt"
	"testing"
)

func synthLeaves(n int) [][]byte {
	leaves := make([][]byte, n)
	for i := range leaves {
		leaves[i] = []byte(fmt.Sprintf("leaf-%d", i))
	}
	return leaves
}

func TestMerkleRootDeterministic(t *testing.T) {
	leaves := synthLeaves(5)
	if MerkleRoot(leaves) != MerkleRoot(synthLeaves(5)) {
		t.Fatal("root not deterministic")
	}
	if MerkleRoot(nil) != "" {
		t.Fatal("empty set must have no root")
	}
	// Order and content sensitivity.
	swapped := synthLeaves(5)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	if MerkleRoot(swapped) == MerkleRoot(leaves) {
		t.Fatal("root insensitive to leaf order")
	}
	edited := synthLeaves(5)
	edited[3][0] ^= 0x01
	if MerkleRoot(edited) == MerkleRoot(leaves) {
		t.Fatal("root insensitive to a flipped leaf byte")
	}
}

func TestMerkleOddPromotionUnambiguous(t *testing.T) {
	// The classic duplicate-last-leaf ambiguity: a 3-leaf tree must not
	// share its root with the 4-leaf tree that repeats the last leaf.
	three := synthLeaves(3)
	four := append(synthLeaves(3), []byte("leaf-2"))
	if MerkleRoot(three) == MerkleRoot(four) {
		t.Fatal("odd promotion is ambiguous against duplicated leaves")
	}
	// Domain separation: a single leaf's root is not the bare leaf hash of
	// an interior encoding (indirectly: 1-leaf and 2-equal-leaf differ).
	one := synthLeaves(1)
	two := [][]byte{[]byte("leaf-0"), []byte("leaf-0")}
	if MerkleRoot(one) == MerkleRoot(two) {
		t.Fatal("leaf/node domain separation failed")
	}
}

func TestMerkleInclusionProofs(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 13} {
		leaves := synthLeaves(n)
		root := MerkleRoot(leaves)
		for idx := 0; idx < n; idx++ {
			proof, err := MerkleProve(leaves, idx)
			if err != nil {
				t.Fatalf("n=%d idx=%d: %v", n, idx, err)
			}
			if !MerkleVerify(root, leaves[idx], proof) {
				t.Fatalf("n=%d idx=%d: valid proof rejected", n, idx)
			}
			// The proof must not verify a different leaf, nor against a
			// different root.
			if MerkleVerify(root, []byte("forged"), proof) {
				t.Fatalf("n=%d idx=%d: proof verified a forged leaf", n, idx)
			}
			if n > 1 {
				other := (idx + 1) % n
				if MerkleVerify(root, leaves[other], proof) {
					t.Fatalf("n=%d idx=%d: proof verified the wrong leaf", n, idx)
				}
			}
		}
		if _, err := MerkleProve(leaves, n); err == nil {
			t.Fatalf("n=%d: out-of-range index accepted", n)
		}
	}
}
