package store

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
)

// JSONL is the durable ReportStore: an append-only directory store in which
// every executed run is one framed, fsync'd JSON record. A store directory
// holds one subdirectory per campaign, keyed by the campaign's name and the
// content hash of its normalized spec (Campaign.SpecHash) — an edited
// campaign can never resume into a stale record set:
//
//	DIR/
//	  <name>-<spechash12>/
//	    runs.jsonl   one frame per checkpointed run, append-only
//	    root.json    Merkle seal, written only for complete clean sweeps
//
// Each runs.jsonl frame is "LLLLLLLL CCCCCCCC payload\n" — payload length
// and CRC32 (IEEE) in fixed-width hex — and is fsync'd before Put returns,
// so a crash loses at most the in-flight record. Reopening tolerates a torn
// tail (the partial frame is truncated away and its cell simply re-executes
// on resume); Verify parses strictly, where any damaged frame is evidence of
// tampering, not a crash.
type JSONL struct {
	dir      string // campaign subdirectory (not the user-facing root dir)
	campaign string
	specHash string

	mu         sync.Mutex
	f          *os.File
	runs       map[cellKey]core.CampaignRun
	appendHook func() error // fault-injection seam; see SetAppendHook
}

// runRecord is the persisted form of one run: the run row plus its full
// RunReport (excluded from CampaignRun's own JSON). The fingerprint fields
// are derived state and are recomputed from the report on load, never
// trusted from disk.
type runRecord struct {
	Run    core.CampaignRun `json:"run"`
	Report *core.RunReport  `json:"report"`
}

// sealRecord is root.json: the Merkle commitment of a completed sweep.
type sealRecord struct {
	Campaign string `json:"campaign"`
	SpecHash string `json:"specHash"`
	Root     string `json:"root"`
	// Runs is the distinct-cell count the root commits to; Verify checks it
	// against the record set, so dropping records is as detectable as
	// altering them.
	Runs int `json:"runs"`
}

const (
	runsFile = "runs.jsonl"
	sealFile = "root.json"
)

// OpenJSONL opens (creating if needed) the durable store for the campaign
// under dir, replaying any existing records into the resume index. The
// campaign keys its subdirectory by name and spec hash; opening fails if the
// campaign itself does not validate.
func OpenJSONL(dir string, c *core.Campaign) (*JSONL, error) {
	hash, err := c.SpecHash()
	if err != nil {
		return nil, err
	}
	name := c.Name
	if name == "" {
		name = "campaign"
	}
	sub := filepath.Join(dir, fmt.Sprintf("%s-%s", sanitize(name), hash[:12]))
	if err := os.MkdirAll(sub, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &JSONL{dir: sub, campaign: name, specHash: hash, runs: make(map[cellKey]core.CampaignRun)}

	path := filepath.Join(sub, runsFile)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	records, goodLen, _ := parseFrames(buf)
	if goodLen < len(buf) {
		// Torn tail from a crashed writer: drop the partial frame so the
		// file is append-clean again. The lost cell re-executes on resume.
		if err := f.Truncate(int64(goodLen)); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	for i := range records {
		run, err := decodeRecord(records[i])
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("store: %s record %d: %w", runsFile, i, err)
		}
		s.runs[cellKey{run.Variant, run.Seed, run.Attempt}] = run
	}
	s.f = f
	return s, nil
}

// sanitize maps a campaign name onto the filesystem-safe alphabet.
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '_', r == '-':
			return r
		default:
			return '_'
		}
	}, name)
}

// Dir returns the campaign's subdirectory inside the store.
func (s *JSONL) Dir() string { return s.dir }

// SpecHash returns the campaign spec hash keying this store.
func (s *JSONL) SpecHash() string { return s.specHash }

// SetAppendHook installs a fault-injection hook invoked (under the store
// lock, so invocations are serialized) at the start of every storable Put: a
// non-nil return aborts the append before anything is written, exactly as a
// failing write would. Test-only seam for the chaos suites
// (internal/faultinject); a nil hook (the default) costs nothing.
func (s *JSONL) SetAppendHook(h func() error) {
	s.mu.Lock()
	s.appendHook = h
	s.mu.Unlock()
}

// Put checkpoints one executed run: frame, append, fsync. Aborted runs are
// skipped (see ReportStore), so their cells re-execute on resume.
func (s *JSONL) Put(run core.CampaignRun) error {
	if !storable(&run) {
		return nil
	}
	payload, err := json.Marshal(runRecord{Run: run, Report: run.Report})
	if err != nil {
		return fmt.Errorf("store: encoding run: %w", err)
	}
	frame := encodeFrame(payload)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.appendHook != nil {
		if err := s.appendHook(); err != nil {
			return fmt.Errorf("store: appending run: %w", err)
		}
	}
	if _, err := s.f.Write(frame); err != nil {
		return fmt.Errorf("store: appending run: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: fsync: %w", err)
	}
	s.runs[cellKey{run.Variant, run.Seed, run.Attempt}] = run
	return nil
}

// Done reports whether the cell has a persisted record.
func (s *JSONL) Done(variant string, seed int64, attempt int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.runs[cellKey{variant, seed, attempt}]
	return ok
}

// Load reconstructs the persisted population sorted by (variant, seed,
// attempt), reports attached and fingerprints rehydrated.
func (s *JSONL) Load() (*core.CampaignReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := &core.CampaignReport{Campaign: s.campaign, Runs: make([]core.CampaignRun, 0, len(s.runs))}
	for _, run := range s.runs {
		rep.Runs = append(rep.Runs, run)
	}
	sortRuns(rep.Runs)
	rep.TotalRuns = len(rep.Runs)
	return rep, nil
}

// Finish seals the completed sweep: the Merkle root over the persisted
// records is computed, cross-checked against the report (every cell of the
// sweep must be on disk and agree), written atomically as root.json, and
// stamped onto the report. RunCampaign calls it only for complete,
// fully-clean sweeps; a cancelled or failing sweep leaves the store
// unsealed so a later resume can finish it.
func (s *JSONL) Finish(rep *core.CampaignReport) error {
	s.mu.Lock()
	stored := make([]core.CampaignRun, 0, len(s.runs))
	for _, run := range s.runs {
		stored = append(stored, run)
	}
	s.mu.Unlock()
	if len(stored) != len(rep.Runs) {
		return fmt.Errorf("store: seal: %d records on disk, %d runs in report", len(stored), len(rep.Runs))
	}
	root := rootOverRuns(stored)
	if repRoot := rootOverRuns(rep.Runs); repRoot != root {
		return fmt.Errorf("store: seal: persisted records disagree with the report (disk root %s, report root %s)", root, repRoot)
	}
	seal := sealRecord{Campaign: s.campaign, SpecHash: s.specHash, Root: root, Runs: len(stored)}
	payload, err := json.MarshalIndent(seal, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encoding seal: %w", err)
	}
	tmp := filepath.Join(s.dir, sealFile+".tmp")
	if err := os.WriteFile(tmp, append(payload, '\n'), 0o644); err != nil {
		return fmt.Errorf("store: writing seal: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, sealFile)); err != nil {
		return fmt.Errorf("store: committing seal: %w", err)
	}
	rep.MerkleRoot = root
	return nil
}

// Close releases the store's file handle.
func (s *JSONL) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// decodeRecord decodes one persisted frame payload back into a run, report
// reattached and fingerprint recomputed from the report.
func decodeRecord(payload []byte) (core.CampaignRun, error) {
	var rec runRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return core.CampaignRun{}, err
	}
	rec.Run.Report = rec.Report
	rec.Run.Rehydrate()
	return rec.Run, nil
}

// --- framing ---

// frameHeaderLen is len("LLLLLLLL CCCCCCCC ").
const frameHeaderLen = 18

// encodeFrame wraps a payload in the length/CRC frame.
func encodeFrame(payload []byte) []byte {
	out := make([]byte, 0, frameHeaderLen+len(payload)+1)
	out = append(out, fmt.Sprintf("%08x %08x ", len(payload), crc32.ChecksumIEEE(payload))...)
	out = append(out, payload...)
	return append(out, '\n')
}

// parseFrames walks the buffer frame by frame, returning the payloads of
// every intact frame, the byte length of that intact prefix, and the error
// describing the first damaged frame (nil if the buffer parses to the end).
// Callers choose the semantics: opening for append tolerates a damaged tail
// (truncate at goodLen and move on), verification treats any error as
// tamper evidence.
func parseFrames(buf []byte) (payloads [][]byte, goodLen int, err error) {
	off := 0
	for off < len(buf) {
		rest := buf[off:]
		if len(rest) < frameHeaderLen {
			return payloads, off, fmt.Errorf("truncated frame header at offset %d", off)
		}
		if rest[8] != ' ' || rest[17] != ' ' {
			return payloads, off, fmt.Errorf("malformed frame header at offset %d", off)
		}
		n, err := strconv.ParseUint(string(rest[0:8]), 16, 32)
		if err != nil {
			return payloads, off, fmt.Errorf("bad frame length at offset %d: %v", off, err)
		}
		sum, err := strconv.ParseUint(string(rest[9:17]), 16, 32)
		if err != nil {
			return payloads, off, fmt.Errorf("bad frame checksum at offset %d: %v", off, err)
		}
		end := frameHeaderLen + int(n)
		if len(rest) < end+1 {
			return payloads, off, fmt.Errorf("truncated frame payload at offset %d", off)
		}
		payload := rest[frameHeaderLen:end]
		if rest[end] != '\n' {
			return payloads, off, fmt.Errorf("missing frame terminator at offset %d", off)
		}
		if crc32.ChecksumIEEE(payload) != uint32(sum) {
			return payloads, off, fmt.Errorf("frame checksum mismatch at offset %d", off)
		}
		payloads = append(payloads, payload)
		off += end + 1
	}
	return payloads, off, nil
}
