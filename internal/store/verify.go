package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/core"
)

// Verification is the audit result for one sealed campaign in a store
// directory: its identity, record count and recomputed (and matching)
// Merkle root.
type Verification struct {
	Campaign string `json:"campaign"`
	SpecHash string `json:"specHash"`
	Dir      string `json:"dir"`
	Runs     int    `json:"runs"`
	Root     string `json:"root"`
}

// Verify audits every campaign under the store directory: each record file
// must parse strictly (any damaged frame — a single flipped byte — fails),
// every campaign must be sealed, the seal's distinct-cell count must match
// the records, and the Merkle root recomputed from the records must equal
// the sealed root. The first violation aborts with a non-nil error naming
// the campaign and cause.
func Verify(dir string) ([]Verification, error) {
	dirs, err := campaignDirs(dir)
	if err != nil {
		return nil, err
	}
	out := make([]Verification, 0, len(dirs))
	for _, sub := range dirs {
		v, err := verifyCampaign(sub)
		if err != nil {
			return nil, err
		}
		out = append(out, *v)
	}
	return out, nil
}

// VerifyRun audits one cell: it locates the sealed campaign(s) holding the
// (variant, seed, attempt) record, builds the record's Merkle inclusion
// proof and checks it against the sealed root. Every campaign containing
// the cell must verify; an absent cell is an error.
func VerifyRun(dir, variant string, seed int64, attempt int) (*Verification, error) {
	dirs, err := campaignDirs(dir)
	if err != nil {
		return nil, err
	}
	key := cellKey{variant, seed, attempt}
	var found *Verification
	for _, sub := range dirs {
		v, runs, seal, err := loadSealed(sub)
		if err != nil {
			return nil, err
		}
		idx := -1
		leaves := make([][]byte, len(runs))
		for i := range runs {
			leaves[i] = leafContent(&runs[i])
			if (cellKey{runs[i].Variant, runs[i].Seed, runs[i].Attempt}) == key {
				idx = i
			}
		}
		if idx < 0 {
			continue
		}
		proof, err := MerkleProve(leaves, idx)
		if err != nil {
			return nil, fmt.Errorf("store: %s: %w", filepath.Base(sub), err)
		}
		if !MerkleVerify(seal.Root, leaves[idx], proof) {
			return nil, fmt.Errorf("store: %s: inclusion proof for run %s does not verify against sealed root %s",
				filepath.Base(sub), key, seal.Root)
		}
		found = v
	}
	if found == nil {
		return nil, fmt.Errorf("store: no sealed campaign under %s holds run %s", dir, key)
	}
	return found, nil
}

// campaignDirs lists the campaign subdirectories (those holding a record
// file) of a store directory, sorted for deterministic audit order.
func campaignDirs(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		sub := filepath.Join(dir, e.Name())
		if _, err := os.Stat(filepath.Join(sub, runsFile)); err == nil {
			out = append(out, sub)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("store: no campaign records under %s", dir)
	}
	sort.Strings(out)
	return out, nil
}

// verifyCampaign audits one campaign subdirectory end to end.
func verifyCampaign(sub string) (*Verification, error) {
	v, runs, seal, err := loadSealed(sub)
	if err != nil {
		return nil, err
	}
	if seal.Runs != len(runs) {
		return nil, fmt.Errorf("store: %s: seal commits to %d runs but %d records are present",
			filepath.Base(sub), seal.Runs, len(runs))
	}
	if root := rootOverRuns(runs); root != seal.Root {
		return nil, fmt.Errorf("store: %s: recomputed Merkle root %s does not match sealed root %s",
			filepath.Base(sub), root, seal.Root)
	}
	return v, nil
}

// loadSealed strict-parses a campaign subdirectory: every frame must be
// intact and the seal present. Returns the deduplicated (last record wins)
// population sorted by (variant, seed, attempt).
func loadSealed(sub string) (*Verification, []core.CampaignRun, *sealRecord, error) {
	name := filepath.Base(sub)
	buf, err := os.ReadFile(filepath.Join(sub, runsFile))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("store: %s: %w", name, err)
	}
	payloads, _, err := parseFrames(buf)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("store: %s: %s: %w", name, runsFile, err)
	}
	byCell := make(map[cellKey]core.CampaignRun, len(payloads))
	for i, p := range payloads {
		run, err := decodeRecord(p)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("store: %s: %s record %d: %w", name, runsFile, i, err)
		}
		byCell[cellKey{run.Variant, run.Seed, run.Attempt}] = run
	}
	runs := make([]core.CampaignRun, 0, len(byCell))
	for _, run := range byCell {
		runs = append(runs, run)
	}
	sortRuns(runs)

	sealBuf, err := os.ReadFile(filepath.Join(sub, sealFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, nil, fmt.Errorf("store: %s: not sealed (no %s: the sweep never completed cleanly)", name, sealFile)
		}
		return nil, nil, nil, fmt.Errorf("store: %s: %w", name, err)
	}
	var seal sealRecord
	if err := json.Unmarshal(sealBuf, &seal); err != nil {
		return nil, nil, nil, fmt.Errorf("store: %s: %s: %w", name, sealFile, err)
	}
	if seal.Root == "" {
		return nil, nil, nil, fmt.Errorf("store: %s: %s has no root", name, sealFile)
	}
	v := &Verification{Campaign: seal.Campaign, SpecHash: seal.SpecHash, Dir: sub, Runs: len(runs), Root: seal.Root}
	return v, runs, &seal, nil
}
