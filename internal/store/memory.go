package store

import (
	"sync"

	"repro/internal/core"
)

// Memory is the in-process ReportStore: the same checkpoint/resume/commit
// semantics as the JSONL backend without durability. It exists for tests,
// single-process pipelines that want the Merkle commitment without touching
// disk, and as the behavioural reference the JSONL backend is diffed
// against.
type Memory struct {
	mu   sync.Mutex
	runs map[cellKey]core.CampaignRun
	root string
}

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{runs: make(map[cellKey]core.CampaignRun)}
}

// Put checkpoints one executed run; aborted runs are skipped (see
// ReportStore). Re-putting a cell overwrites the prior record.
func (m *Memory) Put(run core.CampaignRun) error {
	if !storable(&run) {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.runs[cellKey{run.Variant, run.Seed, run.Attempt}] = run
	return nil
}

// Done reports whether the cell has a record.
func (m *Memory) Done(variant string, seed int64, attempt int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.runs[cellKey{variant, seed, attempt}]
	return ok
}

// Load reconstructs the stored population sorted by (variant, seed,
// attempt), fingerprints rehydrated.
func (m *Memory) Load() (*core.CampaignReport, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rep := &core.CampaignReport{Runs: make([]core.CampaignRun, 0, len(m.runs))}
	for _, run := range m.runs {
		run.Rehydrate()
		rep.Runs = append(rep.Runs, run)
	}
	sortRuns(rep.Runs)
	rep.TotalRuns = len(rep.Runs)
	return rep, nil
}

// Finish commits the completed sweep: the Merkle root over the report's runs
// is computed and stamped onto the report. RunCampaign calls it only for
// complete, fully-clean sweeps.
func (m *Memory) Finish(rep *core.CampaignReport) error {
	root := rootOverRuns(rep.Runs)
	m.mu.Lock()
	m.root = root
	m.mu.Unlock()
	rep.MerkleRoot = root
	return nil
}

// Root returns the root sealed by Finish ("" before commit).
func (m *Memory) Root() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.root
}
