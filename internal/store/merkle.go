package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Merkle commitment over a campaign's run fingerprints.
//
// The tree is the textbook binary hash tree with two standard hardenings:
// leaf and interior hashes are domain-separated (0x00 / 0x01 prefixes, so a
// crafted leaf can never impersonate an interior node), and an odd node at
// any level is promoted unchanged rather than paired with itself (no
// CVE-2012-2459-style duplicate-leaf ambiguity). Leaves are the runs'
// leafContent byte strings sorted by (variant, seed, attempt), making the
// root a pure function of the sweep's deterministic outcomes — independent
// of completion order, worker count, interruption or resume.

// merkleLeaf hashes a leaf: SHA-256(0x00 || data).
func merkleLeaf(data []byte) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte{0x00})
	h.Write(data)
	var out [sha256.Size]byte
	copy(out[:], h.Sum(nil))
	return out
}

// merkleNode hashes an interior node: SHA-256(0x01 || left || right).
func merkleNode(left, right [sha256.Size]byte) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte{0x01})
	h.Write(left[:])
	h.Write(right[:])
	var out [sha256.Size]byte
	copy(out[:], h.Sum(nil))
	return out
}

// MerkleRoot returns the hex root committing to the ordered leaves. The
// empty set has no root (campaign stores never seal empty sweeps).
func MerkleRoot(leaves [][]byte) string {
	if len(leaves) == 0 {
		return ""
	}
	level := make([][sha256.Size]byte, len(leaves))
	for i, l := range leaves {
		level[i] = merkleLeaf(l)
	}
	for len(level) > 1 {
		level = foldLevel(level)
	}
	return hex.EncodeToString(level[0][:])
}

// ProofStep is one level of a Merkle inclusion proof: the sibling hash and
// which side it combines on.
type ProofStep struct {
	Sibling [sha256.Size]byte
	// Right is true when the sibling is the right operand of the parent
	// hash (i.e. the proven node is on the left).
	Right bool
}

// MerkleProve builds the inclusion proof for leaves[idx] against
// MerkleRoot(leaves). Levels where the node is the promoted odd node
// contribute no step.
func MerkleProve(leaves [][]byte, idx int) ([]ProofStep, error) {
	if idx < 0 || idx >= len(leaves) {
		return nil, fmt.Errorf("store: merkle proof index %d out of range [0,%d)", idx, len(leaves))
	}
	level := make([][sha256.Size]byte, len(leaves))
	for i, l := range leaves {
		level[i] = merkleLeaf(l)
	}
	var proof []ProofStep
	pos := idx
	for len(level) > 1 {
		if sib := pos ^ 1; sib < len(level) {
			proof = append(proof, ProofStep{Sibling: level[sib], Right: sib > pos})
		}
		level = foldLevel(level)
		pos /= 2
	}
	return proof, nil
}

// foldLevel hashes one tree level into the next: adjacent pairs combine, an
// odd trailing node promotes unchanged.
func foldLevel(level [][sha256.Size]byte) [][sha256.Size]byte {
	next := make([][sha256.Size]byte, 0, (len(level)+1)/2)
	for i := 0; i+1 < len(level); i += 2 {
		next = append(next, merkleNode(level[i], level[i+1]))
	}
	if len(level)%2 == 1 {
		next = append(next, level[len(level)-1])
	}
	return next
}

// MerkleVerify checks an inclusion proof: that leaf, combined up through the
// proof's siblings, reproduces the hex root.
func MerkleVerify(root string, leaf []byte, proof []ProofStep) bool {
	h := merkleLeaf(leaf)
	for _, step := range proof {
		if step.Right {
			h = merkleNode(h, step.Sibling)
		} else {
			h = merkleNode(step.Sibling, h)
		}
	}
	return hex.EncodeToString(h[:]) == root
}
