package store

import (
	"errors"
	"strings"
	"testing"
)

// TestStoreFaultAppendHook checks the fault-injection seam: a hooked append
// failure aborts the Put before anything reaches disk — the cell stays
// pending, the file stays append-clean — and clearing the hook restores
// normal appends. A failed hooked Put must look exactly like a failed write:
// retryable, with nothing half-committed.
func TestStoreFaultAppendHook(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenJSONL(dir, synthCampaign("hooked"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	calls := 0
	boom := errors.New("injected append fault")
	s.SetAppendHook(func() error {
		calls++
		if calls == 1 {
			return boom
		}
		return nil
	})

	run := synthRun("v", 1, 1)
	if err := s.Put(run); !errors.Is(err, boom) {
		t.Fatalf("hooked Put error = %v, want the injected fault", err)
	}
	if err := s.Put(run); err != nil {
		t.Fatalf("second Put (hook passes) failed: %v", err)
	}
	if calls != 2 {
		t.Fatalf("hook called %d times, want 2", calls)
	}

	// The failed append left no trace: exactly one record on disk, and the
	// cell was not marked done by the failed attempt (it is by the retry).
	if !s.Done("v", 1, 1) {
		t.Fatal("retried Put did not mark the cell done")
	}
	rep, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 1 {
		t.Fatalf("store holds %d records, want 1", len(rep.Runs))
	}

	// Non-storable runs never reach the hook: the hook guards real appends
	// only, so fault plans count actual store traffic.
	aborted := synthRun("v", 2, 1)
	aborted.Err = "context canceled"
	aborted.Report = nil
	if err := s.Put(aborted); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("hook fired for a non-storable run (calls = %d)", calls)
	}

	s.SetAppendHook(nil)
	if err := s.Put(synthRun("v", 3, 1)); err != nil {
		t.Fatalf("Put after clearing the hook: %v", err)
	}

	// The file parses cleanly end to end — the aborted append wrote nothing.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenJSONL(dir, synthCampaign("hooked"))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rep2, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Runs) != 2 {
		t.Fatalf("reopened store holds %d records, want 2", len(rep2.Runs))
	}
	for _, r := range rep2.Runs {
		if strings.HasPrefix(r.Err, "panic") || r.FullFingerprint() == "" {
			t.Fatalf("reopened record damaged: %+v", r)
		}
	}
}
