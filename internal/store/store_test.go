package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

// synthRun builds a deterministic synthetic run record: a small RunReport
// whose fingerprint is a pure function of (variant, seed, attempt), exactly
// like a real campaign run's.
func synthRun(variant string, seed int64, attempt int) core.CampaignRun {
	rep := &core.RunReport{
		Scenario:  "synthetic",
		Seed:      seed,
		Steps:     5,
		Precision: 1,
		Recall:    1,
		Events: []core.EventOutcome{
			{Event: "probe", Action: "synthetic action", Fired: true, Step: int(seed % 5)},
		},
		Grid: core.GridReport{Converged: true},
	}
	run := core.CampaignRun{
		Variant: variant, Seed: seed, Attempt: attempt,
		Engine: "parallel", FramePooling: true,
		Steps: 5, Precision: 1, Recall: 1,
		Report: rep,
	}
	run.Rehydrate()
	return run
}

// synthCampaign builds a minimal valid campaign declaration (the store only
// consults its name and spec hash).
func synthCampaign(name string) *core.Campaign {
	return &core.Campaign{
		Name:  name,
		Model: &core.ModelSet{Name: "m"},
		Variants: []core.CampaignVariant{
			{Name: "v", Scenario: &core.Scenario{Name: "s", Steps: 3}, Seeds: []int64{1, 2}},
		},
	}
}

func TestStoreMemoryRoundtrip(t *testing.T) {
	m := NewMemory()
	runs := []core.CampaignRun{
		synthRun("b", 2, 1),
		synthRun("a", 1, 1),
		synthRun("a", 1, 2),
	}
	for _, r := range runs {
		if err := m.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	// Aborted runs are not storable: the cell must stay pending.
	aborted := synthRun("a", 9, 1)
	aborted.Err = "context canceled"
	if err := m.Put(aborted); err != nil {
		t.Fatal(err)
	}
	if m.Done("a", 9, 1) {
		t.Fatal("aborted run must not mark its cell done")
	}
	if !m.Done("a", 1, 2) || m.Done("a", 3, 1) {
		t.Fatal("Done answers wrong cells")
	}
	rep, err := m.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 3 {
		t.Fatalf("Load returned %d runs, want 3", len(rep.Runs))
	}
	// Canonical (variant, seed, attempt) order, fingerprints rehydrated.
	want := []string{"a:1:1", "a:1:2", "b:2:1"}
	for i, r := range rep.Runs {
		got := (cellKey{r.Variant, r.Seed, r.Attempt}).String()
		if got != want[i] {
			t.Fatalf("run %d: got %s, want %s", i, got, want[i])
		}
		if r.FullFingerprint() == "" || r.Fingerprint == "" {
			t.Fatalf("run %d: fingerprint not rehydrated", i)
		}
	}
	if err := m.Finish(rep); err != nil {
		t.Fatal(err)
	}
	if rep.MerkleRoot == "" || m.Root() != rep.MerkleRoot {
		t.Fatal("Finish must seal and stamp the Merkle root")
	}
}

func TestStoreJSONLRoundtripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	c := synthCampaign("sweep")
	st, err := OpenJSONL(dir, c)
	if err != nil {
		t.Fatal(err)
	}
	puts := []core.CampaignRun{synthRun("v", 1, 1), synthRun("v", 2, 1)}
	for _, r := range puts {
		if err := st.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	aborted := synthRun("v", 3, 1)
	aborted.Err = "boom"
	if err := st.Put(aborted); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the durable records come back, the aborted cell does not.
	st2, err := OpenJSONL(dir, c)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if !st2.Done("v", 1, 1) || !st2.Done("v", 2, 1) {
		t.Fatal("persisted cells lost across reopen")
	}
	if st2.Done("v", 3, 1) {
		t.Fatal("aborted run persisted")
	}
	rep, err := st2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 2 {
		t.Fatalf("Load returned %d runs, want 2", len(rep.Runs))
	}
	for i := range rep.Runs {
		got, want := &rep.Runs[i], &puts[i]
		if got.Report == nil {
			t.Fatalf("run %d: report not rehydrated", i)
		}
		if got.FullFingerprint() != want.FullFingerprint() {
			t.Fatalf("run %d: fingerprint changed across persistence", i)
		}
		if got.Steps != want.Steps || got.Precision != want.Precision {
			t.Fatalf("run %d: fields changed across persistence", i)
		}
	}
}

func TestStoreJSONLTornTailRecovered(t *testing.T) {
	dir := t.TempDir()
	c := synthCampaign("torn")
	st, err := OpenJSONL(dir, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(synthRun("v", 1, 1)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(st.Dir(), runsFile)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A crashed writer leaves half a frame behind.
	torn := append(append([]byte(nil), buf...), []byte("0000abcd 12")...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenJSONL(dir, c)
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer st2.Close()
	if !st2.Done("v", 1, 1) {
		t.Fatal("intact record lost during torn-tail recovery")
	}
	// The tail is gone and the file is append-clean again.
	if err := st2.Put(synthRun("v", 2, 1)); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if payloads, _, perr := parseFrames(after); perr != nil || len(payloads) != 2 {
		t.Fatalf("file not clean after recovery: %d frames, err=%v", len(payloads), perr)
	}
}

// sealStore runs the full happy path into a sealed store and returns the
// store dir and sealed root.
func sealStore(t *testing.T, dir string, c *core.Campaign, runs ...core.CampaignRun) string {
	t.Helper()
	st, err := OpenJSONL(dir, c)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, r := range runs {
		if err := st.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Finish(rep); err != nil {
		t.Fatal(err)
	}
	if rep.MerkleRoot == "" {
		t.Fatal("Finish left MerkleRoot empty")
	}
	return rep.MerkleRoot
}

func TestStoreVerifySealed(t *testing.T) {
	dir := t.TempDir()
	root := sealStore(t, dir, synthCampaign("audit"),
		synthRun("v", 1, 1), synthRun("v", 2, 1), synthRun("v", 2, 2))

	vs, err := Verify(dir)
	if err != nil {
		t.Fatalf("verify clean store: %v", err)
	}
	if len(vs) != 1 || vs[0].Root != root || vs[0].Runs != 3 || vs[0].Campaign != "audit" {
		t.Fatalf("unexpected verification: %+v", vs)
	}
	// Per-run inclusion proofs for every cell.
	for _, k := range []cellKey{{"v", 1, 1}, {"v", 2, 1}, {"v", 2, 2}} {
		if _, err := VerifyRun(dir, k.variant, k.seed, k.attempt); err != nil {
			t.Fatalf("VerifyRun(%s): %v", k, err)
		}
	}
	if _, err := VerifyRun(dir, "v", 7, 1); err == nil {
		t.Fatal("VerifyRun must fail for a cell the store never held")
	}
}

func TestStoreVerifyDetectsTamper(t *testing.T) {
	// Flip one byte at several positions (payload middle, last record's
	// tail) — every flip must be detected.
	for _, name := range []string{"mid", "tail"} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			sealStore(t, dir, synthCampaign("tamper-"+name),
				synthRun("v", 1, 1), synthRun("v", 2, 1))
			subs, err := campaignDirs(dir)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(subs[0], runsFile)
			buf, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			pos := len(buf) / 2
			if name == "tail" {
				pos = len(buf) - 2 // inside the final record's payload
			}
			buf[pos] ^= 0x01
			if err := os.WriteFile(path, buf, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := Verify(dir); err == nil {
				t.Fatal("verify accepted a store with a flipped byte")
			}
		})
	}
}

func TestStoreVerifyDetectsDroppedRecord(t *testing.T) {
	dir := t.TempDir()
	sealStore(t, dir, synthCampaign("drop"), synthRun("v", 1, 1), synthRun("v", 2, 1))
	subs, err := campaignDirs(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(subs[0], runsFile)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate cleanly at the first frame boundary: every remaining frame is
	// intact, so only the seal's run count can catch the missing record.
	payloads, _, perr := parseFrames(buf)
	if perr != nil || len(payloads) != 2 {
		t.Fatalf("setup: %d frames, err=%v", len(payloads), perr)
	}
	first := encodeFrame(payloads[0])
	if err := os.WriteFile(path, first, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(dir); err == nil {
		t.Fatal("verify accepted a store with a dropped record")
	} else if !strings.Contains(err.Error(), "commits to") {
		t.Fatalf("expected seal-count violation, got: %v", err)
	}
}

func TestStoreVerifyRequiresSeal(t *testing.T) {
	dir := t.TempDir()
	c := synthCampaign("open")
	st, err := OpenJSONL(dir, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(synthRun("v", 1, 1)); err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, err := Verify(dir); err == nil || !strings.Contains(err.Error(), "not sealed") {
		t.Fatalf("verify of an unsealed store must fail naming the cause, got: %v", err)
	}
}

func TestStoreSpecHashKeysLayout(t *testing.T) {
	dir := t.TempDir()
	a := synthCampaign("same-name")
	b := synthCampaign("same-name")
	b.Variants[0].Seeds = []int64{1, 2, 3} // edited sweep, same name
	sa, err := OpenJSONL(dir, a)
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	sb, err := OpenJSONL(dir, b)
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()
	if sa.Dir() == sb.Dir() {
		t.Fatal("an edited campaign must key a fresh record set")
	}
	// Same declaration (fresh values, same content) maps to the same layout.
	sa2, err := OpenJSONL(dir, synthCampaign("same-name"))
	if err != nil {
		t.Fatal(err)
	}
	defer sa2.Close()
	if sa2.Dir() != sa.Dir() {
		t.Fatal("identical declarations must share a record set")
	}
}
