package scada

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/mms"
	"repro/internal/modbus"
	"repro/internal/netem"
	"repro/internal/sgmlconf"
)

// rig: PLC host with a Modbus server, IED host with an MMS server, HMI host.
type rig struct {
	hmiHost *netem.Host
	mb      *modbus.Server
	mmsSrv  *mms.Server
}

func newRig(t *testing.T) *rig {
	t.Helper()
	n := netem.NewNetwork()
	if _, err := netem.NewSwitch(n, "sw", 4); err != nil {
		t.Fatal(err)
	}
	mk := func(name string, last byte) *netem.Host {
		h, err := netem.NewHost(n, name, netem.MAC{2, 0, 0, 0, 0, last}, netem.IPv4{10, 0, 0, last})
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	plc := mk("cplc", 1)
	ied := mk("gied1", 2)
	hmi := mk("scada", 3)
	for i, h := range []*netem.Host{plc, ied, hmi} {
		if _, err := n.Connect(h.Name(), 0, "sw", i, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)

	mb := modbus.NewServer(16, 16, 32, 32)
	if err := mb.Serve(plc, 0); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mb.Close)
	mmsSrv := mms.NewServer("SGML", "vIED")
	mmsSrv.Define("LD0/MMXU1.A.phsA", mms.NewFloat(0.2))
	mmsSrv.OnWrite("LD0/XCBR1.Pos.Oper", mms.NewBool(true), func(_ mms.ObjectReference, _ mms.Value) error { return nil })
	if err := mmsSrv.Serve(ied, 0); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mmsSrv.Close)
	return &rig{hmiHost: hmi, mb: mb, mmsSrv: mmsSrv}
}

func testImport() *sgmlconf.ScadaImport {
	return &sgmlconf.ScadaImport{
		DataSources: []sgmlconf.ScadaImportSource{
			{XID: "DS_cplc", Name: "cplc", Type: "MODBUS_IP", IP: "10.0.0.1", Port: 502, UpdatePeriodMS: 50, Enabled: true},
			{XID: "DS_gied1", Name: "gied1", Type: "MMS", IP: "10.0.0.2", Port: 102, UpdatePeriodMS: 100, Enabled: true},
		},
		DataPoints: []sgmlconf.ScadaImportPoint{
			{XID: "DP_volt", Name: "MainVoltage", DataSourceXID: "DS_cplc", PointLocator: "30001",
				DataType: "NUMERIC", Multiplier: 0.001, AlarmEnabled: true, AlarmLowLimit: 0.9, AlarmHighLimit: 1.1},
			{XID: "DP_cb", Name: "CB1Status", DataSourceXID: "DS_cplc", PointLocator: "10001", DataType: "BINARY"},
			{XID: "DP_cmd", Name: "CB1Cmd", DataSourceXID: "DS_cplc", PointLocator: "1",
				DataType: "BINARY", SettableEnabled: true},
			{XID: "DP_sp", Name: "LoadSetpoint", DataSourceXID: "DS_cplc", PointLocator: "40001",
				DataType: "NUMERIC", SettableEnabled: true},
			{XID: "DP_amps", Name: "FeederCurrent", DataSourceXID: "DS_gied1",
				PointLocator: "LD0/MMXU1.A.phsA", DataType: "NUMERIC"},
			{XID: "DP_oper", Name: "BreakerOper", DataSourceXID: "DS_gied1",
				PointLocator: "LD0/XCBR1.Pos.Oper", DataType: "BINARY", SettableEnabled: true},
		},
	}
}

func newHMI(t *testing.T, r *rig) *HMI {
	t.Helper()
	h, err := New(r.hmiHost, testImport())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	h.Connect()
	return h
}

func TestPollReadsModbusAndMMS(t *testing.T) {
	r := newRig(t)
	r.mb.SetInput(0, 1020) // 1.02 pu * 1000
	r.mb.SetDiscrete(0, true)
	h := newHMI(t, r)
	h.PollOnce()

	volt, err := h.Point("DP_volt")
	if err != nil {
		t.Fatal(err)
	}
	if volt.Quality != QualityGood || volt.Value != 1.02 {
		t.Errorf("voltage = %+v", volt)
	}
	cb, _ := h.Point("DP_cb")
	if !cb.Binary || !cb.IsBinary {
		t.Errorf("breaker status = %+v", cb)
	}
	amps, _ := h.Point("DP_amps")
	if amps.Value != 0.2 {
		t.Errorf("MMS point = %+v", amps)
	}
	if h.Polls() != 1 {
		t.Errorf("polls = %d", h.Polls())
	}
}

func TestAlarmLifecycle(t *testing.T) {
	r := newRig(t)
	h := newHMI(t, r)
	r.mb.SetInput(0, 1020)
	h.PollOnce()
	if alarms := h.ActiveAlarms(); len(alarms) != 0 {
		t.Fatalf("alarms at nominal = %v", alarms)
	}
	// Voltage sags below the low limit.
	r.mb.SetInput(0, 850)
	h.PollOnce()
	if alarms := h.ActiveAlarms(); len(alarms) != 1 || alarms[0] != "DP_volt" {
		t.Fatalf("alarms = %v", alarms)
	}
	// Recovery clears it.
	r.mb.SetInput(0, 1000)
	h.PollOnce()
	if alarms := h.ActiveAlarms(); len(alarms) != 0 {
		t.Fatalf("alarms after recovery = %v", alarms)
	}
	var raised, cleared bool
	for _, e := range h.Events() {
		switch e.Kind {
		case EventAlarmRaised:
			raised = true
		case EventAlarmCleared:
			cleared = true
		}
	}
	if !raised || !cleared {
		t.Errorf("events = %+v", h.Events())
	}
}

func TestOperatorControl(t *testing.T) {
	r := newRig(t)
	h := newHMI(t, r)
	// Coil command to the PLC.
	if err := h.Control("DP_cmd", 1); err != nil {
		t.Fatal(err)
	}
	if !r.mb.Coil(0) {
		t.Error("coil not written")
	}
	// Holding-register setpoint.
	if err := h.Control("DP_sp", 42); err != nil {
		t.Fatal(err)
	}
	if r.mb.Holding(0) != 42 {
		t.Error("register not written")
	}
	// MMS control write to the IED.
	if err := h.Control("DP_oper", 0); err != nil {
		t.Fatal(err)
	}
	if v, _ := r.mmsSrv.Get("LD0/XCBR1.Pos.Oper"); v.Bool {
		t.Error("MMS operate not written")
	}
	// Guard rails.
	if err := h.Control("DP_volt", 1); !errors.Is(err, ErrNotSettable) {
		t.Errorf("read-only control err = %v", err)
	}
	if err := h.Control("ghost", 1); !errors.Is(err, ErrUnknownPoint) {
		t.Errorf("unknown point err = %v", err)
	}
	ops := 0
	for _, e := range h.Events() {
		if e.Kind == EventOperator {
			ops++
		}
	}
	if ops != 3 {
		t.Errorf("operator events = %d", ops)
	}
}

func TestCommFailAndRestore(t *testing.T) {
	r := newRig(t)
	h := newHMI(t, r)
	h.PollOnce()
	if p, _ := h.Point("DP_volt"); p.Quality != QualityGood {
		t.Fatalf("initial quality = %v", p.Quality)
	}
	// PLC dies.
	r.mb.Close()
	h.PollOnce()
	h.PollOnce()
	if p, _ := h.Point("DP_volt"); p.Quality != QualityCommFail {
		t.Errorf("quality after server death = %v", p.Quality)
	}
	var sawFail bool
	for _, e := range h.Events() {
		if e.Kind == EventCommFail {
			sawFail = true
		}
	}
	if !sawFail {
		t.Error("no comm-fail event")
	}
	// MMS source is unaffected.
	if p, _ := h.Point("DP_amps"); p.Quality != QualityGood {
		t.Errorf("MMS point quality = %v", p.Quality)
	}
}

func TestRunLoopPolls(t *testing.T) {
	r := newRig(t)
	h := newHMI(t, r)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h.Run(ctx)
	time.Sleep(150 * time.Millisecond)
	h.Close()
	if h.Polls() < 2 {
		t.Errorf("polls = %d", h.Polls())
	}
}

func TestStatusPanel(t *testing.T) {
	r := newRig(t)
	r.mb.SetInput(0, 850)
	r.mb.SetDiscrete(0, true)
	h := newHMI(t, r)
	h.PollOnce()
	panel := h.StatusPanel()
	for _, want := range []string{"MainVoltage", "** ALARM **", "CB1Status", "ON", "active alarms: 1", "GOOD"} {
		if !strings.Contains(panel, want) {
			t.Errorf("panel missing %q:\n%s", want, panel)
		}
	}
}

func TestStatusPanelDiagnosticsFooter(t *testing.T) {
	r := newRig(t)
	h := newHMI(t, r)
	h.PollOnce()
	if strings.Contains(h.StatusPanel(), "data plane:") {
		t.Fatal("diagnostics shown before a provider is installed")
	}
	h.SetDiagnostics(func() string {
		return "data plane: 42 frames transmitted, 0 dropped, pool hit rate 97%\n"
	})
	panel := h.StatusPanel()
	if !strings.Contains(panel, "data plane: 42 frames transmitted, 0 dropped, pool hit rate 97%") {
		t.Errorf("panel missing diagnostics footer:\n%s", panel)
	}
}

func TestModbusLocatorParsing(t *testing.T) {
	tests := []struct {
		loc   string
		table int
		addr  uint16
		ok    bool
	}{
		{"1", 0, 0, true},
		{"9", 0, 8, true},
		{"10001", 1, 0, true},
		{"10005", 1, 4, true},
		{"30001", 3, 0, true},
		{"30010", 3, 9, true},
		{"40001", 4, 0, true},
		{"0", 0, 0, true},
		{"99999", 0, 0, false},
		{"abc", 0, 0, false},
		{"-1", 0, 0, false},
	}
	for _, tt := range tests {
		table, addr, err := splitModbusLocator(tt.loc)
		if (err == nil) != tt.ok {
			t.Errorf("locator %q err = %v", tt.loc, err)
			continue
		}
		if tt.ok && (table != tt.table || addr != tt.addr) {
			t.Errorf("locator %q = (%d, %d), want (%d, %d)", tt.loc, table, addr, tt.table, tt.addr)
		}
	}
}

func TestNewRejectsOrphanPoints(t *testing.T) {
	imp := &sgmlconf.ScadaImport{
		DataPoints: []sgmlconf.ScadaImportPoint{{XID: "p", DataSourceXID: "ghost"}},
	}
	n := netem.NewNetwork()
	h, _ := netem.NewHost(n, "h", netem.MAC{2}, netem.IPv4{10})
	if _, err := New(h, imp); err == nil {
		t.Error("orphan point accepted")
	}
}
