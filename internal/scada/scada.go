// Package scada implements the SCADA HMI of the cyber range — the SCADABR
// substitute (§III-B).
//
// "A SCADA system offers an user-interface for a human user to monitor the
// system status and trigger manual control on a physical plant. [...] The
// settings on data source (e.g., PLCs) and data points has to be configured
// [...] We have implemented a script to translate the SCADA Config XML into
// a JSON format that SCADABR can import."
//
// The HMI loads exactly that import JSON (sgmlconf.ScadaImport), polls its
// data sources over Modbus and MMS, evaluates alarm limits, keeps an event
// log, accepts operator control actions on settable points, and renders a
// text status panel.
package scada

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/mms"
	"repro/internal/modbus"
	"repro/internal/netem"
	"repro/internal/sgmlconf"
)

// Quality describes the trustworthiness of a point value.
type Quality int

// Point qualities.
const (
	QualityInit Quality = iota
	QualityGood
	QualityCommFail
)

func (q Quality) String() string {
	switch q {
	case QualityGood:
		return "GOOD"
	case QualityCommFail:
		return "COMM_FAIL"
	default:
		return "INIT"
	}
}

// Errors returned by the HMI.
var (
	ErrUnknownPoint = errors.New("scada: unknown data point")
	ErrNotSettable  = errors.New("scada: point not settable")
	ErrNoSource     = errors.New("scada: data source unavailable")
	ErrBadLocator   = errors.New("scada: bad point locator")
)

// EventKind classifies HMI events.
type EventKind string

// Event kinds.
const (
	EventAlarmRaised  EventKind = "alarm-raised"
	EventAlarmCleared EventKind = "alarm-cleared"
	EventCommFail     EventKind = "comm-fail"
	EventCommRestore  EventKind = "comm-restore"
	EventOperator     EventKind = "operator-action"
)

// Event is one HMI log entry.
type Event struct {
	Time   time.Time
	Kind   EventKind
	Point  string
	Detail string
}

// PointState is the current state of one data point.
type PointState struct {
	XID      string
	Name     string
	Value    float64
	Binary   bool
	IsBinary bool
	Quality  Quality
	InAlarm  bool
	Updated  time.Time
}

type source struct {
	cfg      sgmlconf.ScadaImportSource
	mu       sync.Mutex
	mb       *modbus.Client
	mmsC     *mms.Client
	lastFail time.Time
}

// dialBackoff bounds reconnection attempts to a dead source so one failed
// endpoint cannot stall a whole poll round on dial timeouts.
const dialBackoff = 2 * time.Second

type point struct {
	cfg   sgmlconf.ScadaImportPoint
	state PointState
}

// HMI is the SCADA master station.
type HMI struct {
	host *netem.Host

	mu      sync.Mutex
	sources map[string]*source
	points  map[string]*point
	order   []string // point XIDs in import order
	events  []Event
	polls   uint64
	diag    func() string // optional diagnostics footer for StatusPanel
	cancel  context.CancelFunc
	done    chan struct{}
}

// SetDiagnostics installs a provider whose one-line (or multi-line) text is
// appended to StatusPanel — the range wires its data-plane counters here so
// operators see fabric health next to the process values.
func (h *HMI) SetDiagnostics(fn func() string) {
	h.mu.Lock()
	h.diag = fn
	h.mu.Unlock()
}

// New builds an HMI on a host from the import JSON model.
func New(host *netem.Host, imp *sgmlconf.ScadaImport) (*HMI, error) {
	h := &HMI{
		host:    host,
		sources: make(map[string]*source, len(imp.DataSources)),
		points:  make(map[string]*point, len(imp.DataPoints)),
	}
	for _, s := range imp.DataSources {
		h.sources[s.XID] = &source{cfg: s}
	}
	for _, p := range imp.DataPoints {
		if _, ok := h.sources[p.DataSourceXID]; !ok {
			return nil, fmt.Errorf("%w: point %q references %q", ErrNoSource, p.XID, p.DataSourceXID)
		}
		h.points[p.XID] = &point{
			cfg:   p,
			state: PointState{XID: p.XID, Name: p.Name, IsBinary: p.DataType == "BINARY"},
		}
		h.order = append(h.order, p.XID)
	}
	return h, nil
}

// Connect dials every data source. Sources that fail to connect are left in
// comm-fail state and retried on each poll.
func (h *HMI) Connect() {
	h.mu.Lock()
	srcs := make([]*source, 0, len(h.sources))
	for _, s := range h.sources {
		srcs = append(srcs, s)
	}
	h.mu.Unlock()
	for _, s := range srcs {
		h.ensureConnected(s)
	}
}

func (h *HMI) ensureConnected(s *source) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	ip, err := netem.ParseIPv4(s.cfg.IP)
	if err != nil {
		return false
	}
	connected := (s.cfg.Type == "MODBUS_IP" && s.mb != nil) || (s.cfg.Type == "MMS" && s.mmsC != nil)
	if connected {
		return true
	}
	if time.Since(s.lastFail) < dialBackoff {
		return false
	}
	switch s.cfg.Type {
	case "MODBUS_IP":
		cli, err := modbus.DialClient(h.host, ip, uint16(s.cfg.Port), time.Second)
		if err != nil {
			s.lastFail = time.Now()
			return false
		}
		s.mb = cli
	case "MMS":
		cli, err := mms.Dial(h.host, ip, uint16(s.cfg.Port), mms.DialOptions{Vendor: "scadabr-sgml"})
		if err != nil {
			s.lastFail = time.Now()
			return false
		}
		s.mmsC = cli
	default:
		return false
	}
	return true
}

func (h *HMI) dropConnection(s *source) {
	s.mu.Lock()
	if s.mb != nil {
		s.mb.Close()
		s.mb = nil
	}
	if s.mmsC != nil {
		s.mmsC.Close()
		s.mmsC = nil
	}
	s.mu.Unlock()
}

// Close releases all connections and stops polling.
func (h *HMI) Close() {
	h.mu.Lock()
	cancel, done := h.cancel, h.done
	h.cancel = nil
	srcs := make([]*source, 0, len(h.sources))
	for _, s := range h.sources {
		srcs = append(srcs, s)
	}
	h.mu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
	for _, s := range srcs {
		h.dropConnection(s)
	}
}

// Run polls all sources at their configured periods until ctx is cancelled.
func (h *HMI) Run(ctx context.Context) {
	period := time.Second
	h.mu.Lock()
	for _, s := range h.sources {
		if p := time.Duration(s.cfg.UpdatePeriodMS) * time.Millisecond; p > 0 && p < period {
			period = p
		}
	}
	h.mu.Unlock()
	runCtx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	h.mu.Lock()
	h.cancel = cancel
	h.done = done
	h.mu.Unlock()
	go func() {
		defer close(done)
		h.PollOnce() // immediate first poll, then periodic
		ticker := time.NewTicker(period)
		defer ticker.Stop()
		for {
			select {
			case <-runCtx.Done():
				return
			case <-ticker.C:
				h.PollOnce()
			}
		}
	}()
}

// PollOnce reads every data point once.
func (h *HMI) PollOnce() {
	h.mu.Lock()
	order := append([]string(nil), h.order...)
	h.polls++
	h.mu.Unlock()
	for _, xid := range order {
		h.pollPoint(xid)
	}
}

func (h *HMI) pollPoint(xid string) {
	h.mu.Lock()
	pt := h.points[xid]
	src := h.sources[pt.cfg.DataSourceXID]
	h.mu.Unlock()

	value, binary, err := h.readPoint(src, pt)
	h.mu.Lock()
	defer h.mu.Unlock()
	now := time.Now()
	prevQuality := pt.state.Quality
	if err != nil {
		pt.state.Quality = QualityCommFail
		if prevQuality == QualityGood {
			h.logLocked(EventCommFail, xid, err.Error())
		}
		return
	}
	pt.state.Quality = QualityGood
	if prevQuality == QualityCommFail {
		h.logLocked(EventCommRestore, xid, "")
	}
	pt.state.Updated = now
	if pt.state.IsBinary {
		pt.state.Binary = binary
		if binary {
			pt.state.Value = 1
		} else {
			pt.state.Value = 0
		}
		return
	}
	pt.state.Value = value * multiplierOf(pt.cfg)
	// Alarm evaluation.
	if pt.cfg.AlarmEnabled {
		inAlarm := pt.state.Value < pt.cfg.AlarmLowLimit || pt.state.Value > pt.cfg.AlarmHighLimit
		if inAlarm && !pt.state.InAlarm {
			h.logLocked(EventAlarmRaised, xid,
				fmt.Sprintf("value %.4f outside [%.4f, %.4f]", pt.state.Value, pt.cfg.AlarmLowLimit, pt.cfg.AlarmHighLimit))
		}
		if !inAlarm && pt.state.InAlarm {
			h.logLocked(EventAlarmCleared, xid, fmt.Sprintf("value %.4f back in band", pt.state.Value))
		}
		pt.state.InAlarm = inAlarm
	}
}

func multiplierOf(cfg sgmlconf.ScadaImportPoint) float64 {
	if cfg.Multiplier == 0 {
		return 1
	}
	return cfg.Multiplier
}

// readPoint fetches the raw value over the source protocol.
func (h *HMI) readPoint(src *source, pt *point) (float64, bool, error) {
	if !h.ensureConnected(src) {
		return 0, false, fmt.Errorf("%w: %s", ErrNoSource, src.cfg.XID)
	}
	src.mu.Lock()
	mb, mc := src.mb, src.mmsC
	src.mu.Unlock()
	switch {
	case mb != nil:
		table, addr, err := splitModbusLocator(pt.cfg.PointLocator)
		if err != nil {
			return 0, false, err
		}
		switch table {
		case 0: // coil
			bits, err := mb.ReadCoils(addr, 1)
			if err != nil {
				h.dropConnection(src)
				return 0, false, err
			}
			return boolToF(bits[0]), bits[0], nil
		case 1: // discrete input
			bits, err := mb.ReadDiscreteInputs(addr, 1)
			if err != nil {
				h.dropConnection(src)
				return 0, false, err
			}
			return boolToF(bits[0]), bits[0], nil
		case 3: // input register
			regs, err := mb.ReadInput(addr, 1)
			if err != nil {
				h.dropConnection(src)
				return 0, false, err
			}
			return float64(regs[0]), regs[0] != 0, nil
		case 4: // holding register
			regs, err := mb.ReadHolding(addr, 1)
			if err != nil {
				h.dropConnection(src)
				return 0, false, err
			}
			return float64(regs[0]), regs[0] != 0, nil
		}
		return 0, false, fmt.Errorf("%w: table %d", ErrBadLocator, table)
	case mc != nil:
		v, err := mc.Read(mms.ObjectReference(pt.cfg.PointLocator))
		if err != nil {
			if !errors.Is(err, mms.ErrObjectNotFound) {
				h.dropConnection(src)
			}
			return 0, false, err
		}
		switch v.Kind {
		case mms.KindBool:
			return boolToF(v.Bool), v.Bool, nil
		case mms.KindFloat:
			return v.Float, v.Float != 0, nil
		case mms.KindInt:
			return float64(v.Int), v.Int != 0, nil
		case mms.KindUnsigned:
			return float64(v.Uint), v.Uint != 0, nil
		default:
			return 0, false, fmt.Errorf("scada: unsupported MMS kind %v", v.Kind)
		}
	}
	return 0, false, fmt.Errorf("%w: %s", ErrNoSource, src.cfg.XID)
}

func boolToF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// splitModbusLocator parses classic Modbus point addresses: 1-based with a
// table prefix (0xxxx coils, 1xxxx discrete inputs, 3xxxx input registers,
// 4xxxx holding registers). Bare small numbers address coils.
func splitModbusLocator(loc string) (table int, addr uint16, err error) {
	n, err := strconv.Atoi(strings.TrimSpace(loc))
	if err != nil || n < 0 {
		return 0, 0, fmt.Errorf("%w: %q", ErrBadLocator, loc)
	}
	switch {
	case n >= 40001 && n <= 49999:
		return 4, uint16(n - 40001), nil
	case n >= 30001 && n <= 39999:
		return 3, uint16(n - 30001), nil
	case n >= 10001 && n <= 19999:
		return 1, uint16(n - 10001), nil
	case n >= 1 && n <= 9999:
		return 0, uint16(n - 1), nil
	case n == 0:
		return 0, 0, nil
	}
	return 0, 0, fmt.Errorf("%w: %q", ErrBadLocator, loc)
}

// Point returns the state of one point.
func (h *HMI) Point(xid string) (PointState, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	pt, ok := h.points[xid]
	if !ok {
		return PointState{}, fmt.Errorf("%w: %s", ErrUnknownPoint, xid)
	}
	return pt.state, nil
}

// Points returns all point states in import order.
func (h *HMI) Points() []PointState {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]PointState, 0, len(h.order))
	for _, xid := range h.order {
		out = append(out, h.points[xid].state)
	}
	return out
}

// ActiveAlarms returns the XIDs of points currently in alarm, sorted.
func (h *HMI) ActiveAlarms() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []string
	for xid, pt := range h.points {
		if pt.state.InAlarm {
			out = append(out, xid)
		}
	}
	sort.Strings(out)
	return out
}

// Events returns a copy of the event log.
func (h *HMI) Events() []Event {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Event(nil), h.events...)
}

// Polls reports completed poll rounds.
func (h *HMI) Polls() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.polls
}

func (h *HMI) logLocked(kind EventKind, xid, detail string) {
	h.events = append(h.events, Event{Time: time.Now(), Kind: kind, Point: xid, Detail: detail})
}

// Control performs an operator action on a settable point: binary points
// receive coil/boolean writes, numeric points register/value writes.
func (h *HMI) Control(xid string, value float64) error {
	h.mu.Lock()
	pt, ok := h.points[xid]
	if !ok {
		h.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownPoint, xid)
	}
	if !pt.cfg.SettableEnabled {
		h.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotSettable, xid)
	}
	src := h.sources[pt.cfg.DataSourceXID]
	h.mu.Unlock()
	if !h.ensureConnected(src) {
		return fmt.Errorf("%w: %s", ErrNoSource, src.cfg.XID)
	}
	src.mu.Lock()
	mb, mc := src.mb, src.mmsC
	src.mu.Unlock()

	var err error
	switch {
	case mb != nil:
		var table int
		var addr uint16
		table, addr, err = splitModbusLocator(pt.cfg.PointLocator)
		if err == nil {
			switch table {
			case 0:
				err = mb.WriteCoil(addr, value != 0)
			case 4:
				err = mb.WriteRegister(addr, uint16(value))
			default:
				err = fmt.Errorf("%w: table %d not writable", ErrBadLocator, table)
			}
		}
	case mc != nil:
		ref := mms.ObjectReference(pt.cfg.PointLocator)
		if pt.state.IsBinary {
			err = mc.Write(ref, mms.NewBool(value != 0))
		} else {
			err = mc.Write(ref, mms.NewFloat(value))
		}
	default:
		err = fmt.Errorf("%w: %s", ErrNoSource, src.cfg.XID)
	}
	h.mu.Lock()
	h.logLocked(EventOperator, xid, fmt.Sprintf("set %v (err=%v)", value, err))
	h.mu.Unlock()
	return err
}

// StatusPanel renders the operator text view: every point with value,
// quality and alarm flag, plus active alarm summary.
func (h *HMI) StatusPanel() string {
	points := h.Points()
	var sb strings.Builder
	sb.WriteString("=== SCADA HMI STATUS ===\n")
	for _, p := range points {
		alarm := ""
		if p.InAlarm {
			alarm = "  ** ALARM **"
		}
		if p.IsBinary {
			state := "OFF"
			if p.Binary {
				state = "ON"
			}
			fmt.Fprintf(&sb, "%-24s %-6s [%s]%s\n", p.Name, state, p.Quality, alarm)
		} else {
			fmt.Fprintf(&sb, "%-24s %10.4f [%s]%s\n", p.Name, p.Value, p.Quality, alarm)
		}
	}
	alarms := h.ActiveAlarms()
	fmt.Fprintf(&sb, "active alarms: %d\n", len(alarms))
	h.mu.Lock()
	diag := h.diag
	h.mu.Unlock()
	if diag != nil {
		sb.WriteString(diag())
	}
	return sb.String()
}
