// Package attack implements the cyber attack case studies of §IV-B.
//
// "Among a wide range of attack vectors, we focus on false command injection
// and man-in-the-middle attacks. The former can cause direct and immediate
// impact on power grid stability as demonstrated in the 2015 Ukraine
// incident, and the latter is a versatile building block for mounting a wide
// range of attacks, such as false data injection and alarm suppression."
//
// FCI sends standard-compliant MMS commands from a compromised node (the
// IEC61850bean / CrashOverride pattern); MITM uses real ARP cache poisoning
// plus IP forwarding with byte-level payload tampering (Fig 6). Recon
// helpers mirror the "Nmap on a virtual node" usage the paper mentions.
package attack

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/mms"
	"repro/internal/netem"
)

// FCI is the false-command-injection attacker: a plain MMS client on a
// compromised node.
type FCI struct {
	host *netem.Host

	mu       sync.Mutex
	injected uint64
}

// NewFCI creates the attacker on a compromised host.
func NewFCI(host *netem.Host) *FCI { return &FCI{host: host} }

// Enumerate opens an association and lists the victim's object model — the
// reconnaissance step before crafting commands.
func (a *FCI) Enumerate(ip netem.IPv4, port uint16) ([]string, error) {
	cli, err := mms.Dial(a.host, ip, port, mms.DialOptions{Vendor: "iec61850bean"})
	if err != nil {
		return nil, err
	}
	defer cli.Close()
	return cli.GetNameList("")
}

// InjectCommand opens a fresh association and writes a control value — a
// fully standard-compliant MMS exchange, indistinguishable from a legitimate
// master (which is the point of the case study).
func (a *FCI) InjectCommand(ip netem.IPv4, port uint16, ref mms.ObjectReference, v mms.Value) error {
	cli, err := mms.Dial(a.host, ip, port, mms.DialOptions{Vendor: "iec61850bean"})
	if err != nil {
		return err
	}
	defer cli.Close()
	if err := cli.Write(ref, v); err != nil {
		return fmt.Errorf("attack: inject %s: %w", ref, err)
	}
	a.mu.Lock()
	a.injected++
	a.mu.Unlock()
	return nil
}

// Injected reports successful command injections.
func (a *FCI) Injected() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.injected
}

// MITM is the ARP-spoofing man-in-the-middle position between two victims.
type MITM struct {
	host     *netem.Host
	victimA  netem.IPv4
	victimB  netem.IPv4
	macA     netem.MAC
	macB     netem.MAC
	interval time.Duration

	mu        sync.Mutex
	forwarded uint64
	modified  uint64
	dropped   uint64
	tamper    func([]byte) ([]byte, bool) // TCP/UDP payload rewrite
	dropAll   bool
	cancel    context.CancelFunc
	done      chan struct{}
}

// NewMITM prepares a MITM between victims A and B from the attacker host.
func NewMITM(host *netem.Host, victimA, victimB netem.IPv4) *MITM {
	return &MITM{host: host, victimA: victimA, victimB: victimB, interval: 500 * time.Millisecond}
}

// SetInterval changes the ARP re-poisoning period (default 500 ms). Must be
// called before Start; non-positive values are ignored.
func (m *MITM) SetInterval(d time.Duration) {
	if d > 0 {
		m.interval = d
	}
}

// SetPayloadTamper installs a transport-payload rewrite applied to traffic
// crossing the attacker. Returning ok=false drops the packet. The rewrite
// must preserve length (our TCP-lite victims track byte counts).
func (m *MITM) SetPayloadTamper(fn func(payload []byte) ([]byte, bool)) {
	m.mu.Lock()
	m.tamper = fn
	m.mu.Unlock()
}

// SetBlackhole makes the attacker drop intercepted traffic instead of
// forwarding (denial of visibility / alarm suppression building block).
func (m *MITM) SetBlackhole(drop bool) {
	m.mu.Lock()
	m.dropAll = drop
	m.mu.Unlock()
}

// Start resolves the victims' true MACs, begins periodic cache poisoning and
// enables tampering IP forwarding.
func (m *MITM) Start(ctx context.Context) error {
	macA, err := m.host.ResolveARP(m.victimA, 2*time.Second)
	if err != nil {
		return fmt.Errorf("attack: resolve victim A: %w", err)
	}
	macB, err := m.host.ResolveARP(m.victimB, 2*time.Second)
	if err != nil {
		return fmt.Errorf("attack: resolve victim B: %w", err)
	}
	m.mu.Lock()
	m.macA, m.macB = macA, macB
	m.mu.Unlock()

	m.host.SetForwarding(true, m.forward)
	m.poison()

	runCtx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	m.mu.Lock()
	m.cancel = cancel
	m.done = done
	m.mu.Unlock()
	go func() {
		defer close(done)
		ticker := time.NewTicker(m.interval)
		defer ticker.Stop()
		for {
			select {
			case <-runCtx.Done():
				return
			case <-ticker.C:
				m.poison()
			}
		}
	}()
	return nil
}

// Stop halts poisoning, disables forwarding and heals the victims' caches
// with corrective ARP replies carrying the true MACs.
func (m *MITM) Stop() {
	m.mu.Lock()
	cancel, done := m.cancel, m.done
	m.cancel = nil
	macA, macB := m.macA, m.macB
	m.mu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
	m.host.SetForwarding(false, nil)
	// Heal: tell A the truth about B and vice versa.
	m.sendARPReply(m.victimB, macB, m.victimA, macA)
	m.sendARPReply(m.victimA, macA, m.victimB, macB)
}

// poison sends forged ARP replies: "A is at attacker-MAC" to B and
// "B is at attacker-MAC" to A.
func (m *MITM) poison() {
	me := m.host.MAC()
	m.mu.Lock()
	macA, macB := m.macA, m.macB
	m.mu.Unlock()
	m.sendARPReply(m.victimB, me, m.victimA, macA) // to A: B's IP -> attacker MAC
	m.sendARPReply(m.victimA, me, m.victimB, macB) // to B: A's IP -> attacker MAC
}

// sendARPReply emits a unicast ARP reply claiming spoofedIP is at spoofedMAC.
func (m *MITM) sendARPReply(spoofedIP netem.IPv4, spoofedMAC netem.MAC, targetIP netem.IPv4, targetMAC netem.MAC) {
	pkt := netem.ARPPacket{
		Op:        netem.ARPReply,
		SenderMAC: spoofedMAC, SenderIP: spoofedIP,
		TargetMAC: targetMAC, TargetIP: targetIP,
	}
	m.host.SendFrame(netem.Frame{
		Dst: targetMAC, Src: m.host.MAC(), EtherType: netem.EtherTypeARP, Payload: pkt.Marshal(),
	})
}

// forward is the IP-forwarding tamper hook: only traffic between the two
// victims is intercepted; everything else passes untouched.
func (m *MITM) forward(pkt netem.IPPacket) (netem.IPPacket, bool) {
	between := (pkt.Src == m.victimA && pkt.Dst == m.victimB) ||
		(pkt.Src == m.victimB && pkt.Dst == m.victimA)
	if !between {
		return pkt, true
	}
	m.mu.Lock()
	tamper := m.tamper
	drop := m.dropAll
	m.mu.Unlock()
	if drop {
		m.mu.Lock()
		m.dropped++
		m.mu.Unlock()
		return pkt, false
	}
	if tamper != nil {
		if rewritten, ok := m.tamperTransport(pkt, tamper); ok {
			pkt = rewritten
		} else {
			m.mu.Lock()
			m.dropped++
			m.mu.Unlock()
			return pkt, false
		}
	}
	m.mu.Lock()
	m.forwarded++
	m.mu.Unlock()
	return pkt, true
}

// tamperTransport applies the payload rewrite beneath TCP/UDP headers.
func (m *MITM) tamperTransport(pkt netem.IPPacket, fn func([]byte) ([]byte, bool)) (netem.IPPacket, bool) {
	const tcpHeader = 20
	const udpHeader = 8
	var headerLen int
	switch pkt.Protocol {
	case netem.IPProtoTCP:
		if len(pkt.Payload) < tcpHeader {
			return pkt, true
		}
		headerLen = int(pkt.Payload[12]>>4) * 4
		if headerLen < tcpHeader || headerLen > len(pkt.Payload) {
			return pkt, true
		}
	case netem.IPProtoUDP:
		headerLen = udpHeader
		if len(pkt.Payload) < udpHeader {
			return pkt, true
		}
	default:
		return pkt, true
	}
	payload := pkt.Payload[headerLen:]
	if len(payload) == 0 {
		return pkt, true
	}
	rewritten, ok := fn(append([]byte(nil), payload...))
	if !ok {
		return pkt, false
	}
	if len(rewritten) != len(payload) {
		// Length changes would desynchronise TCP sequence space.
		return pkt, true
	}
	changed := false
	for i := range rewritten {
		if rewritten[i] != payload[i] {
			changed = true
			break
		}
	}
	if changed {
		newPayload := append([]byte(nil), pkt.Payload[:headerLen]...)
		newPayload = append(newPayload, rewritten...)
		pkt.Payload = newPayload
		m.mu.Lock()
		m.modified++
		m.mu.Unlock()
	}
	return pkt, true
}

// Stats reports forwarded, modified and dropped packet counts.
func (m *MITM) Stats() (forwarded, modified, dropped uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.forwarded, m.modified, m.dropped
}

// ScaleMMSFloats returns a payload tamper that multiplies every MMS
// double-precision float TLV (tag 0x87, length 9) found in the stream by
// factor — the Fig 6 measurement manipulation. The rewrite is
// length-preserving, so TCP sequencing is unaffected.
func ScaleMMSFloats(factor float64) func([]byte) ([]byte, bool) {
	return func(payload []byte) ([]byte, bool) {
		for i := 0; i+2+9 <= len(payload); i++ {
			if payload[i] == 0x87 && payload[i+1] == 9 && payload[i+2] == 11 {
				bits := binary.BigEndian.Uint64(payload[i+3 : i+11])
				v := math.Float64frombits(bits)
				binary.BigEndian.PutUint64(payload[i+3:i+11], math.Float64bits(v*factor))
				i += 10
			}
		}
		return payload, true
	}
}

// ScanResult is one discovered open port.
type ScanResult struct {
	Port uint16
	Open bool
}

// ScanPorts performs a TCP connect scan against ip (the "penetration testing
// tool like Nmap" usage of §IV-B).
func ScanPorts(h *netem.Host, ip netem.IPv4, ports []uint16) []ScanResult {
	out := make([]ScanResult, 0, len(ports))
	for _, p := range ports {
		conn, err := h.DialTCP(ip, p)
		open := err == nil
		if open {
			_ = conn.Close()
		}
		out = append(out, ScanResult{Port: p, Open: open})
	}
	return out
}

// ARPSweep discovers live hosts in the given last-octet range of a /24.
func ARPSweep(h *netem.Host, base netem.IPv4, from, to byte, perHost time.Duration) []netem.IPv4 {
	var alive []netem.IPv4
	for last := from; last <= to; last++ {
		ip := base
		ip[3] = last
		if ip == h.IP() {
			continue
		}
		if _, err := h.ResolveARP(ip, perHost); err == nil {
			alive = append(alive, ip)
		}
		if last == 255 {
			break
		}
	}
	return alive
}
