package attack

import (
	"context"
	"testing"
	"time"

	"repro/internal/kvbus"
	"repro/internal/mms"
	"repro/internal/netem"
	"repro/internal/sgmlconf"

	iedpkg "repro/internal/ied"
)

// rig: victim IED + victim client host + attacker, all on one switch.
type rig struct {
	net      *netem.Network
	iedHost  *netem.Host
	cliHost  *netem.Host
	attacker *netem.Host
	bus      *kvbus.Bus
	ied      *iedpkg.IED
}

func newRig(t *testing.T) *rig {
	t.Helper()
	n := netem.NewNetwork()
	if _, err := netem.NewSwitch(n, "sw", 4); err != nil {
		t.Fatal(err)
	}
	mk := func(name string, last byte) *netem.Host {
		h, err := netem.NewHost(n, name, netem.MAC{2, 0, 0, 0, 0, last}, netem.IPv4{10, 0, 0, last})
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	iedHost := mk("gied1", 1)
	cliHost := mk("cplc", 2)
	attacker := mk("attacker", 3)
	for i, h := range []*netem.Host{iedHost, cliHost, attacker} {
		if _, err := n.Connect(h.Name(), 0, "sw", i, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)

	bus := kvbus.New()
	bus.SetFloat(kvbus.BusVoltageKey("epic", "BusA"), 1.0)
	bus.SetBool(kvbus.BreakerStatusKey("epic", "CB1"), true)
	entry := &sgmlconf.IEDEntry{
		Name: "GIED1", Substation: "epic",
		Measures: []sgmlconf.Measure{{Point: "busVoltage", Element: "BusA"}},
		Controls: []sgmlconf.Control{{Breaker: "CB1"}},
	}
	d, err := iedpkg.New(iedHost, bus, iedpkg.Config{Name: "GIED1", Substation: "epic", Entry: entry})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Serve(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	d.Step(time.Now())
	return &rig{net: n, iedHost: iedHost, cliHost: cliHost, attacker: attacker, bus: bus, ied: d}
}

func TestFCIEnumerateAndInject(t *testing.T) {
	r := newRig(t)
	fci := NewFCI(r.attacker)
	names, err := fci.Enumerate(r.iedHost.IP(), 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range names {
		if n == "LD0/XCBR1.Pos.Oper" {
			found = true
		}
	}
	if !found {
		t.Fatalf("control object not discovered: %v", names)
	}
	// Inject the breaker-open command (the Ukraine-style FCI).
	if err := fci.InjectCommand(r.iedHost.IP(), 0, "LD0/XCBR1.Pos.Oper", mms.NewBool(false)); err != nil {
		t.Fatal(err)
	}
	if r.bus.GetBool(kvbus.BreakerCmdKey("epic", "CB1"), true) {
		t.Error("breaker command not injected")
	}
	if fci.Injected() != 1 {
		t.Errorf("injected = %d", fci.Injected())
	}
}

func TestMITMInterceptsAndModifies(t *testing.T) {
	r := newRig(t)
	// Victims talk first so their ARP caches have real entries to poison.
	cli, err := mms.Dial(r.cliHost, r.iedHost.IP(), 0, mms.DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := cli.Read(iedpkg.RefVoltage())
	if err != nil {
		t.Fatal(err)
	}
	if v.Float != 1.0 {
		t.Fatalf("baseline voltage = %v", v.Float)
	}
	cli.Close()

	m := NewMITM(r.attacker, r.cliHost.IP(), r.iedHost.IP())
	m.SetPayloadTamper(ScaleMMSFloats(0.5)) // halve every measurement (Fig 6)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := m.Start(ctx); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let poisoning take effect

	// Victim caches must now point at the attacker.
	if got := r.cliHost.ARPCache()[r.iedHost.IP()]; got != r.attacker.MAC() {
		t.Fatalf("client cache not poisoned: %v", got)
	}
	if got := r.iedHost.ARPCache()[r.cliHost.IP()]; got != r.attacker.MAC() {
		t.Fatalf("IED cache not poisoned: %v", got)
	}

	cli2, err := mms.Dial(r.cliHost, r.iedHost.IP(), 0, mms.DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := cli2.Read(iedpkg.RefVoltage())
	if err != nil {
		t.Fatal(err)
	}
	cli2.Close()
	if v2.Float != 0.5 {
		t.Errorf("MITM'd voltage = %v, want 0.5", v2.Float)
	}
	fwd, mod, _ := m.Stats()
	if fwd == 0 || mod == 0 {
		t.Errorf("stats fwd=%d mod=%d", fwd, mod)
	}
	// The victims observed unsolicited ARP replies — IDS footprint.
	if len(r.cliHost.UnsolicitedARPs()) == 0 {
		t.Error("no spoofing footprint on victim")
	}

	// Stop heals the caches; traffic goes direct and unmodified again.
	m.Stop()
	time.Sleep(50 * time.Millisecond)
	if got := r.cliHost.ARPCache()[r.iedHost.IP()]; got != r.iedHost.MAC() {
		t.Errorf("cache not healed: %v", got)
	}
	cli3, err := mms.Dial(r.cliHost, r.iedHost.IP(), 0, mms.DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cli3.Close()
	v3, err := cli3.Read(iedpkg.RefVoltage())
	if err != nil {
		t.Fatal(err)
	}
	if v3.Float != 1.0 {
		t.Errorf("post-heal voltage = %v", v3.Float)
	}
}

func TestMITMBlackhole(t *testing.T) {
	r := newRig(t)
	cli, err := mms.Dial(r.cliHost, r.iedHost.IP(), 0, mms.DialOptions{Timeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Read(iedpkg.RefVoltage()); err != nil {
		t.Fatal(err)
	}

	m := NewMITM(r.attacker, r.cliHost.IP(), r.iedHost.IP())
	m.SetBlackhole(true)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := m.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	time.Sleep(50 * time.Millisecond)
	if _, err := cli.Read(iedpkg.RefVoltage()); err == nil {
		t.Error("read succeeded through blackhole")
	}
	_, _, dropped := m.Stats()
	if dropped == 0 {
		t.Error("no drops recorded")
	}
}

func TestScaleMMSFloatsPreservesLength(t *testing.T) {
	// Build a buffer with one encoded float and surrounding noise.
	var payload []byte
	payload = append(payload, 0x01, 0x02, 0x03)
	payload = append(payload, 0x87, 9, 11, 0x3F, 0xF0, 0, 0, 0, 0, 0, 0) // 1.0
	payload = append(payload, 0xFF)
	fn := ScaleMMSFloats(2.0)
	out, ok := fn(append([]byte(nil), payload...))
	if !ok || len(out) != len(payload) {
		t.Fatalf("len %d -> %d ok=%v", len(payload), len(out), ok)
	}
	// 1.0 * 2 = 2.0 = 0x4000000000000000.
	if out[6] != 0x40 || out[7] != 0x00 {
		t.Errorf("scaled bytes = % x", out[3:14])
	}
	if out[0] != 0x01 || out[len(out)-1] != 0xFF {
		t.Error("noise bytes disturbed")
	}
}

func TestScanPorts(t *testing.T) {
	r := newRig(t)
	results := ScanPorts(r.attacker, r.iedHost.IP(), []uint16{102, 502, 8080})
	byPort := map[uint16]bool{}
	for _, res := range results {
		byPort[res.Port] = res.Open
	}
	if !byPort[102] {
		t.Error("MMS port closed in scan")
	}
	if byPort[502] || byPort[8080] {
		t.Error("phantom open ports")
	}
}

func TestARPSweep(t *testing.T) {
	r := newRig(t)
	alive := ARPSweep(r.attacker, netem.IPv4{10, 0, 0, 0}, 1, 5, 50*time.Millisecond)
	if len(alive) != 2 {
		t.Fatalf("alive = %v, want 2 hosts", alive)
	}
	seen := map[netem.IPv4]bool{}
	for _, ip := range alive {
		seen[ip] = true
	}
	if !seen[r.iedHost.IP()] || !seen[r.cliHost.IP()] {
		t.Errorf("sweep = %v", alive)
	}
}
