package ied

import (
	stdcontext "context"
	"strings"
	"testing"
	"time"

	"repro/internal/goose"
	"repro/internal/kvbus"
	"repro/internal/mms"
	"repro/internal/netem"
	"repro/internal/scl"
	"repro/internal/sgmlconf"
)

func lan(t *testing.T, hosts int) []*netem.Host {
	t.Helper()
	n := netem.NewNetwork()
	if _, err := netem.NewSwitch(n, "sw", hosts+1); err != nil {
		t.Fatal(err)
	}
	out := make([]*netem.Host, hosts)
	for i := range out {
		h, err := netem.NewHost(n, string(rune('a'+i))+"-host",
			netem.MAC{2, 0, 0, 0, 0, byte(i + 1)}, netem.IPv4{10, 0, 0, byte(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.Connect(h.Name(), 0, "sw", i, 0); err != nil {
			t.Fatal(err)
		}
		out[i] = h
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)
	return out
}

// icdWith builds an ICD declaring the given LN classes.
func icdWith(classes ...string) *scl.Document {
	lns := make([]scl.LN, 0, len(classes))
	for i, c := range classes {
		lns = append(lns, scl.LN{LnClass: c, Inst: "1", LnType: c + "_T"})
		_ = i
	}
	return &scl.Document{
		IEDs: []scl.IED{{
			Name: "TEMPLATE",
			AccessPoints: []scl.AccessPoint{{
				Name:   "AP1",
				Server: &scl.Server{LDevices: []scl.LDevice{{Inst: "LD0", LNs: lns}}},
			}},
		}},
	}
}

func baseEntry() *sgmlconf.IEDEntry {
	return &sgmlconf.IEDEntry{
		Name:       "GIED1",
		Substation: "epic",
		Measures: []sgmlconf.Measure{
			{Point: "busVoltage", Element: "BusA"},
			{Point: "lineCurrent", Element: "L1"},
			{Point: "lineP", Element: "L1"},
			{Point: "lineQ", Element: "L1"},
		},
		Controls: []sgmlconf.Control{{Breaker: "CB1"}},
	}
}

func TestMeasurementRefresh(t *testing.T) {
	hosts := lan(t, 2)
	bus := kvbus.New()
	bus.SetFloat(kvbus.BusVoltageKey("epic", "BusA"), 1.02)
	bus.SetFloat(kvbus.LineCurrentKey("epic", "L1"), 0.151)
	bus.SetFloat(kvbus.LinePKey("epic", "L1"), 12.5)
	bus.SetFloat(kvbus.LineQKey("epic", "L1"), 3.3)
	d, err := New(hosts[0], bus, Config{Name: "GIED1", Substation: "epic", Entry: baseEntry()})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Serve(); err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	d.Step(time.Now())

	cli, err := mms.Dial(hosts[1], hosts[0].IP(), 0, mms.DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	v, err := cli.Read(RefVoltage())
	if err != nil {
		t.Fatal(err)
	}
	if v.Float != 1.02 {
		t.Errorf("voltage = %v", v)
	}
	i, _ := cli.Read(RefCurrent())
	if i.Float != 0.151 {
		t.Errorf("current = %v", i)
	}
	p, _ := cli.Read(RefActivePower())
	if p.Float != 12.5 {
		t.Errorf("P = %v", p)
	}
	name, _ := cli.Read("LD0/LLN0.NamPlt")
	if name.Str != "GIED1" {
		t.Errorf("nameplate = %v", name)
	}
}

func TestBreakerControlViaMMS(t *testing.T) {
	hosts := lan(t, 2)
	bus := kvbus.New()
	d, err := New(hosts[0], bus, Config{Name: "GIED1", Substation: "epic", Entry: baseEntry()})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Serve(); err != nil {
		t.Fatal(err)
	}
	defer d.Stop()

	cli, err := mms.Dial(hosts[1], hosts[0].IP(), 0, mms.DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	// This is exactly the FCI attack primitive: a standard-compliant MMS
	// write to the breaker operate object.
	if err := cli.Write(RefBreakerOper(1), mms.NewBool(false)); err != nil {
		t.Fatal(err)
	}
	if bus.GetBool(kvbus.BreakerCmdKey("epic", "CB1"), true) {
		t.Error("breaker open command not written to bus")
	}
	events := d.Events()
	if len(events) == 0 || events[0].Kind != EventControl {
		t.Errorf("events = %+v", events)
	}
	// Non-bool write rejected.
	if err := cli.Write(RefBreakerOper(1), mms.NewInt(0)); err == nil {
		t.Error("non-bool operate accepted")
	}
}

func protEntry(mutate func(*sgmlconf.IEDEntry)) *sgmlconf.IEDEntry {
	e := baseEntry()
	mutate(e)
	return e
}

func TestPTOCTripsAfterDelay(t *testing.T) {
	hosts := lan(t, 1)
	bus := kvbus.New()
	entry := protEntry(func(e *sgmlconf.IEDEntry) {
		e.Protection.PTOC = &sgmlconf.PTOCConf{ThresholdKA: 0.4, DelayMS: 100, Line: "L1"}
	})
	d, err := New(hosts[0], bus, Config{Name: "GIED1", Substation: "epic", Entry: entry, ICD: icdWith("PTOC")})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()

	base := time.Unix(0, 0)
	bus.SetFloat(kvbus.LineCurrentKey("epic", "L1"), 0.3) // below threshold
	d.Step(base)
	if d.TripCount() != 0 {
		t.Fatal("tripped below threshold")
	}
	bus.SetFloat(kvbus.LineCurrentKey("epic", "L1"), 0.9) // fault current
	d.Step(base.Add(100 * time.Millisecond))              // arms
	if d.TripCount() != 0 {
		t.Fatal("tripped before delay elapsed")
	}
	d.Step(base.Add(250 * time.Millisecond)) // 150ms armed > 100ms delay
	if d.TripCount() != 1 {
		t.Fatalf("trips = %d, want 1", d.TripCount())
	}
	if bus.GetBool(kvbus.BreakerCmdKey("epic", "CB1"), true) {
		t.Error("trip did not open breaker")
	}
	if v, _ := d.Server().Get(RefProtTrip("PTOC")); !v.Bool {
		t.Error("PTOC.Op.general not raised")
	}
	// Condition clears: trip status resets, no re-trip.
	bus.SetFloat(kvbus.LineCurrentKey("epic", "L1"), 0.0)
	d.Step(base.Add(400 * time.Millisecond))
	if v, _ := d.Server().Get(RefProtTrip("PTOC")); v.Bool {
		t.Error("PTOC status not reset after clear")
	}
	if d.TripCount() != 1 {
		t.Errorf("extra trips: %d", d.TripCount())
	}
}

func TestPTOVAndPTUV(t *testing.T) {
	hosts := lan(t, 1)
	bus := kvbus.New()
	entry := protEntry(func(e *sgmlconf.IEDEntry) {
		e.Protection.PTOV = &sgmlconf.PTOVConf{ThresholdPU: 1.10, DelayMS: 0, Bus: "BusA"}
		e.Protection.PTUV = &sgmlconf.PTUVConf{ThresholdPU: 0.90, DelayMS: 0, Bus: "BusA"}
	})
	d, err := New(hosts[0], bus, Config{Name: "GIED1", Substation: "epic", Entry: entry, ICD: icdWith("PTOV", "PTUV")})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	base := time.Unix(0, 0)

	bus.SetFloat(kvbus.BusVoltageKey("epic", "BusA"), 1.0)
	d.Step(base)
	if d.TripCount() != 0 {
		t.Fatal("tripped at nominal voltage")
	}
	// Over-voltage.
	bus.SetFloat(kvbus.BusVoltageKey("epic", "BusA"), 1.15)
	d.Step(base.Add(time.Second))
	if d.TripCount() != 1 {
		t.Fatalf("PTOV trips = %d", d.TripCount())
	}
	// Recover, then under-voltage.
	bus.SetFloat(kvbus.BusVoltageKey("epic", "BusA"), 1.0)
	d.Step(base.Add(2 * time.Second))
	bus.SetFloat(kvbus.BusVoltageKey("epic", "BusA"), 0.85)
	d.Step(base.Add(3 * time.Second))
	if d.TripCount() != 2 {
		t.Fatalf("PTUV trips = %d total", d.TripCount())
	}
	// Dead bus must NOT trip PTUV.
	bus.SetFloat(kvbus.BusVoltageKey("epic", "BusA"), 1.0)
	d.Step(base.Add(4 * time.Second))
	bus.SetFloat(kvbus.BusVoltageKey("epic", "BusA"), 0.0)
	d.Step(base.Add(5 * time.Second))
	if d.TripCount() != 2 {
		t.Errorf("dead bus tripped PTUV: %d", d.TripCount())
	}
}

func TestICDGatesProtection(t *testing.T) {
	hosts := lan(t, 1)
	bus := kvbus.New()
	entry := protEntry(func(e *sgmlconf.IEDEntry) {
		e.Protection.PTOC = &sgmlconf.PTOCConf{ThresholdKA: 0.4, DelayMS: 0, Line: "L1"}
	})
	// ICD declares only MMXU: PTOC must stay disabled despite config.
	d, err := New(hosts[0], bus, Config{Name: "GIED1", Substation: "epic", Entry: entry, ICD: icdWith("MMXU")})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	bus.SetFloat(kvbus.LineCurrentKey("epic", "L1"), 9.9)
	d.Step(time.Unix(0, 0))
	d.Step(time.Unix(10, 0))
	if d.TripCount() != 0 {
		t.Error("ICD-disabled PTOC tripped")
	}
	if _, ok := d.Server().Get(RefProtTrip("PTOC")); ok {
		t.Error("PTOC object defined despite ICD gating")
	}
}

func TestGOOSEStatusPublication(t *testing.T) {
	hosts := lan(t, 2)
	bus := kvbus.New()
	d, err := New(hosts[0], bus, Config{
		Name: "GIED1", Substation: "epic", Entry: baseEntry(), GooseAppID: 0x0101,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	sub := goose.Subscribe(hosts[1], 0x0101)

	bus.SetBool(kvbus.BreakerStatusKey("epic", "CB1"), true)
	d.Step(time.Now()) // first observation publishes
	select {
	case u := <-sub.Updates():
		if len(u.Message.Values) != 1 || !u.Message.Values[0].Bool {
			t.Errorf("status values = %v", u.Message.Values)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no GOOSE on first status")
	}
	bus.SetBool(kvbus.BreakerStatusKey("epic", "CB1"), false)
	d.Step(time.Now())
	deadline := time.After(2 * time.Second)
	for {
		select {
		case u := <-sub.Updates():
			if u.NewState && !u.Message.Values[0].Bool {
				return // observed the open
			}
		case <-deadline:
			t.Fatal("no GOOSE on status change")
		}
	}
}

func TestCILOInterlock(t *testing.T) {
	hosts := lan(t, 3)
	bus := kvbus.New()
	// Guard IED publishes its breaker status on AppID 0x201.
	guardEntry := &sgmlconf.IEDEntry{
		Name: "GUARD", Substation: "epic",
		Controls: []sgmlconf.Control{{Breaker: "CB0"}},
	}
	guard, err := New(hosts[0], bus, Config{
		Name: "GUARD", Substation: "epic", Entry: guardEntry, GooseAppID: 0x0201,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer guard.Stop()

	entry := protEntry(func(e *sgmlconf.IEDEntry) {
		e.Protection.CILO = &sgmlconf.CILOConf{GuardBreaker: "CB0", GuardIED: "GUARD"}
	})
	d, err := New(hosts[1], bus, Config{
		Name: "GIED1", Substation: "epic", Entry: entry, ICD: icdWith("CILO"),
		GuardAppID: 0x0201,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Serve(); err != nil {
		t.Fatal(err)
	}
	defer d.Stop()

	cli, err := mms.Dial(hosts[2], hosts[1].IP(), 0, mms.DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// No guard status yet: close denied.
	if err := cli.Write(RefBreakerOper(1), mms.NewBool(true)); err == nil {
		t.Error("close allowed without guard status")
	}
	// Guard breaker open: still denied.
	bus.SetBool(kvbus.BreakerStatusKey("epic", "CB0"), false)
	guard.Step(time.Now())
	time.Sleep(30 * time.Millisecond)
	d.Step(time.Now())
	if err := cli.Write(RefBreakerOper(1), mms.NewBool(true)); err == nil {
		t.Error("close allowed with guard open")
	}
	// Opening is never interlocked.
	if err := cli.Write(RefBreakerOper(1), mms.NewBool(false)); err != nil {
		t.Errorf("open denied: %v", err)
	}
	// Guard closes: close now allowed.
	bus.SetBool(kvbus.BreakerStatusKey("epic", "CB0"), true)
	guard.Step(time.Now())
	time.Sleep(30 * time.Millisecond)
	d.Step(time.Now())
	if err := cli.Write(RefBreakerOper(1), mms.NewBool(true)); err != nil {
		t.Errorf("close denied with guard closed: %v", err)
	}
	denies := 0
	for _, e := range d.Events() {
		if e.Kind == EventInterlockDeny {
			denies++
			if !strings.Contains(e.Detail, "CB0") {
				t.Errorf("deny detail %q", e.Detail)
			}
		}
	}
	if denies != 2 {
		t.Errorf("interlock denies = %d, want 2", denies)
	}
}

func TestPDIFDifferentialTrip(t *testing.T) {
	hosts := lan(t, 2)
	busA := kvbus.New() // substation A
	busB := kvbus.New() // substation B

	entryA := &sgmlconf.IEDEntry{
		Name: "GWA", Substation: "subA",
		Controls: []sgmlconf.Control{{Breaker: "CBA"}},
		Protection: sgmlconf.Protection{
			PDIF: &sgmlconf.PDIFConf{ThresholdKA: 0.05, DelayMS: 0, Line: "Tie", RemoteIED: "GWB"},
		},
	}
	entryB := &sgmlconf.IEDEntry{
		Name: "GWB", Substation: "subB",
		Controls: []sgmlconf.Control{{Breaker: "CBB"}},
		Protection: sgmlconf.Protection{
			PDIF: &sgmlconf.PDIFConf{ThresholdKA: 0.05, DelayMS: 0, Line: "Tie", RemoteIED: "GWA"},
		},
	}
	a, err := New(hosts[0], busA, Config{
		Name: "GWA", Substation: "subA", Entry: entryA, ICD: icdWith("PDIF"),
		RSVAppID: 0x4100, RSVPeers: []netem.IPv4{hosts[1].IP()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Serve(); err != nil {
		t.Fatal(err)
	}
	defer a.Stop()
	b, err := New(hosts[1], busB, Config{
		Name: "GWB", Substation: "subB", Entry: entryB, ICD: icdWith("PDIF"),
		RSVAppID: 0x4100, RSVPeers: []netem.IPv4{hosts[0].IP()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Serve(); err != nil {
		t.Fatal(err)
	}
	defer b.Stop()

	base := time.Now()
	// Healthy line: equal currents both ends.
	busA.SetFloat(kvbus.LineCurrentKey("subA", "Tie"), 0.350)
	busB.SetFloat(kvbus.LineCurrentKey("subB", "Tie"), 0.350)
	for i := 0; i < 3; i++ {
		a.Step(base.Add(time.Duration(i) * 100 * time.Millisecond))
		b.Step(base.Add(time.Duration(i) * 100 * time.Millisecond))
		time.Sleep(20 * time.Millisecond)
	}
	if a.TripCount() != 0 || b.TripCount() != 0 {
		t.Fatalf("healthy line tripped: a=%d b=%d", a.TripCount(), b.TripCount())
	}
	// Internal fault: currents diverge.
	busA.SetFloat(kvbus.LineCurrentKey("subA", "Tie"), 0.900)
	for i := 3; i < 6; i++ {
		a.Step(base.Add(time.Duration(i) * 100 * time.Millisecond))
		b.Step(base.Add(time.Duration(i) * 100 * time.Millisecond))
		time.Sleep(20 * time.Millisecond)
	}
	if a.TripCount() == 0 {
		t.Error("A-side PDIF did not trip on differential")
	}
	if b.TripCount() == 0 {
		t.Error("B-side PDIF did not trip on differential")
	}
	if busA.GetBool(kvbus.BreakerCmdKey("subA", "CBA"), true) {
		t.Error("A breaker not opened")
	}
}

func TestRunLoop(t *testing.T) {
	hosts := lan(t, 1)
	bus := kvbus.New()
	d, err := New(hosts[0], bus, Config{
		Name: "GIED1", Substation: "epic", Entry: baseEntry(), Period: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := stdcontext.WithCancel(stdcontext.Background())
	defer cancel()
	d.Run(ctx)
	time.Sleep(50 * time.Millisecond)
	d.Stop()
	if d.Steps() < 3 {
		t.Errorf("steps = %d", d.Steps())
	}
}
