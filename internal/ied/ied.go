// Package ied implements the virtual IED of the cyber range (§III-B).
//
// "A virtual IED implements communication using IEC 61850 protocols,
// including MMS, GOOSE, R-GOOSE and R-SV. [...] Virtual IEDs also implement
// popular protection functions (Table II). Each virtual IED is instantiated
// by an IEC 61850 ICD file by enabling features defined in it [...] actual
// thresholds come from IED Config XML. Virtual IEDs are connected to the
// power system simulator through [a key-value cache]."
//
// An IED is a netem host running an MMS server (measurements + breaker
// control), a GOOSE publisher (status/trip events), optional GOOSE
// subscription (CILO interlock guard), optional R-SV publish/subscribe
// (PDIF differential exchange), and a periodic protection evaluation loop
// coupled to the simulator through the kv bus.
package ied

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/goose"
	"repro/internal/kvbus"
	"repro/internal/mms"
	"repro/internal/netem"
	"repro/internal/scl"
	"repro/internal/sgmlconf"
	"repro/internal/sv"
)

// Object reference naming used by the virtual IED data model. The paper's
// IED Config XML exists precisely because this mapping (data name ↔ power
// element) is not in the ICD.
const (
	ldInst = "LD0"
)

// RefVoltage is the measured bus voltage object (pu).
func RefVoltage() mms.ObjectReference { return ldInst + "/MMXU1.PhV.phsA" }

// RefCurrent is the measured line current object (kA).
func RefCurrent() mms.ObjectReference { return ldInst + "/MMXU1.A.phsA" }

// RefActivePower is the measured line active power object (MW).
func RefActivePower() mms.ObjectReference { return ldInst + "/MMXU1.TotW" }

// RefReactivePower is the measured line reactive power object (MVAr).
func RefReactivePower() mms.ObjectReference { return ldInst + "/MMXU1.TotVAr" }

// RefBreakerStatus is the breaker position status for breaker i (1-based).
func RefBreakerStatus(i int) mms.ObjectReference {
	return mms.ObjectReference(fmt.Sprintf("%s/XCBR%d.Pos.stVal", ldInst, i))
}

// RefBreakerOper is the breaker operate (control) object for breaker i.
func RefBreakerOper(i int) mms.ObjectReference {
	return mms.ObjectReference(fmt.Sprintf("%s/XCBR%d.Pos.Oper", ldInst, i))
}

// RefProtTrip is the protection operate status for function class fn.
func RefProtTrip(fn string) mms.ObjectReference {
	return mms.ObjectReference(ldInst + "/" + fn + "1.Op.general")
}

// EventKind classifies IED log events.
type EventKind string

// Event kinds.
const (
	EventTrip          EventKind = "trip"
	EventControl       EventKind = "control"
	EventInterlockDeny EventKind = "interlock-deny"
	EventStatusChange  EventKind = "status-change"
)

// Event is one protection/control log entry.
type Event struct {
	Time   time.Time
	Kind   EventKind
	Func   string // protection class or "MMS"
	Detail string
}

// Config assembles a virtual IED.
type Config struct {
	Name       string
	Substation string
	// ICD gates which functions may be enabled (HasLNClass per §III-B);
	// nil enables everything the entry configures.
	ICD *scl.Document
	// Entry supplies thresholds and the cyber-physical mapping.
	Entry *sgmlconf.IEDEntry
	// GooseAppID is the IED's status publication group (0 disables GOOSE).
	GooseAppID uint16
	// GuardAppID is the GOOSE group of the CILO guard IED.
	GuardAppID uint16
	// RSVAppID is the differential-exchange group (0 disables R-SV).
	RSVAppID uint16
	// RSVPeers are the gateway addresses receiving our R-SV stream.
	RSVPeers []netem.IPv4
	// MMSPort defaults to 102.
	MMSPort uint16
	// Period is the protection evaluation interval; default 100 ms.
	Period time.Duration
}

type protState struct {
	armedSince time.Time
	armed      bool
	tripped    bool
}

// IED is a running virtual IED.
type IED struct {
	cfg  Config
	host *netem.Host
	bus  *kvbus.Bus
	srv  *mms.Server

	gpub *goose.Publisher
	gsub *goose.Subscriber
	rpub *sv.RPublisher
	rsub *sv.RSubscriber

	mu                     sync.Mutex
	breakers               []string // controlled breaker element names
	lastStatus             map[string]bool
	guardClosed            bool
	guardFresh             bool
	remoteIKA              float64
	remoteAt               time.Time
	ptoc, ptov, ptuv, pdif protState
	events                 []Event
	steps                  uint64
	cancel                 context.CancelFunc
	done                   chan struct{}
}

// enabled reports whether a protection class is both configured and declared
// in the ICD (the paper enables functions from the ICD's logical nodes).
func (d *IED) enabled(class string) bool {
	if d.cfg.Entry == nil {
		return false
	}
	p := d.cfg.Entry.Protection
	var configured bool
	switch class {
	case "PTOC":
		configured = p.PTOC != nil
	case "PTOV":
		configured = p.PTOV != nil
	case "PTUV":
		configured = p.PTUV != nil
	case "PDIF":
		configured = p.PDIF != nil
	case "CILO":
		configured = p.CILO != nil
	}
	if !configured {
		return false
	}
	if d.cfg.ICD == nil || len(d.cfg.ICD.IEDs) == 0 {
		return true
	}
	return d.cfg.ICD.IEDs[0].HasLNClass(class)
}

// New builds the IED on a host coupled to the kv bus.
func New(host *netem.Host, bus *kvbus.Bus, cfg Config) (*IED, error) {
	if cfg.Period <= 0 {
		cfg.Period = 100 * time.Millisecond
	}
	d := &IED{
		cfg:        cfg,
		host:       host,
		bus:        bus,
		srv:        mms.NewServer("SG-ML", "vIED "+cfg.Name),
		lastStatus: make(map[string]bool),
	}
	if cfg.Entry != nil {
		for _, c := range cfg.Entry.Controls {
			d.breakers = append(d.breakers, c.Breaker)
		}
	}
	// Data model: measurements, protection status, breaker status + control.
	d.srv.DefineReadOnly(ldInst+"/LLN0.NamPlt", mms.NewString(cfg.Name))
	d.srv.Define(RefVoltage(), mms.NewFloat(0))
	d.srv.Define(RefCurrent(), mms.NewFloat(0))
	d.srv.Define(RefActivePower(), mms.NewFloat(0))
	d.srv.Define(RefReactivePower(), mms.NewFloat(0))
	for _, fn := range []string{"PTOC", "PTOV", "PTUV", "PDIF"} {
		if d.enabled(fn) {
			d.srv.Define(RefProtTrip(fn), mms.NewBool(false))
		}
	}
	for i, cb := range d.breakers {
		num := i + 1
		cbName := cb
		d.srv.Define(RefBreakerStatus(num), mms.NewBool(true))
		d.srv.OnWrite(RefBreakerOper(num), mms.NewBool(true), func(_ mms.ObjectReference, v mms.Value) error {
			if v.Kind != mms.KindBool {
				return fmt.Errorf("ied: breaker operate expects boolean")
			}
			return d.operateBreaker(cbName, v.Bool)
		})
	}
	if cfg.GooseAppID != 0 {
		d.gpub = goose.NewPublisher(host, goose.PublisherConfig{
			GocbRef: cfg.Name + ldInst + "/LLN0$GO$gcb1",
			DatSet:  cfg.Name + ldInst + "/LLN0$Status",
			GoID:    cfg.Name + "-status",
			AppID:   cfg.GooseAppID,
			ConfRev: 1,
		})
	}
	if d.enabled("CILO") && cfg.GuardAppID != 0 {
		d.gsub = goose.Subscribe(host, cfg.GuardAppID)
	}
	return d, nil
}

// Serve starts the MMS server (and R-SV when configured).
func (d *IED) Serve() error {
	if err := d.srv.Serve(d.host, d.cfg.MMSPort); err != nil {
		return err
	}
	if d.cfg.RSVAppID != 0 {
		if d.enabled("PDIF") {
			rsub, err := sv.SubscribeR(d.host, d.cfg.RSVAppID)
			if err != nil {
				return err
			}
			d.rsub = rsub
		}
		if len(d.cfg.RSVPeers) > 0 {
			rpub, err := sv.NewRPublisher(d.host, sv.PublisherConfig{
				SvID:  d.cfg.Name,
				AppID: d.cfg.RSVAppID,
			}, d.cfg.RSVPeers, d.localCurrent)
			if err != nil {
				return err
			}
			d.rpub = rpub
		}
	}
	return nil
}

// Run evaluates protection periodically until ctx is cancelled.
func (d *IED) Run(ctx context.Context) {
	runCtx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	d.mu.Lock()
	d.cancel = cancel
	d.done = done
	d.mu.Unlock()
	go func() {
		defer close(done)
		ticker := time.NewTicker(d.cfg.Period)
		defer ticker.Stop()
		for {
			select {
			case <-runCtx.Done():
				return
			case <-ticker.C:
				d.Step(time.Now())
			}
		}
	}()
}

// Stop halts the loop and servers.
func (d *IED) Stop() {
	d.mu.Lock()
	cancel, done := d.cancel, d.done
	d.cancel = nil
	d.mu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
	if d.gpub != nil {
		d.gpub.Stop()
	}
	if d.rpub != nil {
		d.rpub.Stop()
	}
	if d.rsub != nil {
		d.rsub.Close()
	}
	d.srv.Close()
}

// Server exposes the MMS server (the range's SCADA/PLC dials it).
func (d *IED) Server() *mms.Server { return d.srv }

// GooseDropped reports updates the IED's GOOSE subscription lost to a full
// delivery channel (0 when the IED subscribes to nothing).
func (d *IED) GooseDropped() uint64 {
	if d.gsub == nil {
		return 0
	}
	return d.gsub.Dropped()
}

// Events returns a copy of the event log.
func (d *IED) Events() []Event {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Event(nil), d.events...)
}

// Steps reports protection evaluations performed.
func (d *IED) Steps() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.steps
}

func (d *IED) logEvent(kind EventKind, fn, detail string) {
	d.mu.Lock()
	d.events = append(d.events, Event{Time: time.Now(), Kind: kind, Func: fn, Detail: detail})
	d.mu.Unlock()
}

// localCurrent feeds the R-SV publisher with the monitored line current.
func (d *IED) localCurrent() []float64 {
	if d.cfg.Entry == nil || d.cfg.Entry.Protection.PDIF == nil {
		return []float64{0}
	}
	line := d.cfg.Entry.Protection.PDIF.Line
	return []float64{d.bus.GetFloat(kvbus.LineCurrentKey(d.cfg.Substation, line), 0)}
}

// operateBreaker handles an MMS control write (true = close, false = open).
// A close command is subject to CILO interlocking when configured.
func (d *IED) operateBreaker(breaker string, closeIt bool) error {
	if closeIt && d.enabled("CILO") {
		d.mu.Lock()
		guardOK := d.guardClosed && d.guardFresh
		d.mu.Unlock()
		if !guardOK {
			d.logEvent(EventInterlockDeny, "CILO",
				fmt.Sprintf("close of %s denied: guard breaker %s open or unknown", breaker, d.cfg.Entry.Protection.CILO.GuardBreaker))
			return fmt.Errorf("ied: interlock denies close of %s", breaker)
		}
	}
	d.bus.SetBool(kvbus.BreakerCmdKey(d.cfg.Substation, breaker), closeIt)
	d.logEvent(EventControl, "MMS", fmt.Sprintf("breaker %s command close=%t", breaker, closeIt))
	return nil
}

// Step performs one acquisition + protection pass at the given instant,
// writing actuation commands directly to the bus.
func (d *IED) Step(now time.Time) { d.StepTx(now, d.bus) }

// StepTx is Step with the bus writes routed through w. The parallel step
// engine passes a kvbus.Tx so trip commands from concurrently-stepped IEDs
// can be committed in a deterministic order afterwards. Bus reads and MMS
// model updates are confined to this IED and need no deferral; GOOSE/R-SV
// publications are emitted immediately, but peers consume them through
// asynchronous per-device delivery whose arrival timing is scheduler- and
// wall-clock-dependent under sequential stepping too, so deferring them
// would buy no additional determinism. Two IEDs may be stepped
// concurrently; a single IED must not.
func (d *IED) StepTx(now time.Time, w kvbus.Writer) {
	d.mu.Lock()
	d.steps++
	d.mu.Unlock()

	d.drainSubscriptions(now)
	vm, ika := d.refreshMeasurements()
	d.refreshBreakerStatus()
	d.evaluateProtection(now, vm, ika, w)
	if d.rpub != nil {
		d.rpub.PublishNow()
	}
}

// drainSubscriptions consumes pending GOOSE (guard status) and R-SV (remote
// current) messages without blocking.
func (d *IED) drainSubscriptions(now time.Time) {
	if d.gsub != nil {
		for {
			select {
			case u := <-d.gsub.Updates():
				if len(u.Message.Values) >= 1 && u.Message.Values[0].Kind == mms.KindBool {
					d.mu.Lock()
					d.guardClosed = u.Message.Values[0].Bool
					d.guardFresh = true
					d.mu.Unlock()
				}
			default:
				goto goose_done
			}
		}
	}
goose_done:
	if d.rsub != nil {
		for {
			select {
			case s := <-d.rsub.Samples():
				if len(s.Values) >= 1 && s.SvID != d.cfg.Name {
					d.mu.Lock()
					d.remoteIKA = s.Values[0]
					d.remoteAt = now
					d.mu.Unlock()
				}
			default:
				return
			}
		}
	}
}

// refreshMeasurements pulls simulator values from the bus into the MMS model.
func (d *IED) refreshMeasurements() (vmPU, iKA float64) {
	if d.cfg.Entry == nil {
		return 0, 0
	}
	for _, m := range d.cfg.Entry.Measures {
		switch m.Point {
		case "busVoltage":
			vmPU = d.bus.GetFloat(kvbus.BusVoltageKey(d.cfg.Substation, m.Element), 0)
			d.srv.Update(RefVoltage(), mms.NewFloat(vmPU))
		case "lineCurrent":
			iKA = d.bus.GetFloat(kvbus.LineCurrentKey(d.cfg.Substation, m.Element), 0)
			d.srv.Update(RefCurrent(), mms.NewFloat(iKA))
		case "lineP":
			p := d.bus.GetFloat(kvbus.LinePKey(d.cfg.Substation, m.Element), 0)
			d.srv.Update(RefActivePower(), mms.NewFloat(p))
		case "lineQ":
			q := d.bus.GetFloat(kvbus.LineQKey(d.cfg.Substation, m.Element), 0)
			d.srv.Update(RefReactivePower(), mms.NewFloat(q))
		}
	}
	return vmPU, iKA
}

// refreshBreakerStatus mirrors simulator breaker states into the data model
// and publishes GOOSE on change.
func (d *IED) refreshBreakerStatus() {
	changed := false
	var statuses []mms.Value
	for i, cb := range d.breakers {
		closed := d.bus.GetBool(kvbus.BreakerStatusKey(d.cfg.Substation, cb), true)
		d.srv.Update(RefBreakerStatus(i+1), mms.NewBool(closed))
		d.mu.Lock()
		if last, seen := d.lastStatus[cb]; !seen || last != closed {
			d.lastStatus[cb] = closed
			changed = true
		}
		d.mu.Unlock()
		statuses = append(statuses, mms.NewBool(closed))
	}
	if changed {
		for _, cb := range d.breakers {
			d.logEvent(EventStatusChange, "XCBR", fmt.Sprintf("breaker %s closed=%t", cb, d.lastStatusOf(cb)))
		}
		if d.gpub != nil {
			d.gpub.Publish(statuses...)
		}
	}
}

func (d *IED) lastStatusOf(cb string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lastStatus[cb]
}

// evaluateProtection applies the Table II functions with their IED Config
// XML thresholds and time delays.
func (d *IED) evaluateProtection(now time.Time, vmPU, iKA float64, w kvbus.Writer) {
	p := d.cfg.Entry
	if p == nil {
		return
	}
	if d.enabled("PTOC") {
		c := p.Protection.PTOC
		i := iKA
		if c.Line != "" {
			i = d.bus.GetFloat(kvbus.LineCurrentKey(d.cfg.Substation, c.Line), iKA)
		}
		d.applyFunction(now, w, "PTOC", &d.ptoc, i > c.ThresholdKA,
			time.Duration(c.DelayMS)*time.Millisecond,
			fmt.Sprintf("current %.3f kA > %.3f kA", i, c.ThresholdKA))
	}
	if d.enabled("PTOV") {
		c := p.Protection.PTOV
		v := vmPU
		if c.Bus != "" {
			v = d.bus.GetFloat(kvbus.BusVoltageKey(d.cfg.Substation, c.Bus), vmPU)
		}
		d.applyFunction(now, w, "PTOV", &d.ptov, v > c.ThresholdPU,
			time.Duration(c.DelayMS)*time.Millisecond,
			fmt.Sprintf("voltage %.4f pu > %.4f pu", v, c.ThresholdPU))
	}
	if d.enabled("PTUV") {
		c := p.Protection.PTUV
		v := vmPU
		if c.Bus != "" {
			v = d.bus.GetFloat(kvbus.BusVoltageKey(d.cfg.Substation, c.Bus), vmPU)
		}
		// A de-energised bus (≈0 pu) is not an under-voltage condition —
		// the breaker is already open; re-tripping would mask restoration.
		d.applyFunction(now, w, "PTUV", &d.ptuv, v > 0.05 && v < c.ThresholdPU,
			time.Duration(c.DelayMS)*time.Millisecond,
			fmt.Sprintf("voltage %.4f pu < %.4f pu", v, c.ThresholdPU))
	}
	if d.enabled("PDIF") && d.rsub != nil {
		c := p.Protection.PDIF
		local := d.bus.GetFloat(kvbus.LineCurrentKey(d.cfg.Substation, c.Line), 0)
		d.mu.Lock()
		remote, at := d.remoteIKA, d.remoteAt
		d.mu.Unlock()
		fresh := !at.IsZero() && now.Sub(at) < time.Second
		diff := local - remote
		if diff < 0 {
			diff = -diff
		}
		d.applyFunction(now, w, "PDIF", &d.pdif, fresh && diff > c.ThresholdKA,
			time.Duration(c.DelayMS)*time.Millisecond,
			fmt.Sprintf("differential %.3f kA > %.3f kA (local %.3f, remote %.3f)", diff, c.ThresholdKA, local, remote))
	}
}

// applyFunction implements the pickup/delay/trip state machine shared by all
// threshold protections.
func (d *IED) applyFunction(now time.Time, w kvbus.Writer, fn string, ps *protState, violated bool, delay time.Duration, detail string) {
	d.mu.Lock()
	if !violated {
		ps.armed = false
		if ps.tripped {
			ps.tripped = false
			d.srv.Update(RefProtTrip(fn), mms.NewBool(false))
		}
		d.mu.Unlock()
		return
	}
	if !ps.armed {
		ps.armed = true
		ps.armedSince = now
	}
	shouldTrip := !ps.tripped && now.Sub(ps.armedSince) >= delay
	if shouldTrip {
		ps.tripped = true
	}
	d.mu.Unlock()
	if shouldTrip {
		d.trip(w, fn, detail)
	}
}

// trip opens every controlled breaker, raises the protection status and
// publishes a GOOSE trip event.
func (d *IED) trip(w kvbus.Writer, fn, detail string) {
	d.srv.Update(RefProtTrip(fn), mms.NewBool(true))
	for _, cb := range d.breakers {
		w.SetBool(kvbus.BreakerCmdKey(d.cfg.Substation, cb), false)
	}
	d.logEvent(EventTrip, fn, detail)
	d.srv.Report(RefProtTrip(fn), mms.NewBool(true))
	if d.gpub != nil {
		vals := []mms.Value{mms.NewBool(false), mms.NewString(fn + " trip")}
		d.gpub.Publish(vals...)
	}
}

// TripCount reports how many trips the IED has issued (tests and benches).
func (d *IED) TripCount() int {
	n := 0
	for _, e := range d.Events() {
		if e.Kind == EventTrip {
			n++
		}
	}
	return n
}
